// Package repro reproduces "Cooperative Partitioning: Energy-Efficient
// Cache Partitioning for High-Performance CMPs" (Sundararajan,
// Porpodas, Jones, Topham, Franke — HPCA 2012) as a Go library.
//
// The paper's contribution — way-aligned LLC partitioning with RAP/WAP
// permission registers, a thresholded look-ahead allocator, cooperative
// takeover for way migration, and gated-Vdd power-off of unallocated
// ways — lives in internal/core. The substrates it is evaluated on
// (set-associative caches, utility monitors, a DRAM model, out-of-order
// core timing, synthetic SPEC-like workloads, the comparison schemes
// Unmanaged / Fair Share / Dynamic CPE / UCP, and an energy model) are
// implemented from scratch in the sibling internal packages; see
// DESIGN.md for the inventory and EXPERIMENTS.md for the measured
// reproduction of every table and figure.
//
// The root package holds the benchmark harness (bench_test.go): one
// testing.B per table and figure of the paper's evaluation, plus the
// ablations of DESIGN.md §7 and microbenchmarks of the simulator's hot
// paths.
package repro
