package main

import (
	"bytes"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildBinary compiles one of the repo's commands into dir.
func buildBinary(t *testing.T, dir, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// startExpd launches a real expd on a free port and waits for
// readiness. It returns the base URL and the running process.
func startExpd(t *testing.T, bin, cacheDir string, extra ...string) (string, *exec.Cmd) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, extra...)
	if cacheDir != "" {
		args = append(args, "-cache-dir", cacheDir)
	}
	cmd := exec.Command(bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			base := "http://" + strings.TrimSpace(string(data))
			resp, err := http.Get(base + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return base, cmd
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("expd never became ready; stderr:\n%s", stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func runClient(bin string, args ...string) ([]byte, []byte, error) {
	cmd := exec.Command(bin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	return stdout.Bytes(), stderr.Bytes(), err
}

// TestServiceEndToEnd is the tentpole's acceptance test with real
// processes: a figures client against a healthy expd, against an expd
// SIGKILLed mid-run, and two clients racing on one server must all
// emit stdout byte-identical to the serverless baseline.
func TestServiceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real server and client processes")
	}
	binDir := t.TempDir()
	expd := buildBinary(t, binDir, "repro/cmd/expd", "expd")
	figures := buildBinary(t, binDir, "repro/cmd/figures", "figures")
	args := []string{"-fig", "5", "-scale", "unit"}

	baseline, _, err := runClient(figures, args...)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	t.Run("healthy-server", func(t *testing.T) {
		cacheDir := filepath.Join(t.TempDir(), "cache")
		base, _ := startExpd(t, expd, cacheDir)
		out, errOut, err := runClient(figures, append(args, "-server", base)...)
		if err != nil {
			t.Fatalf("client run: %v\n%s", err, errOut)
		}
		if !bytes.Equal(out, baseline) {
			t.Fatal("healthy-server output differs from serverless baseline")
		}
		// The client must have been served remotely, not have quietly
		// computed everything itself.
		se := string(errOut)
		if !strings.Contains(se, "local-fallbacks=0") || strings.Contains(se, "remote-hits=0") {
			t.Fatalf("client did not run remotely:\n%s", se)
		}
	})

	t.Run("server-killed-mid-sweep", func(t *testing.T) {
		cacheDir := filepath.Join(t.TempDir(), "cache")
		base, srv := startExpd(t, expd, cacheDir)
		// SIGKILL: no drain, no goodbye — the hard half of the
		// degradation ladder. Kill concurrently with the run so some
		// requests succeed and the rest fall back.
		done := make(chan struct{})
		go func() {
			defer close(done)
			time.Sleep(300 * time.Millisecond)
			srv.Process.Kill()
			srv.Wait()
		}()
		out, errOut, err := runClient(figures, append(args, "-server", base)...)
		<-done
		if err != nil {
			t.Fatalf("client run with killed server: %v\n%s", err, errOut)
		}
		if !bytes.Equal(out, baseline) {
			t.Fatal("killed-server output differs from serverless baseline")
		}
	})

	t.Run("two-clients-one-server", func(t *testing.T) {
		cacheDir := filepath.Join(t.TempDir(), "cache")
		base, _ := startExpd(t, expd, cacheDir)
		var wg sync.WaitGroup
		outs := make([][]byte, 2)
		errOuts := make([][]byte, 2)
		errs := make([]error, 2)
		for i := range outs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				outs[i], errOuts[i], errs[i] = runClient(figures, append(args, "-server", base)...)
			}()
		}
		wg.Wait()
		for i := range outs {
			if errs[i] != nil {
				t.Fatalf("racing client %d: %v\n%s", i, errs[i], errOuts[i])
			}
			if !bytes.Equal(outs[i], baseline) {
				t.Fatalf("racing client %d output differs from baseline", i)
			}
		}
	})
}

// TestCheckpointResumeEndToEnd is the crash-resume acceptance test
// with real processes: a figures sweep is SIGKILLed mid-run, then
// rerun with the same -checkpoint-dir. The rerun must complete, reuse
// the dead process's checkpoints (resumed-from-checkpoint on stderr),
// and emit stdout byte-identical to a checkpointless baseline.
func TestCheckpointResumeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real figure-sweep processes")
	}
	binDir := t.TempDir()
	figures := buildBinary(t, binDir, "repro/cmd/figures", "figures")
	args := []string{"-fig", "5", "-scale", "unit"}

	baseline, _, err := runClient(figures, args...)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	ckptDir := filepath.Join(t.TempDir(), "ckpt")
	ckptArgs := append(args, "-checkpoint-dir", ckptDir, "-checkpoint-every", "30000")

	// SIGKILL mid-sweep: no drain, no deferred stats, no lock release.
	victim := exec.Command(figures, ckptArgs...)
	var victimErr bytes.Buffer
	victim.Stderr = &victimErr
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	victim.Process.Kill()
	if err := victim.Wait(); err == nil {
		// The sweep outran the kill; the rerun below still proves
		// checkpoint reuse, just not the torn-process half.
		t.Log("sweep finished before the kill landed; resume still exercised")
	}
	entries, err := os.ReadDir(filepath.Join(ckptDir, "entries"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("killed run published no checkpoints (%v); victim stderr:\n%s", err, victimErr.String())
	}

	out, errOut, err := runClient(figures, ckptArgs...)
	if err != nil {
		t.Fatalf("rerun after kill -9: %v\n%s", err, errOut)
	}
	if !bytes.Equal(out, baseline) {
		t.Fatal("resumed output differs from checkpointless baseline")
	}
	se := string(errOut)
	if !strings.Contains(se, "resumed-from-checkpoint") && !strings.Contains(se, "warmups-resumed=") {
		t.Fatalf("rerun shows no checkpoint reuse:\n%s", se)
	}
	if strings.Contains(se, "warmups-resumed=0 midrun-resumed=0") {
		t.Fatalf("rerun resumed nothing from the killed process:\n%s", se)
	}
}

// TestExpdGracefulDrain: SIGTERM must drain and exit cleanly — zero
// exit status, stats flushed, and no live lockfiles left in the cache.
func TestExpdGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon")
	}
	binDir := t.TempDir()
	expd := buildBinary(t, binDir, "repro/cmd/expd", "expd")
	figures := buildBinary(t, binDir, "repro/cmd/figures", "figures")
	cacheDir := filepath.Join(t.TempDir(), "cache")
	base, srv := startExpd(t, expd, cacheDir)

	// Give the server some real work first so runners, the store and
	// its locks have all been exercised.
	if _, errOut, err := runClient(figures, "-fig", "5", "-scale", "unit", "-server", base); err != nil {
		t.Fatalf("warmup client: %v\n%s", err, errOut)
	}

	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- srv.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("drained expd exited non-zero: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("expd never exited after SIGTERM")
	}
	locks, err := os.ReadDir(filepath.Join(cacheDir, "locks"))
	if err == nil && len(locks) != 0 {
		t.Fatalf("drained expd left lockfiles: %v", locks)
	}
}

// TestFlagValidationFailsFast: every binary rejects nonsensical
// -workers/-scale/-fidelity/-server values with a non-zero exit and a
// message naming the problem, before any simulation starts.
func TestFlagValidationFailsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the client binaries")
	}
	binDir := t.TempDir()
	bins := map[string]string{
		"figures":   "repro/cmd/figures",
		"tables":    "repro/cmd/tables",
		"report":    "repro/cmd/report",
		"coopsim":   "repro/cmd/coopsim",
		"tiercheck": "repro/cmd/tiercheck",
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"workers-zero", []string{"-workers", "0"}, "-workers"},
		{"workers-negative", []string{"-workers", "-3"}, "-workers"},
		{"bad-scale", []string{"-scale", "galactic"}, "unknown scale"},
		{"bad-server", []string{"-server", ":not a url:"}, "URL"},
		{"ckpt-every-negative", []string{"-checkpoint-every", "-1"}, "-checkpoint-every"},
		{"ckpt-every-without-dir", []string{"-checkpoint-every", "1000"}, "-checkpoint-dir"},
	}
	for name, pkg := range bins {
		bin := buildBinary(t, binDir, pkg, name)
		for _, tc := range cases {
			t.Run(name+"/"+tc.name, func(t *testing.T) {
				args := tc.args
				if name == "report" {
					args = append(args, "-out", t.TempDir())
				}
				start := time.Now()
				_, errOut, err := runClient(bin, args...)
				if err == nil {
					t.Fatalf("%s %v exited zero", name, tc.args)
				}
				if !strings.Contains(string(errOut), tc.want) {
					t.Fatalf("%s %v stderr %q does not mention %q", name, tc.args, errOut, tc.want)
				}
				if took := time.Since(start); took > 10*time.Second {
					t.Fatalf("%s %v took %v; validation must fail fast", name, tc.args, took)
				}
			})
		}
	}
	// The two binaries with a -fidelity flag reject garbage tiers.
	for _, name := range []string{"figures", "report", "coopsim"} {
		t.Run(name+"/bad-fidelity", func(t *testing.T) {
			bin := filepath.Join(binDir, name)
			_, errOut, err := runClient(bin, "-fidelity", "approximate")
			if err == nil {
				t.Fatalf("%s -fidelity=approximate exited zero", name)
			}
			if !strings.Contains(strings.ToLower(string(errOut)), "fidelity") {
				t.Fatalf("%s stderr %q does not mention fidelity", name, errOut)
			}
		})
	}
	// expd itself validates too.
	expd := buildBinary(t, binDir, "repro/cmd/expd", "expd")
	t.Run("expd/workers-zero", func(t *testing.T) {
		_, errOut, err := runClient(expd, "-workers", "0")
		if err == nil {
			t.Fatal("expd -workers=0 exited zero")
		}
		if !strings.Contains(string(errOut), "-workers") {
			t.Fatalf("expd stderr %q does not mention -workers", errOut)
		}
	})
	t.Run("expd/bad-addr", func(t *testing.T) {
		_, _, err := runClient(expd, "-addr", "999.999.999.999:0")
		if err == nil {
			t.Fatal("expd with bogus -addr exited zero")
		}
	})
	t.Run("expd/ckpt-every-negative", func(t *testing.T) {
		_, errOut, err := runClient(expd, "-checkpoint-every", "-1")
		if err == nil {
			t.Fatal("expd -checkpoint-every=-1 exited zero")
		}
		if !strings.Contains(string(errOut), "-checkpoint-every") {
			t.Fatalf("expd stderr %q does not mention -checkpoint-every", errOut)
		}
	})
	t.Run("expd/ckpt-every-without-dir", func(t *testing.T) {
		_, errOut, err := runClient(expd, "-checkpoint-every", "1000")
		if err == nil {
			t.Fatal("expd -checkpoint-every without -checkpoint-dir exited zero")
		}
		if !strings.Contains(string(errOut), "-checkpoint-dir") {
			t.Fatalf("expd stderr %q does not mention -checkpoint-dir", errOut)
		}
	})
}
