// Command expd is the distributed experiment daemon: an HTTP front-end
// over the memoising experiments.Runner (DESIGN.md §13). Clients (the
// other binaries with -server) post fully keyed run requests; expd
// deduplicates them through the same in-memory memo and persistent
// store layers local runs use, simulates misses, and returns verified
// result envelopes. Fidelity travels per request, not per daemon: a
// client's -fidelity/-sample-sets choice arrives inside the run key
// (the sample stride is part of the scale fingerprint), so one daemon
// serves exact, fast-forward and set-sampled runs without aliasing. SIGINT/SIGTERM drains: in-flight simulations
// complete and are served, new requests get 503, then lockfiles are
// released and store stats flushed.
//
// Usage:
//
//	expd [-addr 127.0.0.1:9190] [-addr-file FILE] [-cache-dir DIR]
//	     [-workers N] [-max-concurrent N] [-drain-timeout 30s]
//	     [-checkpoint-dir DIR] [-checkpoint-every N]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9190", "listen address (host:0 picks a free port)")
	addrFile := flag.String("addr-file", "",
		"write the bound address to this file once listening (for -addr with port 0)")
	cacheDir := flag.String("cache-dir", "",
		"persistent result cache directory shared across runs and processes (empty = in-memory only)")
	workers := flag.Int("workers", cliutil.DefaultWorkers(), "concurrent simulations per request")
	maxConcurrent := flag.Int("max-concurrent", cliutil.DefaultWorkers(),
		"run requests executing simultaneously (the rest queue)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long shutdown waits for in-flight requests before giving up")
	ckptDir := flag.String("checkpoint-dir", "",
		"checkpoint directory: warm-up prefixes and mid-run state persist here, and a rerun resumes from the last valid checkpoint (empty = in-memory warm-up sharing only)")
	ckptEvery := flag.Int64("checkpoint-every", 0,
		"measured instructions between mid-run checkpoints (0 = warm-up checkpoints only; requires -checkpoint-dir)")
	flag.Parse()

	w, err := cliutil.Workers(*workers)
	if err != nil {
		fatal(err)
	}
	mc, err := cliutil.Workers(*maxConcurrent)
	if err != nil {
		fatal(fmt.Errorf("invalid -max-concurrent=%d: must be >= 1", *maxConcurrent))
	}
	every, err := cliutil.Checkpointing(*ckptDir, *ckptEvery)
	if err != nil {
		fatal(err)
	}
	if _, err := cliutil.CacheDir(*cacheDir); err != nil {
		fatal(err)
	}
	st := store.OpenCLI(*cacheDir, "expd")
	ckpts, ckptStore := cliutil.OpenCheckpoints(*ckptDir, every, "expd")

	srv := service.NewServer(service.ServerOptions{
		Workers: w, MaxConcurrent: mc, Store: st, Checkpoints: ckpts,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "expd: "+format+"\n", args...)
		},
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "expd: serving on http://%s (cache-dir=%q workers=%d)\n",
		bound, *cacheDir, w)

	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "expd: %v — draining (in-flight requests complete; again to force)\n", sig)
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		go func() {
			<-sigCh
			fmt.Fprintln(os.Stderr, "expd: second signal — forcing exit")
			cancel()
		}()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "expd: drain incomplete: %v\n", err)
		}
		cancel()
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}

	// Whatever path got us here, leave the shared caches clean: no live
	// lockfiles, stats on stderr for the operator.
	st.ReleaseLocks()
	st.ReportStats("expd")
	ckptStore.ReleaseLocks()
	ckpts.ReportStats("expd")
	ckptStore.ReportStats("expd: checkpoints")
	p := srv.Snapshot()
	fmt.Fprintf(os.Stderr, "expd: served %d requests (%d completed, %d failed), %d simulations\n",
		p.Requests, p.RunsCompleted, p.RunsFailed, p.SimulationsStarted)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "expd:", err)
	os.Exit(1)
}
