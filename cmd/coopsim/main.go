// Command coopsim runs one multiprogrammed workload on the simulated
// CMP under a chosen LLC partitioning scheme and reports everything the
// run produced: per-application IPC and MPKI, weighted speedup against
// solo runs, energy, way allocations and transition statistics.
//
// Usage:
//
//	coopsim -group G2-8 -scheme CoopPart [-threshold 0.05]
//	        [-scale test|full] [-seed 1] [-compare] [-workers N]
//	        [-fidelity exact|fastforward|set-sampled] [-sample-sets K]
//	        [-cache-dir DIR] [-server URL]
//	        [-checkpoint-dir DIR] [-checkpoint-every N]
//	        [-cpuprofile cpu.out] [-memprofile mem.out]
//
// With -compare, all five schemes run on the group and a comparison
// table is printed. The -cpuprofile/-memprofile flags write pprof
// profiles of the run, so perf work can profile a single simulation
// (`go tool pprof cpu.out`) without editing code.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/prof"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	group := flag.String("group", "G2-8", "workload group from Table 4 (G2-1..G2-14, G4-1..G4-14)")
	scheme := flag.String("scheme", "CoopPart",
		"LLC scheme: Unmanaged, FairShare, DynCPE, UCP or CoopPart")
	threshold := flag.Float64("threshold", experiments.DefaultThreshold,
		"Cooperative Partitioning takeover threshold T (0..1)")
	scaleName := flag.String("scale", "test", "simulation scale: unit, test or full")
	seed := flag.Uint64("seed", 1, "workload seed")
	compare := flag.Bool("compare", false, "run every scheme and print a comparison")
	workers := flag.Int("workers", cliutil.DefaultWorkers(),
		"concurrent simulations (default: one per CPU)")
	fidelity := flag.String("fidelity", "exact",
		"simulation tier: exact (bit-identical, default), fastforward or set-sampled (statistical, validated by cmd/tiercheck)")
	sampleSets := flag.Int("sample-sets", 0,
		"LLC set-sampling ratio K for -fidelity=set-sampled: model 1 in K sets (power of two; 0 = default)")
	server := flag.String("server", "",
		"expd server URL to fetch results from (empty = compute locally)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	cacheDir := flag.String("cache-dir", "",
		"persistent result cache directory shared across runs and processes (empty = in-memory only)")
	ckptDir := flag.String("checkpoint-dir", "",
		"checkpoint directory: warm-up prefixes and mid-run state persist here, and a rerun resumes from the last valid checkpoint (empty = in-memory warm-up sharing only)")
	ckptEvery := flag.Int64("checkpoint-every", 0,
		"measured instructions between mid-run checkpoints (0 = warm-up checkpoints only; requires -checkpoint-dir)")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatal(err)
		}
	}()

	g, err := workload.FindGroup(*group)
	if err != nil {
		fatal(err)
	}
	scale, err := cliutil.Scale(*scaleName)
	if err != nil {
		fatal(err)
	}
	fid, err := cliutil.Fidelity(*fidelity)
	if err != nil {
		fatal(err)
	}
	scale.SampleStride, err = cliutil.SampleSets(*sampleSets, fid)
	if err != nil {
		fatal(err)
	}
	nw, err := cliutil.Workers(*workers)
	if err != nil {
		fatal(err)
	}
	th, err := cliutil.Threshold(*threshold)
	if err != nil {
		fatal(err)
	}
	every, err := cliutil.Checkpointing(*ckptDir, *ckptEvery)
	if err != nil {
		fatal(err)
	}
	if _, err := cliutil.CacheDir(*cacheDir); err != nil {
		fatal(err)
	}
	st := store.OpenCLI(*cacheDir, "coopsim")
	defer st.ReportStats("coopsim")
	ckpts, ckptStore := cliutil.OpenCheckpoints(*ckptDir, every, "coopsim")
	defer ckpts.ReportStats("coopsim")
	defer ckptStore.ReportStats("coopsim: checkpoints")
	defer store.HandleSignals("coopsim", st, ckptStore)()
	cl, err := service.OpenCLI(*server, "coopsim")
	if err != nil {
		fatal(err)
	}
	defer cl.ReportStats("coopsim")
	cfg := experiments.Config{
		Scale: scale, Seed: *seed, Threshold: th, Workers: nw, Fidelity: fid,
		Store: st, Checkpoints: ckpts,
	}
	if cl != nil {
		cfg.Remote = cl
	}
	runner := experiments.NewRunner(cfg)

	if *compare {
		compareAll(runner, g)
		return
	}
	res, err := runner.RunGroup(g, sim.SchemeKind(*scheme))
	if err != nil {
		fatal(err)
	}
	report(runner, res)
}

func report(r *experiments.Runner, res *sim.Results) {
	fmt.Printf("scheme %s on %s (%v)\n", res.Scheme, res.Group, res.Benchmarks)
	if res.Fidelity != sim.FidelityExact {
		fmt.Printf("fidelity %s (statistical tier, not byte-comparable to exact runs)\n", res.Fidelity)
	}
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tIPC\tMPKI\tL1 miss rate")
	for i, b := range res.Benchmarks {
		fmt.Fprintf(w, "%s\t%.3f\t%.2f\t%.1f%%\n", b, res.IPC[i], res.MPKI[i], 100*res.L1MissRate[i])
	}
	w.Flush()

	if ws, err := r.WeightedSpeedup(res); err == nil {
		fmt.Printf("\nweighted speedup (vs solo): %.3f\n", ws)
	}
	fmt.Printf("cycles: %d, LLC accesses: %d (%.2f tag ways probed per access)\n",
		res.Cycles, res.SchemeStats.TotalAccesses(), res.AvgWaysConsulted)
	fmt.Printf("dynamic energy: %.0f, static power: %.3f/cycle\n", res.Dynamic, res.StaticPower)
	fmt.Printf("final way allocation: %v\n", res.Allocations)
	fmt.Printf("decisions: %d, repartitions: %d, writebacks to memory: %d\n",
		res.SchemeStats.Decisions, res.SchemeStats.Repartitions, res.SchemeStats.WritebacksToMem)
	tr := res.Transition
	if tr.WaysMoved > 0 {
		fmt.Printf("way transfers: %d completed (%d ways), avg %.0f cycles/way, %d lines flushed\n",
			tr.Completed, tr.WaysMoved, tr.AvgTransferCycles(), tr.FlushedLines)
	}
}

func compareAll(r *experiments.Runner, g workload.Group) {
	fmt.Printf("comparison on %s (%v), normalised to FairShare\n\n", g.Name, g.Benchmarks)
	// All five scheme runs (and the solo runs weighted speedup needs)
	// are independent: warm them concurrently, then collect.
	if err := r.PrefetchSpeedup([]workload.Group{g}, sim.AllSchemes); err != nil {
		fatal(err)
	}
	fair, err := r.RunGroup(g, sim.FairShare)
	if err != nil {
		fatal(err)
	}
	fairWS, err := r.WeightedSpeedup(fair)
	if err != nil {
		fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\tweighted speedup\tdynamic energy\tstatic power\tways/access\tallocation")
	for _, kind := range sim.AllSchemes {
		res, err := r.RunGroup(g, kind)
		if err != nil {
			fatal(err)
		}
		ws, err := r.WeightedSpeedup(res)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.2f\t%v\n",
			res.Scheme, ws/fairWS, res.Dynamic/fair.Dynamic,
			res.StaticPower/fair.StaticPower, res.AvgWaysConsulted, res.Allocations)
	}
	w.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coopsim:", err)
	os.Exit(1)
}
