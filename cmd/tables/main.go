// Command tables regenerates Tables 1-4 of the paper.
//
// Usage:
//
//	tables [-table N] [-scale test|full] [-seed N] [-workers N]
//	       [-fidelity exact|fastforward|set-sampled] [-sample-sets K]
//	       [-cache-dir DIR] [-server URL]
//	       [-checkpoint-dir DIR] [-checkpoint-every N]
//
// Without -table, all four tables are printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	table := flag.Int("table", 0, "table number (1-4; 0 = all)")
	scale := flag.String("scale", "test", "simulation scale: unit, test or full")
	seed := flag.Uint64("seed", 1, "workload seed")
	workers := flag.Int("workers", cliutil.DefaultWorkers(),
		"concurrent simulations (default: one per CPU)")
	fidelity := flag.String("fidelity", "exact",
		"simulation tier: exact (bit-identical, default), fastforward or set-sampled (statistical, validated by cmd/tiercheck)")
	sampleSets := flag.Int("sample-sets", 0,
		"LLC set-sampling ratio K for -fidelity=set-sampled: model 1 in K sets (power of two; 0 = default)")
	cacheDir := flag.String("cache-dir", "",
		"persistent result cache directory shared across runs and processes (empty = in-memory only)")
	server := flag.String("server", "",
		"expd server URL to fetch results from (empty = compute locally)")
	ckptDir := flag.String("checkpoint-dir", "",
		"checkpoint directory: warm-up prefixes and mid-run state persist here, and a rerun resumes from the last valid checkpoint (empty = in-memory warm-up sharing only)")
	ckptEvery := flag.Int64("checkpoint-every", 0,
		"measured instructions between mid-run checkpoints (0 = warm-up checkpoints only; requires -checkpoint-dir)")
	flag.Parse()

	sc, err := cliutil.Scale(*scale)
	if err != nil {
		fatal(err)
	}
	nw, err := cliutil.Workers(*workers)
	if err != nil {
		fatal(err)
	}
	fid, err := cliutil.Fidelity(*fidelity)
	if err != nil {
		fatal(err)
	}
	sc.SampleStride, err = cliutil.SampleSets(*sampleSets, fid)
	if err != nil {
		fatal(err)
	}
	every, err := cliutil.Checkpointing(*ckptDir, *ckptEvery)
	if err != nil {
		fatal(err)
	}
	if _, err := cliutil.CacheDir(*cacheDir); err != nil {
		fatal(err)
	}
	st := store.OpenCLI(*cacheDir, "tables")
	defer st.ReportStats("tables")
	ckpts, ckptStore := cliutil.OpenCheckpoints(*ckptDir, every, "tables")
	defer ckpts.ReportStats("tables")
	defer ckptStore.ReportStats("tables: checkpoints")
	defer store.HandleSignals("tables", st, ckptStore)()
	cl, err := service.OpenCLI(*server, "tables")
	if err != nil {
		fatal(err)
	}
	defer cl.ReportStats("tables")
	cfg := experiments.Config{Scale: sc, Seed: *seed, Workers: nw, Fidelity: fid, Store: st, Checkpoints: ckpts}
	if cl != nil {
		cfg.Remote = cl
	}
	r := experiments.NewRunner(cfg)

	run := func(n int) error {
		switch n {
		case 1:
			return r.Table1(os.Stdout)
		case 2:
			return r.Table2(os.Stdout)
		case 3:
			rows, err := r.Table3()
			if err != nil {
				return err
			}
			experiments.WriteTable3(os.Stdout, rows)
			return nil
		case 4:
			return r.Table4(os.Stdout)
		default:
			return fmt.Errorf("no table %d", n)
		}
	}

	if *table != 0 {
		if err := run(*table); err != nil {
			fatal(err)
		}
		return
	}
	for n := 1; n <= 4; n++ {
		if err := run(n); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tables:", err)
	os.Exit(1)
}
