// Command figures regenerates Figures 5-16 of the paper's evaluation as
// plain-text tables or CSV.
//
// Usage:
//
//	figures [-fig N] [-scale test|full] [-seed N] [-csv] [-threshold T] [-workers N]
//
// Without -fig, every data figure (5-16) is printed. Figures 1-4 are
// schematics with no data series; the takeover mechanics they
// illustrate are demonstrated by examples/takeover.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (5-16; 0 = all)")
	scale := flag.String("scale", "test", "simulation scale: test or full")
	seed := flag.Uint64("seed", 1, "workload seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	threshold := flag.Float64("threshold", experiments.DefaultThreshold,
		"Cooperative Partitioning takeover threshold T")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = one per CPU)")
	flag.Parse()

	sc, err := scaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	r := experiments.NewRunner(experiments.Config{
		Scale: sc, Seed: *seed, Threshold: *threshold, Workers: *workers,
	})

	figs := []int{*fig}
	if *fig == 0 {
		figs = nil
		for n := 5; n <= 16; n++ {
			figs = append(figs, n)
		}
	}
	for _, n := range figs {
		f, err := r.Figure(n)
		if err != nil {
			fatal(err)
		}
		if *csv {
			err = f.WriteCSV(os.Stdout)
		} else {
			err = f.WriteTable(os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

func scaleByName(name string) (sim.Scale, error) {
	switch name {
	case "test":
		return sim.TestScale(), nil
	case "full":
		return sim.FullScale(), nil
	default:
		return sim.Scale{}, fmt.Errorf("unknown scale %q (test or full)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
