// Command figures regenerates Figures 5-16 of the paper's evaluation as
// plain-text tables or CSV, plus the many-core scaling sweep that goes
// beyond the paper's 2/4-core evaluation.
//
// Usage:
//
//	figures [-fig N] [-scale test|full] [-seed N] [-csv] [-threshold T] [-workers N]
//	        [-fidelity exact|fastforward|set-sampled] [-sample-sets K]
//	        [-cache-dir DIR] [-server URL]
//	        [-checkpoint-dir DIR] [-checkpoint-every N]
//	        [-cpuprofile cpu.out] [-memprofile mem.out]
//	figures -sweep scaling [-sweep-cores 2,4,8,16] [-sweep-groups N] [...]
//
// Without -fig, every data figure (5-16) is printed. Figures 1-4 are
// schematics with no data series; the takeover mechanics they
// illustrate are demonstrated by examples/takeover. With -sweep=scaling
// the scaling figures (weighted speedup and total energy vs core
// count) are printed instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (5-16; 0 = all)")
	scale := flag.String("scale", "test", "simulation scale: unit, test or full")
	seed := flag.Uint64("seed", 1, "workload seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	threshold := flag.Float64("threshold", experiments.DefaultThreshold,
		"Cooperative Partitioning takeover threshold T")
	workers := flag.Int("workers", cliutil.DefaultWorkers(),
		"concurrent simulations (default: one per CPU)")
	fidelity := flag.String("fidelity", "exact",
		"simulation tier: exact (bit-identical, default), fastforward or set-sampled (statistical, validated by cmd/tiercheck)")
	sampleSets := flag.Int("sample-sets", 0,
		"LLC set-sampling ratio K for -fidelity=set-sampled: model 1 in K sets (power of two; 0 = default)")
	server := flag.String("server", "",
		"expd server URL to fetch results from (empty = compute locally)")
	sweep := flag.String("sweep", "", `sweep to run instead of figures ("scaling")`)
	sweepCores := flag.String("sweep-cores", "", "comma-separated core counts for -sweep=scaling (default 2,4,8,16)")
	sweepGroups := flag.Int("sweep-groups", 0, "groups per core count in the sweep (0 = all)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	cacheDir := flag.String("cache-dir", "",
		"persistent result cache directory shared across runs and processes (empty = in-memory only)")
	ckptDir := flag.String("checkpoint-dir", "",
		"checkpoint directory: warm-up prefixes and mid-run state persist here, and a rerun resumes from the last valid checkpoint (empty = in-memory warm-up sharing only)")
	ckptEvery := flag.Int64("checkpoint-every", 0,
		"measured instructions between mid-run checkpoints (0 = warm-up checkpoints only; requires -checkpoint-dir)")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatal(err)
		}
	}()

	sc, err := cliutil.Scale(*scale)
	if err != nil {
		fatal(err)
	}
	fid, err := cliutil.Fidelity(*fidelity)
	if err != nil {
		fatal(err)
	}
	sc.SampleStride, err = cliutil.SampleSets(*sampleSets, fid)
	if err != nil {
		fatal(err)
	}
	nw, err := cliutil.Workers(*workers)
	if err != nil {
		fatal(err)
	}
	th, err := cliutil.Threshold(*threshold)
	if err != nil {
		fatal(err)
	}
	every, err := cliutil.Checkpointing(*ckptDir, *ckptEvery)
	if err != nil {
		fatal(err)
	}
	if _, err := cliutil.CacheDir(*cacheDir); err != nil {
		fatal(err)
	}
	st := store.OpenCLI(*cacheDir, "figures")
	defer st.ReportStats("figures")
	ckpts, ckptStore := cliutil.OpenCheckpoints(*ckptDir, every, "figures")
	defer ckpts.ReportStats("figures")
	defer ckptStore.ReportStats("figures: checkpoints")
	defer store.HandleSignals("figures", st, ckptStore)()
	cl, err := service.OpenCLI(*server, "figures")
	if err != nil {
		fatal(err)
	}
	defer cl.ReportStats("figures")
	cfg := experiments.Config{
		Scale: sc, Seed: *seed, Threshold: th, Workers: nw, Fidelity: fid,
		Store: st, Checkpoints: ckpts,
	}
	if cl != nil {
		cfg.Remote = cl
	}
	r := experiments.NewRunner(cfg)

	if *sweep != "" {
		if *sweep != "scaling" {
			fatal(fmt.Errorf("unknown sweep %q (scaling)", *sweep))
		}
		counts, err := parseCores(*sweepCores)
		if err != nil {
			fatal(err)
		}
		figs, err := r.ScalingSweep(counts, *sweepGroups)
		if err != nil {
			fatal(err)
		}
		for _, f := range figs {
			if err := writeFigure(f, *csv); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		return
	}

	figs := []int{*fig}
	if *fig == 0 {
		figs = nil
		for n := 5; n <= 16; n++ {
			figs = append(figs, n)
		}
	}
	for _, n := range figs {
		f, err := r.Figure(n)
		if err != nil {
			fatal(err)
		}
		if err := writeFigure(f, *csv); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

func writeFigure(f metrics.Figure, csv bool) error {
	if csv {
		return f.WriteCSV(os.Stdout)
	}
	return f.WriteTable(os.Stdout)
}

// parseCores parses a comma-separated core-count list ("" = default).
func parseCores(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad core count %q: %v", part, err)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
