package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
)

// buildFigures compiles the binary once per test run.
func buildFigures(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "figures")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func runFiguresErr(bin string, args ...string) ([]byte, []byte, error) {
	cmd := exec.Command(bin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	return stdout.Bytes(), stderr.Bytes(), err
}

func runFigures(t *testing.T, bin string, args ...string) []byte {
	t.Helper()
	out, errOut, err := runFiguresErr(bin, args...)
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, errOut)
	}
	return out
}

// TestCrossProcessCacheDeterminism is the end-to-end acceptance test
// for the persistent store: real processes sharing one -cache-dir —
// storeless, cold-cache, warm-cache, and two concurrent writers — all
// emit byte-identical figure tables.
func TestCrossProcessCacheDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary several times")
	}
	bin := buildFigures(t)
	cacheDir := filepath.Join(t.TempDir(), "cache")
	args := []string{"-fig", "5", "-scale", "unit"}

	storeless := runFigures(t, bin, args...)
	cold := runFigures(t, bin, append(args, "-cache-dir", cacheDir)...)
	if !bytes.Equal(storeless, cold) {
		t.Fatal("cold-cache output differs from storeless output")
	}
	warm := runFigures(t, bin, append(args, "-cache-dir", cacheDir)...)
	if !bytes.Equal(storeless, warm) {
		t.Fatal("warm-cache output differs from storeless output")
	}
	if ents, err := os.ReadDir(filepath.Join(cacheDir, "entries")); err != nil || len(ents) == 0 {
		t.Fatalf("cache dir has no entries after cold run (err=%v)", err)
	}

	// Two processes racing on a fresh shared directory: lockfiles
	// serialise publication, both must still match.
	raceDir := filepath.Join(t.TempDir(), "race")
	var wg sync.WaitGroup
	outs := make([][]byte, 2)
	errOuts := make([][]byte, 2)
	errs := make([]error, 2)
	for i := range outs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[i], errOuts[i], errs[i] = runFiguresErr(bin, append(args, "-cache-dir", raceDir)...)
		}()
	}
	wg.Wait()
	for i, out := range outs {
		if errs[i] != nil {
			t.Fatalf("concurrent process %d: %v\n%s", i, errs[i], errOuts[i])
		}
		if !bytes.Equal(storeless, out) {
			t.Fatalf("concurrent process %d output differs from storeless output", i)
		}
	}
}
