// Command report regenerates the complete evaluation — Tables 1-4,
// Figures 5-16, the ablations and the extensions — in one run (sharing
// simulations across figures) and writes a self-contained markdown
// report plus per-figure CSV files.
//
// Usage:
//
//	report [-out report] [-scale test|full] [-seed 1] [-workers N]
//	       [-fidelity exact|fastforward|set-sampled] [-sample-sets K]
//	       [-cache-dir DIR] [-server URL]
//	       [-checkpoint-dir DIR] [-checkpoint-every N]
//	       [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/store"
)

func main() {
	out := flag.String("out", "report", "output directory")
	scaleName := flag.String("scale", "test", "simulation scale: unit, test or full")
	seed := flag.Uint64("seed", 1, "workload seed")
	workers := flag.Int("workers", cliutil.DefaultWorkers(),
		"concurrent simulations (default: one per CPU)")
	fidelity := flag.String("fidelity", "exact",
		"simulation tier: exact (bit-identical, default), fastforward or set-sampled (statistical, validated by cmd/tiercheck)")
	sampleSets := flag.Int("sample-sets", 0,
		"LLC set-sampling ratio K for -fidelity=set-sampled: model 1 in K sets (power of two; 0 = default)")
	server := flag.String("server", "",
		"expd server URL to fetch results from (empty = compute locally)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	cacheDir := flag.String("cache-dir", "",
		"persistent result cache directory shared across runs and processes (empty = in-memory only)")
	ckptDir := flag.String("checkpoint-dir", "",
		"checkpoint directory: warm-up prefixes and mid-run state persist here, and a rerun resumes from the last valid checkpoint (empty = in-memory warm-up sharing only)")
	ckptEvery := flag.Int64("checkpoint-every", 0,
		"measured instructions between mid-run checkpoints (0 = warm-up checkpoints only; requires -checkpoint-dir)")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatal(err)
		}
	}()

	scale, err := cliutil.Scale(*scaleName)
	if err != nil {
		fatal(err)
	}
	fid, err := cliutil.Fidelity(*fidelity)
	if err != nil {
		fatal(err)
	}
	scale.SampleStride, err = cliutil.SampleSets(*sampleSets, fid)
	if err != nil {
		fatal(err)
	}
	nw, err := cliutil.Workers(*workers)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	every, err := cliutil.Checkpointing(*ckptDir, *ckptEvery)
	if err != nil {
		fatal(err)
	}
	if _, err := cliutil.CacheDir(*cacheDir); err != nil {
		fatal(err)
	}
	st := store.OpenCLI(*cacheDir, "report")
	defer st.ReportStats("report")
	ckpts, ckptStore := cliutil.OpenCheckpoints(*ckptDir, every, "report")
	defer ckpts.ReportStats("report")
	defer ckptStore.ReportStats("report: checkpoints")
	defer store.HandleSignals("report", st, ckptStore)()
	cl, err := service.OpenCLI(*server, "report")
	if err != nil {
		fatal(err)
	}
	defer cl.ReportStats("report")
	cfg := experiments.Config{
		Scale: scale, Seed: *seed, Workers: nw, Fidelity: fid,
		Store: st, Checkpoints: ckpts,
	}
	if cl != nil {
		cfg.Remote = cl
	}
	r := experiments.NewRunner(cfg)

	md, err := os.Create(filepath.Join(*out, "report.md"))
	if err != nil {
		fatal(err)
	}
	defer md.Close()

	fmt.Fprintf(md, "# Cooperative Partitioning — regenerated evaluation\n\n")
	fmt.Fprintf(md, "scale: %s, seed: %d, generated: %s\n\n",
		scale.Name, *seed, time.Now().Format(time.RFC3339))
	if fid != sim.FidelityExact {
		fmt.Fprintf(md, "**fidelity: %s** — statistical RNG-walk tier, not byte-comparable "+
			"to exact-tier reports (see cmd/tiercheck for the equivalence contract)\n\n", fid)
	}

	// Tables.
	fmt.Fprintf(md, "## Tables\n\n```\n")
	if err := r.Table1(md); err != nil {
		fatal(err)
	}
	fmt.Fprintln(md)
	if err := r.Table2(md); err != nil {
		fatal(err)
	}
	fmt.Fprintln(md)
	rows, err := r.Table3()
	if err != nil {
		fatal(err)
	}
	experiments.WriteTable3(md, rows)
	fmt.Fprintln(md)
	if err := r.Table4(md); err != nil {
		fatal(err)
	}
	fmt.Fprintf(md, "```\n\n")

	// Figures.
	fmt.Fprintf(md, "## Figures\n\n")
	for n := 5; n <= 16; n++ {
		fig, err := r.Figure(n)
		if err != nil {
			fatal(err)
		}
		writeFigure(md, *out, fig)
		fmt.Fprintf(os.Stderr, "report: figure %d done\n", n)
	}

	// Ablations and extensions.
	fmt.Fprintf(md, "## Ablations\n\n")
	for _, gen := range []func() (metrics.Figure, error){
		r.AblationVictim, r.AblationTakeover, r.AblationGating,
		r.AblationRandomVictim, r.ExtDrowsy,
	} {
		fig, err := gen()
		if err != nil {
			fatal(err)
		}
		writeFigure(md, *out, fig)
		fmt.Fprintf(os.Stderr, "report: %s done\n", fig.ID)
	}

	// Many-core scaling sweep (beyond the paper's 2/4-core evaluation):
	// two representative groups per core count keep the report
	// tractable; cmd/figures -sweep=scaling runs the full group lists.
	fmt.Fprintf(md, "## Scaling sweep\n\n")
	sweepFigs, err := r.ScalingSweep(nil, 2)
	if err != nil {
		fatal(err)
	}
	for _, fig := range sweepFigs {
		writeFigure(md, *out, fig)
		fmt.Fprintf(os.Stderr, "report: %s done\n", fig.ID)
	}

	hr, err := r.Headroom()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(md, "## TDP headroom (paper conclusion)\n\n```\n")
	fmt.Fprintf(md, "%-8s %14s %12s\n", "group", "chip saving", "freq uplift")
	for _, row := range hr {
		fmt.Fprintf(md, "%-8s %13.1f%% %11.2f%%\n",
			row.Group, 100*row.SavedFraction, 100*row.FreqUplift)
	}
	fmt.Fprintf(md, "```\n")

	fmt.Printf("report written to %s\n", filepath.Join(*out, "report.md"))
}

func writeFigure(md *os.File, dir string, fig metrics.Figure) {
	fmt.Fprintf(md, "### %s\n\n```\n", fig.ID)
	if err := fig.WriteTable(md); err != nil {
		fatal(err)
	}
	fmt.Fprintf(md, "```\n\n")
	csv, err := os.Create(filepath.Join(dir, fig.ID+".csv"))
	if err != nil {
		fatal(err)
	}
	defer csv.Close()
	if err := fig.WriteCSV(csv); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "report:", err)
	os.Exit(1)
}
