// Command tiercheck runs the statistical tier-equivalence harness
// (experiments.ValidateTiers): the bit-identical Exact tier and the
// statistical tiers under test (FastForward and SetSampled by default)
// execute the headline figures across a seed sweep, and the run fails
// (exit 1) unless every figure's exact-vs-tier delta is small relative
// to the smallest gap between schemes — the contract that keeps the
// non-bit-identical tiers honest (DESIGN.md §11, §15). CI runs it as a
// gate and uploads the JSON report as an artifact; EXPERIMENTS.md
// records a TestScale run.
//
// Usage:
//
//	tiercheck [-scale unit|test|full] [-seeds 5] [-seed-base 1]
//	          [-fidelity all|fastforward|set-sampled] [-sample-sets K]
//	          [-groups N] [-threshold T] [-gap-fraction 0.5]
//	          [-gap-floor 0.02] [-workers N] [-json report.json]
//	          [-cache-dir DIR] [-server URL]
//	          [-checkpoint-dir DIR] [-checkpoint-every N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/store"
)

func main() {
	scaleName := flag.String("scale", "test", "simulation scale: unit, test or full")
	seeds := flag.Int("seeds", 5, "number of seeds in the sweep")
	seedBase := flag.Uint64("seed-base", 1, "first seed of the sweep")
	fidelity := flag.String("fidelity", "all",
		"statistical tier(s) to validate against exact: all, fastforward or set-sampled")
	sampleSets := flag.Int("sample-sets", 0,
		"LLC set-sampling ratio K for the set-sampled tier (power of two; 0 = default)")
	groups := flag.Int("groups", 0, "two-core groups per figure (0 = all)")
	threshold := flag.Float64("threshold", experiments.DefaultThreshold,
		"Cooperative Partitioning takeover threshold T")
	gapFraction := flag.Float64("gap-fraction", experiments.DefaultGapFraction,
		"pass when max tier delta <= gap-fraction * min between-scheme gap")
	gapFloor := flag.Float64("gap-floor", experiments.DefaultGapFloor,
		"scheme pairs closer than this are near-ties excluded from the gap")
	workers := flag.Int("workers", cliutil.DefaultWorkers(),
		"concurrent simulations (default: one per CPU)")
	jsonOut := flag.String("json", "", "also write the machine-readable report to this file")
	cacheDir := flag.String("cache-dir", "",
		"persistent result cache directory shared across runs and processes (empty = in-memory only)")
	server := flag.String("server", "",
		"expd server URL to fetch results from (empty = compute locally)")
	ckptDir := flag.String("checkpoint-dir", "",
		"checkpoint directory: warm-up prefixes and mid-run state persist here, and a rerun resumes from the last valid checkpoint (empty = in-memory warm-up sharing only)")
	ckptEvery := flag.Int64("checkpoint-every", 0,
		"measured instructions between mid-run checkpoints (0 = warm-up checkpoints only; requires -checkpoint-dir)")
	flag.Parse()

	scale, err := cliutil.Scale(*scaleName)
	if err != nil {
		fatal(err)
	}
	nw, err := cliutil.Workers(*workers)
	if err != nil {
		fatal(err)
	}
	th, err := cliutil.Threshold(*threshold)
	if err != nil {
		fatal(err)
	}
	if *seeds <= 0 {
		fatal(fmt.Errorf("-seeds must be positive, got %d", *seeds))
	}
	sweep := make([]uint64, *seeds)
	for i := range sweep {
		sweep[i] = *seedBase + uint64(i)
	}
	var tiers []sim.Fidelity
	switch *fidelity {
	case "all":
		tiers = nil // ValidateTiers default: every statistical tier
	case "fastforward":
		tiers = []sim.Fidelity{sim.FidelityFastForward}
	case "set-sampled":
		tiers = []sim.Fidelity{sim.FidelitySetSampled}
	default:
		fatal(fmt.Errorf("unknown -fidelity=%q (all, fastforward or set-sampled)", *fidelity))
	}
	// -sample-sets is meaningful whenever the sweep includes the
	// set-sampled tier (always, except -fidelity=fastforward).
	strideFid := sim.FidelitySetSampled
	if *fidelity == "fastforward" {
		strideFid = sim.FidelityFastForward
	}
	scale.SampleStride, err = cliutil.SampleSets(*sampleSets, strideFid)
	if err != nil {
		fatal(err)
	}

	every, err := cliutil.Checkpointing(*ckptDir, *ckptEvery)
	if err != nil {
		fatal(err)
	}
	if _, err := cliutil.CacheDir(*cacheDir); err != nil {
		fatal(err)
	}
	st := store.OpenCLI(*cacheDir, "tiercheck")
	ckpts, ckptStore := cliutil.OpenCheckpoints(*ckptDir, every, "tiercheck")
	stopSignals := store.HandleSignals("tiercheck", st, ckptStore)
	defer stopSignals()
	cl, err := service.OpenCLI(*server, "tiercheck")
	if err != nil {
		fatal(err)
	}
	defer cl.ReportStats("tiercheck")
	cfg := experiments.TierCheckConfig{
		Scale:       scale,
		Tiers:       tiers,
		Seeds:       sweep,
		Threshold:   th,
		Workers:     nw,
		MaxGroups:   *groups,
		GapFraction: *gapFraction,
		GapFloor:    *gapFloor,
		Store:       st,
		Checkpoints: ckpts,
	}
	if cl != nil {
		cfg.Remote = cl
	}
	report, err := experiments.ValidateTiers(cfg)
	st.ReportStats("tiercheck")
	ckpts.ReportStats("tiercheck")
	ckptStore.ReportStats("tiercheck: checkpoints")
	if err != nil {
		fatal(err)
	}
	if err := report.WriteTable(os.Stdout); err != nil {
		fatal(err)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if !report.Pass {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tiercheck:", err)
	os.Exit(1)
}
