// Energysweep explores the takeover-threshold trade-off of Section 5.1
// on a single workload: sweep T from 0 to 0.2 and report performance,
// dynamic energy and static power, each normalised to T=0 — a
// one-workload slice of the paper's Figures 11-13.
//
//	go run ./examples/energysweep [group]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	groupName := "G2-2"
	if len(os.Args) > 1 {
		groupName = os.Args[1]
	}
	group, err := workload.FindGroup(groupName)
	if err != nil {
		log.Fatal(err)
	}

	type point struct {
		T   float64
		res *sim.Results
	}
	var points []point
	for _, T := range []float64{0, 0.01, 0.05, 0.10, 0.20} {
		threshold := T
		if threshold == 0 {
			threshold = -1 // explicit zero: sim treats 0 as "use default"
		}
		res, err := sim.Run(sim.RunConfig{
			Scale:     sim.TestScale(),
			Scheme:    sim.CoopPart,
			Group:     group,
			Threshold: threshold,
			Seed:      1,
		})
		if err != nil {
			log.Fatal(err)
		}
		points = append(points, point{T, res})
	}

	base := points[0].res
	baseIPC := sum(base.IPC)
	fmt.Printf("workload %s: %v (all values normalised to T=0)\n\n", group.Name, group.Benchmarks)
	fmt.Printf("%8s %12s %12s %12s %14s %10s\n",
		"T", "perf", "dynamic", "static", "ways consulted", "alloc")
	for _, p := range points {
		fmt.Printf("%8.2f %12.3f %12.3f %12.3f %14.2f %10s\n",
			p.T,
			sum(p.res.IPC)/baseIPC,
			p.res.Dynamic/base.Dynamic,
			p.res.StaticPower/base.StaticPower,
			p.res.AvgWaysConsulted,
			fmt.Sprint(p.res.Allocations))
	}
	fmt.Println("\nHigher thresholds strand more ways (power-gated for static savings)")
	fmt.Println("and shrink the tag lookup masks (dynamic savings) at the cost of")
	fmt.Println("denying marginally-useful ways — the paper picks T=0.05.")
}

func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}
