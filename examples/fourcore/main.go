// Fourcore compares all five schemes on one four-application workload
// (the paper's Section 4.2 setting: 4MB, 16-way shared LLC), printing
// per-application IPC, the final way allocation, and the energy
// headlines.
//
//	go run ./examples/fourcore [group]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	groupName := "G4-3" // dealII, sjeng, soplex, namd: the thrashing example
	if len(os.Args) > 1 {
		groupName = os.Args[1]
	}
	group, err := workload.FindGroup(groupName)
	if err != nil {
		log.Fatal(err)
	}
	scale := sim.TestScale()

	// Dynamic CPE needs offline profiles (the paper profiles each
	// application solo before the run).
	var profiles []partition.CoreProfile
	for _, b := range group.Benchmarks {
		p, err := sim.ProfileBenchmark(b, scale, len(group.Benchmarks), 1)
		if err != nil {
			log.Fatal(err)
		}
		profiles = append(profiles, p)
	}

	fmt.Printf("workload %s: %v\n\n", group.Name, group.Benchmarks)
	fmt.Printf("%-11s %28s %18s %8s %8s %8s\n",
		"scheme", "IPC per app", "way allocation", "dyn", "static", "ways/acc")

	var fair *sim.Results
	for _, scheme := range sim.AllSchemes {
		cfg := sim.RunConfig{Scale: scale, Scheme: scheme, Group: group, Seed: 1}
		if scheme == sim.DynCPE {
			cfg.Profiles = profiles
		}
		res, err := sim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if scheme == sim.FairShare {
			fair = res
		}
		dyn, stat := 1.0, 1.0
		if fair != nil {
			dyn = res.Dynamic / fair.Dynamic
			stat = res.StaticPower / fair.StaticPower
		}
		fmt.Printf("%-11s %28s %18v %8.2f %8.2f %8.2f\n",
			res.Scheme, ipcs(res.IPC), res.Allocations, dyn, stat, res.AvgWaysConsulted)
	}
	fmt.Println("\n(dyn and static are normalised to FairShare; ways/acc is the mean")
	fmt.Println("number of tag ways probed per LLC access — the dynamic-energy lever)")
}

func ipcs(v []float64) string {
	s := ""
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.2f", x)
	}
	return s
}
