// Takeover walks through the paper's Figures 3 and 4 step by step on a
// miniature cache: two cores, four ways, four sets. Core 1 donates way
// 2 to core 0; each access by either core flushes the donor's dirty
// data in the transferring way, sets the set's takeover bit, and once
// every bit is set, core 0 owns the way outright.
//
//	go run ./examples/takeover
package main

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/partition"
)

func main() {
	cp := core.New(partition.Config{
		// 4 sets x 4 ways of 64B lines, as in Figure 4.
		Cache:    cache.Config{Name: "L2", SizeBytes: 4 * 4 * 64, LineBytes: 64, Ways: 4, Latency: 15},
		NumCores: 2,
		DRAM:     mem.New(mem.DefaultConfig()),
	})
	l2 := cp.Cache()

	fmt.Println("initial state: each core owns two ways")
	printPerms(cp)

	// Fill way 2 (owned by core 1) with dirty lines in every set, and
	// way 3 with some clean data, mirroring Figure 4's starting point.
	for set := 0; set < l2.NumSets(); set++ {
		l2.InstallAt(set, 2, uint64(0x100+set), 1, set != 3) // set d starts clean (Fig. 4)
		l2.InstallAt(set, 3, uint64(0x200+set), 1, set == 3)
	}

	// A partitioning decision transfers way 2 to core 0 (Figure 3's
	// "during transition" register state).
	fmt.Println("\npartitioning decision: core 1 donates way 2 to core 0")
	cp.BeginTransfer(2, 1, 0, 50)
	printPerms(cp)

	steps := []struct {
		core  int
		set   int
		tag   uint64
		write bool
		label string
	}{
		{1, 2, 0x100 + 2, false, "core 1 read hits set c: its dirty line in way 2 is flushed, bit c set"},
		{0, 1, 0x900, true, "core 0 write misses set b: core 1's dirty line flushed, fill goes to way 2, bit b set"},
		{0, 3, 0x200 + 3, false, "core 0 read in set d: line in way 2 clean, nothing to flush, bit d set"},
		{1, 1, 0x100 + 1, false, "core 1 read in set b: way 2 now owned by core 0; bit already set, no flush"},
		{1, 0, 0x800, false, "core 1 read misses set a: last takeover bit set — transfer completes"},
	}
	for i, s := range steps {
		addr := l2.LineFrom(s.set, s.tag) * 64
		wbBefore := cp.Stats().WritebacksToMem
		res := cp.Access(s.core, addr, s.write, int64(100+i*10))
		fmt.Printf("\nstep %d: %s\n", i+1, s.label)
		fmt.Printf("  hit=%v, flushed %d line(s), takeover bits set: %d/%d\n",
			res.Hit, cp.Stats().WritebacksToMem-wbBefore, takeoverCount(cp), l2.NumSets())
	}

	fmt.Println("\nafter the transition: core 0 owns way 2, core 1's read permission withdrawn")
	printPerms(cp)
	fmt.Printf("way 2 owner: core %d; transition stats: %+d way(s) moved, %d lines flushed\n",
		cp.OwnerOf(2), int(cp.Transitions().WaysMoved), cp.Transitions().FlushedLines)
}

func takeoverCount(cp *core.CoopPart) int { return cp.TakeoverBitsSet(1) }

func printPerms(cp *core.CoopPart) {
	p := cp.Perms()
	for w := 0; w < p.Ways(); w++ {
		fmt.Printf("  way %d: RAP=%02b WAP=%02b", w, p.RAP(w), p.WAP(w))
		switch {
		case p.IsOff(w):
			fmt.Print("  (off)")
		case p.Readers(w) == 2:
			fmt.Print("  (in transition)")
		default:
			fmt.Printf("  (core %d)", p.Writer(w))
		}
		fmt.Println()
	}
}
