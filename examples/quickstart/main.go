// Quickstart: run one two-application workload under Cooperative
// Partitioning and print what the scheme did — the partitioning
// decisions' outcome, the energy savings versus the Fair Share
// baseline, and the way-transfer statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	// G2-8 pairs lbm (streaming, 20 MPKI, needs almost no cache) with
	// soplex (18 MPKI with a 4-way working set): an asymmetric pair the
	// partitioner can exploit.
	group, err := workload.FindGroup("G2-8")
	if err != nil {
		log.Fatal(err)
	}

	scale := sim.TestScale()
	run := func(scheme sim.SchemeKind) *sim.Results {
		res, err := sim.Run(sim.RunConfig{
			Scale:  scale,
			Scheme: scheme,
			Group:  group,
			Seed:   1,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fair := run(sim.FairShare)
	coop := run(sim.CoopPart)

	fmt.Printf("workload %s: %v\n\n", group.Name, group.Benchmarks)
	fmt.Printf("%-22s %12s %12s\n", "", "FairShare", "CoopPart")
	for i, b := range group.Benchmarks {
		fmt.Printf("%-22s %12.3f %12.3f\n", "IPC "+b, fair.IPC[i], coop.IPC[i])
	}
	fmt.Printf("%-22s %12s %12s\n", "way allocation",
		fmt.Sprint(fair.Allocations), fmt.Sprint(coop.Allocations))
	fmt.Printf("%-22s %12.2f %12.2f\n", "avg tag ways probed",
		fair.AvgWaysConsulted, coop.AvgWaysConsulted)
	fmt.Printf("%-22s %12.2f %12.2f\n", "dynamic energy (rel)",
		1.0, coop.Dynamic/fair.Dynamic)
	fmt.Printf("%-22s %12.2f %12.2f\n", "static power (rel)",
		1.0, coop.StaticPower/fair.StaticPower)

	tr := coop.Transition
	fmt.Printf("\ncooperative takeover: %d transitions completed, %d ways moved\n",
		tr.Completed, tr.WaysMoved)
	if tr.WaysMoved > 0 {
		fmt.Printf("  avg cycles to transfer a way: %.0f\n", tr.AvgTransferCycles())
		fmt.Printf("  lines flushed during transfers: %d\n", tr.FlushedLines)
		if total := tr.TakeoverEventTotal(); total > 0 {
			fmt.Printf("  takeover bits set by: donor hits %.0f%%, donor misses %.0f%%, "+
				"recipient hits %.0f%%, recipient misses %.0f%%\n",
				100*float64(tr.DonorHits)/float64(total),
				100*float64(tr.DonorMisses)/float64(total),
				100*float64(tr.RecipientHits)/float64(total),
				100*float64(tr.RecipientMisses)/float64(total))
		} else {
			fmt.Println("  (all transfers were way power-offs: no core-to-core events)")
		}
	}
}
