package trace

import "fmt"

// State is the dynamic portion of a Generator: everything the record
// and event streams (both fidelity tiers — Fill and fillEventsFF write
// back exactly these fields) mutate as they advance. The address-space
// layout, cumulative weights, phase bounds and FastForward CDF table
// are pure functions of the Config and are rebuilt by NewGenerator, so
// restoring a snapshot into a freshly built generator of the same
// Config continues the walk bit-identically (pinned by the ckpt
// round-trip fuzz tests).
type State struct {
	RNG         uint64 // SplitMix64 state
	CurPC       uint64
	Pattern     uint64
	MemCount    uint64
	StrmPos     uint64
	Emitted     uint64
	WSPos       []uint64
	WSActiveCur []int
	WSSweepPos  []uint64
}

// State returns a deep copy of the generator's dynamic state.
func (g *Generator) State() *State {
	return &State{
		RNG:         g.rng.state,
		CurPC:       g.curPC,
		Pattern:     g.pattern,
		MemCount:    g.memCount,
		StrmPos:     g.strmPos,
		Emitted:     g.emitted,
		WSPos:       append([]uint64(nil), g.wsPos...),
		WSActiveCur: append([]int(nil), g.wsActiveCur...),
		WSSweepPos:  append([]uint64(nil), g.wsSweepPos...),
	}
}

// Restore overwrites the generator's dynamic state with st. The
// receiver must have been built from the same Config the snapshot was
// taken under (same working-set count in particular).
func (g *Generator) Restore(st *State) error {
	if len(st.WSPos) != len(g.wsPos) || len(st.WSActiveCur) != len(g.wsActiveCur) ||
		len(st.WSSweepPos) != len(g.wsSweepPos) {
		return fmt.Errorf("trace: snapshot has %d/%d/%d working-set positions, generator has %d",
			len(st.WSPos), len(st.WSActiveCur), len(st.WSSweepPos), len(g.wsPos))
	}
	g.rng.state = st.RNG
	g.curPC = st.CurPC
	g.pattern = st.Pattern
	g.memCount = st.MemCount
	g.strmPos = st.StrmPos
	g.emitted = st.Emitted
	copy(g.wsPos, st.WSPos)
	copy(g.wsActiveCur, st.WSActiveCur)
	copy(g.wsSweepPos, st.WSSweepPos)
	return nil
}
