package trace

import "testing"

// sweepConfig builds a single-region sweep generator.
func sweepConfig(lines int) Config {
	return Config{
		MemFrac:     1,
		WorkingSets: []WS{{Lines: lines, Weight: 1, Sweep: true}},
		LineBytes:   64,
		Seed:        9,
	}
}

func TestSweepCyclesInOrder(t *testing.T) {
	g := NewGenerator(sweepConfig(8))
	var r Record
	var lines []uint64
	for len(lines) < 16 {
		g.Next(&r)
		if r.Kind == KindLoad || r.Kind == KindStore {
			lines = append(lines, r.Addr/64)
		}
	}
	// The second pass must repeat the first pass exactly (cyclic sweep).
	for i := 0; i < 8; i++ {
		if lines[i] != lines[i+8] {
			t.Fatalf("sweep not cyclic: pass1[%d]=%d pass2[%d]=%d", i, lines[i], i, lines[i+8])
		}
	}
	// All 8 lines are distinct within a pass.
	seen := map[uint64]bool{}
	for _, l := range lines[:8] {
		if seen[l] {
			t.Fatalf("line %d repeated within a pass", l)
		}
		seen[l] = true
	}
}

func TestSweepFootprintExact(t *testing.T) {
	g := NewGenerator(sweepConfig(37))
	var r Record
	distinct := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		g.Next(&r)
		if r.Kind == KindLoad || r.Kind == KindStore {
			distinct[r.Addr] = true
		}
	}
	if len(distinct) != 37 {
		t.Fatalf("sweep footprint = %d lines, want exactly 37", len(distinct))
	}
}

// TestSweepLRUAllOrNothing verifies the property the workload model
// depends on: a cyclic sweep under LRU hits when its footprint fits the
// capacity and misses entirely when it exceeds it by even one line.
func TestSweepLRUAllOrNothing(t *testing.T) {
	simulate := func(footprint, capacity int) float64 {
		// Fully-associative LRU of `capacity` lines.
		stack := make([]uint64, 0, capacity)
		g := NewGenerator(sweepConfig(footprint))
		var r Record
		hits, accesses := 0, 0
		for accesses < footprint*20 {
			g.Next(&r)
			if r.Kind != KindLoad && r.Kind != KindStore {
				continue
			}
			accesses++
			line := r.Addr / 64
			found := -1
			for i, l := range stack {
				if l == line {
					found = i
					break
				}
			}
			if found >= 0 {
				hits++
				stack = append(stack[:found], stack[found+1:]...)
			} else if len(stack) == capacity {
				stack = stack[1:]
			}
			stack = append(stack, line)
		}
		return float64(hits) / float64(accesses)
	}
	if hr := simulate(16, 16); hr < 0.9 {
		t.Fatalf("fitting sweep hit rate = %v, want ~1", hr)
	}
	if hr := simulate(17, 16); hr > 0.05 {
		t.Fatalf("overflowing sweep hit rate = %v, want ~0", hr)
	}
}

func TestSweepPhaseOscillationShrinksFootprint(t *testing.T) {
	cfg := sweepConfig(100)
	cfg.PhasePeriod = 2000
	cfg.PhaseDepth = 0.1
	g := NewGenerator(cfg)
	var r Record
	first := map[uint64]bool{}
	for g.memCount < 1000 {
		g.Next(&r)
		first[r.Addr] = true
	}
	second := map[uint64]bool{}
	for g.memCount < 2000 {
		g.Next(&r)
		second[r.Addr] = true
	}
	if len(second) >= len(first)/2 {
		t.Fatalf("small phase footprint %d not below large phase %d", len(second), len(first))
	}
}

func TestMixedSweepAndRandomRegions(t *testing.T) {
	cfg := Config{
		MemFrac: 1,
		WorkingSets: []WS{
			{Lines: 16, Weight: 3, Sweep: true},
			{Lines: 64, Weight: 1},
		},
		LineBytes: 64,
		Seed:      4,
	}
	g := NewGenerator(cfg)
	var r Record
	distinct := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		g.Next(&r)
		distinct[r.Addr] = true
	}
	// 16 sweep lines + up to 64 random lines, in disjoint regions.
	if len(distinct) > 80 || len(distinct) < 70 {
		t.Fatalf("distinct lines = %d, want ~80", len(distinct))
	}
}
