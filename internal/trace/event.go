package trace

import "unsafe"

// Event-compressed generation (DESIGN.md §10). The large majority of
// records in most mixes are ALU instructions whose only architectural
// effects are one RNG draw and a sequential PC advance; materializing
// a Record for each one is pure overhead for a consumer that models
// them as "retire one slot, maybe fetch a new I-line". An Event
// run-length-encodes the stream: a run of consecutive ALU instructions
// (count + starting PC, the rest of the walk being `+4, wrap at the
// code region's end`) followed by the non-ALU record that terminated
// the run. The event stream performs the exact per-record RNG draw
// sequence of Next/Fill — compression removes Record materialization,
// not randomness — so it decompresses to the bit-identical record
// stream (TestEventStreamMatchesNext, FuzzEventStreamMatchesNext), and
// events can be interleaved freely with Next/Fill calls on the same
// generator.

// MaxALURun caps the ALU run length of a single Event so that a
// branch-free, memory-free configuration (BranchFrac+MemFrac == 0,
// a legal config used by CPU unit tests) cannot spin NextEvent
// forever. A capped event carries HasRec == false and the next event
// continues the run.
const MaxALURun = 1 << 16

// Event is one run-length-encoded span of the instruction stream: a
// run of ALURun consecutive ALU instructions starting at ALUPC (PCs
// advance by 4, wrapping from the code region's limit to its base —
// CodeBounds), followed by the single non-ALU record Rec. A run capped
// at MaxALURun carries HasRec == false and no record.
type Event struct {
	Rec    Record // terminating non-ALU record (valid only if HasRec)
	ALUPC  uint64 // PC of the run's first ALU instruction (if ALURun > 0)
	ALURun int    // number of ALU instructions preceding Rec
	HasRec bool   // false only when the run was capped at MaxALURun
}

// CodeBounds returns the [base, limit) byte range of the code region:
// sequential PCs advance by 4 within it and wrap from limit to base.
// Consumers replaying an ALU run's PC walk (cpu.Core.StepEvent) need
// the same bounds the generator walks with.
func (g *Generator) CodeBounds() (base, limit uint64) {
	return g.codeBase, g.codeBase + uint64(g.cfg.CodeLines)*uint64(g.cfg.LineBytes)
}

// NextEvent fills ev with the next event of the stream. It is the
// one-event form of FillEvents, which holds the canonical event loop;
// the two are bit-identical by construction. The simulator's cores
// consume the stream through NextEvent one event at a time — the same
// per-pull discipline as Next (DESIGN.md §2): generation stays
// interleaved with the memory-bound cache-model work it overlaps with.
func (g *Generator) NextEvent(ev *Event) {
	// A one-element view of ev itself (plain pointer-to-slice
	// conversion; ev is a valid *Event) — the consumer's event is
	// filled in place, with no intermediate copy on the hot path.
	g.FillEvents(unsafe.Slice(ev, 1))
}

// FillEvents overwrites evs with the next len(evs) events of the
// stream. At the default FidelityExact tier the records the events
// decompress to are exactly the records Fill/Next would produce — each
// ALU instruction of a run still costs its one mixture draw
// (x >= MemFrac+BranchFrac), so the RNG walk, the PC walk and every
// downstream draw are unchanged; only the Record stores are elided.
// The record-materialization arm below mirrors Fill's body line for
// line and must stay in lockstep with it — the pairing is pinned by
// TestEventStreamMatchesNext and FuzzEventStreamMatchesNext. A
// FidelityFastForward (or higher — FidelitySetSampled keeps the same
// walk) config dispatches to the O(1) geometric run sampler instead
// (fidelity.go) — a different, statistically equivalent walk.
func (g *Generator) FillEvents(evs []Event) {
	if g.cfg.Fidelity >= FidelityFastForward {
		g.fillEventsFF(evs)
		return
	}
	cfg := &g.cfg
	rng := g.rng
	curPC := g.curPC
	pattern := g.pattern
	memCount := g.memCount
	strmPos := g.strmPos
	lineBytes := uint64(cfg.LineBytes)
	codeBase := g.codeBase
	codeLimit := codeBase + uint64(cfg.CodeLines)*lineBytes
	memFrac := cfg.MemFrac
	branchCut := cfg.MemFrac + cfg.BranchFrac
	streamFrac := cfg.StreamFrac
	hugeCut := cfg.StreamFrac + cfg.HugeFrac
	period, halfPeriod := phaseBounds(cfg.PhasePeriod, g.halfPeriod)
	phasePos := memCount % period
	var emitted uint64

	for i := range evs {
		ev := &evs[i]
		ev.ALUPC = curPC
		ev.HasRec = false
		run := 0
		for {
			x := rng.float()
			if x >= branchCut {
				// ALU: one draw, sequential PC advance, nothing else.
				run++
				curPC += 4
				if curPC >= codeLimit {
					curPC = codeBase
				}
				if run == MaxALURun {
					break
				}
				continue
			}
			r := &ev.Rec
			r.PC = curPC
			if x < memFrac {
				// Memory access: load or store with an address drawn from
				// the stream/huge/working-set mixture.
				memCount++
				if phasePos++; phasePos == period {
					phasePos = 0
				}
				if rng.float() < cfg.StoreFrac {
					r.Kind = KindStore
				} else {
					r.Kind = KindLoad
				}
				y := rng.float()
				var line uint64
				switch {
				case y < streamFrac:
					strmPos++
					line = g.strmBase + strmPos
				case y < hugeCut:
					line = g.hugeBase + uint64(rng.intn(cfg.HugeLines))
				default:
					// Working sets: pick one by weight, index uniformly
					// within the currently-active fraction of its footprint
					// (precomputed per phase; sweep positions maintained
					// division-free — see the Generator fast-path fields).
					z := rng.float()
					idx := len(g.wsCum) - 1
					for k, c := range g.wsCum {
						if z < c {
							idx = k
							break
						}
					}
					active := g.wsActiveFull[idx]
					if phasePos >= halfPeriod {
						active = g.wsActiveSmall[idx]
					}
					if cfg.WorkingSets[idx].Sweep {
						g.wsPos[idx]++
						pos := g.wsSweepPos[idx] + 1
						if g.wsActiveCur[idx] != active {
							g.wsActiveCur[idx] = active
							pos = g.wsPos[idx] % uint64(active)
						} else if pos >= uint64(active) {
							pos = 0
						}
						g.wsSweepPos[idx] = pos
						line = g.wsBase[idx] + pos
					} else {
						line = g.wsBase[idx] + uint64(rng.intn(active))
					}
				}
				r.Addr = line * lineBytes
			} else {
				// Branch with a partially-predictable outcome: drawn from a
				// 64-bit pattern register (learnable by gshare), flipped
				// randomly with probability BranchNoise.
				r.Kind = KindBranch
				bit := pattern & 1
				pattern = pattern>>1 | (pattern&1^pattern>>3&1)<<63 // LFSR-ish
				taken := bit == 1
				if rng.float() < cfg.BranchNoise {
					taken = rng.next()&1 == 0
				}
				r.Taken = taken
			}
			if r.Kind == KindBranch && r.Taken {
				// Jump to the start of a uniformly-chosen line of the region.
				curPC = codeBase + uint64(rng.intn(cfg.CodeLines))*lineBytes
			} else {
				curPC += 4
				if curPC >= codeLimit {
					curPC = codeBase
				}
			}
			ev.HasRec = true
			break
		}
		ev.ALURun = run
		emitted += uint64(run)
		if ev.HasRec {
			emitted++
		}
	}

	g.rng = rng
	g.curPC = curPC
	g.pattern = pattern
	g.memCount = memCount
	g.strmPos = strmPos
	g.emitted += emitted
}
