package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func baseConfig() Config {
	return Config{
		MemFrac:     0.3,
		StoreFrac:   0.3,
		BranchFrac:  0.15,
		BranchNoise: 0.05,
		StreamFrac:  0.2,
		HugeFrac:    0.1,
		HugeLines:   100000,
		WorkingSets: []WS{{Lines: 4096, Weight: 1}},
		MLP:         2,
		LineBytes:   64,
		Seed:        42,
	}
}

func TestValidateAcceptsBase(t *testing.T) {
	if err := baseConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.MemFrac = 1.5 },
		func(c *Config) { c.MemFrac = 0.7; c.BranchFrac = 0.6 },
		func(c *Config) { c.StreamFrac = 0.8; c.HugeFrac = 0.5 },
		func(c *Config) { c.HugeFrac = 0.2; c.HugeLines = 0 },
		func(c *Config) { c.WorkingSets = nil },
		func(c *Config) { c.WorkingSets = []WS{{Lines: -1, Weight: 1}} },
		func(c *Config) { c.MLP = 0.5 },
		func(c *Config) { c.LineBytes = 0 },
		func(c *Config) { c.PhaseDepth = 2 },
	}
	for i, mutate := range cases {
		cfg := baseConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("case %d: config should fail validation: %+v", i, cfg)
		}
	}
}

func TestInstructionMixFractions(t *testing.T) {
	g := NewGenerator(baseConfig())
	const n = 200000
	var counts [4]int
	var r Record
	for i := 0; i < n; i++ {
		g.Next(&r)
		counts[r.Kind]++
	}
	memFrac := float64(counts[KindLoad]+counts[KindStore]) / n
	brFrac := float64(counts[KindBranch]) / n
	if math.Abs(memFrac-0.3) > 0.01 {
		t.Errorf("memory fraction = %v, want ~0.3", memFrac)
	}
	if math.Abs(brFrac-0.15) > 0.01 {
		t.Errorf("branch fraction = %v, want ~0.15", brFrac)
	}
	storeFrac := float64(counts[KindStore]) / float64(counts[KindLoad]+counts[KindStore])
	if math.Abs(storeFrac-0.3) > 0.02 {
		t.Errorf("store fraction = %v, want ~0.3", storeFrac)
	}
	if g.Emitted() != n {
		t.Errorf("Emitted = %d, want %d", g.Emitted(), n)
	}
}

func TestDeterminism(t *testing.T) {
	g1 := NewGenerator(baseConfig())
	g2 := NewGenerator(baseConfig())
	var r1, r2 Record
	for i := 0; i < 10000; i++ {
		g1.Next(&r1)
		g2.Next(&r2)
		if r1 != r2 {
			t.Fatalf("record %d diverged: %+v vs %+v", i, r1, r2)
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	cfgA := baseConfig()
	cfgB := baseConfig()
	cfgB.Seed = 43
	g1, g2 := NewGenerator(cfgA), NewGenerator(cfgB)
	var r1, r2 Record
	same := 0
	for i := 0; i < 1000; i++ {
		g1.Next(&r1)
		g2.Next(&r2)
		if r1 == r2 {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produced %d/1000 identical records", same)
	}
}

func TestAddressesAreLineAligned(t *testing.T) {
	g := NewGenerator(baseConfig())
	var r Record
	for i := 0; i < 20000; i++ {
		g.Next(&r)
		if r.Kind == KindLoad || r.Kind == KindStore {
			if r.Addr%64 != 0 {
				t.Fatalf("address %#x not line aligned", r.Addr)
			}
		}
	}
}

func TestAddrBaseSeparatesSpaces(t *testing.T) {
	cfgA := baseConfig()
	cfgB := baseConfig()
	cfgB.AddrBase = 1 << 40
	gA, gB := NewGenerator(cfgA), NewGenerator(cfgB)
	var r Record
	seen := map[uint64]bool{}
	for i := 0; i < 50000; i++ {
		gA.Next(&r)
		if r.Kind == KindLoad || r.Kind == KindStore {
			seen[r.Addr] = true
		}
	}
	for i := 0; i < 50000; i++ {
		gB.Next(&r)
		if (r.Kind == KindLoad || r.Kind == KindStore) && seen[r.Addr] {
			t.Fatalf("address %#x appears in both address spaces", r.Addr)
		}
	}
}

func TestStreamingNeverRepeats(t *testing.T) {
	cfg := baseConfig()
	cfg.StreamFrac = 1
	cfg.HugeFrac = 0
	cfg.WorkingSets = nil
	g := NewGenerator(cfg)
	var r Record
	seen := map[uint64]bool{}
	for i := 0; i < 30000; i++ {
		g.Next(&r)
		if r.Kind != KindLoad && r.Kind != KindStore {
			continue
		}
		if seen[r.Addr] {
			t.Fatalf("streaming address %#x repeated", r.Addr)
		}
		seen[r.Addr] = true
	}
}

func TestWorkingSetBounded(t *testing.T) {
	cfg := baseConfig()
	cfg.StreamFrac = 0
	cfg.HugeFrac = 0
	cfg.WorkingSets = []WS{{Lines: 128, Weight: 1}}
	g := NewGenerator(cfg)
	var r Record
	distinct := map[uint64]bool{}
	for i := 0; i < 50000; i++ {
		g.Next(&r)
		if r.Kind == KindLoad || r.Kind == KindStore {
			distinct[r.Addr] = true
		}
	}
	if len(distinct) > 128 {
		t.Fatalf("working set of 128 lines produced %d distinct lines", len(distinct))
	}
	if len(distinct) < 100 {
		t.Fatalf("working set badly undersampled: %d distinct lines", len(distinct))
	}
}

func TestPhaseOscillation(t *testing.T) {
	cfg := baseConfig()
	cfg.StreamFrac = 0
	cfg.HugeFrac = 0
	cfg.WorkingSets = []WS{{Lines: 10000, Weight: 1}}
	cfg.PhasePeriod = 20000
	cfg.PhaseDepth = 0.01
	g := NewGenerator(cfg)
	var r Record
	// First half-phase: large footprint.
	firstHalf := map[uint64]bool{}
	for g.memCount < 10000 {
		g.Next(&r)
		if r.Kind == KindLoad || r.Kind == KindStore {
			firstHalf[r.Addr] = true
		}
	}
	secondHalf := map[uint64]bool{}
	for g.memCount < 20000 {
		g.Next(&r)
		if r.Kind == KindLoad || r.Kind == KindStore {
			secondHalf[r.Addr] = true
		}
	}
	if len(secondHalf) >= len(firstHalf)/4 {
		t.Fatalf("small phase footprint %d not much smaller than large phase %d",
			len(secondHalf), len(firstHalf))
	}
}

func TestBranchOutcomesMostlyPredictable(t *testing.T) {
	cfg := baseConfig()
	cfg.BranchNoise = 0
	g := NewGenerator(cfg)
	var r Record
	takenCount, branches := 0, 0
	for i := 0; i < 100000; i++ {
		g.Next(&r)
		if r.Kind == KindBranch {
			branches++
			if r.Taken {
				takenCount++
			}
		}
	}
	if branches == 0 {
		t.Fatal("no branches generated")
	}
	// The LFSR pattern is roughly balanced but deterministic.
	ratio := float64(takenCount) / float64(branches)
	if ratio < 0.2 || ratio > 0.8 {
		t.Fatalf("taken ratio = %v, want balanced-ish", ratio)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{KindALU: "alu", KindLoad: "load", KindStore: "store", KindBranch: "branch"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still stringify")
	}
}

// Property: generators never emit invalid kinds and memory addresses
// stay within the laid-out regions.
func TestPropertyRecordsWellFormed(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := baseConfig()
		cfg.Seed = seed
		g := NewGenerator(cfg)
		var r Record
		for i := 0; i < 2000; i++ {
			g.Next(&r)
			if r.Kind > KindBranch {
				return false
			}
			if (r.Kind == KindLoad || r.Kind == KindStore) && r.Addr == 0 {
				// Addr 0 would mean the mixture fell through.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
