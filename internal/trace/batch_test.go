package trace

import "testing"

// TestFillMatchesNext pins the batched-generation contract: a chunked
// consumer sees exactly the stream a per-record consumer sees, for any
// chunk size (including chunks that straddle phase boundaries).
func TestFillMatchesNext(t *testing.T) {
	cfg := baseConfig()
	cfg.PhasePeriod = 100 // oscillating footprint: chunks straddle phases
	cfg.PhaseDepth = 0.5
	for _, chunk := range []int{1, 7, 64, 256} {
		ref := NewGenerator(cfg)
		batched := NewGenerator(cfg)
		buf := make([]Record, chunk)
		const total = 4096
		var consumed int
		var want Record
		for consumed < total {
			batched.Fill(buf)
			for i := range buf {
				ref.Next(&want)
				got := buf[i]
				// Compare the fields Next defines for the kind: Addr is
				// only meaningful for loads/stores and Taken only for
				// branches (Next leaves don't-care fields stale, as the
				// pre-batching consumer's reused Record did).
				same := got.Kind == want.Kind && got.PC == want.PC
				if want.Kind == KindLoad || want.Kind == KindStore {
					same = same && got.Addr == want.Addr
				}
				if want.Kind == KindBranch {
					same = same && got.Taken == want.Taken
				}
				if !same {
					t.Fatalf("chunk %d, record %d: Fill %+v != Next %+v",
						chunk, consumed+i, got, want)
				}
			}
			consumed += chunk
		}
		if batched.Emitted() != ref.Emitted() {
			t.Fatalf("chunk %d: Emitted %d != %d", chunk, batched.Emitted(), ref.Emitted())
		}
	}
}

func BenchmarkFill(b *testing.B) {
	g := NewGenerator(baseConfig())
	buf := make([]Record, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(buf) {
		g.Fill(buf)
	}
}
