// Package trace generates synthetic instruction and address streams
// that stand in for the SPEC CPU2006 reference runs used by the paper
// (see DESIGN.md §5: the module is offline and SPEC is proprietary, so
// benchmarks are modelled as reuse-distance mixtures).
//
// A benchmark is described by a Config: the instruction mix (memory,
// branch, ALU fractions), a branch-outcome process with tunable
// predictability, and an address process that mixes
//
//   - a streaming component (sequential lines, no reuse — compulsory
//     misses, insensitive to cache allocation),
//   - a "huge" component (uniform over a footprint much larger than the
//     LLC — linear, shallow utility curve), and
//   - hot working sets (uniform over footprints of a few LLC ways —
//     step/knee utility curves).
//
// The mixture directly controls the benchmark's miss curve versus
// allocated LLC ways, which is the only property the paper's
// partitioning algorithms observe. Footprints can oscillate in size
// over time (PhasePeriod/PhaseDepth) to model applications whose cache
// requirements change between program phases — the behaviour the paper
// attributes to astar, bzip2, gcc and povray.
package trace

import (
	"fmt"
	"math"
)

// Kind is an instruction class.
type Kind uint8

// Instruction kinds produced by a Generator.
const (
	KindALU Kind = iota
	KindLoad
	KindStore
	KindBranch
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindALU:
		return "alu"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindBranch:
		return "branch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one synthetic instruction. Fields are ordered 8-byte-first
// so the struct packs into 24 bytes — records stream through per-core
// chunks (see Fill), so their size is hot-loop memory traffic.
type Record struct {
	Addr  uint64 // byte address (loads/stores)
	PC    uint64 // program counter (every instruction; drives I-fetch)
	Kind  Kind
	Taken bool // branch outcome (branches)
}

// WS is one hot working set of Lines cache lines, chosen with
// probability proportional to Weight among the working-set share of
// memory accesses. With Sweep false, lines are accessed uniformly at
// random (smoothly decaying utility curve); with Sweep true the set is
// accessed as a cyclic sweep, which under LRU hits only when the whole
// footprint fits in the allocation — a sharp utility knee at the
// footprint size, like the flat-beyond-the-knee curves of real
// applications.
type WS struct {
	Lines  int
	Weight float64
	Sweep  bool
}

// Config describes one synthetic benchmark. All fractions are in
// [0, 1]; StreamFrac + HugeFrac <= 1 with the remainder going to the
// working sets.
type Config struct {
	MemFrac    float64 // fraction of instructions that access memory
	StoreFrac  float64 // fraction of memory accesses that are stores
	BranchFrac float64 // fraction of instructions that are branches

	BranchNoise float64 // probability a branch outcome is random

	StreamFrac  float64 // of memory accesses: sequential streaming
	HugeFrac    float64 // of memory accesses: uniform over HugeLines
	HugeLines   int
	WorkingSets []WS

	PhasePeriod int     // memory accesses per footprint oscillation (0 = stable)
	PhaseDepth  float64 // in the small phase, active fraction of each WS

	MLP float64 // intrinsic memory-level parallelism (miss overlap), >= 1

	// CodeLines is the instruction footprint in cache lines: the PC
	// advances sequentially and taken branches jump uniformly within
	// this region, so large-code benchmarks (gcc, perlbench) produce
	// L1I misses and LLC instruction traffic. Minimum 1.
	CodeLines int

	LineBytes int    // cache line size for address alignment
	AddrBase  uint64 // high-bit offset separating address spaces
	Seed      uint64

	// Fidelity selects the RNG-walk tier of the event stream: the zero
	// value (FidelityExact) is the bit-identical per-draw walk;
	// FidelityFastForward opts the event path into the O(1) geometric
	// run sampler (see fidelity.go). Next/Fill are exact at any tier.
	Fidelity Fidelity
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	frac := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("trace: %s = %v outside [0,1]", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"MemFrac", c.MemFrac}, {"StoreFrac", c.StoreFrac},
		{"BranchFrac", c.BranchFrac}, {"BranchNoise", c.BranchNoise},
		{"StreamFrac", c.StreamFrac}, {"HugeFrac", c.HugeFrac},
		{"PhaseDepth", c.PhaseDepth},
	} {
		if err := frac(f.name, f.v); err != nil {
			return err
		}
	}
	if c.MemFrac+c.BranchFrac > 1 {
		return fmt.Errorf("trace: MemFrac+BranchFrac = %v > 1", c.MemFrac+c.BranchFrac)
	}
	if c.StreamFrac+c.HugeFrac > 1 {
		return fmt.Errorf("trace: StreamFrac+HugeFrac = %v > 1", c.StreamFrac+c.HugeFrac)
	}
	if c.HugeFrac > 0 && c.HugeLines <= 0 {
		return fmt.Errorf("trace: HugeFrac set but HugeLines = %d", c.HugeLines)
	}
	wsShare := 1 - c.StreamFrac - c.HugeFrac
	if wsShare > 1e-9 && len(c.WorkingSets) == 0 {
		return fmt.Errorf("trace: %.2f of accesses go to working sets but none defined", wsShare)
	}
	for i, ws := range c.WorkingSets {
		if ws.Lines <= 0 || ws.Weight < 0 {
			return fmt.Errorf("trace: working set %d invalid: %+v", i, ws)
		}
	}
	if c.MLP < 1 && c.MLP != 0 {
		return fmt.Errorf("trace: MLP = %v must be >= 1", c.MLP)
	}
	if c.LineBytes <= 0 {
		return fmt.Errorf("trace: LineBytes = %d", c.LineBytes)
	}
	if err := c.Fidelity.Validate(); err != nil {
		return err
	}
	return nil
}

// rng is a SplitMix64 generator: tiny, fast and deterministic.
type rng struct{ state uint64 }

// smGamma is SplitMix64's state increment: the state after n draws is
// state + n*smGamma (wrapping), which is what lets the FastForward
// tier jump an ALU run's draws in O(1) (rng.jump, fidelity.go).
const smGamma = 0x9e3779b97f4a7c15

// smMix is SplitMix64's output finalizer.
func smMix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) next() uint64 {
	r.state += smGamma
	return smMix(r.state)
}

// jump advances the state exactly as n sequential next calls would,
// without computing their outputs: SplitMix64's state after n draws is
// state + n*smGamma (wrapping), so the jump and the walk leave the
// generator byte-identical (pinned by FuzzFastForwardStateJump).
func (r *rng) jump(n uint64) { r.state += n * smGamma }

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Generator produces the instruction stream for one benchmark.
type Generator struct {
	cfg      Config
	rng      rng
	wsCum    []float64 // cumulative weights over working sets
	wsBase   []uint64  // line-address base of each working set
	wsPos    []uint64  // sweep position of each working set
	hugeBase uint64
	strmBase uint64
	strmPos  uint64
	memCount uint64 // memory accesses generated (drives phases)
	pattern  uint64 // branch-outcome pattern state
	codeBase uint64 // byte base of the code region
	curPC    uint64 // current program counter (bytes)
	emitted  uint64

	// Division-free fast paths for the per-access hot loop. A 64-bit
	// divide by a runtime divisor costs tens of cycles on most cores,
	// and the working-set arm used to pay up to two per access
	// (memCount%PhasePeriod and the sweep's wsPos%active). All are
	// exact caches of the modulo expressions they replace, so the
	// emitted stream is bit-identical (pinned by the §10 differential
	// tests and TestFillMatchesNext).
	wsActiveFull  []int    // int(float64(Lines)*1), the large-phase active size
	wsActiveSmall []int    // int(float64(Lines)*PhaseDepth), clamped to >= 1
	wsActiveCur   []int    // active size wsSweepPos is maintained for (0 = unset)
	wsSweepPos    []uint64 // wsPos[i] % wsActiveCur[i], maintained incrementally
	halfPeriod    uint64   // uint64(PhasePeriod)/2

	// FastForward run-length sampler state (fidelity.go): the
	// geometric CDF over run lengths with pALU = 1-MemFrac-BranchFrac,
	// tabulated so one uniform draw per event yields both the run
	// length (linear scan over cum — a compare costs a fraction of the
	// SplitMix64 draw it replaces, and the scan exit is the only
	// unpredictable branch per event) and, rescaled through (lo,
	// scale), the run-terminating mixture draw — no second draw.
	// ffLogALU = log(pALU) resolves the rare beyond-table tail.
	ffTab    []ffEntry
	ffLogALU float64
}

// ffEntry is one run length's slice of the FastForward sampler's CDF:
// a uniform u in [lo, cum) selects run k, and (u-lo)*scale recovers a
// uniform [0, branchCut) variate — the exact conditional distribution
// of the per-draw walk's run-ending draw — for the terminator arm.
type ffEntry struct {
	cum   float64 // P(run <= k) = 1 - pALU^(k+1)
	lo    float64 // P(run < k); cum of the previous entry
	scale float64 // branchCut / (cum - lo)
}

// ffTabLen bounds the FastForward sampler's CDF table. P(run >= 64)
// is ~2e-19 at the paper's ~half-ALU mixes and ~1e-3 even at 90% ALU,
// so the log fallback is cold everywhere and the per-event compare
// count is capped at 64 however long runs get.
const ffTabLen = 64

// NewGenerator builds a generator. It panics on an invalid config:
// benchmark definitions are compiled into the workload package, so
// failure is a programming error.
func NewGenerator(cfg Config) *Generator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.MLP == 0 {
		cfg.MLP = 1
	}
	g := &Generator{cfg: cfg, rng: rng{state: cfg.Seed ^ 0xabcdef12345678}}
	// Lay out the address space regions, line-granular, spaced far
	// apart so regions never overlap: stream, huge, then working sets.
	next := cfg.AddrBase >> uint(log2(cfg.LineBytes))
	g.strmBase = next
	next += 1 << 30
	g.hugeBase = next
	next += uint64(cfg.HugeLines) + 1<<24
	var total float64
	for _, ws := range cfg.WorkingSets {
		total += ws.Weight
	}
	cum := 0.0
	for _, ws := range cfg.WorkingSets {
		g.wsBase = append(g.wsBase, next)
		g.wsPos = append(g.wsPos, 0)
		next += uint64(ws.Lines) + 1<<24
		if total > 0 {
			cum += ws.Weight / total
		}
		g.wsCum = append(g.wsCum, cum)
		// The two possible active footprint sizes (the phase scale is
		// either 1 or PhaseDepth), precomputed with exactly the
		// expression the access path used to evaluate per access.
		g.wsActiveFull = append(g.wsActiveFull, activeLines(ws.Lines, 1))
		g.wsActiveSmall = append(g.wsActiveSmall, activeLines(ws.Lines, cfg.PhaseDepth))
		g.wsActiveCur = append(g.wsActiveCur, 0)
		g.wsSweepPos = append(g.wsSweepPos, 0)
	}
	g.halfPeriod = uint64(cfg.PhasePeriod) / 2
	if g.cfg.CodeLines < 1 {
		g.cfg.CodeLines = 1
	}
	g.codeBase = next * uint64(cfg.LineBytes)
	g.curPC = g.codeBase
	g.pattern = cfg.Seed | 1
	// The table-built condition must stay aligned with fillEventsFF's
	// dispatch (which keys on len(ffTab) and branchCut): pALU is
	// derived from the same branchCut sum the sampler compares
	// against, so a mix whose non-ALU fraction underflows pALU to
	// exactly 1.0 (no terminator resolvable at float precision) leaves
	// the table nil and the sampler treats it as pure-ALU.
	branchCut := cfg.MemFrac + cfg.BranchFrac
	if pALU := 1 - branchCut; pALU > 0 && pALU < 1 {
		g.ffLogALU = math.Log(pALU)
		g.ffTab = make([]ffEntry, ffTabLen)
		p, lo := 1.0, 0.0
		for i := range g.ffTab {
			p *= pALU
			cum := 1 - p
			// cum saturates at 1.0 once pALU^(k+1) underflows the
			// float64 step below 1; those entries are unreachable
			// (u < 1 always) and the last reachable entry's slice
			// stays well-formed (cum - lo > 0).
			g.ffTab[i] = ffEntry{cum: cum, lo: lo, scale: branchCut / (cum - lo)}
			lo = cum
		}
	}
	return g
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Emitted returns how many records have been produced.
func (g *Generator) Emitted() uint64 { return g.emitted }

// MLP returns the benchmark's intrinsic memory-level parallelism.
func (g *Generator) MLP() float64 { return g.cfg.MLP }

// Next fills r with the next instruction. It is the one-record form of
// Fill, which holds the canonical generation logic; the two are
// bit-identical by construction. The simulator's cores consume the
// stream through Next — see cpu.Core.Step for why per-record
// consumption beats chunked prefetch there — while batch consumers
// call Fill directly.
func (g *Generator) Next(r *Record) {
	var one [1]Record
	g.Fill(one[:])
	*r = one[0]
}

// Fill overwrites buf with the next len(buf) records of the stream —
// exactly the records len(buf) successive Next calls would produce
// (the stream is a pure function of the generator's state, so chunked
// and per-record consumption are bit-identical).
//
// Trace generation is the hot loop of the whole simulator (every core
// consumes one record per instruction), so the generator's scalar
// state — the RNG walk, PC, phase and stream counters — is hoisted
// into locals for the duration of the batch: they live in registers
// instead of being loaded and stored through g on every record, which
// makes batched generation ~20% faster per record than the old
// per-record implementation (BenchmarkFill vs BenchmarkTraceGenerator).
// The record logic itself (mixture draws, RNG call order) is unchanged,
// keeping the stream bit-identical.
func (g *Generator) Fill(buf []Record) {
	cfg := &g.cfg
	rng := g.rng
	curPC := g.curPC
	pattern := g.pattern
	memCount := g.memCount
	strmPos := g.strmPos
	lineBytes := uint64(cfg.LineBytes)
	codeBase := g.codeBase
	codeLimit := codeBase + uint64(cfg.CodeLines)*lineBytes
	memFrac := cfg.MemFrac
	branchCut := cfg.MemFrac + cfg.BranchFrac
	streamFrac := cfg.StreamFrac
	hugeCut := cfg.StreamFrac + cfg.HugeFrac
	period, halfPeriod := phaseBounds(cfg.PhasePeriod, g.halfPeriod)
	phasePos := memCount % period

	for i := range buf {
		r := &buf[i]
		r.PC = curPC
		x := rng.float()
		switch {
		case x < memFrac:
			// Memory access: load or store with an address drawn from
			// the stream/huge/working-set mixture.
			memCount++
			if phasePos++; phasePos == period {
				phasePos = 0
			}
			if rng.float() < cfg.StoreFrac {
				r.Kind = KindStore
			} else {
				r.Kind = KindLoad
			}
			y := rng.float()
			var line uint64
			switch {
			case y < streamFrac:
				strmPos++
				line = g.strmBase + strmPos
			case y < hugeCut:
				line = g.hugeBase + uint64(rng.intn(cfg.HugeLines))
			default:
				// Working sets: pick one by weight, index uniformly
				// within the currently-active fraction of its footprint
				// (precomputed per phase; sweep positions maintained
				// division-free — see the Generator fast-path fields).
				z := rng.float()
				idx := len(g.wsCum) - 1
				for k, c := range g.wsCum {
					if z < c {
						idx = k
						break
					}
				}
				active := g.wsActiveFull[idx]
				if phasePos >= halfPeriod {
					active = g.wsActiveSmall[idx]
				}
				if cfg.WorkingSets[idx].Sweep {
					g.wsPos[idx]++
					pos := g.wsSweepPos[idx] + 1
					if g.wsActiveCur[idx] != active {
						g.wsActiveCur[idx] = active
						pos = g.wsPos[idx] % uint64(active)
					} else if pos >= uint64(active) {
						pos = 0
					}
					g.wsSweepPos[idx] = pos
					line = g.wsBase[idx] + pos
				} else {
					line = g.wsBase[idx] + uint64(rng.intn(active))
				}
			}
			r.Addr = line * lineBytes
		case x < branchCut:
			// Branch with a partially-predictable outcome: drawn from a
			// 64-bit pattern register (learnable by gshare), flipped
			// randomly with probability BranchNoise.
			r.Kind = KindBranch
			bit := pattern & 1
			pattern = pattern>>1 | (pattern&1^pattern>>3&1)<<63 // LFSR-ish
			taken := bit == 1
			if rng.float() < cfg.BranchNoise {
				taken = rng.next()&1 == 0
			}
			r.Taken = taken
		default:
			r.Kind = KindALU
		}
		if r.Kind == KindBranch && r.Taken {
			// Jump to the start of a uniformly-chosen line of the region.
			curPC = codeBase + uint64(rng.intn(cfg.CodeLines))*lineBytes
		} else {
			curPC += 4
			if curPC >= codeLimit {
				curPC = codeBase
			}
		}
	}

	g.rng = rng
	g.curPC = curPC
	g.pattern = pattern
	g.memCount = memCount
	g.strmPos = strmPos
	g.emitted += uint64(len(buf))
}

// phaseBounds returns the (period, half-period) pair the hot loops
// maintain the phase position against. A phase-free config maps to an
// unreachable period so the small-phase compare is always false and
// the wrap never fires — no branch on PhasePeriod in the loop.
func phaseBounds(period int, half uint64) (uint64, uint64) {
	if period == 0 {
		return ^uint64(0), ^uint64(0)
	}
	return uint64(period), half
}

// activeLines is the active fraction of a working-set footprint under
// a phase scale — the exact expression the access path historically
// computed inline, so the precomputed values are bit-identical.
func activeLines(lines int, scale float64) int {
	active := int(float64(lines) * scale)
	if active < 1 {
		active = 1
	}
	return active
}

// log2 returns floor(log2(v)) for positive v.
func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
