package trace

import (
	"math"
	"testing"
)

func TestFidelityStringParse(t *testing.T) {
	for _, f := range []Fidelity{FidelityExact, FidelityFastForward} {
		got, err := ParseFidelity(f.String())
		if err != nil || got != f {
			t.Fatalf("ParseFidelity(%q) = %v, %v", f.String(), got, err)
		}
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ParseFidelity("bogus"); err == nil {
		t.Fatal("ParseFidelity accepted an unknown tier")
	}
	if err := Fidelity(7).Validate(); err == nil {
		t.Fatal("Validate accepted an unknown tier")
	}
	cfg := baseConfig()
	cfg.Fidelity = Fidelity(7)
	if err := cfg.Validate(); err == nil {
		t.Fatal("Config.Validate accepted an unknown fidelity")
	}
}

// TestAdvancePCMatchesWalk pins the O(1) PC advance against the
// literal per-step walk (pc += 4, wrap from limit to base) across
// region shapes, starting offsets and step counts, including bounds
// not divisible by 4.
func TestAdvancePCMatchesWalk(t *testing.T) {
	walk := func(pc, base, limit uint64, steps uint64) uint64 {
		for i := uint64(0); i < steps; i++ {
			pc += 4
			if pc >= limit {
				pc = base
			}
		}
		return pc
	}
	cases := []struct{ base, size uint64 }{
		{0x1000, 64}, {0x1000, 4}, {0x40, 6}, {0x80, 129}, {0, 256},
	}
	for _, c := range cases {
		limit := c.base + c.size
		for pc := c.base; pc < limit; pc += 4 {
			for _, steps := range []uint64{0, 1, 2, 3, 7, 31, 64, 200, 1000} {
				want := walk(pc, c.base, limit, steps)
				got := advancePC(pc, c.base, limit, steps)
				if got != want {
					t.Fatalf("advancePC(%#x, %#x, %#x, %d) = %#x, want %#x",
						pc, c.base, limit, steps, got, want)
				}
			}
		}
	}
}

// TestFastForwardDeterministic pins the tier's reproducibility: two
// FastForward generators with the same config produce byte-identical
// event streams, and a fresh pair re-produces them again.
func TestFastForwardDeterministic(t *testing.T) {
	cfg := baseConfig()
	cfg.Fidelity = FidelityFastForward
	a, b := NewGenerator(cfg), NewGenerator(cfg)
	var ea, eb Event
	for i := 0; i < 5000; i++ {
		a.NextEvent(&ea)
		b.NextEvent(&eb)
		if ea != eb {
			t.Fatalf("event %d diverged: %+v != %+v", i, ea, eb)
		}
	}
	if a.Emitted() != b.Emitted() {
		t.Fatalf("Emitted diverged: %d != %d", a.Emitted(), b.Emitted())
	}
}

// TestFastForwardPureALUCap pins the capped-event contract at the
// FastForward tier: a memory- and branch-free mix is an endless ALU
// run delivered as record-less MaxALURun events, exactly like the
// exact tier's (TestEventRunCap), with the PC walk wrapping in step.
func TestFastForwardPureALUCap(t *testing.T) {
	cfg := Config{StreamFrac: 1, LineBytes: 64, CodeLines: 2, Seed: 9, Fidelity: FidelityFastForward}
	g := NewGenerator(cfg)
	base, _ := g.CodeBounds()
	var ev Event
	for i := 0; i < 2; i++ {
		g.NextEvent(&ev)
		if ev.HasRec || ev.ALURun != MaxALURun {
			t.Fatalf("pure-ALU event %d = {run %d hasRec %v}, want capped run %d",
				i, ev.ALURun, ev.HasRec, MaxALURun)
		}
		// 2 lines of 16 instructions: every 65536-instruction run lands
		// back on the base.
		if ev.ALUPC != base {
			t.Fatalf("run %d starts at %#x, want %#x", i, ev.ALUPC, base)
		}
	}
	if g.Emitted() != 2*MaxALURun {
		t.Fatalf("Emitted = %d, want %d", g.Emitted(), 2*MaxALURun)
	}
}

// TestFastForwardTinyTerminatorFraction is the regression test for
// the sampler-guard mismatch: a valid config whose non-ALU fraction
// is so small that 1-branchCut rounds to exactly 1.0 builds no CDF
// table, and the sampler must treat it as pure-ALU (capped record-
// less events) instead of dividing by the zero log and emitting a
// garbage negative run.
func TestFastForwardTinyTerminatorFraction(t *testing.T) {
	cfg := Config{MemFrac: 1e-17, StoreFrac: 0.5, LineBytes: 64, CodeLines: 2, Seed: 3,
		WorkingSets: []WS{{Lines: 16, Weight: 1}},
		Fidelity:    FidelityFastForward}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(cfg)
	var ev Event
	for i := 0; i < 4; i++ {
		g.NextEvent(&ev)
		if ev.ALURun != MaxALURun || ev.HasRec {
			t.Fatalf("event %d = {run %d hasRec %v}, want capped pure-ALU run %d",
				i, ev.ALURun, ev.HasRec, MaxALURun)
		}
	}
	if g.Emitted() != 4*MaxALURun {
		t.Fatalf("Emitted = %d, want %d", g.Emitted(), 4*MaxALURun)
	}
}

// TestFastForwardNoALUBitIdenticalTerminators pins the terminator-
// materialisation arm of fillEventsFF bit-exactly against the exact
// tier: with MemFrac+BranchFrac summing to exactly 1.0 no ALU runs
// exist, both tiers consume one draw per event (FastForward scales it
// by branchCut == 1.0, a float no-op), and every downstream draw —
// store/address mixture, sweeps, phases, branch pattern, PC updates —
// must match byte for byte. This is the lockstep guard for the copied
// record arm (the FillEvents copy is pinned by
// FuzzEventStreamMatchesNext); a behavioural edit to one copy but not
// the other trips it deterministically, not statistically.
func TestFastForwardNoALUBitIdenticalTerminators(t *testing.T) {
	cfg := baseConfig()
	cfg.MemFrac, cfg.BranchFrac = 0.75, 0.25 // sums to exactly 1.0 in float64
	cfg.PhasePeriod = 64
	cfg.PhaseDepth = 0.25
	cfg.CodeLines = 24
	cfg.WorkingSets = append(cfg.WorkingSets, WS{Lines: 512, Weight: 2, Sweep: true})
	exact := NewGenerator(cfg)
	cfg.Fidelity = FidelityFastForward
	ff := NewGenerator(cfg)
	var ee, fe Event
	for i := 0; i < 20000; i++ {
		exact.NextEvent(&ee)
		ff.NextEvent(&fe)
		if ee != fe {
			t.Fatalf("event %d diverged:\nexact: %+v\nff:    %+v", i, ee, fe)
		}
	}
	if exact.Emitted() != ff.Emitted() {
		t.Fatalf("Emitted diverged: %d != %d", exact.Emitted(), ff.Emitted())
	}
}

// TestFastForwardNoALUMix pins the degenerate run-free mix
// (MemFrac+BranchFrac == 1): every event is a bare terminating record,
// as at the exact tier.
func TestFastForwardNoALUMix(t *testing.T) {
	cfg := baseConfig()
	cfg.MemFrac, cfg.BranchFrac = 0.7, 0.3
	cfg.Fidelity = FidelityFastForward
	g := NewGenerator(cfg)
	var ev Event
	for i := 0; i < 1000; i++ {
		g.NextEvent(&ev)
		if ev.ALURun != 0 || !ev.HasRec {
			t.Fatalf("event %d = {run %d hasRec %v}, want bare record", i, ev.ALURun, ev.HasRec)
		}
		if ev.Rec.Kind == KindALU {
			t.Fatalf("event %d materialised an ALU terminator", i)
		}
	}
	if g.Emitted() != 1000 {
		t.Fatalf("Emitted = %d, want 1000", g.Emitted())
	}
}

// TestFastForwardAllocationFree extends the hot-path pinning
// discipline to the FastForward event path.
func TestFastForwardAllocationFree(t *testing.T) {
	cfg := baseConfig()
	cfg.Fidelity = FidelityFastForward
	g := NewGenerator(cfg)
	var ev Event
	if n := testing.AllocsPerRun(1000, func() {
		g.NextEvent(&ev)
	}); n != 0 {
		t.Fatalf("FastForward NextEvent allocates %v per event, want 0", n)
	}
}

// harvestEvents drains events until total instructions crosses budget,
// returning the run-length histogram (index MaxRun+1 is the overflow
// tail) and per-kind terminator counts.
func harvestEvents(g *Generator, budget uint64, maxRun int) (runs []uint64, kinds [4]uint64) {
	runs = make([]uint64, maxRun+2)
	var ev Event
	for total := uint64(0); total < budget; {
		g.NextEvent(&ev)
		total += uint64(ev.ALURun)
		if ev.HasRec {
			total++
			kinds[ev.Rec.Kind]++
			if ev.ALURun > maxRun {
				runs[maxRun+1]++
			} else {
				runs[ev.ALURun]++
			}
		}
		// Capped record-less events are run continuations, not complete
		// geometric samples; both tiers produce them identically rarely
		// at these mixes, so they are excluded from the histogram.
	}
	return runs, kinds
}

// chiSquaredTwoSample computes the two-sample homogeneity statistic
// over the given histograms, merging sparse bins (combined count < 40)
// into their right neighbour, and returns (statistic, degrees of
// freedom).
func chiSquaredTwoSample(o1, o2 []uint64) (float64, int) {
	var m1, m2 []float64
	var acc1, acc2 float64
	for i := range o1 {
		acc1 += float64(o1[i])
		acc2 += float64(o2[i])
		if acc1+acc2 >= 40 {
			m1 = append(m1, acc1)
			m2 = append(m2, acc2)
			acc1, acc2 = 0, 0
		}
	}
	if acc1+acc2 > 0 && len(m1) > 0 {
		m1[len(m1)-1] += acc1
		m2[len(m2)-1] += acc2
	}
	var n1, n2 float64
	for i := range m1 {
		n1 += m1[i]
		n2 += m2[i]
	}
	var chi2 float64
	for i := range m1 {
		tot := m1[i] + m2[i]
		if tot == 0 {
			continue
		}
		e1 := tot * n1 / (n1 + n2)
		e2 := tot * n2 / (n1 + n2)
		chi2 += (m1[i]-e1)*(m1[i]-e1)/e1 + (m2[i]-e2)*(m2[i]-e2)/e2
	}
	return chi2, len(m1) - 1
}

// chi2Threshold approximates the chi-squared critical value at
// p ~ 1e-3 for df degrees of freedom (Wilson-Hilferty); the test is
// deterministic (fixed seeds), so the significance level only
// calibrates how much distribution drift a future regression may
// introduce before the test trips.
func chi2Threshold(df int) float64 {
	d := float64(df)
	z := 3.09 // ~p=0.001 one-sided normal quantile
	return d * math.Pow(1-2/(9*d)+z*math.Sqrt(2/(9*d)), 3)
}

// TestFastForwardRunLengthDistribution is the tier's distribution
// test: ALU run lengths sampled directly from the geometric CDF
// (FastForward) are compared against run lengths harvested from the
// per-draw exact walk over many seeds with a two-sample chi-squared
// test, for a short-run and a long-run mix. The terminator kind mix
// (load/store/branch) is checked the same way.
func TestFastForwardRunLengthDistribution(t *testing.T) {
	mixes := []struct {
		name    string
		mem, br float64
		maxRun  int
		perSeed uint64
	}{
		{name: "short-runs", mem: 0.30, br: 0.15, maxRun: 30, perSeed: 200_000},
		{name: "long-runs", mem: 0.06, br: 0.04, maxRun: 120, perSeed: 400_000},
	}
	for _, mix := range mixes {
		t.Run(mix.name, func(t *testing.T) {
			cfg := baseConfig()
			cfg.MemFrac, cfg.BranchFrac = mix.mem, mix.br
			exRuns := make([]uint64, mix.maxRun+2)
			ffRuns := make([]uint64, mix.maxRun+2)
			var exKinds, ffKinds [4]uint64
			for seed := uint64(1); seed <= 8; seed++ {
				cfg.Seed = seed
				cfg.Fidelity = FidelityExact
				r, k := harvestEvents(NewGenerator(cfg), mix.perSeed, mix.maxRun)
				for i := range r {
					exRuns[i] += r[i]
				}
				for i := range k {
					exKinds[i] += k[i]
				}
				cfg.Fidelity = FidelityFastForward
				r, k = harvestEvents(NewGenerator(cfg), mix.perSeed, mix.maxRun)
				for i := range r {
					ffRuns[i] += r[i]
				}
				for i := range k {
					ffKinds[i] += k[i]
				}
			}
			chi2, df := chiSquaredTwoSample(exRuns, ffRuns)
			if limit := chi2Threshold(df); chi2 > limit {
				t.Fatalf("run-length chi-squared = %.1f (df %d) above %.1f\nexact: %v\nff:    %v",
					chi2, df, limit, exRuns, ffRuns)
			}
			if exKinds[KindALU] != 0 || ffKinds[KindALU] != 0 {
				t.Fatal("ALU terminator materialised")
			}
			kchi2, kdf := chiSquaredTwoSample(exKinds[KindLoad:], ffKinds[KindLoad:])
			if limit := chi2Threshold(kdf); kchi2 > limit {
				t.Fatalf("terminator-kind chi-squared = %.1f (df %d) above %.1f\nexact: %v\nff:    %v",
					kchi2, kdf, limit, exKinds, ffKinds)
			}
		})
	}
}

// benchNextEvent drives the event stream of cfg and reports ns per
// instruction.
func benchNextEvent(b *testing.B, cfg Config) {
	b.Helper()
	g := NewGenerator(cfg)
	var ev Event
	b.ReportAllocs()
	b.ResetTimer()
	records := 0
	for i := 0; i < b.N; i += records {
		g.NextEvent(&ev)
		records = ev.ALURun
		if ev.HasRec {
			records++
		}
		if records == 0 {
			records = 1
		}
	}
}

// BenchmarkNextEventFastForward is BenchmarkNextEvent at the
// FastForward tier: ns/op is per instruction, so the two benches
// quantify what skipping the ALU-run draws buys at the generator. At
// the paper's mixes (ALU fraction ~0.5, mean run ~1) the saved draws
// roughly pay for the geometric draw, so the pair sits at parity; the
// LongRuns pair below shows the tier's scaling as runs lengthen.
func BenchmarkNextEventFastForward(b *testing.B) {
	cfg := baseConfig()
	cfg.Fidelity = FidelityFastForward
	benchNextEvent(b, cfg)
}

// longRunConfig is an ALU-heavy mix (90% ALU, mean run ~9): the
// regime where per-draw run walking dominates generation and the O(1)
// fast-forward pays off per skipped draw.
func longRunConfig() Config {
	cfg := baseConfig()
	cfg.MemFrac, cfg.BranchFrac = 0.06, 0.04
	return cfg
}

func BenchmarkNextEventLongRuns(b *testing.B) {
	benchNextEvent(b, longRunConfig())
}

func BenchmarkNextEventLongRunsFastForward(b *testing.B) {
	cfg := longRunConfig()
	cfg.Fidelity = FidelityFastForward
	benchNextEvent(b, cfg)
}
