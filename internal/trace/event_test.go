package trace

import "testing"

// decompressCheck consumes one event and checks it against the
// reference generator record by record, returning how many records the
// event covered. ALU records carry only Kind and PC (Addr/Taken are
// don't-care, as in TestFillMatchesNext); the terminating record is
// compared on the fields its kind defines.
func decompressCheck(t *testing.T, ref *Generator, ev *Event, where string) int {
	t.Helper()
	base, limit := ref.CodeBounds()
	pc := ev.ALUPC
	var want Record
	for i := 0; i < ev.ALURun; i++ {
		ref.Next(&want)
		if want.Kind != KindALU || want.PC != pc {
			t.Fatalf("%s: run record %d = {%v pc=%#x}, want {alu pc=%#x}",
				where, i, want.Kind, want.PC, pc)
		}
		pc += 4
		if pc >= limit {
			pc = base
		}
	}
	n := ev.ALURun
	if !ev.HasRec {
		if ev.ALURun != MaxALURun {
			t.Fatalf("%s: record-less event with run %d != MaxALURun", where, ev.ALURun)
		}
		return n
	}
	ref.Next(&want)
	got := ev.Rec
	same := got.Kind == want.Kind && got.PC == want.PC
	if want.Kind == KindLoad || want.Kind == KindStore {
		same = same && got.Addr == want.Addr
	}
	if want.Kind == KindBranch {
		same = same && got.Taken == want.Taken
	}
	if want.Kind == KindALU || !same {
		t.Fatalf("%s: terminating record %+v != Next %+v", where, got, want)
	}
	return n + 1
}

// TestEventStreamMatchesNext pins the compression contract: the event
// stream decompresses to the exact record sequence Next produces,
// through NextEvent, FillEvents at several chunk sizes, and with phase
// oscillation straddling events.
func TestEventStreamMatchesNext(t *testing.T) {
	cfg := baseConfig()
	cfg.PhasePeriod = 100
	cfg.PhaseDepth = 0.5
	cfg.BranchFrac = 0.1
	cfg.CodeLines = 24 // PC wraps inside ALU runs
	for _, chunk := range []int{1, 3, 16} {
		ref := NewGenerator(cfg)
		ev := NewGenerator(cfg)
		evs := make([]Event, chunk)
		consumed := 0
		for consumed < 20000 {
			ev.FillEvents(evs)
			for i := range evs {
				consumed += decompressCheck(t, ref, &evs[i], "FillEvents")
			}
			if ev.Emitted() != ref.Emitted() {
				t.Fatalf("chunk %d: Emitted %d != %d", chunk, ev.Emitted(), ref.Emitted())
			}
		}
	}
}

// TestEventStreamInterleavesWithNext checks that NextEvent, Next and
// Fill can be mixed freely on one generator: the event API restores
// full generator state, so any interleaving continues the one stream.
func TestEventStreamInterleavesWithNext(t *testing.T) {
	cfg := baseConfig()
	cfg.PhasePeriod = 64
	cfg.PhaseDepth = 0.25
	ref := NewGenerator(cfg)
	mixed := NewGenerator(cfg)
	pick := rng{state: 7}
	var want, got Record
	var evt Event
	// Compare only the fields the kind defines (Addr and Taken are
	// stale outside their kinds, as in TestFillMatchesNext).
	same := func(got, want Record) bool {
		ok := got.Kind == want.Kind && got.PC == want.PC
		if want.Kind == KindLoad || want.Kind == KindStore {
			ok = ok && got.Addr == want.Addr
		}
		if want.Kind == KindBranch {
			ok = ok && got.Taken == want.Taken
		}
		return ok
	}
	buf := make([]Record, 5)
	for consumed := 0; consumed < 20000; {
		switch pick.intn(3) {
		case 0:
			mixed.NextEvent(&evt)
			consumed += decompressCheck(t, ref, &evt, "interleaved NextEvent")
		case 1:
			mixed.Next(&got)
			ref.Next(&want)
			if !same(got, want) {
				t.Fatalf("interleaved Next %+v != %+v", got, want)
			}
			consumed++
		default:
			mixed.Fill(buf)
			for i := range buf {
				ref.Next(&want)
				if !same(buf[i], want) {
					t.Fatalf("interleaved Fill %+v != %+v", buf[i], want)
				}
			}
			consumed += len(buf)
		}
	}
}

// TestEventRunCap pins MaxALURun: a memory- and branch-free mix is an
// endless ALU run, delivered as capped record-less events whose PC
// walk keeps wrapping the code region.
func TestEventRunCap(t *testing.T) {
	cfg := Config{StreamFrac: 1, LineBytes: 64, CodeLines: 2, Seed: 9}
	g := NewGenerator(cfg)
	base, _ := g.CodeBounds()
	var ev Event
	g.NextEvent(&ev)
	if ev.HasRec || ev.ALURun != MaxALURun {
		t.Fatalf("pure-ALU event = {run %d hasRec %v}, want capped run %d", ev.ALURun, ev.HasRec, MaxALURun)
	}
	if ev.ALUPC != base {
		t.Fatalf("first run starts at %#x, want code base %#x", ev.ALUPC, base)
	}
	g.NextEvent(&ev)
	if ev.HasRec || ev.ALURun != MaxALURun {
		t.Fatalf("second pure-ALU event not capped: %+v", ev)
	}
	// 2 lines of 16 instructions: after 65536 instructions the walk is
	// back at the base.
	if ev.ALUPC != base {
		t.Fatalf("second run starts at %#x, want wrapped %#x", ev.ALUPC, base)
	}
	if g.Emitted() != 2*MaxALURun {
		t.Fatalf("Emitted = %d, want %d", g.Emitted(), 2*MaxALURun)
	}
}

// TestEventAllocationFree extends the hot-path pinning discipline
// (cache.TestHotPathAllocationFree) to the event entry points: every
// core pulls events on the simulator's hot loop.
func TestEventAllocationFree(t *testing.T) {
	g := NewGenerator(baseConfig())
	var ev Event
	evs := make([]Event, 8)
	if n := testing.AllocsPerRun(1000, func() {
		g.NextEvent(&ev)
	}); n != 0 {
		t.Fatalf("NextEvent allocates %v per event, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		g.FillEvents(evs)
	}); n != 0 {
		t.Fatalf("FillEvents allocates %v per batch, want 0", n)
	}
}

func BenchmarkFillEvents(b *testing.B) {
	g := NewGenerator(baseConfig())
	evs := make([]Event, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		g.FillEvents(evs)
		for i := range evs {
			done += evs[i].ALURun
			if evs[i].HasRec {
				done++
			}
		}
	}
}

func BenchmarkNextEvent(b *testing.B) {
	g := NewGenerator(baseConfig())
	var ev Event
	b.ReportAllocs()
	b.ResetTimer()
	records := 0
	for i := 0; i < b.N; i += records {
		g.NextEvent(&ev)
		records = ev.ALURun
		if ev.HasRec {
			records++
		}
		if records == 0 {
			records = 1
		}
	}
}
