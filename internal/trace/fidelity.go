package trace

import (
	"fmt"
	"math"
)

// Fidelity selects the RNG-walk tier of a generator's event stream
// (DESIGN.md §11). The zero value is FidelityExact, so every config
// that does not opt in keeps the bit-identical walk — the same
// "default is the reference" posture as sim.TestScale vs FullScale.
type Fidelity uint8

const (
	// FidelityExact is the bit-identical per-draw walk: every ALU
	// instruction of a run costs one SplitMix64 draw, and the event
	// stream decompresses to the exact record stream Next/Fill produce
	// (pinned by TestEventStreamMatchesNext).
	FidelityExact Fidelity = iota

	// FidelityFastForward replaces an ALU run's per-draw Bernoulli walk
	// with one uniform draw inverted through the geometric CDF and an
	// O(1) SplitMix64 state jump (state += n*smGamma) past the draws
	// the run would have consumed. The resulting stream is NOT
	// bit-identical to the exact walk — it is a different sample from
	// the same distribution — so the tier is opt-in only and must be
	// validated statistically (experiments.ValidateTiers), never
	// byte-compared. Only the event path (NextEvent/FillEvents) fast-
	// forwards; Next/Fill always perform the exact walk.
	FidelityFastForward

	// FidelitySetSampled keeps FastForward's trace walk and, above the
	// generator, tells the simulator to model only 1/K of the shared
	// LLC's sets (SMARTS-style set sampling; the cache and scheme
	// layers own that machinery — the trace tier ordering is what lets
	// them test `>= FidelityFastForward` for the RNG-walk shortcut).
	// Like FastForward it is opt-in and statistically validated, never
	// byte-compared against the exact tier.
	FidelitySetSampled
)

// String returns the flag-friendly tier name.
func (f Fidelity) String() string {
	switch f {
	case FidelityExact:
		return "exact"
	case FidelityFastForward:
		return "fastforward"
	case FidelitySetSampled:
		return "set-sampled"
	default:
		return fmt.Sprintf("fidelity(%d)", uint8(f))
	}
}

// Validate reports unknown tiers.
func (f Fidelity) Validate() error {
	if f > FidelitySetSampled {
		return fmt.Errorf("trace: unknown fidelity %d", uint8(f))
	}
	return nil
}

// ParseFidelity parses a tier name as the -fidelity flags accept it.
func ParseFidelity(s string) (Fidelity, error) {
	switch s {
	case "exact":
		return FidelityExact, nil
	case "fastforward":
		return FidelityFastForward, nil
	case "set-sampled":
		return FidelitySetSampled, nil
	default:
		return 0, fmt.Errorf("trace: unknown fidelity %q (exact, fastforward or set-sampled)", s)
	}
}

// fillEventsFF is FillEvents' FastForward tier. Per event it draws the
// ALU run length n directly from the geometric distribution the exact
// per-draw walk realises — P(run >= n) = pALU^n with pALU the ALU
// fraction of the mix — via one uniform draw over the tabulated CDF
// (Generator.ffTab), whose leftover randomness rescales into the
// terminating mixture draw; it jumps the RNG state past the n skipped
// draws (rng.jump; the SplitMix64 state after n draws is state +
// n*smGamma, pinned by FuzzFastForwardStateJump), advances the PC walk
// in O(1) (advancePC) and then materialises the terminating non-ALU
// record with the exact per-draw logic. Everything after the
// run-length shortcut mirrors FillEvents' record arm line for line and
// must stay in lockstep with it; the pairing is pinned statistically
// by TestFastForwardRunLengthDistribution and
// experiments.ValidateTiers.
func (g *Generator) fillEventsFF(evs []Event) {
	cfg := &g.cfg
	rng := g.rng
	curPC := g.curPC
	pattern := g.pattern
	memCount := g.memCount
	strmPos := g.strmPos
	lineBytes := uint64(cfg.LineBytes)
	codeBase := g.codeBase
	codeLimit := codeBase + uint64(cfg.CodeLines)*lineBytes
	memFrac := cfg.MemFrac
	branchCut := cfg.MemFrac + cfg.BranchFrac
	streamFrac := cfg.StreamFrac
	hugeCut := cfg.StreamFrac + cfg.HugeFrac
	period, halfPeriod := phaseBounds(cfg.PhasePeriod, g.halfPeriod)
	phasePos := memCount % period
	tab := g.ffTab
	var emitted uint64

	for i := range evs {
		ev := &evs[i]
		ev.ALUPC = curPC
		run := 0
		var x float64
		switch {
		case branchCut >= 1:
			// No ALU instructions in the mix: every draw terminates.
			x = rng.float() * branchCut
		case len(tab) == 0:
			// Pure-ALU mix — including a non-ALU fraction so small it
			// underflows 1-branchCut to exactly 1.0, for which
			// NewGenerator builds no table (its guard is this arm's
			// mirror): the run never terminates at float precision;
			// deliver capped record-less events like the exact tier.
			run = MaxALURun
		default:
			// Geometric inversion: one uniform draw walks the tabulated
			// CDF — u lands in [lo, cum) of exactly one entry, selecting
			// the run length with P(run = k) = pALU^k * (1-pALU), and
			// its position inside the slice rescales to the terminating
			// mixture draw (uniform [0, branchCut), independent of the
			// run length — the leftover randomness of u, so the event
			// costs one draw however long the run). The rare
			// beyond-table tail falls back to the closed form.
			u := rng.float()
			for run < len(tab) && u >= tab[run].cum {
				run++
			}
			if run < len(tab) {
				e := &tab[run]
				x = (u - e.lo) * e.scale
			} else {
				if r := math.Log1p(-u) / g.ffLogALU; r >= MaxALURun {
					run = MaxALURun
				} else {
					run = int(r)
				}
				x = rng.float() * branchCut
			}
		}
		if run > 0 {
			// Jump the RNG past the draws the run would have consumed
			// and the PC walk past its sequential advances (in-line for
			// the common within-region case).
			rng.jump(uint64(run))
			if adv := uint64(run) * 4; curPC+adv < codeLimit {
				curPC += adv
			} else {
				curPC = advancePC(curPC, codeBase, codeLimit, uint64(run))
			}
		}
		ev.ALURun = run
		emitted += uint64(run)
		if run == MaxALURun {
			// Capped: no terminating record; the next event continues
			// the run (geometric runs are memoryless, so a fresh sample
			// is distributed exactly like the exact tier's continuation).
			ev.HasRec = false
			continue
		}
		ev.HasRec = true
		emitted++
		// From here on the record materialisation is FillEvents' arm
		// verbatim, consuming x as the run-terminating draw.
		r := &ev.Rec
		r.PC = curPC
		if x < memFrac {
			// Memory access: load or store with an address drawn from
			// the stream/huge/working-set mixture.
			memCount++
			if phasePos++; phasePos == period {
				phasePos = 0
			}
			if rng.float() < cfg.StoreFrac {
				r.Kind = KindStore
			} else {
				r.Kind = KindLoad
			}
			y := rng.float()
			var line uint64
			switch {
			case y < streamFrac:
				strmPos++
				line = g.strmBase + strmPos
			case y < hugeCut:
				line = g.hugeBase + uint64(rng.intn(cfg.HugeLines))
			default:
				// Working sets: pick one by weight, index uniformly
				// within the currently-active fraction of its footprint
				// (precomputed per phase; sweep positions maintained
				// division-free — see the Generator fast-path fields).
				z := rng.float()
				idx := len(g.wsCum) - 1
				for k, c := range g.wsCum {
					if z < c {
						idx = k
						break
					}
				}
				active := g.wsActiveFull[idx]
				if phasePos >= halfPeriod {
					active = g.wsActiveSmall[idx]
				}
				if cfg.WorkingSets[idx].Sweep {
					g.wsPos[idx]++
					pos := g.wsSweepPos[idx] + 1
					if g.wsActiveCur[idx] != active {
						g.wsActiveCur[idx] = active
						pos = g.wsPos[idx] % uint64(active)
					} else if pos >= uint64(active) {
						pos = 0
					}
					g.wsSweepPos[idx] = pos
					line = g.wsBase[idx] + pos
				} else {
					line = g.wsBase[idx] + uint64(rng.intn(active))
				}
			}
			r.Addr = line * lineBytes
		} else {
			// Branch with a partially-predictable outcome: drawn from a
			// 64-bit pattern register (learnable by gshare), flipped
			// randomly with probability BranchNoise.
			r.Kind = KindBranch
			bit := pattern & 1
			pattern = pattern>>1 | (pattern&1^pattern>>3&1)<<63 // LFSR-ish
			taken := bit == 1
			if rng.float() < cfg.BranchNoise {
				taken = rng.next()&1 == 0
			}
			r.Taken = taken
		}
		if r.Kind == KindBranch && r.Taken {
			// Jump to the start of a uniformly-chosen line of the region.
			curPC = codeBase + uint64(rng.intn(cfg.CodeLines))*lineBytes
		} else {
			curPC += 4
			if curPC >= codeLimit {
				curPC = codeBase
			}
		}
	}

	g.rng = rng
	g.curPC = curPC
	g.pattern = pattern
	g.memCount = memCount
	g.strmPos = strmPos
	g.emitted += emitted
}

// advancePC advances a sequential PC walk (pc += 4, wrapping from
// limit to base) by steps instructions in O(1): the exact final PC the
// per-step walk reaches, for any alignment of pc or the region bounds
// (pinned against the literal walk by TestAdvancePCMatchesWalk).
func advancePC(pc, base, limit uint64, steps uint64) uint64 {
	if steps == 0 {
		return pc
	}
	// Steps until the walk wraps to base (pc < limit always holds).
	toWrap := (limit - pc + 3) / 4
	if steps < toWrap {
		return pc + 4*steps
	}
	steps -= toWrap
	cycle := (limit - base + 3) / 4
	// Runs shorter than the code region — the common case — finish
	// within one lap after the wrap; only multi-lap runs pay the
	// runtime 64-bit division.
	if steps >= cycle {
		steps %= cycle
	}
	return base + 4*steps
}
