package trace

import "testing"

// fuzzConfig maps raw fuzz bytes onto a valid Config covering the
// generator's whole behaviour space: mix fractions, phase oscillation,
// working-set shapes and code footprints. Fractions are quantised from
// single bytes; the pair constraints (MemFrac+BranchFrac <= 1,
// StreamFrac+HugeFrac <= 1) are enforced by scaling, not rejection, so
// every input exercises the generator.
func fuzzConfig(mem, branch, stream, huge, depth, noise byte, period uint16, code, ws uint8, seed uint64) Config {
	frac := func(b byte) float64 { return float64(b) / 255 }
	m, br := frac(mem), frac(branch)
	if s := m + br; s > 1 {
		// Scale into the simplex; the scaled sum can still round a hair
		// above 1, so clamp the second term outright.
		m = m / s
		br = 1 - m
	}
	st, hu := frac(stream), frac(huge)
	if s := st + hu; s > 1 {
		st = st / s
		hu = 1 - st
	}
	cfg := Config{
		MemFrac:     m,
		StoreFrac:   frac(mem ^ branch),
		BranchFrac:  br,
		BranchNoise: frac(noise),
		StreamFrac:  st,
		HugeFrac:    hu,
		HugeLines:   1 + int(period)%5000,
		PhasePeriod: int(period) % 700,
		PhaseDepth:  frac(depth),
		MLP:         1 + 3*frac(depth^noise),
		CodeLines:   1 + int(code)%200,
		LineBytes:   64,
		Seed:        seed,
	}
	// The working-set share must be covered whenever it is non-zero;
	// always defining sets also exercises the weight-draw path when the
	// share is zero-probability.
	nws := 1 + int(ws)%3
	for i := 0; i < nws; i++ {
		cfg.WorkingSets = append(cfg.WorkingSets, WS{
			Lines:  1 + (int(ws)*31+i*97)%4096,
			Weight: 1 + float64(i),
			Sweep:  (ws>>uint(i))&1 == 1,
		})
	}
	return cfg
}

// FuzzFastForwardStateJump pins the RNG jump identity the FastForward
// tier rests on: after jumping a run of length n, the generator state
// and every subsequent draw are byte-identical to n sequential
// SplitMix64 draws. Arbitrary 64-bit starting states exercise the
// wrapping arithmetic; n is capped only so the sequential reference
// stays cheap (the jump itself is a wrapping multiply-add, so larger n
// adds no new behaviour).
func FuzzFastForwardStateJump(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), uint64(1))
	f.Add(uint64(0xabcdef12345678), uint64(12345))
	f.Add(^uint64(0), uint64(65536))
	f.Add(uint64(0x9e3779b97f4a7c15), uint64(999_999))
	f.Fuzz(func(t *testing.T, state, n uint64) {
		n %= 1 << 20
		seq := rng{state: state}
		for i := uint64(0); i < n; i++ {
			seq.next()
		}
		jmp := rng{state: state}
		jmp.jump(n)
		if seq.state != jmp.state {
			t.Fatalf("state after jump(%d) = %#x, want %#x", n, jmp.state, seq.state)
		}
		for i := 0; i < 16; i++ {
			if a, b := seq.next(), jmp.next(); a != b {
				t.Fatalf("draw %d after jump(%d) = %#x, want %#x", i, n, b, a)
			}
		}
	})
}

// FuzzEventStreamMatchesNext fuzzes generator configurations and
// asserts the event stream decompresses to the exact Next record
// sequence — the bit-identity foundation of the event-compressed
// stepping path (DESIGN.md §10).
func FuzzEventStreamMatchesNext(f *testing.F) {
	f.Add(byte(76), byte(38), byte(51), byte(25), byte(128), byte(12), uint16(100), uint8(20), uint8(1), uint64(42))
	f.Add(byte(0), byte(0), byte(255), byte(0), byte(0), byte(0), uint16(0), uint8(0), uint8(0), uint64(1))
	f.Add(byte(255), byte(0), byte(0), byte(0), byte(255), byte(255), uint16(3), uint8(199), uint8(7), uint64(9))
	f.Add(byte(10), byte(245), byte(90), byte(90), byte(77), byte(200), uint16(655), uint8(1), uint8(255), uint64(31337))
	f.Fuzz(func(t *testing.T, mem, branch, stream, huge, depth, noise byte, period uint16, code, ws uint8, seed uint64) {
		cfg := fuzzConfig(mem, branch, stream, huge, depth, noise, period, code, ws, seed)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("fuzzConfig produced an invalid config: %v", err)
		}
		ref := NewGenerator(cfg)
		ev := NewGenerator(cfg)
		var evt Event
		for consumed := 0; consumed < 3000; {
			ev.NextEvent(&evt)
			consumed += decompressCheck(t, ref, &evt, "fuzz")
			if ev.Emitted() != ref.Emitted() {
				t.Fatalf("Emitted diverged: %d != %d", ev.Emitted(), ref.Emitted())
			}
		}
	})
}
