package trace

import "testing"

// fuzzConfig maps raw fuzz bytes onto a valid Config covering the
// generator's whole behaviour space: mix fractions, phase oscillation,
// working-set shapes and code footprints. Fractions are quantised from
// single bytes; the pair constraints (MemFrac+BranchFrac <= 1,
// StreamFrac+HugeFrac <= 1) are enforced by scaling, not rejection, so
// every input exercises the generator.
func fuzzConfig(mem, branch, stream, huge, depth, noise byte, period uint16, code, ws uint8, seed uint64) Config {
	frac := func(b byte) float64 { return float64(b) / 255 }
	m, br := frac(mem), frac(branch)
	if s := m + br; s > 1 {
		// Scale into the simplex; the scaled sum can still round a hair
		// above 1, so clamp the second term outright.
		m = m / s
		br = 1 - m
	}
	st, hu := frac(stream), frac(huge)
	if s := st + hu; s > 1 {
		st = st / s
		hu = 1 - st
	}
	cfg := Config{
		MemFrac:     m,
		StoreFrac:   frac(mem ^ branch),
		BranchFrac:  br,
		BranchNoise: frac(noise),
		StreamFrac:  st,
		HugeFrac:    hu,
		HugeLines:   1 + int(period)%5000,
		PhasePeriod: int(period) % 700,
		PhaseDepth:  frac(depth),
		MLP:         1 + 3*frac(depth^noise),
		CodeLines:   1 + int(code)%200,
		LineBytes:   64,
		Seed:        seed,
	}
	// The working-set share must be covered whenever it is non-zero;
	// always defining sets also exercises the weight-draw path when the
	// share is zero-probability.
	nws := 1 + int(ws)%3
	for i := 0; i < nws; i++ {
		cfg.WorkingSets = append(cfg.WorkingSets, WS{
			Lines:  1 + (int(ws)*31+i*97)%4096,
			Weight: 1 + float64(i),
			Sweep:  (ws>>uint(i))&1 == 1,
		})
	}
	return cfg
}

// FuzzEventStreamMatchesNext fuzzes generator configurations and
// asserts the event stream decompresses to the exact Next record
// sequence — the bit-identity foundation of the event-compressed
// stepping path (DESIGN.md §10).
func FuzzEventStreamMatchesNext(f *testing.F) {
	f.Add(byte(76), byte(38), byte(51), byte(25), byte(128), byte(12), uint16(100), uint8(20), uint8(1), uint64(42))
	f.Add(byte(0), byte(0), byte(255), byte(0), byte(0), byte(0), uint16(0), uint8(0), uint8(0), uint64(1))
	f.Add(byte(255), byte(0), byte(0), byte(0), byte(255), byte(255), uint16(3), uint8(199), uint8(7), uint64(9))
	f.Add(byte(10), byte(245), byte(90), byte(90), byte(77), byte(200), uint16(655), uint8(1), uint8(255), uint64(31337))
	f.Fuzz(func(t *testing.T, mem, branch, stream, huge, depth, noise byte, period uint16, code, ws uint8, seed uint64) {
		cfg := fuzzConfig(mem, branch, stream, huge, depth, noise, period, code, ws, seed)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("fuzzConfig produced an invalid config: %v", err)
		}
		ref := NewGenerator(cfg)
		ev := NewGenerator(cfg)
		var evt Event
		for consumed := 0; consumed < 3000; {
			ev.NextEvent(&evt)
			consumed += decompressCheck(t, ref, &evt, "fuzz")
			if ev.Emitted() != ref.Emitted() {
				t.Fatalf("Emitted diverged: %d != %d", ev.Emitted(), ref.Emitted())
			}
		}
	})
}
