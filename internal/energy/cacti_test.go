package energy

import (
	"math"
	"testing"
)

func TestFromGeometryAnchoredToDefaults(t *testing.T) {
	// The paper's two-core LLC must reproduce the default constants'
	// anchor: a tag probe of 1.0 and a data read of 8.0.
	p, err := FromGeometry(PaperTwoCoreGeometry())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.TagReadPerWay-1.0) > 1e-9 {
		t.Fatalf("tag probe = %v, want anchor 1.0", p.TagReadPerWay)
	}
	if math.Abs(p.DataRead-8.0) > 1e-9 {
		t.Fatalf("data read = %v, want anchor 8.0", p.DataRead)
	}
	if math.Abs(p.LeakPerWayCyc-0.02) > 1e-9 {
		t.Fatalf("leakage = %v, want anchor 0.02", p.LeakPerWayCyc)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromGeometryMonotoneInSize(t *testing.T) {
	small := Geometry{SizeBytes: 64 << 10, LineBytes: 64, Ways: 8, TagBits: 30, TechNM: 45}
	big := Geometry{SizeBytes: 2 << 20, LineBytes: 64, Ways: 8, TagBits: 30, TechNM: 45}
	ps, err := FromGeometry(small)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := FromGeometry(big)
	if err != nil {
		t.Fatal(err)
	}
	if ps.TagReadPerWay >= pb.TagReadPerWay {
		t.Fatal("bigger tag array should cost more per probe")
	}
	if ps.DataRead >= pb.DataRead {
		t.Fatal("bigger data array should cost more per read")
	}
	if ps.LeakPerWayCyc >= pb.LeakPerWayCyc {
		t.Fatal("bigger way should leak more")
	}
}

func TestFromGeometryTechScaling(t *testing.T) {
	g45 := PaperTwoCoreGeometry()
	g32 := g45
	g32.TechNM = 32
	p45, _ := FromGeometry(g45)
	p32, err := FromGeometry(g32)
	if err != nil {
		t.Fatal(err)
	}
	if p32.DataRead >= p45.DataRead {
		t.Fatal("smaller node should cost less dynamic energy")
	}
	// Quadratic scaling: (32/45)^2.
	want := p45.DataRead * (32.0 / 45) * (32.0 / 45)
	if math.Abs(p32.DataRead-want) > 1e-9 {
		t.Fatalf("tech scaling = %v, want %v", p32.DataRead, want)
	}
}

func TestFromGeometryWriteCostsMore(t *testing.T) {
	p, _ := FromGeometry(PaperFourCoreGeometry())
	if p.DataWrite <= p.DataRead {
		t.Fatal("writes must cost more than reads")
	}
}

func TestFromGeometryRejectsBad(t *testing.T) {
	bad := []Geometry{
		{},
		{SizeBytes: 1024, LineBytes: 64, Ways: 4, TagBits: 0, TechNM: 45},
		{SizeBytes: 1024, LineBytes: 64, Ways: 4, TagBits: 30, TechNM: 0},
	}
	for i, g := range bad {
		if _, err := FromGeometry(g); err == nil {
			t.Errorf("geometry %d accepted: %+v", i, g)
		}
	}
}

func TestTagBitsFor(t *testing.T) {
	// 2MB, 64B, 8-way: 4096 sets -> 12 index + 6 offset = 22 used bits.
	if got := tagBitsFor(40, 2<<20, 64, 8); got != 40-12-6 {
		t.Fatalf("tagBitsFor = %d, want %d", got, 40-12-6)
	}
}

func TestPaperGeometriesValidate(t *testing.T) {
	for _, g := range []Geometry{PaperTwoCoreGeometry(), PaperFourCoreGeometry()} {
		if err := g.Validate(); err != nil {
			t.Error(err)
		}
		if !g.SerialMode {
			t.Error("LLC geometries must be serial access")
		}
	}
}
