package energy

// State is the dynamic portion of a Meter: the energy accumulators,
// the leakage accounting position and the currently powered
// way-equivalents (DESIGN.md §14). Params and total ways are rebuilt
// from the run configuration.
type State struct {
	Dynamic   float64
	Static    float64
	LastCycle int64
	Powered   float64
}

// State returns a copy of the meter's dynamic state.
func (m *Meter) State() *State {
	return &State{Dynamic: m.dynamic, Static: m.static_, LastCycle: m.lastCycle, Powered: m.powered}
}

// Restore overwrites the meter's dynamic state with st.
func (m *Meter) Restore(st *State) {
	m.dynamic = st.Dynamic
	m.static_ = st.Static
	m.lastCycle = st.LastCycle
	m.powered = st.Powered
}
