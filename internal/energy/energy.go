// Package energy provides the analytic LLC energy model standing in for
// CACTI 5.1 at 45nm (Section 3.1 of the paper).
//
// The paper reports all energy normalised to the Fair Share scheme, so
// what matters is how energy scales with behaviour, not the absolute
// joules: dynamic energy scales with the number of tag ways consulted
// per access (LLC accesses are serial — tags first, then at most one
// data way), and static energy scales with how many ways are powered
// and for how long. The per-event constants below are in arbitrary
// units with CACTI-like ratios for a 2MB/8-way 45nm SRAM; every ratio
// that the experiments depend on (tag vs data access, leakage per way,
// monitoring overhead) is explicit and configurable.
package energy

import "fmt"

// Params holds the per-event energy constants, in arbitrary units
// (1 unit ~ 1 pJ at 45nm for the default values).
type Params struct {
	TagReadPerWay  float64 // energy to read one way's tag
	DataRead       float64 // energy to read one data way (on hit / fill)
	DataWrite      float64 // energy to write one data way
	LeakPerWayCyc  float64 // static leakage of one powered way per cycle
	GatedLeakRatio float64 // residual leakage of a gated way (gated-Vdd)

	// Overheads of the partitioning machinery, charged per event as the
	// paper requires ("all power overheads are included").
	UMONAccess      float64 // ATD lookup + counter update, per sampled access
	PermRegCheck    float64 // RAP/WAP register consult, per access
	TakeoverBitOp   float64 // takeover bit read/set, per access in transition
	RepartitionCost float64 // running the lookahead + register writes, per decision
}

// DefaultParams returns CACTI-flavoured constants for a 64B-line SRAM
// bank at 45nm. Ratios, not absolutes, matter: a data-array access is
// roughly 8x a single tag-way probe, and a full way leaks the
// equivalent of ~0.02 tag probes per cycle.
func DefaultParams() Params {
	return Params{
		TagReadPerWay:   1.0,
		DataRead:        8.0,
		DataWrite:       9.0,
		LeakPerWayCyc:   0.02,
		GatedLeakRatio:  0.03, // gated-Vdd cuts ~97% of leakage
		UMONAccess:      0.2,
		PermRegCheck:    0.01,
		TakeoverBitOp:   0.02,
		RepartitionCost: 50.0,
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.TagReadPerWay <= 0 || p.DataRead <= 0 || p.LeakPerWayCyc < 0 {
		return fmt.Errorf("energy: non-positive core parameters %+v", p)
	}
	if p.GatedLeakRatio < 0 || p.GatedLeakRatio > 1 {
		return fmt.Errorf("energy: gated leak ratio %v outside [0,1]", p.GatedLeakRatio)
	}
	return nil
}

// Meter accumulates dynamic and static energy for one LLC over a run.
type Meter struct {
	p         Params
	ways      int
	dynamic   float64
	static_   float64
	lastCycle int64
	powered   float64 // currently powered way-equivalents
}

// NewMeter creates a meter for a cache with the given total ways, all
// initially powered. It panics on invalid parameters (experiment
// constants, not user input).
func NewMeter(p Params, ways int) *Meter {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if ways <= 0 {
		panic(fmt.Sprintf("energy: ways = %d", ways))
	}
	return &Meter{p: p, ways: ways, powered: float64(ways)}
}

// Params returns the meter's constants.
func (m *Meter) Params() Params { return m.p }

// AccessEvent describes one LLC access for energy accounting.
type AccessEvent struct {
	TagsConsulted int  // tag ways probed (serial access: tags first)
	DataRead      bool // a data way was read (hit, or fill return)
	DataWrite     bool // a data way was written (store hit or fill)
	PermCheck     bool // RAP/WAP registers consulted (CP only)
	UMONSampled   bool // access fell in a UMON-sampled set
	TakeoverOps   int  // takeover bit vector reads/writes performed
}

// OnAccess charges the dynamic energy of one access.
func (m *Meter) OnAccess(ev AccessEvent) {
	e := float64(ev.TagsConsulted) * m.p.TagReadPerWay
	if ev.DataRead {
		e += m.p.DataRead
	}
	if ev.DataWrite {
		e += m.p.DataWrite
	}
	if ev.PermCheck {
		e += m.p.PermRegCheck
	}
	if ev.UMONSampled {
		e += m.p.UMONAccess
	}
	e += float64(ev.TakeoverOps) * m.p.TakeoverBitOp
	m.dynamic += e
}

// OnWriteback charges the energy of reading a dirty block out of the
// data array for a writeback or flush.
func (m *Meter) OnWriteback() { m.dynamic += m.p.DataRead }

// OnRepartition charges one partitioning decision (lookahead run plus
// permission-register updates).
func (m *Meter) OnRepartition() { m.dynamic += m.p.RepartitionCost }

// Advance accounts static leakage from the last accounted cycle up to
// now, with the current powered-way count.
func (m *Meter) Advance(now int64) {
	if now <= m.lastCycle {
		return
	}
	dt := float64(now - m.lastCycle)
	on := m.powered
	off := float64(m.ways) - m.powered
	m.static_ += dt * m.p.LeakPerWayCyc * (on + off*m.p.GatedLeakRatio)
	m.lastCycle = now
}

// SetPoweredWays records a change in how many ways are powered,
// accounting leakage up to the change point first.
func (m *Meter) SetPoweredWays(now int64, powered int) {
	m.SetPoweredEquiv(now, float64(powered))
}

// SetPoweredEquiv is SetPoweredWays for fractional way-equivalents, as
// produced by set-partitioned schemes (CPE gates unused set regions of
// a way, leaving a fraction of it powered).
func (m *Meter) SetPoweredEquiv(now int64, powered float64) {
	if powered < 0 {
		powered = 0
	}
	if powered > float64(m.ways) {
		powered = float64(m.ways)
	}
	m.Advance(now)
	m.powered = powered
}

// PoweredEquiv returns the current powered way-equivalents.
func (m *Meter) PoweredEquiv() float64 { return m.powered }

// PoweredWays returns the powered way-equivalents rounded down.
func (m *Meter) PoweredWays() int { return int(m.powered) }

// Dynamic returns accumulated dynamic energy.
func (m *Meter) Dynamic() float64 { return m.dynamic }

// Static returns accumulated static energy (leakage).
func (m *Meter) Static() float64 { return m.static_ }

// Total returns dynamic + static energy.
func (m *Meter) Total() float64 { return m.dynamic + m.static_ }

// Reset zeroes the accumulators and repowers every way.
func (m *Meter) Reset() {
	m.dynamic, m.static_ = 0, 0
	m.lastCycle = 0
	m.powered = float64(m.ways)
}

// ResetAt zeroes the accumulators and restarts leakage accounting at
// now, preserving the current powered-way state (end of warm-up).
func (m *Meter) ResetAt(now int64) {
	m.dynamic, m.static_ = 0, 0
	m.lastCycle = now
}
