package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDynamicScalesWithTagsConsulted(t *testing.T) {
	p := DefaultParams()
	m8 := NewMeter(p, 8)
	m8.OnAccess(AccessEvent{TagsConsulted: 8, DataRead: true})
	e8 := m8.Dynamic()

	m2 := NewMeter(p, 8)
	m2.OnAccess(AccessEvent{TagsConsulted: 2, DataRead: true})
	e2 := m2.Dynamic()

	if e2 >= e8 {
		t.Fatalf("2-way probe (%v) should cost less than 8-way probe (%v)", e2, e8)
	}
	if got, want := e8-e2, 6*p.TagReadPerWay; math.Abs(got-want) > 1e-9 {
		t.Fatalf("tag delta = %v, want %v", got, want)
	}
}

func TestStaticScalesWithPoweredWays(t *testing.T) {
	p := DefaultParams()
	full := NewMeter(p, 8)
	full.Advance(1000)

	half := NewMeter(p, 8)
	half.SetPoweredWays(0, 4)
	half.Advance(1000)

	if half.Static() >= full.Static() {
		t.Fatalf("half powered (%v) should leak less than full (%v)", half.Static(), full.Static())
	}
	// 4 on + 4 gated at 3%: ratio = (4 + 4*0.03)/8.
	wantRatio := (4 + 4*p.GatedLeakRatio) / 8
	if got := half.Static() / full.Static(); math.Abs(got-wantRatio) > 1e-9 {
		t.Fatalf("leak ratio = %v, want %v", got, wantRatio)
	}
}

func TestAdvanceIsIdempotentBackwards(t *testing.T) {
	m := NewMeter(DefaultParams(), 4)
	m.Advance(100)
	s := m.Static()
	m.Advance(50) // time never runs backwards; no double counting
	if m.Static() != s {
		t.Fatal("Advance with earlier time changed static energy")
	}
}

func TestSetPoweredWaysAccountsUpToChange(t *testing.T) {
	p := DefaultParams()
	m := NewMeter(p, 8)
	m.SetPoweredWays(500, 2) // first 500 cycles at 8 ways
	m.Advance(1000)          // next 500 at 2 on + 6 gated
	want := 500*p.LeakPerWayCyc*8 + 500*p.LeakPerWayCyc*(2+6*p.GatedLeakRatio)
	if math.Abs(m.Static()-want) > 1e-9 {
		t.Fatalf("static = %v, want %v", m.Static(), want)
	}
}

func TestSetPoweredWaysClamps(t *testing.T) {
	m := NewMeter(DefaultParams(), 8)
	m.SetPoweredWays(0, -3)
	if m.PoweredWays() != 0 {
		t.Fatalf("powered = %d, want clamp to 0", m.PoweredWays())
	}
	m.SetPoweredWays(0, 99)
	if m.PoweredWays() != 8 {
		t.Fatalf("powered = %d, want clamp to 8", m.PoweredWays())
	}
}

func TestOverheadCharges(t *testing.T) {
	p := DefaultParams()
	m := NewMeter(p, 8)
	m.OnAccess(AccessEvent{TagsConsulted: 1, PermCheck: true, UMONSampled: true, TakeoverOps: 2})
	want := p.TagReadPerWay + p.PermRegCheck + p.UMONAccess + 2*p.TakeoverBitOp
	if math.Abs(m.Dynamic()-want) > 1e-12 {
		t.Fatalf("dynamic = %v, want %v", m.Dynamic(), want)
	}
	m.OnWriteback()
	m.OnRepartition()
	want += p.DataRead + p.RepartitionCost
	if math.Abs(m.Dynamic()-want) > 1e-12 {
		t.Fatalf("after overheads dynamic = %v, want %v", m.Dynamic(), want)
	}
}

func TestReset(t *testing.T) {
	m := NewMeter(DefaultParams(), 8)
	m.OnAccess(AccessEvent{TagsConsulted: 8, DataRead: true})
	m.SetPoweredWays(100, 2)
	m.Advance(200)
	m.Reset()
	if m.Dynamic() != 0 || m.Static() != 0 || m.Total() != 0 || m.PoweredWays() != 8 {
		t.Fatal("Reset left state behind")
	}
}

func TestValidate(t *testing.T) {
	p := DefaultParams()
	if p.Validate() != nil {
		t.Fatal("default params should validate")
	}
	p.GatedLeakRatio = 1.5
	if p.Validate() == nil {
		t.Fatal("gated ratio > 1 should fail")
	}
	p = DefaultParams()
	p.TagReadPerWay = 0
	if p.Validate() == nil {
		t.Fatal("zero tag energy should fail")
	}
}

func TestNewMeterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMeter with 0 ways did not panic")
		}
	}()
	NewMeter(DefaultParams(), 0)
}

// Property: energies are non-negative and monotone over any event
// sequence.
func TestPropertyMonotoneAccumulation(t *testing.T) {
	f := func(tags []uint8) bool {
		m := NewMeter(DefaultParams(), 16)
		now := int64(0)
		prevDyn, prevStat := 0.0, 0.0
		for _, tg := range tags {
			m.OnAccess(AccessEvent{TagsConsulted: int(tg % 17), DataRead: tg%2 == 0})
			now += int64(tg)
			m.Advance(now)
			if m.Dynamic() < prevDyn || m.Static() < prevStat {
				return false
			}
			prevDyn, prevStat = m.Dynamic(), m.Static()
		}
		return m.Total() == m.Dynamic()+m.Static()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
