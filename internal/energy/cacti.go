package energy

// cacti.go derives the per-event energy constants from cache geometry,
// standing in for the authors' use of CACTI 5.1 at 45nm (Section 3.1).
// The model follows CACTI's first-order structure — access energy is
// dominated by bitline + wordline switching, which grows with the
// square root of the array area, and leakage grows linearly with
// stored bits — without reproducing its circuit-level detail. Only
// energy *ratios* enter the paper's normalised figures, so the model's
// job is to keep those ratios tied to geometry (tag vs data array
// width, ways, line size) rather than hard-coded.

import (
	"fmt"
	"math"
)

// Geometry describes one SRAM cache for energy derivation.
type Geometry struct {
	SizeBytes  int
	LineBytes  int
	Ways       int
	TagBits    int     // tag width per entry (address bits - index - offset)
	TechNM     float64 // feature size in nanometres (the paper uses 45)
	SerialMode bool    // serial tag-then-data access (LLC); false = parallel
}

// Validate reports geometry errors.
func (g Geometry) Validate() error {
	if g.SizeBytes <= 0 || g.LineBytes <= 0 || g.Ways <= 0 {
		return fmt.Errorf("energy: invalid geometry %+v", g)
	}
	if g.TagBits <= 0 || g.TagBits > 64 {
		return fmt.Errorf("energy: tag bits %d out of range", g.TagBits)
	}
	if g.TechNM <= 0 {
		return fmt.Errorf("energy: tech node %v", g.TechNM)
	}
	return nil
}

// referenceTech is the paper's process node; energies scale relative
// to it.
const referenceTech = 45.0

// FromGeometry derives a Params set for the given cache. The absolute
// scale is anchored so that a 2MB/8-way/64B cache at 45nm reproduces
// DefaultParams' tag-probe unit (1.0), keeping all committed results
// comparable.
func FromGeometry(g Geometry) (Params, error) {
	if err := g.Validate(); err != nil {
		return Params{}, err
	}
	sets := float64(g.SizeBytes / (g.LineBytes * g.Ways))
	// Dynamic energy per array access ~ sqrt(bits in the array)
	// (bitline length times wordline length both grow with the square
	// root of area), scaled quadratically with feature size.
	techScale := (g.TechNM / referenceTech) * (g.TechNM / referenceTech)
	tagArrayBits := sets * float64(g.TagBits+2) // +valid +dirty
	dataWayBits := sets * float64(g.LineBytes*8)

	// Anchor: one tag-way probe of the reference 2MB/8-way cache
	// (4096-set tag array) costs 1.0 units.
	refTagArray := math.Sqrt(4096 * float64(g.TagBits+2))
	tagRead := math.Sqrt(tagArrayBits) / refTagArray * techScale

	refDataArray := math.Sqrt(4096 * 64 * 8)
	dataRead := 8.0 * math.Sqrt(dataWayBits) / refDataArray * techScale
	dataWrite := dataRead * 9 / 8 // write drivers cost ~12% extra

	// Leakage per way per cycle ~ bits stored in the way, anchored to
	// DefaultParams at the reference geometry (4096-set way = 256KB).
	refWayBits := 4096.0 * (64*8 + float64(g.TagBits) + 2)
	wayBits := sets * (float64(g.LineBytes*8) + float64(g.TagBits) + 2)
	leak := 0.02 * wayBits / refWayBits * techScale

	p := DefaultParams()
	p.TagReadPerWay = tagRead
	p.DataRead = dataRead
	p.DataWrite = dataWrite
	p.LeakPerWayCyc = leak
	// Monitoring overheads scale with the tag probe (they are small
	// tag-like structures).
	p.UMONAccess = 0.2 * tagRead
	p.PermRegCheck = 0.01 * tagRead
	p.TakeoverBitOp = 0.02 * tagRead
	return p, nil
}

// PaperTwoCoreGeometry returns the 2MB/8-way LLC of Table 2 with a
// 40-bit physical address space.
func PaperTwoCoreGeometry() Geometry {
	return Geometry{
		SizeBytes: 2 << 20, LineBytes: 64, Ways: 8,
		TagBits: tagBitsFor(40, 2<<20, 64, 8), TechNM: 45, SerialMode: true,
	}
}

// PaperFourCoreGeometry returns the 4MB/16-way LLC of Table 2.
func PaperFourCoreGeometry() Geometry {
	return Geometry{
		SizeBytes: 4 << 20, LineBytes: 64, Ways: 16,
		TagBits: tagBitsFor(40, 4<<20, 64, 16), TechNM: 45, SerialMode: true,
	}
}

// tagBitsFor computes the tag width for a physical address width and
// cache geometry.
func tagBitsFor(addrBits, size, line, ways int) int {
	sets := size / (line * ways)
	idx := 0
	for s := sets; s > 1; s >>= 1 {
		idx++
	}
	off := 0
	for l := line; l > 1; l >>= 1 {
		off++
	}
	return addrBits - idx - off
}
