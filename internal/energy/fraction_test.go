package energy

// Static-energy accounting under fractional powered-way equivalents —
// the regime the banked controller and the set-partitioned (CPE) and
// drowsy extensions operate in, where the powered state is rarely a
// whole way count.

import (
	"math"
	"testing"
)

// segment is one constant-power stretch of a run.
type segment struct {
	until   int64   // advance to this cycle...
	powered float64 // ...then switch to this powered equivalent
}

// expectedStatic integrates leakage over the segments exactly as the
// meter should: powered ways leak fully, gated capacity at the gated
// ratio.
func expectedStatic(p Params, ways int, from int64, powered float64, segs []segment) float64 {
	var static float64
	last := from
	for _, s := range segs {
		dt := float64(s.until - last)
		off := float64(ways) - powered
		static += dt * p.LeakPerWayCyc * (powered + off*p.GatedLeakRatio)
		last = s.until
		powered = s.powered
	}
	return static
}

func TestStaticUnderFractionalPoweredSequence(t *testing.T) {
	p := DefaultParams()
	const ways = 8
	m := NewMeter(p, ways)
	segs := []segment{
		{until: 1000, powered: 5.5},  // CPE: 5 ways + half a way's sets
		{until: 2500, powered: 2.25}, // deep gating
		{until: 2500, powered: 6},    // zero-length segment: no charge
		{until: 4000, powered: 8},    // all back on
		{until: 7000, powered: 0.75}, // nearly everything gated
		{until: 9000, powered: 0.75},
	}
	for _, s := range segs {
		m.SetPoweredEquiv(s.until, s.powered)
	}
	want := expectedStatic(p, ways, 0, float64(ways), segs)
	if math.Abs(m.Static()-want) > 1e-9 {
		t.Fatalf("static = %v, want %v", m.Static(), want)
	}
	if m.PoweredEquiv() != 0.75 {
		t.Fatalf("powered equiv = %v, want 0.75", m.PoweredEquiv())
	}
	if m.PoweredWays() != 0 {
		t.Fatalf("PoweredWays = %d, want 0 (floor of 0.75)", m.PoweredWays())
	}
}

func TestStaticFractionBetweenFullAndGated(t *testing.T) {
	// For any fraction f in [0, ways], the leakage rate must sit
	// between the all-gated floor and the all-on ceiling, and be
	// monotone in f.
	p := DefaultParams()
	const ways, dt = 16, 10000
	var prev float64
	for i, f := range []float64{0, 0.5, 3.25, 8, 12.75, 16} {
		m := NewMeter(p, ways)
		m.SetPoweredEquiv(0, f)
		m.Advance(dt)
		got := m.Static()
		floor := dt * p.LeakPerWayCyc * float64(ways) * p.GatedLeakRatio
		ceil := dt * p.LeakPerWayCyc * float64(ways)
		if got < floor-1e-9 || got > ceil+1e-9 {
			t.Fatalf("f=%v: static %v outside [%v, %v]", f, got, floor, ceil)
		}
		if i > 0 && got <= prev {
			t.Fatalf("f=%v: static %v not above previous fraction's %v", f, got, prev)
		}
		prev = got
	}
}

func TestResetAtPreservesFractionalPowered(t *testing.T) {
	// Warm-up reset: accumulators clear, but the powered fraction and
	// the accounting clock carry over, so the measured region charges
	// exactly from the reset point at the preserved fraction.
	p := DefaultParams()
	const ways = 8
	m := NewMeter(p, ways)
	m.SetPoweredEquiv(500, 3.5)
	m.Advance(2000)
	m.ResetAt(2000)
	if m.Static() != 0 || m.Dynamic() != 0 {
		t.Fatalf("ResetAt left static %v dynamic %v", m.Static(), m.Dynamic())
	}
	if m.PoweredEquiv() != 3.5 {
		t.Fatalf("ResetAt changed powered equiv to %v", m.PoweredEquiv())
	}
	m.Advance(3000)
	want := 1000 * p.LeakPerWayCyc * (3.5 + 4.5*p.GatedLeakRatio)
	if math.Abs(m.Static()-want) > 1e-9 {
		t.Fatalf("post-reset static = %v, want %v", m.Static(), want)
	}
}

func TestFractionalTotalCombinesBothComponents(t *testing.T) {
	p := DefaultParams()
	m := NewMeter(p, 4)
	m.SetPoweredEquiv(0, 1.5)
	m.OnAccess(AccessEvent{TagsConsulted: 2, DataRead: true})
	m.Advance(100)
	if got := m.Total(); math.Abs(got-(m.Dynamic()+m.Static())) > 1e-12 {
		t.Fatalf("Total %v != Dynamic %v + Static %v", got, m.Dynamic(), m.Static())
	}
	if m.Dynamic() == 0 || m.Static() == 0 {
		t.Fatalf("components: dynamic %v static %v, want both positive", m.Dynamic(), m.Static())
	}
}
