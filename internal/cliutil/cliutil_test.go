package cliutil

import (
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestScale(t *testing.T) {
	cases := []struct {
		name    string
		wantErr string
	}{
		{"unit", ""},
		{"test", ""},
		{"full", ""},
		{"", `unknown scale ""`},
		{"Test", `unknown scale "Test"`},
		{"huge", `unknown scale "huge"`},
	}
	for _, tc := range cases {
		sc, err := Scale(tc.name)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("Scale(%q): unexpected error %v", tc.name, err)
			} else if sc.Name == "" {
				t.Errorf("Scale(%q): unnamed scale %+v", tc.name, sc)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("Scale(%q): error %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestFidelity(t *testing.T) {
	cases := []struct {
		name string
		want sim.Fidelity
		ok   bool
	}{
		{"exact", sim.FidelityExact, true},
		{"fastforward", sim.FidelityFastForward, true},
		{"set-sampled", sim.FidelitySetSampled, true},
		{"", 0, false},
		{"Exact", 0, false},
		{"fast", 0, false},
	}
	for _, tc := range cases {
		fid, err := Fidelity(tc.name)
		if tc.ok != (err == nil) {
			t.Errorf("Fidelity(%q): err=%v, want ok=%v", tc.name, err, tc.ok)
			continue
		}
		if tc.ok && fid != tc.want {
			t.Errorf("Fidelity(%q) = %v, want %v", tc.name, fid, tc.want)
		}
	}
}

func TestWorkers(t *testing.T) {
	if n := DefaultWorkers(); n < 1 {
		t.Fatalf("DefaultWorkers() = %d, want >= 1", n)
	}
	cases := []struct {
		n  int
		ok bool
	}{
		{1, true},
		{8, true},
		{DefaultWorkers(), true},
		{0, false},
		{-1, false},
		{-100, false},
	}
	for _, tc := range cases {
		got, err := Workers(tc.n)
		if tc.ok != (err == nil) {
			t.Errorf("Workers(%d): err=%v, want ok=%v", tc.n, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.n {
			t.Errorf("Workers(%d) = %d, want identity", tc.n, got)
		}
		if !tc.ok && !strings.Contains(err.Error(), "-workers") {
			t.Errorf("Workers(%d): error %q does not name the flag", tc.n, err)
		}
	}
}

func TestSampleSets(t *testing.T) {
	cases := []struct {
		k       int
		fid     sim.Fidelity
		want    int
		wantErr string
	}{
		{0, sim.FidelityExact, 0, ""},
		{0, sim.FidelityFastForward, 0, ""},
		{0, sim.FidelitySetSampled, sim.DefaultSampleStride, ""}, // default resolved here
		{8, sim.FidelitySetSampled, 8, ""},
		{1, sim.FidelitySetSampled, 1, ""},
		{64, sim.FidelitySetSampled, 64, ""},
		{8, sim.FidelityExact, 0, "requires -fidelity=set-sampled"},
		{8, sim.FidelityFastForward, 0, "requires -fidelity=set-sampled"},
		{3, sim.FidelitySetSampled, 0, "power of two"},
		{-8, sim.FidelitySetSampled, 0, "power of two"},
	}
	for _, tc := range cases {
		got, err := SampleSets(tc.k, tc.fid)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("SampleSets(%d, %v): unexpected error %v", tc.k, tc.fid, err)
			} else if got != tc.want {
				t.Errorf("SampleSets(%d, %v) = %d, want %d", tc.k, tc.fid, got, tc.want)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("SampleSets(%d, %v): error %v, want containing %q", tc.k, tc.fid, err, tc.wantErr)
		}
	}
}

// TestProbeWritableFailsFast pins the startup contract of the
// persistence flags: a directory that cannot exist — here a path
// beneath a regular file, which fails ENOTDIR even for root — is a
// flag error at parse time, not a silent degradation at cycle 0.
func TestProbeWritableFailsFast(t *testing.T) {
	if err := ProbeWritable("", "-cache-dir"); err != nil {
		t.Fatalf("unset flag must pass, got %v", err)
	}

	good := t.TempDir() + "/fresh/nested"
	if err := ProbeWritable(good, "-cache-dir"); err != nil {
		t.Fatalf("creatable directory rejected: %v", err)
	}

	file := t.TempDir() + "/plain"
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := file + "/sub"
	err := ProbeWritable(bad, "-checkpoint-dir")
	if err == nil || !strings.Contains(err.Error(), "-checkpoint-dir") {
		t.Fatalf("path beneath a regular file: error %v, want naming the flag", err)
	}
	if _, err := Checkpointing(bad, 0); err == nil {
		t.Fatal("Checkpointing accepted an unusable -checkpoint-dir")
	}
	if _, err := CacheDir(bad); err == nil {
		t.Fatal("CacheDir accepted an unusable -cache-dir")
	}
}

func TestThreshold(t *testing.T) {
	cases := []struct {
		t  float64
		ok bool
	}{
		{0, true},
		{0.3, true},
		{1, true},
		{-0.01, false},
		{1.01, false},
		{math.NaN(), false},
	}
	for _, tc := range cases {
		got, err := Threshold(tc.t)
		if tc.ok != (err == nil) {
			t.Errorf("Threshold(%v): err=%v, want ok=%v", tc.t, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.t {
			t.Errorf("Threshold(%v) = %v, want identity", tc.t, got)
		}
	}
}
