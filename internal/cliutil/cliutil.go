// Package cliutil is the shared flag parser for the repro binaries.
// Every binary accepts the same -scale/-fidelity/-workers/-threshold
// vocabulary; parsing and validating it in one place keeps the error
// messages identical and makes "fail fast on bad flags" a property of
// all five binaries at once rather than five copies that drift.
package cliutil

import (
	"fmt"
	"runtime"

	"repro/internal/sim"
)

// Scale resolves a -scale flag value to its sim.Scale.
func Scale(name string) (sim.Scale, error) {
	switch name {
	case "unit":
		return sim.UnitScale(), nil
	case "test":
		return sim.TestScale(), nil
	case "full":
		return sim.FullScale(), nil
	default:
		return sim.Scale{}, fmt.Errorf("unknown scale %q (unit, test or full)", name)
	}
}

// Fidelity resolves a -fidelity flag value.
func Fidelity(name string) (sim.Fidelity, error) {
	return sim.ParseFidelity(name)
}

// DefaultWorkers is the -workers flag default: one worker per CPU.
// Binaries default the flag to this (rather than a 0 sentinel) so an
// explicit -workers=0 is distinguishable from "unset" and can be
// rejected by Workers.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Workers validates a -workers flag value. Zero or negative worker
// counts are configuration errors: the library layer would quietly
// substitute a default, hiding a typo like -workers=O or a broken
// wrapper script computing 0.
func Workers(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("invalid -workers=%d: must be >= 1 (default: one per CPU, %d here)",
			n, DefaultWorkers())
	}
	return n, nil
}

// Threshold validates a -threshold flag value (a miss-rate fraction).
func Threshold(t float64) (float64, error) {
	if t != t || t < 0 || t > 1 {
		return 0, fmt.Errorf("invalid -threshold=%v: must be in [0, 1]", t)
	}
	return t, nil
}
