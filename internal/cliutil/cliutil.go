// Package cliutil is the shared flag parser for the repro binaries.
// Every binary accepts the same -scale/-fidelity/-workers/-threshold
// vocabulary; parsing and validating it in one place keeps the error
// messages identical and makes "fail fast on bad flags" a property of
// all five binaries at once rather than five copies that drift.
package cliutil

import (
	"fmt"
	"os"
	"runtime"

	"repro/internal/ckpt"
	"repro/internal/sim"
	"repro/internal/store"
)

// Scale resolves a -scale flag value to its sim.Scale.
func Scale(name string) (sim.Scale, error) {
	switch name {
	case "unit":
		return sim.UnitScale(), nil
	case "test":
		return sim.TestScale(), nil
	case "full":
		return sim.FullScale(), nil
	default:
		return sim.Scale{}, fmt.Errorf("unknown scale %q (unit, test or full)", name)
	}
}

// Fidelity resolves a -fidelity flag value.
func Fidelity(name string) (sim.Fidelity, error) {
	return sim.ParseFidelity(name)
}

// DefaultWorkers is the -workers flag default: one worker per CPU.
// Binaries default the flag to this (rather than a 0 sentinel) so an
// explicit -workers=0 is distinguishable from "unset" and can be
// rejected by Workers.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Workers validates a -workers flag value. Zero or negative worker
// counts are configuration errors: the library layer would quietly
// substitute a default, hiding a typo like -workers=O or a broken
// wrapper script computing 0.
func Workers(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("invalid -workers=%d: must be >= 1 (default: one per CPU, %d here)",
			n, DefaultWorkers())
	}
	return n, nil
}

// SampleSets validates the -sample-sets/-fidelity flag pair: the LLC
// set-sampling ratio K is meaningful only on the set-sampled tier
// (sim.NewSystem rejects it elsewhere — catch the contradiction at
// flag parse time with a flag-vocabulary message), and an unset K on
// that tier resolves to sim.DefaultSampleStride here so the effective
// ratio is explicit in the run's scale fingerprint.
func SampleSets(k int, fid sim.Fidelity) (int, error) {
	if k < 0 || (k != 0 && k&(k-1) != 0) {
		return 0, fmt.Errorf("invalid -sample-sets=%d: must be a power of two", k)
	}
	if k != 0 && fid != sim.FidelitySetSampled {
		return 0, fmt.Errorf("-sample-sets=%d requires -fidelity=set-sampled", k)
	}
	if k == 0 && fid == sim.FidelitySetSampled {
		k = sim.DefaultSampleStride
	}
	return k, nil
}

// Threshold validates a -threshold flag value (a miss-rate fraction).
func Threshold(t float64) (float64, error) {
	if t != t || t < 0 || t > 1 {
		return 0, fmt.Errorf("invalid -threshold=%v: must be in [0, 1]", t)
	}
	return t, nil
}

// Checkpointing validates the -checkpoint-dir/-checkpoint-every flag
// pair. A negative cadence is a typo; a cadence without a directory is
// a configuration error (mid-run checkpoints that die with the process
// protect nothing); an unwritable directory is caught here too — all
// fail fast rather than silently running uncheckpointed. Mid-run
// store faults still degrade gracefully (the ladder is unchanged);
// only the startup contract is strict.
func Checkpointing(dir string, every int64) (uint64, error) {
	if every < 0 {
		return 0, fmt.Errorf("invalid -checkpoint-every=%d: must be >= 0 (measured instructions between mid-run checkpoints; 0 = warm-up checkpoints only)", every)
	}
	if every > 0 && dir == "" {
		return 0, fmt.Errorf("-checkpoint-every=%d requires -checkpoint-dir (mid-run checkpoints need a directory to survive the process)", every)
	}
	if err := ProbeWritable(dir, "-checkpoint-dir"); err != nil {
		return 0, err
	}
	return uint64(every), nil
}

// CacheDir validates a -cache-dir flag value: empty opts out of the
// persistent cache; a non-empty directory must be writable at startup.
func CacheDir(dir string) (string, error) {
	if err := ProbeWritable(dir, "-cache-dir"); err != nil {
		return "", err
	}
	return dir, nil
}

// ProbeWritable fails fast when a persistence flag points at a
// directory the process cannot write. The directory is created if
// missing (exactly what the store layer would do later) and a probe
// file is round-tripped through it. A flag that opts into persistence
// must not silently degrade from the first cycle — mid-run failures
// still use the store's graceful-degradation ladder, but a directory
// that was never usable is a configuration error. An empty dir means
// the flag is unset and passes.
func ProbeWritable(dir, flagName string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("%s=%s: cannot create directory: %v", flagName, dir, err)
	}
	f, err := os.CreateTemp(dir, ".writable-probe-*")
	if err != nil {
		return fmt.Errorf("%s=%s: directory is not writable: %v", flagName, dir, err)
	}
	name := f.Name()
	f.Close()
	os.Remove(name)
	return nil
}

// OpenCheckpoints opens the checkpoint manager for a validated
// -checkpoint-dir/-checkpoint-every pair. An empty dir yields a
// memory-only manager (in-process warm-up sharing still on); an
// unusable directory degrades the same way via store.OpenCLI. The
// returned store (nil without a dir) is exposed for exit-time stats
// reporting and signal handling.
func OpenCheckpoints(dir string, every uint64, prog string) (*ckpt.Manager, *store.Store) {
	st := store.OpenCLI(dir, prog)
	return ckpt.New(ckpt.Options{
		Store: st,
		Every: every,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, prog+": "+format+"\n", args...)
		},
	}), st
}
