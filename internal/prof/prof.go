// Package prof wires the standard pprof file profiles into the
// command-line front ends, so sweep-scale perf work can profile any
// binary (`go tool pprof cpu.out`) without editing code. All four
// cmds expose the same -cpuprofile/-memprofile flags through it.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the (possibly empty) file
// names and returns a stop function to defer: it finishes the CPU
// profile and snapshots the heap profile at exit.
func Start(cpuFile, memFile string) (stop func() error, err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, err
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return err
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}
