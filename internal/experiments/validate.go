package experiments

// The tier-equivalence validation harness (DESIGN.md §11, §15). The
// statistical fidelity tiers — FastForward's RNG walk and SetSampled's
// 1/K LLC on top of it — are different samples from the same workload
// distribution, so they can never be byte-compared against the exact
// tier; what keeps them honest is a statistical contract: on the
// headline figures, each tier's per-scheme delta from exact must be
// small relative to the smallest gap *between schemes* — the quantity
// the figures exist to discriminate. ValidateTiers measures both sides
// of that contract across a seed sweep and emits a machine-readable
// report that CI gates on (cmd/tiercheck) and EXPERIMENTS.md records.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/ckpt"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// Default pass criteria for TierCheckConfig.
const (
	// DefaultGapFraction: a figure passes when its largest tier delta
	// is at most this fraction of its smallest between-scheme gap.
	DefaultGapFraction = 0.5
	// DefaultGapFloor: scheme pairs closer than this are near-ties the
	// figure does not discriminate (e.g. the static-energy figure pins
	// Unmanaged, UCP and FairShare at ~1.0 by construction); they are
	// excluded from the between-scheme gap, and a figure with no
	// resolvable gap at all falls back to the floor as denominator.
	DefaultGapFloor = 0.02
)

// TierCheckConfig parameterises ValidateTiers.
type TierCheckConfig struct {
	Scale sim.Scale // TestScale if zero
	// Seeds is the seed sweep; every tier runs at every seed and the
	// compared values are seed means. Defaults to 1..5.
	Seeds     []uint64
	Threshold float64 // CoopPart/DynCPE threshold; DefaultThreshold if 0
	Workers   int     // concurrent simulations; GOMAXPROCS if 0
	// MaxGroups caps the two-core groups per figure (0 = all 14) so CI
	// smokes stay cheap.
	MaxGroups   int
	GapFraction float64 // DefaultGapFraction if 0
	GapFloor    float64 // DefaultGapFloor if 0
	// Store is the optional persistent result cache (nil = in-memory
	// only); every per-seed runner of the sweep shares it.
	Store *store.Store
	// Remote is the optional experiment server layer (nil = compute
	// locally); every per-seed runner of the sweep shares it — the
	// client is seed-agnostic, each runner stamps its own seed into
	// the requests.
	Remote Remote
	// Checkpoints is the optional checkpoint manager (nil gets each
	// runner a memory-only one); every per-seed runner shares it —
	// warm-up keys carry the seed, so sharing the manager never
	// aliases runs.
	Checkpoints *ckpt.Manager
	// Tiers lists the statistical tiers validated against the exact
	// baseline; empty means both FastForward and SetSampled. The
	// set-sampled tier's stride comes from Scale.SampleStride (0 =
	// sim.DefaultSampleStride).
	Tiers []sim.Fidelity
}

// TierDelta is one (scheme, tier) seed-mean figure value against the
// exact baseline.
type TierDelta struct {
	Scheme string  `json:"scheme"`
	Tier   string  `json:"tier"`
	Exact  float64 `json:"exact"`
	Value  float64 `json:"value"`
	Delta  float64 `json:"delta"`
}

// TierFigure is the tier comparison of one headline figure: the AVG
// (geomean over groups, normalised to FairShare) column per scheme.
type TierFigure struct {
	ID       string      `json:"id"`
	Deltas   []TierDelta `json:"deltas"`
	MaxDelta float64     `json:"max_delta"`
	// MinGap is the smallest between-scheme gap of the exact tier
	// (near-ties below GapFloor excluded); 0 when no pair resolves.
	MinGap float64 `json:"min_gap"`
	// Ratio is MaxDelta over MinGap (or over GapFloor when no pair
	// resolves); the figure passes when Ratio <= GapFraction.
	Ratio float64 `json:"ratio"`
	Pass  bool    `json:"pass"`
}

// TierReport is the machine-readable output of ValidateTiers.
type TierReport struct {
	Scale       string       `json:"scale"`
	Seeds       []uint64     `json:"seeds"`
	Tiers       []string     `json:"tiers"`
	Groups      int          `json:"groups"`
	GapFraction float64      `json:"gap_fraction"`
	GapFloor    float64      `json:"gap_floor"`
	Figures     []TierFigure `json:"figures"`
	Simulations uint64       `json:"simulations"`
	Pass        bool         `json:"pass"`
}

// tierMetrics are the per-figure values of one (seed, scheme, tier)
// cell: geomean over the groups of the metric normalised to the same
// tier's FairShare run — exactly the AVG column of Figures 5/6/7.
type tierMetrics struct{ ws, dyn, stat float64 }

// tierFigureIDs names the compared figures in report order.
var tierFigureIDs = []string{"Fig5-WS", "Fig6-DynEnergy", "Fig7-StaticPower"}

func (m tierMetrics) value(fig int) float64 {
	switch fig {
	case 0:
		return m.ws
	case 1:
		return m.dyn
	default:
		return m.stat
	}
}

// ValidateTiers runs the exact tier plus every configured statistical
// tier across the seed sweep and checks the statistical-equivalence
// contract figure by figure. The returned report is complete even when
// the contract fails (Pass is per-figure and overall); the error is
// reserved for runs that could not execute.
func ValidateTiers(cfg TierCheckConfig) (*TierReport, error) {
	if cfg.Scale.Name == "" {
		cfg.Scale = sim.TestScale()
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []uint64{1, 2, 3, 4, 5}
	}
	if cfg.GapFraction == 0 {
		cfg.GapFraction = DefaultGapFraction
	}
	if cfg.GapFloor == 0 {
		cfg.GapFloor = DefaultGapFloor
	}
	if len(cfg.Tiers) == 0 {
		cfg.Tiers = []sim.Fidelity{sim.FidelityFastForward, sim.FidelitySetSampled}
	}
	groups := workload.Groups2
	if cfg.MaxGroups > 0 && cfg.MaxGroups < len(groups) {
		groups = groups[:cfg.MaxGroups]
	}
	tiers := append([]sim.Fidelity{sim.FidelityExact}, cfg.Tiers...)

	// sums[fig][scheme][tier] accumulates the per-seed figure values;
	// tier index 0 is the exact baseline.
	sums := make([][][]float64, len(tierFigureIDs))
	for i := range sums {
		sums[i] = make([][]float64, len(tierSchemes))
		for j := range sums[i] {
			sums[i][j] = make([]float64, len(tiers))
		}
	}
	var sims uint64
	for _, seed := range cfg.Seeds {
		r := NewRunner(Config{
			Scale: cfg.Scale, Seed: seed,
			Threshold: cfg.Threshold, Workers: cfg.Workers,
			Store: cfg.Store, Remote: cfg.Remote, Checkpoints: cfg.Checkpoints,
		})
		// One fan-out per seed: both tiers' (group, scheme) runs plus
		// Equation 1's tier-matched solo runs and the DynCPE profiles.
		var reqs []Request
		for _, fid := range tiers {
			for _, g := range groups {
				for _, s := range sim.AllSchemes {
					reqs = append(reqs, Request{Group: g, Scheme: s,
						Threshold: r.cfg.Threshold, Fidelity: fid})
				}
			}
		}
		if err := r.RunAllSpeedup(reqs); err != nil {
			return nil, err
		}
		for si, scheme := range tierSchemes {
			for ti, fid := range tiers {
				m, err := r.tierCell(groups, scheme, fid)
				if err != nil {
					return nil, err
				}
				for fi := range sums {
					sums[fi][si][ti] += m.value(fi)
				}
			}
		}
		sims += r.Simulations()
	}

	report := &TierReport{
		Scale:       cfg.Scale.Name,
		Seeds:       cfg.Seeds,
		Groups:      len(groups),
		GapFraction: cfg.GapFraction,
		GapFloor:    cfg.GapFloor,
		Simulations: sims,
		Pass:        true,
	}
	for _, fid := range cfg.Tiers {
		report.Tiers = append(report.Tiers, fid.String())
	}
	n := float64(len(cfg.Seeds))
	for fi, id := range tierFigureIDs {
		fig := TierFigure{ID: id}
		exact := make([]float64, len(tierSchemes))
		for si := range tierSchemes {
			exact[si] = sums[fi][si][0] / n
		}
		for ti, fid := range cfg.Tiers {
			for si, scheme := range tierSchemes {
				val := sums[fi][si][ti+1] / n
				d := TierDelta{
					Scheme: string(scheme), Tier: fid.String(),
					Exact: exact[si], Value: val,
					Delta: math.Abs(exact[si] - val),
				}
				fig.Deltas = append(fig.Deltas, d)
				if d.Delta > fig.MaxDelta {
					fig.MaxDelta = d.Delta
				}
			}
		}
		fig.MinGap = minSchemeGap(exact, cfg.GapFloor)
		denom := fig.MinGap
		if denom == 0 {
			denom = cfg.GapFloor
		}
		fig.Ratio = fig.MaxDelta / denom
		fig.Pass = fig.Ratio <= cfg.GapFraction
		if !fig.Pass {
			report.Pass = false
		}
		report.Figures = append(report.Figures, fig)
	}
	return report, nil
}

// tierSchemes is AllSchemes in report order.
var tierSchemes = sim.AllSchemes

// tierCell computes one (scheme, tier) cell from the runner's warm
// memo: geomean over groups of the metric normalised to the same
// tier's FairShare run.
func (r *Runner) tierCell(groups []workload.Group, scheme sim.SchemeKind, fid sim.Fidelity) (tierMetrics, error) {
	wsR := make([]float64, 0, len(groups))
	dynR := make([]float64, 0, len(groups))
	statR := make([]float64, 0, len(groups))
	for _, g := range groups {
		fair, err := r.RunGroupFidelity(g, sim.FairShare, r.cfg.Threshold, VariantNone, fid)
		if err != nil {
			return tierMetrics{}, err
		}
		res, err := r.RunGroupFidelity(g, scheme, r.cfg.Threshold, VariantNone, fid)
		if err != nil {
			return tierMetrics{}, err
		}
		fairWS, err := r.WeightedSpeedup(fair)
		if err != nil {
			return tierMetrics{}, err
		}
		ws, err := r.WeightedSpeedup(res)
		if err != nil {
			return tierMetrics{}, err
		}
		if fairWS == 0 || fair.Dynamic == 0 || fair.StaticPower == 0 {
			return tierMetrics{}, fmt.Errorf("experiments: zero FairShare baseline for %s at %s", g.Name, fid)
		}
		wsR = append(wsR, ws/fairWS)
		dynR = append(dynR, res.Dynamic/fair.Dynamic)
		statR = append(statR, res.StaticPower/fair.StaticPower)
	}
	return tierMetrics{
		ws:   metrics.GeoMean(wsR),
		dyn:  metrics.GeoMean(dynR),
		stat: metrics.GeoMean(statR),
	}, nil
}

// minSchemeGap returns the smallest pairwise distance among the exact
// per-scheme values, ignoring near-ties under floor; 0 when no pair
// resolves.
func minSchemeGap(vals []float64, floor float64) float64 {
	min := 0.0
	for i := 0; i < len(vals); i++ {
		for j := i + 1; j < len(vals); j++ {
			gap := math.Abs(vals[i] - vals[j])
			if gap < floor {
				continue
			}
			if min == 0 || gap < min {
				min = gap
			}
		}
	}
	return min
}

// WriteJSON emits the report for CI artifacts and EXPERIMENTS.md.
func (r *TierReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable emits the report as an aligned human-readable table.
func (r *TierReport) WriteTable(w io.Writer) error {
	status := func(ok bool) string {
		if ok {
			return "PASS"
		}
		return "FAIL"
	}
	if _, err := fmt.Fprintf(w, "tier equivalence: scale=%s seeds=%v tiers=%v groups=%d gap-fraction=%.2f gap-floor=%.3f (%d simulations)\n",
		r.Scale, r.Seeds, r.Tiers, r.Groups, r.GapFraction, r.GapFloor, r.Simulations); err != nil {
		return err
	}
	for _, fig := range r.Figures {
		fmt.Fprintf(w, "\n%s  max-delta=%.4f min-gap=%.4f ratio=%.3f  %s\n",
			fig.ID, fig.MaxDelta, fig.MinGap, fig.Ratio, status(fig.Pass))
		fmt.Fprintf(w, "  %-10s %-12s %10s %10s %9s\n", "scheme", "tier", "exact", "value", "delta")
		for _, d := range fig.Deltas {
			fmt.Fprintf(w, "  %-10s %-12s %10.4f %10.4f %9.4f\n", d.Scheme, d.Tier, d.Exact, d.Value, d.Delta)
		}
	}
	_, err := fmt.Fprintf(w, "\noverall: %s\n", status(r.Pass))
	return err
}
