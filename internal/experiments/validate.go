package experiments

// The tier-equivalence validation harness (DESIGN.md §11). The
// FastForward RNG-walk tier is a different sample from the same
// workload distribution, so it can never be byte-compared against the
// exact tier; what keeps it honest is a statistical contract: on the
// headline figures, the per-scheme delta between tiers must be small
// relative to the smallest gap *between schemes* — the quantity the
// figures exist to discriminate. ValidateTiers measures both sides of
// that contract across a seed sweep and emits a machine-readable
// report that CI gates on (cmd/tiercheck) and EXPERIMENTS.md records.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/ckpt"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// Default pass criteria for TierCheckConfig.
const (
	// DefaultGapFraction: a figure passes when its largest tier delta
	// is at most this fraction of its smallest between-scheme gap.
	DefaultGapFraction = 0.5
	// DefaultGapFloor: scheme pairs closer than this are near-ties the
	// figure does not discriminate (e.g. the static-energy figure pins
	// Unmanaged, UCP and FairShare at ~1.0 by construction); they are
	// excluded from the between-scheme gap, and a figure with no
	// resolvable gap at all falls back to the floor as denominator.
	DefaultGapFloor = 0.02
)

// TierCheckConfig parameterises ValidateTiers.
type TierCheckConfig struct {
	Scale sim.Scale // TestScale if zero
	// Seeds is the seed sweep; both tiers run at every seed and the
	// compared values are seed means. Defaults to 1..5.
	Seeds     []uint64
	Threshold float64 // CoopPart/DynCPE threshold; DefaultThreshold if 0
	Workers   int     // concurrent simulations; GOMAXPROCS if 0
	// MaxGroups caps the two-core groups per figure (0 = all 14) so CI
	// smokes stay cheap.
	MaxGroups   int
	GapFraction float64 // DefaultGapFraction if 0
	GapFloor    float64 // DefaultGapFloor if 0
	// Store is the optional persistent result cache (nil = in-memory
	// only); every per-seed runner of the sweep shares it.
	Store *store.Store
	// Remote is the optional experiment server layer (nil = compute
	// locally); every per-seed runner of the sweep shares it — the
	// client is seed-agnostic, each runner stamps its own seed into
	// the requests.
	Remote Remote
	// Checkpoints is the optional checkpoint manager (nil gets each
	// runner a memory-only one); every per-seed runner shares it —
	// warm-up keys carry the seed, so sharing the manager never
	// aliases runs.
	Checkpoints *ckpt.Manager
}

// TierDelta is one scheme's seed-mean figure value at both tiers.
type TierDelta struct {
	Scheme      string  `json:"scheme"`
	Exact       float64 `json:"exact"`
	FastForward float64 `json:"fast_forward"`
	Delta       float64 `json:"delta"`
}

// TierFigure is the tier comparison of one headline figure: the AVG
// (geomean over groups, normalised to FairShare) column per scheme.
type TierFigure struct {
	ID       string      `json:"id"`
	Deltas   []TierDelta `json:"deltas"`
	MaxDelta float64     `json:"max_delta"`
	// MinGap is the smallest between-scheme gap of the exact tier
	// (near-ties below GapFloor excluded); 0 when no pair resolves.
	MinGap float64 `json:"min_gap"`
	// Ratio is MaxDelta over MinGap (or over GapFloor when no pair
	// resolves); the figure passes when Ratio <= GapFraction.
	Ratio float64 `json:"ratio"`
	Pass  bool    `json:"pass"`
}

// TierReport is the machine-readable output of ValidateTiers.
type TierReport struct {
	Scale       string       `json:"scale"`
	Seeds       []uint64     `json:"seeds"`
	Groups      int          `json:"groups"`
	GapFraction float64      `json:"gap_fraction"`
	GapFloor    float64      `json:"gap_floor"`
	Figures     []TierFigure `json:"figures"`
	Simulations uint64       `json:"simulations"`
	Pass        bool         `json:"pass"`
}

// tierMetrics are the per-figure values of one (seed, scheme, tier)
// cell: geomean over the groups of the metric normalised to the same
// tier's FairShare run — exactly the AVG column of Figures 5/6/7.
type tierMetrics struct{ ws, dyn, stat float64 }

// tierFigureIDs names the compared figures in report order.
var tierFigureIDs = []string{"Fig5-WS", "Fig6-DynEnergy", "Fig7-StaticPower"}

func (m tierMetrics) value(fig int) float64 {
	switch fig {
	case 0:
		return m.ws
	case 1:
		return m.dyn
	default:
		return m.stat
	}
}

// ValidateTiers runs both RNG-walk tiers across the seed sweep and
// checks the statistical-equivalence contract figure by figure. The
// returned report is complete even when the contract fails (Pass is
// per-figure and overall); the error is reserved for runs that could
// not execute.
func ValidateTiers(cfg TierCheckConfig) (*TierReport, error) {
	if cfg.Scale.Name == "" {
		cfg.Scale = sim.TestScale()
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []uint64{1, 2, 3, 4, 5}
	}
	if cfg.GapFraction == 0 {
		cfg.GapFraction = DefaultGapFraction
	}
	if cfg.GapFloor == 0 {
		cfg.GapFloor = DefaultGapFloor
	}
	groups := workload.Groups2
	if cfg.MaxGroups > 0 && cfg.MaxGroups < len(groups) {
		groups = groups[:cfg.MaxGroups]
	}
	tiers := []sim.Fidelity{sim.FidelityExact, sim.FidelityFastForward}

	// sums[fig][scheme][tier] accumulates the per-seed figure values.
	sums := make([][][2]float64, len(tierFigureIDs))
	for i := range sums {
		sums[i] = make([][2]float64, len(tierSchemes))
	}
	var sims uint64
	for _, seed := range cfg.Seeds {
		r := NewRunner(Config{
			Scale: cfg.Scale, Seed: seed,
			Threshold: cfg.Threshold, Workers: cfg.Workers,
			Store: cfg.Store, Remote: cfg.Remote, Checkpoints: cfg.Checkpoints,
		})
		// One fan-out per seed: both tiers' (group, scheme) runs plus
		// Equation 1's tier-matched solo runs and the DynCPE profiles.
		var reqs []Request
		for _, fid := range tiers {
			for _, g := range groups {
				for _, s := range sim.AllSchemes {
					reqs = append(reqs, Request{Group: g, Scheme: s,
						Threshold: r.cfg.Threshold, Fidelity: fid})
				}
			}
		}
		if err := r.RunAllSpeedup(reqs); err != nil {
			return nil, err
		}
		for si, scheme := range tierSchemes {
			for ti, fid := range tiers {
				m, err := r.tierCell(groups, scheme, fid)
				if err != nil {
					return nil, err
				}
				for fi := range sums {
					sums[fi][si][ti] += m.value(fi)
				}
			}
		}
		sims += r.Simulations()
	}

	report := &TierReport{
		Scale:       cfg.Scale.Name,
		Seeds:       cfg.Seeds,
		Groups:      len(groups),
		GapFraction: cfg.GapFraction,
		GapFloor:    cfg.GapFloor,
		Simulations: sims,
		Pass:        true,
	}
	n := float64(len(cfg.Seeds))
	for fi, id := range tierFigureIDs {
		fig := TierFigure{ID: id}
		exact := make([]float64, len(tierSchemes))
		for si, scheme := range tierSchemes {
			ex := sums[fi][si][0] / n
			ff := sums[fi][si][1] / n
			exact[si] = ex
			d := TierDelta{
				Scheme: string(scheme), Exact: ex, FastForward: ff,
				Delta: math.Abs(ex - ff),
			}
			fig.Deltas = append(fig.Deltas, d)
			if d.Delta > fig.MaxDelta {
				fig.MaxDelta = d.Delta
			}
		}
		fig.MinGap = minSchemeGap(exact, cfg.GapFloor)
		denom := fig.MinGap
		if denom == 0 {
			denom = cfg.GapFloor
		}
		fig.Ratio = fig.MaxDelta / denom
		fig.Pass = fig.Ratio <= cfg.GapFraction
		if !fig.Pass {
			report.Pass = false
		}
		report.Figures = append(report.Figures, fig)
	}
	return report, nil
}

// tierSchemes is AllSchemes in report order.
var tierSchemes = sim.AllSchemes

// tierCell computes one (scheme, tier) cell from the runner's warm
// memo: geomean over groups of the metric normalised to the same
// tier's FairShare run.
func (r *Runner) tierCell(groups []workload.Group, scheme sim.SchemeKind, fid sim.Fidelity) (tierMetrics, error) {
	wsR := make([]float64, 0, len(groups))
	dynR := make([]float64, 0, len(groups))
	statR := make([]float64, 0, len(groups))
	for _, g := range groups {
		fair, err := r.RunGroupFidelity(g, sim.FairShare, r.cfg.Threshold, VariantNone, fid)
		if err != nil {
			return tierMetrics{}, err
		}
		res, err := r.RunGroupFidelity(g, scheme, r.cfg.Threshold, VariantNone, fid)
		if err != nil {
			return tierMetrics{}, err
		}
		fairWS, err := r.WeightedSpeedup(fair)
		if err != nil {
			return tierMetrics{}, err
		}
		ws, err := r.WeightedSpeedup(res)
		if err != nil {
			return tierMetrics{}, err
		}
		if fairWS == 0 || fair.Dynamic == 0 || fair.StaticPower == 0 {
			return tierMetrics{}, fmt.Errorf("experiments: zero FairShare baseline for %s at %s", g.Name, fid)
		}
		wsR = append(wsR, ws/fairWS)
		dynR = append(dynR, res.Dynamic/fair.Dynamic)
		statR = append(statR, res.StaticPower/fair.StaticPower)
	}
	return tierMetrics{
		ws:   metrics.GeoMean(wsR),
		dyn:  metrics.GeoMean(dynR),
		stat: metrics.GeoMean(statR),
	}, nil
}

// minSchemeGap returns the smallest pairwise distance among the exact
// per-scheme values, ignoring near-ties under floor; 0 when no pair
// resolves.
func minSchemeGap(vals []float64, floor float64) float64 {
	min := 0.0
	for i := 0; i < len(vals); i++ {
		for j := i + 1; j < len(vals); j++ {
			gap := math.Abs(vals[i] - vals[j])
			if gap < floor {
				continue
			}
			if min == 0 || gap < min {
				min = gap
			}
		}
	}
	return min
}

// WriteJSON emits the report for CI artifacts and EXPERIMENTS.md.
func (r *TierReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable emits the report as an aligned human-readable table.
func (r *TierReport) WriteTable(w io.Writer) error {
	status := func(ok bool) string {
		if ok {
			return "PASS"
		}
		return "FAIL"
	}
	if _, err := fmt.Fprintf(w, "tier equivalence: scale=%s seeds=%v groups=%d gap-fraction=%.2f gap-floor=%.3f (%d simulations)\n",
		r.Scale, r.Seeds, r.Groups, r.GapFraction, r.GapFloor, r.Simulations); err != nil {
		return err
	}
	for _, fig := range r.Figures {
		fmt.Fprintf(w, "\n%s  max-delta=%.4f min-gap=%.4f ratio=%.3f  %s\n",
			fig.ID, fig.MaxDelta, fig.MinGap, fig.Ratio, status(fig.Pass))
		fmt.Fprintf(w, "  %-10s %10s %12s %9s\n", "scheme", "exact", "fastforward", "delta")
		for _, d := range fig.Deltas {
			fmt.Fprintf(w, "  %-10s %10.4f %12.4f %9.4f\n", d.Scheme, d.Exact, d.FastForward, d.Delta)
		}
	}
	_, err := fmt.Fprintf(w, "\noverall: %s\n", status(r.Pass))
	return err
}
