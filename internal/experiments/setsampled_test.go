package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestSetSampledMemoisedDistinctly extends the tier-sentinel regression
// test to the third fidelity tier: exact, fast-forward and set-sampled
// runs of one (group, scheme, threshold) must land under three distinct
// memo keys and carry their own labels, and the persistent-store key
// space must separate them the same way (including the sample stride,
// which travels in the scale fingerprint).
func TestSetSampledMemoisedDistinctly(t *testing.T) {
	r := NewRunner(Config{Scale: sim.UnitScale()})
	g := workload.Groups2[0]

	exact, err := r.RunGroupFidelity(g, sim.CoopPart, r.cfg.Threshold, VariantNone, sim.FidelityExact)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := r.RunGroupFidelity(g, sim.CoopPart, r.cfg.Threshold, VariantNone, sim.FidelityFastForward)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := r.RunGroupFidelity(g, sim.CoopPart, r.cfg.Threshold, VariantNone, sim.FidelitySetSampled)
	if err != nil {
		t.Fatal(err)
	}
	if exact == ss || ff == ss {
		t.Fatal("set-sampled run memoised under another tier's key")
	}
	if ss.Fidelity != sim.FidelitySetSampled {
		t.Fatalf("set-sampled result mislabelled: %v", ss.Fidelity)
	}
	if got := r.Simulations(); got != 3 {
		t.Fatalf("executed %d simulations, want 3 (one per tier)", got)
	}
	// Repeats hit the memo.
	if again, err := r.RunGroupFidelity(g, sim.CoopPart, r.cfg.Threshold, VariantNone, sim.FidelitySetSampled); err != nil || again != ss {
		t.Fatalf("repeated set-sampled request missed the memo (err=%v)", err)
	}

	// Store keys: the tier is spelled out, and two strides are two
	// distinct scale fingerprints (so a K=8 result is never served to a
	// K=16 request).
	kSS := r.RunKey(g, sim.CoopPart, r.cfg.Threshold, VariantNone, sim.FidelitySetSampled)
	kFF := r.RunKey(g, sim.CoopPart, r.cfg.Threshold, VariantNone, sim.FidelityFastForward)
	if kSS == kFF || !strings.Contains(kSS, "fidelity=set-sampled") {
		t.Fatalf("store key does not separate the set-sampled tier: %q", kSS)
	}
	sc := sim.UnitScale()
	sc.SampleStride = 16
	r16 := NewRunner(Config{Scale: sc})
	if k16 := r16.RunKey(g, sim.CoopPart, r.cfg.Threshold, VariantNone, sim.FidelitySetSampled); k16 == kSS {
		t.Fatal("stride 16 and the default stride share a store key")
	}
}

// chiSquared999 is the 99.9th-percentile critical value of the
// chi-squared distribution, by degrees of freedom, for the bin counts
// this package's distribution tests use.
var chiSquared999 = map[int]float64{
	11: 31.264,
	27: 55.476,
}

// TestSetSampledMissDistribution is the distribution-shape check the
// per-figure deltas cannot see: across (group, core) bins, the
// set-sampled tier's share of total LLC misses must match the exact
// tier's. Both tiers' per-bin miss counts are normalised to
// proportions and compared with a chi-squared statistic at pseudo-
// sample size N=500 — testing shape, not magnitude, so an overall
// estimation bias (partition/estimate.go) could not mask a skewed
// redistribution of misses between workloads. The statistic
// must stay under the chi-squared 99.9% critical value for the bin
// count's degrees of freedom.
func TestSetSampledMissDistribution(t *testing.T) {
	const pseudoN = 500.0
	r := NewRunner(Config{Scale: sim.UnitScale()})
	groups := workload.Groups2[:6]

	var reqs []Request
	for _, fid := range []sim.Fidelity{sim.FidelityExact, sim.FidelitySetSampled} {
		for _, g := range groups {
			reqs = append(reqs, Request{Group: g, Scheme: sim.CoopPart,
				Threshold: r.cfg.Threshold, Fidelity: fid})
		}
	}
	if err := r.RunAll(reqs); err != nil {
		t.Fatal(err)
	}

	misses := func(fid sim.Fidelity) []float64 {
		var out []float64
		for _, g := range groups {
			res, err := r.RunGroupFidelity(g, sim.CoopPart, r.cfg.Threshold, VariantNone, fid)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range res.SchemeStats.PerCore {
				out = append(out, float64(c.Misses))
			}
		}
		return out
	}
	exact := misses(sim.FidelityExact)
	sampled := misses(sim.FidelitySetSampled)
	if len(exact) != len(sampled) || len(exact) == 0 {
		t.Fatalf("bin mismatch: %d exact vs %d sampled", len(exact), len(sampled))
	}

	var exTot, ssTot float64
	for i := range exact {
		exTot += exact[i]
		ssTot += sampled[i]
	}
	chi2 := 0.0
	for i := range exact {
		p := exact[i] / exTot   // expected proportion (exact tier)
		q := sampled[i] / ssTot // observed proportion (set-sampled tier)
		if p == 0 {
			t.Fatalf("bin %d has zero exact misses; the binning is degenerate", i)
		}
		chi2 += pseudoN * (q - p) * (q - p) / p
	}
	df := len(exact) - 1
	crit, ok := chiSquared999[df]
	if !ok {
		t.Fatalf("no critical value tabulated for %d degrees of freedom", df)
	}
	t.Logf("chi-squared = %.2f over %d bins (critical value %.2f at 99.9%%)", chi2, len(exact), crit)
	if chi2 > crit {
		t.Fatalf("miss distribution diverges: chi-squared %.2f > %.2f (df=%d, pseudo-N=%.0f)",
			chi2, crit, df, pseudoN)
	}
}
