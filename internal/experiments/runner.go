// Package experiments regenerates every table and figure of the
// paper's evaluation (Tables 1-4, Figures 5-16) plus the ablations
// listed in DESIGN.md §7. A Runner memoises simulation runs so that
// figures sharing the same underlying experiments (e.g. Figures 5-7 all
// consume the fourteen two-core runs per scheme) execute each run once.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/workload"
)

// DefaultThreshold is the paper's operating point for Cooperative
// Partitioning's T parameter (Section 5.1).
const DefaultThreshold = 0.05

// Thresholds is the sweep of Figures 11-13.
var Thresholds = []float64{0, 0.01, 0.05, 0.10, 0.20}

// Config parameterises a Runner.
type Config struct {
	Scale sim.Scale
	Seed  uint64
	// Threshold for CoopPart/DynCPE runs; DefaultThreshold if zero.
	Threshold float64
}

// Runner executes and memoises simulation runs.
type Runner struct {
	cfg Config

	mu       sync.Mutex
	runs     map[runKey]*sim.Results
	alone    map[aloneKey]*sim.Results
	profiles map[aloneKey]partition.CoreProfile
}

type runKey struct {
	group     string
	scheme    sim.SchemeKind
	threshold float64
}

type aloneKey struct {
	benchmark string
	cores     int
}

// NewRunner builds a Runner; a zero-value Config gets the test scale,
// seed 1 and the paper's threshold.
func NewRunner(cfg Config) *Runner {
	if cfg.Scale.Name == "" {
		cfg.Scale = sim.TestScale()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = DefaultThreshold
	}
	return &Runner{
		cfg:      cfg,
		runs:     make(map[runKey]*sim.Results),
		alone:    make(map[aloneKey]*sim.Results),
		profiles: make(map[aloneKey]partition.CoreProfile),
	}
}

// Scale returns the runner's simulation scale.
func (r *Runner) Scale() sim.Scale { return r.cfg.Scale }

// AloneResults returns (memoised) the solo run of a benchmark on the
// LLC geometry used by groups of the given core count.
func (r *Runner) AloneResults(benchmark string, cores int) (*sim.Results, error) {
	key := aloneKey{benchmark, cores}
	r.mu.Lock()
	res, ok := r.alone[key]
	r.mu.Unlock()
	if ok {
		return res, nil
	}
	res, err := sim.RunAlone(benchmark, r.cfg.Scale, cores, r.cfg.Seed)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.alone[key] = res
	r.mu.Unlock()
	return res, nil
}

// AloneIPC returns a benchmark's alone IPC for Equation 1.
func (r *Runner) AloneIPC(benchmark string, cores int) (float64, error) {
	res, err := r.AloneResults(benchmark, cores)
	if err != nil {
		return 0, err
	}
	return res.IPC[0], nil
}

// Profile returns (memoised) the per-phase utility profile of a
// benchmark for Dynamic CPE.
func (r *Runner) Profile(benchmark string, cores int) (partition.CoreProfile, error) {
	key := aloneKey{benchmark, cores}
	r.mu.Lock()
	p, ok := r.profiles[key]
	r.mu.Unlock()
	if ok {
		return p, nil
	}
	p, err := sim.ProfileBenchmark(benchmark, r.cfg.Scale, cores, r.cfg.Seed)
	if err != nil {
		return partition.CoreProfile{}, err
	}
	r.mu.Lock()
	r.profiles[key] = p
	r.mu.Unlock()
	return p, nil
}

// RunGroup executes (memoised) one group under one scheme at the
// runner's threshold.
func (r *Runner) RunGroup(g workload.Group, scheme sim.SchemeKind) (*sim.Results, error) {
	return r.RunGroupThreshold(g, scheme, r.cfg.Threshold)
}

// RunGroupThreshold is RunGroup with an explicit CoopPart threshold
// (Figures 11-13 sweep it).
func (r *Runner) RunGroupThreshold(g workload.Group, scheme sim.SchemeKind, threshold float64) (*sim.Results, error) {
	key := runKey{g.Name, scheme, threshold}
	r.mu.Lock()
	res, ok := r.runs[key]
	r.mu.Unlock()
	if ok {
		return res, nil
	}

	cfg := sim.RunConfig{
		Scale:     r.cfg.Scale,
		Scheme:    scheme,
		Group:     g,
		Threshold: threshold,
		Seed:      r.cfg.Seed,
	}
	if threshold == 0 {
		cfg.Threshold = -1 // explicit zero (sim treats 0 as "default")
	}
	if scheme == sim.DynCPE {
		for _, b := range g.Benchmarks {
			p, err := r.Profile(b, len(g.Benchmarks))
			if err != nil {
				return nil, err
			}
			cfg.Profiles = append(cfg.Profiles, p)
		}
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.runs[key] = res
	r.mu.Unlock()
	return res, nil
}

// WeightedSpeedup computes Equation 1 for one run.
func (r *Runner) WeightedSpeedup(res *sim.Results) (float64, error) {
	alone := make(map[string]float64, len(res.Benchmarks))
	for _, b := range res.Benchmarks {
		ipc, err := r.AloneIPC(b, len(res.Benchmarks))
		if err != nil {
			return 0, err
		}
		alone[b] = ipc
	}
	return res.WeightedSpeedup(alone)
}

// groupsFor returns the paper's group list for a core count.
func groupsFor(cores int) ([]workload.Group, error) {
	switch cores {
	case 2:
		return workload.Groups2, nil
	case 4:
		return workload.Groups4, nil
	default:
		return nil, fmt.Errorf("experiments: no groups for %d cores", cores)
	}
}
