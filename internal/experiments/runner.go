// Package experiments regenerates every table and figure of the
// paper's evaluation (Tables 1-4, Figures 5-16) plus the ablations
// listed in DESIGN.md §7. A Runner memoises simulation runs so that
// figures sharing the same underlying experiments (e.g. Figures 5-7 all
// consume the fourteen two-core runs per scheme) execute each run once,
// and fans independent runs out over a bounded worker pool so that the
// full reproduction scales with the host's cores (DESIGN.md §6).
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// DefaultThreshold is the paper's operating point for Cooperative
// Partitioning's T parameter (Section 5.1).
const DefaultThreshold = sim.DefaultThreshold

// Thresholds is the sweep of Figures 11-13.
var Thresholds = []float64{0, 0.01, 0.05, 0.10, 0.20}

// Config parameterises a Runner.
type Config struct {
	Scale sim.Scale
	Seed  uint64
	// Threshold for CoopPart/DynCPE runs; DefaultThreshold if zero.
	Threshold float64
	// Workers bounds the number of simulations Prefetch/RunAll execute
	// concurrently; GOMAXPROCS if zero. Results are bit-identical for
	// every worker count: each simulation is an independent
	// single-goroutine run keyed only by its configuration.
	Workers int
	// Fidelity is the RNG-walk tier every figure/table/ablation method
	// of the runner executes at. The zero value is sim.FidelityExact —
	// the statistical FastForward tier is opt-in at every layer and
	// memoised under distinct keys, so an exact result is never served
	// to a fast-forward request or vice versa.
	Fidelity sim.Fidelity
	// Store is the persistent result cache layered under the in-memory
	// memo (nil = memory only): lookups go memory → disk → simulate,
	// and every simulated result is published back. Results are
	// bit-identical either way — JSON round-trips every field exactly —
	// and a store fault can only cost recomputation, never correctness
	// (the store degrades internally and never fails a caller).
	Store *store.Store
	// Remote is an optional experiment server layered between the disk
	// store and local simulation (nil = compute locally): lookups go
	// memory → disk → remote → simulate. Like the store, the remote
	// layer can only save work, never change bytes or fail a run — a
	// Remote that returns ok=false (server down, degraded, mismatched)
	// just falls through to local computation, and results fetched
	// remotely are published into Store so later runs are serverless-
	// warm. service.Client is the production implementation.
	Remote Remote
	// Checkpoints executes every simulation the runner performs
	// locally (DESIGN.md §14): warm-up prefixes are computed once per
	// identity and shared, and with a checkpoint store attached,
	// killed runs resume mid-measured-region. nil gets a memory-only
	// manager (in-process warm-up sharing, no mid-run checkpoints) —
	// results are bit-identical in every configuration.
	Checkpoints *ckpt.Manager
}

// Remote is the client surface of the distributed experiment service
// (DESIGN.md §13), defined here so experiments does not depend on the
// transport. Every method receives the canonical store key of the run
// — the same identity the disk cache uses — plus the full request
// fields, so the server can recompute and verify the key (a mismatch
// means config or version skew, never a wrong answer). ok=false means
// the remote layer is unavailable for this request; the caller
// computes locally. Implementations must be safe for concurrent use
// and must never block unboundedly — a dead server has to degrade to
// ok=false in bounded time.
type Remote interface {
	RemoteRun(key string, sc sim.Scale, seed uint64, g workload.Group,
		scheme sim.SchemeKind, threshold float64, v Variant, fid sim.Fidelity) (*sim.Results, bool)
	RemoteAlone(key string, sc sim.Scale, seed uint64,
		benchmark string, cores int, fid sim.Fidelity) (*sim.Results, bool)
	RemoteProfile(key string, sc sim.Scale, seed uint64,
		benchmark string, cores int, fid sim.Fidelity) (partition.CoreProfile, bool)
}

// Variant names a run-configuration mutation of the ablation and
// extension studies (DESIGN.md §7). Variants are part of the memo key,
// so an ablated run never aliases the plain run it is compared against.
type Variant string

const (
	// VariantNone is the unmodified scheme.
	VariantNone Variant = ""
	// VariantRecipientMissOnly advances takeover only on recipient
	// misses (UCP-style convergence).
	VariantRecipientMissOnly Variant = "recipient-miss-only"
	// VariantNoGating partitions identically but never powers ways off.
	VariantNoGating Variant = "no-gating"
	// VariantRandomVictim fills into a pseudo-random way of the owner's
	// allocation instead of the LRU way.
	VariantRandomVictim Variant = "random-victim"
	// VariantDrowsy enables the drowsy-cache extension (paper Section 6).
	VariantDrowsy Variant = "drowsy"
)

// applyVariant mutates cfg for the named variant.
func applyVariant(cfg *sim.RunConfig, v Variant) error {
	switch v {
	case VariantNone:
	case VariantRecipientMissOnly:
		cfg.RecipientMissOnly = true
	case VariantNoGating:
		cfg.DisableGating = true
	case VariantRandomVictim:
		cfg.RandomVictim = true
	case VariantDrowsy:
		d := core.DefaultDrowsyConfig()
		cfg.Drowsy = &d
	default:
		return fmt.Errorf("experiments: unknown variant %q", v)
	}
	return nil
}

// Runner executes and memoises simulation runs. All methods are safe
// for concurrent use: each distinct run executes exactly once, with
// duplicate requests blocking on the in-flight execution instead of
// racing or serialising behind a global lock.
type Runner struct {
	cfg     Config
	workers int
	// scaleFP fingerprints every field of the scale configuration into
	// the persistent-store key space, so two scales that differ in any
	// parameter never alias even if they share a name.
	scaleFP string
	sims    atomic.Uint64

	runs     flight[runKey, *sim.Results]
	alone    flight[aloneKey, *sim.Results]
	profiles flight[aloneKey, partition.CoreProfile]
}

type runKey struct {
	group     string
	scheme    sim.SchemeKind
	threshold float64
	variant   Variant
	fidelity  sim.Fidelity
}

type aloneKey struct {
	benchmark string
	cores     int
	fidelity  sim.Fidelity
}

// NewRunner builds a Runner; a zero-value Config gets the test scale,
// seed 1, the paper's threshold and one worker per CPU.
func NewRunner(cfg Config) *Runner {
	if cfg.Scale.Name == "" {
		cfg.Scale = sim.TestScale()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = DefaultThreshold
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Checkpoints == nil {
		cfg.Checkpoints = ckpt.New(ckpt.Options{})
	}
	r := &Runner{cfg: cfg, workers: workers}
	// The fingerprint is always computed: the disk store, the remote
	// layer and the exported key strings all address runs by it, and
	// one SHA-256 of the Scale JSON per runner is free.
	r.scaleFP = store.Fingerprint(cfg.Scale)
	return r
}

// Store key rendering: the canonical strings the persistent cache is
// addressed by. Seed and the full scale fingerprint are explicit —
// the in-memory memo is scoped to one runner (one scale, one seed),
// the disk store is shared by every process pointed at the directory.
// Threshold uses the shortest exact float form, so the explicit-zero
// sentinel and the default threshold stay distinct (DESIGN.md §3).
func (r *Runner) storeRunKey(k runKey) string {
	return fmt.Sprintf("run|scale=%s|seed=%d|group=%s|scheme=%s|threshold=%s|variant=%s|fidelity=%s",
		r.scaleFP, r.cfg.Seed, k.group, k.scheme,
		strconv.FormatFloat(k.threshold, 'g', -1, 64), k.variant, k.fidelity)
}

func (r *Runner) storeAloneKey(kind string, k aloneKey) string {
	return fmt.Sprintf("%s|scale=%s|seed=%d|benchmark=%s|cores=%d|fidelity=%s",
		kind, r.scaleFP, r.cfg.Seed, k.benchmark, k.cores, k.fidelity)
}

// RunKey renders the canonical store identity of a fully keyed group
// run. The service protocol sends it with every request and the server
// recomputes and verifies it, so client and server can never silently
// disagree about what a result is for.
func (r *Runner) RunKey(g workload.Group, scheme sim.SchemeKind, threshold float64, v Variant, fid sim.Fidelity) string {
	return r.storeRunKey(runKey{g.Name, scheme, threshold, v, fid})
}

// AloneKey renders the canonical store identity of a solo run.
func (r *Runner) AloneKey(benchmark string, cores int, fid sim.Fidelity) string {
	return r.storeAloneKey("alone", aloneKey{benchmark, cores, fid})
}

// ProfileKey renders the canonical store identity of a DynCPE profile.
func (r *Runner) ProfileKey(benchmark string, cores int, fid sim.Fidelity) string {
	return r.storeAloneKey("profile", aloneKey{benchmark, cores, fid})
}

// Scale returns the runner's simulation scale.
func (r *Runner) Scale() sim.Scale { return r.cfg.Scale }

// scaleFor returns the scale a request at fid simulates under. The LLC
// sample stride is meaningful only on the set-sampled tier (NewSystem
// rejects it elsewhere), so a mixed-tier sweep — ValidateTiers runs
// exact, fast-forward and set-sampled through one runner — clears it
// for the other tiers instead of erroring. Store keys and the remote
// protocol keep using the runner's unadjusted scale; the server applies
// the same per-request adjustment, so the two sides never disagree.
func (r *Runner) scaleFor(fid sim.Fidelity) sim.Scale {
	sc := r.cfg.Scale
	if fid != sim.FidelitySetSampled {
		sc.SampleStride = 0
	}
	return sc
}

// Simulations returns how many simulator executions the runner has
// actually performed (as opposed to answered from the memo) — the
// observability hook the memoisation and singleflight tests pin.
func (r *Runner) Simulations() uint64 { return r.sims.Load() }

// Checkpoints exposes the checkpoint manager (never nil), for stats
// reporting and the warm-up exactly-once assertions.
func (r *Runner) Checkpoints() *ckpt.Manager { return r.cfg.Checkpoints }

// AloneResults returns (memoised) the solo run of a benchmark on the
// LLC geometry used by groups of the given core count, at the runner's
// fidelity.
func (r *Runner) AloneResults(benchmark string, cores int) (*sim.Results, error) {
	return r.aloneResults(benchmark, cores, r.cfg.Fidelity)
}

// aloneResults is the fully keyed solo run: fidelity is part of the
// memo key so the two tiers' solo IPCs never alias.
func (r *Runner) aloneResults(benchmark string, cores int, fid sim.Fidelity) (*sim.Results, error) {
	key := aloneKey{benchmark, cores, fid}
	return r.alone.Do(key, func() (*sim.Results, error) {
		skey := r.storeAloneKey("alone", key)
		if st := r.cfg.Store; st != nil {
			var cached sim.Results
			if st.Get(skey, &cached) {
				return &cached, nil
			}
		}
		if rem := r.cfg.Remote; rem != nil {
			if res, ok := rem.RemoteAlone(skey, r.cfg.Scale, r.cfg.Seed, benchmark, cores, fid); ok {
				if r.cfg.Store != nil {
					r.cfg.Store.Put(skey, res)
				}
				return res, nil
			}
		}
		cfg, err := sim.AloneConfig(benchmark, r.scaleFor(fid), cores, r.cfg.Seed, fid)
		if err != nil {
			return nil, err
		}
		r.sims.Add(1)
		res, err := r.cfg.Checkpoints.Run(cfg)
		if err == nil && r.cfg.Store != nil {
			r.cfg.Store.Put(skey, res)
		}
		return res, err
	})
}

// AloneIPC returns a benchmark's alone IPC for Equation 1 at the
// runner's fidelity.
func (r *Runner) AloneIPC(benchmark string, cores int) (float64, error) {
	return r.aloneIPC(benchmark, cores, r.cfg.Fidelity)
}

func (r *Runner) aloneIPC(benchmark string, cores int, fid sim.Fidelity) (float64, error) {
	res, err := r.aloneResults(benchmark, cores, fid)
	if err != nil {
		return 0, err
	}
	return res.IPC[0], nil
}

// Profile returns (memoised) the per-phase utility profile of a
// benchmark for Dynamic CPE, at the runner's fidelity.
func (r *Runner) Profile(benchmark string, cores int) (partition.CoreProfile, error) {
	return r.profile(benchmark, cores, r.cfg.Fidelity)
}

func (r *Runner) profile(benchmark string, cores int, fid sim.Fidelity) (partition.CoreProfile, error) {
	key := aloneKey{benchmark, cores, fid}
	return r.profiles.Do(key, func() (partition.CoreProfile, error) {
		skey := r.storeAloneKey("profile", key)
		if st := r.cfg.Store; st != nil {
			var cached partition.CoreProfile
			if st.Get(skey, &cached) {
				return cached, nil
			}
		}
		if rem := r.cfg.Remote; rem != nil {
			if p, ok := rem.RemoteProfile(skey, r.cfg.Scale, r.cfg.Seed, benchmark, cores, fid); ok {
				if r.cfg.Store != nil {
					r.cfg.Store.Put(skey, p)
				}
				return p, nil
			}
		}
		cfg, err := sim.ProfileConfig(benchmark, r.scaleFor(fid), cores, r.cfg.Seed, fid)
		if err != nil {
			return partition.CoreProfile{}, err
		}
		r.sims.Add(1)
		res, err := r.cfg.Checkpoints.Run(cfg)
		if err != nil {
			return partition.CoreProfile{}, err
		}
		if r.cfg.Store != nil {
			r.cfg.Store.Put(skey, res.Profile)
		}
		return res.Profile, nil
	})
}

// RunGroup executes (memoised) one group under one scheme at the
// runner's threshold.
func (r *Runner) RunGroup(g workload.Group, scheme sim.SchemeKind) (*sim.Results, error) {
	return r.RunGroupVariant(g, scheme, r.cfg.Threshold, VariantNone)
}

// RunGroupThreshold is RunGroup with an explicit CoopPart threshold
// (Figures 11-13 sweep it). A threshold of 0 means exactly zero — it is
// memoised distinctly from DefaultThreshold and encoded for the
// simulator by sim.EncodeThreshold.
func (r *Runner) RunGroupThreshold(g workload.Group, scheme sim.SchemeKind, threshold float64) (*sim.Results, error) {
	return r.RunGroupVariant(g, scheme, threshold, VariantNone)
}

// RunGroupVariant is RunGroupFidelity at the runner's fidelity.
func (r *Runner) RunGroupVariant(g workload.Group, scheme sim.SchemeKind, threshold float64, v Variant) (*sim.Results, error) {
	return r.RunGroupFidelity(g, scheme, threshold, v, r.cfg.Fidelity)
}

// RunGroupFidelity is the fully keyed run: group x scheme x threshold
// x ablation variant x RNG-walk tier. Fidelity is part of the memo key
// (like the threshold sentinel, regression-pinned by
// TestFidelityMemoisedDistinctly), and a DynCPE run gathers its
// profiles at its own tier.
func (r *Runner) RunGroupFidelity(g workload.Group, scheme sim.SchemeKind, threshold float64, v Variant, fid sim.Fidelity) (*sim.Results, error) {
	key := runKey{g.Name, scheme, threshold, v, fid}
	return r.runs.Do(key, func() (*sim.Results, error) {
		skey := r.storeRunKey(key)
		if st := r.cfg.Store; st != nil {
			var cached sim.Results
			if st.Get(skey, &cached) {
				// A disk hit also skips the DynCPE profile runs the
				// simulation would have needed.
				return &cached, nil
			}
		}
		if rem := r.cfg.Remote; rem != nil {
			// A remote hit likewise skips the DynCPE profiles: the
			// server gathers its own.
			if res, ok := rem.RemoteRun(skey, r.cfg.Scale, r.cfg.Seed, g, scheme, threshold, v, fid); ok {
				if r.cfg.Store != nil {
					r.cfg.Store.Put(skey, res)
				}
				return res, nil
			}
		}
		cfg := sim.RunConfig{
			Scale:     r.scaleFor(fid),
			Scheme:    scheme,
			Group:     g,
			Threshold: sim.EncodeThreshold(threshold),
			Seed:      r.cfg.Seed,
			Fidelity:  fid,
		}
		if err := applyVariant(&cfg, v); err != nil {
			return nil, err
		}
		if scheme == sim.DynCPE {
			for _, b := range g.Benchmarks {
				p, err := r.profile(b, len(g.Benchmarks), fid)
				if err != nil {
					return nil, err
				}
				cfg.Profiles = append(cfg.Profiles, p)
			}
		}
		r.sims.Add(1)
		res, err := r.cfg.Checkpoints.Run(cfg)
		if err == nil && r.cfg.Store != nil {
			r.cfg.Store.Put(skey, res)
		}
		return res, err
	})
}

// WeightedSpeedup computes Equation 1 for one run. The solo
// denominators come from the run's own RNG-walk tier (res.Fidelity):
// a fast-forward numerator over an exact denominator would fold the
// tier delta into every speedup.
func (r *Runner) WeightedSpeedup(res *sim.Results) (float64, error) {
	alone := make(map[string]float64, len(res.Benchmarks))
	for _, b := range res.Benchmarks {
		ipc, err := r.aloneIPC(b, len(res.Benchmarks), res.Fidelity)
		if err != nil {
			return 0, err
		}
		alone[b] = ipc
	}
	return res.WeightedSpeedup(alone)
}

// Request names one memoisable run for RunAll. Threshold follows
// RunGroupThreshold semantics: 0 is an explicit zero threshold, not the
// runner's default. Fidelity is explicit — the zero value is
// sim.FidelityExact, never the runner's default — so hand-built
// requests stay on the bit-identical tier unless they opt out; the
// runner's own request builders stamp its configured fidelity.
type Request struct {
	Group     workload.Group
	Scheme    sim.SchemeKind
	Threshold float64
	Variant   Variant
	Fidelity  sim.Fidelity
}

// RunAll executes every request — plus the Dynamic CPE profiles any
// DynCPE request needs — across the runner's worker pool, blocking
// until all finish. Requests already memoised cost nothing; duplicate
// requests collapse onto one execution. The first error encountered is
// returned after all workers drain. Callers that will compute weighted
// speedups from the results should use RunAllSpeedup so Equation 1's
// solo runs join the same fan-out.
func (r *Runner) RunAll(reqs []Request) error { return r.runAll(context.Background(), reqs, false) }

// RunAllSpeedup is RunAll plus the solo run of each involved benchmark
// — Equation 1's denominators, which WeightedSpeedup would otherwise
// execute serially afterwards.
func (r *Runner) RunAllSpeedup(reqs []Request) error {
	return r.runAll(context.Background(), reqs, true)
}

// RunAllContext is RunAll with cancellation: once ctx is done, no new
// simulation starts, but simulations already in flight run to
// completion (drain semantics — a cancelled sweep never leaves the
// memo or the store with a half-published run). Returns ctx.Err() if
// the fan-out was cut short.
func (r *Runner) RunAllContext(ctx context.Context, reqs []Request) error {
	return r.runAll(ctx, reqs, false)
}

// RunRequest executes one fully keyed request with cancellation at
// simulation granularity: a done ctx prevents the run from starting
// (the error is ctx.Err(), and nothing is memoised for the key), while
// an in-flight run completes and is published normally. This is the
// experiment server's per-HTTP-request entry point.
func (r *Runner) RunRequest(ctx context.Context, req Request) (*sim.Results, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r.RunGroupFidelity(req.Group, req.Scheme, req.Threshold, req.Variant, req.Fidelity)
}

// AloneRequest is the cancellable fully keyed solo run.
func (r *Runner) AloneRequest(ctx context.Context, benchmark string, cores int, fid sim.Fidelity) (*sim.Results, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r.aloneResults(benchmark, cores, fid)
}

// ProfileRequest is the cancellable fully keyed DynCPE profile run.
func (r *Runner) ProfileRequest(ctx context.Context, benchmark string, cores int, fid sim.Fidelity) (partition.CoreProfile, error) {
	if err := ctx.Err(); err != nil {
		return partition.CoreProfile{}, err
	}
	return r.profile(benchmark, cores, fid)
}

func (r *Runner) runAll(ctx context.Context, reqs []Request, speedup bool) error {
	var tasks []func() error
	seenAlone := make(map[aloneKey]bool)
	seenProfile := make(map[aloneKey]bool)
	for _, req := range reqs {
		cores := len(req.Group.Benchmarks)
		for _, b := range req.Group.Benchmarks {
			k := aloneKey{b, cores, req.Fidelity}
			if speedup && !seenAlone[k] {
				seenAlone[k] = true
				tasks = append(tasks, func() error {
					_, err := r.aloneResults(k.benchmark, k.cores, k.fidelity)
					return err
				})
			}
			if req.Scheme == sim.DynCPE && !seenProfile[k] {
				seenProfile[k] = true
				tasks = append(tasks, func() error {
					_, err := r.profile(k.benchmark, k.cores, k.fidelity)
					return err
				})
			}
		}
	}
	for _, req := range reqs {
		tasks = append(tasks, func() error {
			_, err := r.RunGroupFidelity(req.Group, req.Scheme, req.Threshold, req.Variant, req.Fidelity)
			return err
		})
	}
	return r.fanOut(ctx, tasks)
}

// Prefetch warms the memo for the cross product of groups and schemes
// at the runner's threshold, fanning the runs out over the worker pool.
// Figure and table generators call it (or PrefetchSpeedup, when they
// also need Equation 1's solo runs) first, then collect results from
// the warm cache serially.
func (r *Runner) Prefetch(groups []workload.Group, schemes []sim.SchemeKind) error {
	return r.RunAll(r.crossRequests(groups, schemes))
}

// PrefetchSpeedup is Prefetch plus the solo runs of every involved
// benchmark.
func (r *Runner) PrefetchSpeedup(groups []workload.Group, schemes []sim.SchemeKind) error {
	return r.RunAllSpeedup(r.crossRequests(groups, schemes))
}

// crossRequests builds the groups x schemes request list at the
// runner's threshold and fidelity.
func (r *Runner) crossRequests(groups []workload.Group, schemes []sim.SchemeKind) []Request {
	reqs := make([]Request, 0, len(groups)*len(schemes))
	for _, g := range groups {
		for _, s := range schemes {
			reqs = append(reqs, Request{Group: g, Scheme: s, Threshold: r.cfg.Threshold,
				Fidelity: r.cfg.Fidelity})
		}
	}
	return reqs
}

// runPairs warms a baseline and a comparison arm for every group: the
// two template requests are stamped with each group in turn (and the
// runner's fidelity) and fanned out together — the shape every two-arm
// ablation shares.
func (r *Runner) runPairs(groups []workload.Group, speedup bool, base, alt Request) error {
	reqs := make([]Request, 0, 2*len(groups))
	base.Fidelity, alt.Fidelity = r.cfg.Fidelity, r.cfg.Fidelity
	for _, g := range groups {
		base.Group, alt.Group = g, g
		reqs = append(reqs, base, alt)
	}
	return r.runAll(context.Background(), reqs, speedup)
}

// PrefetchAlone warms the solo runs of the given benchmarks on the
// LLC geometry of cores-sized groups (Table 3 measures all of them).
func (r *Runner) PrefetchAlone(benchmarks []string, cores int) error {
	tasks := make([]func() error, 0, len(benchmarks))
	for _, b := range benchmarks {
		tasks = append(tasks, func() error {
			_, err := r.AloneResults(b, cores)
			return err
		})
	}
	return r.fanOut(context.Background(), tasks)
}

// fanOut runs tasks on the runner's bounded worker pool and returns the
// first error. Tasks execute nested dependencies (profiles, solo runs)
// inline through the singleflight memo, so a worker never submits work
// back to the pool and the pool cannot deadlock. A done ctx stops the
// submission loop — tasks not yet handed to a worker never run, tasks
// in flight complete — and surfaces as ctx.Err() when no task failed
// first.
func (r *Runner) fanOut(ctx context.Context, tasks []func() error) error {
	if len(tasks) == 0 {
		return nil
	}
	workers := r.workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	work := make(chan func() error)
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for task := range work {
				if err := task(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	cancelled := false
	for _, task := range tasks {
		if ctx.Err() != nil {
			cancelled = true
			break
		}
		select {
		case work <- task:
		case <-ctx.Done():
			cancelled = true
		}
		if cancelled {
			break
		}
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if cancelled {
		return ctx.Err()
	}
	return nil
}

// groupsFor returns the group list for a core count: the paper's
// Table 4 lists for 2 and 4 cores, the scaling-sweep lists beyond.
func groupsFor(cores int) ([]workload.Group, error) {
	switch cores {
	case 2:
		return workload.Groups2, nil
	case 4:
		return workload.Groups4, nil
	case 8:
		return workload.Groups8, nil
	case 16:
		return workload.Groups16, nil
	default:
		return nil, fmt.Errorf("experiments: no groups for %d cores", cores)
	}
}
