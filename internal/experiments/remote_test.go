package experiments

import (
	"encoding/json"
	"sync/atomic"
	"testing"

	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// runnerRemote adapts a second, fully local Runner into a Remote —
// the in-process stand-in for an expd server. It records the keys it
// was asked for so tests can pin the canonical-key contract.
type runnerRemote struct {
	r     *Runner
	calls atomic.Uint64
	fail  atomic.Bool
	keys  chan string
}

func newRunnerRemote(r *Runner) *runnerRemote {
	return &runnerRemote{r: r, keys: make(chan string, 128)}
}

func (f *runnerRemote) record(key string) bool {
	f.calls.Add(1)
	select {
	case f.keys <- key:
	default:
	}
	return !f.fail.Load()
}

func (f *runnerRemote) RemoteRun(key string, sc sim.Scale, seed uint64, g workload.Group,
	scheme sim.SchemeKind, threshold float64, v Variant, fid sim.Fidelity) (*sim.Results, bool) {
	if !f.record(key) {
		return nil, false
	}
	res, err := f.r.RunGroupFidelity(g, scheme, threshold, v, fid)
	if err != nil {
		return nil, false
	}
	return res, true
}

func (f *runnerRemote) RemoteAlone(key string, sc sim.Scale, seed uint64,
	benchmark string, cores int, fid sim.Fidelity) (*sim.Results, bool) {
	if !f.record(key) {
		return nil, false
	}
	res, err := f.r.aloneResults(benchmark, cores, fid)
	if err != nil {
		return nil, false
	}
	return res, true
}

func (f *runnerRemote) RemoteProfile(key string, sc sim.Scale, seed uint64,
	benchmark string, cores int, fid sim.Fidelity) (partition.CoreProfile, bool) {
	if !f.record(key) {
		return partition.CoreProfile{}, false
	}
	p, err := f.r.profile(benchmark, cores, fid)
	if err != nil {
		return partition.CoreProfile{}, false
	}
	return p, true
}

func jsonOf(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRemoteLayerServesRuns: with a Remote installed, the runner asks
// it before simulating — zero local simulations, byte-identical
// results, and the key handed to the Remote is the canonical store
// key.
func TestRemoteLayerServesRuns(t *testing.T) {
	sc := sim.UnitScale()
	g, err := workload.FindGroup("G2-1")
	if err != nil {
		t.Fatal(err)
	}
	backend := NewRunner(Config{Scale: sc})
	want, err := backend.RunGroup(g, sim.CoopPart)
	if err != nil {
		t.Fatal(err)
	}

	remote := newRunnerRemote(backend)
	front := NewRunner(Config{Scale: sc, Remote: remote})
	got, err := front.RunGroup(g, sim.CoopPart)
	if err != nil {
		t.Fatal(err)
	}
	if jsonOf(t, got) != jsonOf(t, want) {
		t.Fatal("remote-served result differs from backend computation")
	}
	if n := front.Simulations(); n != 0 {
		t.Fatalf("front runner simulated %d times despite the remote", n)
	}
	if remote.calls.Load() == 0 {
		t.Fatal("remote never consulted")
	}
	wantKey := front.RunKey(g, sim.CoopPart, DefaultThreshold, VariantNone, sim.FidelityExact)
	select {
	case key := <-remote.keys:
		if key != wantKey {
			t.Fatalf("remote asked for key %q, canonical is %q", key, wantKey)
		}
	default:
		t.Fatal("no key recorded")
	}

	// Second identical run: memoised, no second remote call.
	calls := remote.calls.Load()
	if _, err := front.RunGroup(g, sim.CoopPart); err != nil {
		t.Fatal(err)
	}
	if remote.calls.Load() != calls {
		t.Fatal("memoised run consulted the remote again")
	}
}

// TestRemoteFailureFallsBackLocally: a Remote answering ok=false is a
// clean miss — the runner simulates locally and the results match a
// never-remote run exactly.
func TestRemoteFailureFallsBackLocally(t *testing.T) {
	sc := sim.UnitScale()
	g, err := workload.FindGroup("G2-2")
	if err != nil {
		t.Fatal(err)
	}
	baseline := NewRunner(Config{Scale: sc})
	want, err := baseline.RunGroup(g, sim.UCP)
	if err != nil {
		t.Fatal(err)
	}

	backend := NewRunner(Config{Scale: sc})
	remote := newRunnerRemote(backend)
	remote.fail.Store(true)
	front := NewRunner(Config{Scale: sc, Remote: remote})
	got, err := front.RunGroup(g, sim.UCP)
	if err != nil {
		t.Fatal(err)
	}
	if jsonOf(t, got) != jsonOf(t, want) {
		t.Fatal("local fallback result differs from baseline")
	}
	if front.Simulations() == 0 {
		t.Fatal("front runner never simulated despite remote failure")
	}
	if remote.calls.Load() == 0 {
		t.Fatal("failing remote never consulted")
	}
}

// TestRemoteResultsPublishedToStore: results fetched remotely are Put
// into the local store, so a later run (new process, no server) hits
// disk instead of re-simulating or re-fetching.
func TestRemoteResultsPublishedToStore(t *testing.T) {
	sc := sim.UnitScale()
	g, err := workload.FindGroup("G2-3")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	backend := NewRunner(Config{Scale: sc})
	remote := newRunnerRemote(backend)
	front := NewRunner(Config{Scale: sc, Remote: remote, Store: st})
	want, err := front.RunGroup(g, sim.Unmanaged)
	if err != nil {
		t.Fatal(err)
	}
	calls := remote.calls.Load()
	if calls == 0 {
		t.Fatal("remote never consulted")
	}

	// Fresh process equivalent: same store dir, no remote.
	st2, err := store.Open(dir, store.Options{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	later := NewRunner(Config{Scale: sc, Store: st2})
	got, err := later.RunGroup(g, sim.Unmanaged)
	if err != nil {
		t.Fatal(err)
	}
	if jsonOf(t, got) != jsonOf(t, want) {
		t.Fatal("store round trip of a remote result differs")
	}
	if n := later.Simulations(); n != 0 {
		t.Fatalf("later runner simulated %d times; remote result was not published to the store", n)
	}
}

// TestStorePreemptsRemote: a disk hit answers before the remote is
// consulted — the lookup ladder is memory, store, remote, simulate.
func TestStorePreemptsRemote(t *testing.T) {
	sc := sim.UnitScale()
	g, err := workload.FindGroup("G2-4")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	warm := NewRunner(Config{Scale: sc, Store: st})
	if _, err := warm.RunGroup(g, sim.FairShare); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	backend := NewRunner(Config{Scale: sc})
	remote := newRunnerRemote(backend)
	front := NewRunner(Config{Scale: sc, Store: st2, Remote: remote})
	if _, err := front.RunGroup(g, sim.FairShare); err != nil {
		t.Fatal(err)
	}
	if n := remote.calls.Load(); n != 0 {
		t.Fatalf("remote consulted %d times despite a warm store", n)
	}
	if n := front.Simulations(); n != 0 {
		t.Fatalf("front runner simulated %d times despite a warm store", n)
	}
}
