package experiments

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestParallelMatchesSerialFig5 regenerates Figure 5 with one worker
// and with eight and requires bit-identical output: the parallel engine
// may change wall clock, never results. Run under -race this also
// exercises the singleflight memo from many goroutines.
func TestParallelMatchesSerialFig5(t *testing.T) {
	serial := NewRunner(Config{Scale: sim.UnitScale(), Workers: 1})
	parallel := NewRunner(Config{Scale: sim.UnitScale(), Workers: 8})

	fs, err := serial.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := parallel.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fs, fp) {
		t.Fatalf("parallel Fig5 differs from serial:\nserial:   %+v\nparallel: %+v", fs, fp)
	}
}

// TestSingleflightRunGroup checks that N concurrent identical RunGroup
// calls execute the simulation exactly once and all observe the same
// memoised result.
func TestSingleflightRunGroup(t *testing.T) {
	r := NewRunner(Config{Scale: sim.UnitScale(), Workers: 8})
	g := workload.Groups2[0]

	const n = 16
	results := make([]*sim.Results, n)
	errs := make([]error, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = r.RunGroup(g, sim.CoopPart)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different *Results than caller 0", i)
		}
	}
	if got := r.Simulations(); got != 1 {
		t.Fatalf("%d concurrent identical calls executed %d simulations, want 1", n, got)
	}
}

// TestThresholdZeroMemoisedDistinctly is the regression test for the
// threshold-sentinel wart: an explicit T=0 run and a default-threshold
// run must land under distinct memo keys (and an explicit
// DefaultThreshold must alias the default).
func TestThresholdZeroMemoisedDistinctly(t *testing.T) {
	r := NewRunner(Config{Scale: sim.UnitScale()})
	g := workload.Groups2[0]

	zero, err := r.RunGroupThreshold(g, sim.CoopPart, 0)
	if err != nil {
		t.Fatal(err)
	}
	def, err := r.RunGroup(g, sim.CoopPart)
	if err != nil {
		t.Fatal(err)
	}
	if zero == def {
		t.Fatal("threshold-0 and default-threshold runs memoised under one key")
	}
	if got := r.Simulations(); got != 2 {
		t.Fatalf("executed %d simulations, want 2 (T=0 and T=default)", got)
	}
	defExplicit, err := r.RunGroupThreshold(g, sim.CoopPart, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if defExplicit != def {
		t.Fatal("explicit DefaultThreshold did not hit the default-threshold memo")
	}
	if got := r.Simulations(); got != 2 {
		t.Fatalf("explicit DefaultThreshold re-executed: %d simulations", got)
	}
}

// TestFidelityMemoisedDistinctly is the tier mirror of the threshold-
// sentinel regression test: an Exact run and a FastForward run of the
// same (group, scheme, threshold) must land under distinct memo keys —
// an Exact result must never be served to a FastForward request or
// vice versa — while repeated same-tier requests still hit the memo.
// The solo runs Equation 1 consumes are keyed the same way.
func TestFidelityMemoisedDistinctly(t *testing.T) {
	r := NewRunner(Config{Scale: sim.UnitScale()})
	g := workload.Groups2[0]

	exact, err := r.RunGroupFidelity(g, sim.CoopPart, r.cfg.Threshold, VariantNone, sim.FidelityExact)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := r.RunGroupFidelity(g, sim.CoopPart, r.cfg.Threshold, VariantNone, sim.FidelityFastForward)
	if err != nil {
		t.Fatal(err)
	}
	if exact == ff {
		t.Fatal("exact and fast-forward runs memoised under one key")
	}
	if exact.Fidelity != sim.FidelityExact || ff.Fidelity != sim.FidelityFastForward {
		t.Fatalf("results mislabelled: exact=%v ff=%v", exact.Fidelity, ff.Fidelity)
	}
	if got := r.Simulations(); got != 2 {
		t.Fatalf("executed %d simulations, want 2 (one per tier)", got)
	}

	// The default-fidelity path must alias the explicit Exact run, not
	// re-execute (the runner's default tier is Exact).
	def, err := r.RunGroup(g, sim.CoopPart)
	if err != nil {
		t.Fatal(err)
	}
	if def != exact {
		t.Fatal("default-fidelity run did not hit the exact-tier memo")
	}
	if got := r.Simulations(); got != 2 {
		t.Fatalf("default-fidelity run re-executed: %d simulations", got)
	}

	// Equation 1's solo denominators are tier-keyed too: computing the
	// weighted speedup of both results must run each benchmark's solo
	// twice (once per tier), never serving one tier's alone IPC to the
	// other.
	before := r.Simulations()
	if _, err := r.WeightedSpeedup(exact); err != nil {
		t.Fatal(err)
	}
	afterExact := r.Simulations()
	if _, err := r.WeightedSpeedup(ff); err != nil {
		t.Fatal(err)
	}
	afterFF := r.Simulations()
	solo := uint64(len(g.Benchmarks))
	if afterExact-before != solo || afterFF-afterExact != solo {
		t.Fatalf("solo runs per tier = %d then %d, want %d each (tier-keyed alone memo)",
			afterExact-before, afterFF-afterExact, solo)
	}
}

// TestPrefetchWarmsFigures checks PrefetchSpeedup completeness: after
// one warm-up of the two-core cross product, generating Figures 5-7
// must execute zero additional simulations (group runs, solo runs and
// profiles were all covered by the fan-out).
func TestPrefetchWarmsFigures(t *testing.T) {
	r := NewRunner(Config{Scale: sim.UnitScale(), Workers: 4})
	groups, err := groupsFor(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.PrefetchSpeedup(groups, sim.AllSchemes); err != nil {
		t.Fatal(err)
	}
	warm := r.Simulations()
	if _, err := r.Fig5(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Fig6(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Fig7(); err != nil {
		t.Fatal(err)
	}
	if got := r.Simulations(); got != warm {
		t.Fatalf("figures after Prefetch executed %d extra simulations", got-warm)
	}
}

// TestFig14RunsNoSoloSimulations pins that figures which never compute
// weighted speedups don't pay for Equation 1's solo runs: Fig14 on a
// fresh runner executes exactly its 14 CoopPart group runs.
func TestFig14RunsNoSoloSimulations(t *testing.T) {
	r := NewRunner(Config{Scale: sim.UnitScale(), Workers: 4})
	if _, err := r.Fig14(); err != nil {
		t.Fatal(err)
	}
	if got := r.Simulations(); got != uint64(len(workload.Groups2)) {
		t.Fatalf("Fig14 executed %d simulations, want %d group runs only",
			got, len(workload.Groups2))
	}
}

// TestRunAllPropagatesError checks the pool drains and reports the
// first failure instead of hanging or panicking.
func TestRunAllPropagatesError(t *testing.T) {
	r := NewRunner(Config{Scale: sim.UnitScale(), Workers: 4})
	bad := workload.Group{Name: "bad", Benchmarks: []string{"no-such-benchmark", "namd"}}
	err := r.RunAll([]Request{
		{Group: workload.Groups2[0], Scheme: sim.FairShare, Threshold: DefaultThreshold},
		{Group: bad, Scheme: sim.FairShare, Threshold: DefaultThreshold},
	})
	if err == nil {
		t.Fatal("RunAll with an unknown benchmark should fail")
	}
}

// TestFlightMemoisesErrors pins the flight contract: an errored key is
// memoised like a value (deterministic runs cannot succeed on retry)
// and executes once.
func TestFlightMemoisesErrors(t *testing.T) {
	var f flight[int, int]
	calls := 0
	boom := errors.New("boom")
	fn := func() (int, error) { calls++; return 0, boom }
	if _, err := f.Do(7, fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := f.Do(7, fn); !errors.Is(err, boom) {
		t.Fatalf("second err = %v, want memoised boom", err)
	}
	if calls != 1 {
		t.Fatalf("fn executed %d times, want 1", calls)
	}
}

// TestVariantKeyedSeparately makes sure an ablated run never aliases
// the plain run it is compared against.
func TestVariantKeyedSeparately(t *testing.T) {
	r := NewRunner(Config{Scale: sim.UnitScale()})
	g := workload.Groups2[0]
	plain, err := r.RunGroup(g, sim.CoopPart)
	if err != nil {
		t.Fatal(err)
	}
	gated, err := r.RunGroupVariant(g, sim.CoopPart, r.cfg.Threshold, VariantNoGating)
	if err != nil {
		t.Fatal(err)
	}
	if plain == gated {
		t.Fatal("variant run aliased the plain run")
	}
	if _, err := r.RunGroupVariant(g, sim.CoopPart, r.cfg.Threshold, Variant("bogus")); err == nil {
		t.Fatal("unknown variant should error")
	}
}
