package experiments

import (
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file implements the ablation studies of DESIGN.md §7 — the
// design choices the paper calls out, each isolated against the full
// Cooperative Partitioning scheme on the two-core workloads. Ablated
// arms run through RunGroupVariant, so they are memoised (the report
// binary regenerates several ablations from one runner) and fan out
// across the worker pool like every other run.

// AblationVictim quantifies the cost of way-aligned victim selection
// (Section 2.5): Cooperative Partitioning must place fills within the
// owner's ways, while UCP may victimise any block in the set. Both run
// with all ways allocated (threshold 0) so only the placement freedom
// differs. The paper reports a negligible difference.
func (r *Runner) AblationVictim() (metrics.Figure, error) {
	err := r.runPairs(workload.Groups2, true,
		Request{Scheme: sim.UCP, Threshold: r.cfg.Threshold},
		Request{Scheme: sim.CoopPart, Threshold: 0})
	if err != nil {
		return metrics.Figure{}, err
	}
	fig := metrics.Figure{
		ID:     "AblationVictim",
		Title:  "Way-aligned victim choice (CoopPart, T=0) vs free per-set choice (UCP)",
		YLabel: "weighted speedup",
		XLabel: "group",
	}
	var free, aligned []float64
	for _, g := range workload.Groups2 {
		fig.X = append(fig.X, g.Name)
		ucp, err := r.RunGroup(g, sim.UCP)
		if err != nil {
			return metrics.Figure{}, err
		}
		cp0, err := r.RunGroupThreshold(g, sim.CoopPart, 0)
		if err != nil {
			return metrics.Figure{}, err
		}
		wsU, err := r.WeightedSpeedup(ucp)
		if err != nil {
			return metrics.Figure{}, err
		}
		wsC, err := r.WeightedSpeedup(cp0)
		if err != nil {
			return metrics.Figure{}, err
		}
		free = append(free, wsU)
		aligned = append(aligned, wsC)
	}
	fig.Series = []metrics.NamedSeries{
		{Name: "UCP(free)", Values: free},
		{Name: "CoopPart(aligned)", Values: aligned},
	}
	fig.AppendGeoMeanColumn("AVG")
	return fig, nil
}

// AblationTakeover isolates why cooperative takeover transfers ways
// quickly: the full scheme advances on every donor or recipient access,
// the ablated variant only on recipient misses (UCP-style convergence).
// The series report average cycles per way transfer.
func (r *Runner) AblationTakeover() (metrics.Figure, error) {
	// Both arms run at threshold 0 so every repartition is a pure
	// core-to-core transfer (turn-off periods have no recipient and
	// would bias the ablated arm: its slow transitions simply never
	// finish and drop out of the average).
	err := r.runPairs(workload.Groups2, false,
		Request{Scheme: sim.CoopPart, Threshold: 0},
		Request{Scheme: sim.CoopPart, Threshold: 0, Variant: VariantRecipientMissOnly})
	if err != nil {
		return metrics.Figure{}, err
	}
	fig := metrics.Figure{
		ID:     "AblationTakeover",
		Title:  "Takeover on all accesses vs recipient misses only",
		YLabel: "cycles per way transfer",
		XLabel: "group",
	}
	var full, missOnly []float64
	for _, g := range workload.Groups2 {
		fig.X = append(fig.X, g.Name)
		cp, err := r.RunGroupThreshold(g, sim.CoopPart, 0)
		if err != nil {
			return metrics.Figure{}, err
		}
		ablated, err := r.RunGroupVariant(g, sim.CoopPart, 0, VariantRecipientMissOnly)
		if err != nil {
			return metrics.Figure{}, err
		}
		full = append(full, cp.Transition.AvgTransferCycles())
		missOnly = append(missOnly, ablated.Transition.AvgTransferCycles())
	}
	fig.Series = []metrics.NamedSeries{
		{Name: "AllAccesses", Values: append(full, metrics.MeanNonZero(full))},
		{Name: "RecipientMissOnly", Values: append(missOnly, metrics.MeanNonZero(missOnly))},
	}
	fig.X = append(fig.X, "AVG")
	return fig, nil
}

// AblationGating isolates the static-energy contribution of powering
// unallocated ways off: the ablated variant partitions identically but
// never gates.
func (r *Runner) AblationGating() (metrics.Figure, error) {
	err := r.runPairs(workload.Groups2, false,
		Request{Scheme: sim.CoopPart, Threshold: r.cfg.Threshold},
		Request{Scheme: sim.CoopPart, Threshold: r.cfg.Threshold, Variant: VariantNoGating})
	if err != nil {
		return metrics.Figure{}, err
	}
	fig := metrics.Figure{
		ID:     "AblationGating",
		Title:  "Static power with and without gated-Vdd way power-off",
		YLabel: "static power normalised to no gating",
		XLabel: "group",
	}
	var ratio []float64
	for _, g := range workload.Groups2 {
		fig.X = append(fig.X, g.Name)
		gated, err := r.RunGroup(g, sim.CoopPart)
		if err != nil {
			return metrics.Figure{}, err
		}
		ungated, err := r.RunGroupVariant(g, sim.CoopPart, r.cfg.Threshold, VariantNoGating)
		if err != nil {
			return metrics.Figure{}, err
		}
		ratio = append(ratio, gated.StaticPower/ungated.StaticPower)
	}
	fig.Series = []metrics.NamedSeries{{Name: "Gated/Ungated", Values: ratio}}
	fig.AppendGeoMeanColumn("AVG")
	return fig, nil
}

// AblationRandomVictim compares Cooperative Partitioning's LRU victim
// choice within a core's writable ways against a pseudo-random choice —
// Section 2.5's observation that way alignment makes the scheme
// "closer in performance to a random choice of replacement block".
func (r *Runner) AblationRandomVictim() (metrics.Figure, error) {
	err := r.runPairs(workload.Groups2, true,
		Request{Scheme: sim.CoopPart, Threshold: r.cfg.Threshold},
		Request{Scheme: sim.CoopPart, Threshold: r.cfg.Threshold, Variant: VariantRandomVictim})
	if err != nil {
		return metrics.Figure{}, err
	}
	fig := metrics.Figure{
		ID:     "AblationRandomVictim",
		Title:  "CoopPart fill victim: LRU vs random within the owner's ways",
		YLabel: "weighted speedup",
		XLabel: "group",
	}
	var lru, random []float64
	for _, g := range workload.Groups2 {
		fig.X = append(fig.X, g.Name)
		base, err := r.RunGroup(g, sim.CoopPart)
		if err != nil {
			return metrics.Figure{}, err
		}
		rnd, err := r.RunGroupVariant(g, sim.CoopPart, r.cfg.Threshold, VariantRandomVictim)
		if err != nil {
			return metrics.Figure{}, err
		}
		wsL, err := r.WeightedSpeedup(base)
		if err != nil {
			return metrics.Figure{}, err
		}
		wsR, err := r.WeightedSpeedup(rnd)
		if err != nil {
			return metrics.Figure{}, err
		}
		lru = append(lru, wsL)
		random = append(random, wsR)
	}
	fig.Series = []metrics.NamedSeries{
		{Name: "LRU", Values: lru},
		{Name: "Random", Values: random},
	}
	fig.AppendGeoMeanColumn("AVG")
	return fig, nil
}
