package experiments

import (
	"context"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// schemeSeries runs every group under every scheme and returns one
// series per scheme of value(results) normalised to the FairShare run
// of the same group, with the paper's AVG (geometric mean) appended.
func (r *Runner) schemeSeries(cores int, id, title, ylabel string, speedup bool,
	value func(*Runner, *sim.Results) (float64, error)) (metrics.Figure, error) {

	groups, err := groupsFor(cores)
	if err != nil {
		return metrics.Figure{}, err
	}
	// Fan every (group, scheme) run — and, for the weighted-speedup
	// figures, the solo runs Equation 1 needs — out over the worker
	// pool; the serial collection below then hits the warm memo.
	if err := r.runAll(context.Background(), r.crossRequests(groups, sim.AllSchemes), speedup); err != nil {
		return metrics.Figure{}, err
	}
	fig := metrics.Figure{ID: id, Title: title, YLabel: ylabel, XLabel: "group"}
	for _, g := range groups {
		fig.X = append(fig.X, g.Name)
	}

	base := make([]float64, len(groups))
	for i, g := range groups {
		res, err := r.RunGroup(g, sim.FairShare)
		if err != nil {
			return metrics.Figure{}, err
		}
		if base[i], err = value(r, res); err != nil {
			return metrics.Figure{}, err
		}
	}

	for _, scheme := range sim.AllSchemes {
		vals := make([]float64, len(groups))
		for i, g := range groups {
			res, err := r.RunGroup(g, scheme)
			if err != nil {
				return metrics.Figure{}, err
			}
			v, err := value(r, res)
			if err != nil {
				return metrics.Figure{}, err
			}
			if base[i] == 0 {
				return metrics.Figure{}, fmt.Errorf("%s: zero FairShare baseline for %s", id, g.Name)
			}
			vals[i] = v / base[i]
		}
		fig.Series = append(fig.Series, metrics.NamedSeries{Name: string(scheme), Values: vals})
	}
	fig.AppendGeoMeanColumn("AVG")
	return fig, nil
}

// wsValue is the weighted-speedup metric (Equation 1).
func wsValue(r *Runner, res *sim.Results) (float64, error) { return r.WeightedSpeedup(res) }

// dynValue is the LLC dynamic energy.
func dynValue(_ *Runner, res *sim.Results) (float64, error) { return res.Dynamic, nil }

// statValue is the LLC static energy.
func statValue(_ *Runner, res *sim.Results) (float64, error) { return res.StaticPower, nil }

// Fig5 is the weighted speedup of the two-application workloads,
// normalised to Fair Share.
func (r *Runner) Fig5() (metrics.Figure, error) {
	return r.schemeSeries(2, "Fig5",
		"Weighted speedup of two-application workloads",
		"weighted speedup normalised to Fair Share", true, wsValue)
}

// Fig6 is the dynamic energy of the two-application workloads.
func (r *Runner) Fig6() (metrics.Figure, error) {
	return r.schemeSeries(2, "Fig6",
		"Dynamic energy consumption of the two-application workloads",
		"dynamic energy normalised to Fair Share", false, dynValue)
}

// Fig7 is the static energy of the two-application workloads.
func (r *Runner) Fig7() (metrics.Figure, error) {
	return r.schemeSeries(2, "Fig7",
		"Static energy consumption of the two-application workloads",
		"static energy normalised to Fair Share", false, statValue)
}

// Fig8 is the weighted speedup of the four-application workloads.
func (r *Runner) Fig8() (metrics.Figure, error) {
	return r.schemeSeries(4, "Fig8",
		"Weighted speedup of the four-application workloads",
		"weighted speedup normalised to Fair Share", true, wsValue)
}

// Fig9 is the dynamic energy of the four-application workloads.
func (r *Runner) Fig9() (metrics.Figure, error) {
	return r.schemeSeries(4, "Fig9",
		"Dynamic energy consumption of the four-application workloads",
		"dynamic energy normalised to Fair Share", false, dynValue)
}

// Fig10 is the static energy of the four-application workloads.
func (r *Runner) Fig10() (metrics.Figure, error) {
	return r.schemeSeries(4, "Fig10",
		"Static energy consumption of the four-application workloads",
		"static energy normalised to Fair Share", false, statValue)
}

// thresholdSeries runs CoopPart at every threshold of Figures 11-13 on
// the two-core groups and normalises each group's metric to the T=0
// run.
func (r *Runner) thresholdSeries(id, title, ylabel string, speedup bool,
	value func(*Runner, *sim.Results) (float64, error)) (metrics.Figure, error) {

	groups := workload.Groups2
	var reqs []Request
	for _, T := range Thresholds {
		for _, g := range groups {
			reqs = append(reqs, Request{Group: g, Scheme: sim.CoopPart, Threshold: T,
				Fidelity: r.cfg.Fidelity})
		}
	}
	if err := r.runAll(context.Background(), reqs, speedup); err != nil {
		return metrics.Figure{}, err
	}
	fig := metrics.Figure{ID: id, Title: title, YLabel: ylabel, XLabel: "group"}
	for _, g := range groups {
		fig.X = append(fig.X, g.Name)
	}

	base := make([]float64, len(groups))
	for i, g := range groups {
		res, err := r.RunGroupThreshold(g, sim.CoopPart, 0)
		if err != nil {
			return metrics.Figure{}, err
		}
		if base[i], err = value(r, res); err != nil {
			return metrics.Figure{}, err
		}
	}
	for _, T := range Thresholds {
		vals := make([]float64, len(groups))
		for i, g := range groups {
			res, err := r.RunGroupThreshold(g, sim.CoopPart, T)
			if err != nil {
				return metrics.Figure{}, err
			}
			v, err := value(r, res)
			if err != nil {
				return metrics.Figure{}, err
			}
			if base[i] == 0 {
				return metrics.Figure{}, fmt.Errorf("%s: zero T=0 baseline for %s", id, g.Name)
			}
			vals[i] = v / base[i]
		}
		fig.Series = append(fig.Series, metrics.NamedSeries{
			Name: fmt.Sprintf("T=%.2f", T), Values: vals})
	}
	fig.AppendGeoMeanColumn("AVG")
	return fig, nil
}

// Fig11 is the takeover-threshold sweep's performance impact.
func (r *Runner) Fig11() (metrics.Figure, error) {
	return r.thresholdSeries("Fig11",
		"Impact of the takeover threshold value on performance",
		"weighted speedup normalised to T=0", true, wsValue)
}

// Fig12 is the takeover-threshold sweep's dynamic-energy impact.
func (r *Runner) Fig12() (metrics.Figure, error) {
	return r.thresholdSeries("Fig12",
		"Impact of the takeover threshold value on dynamic energy",
		"dynamic energy normalised to T=0", false, dynValue)
}

// Fig13 is the takeover-threshold sweep's static-energy impact.
func (r *Runner) Fig13() (metrics.Figure, error) {
	return r.thresholdSeries("Fig13",
		"Impact of the takeover threshold value on static energy",
		"static energy normalised to T=0", false, statValue)
}

// Fig14 is the breakdown of events that set takeover bits during way
// transfers, as fractions per group (stacking to 1).
func (r *Runner) Fig14() (metrics.Figure, error) {
	groups := workload.Groups2
	if err := r.Prefetch(groups, []sim.SchemeKind{sim.CoopPart}); err != nil {
		return metrics.Figure{}, err
	}
	fig := metrics.Figure{
		ID:     "Fig14",
		Title:  "Events that set takeover bits when transferring ways between cores",
		YLabel: "fraction of events",
		XLabel: "group",
	}
	classes := []string{"RecipientMisses", "RecipientHits", "DonorMisses", "DonorHits"}
	vals := make(map[string][]float64, len(classes))
	for _, g := range groups {
		res, err := r.RunGroup(g, sim.CoopPart)
		if err != nil {
			return metrics.Figure{}, err
		}
		fig.X = append(fig.X, g.Name)
		tr := res.Transition
		total := float64(tr.TakeoverEventTotal())
		frac := func(v uint64) float64 {
			if total == 0 {
				return 0
			}
			return float64(v) / total
		}
		vals["RecipientMisses"] = append(vals["RecipientMisses"], frac(tr.RecipientMisses))
		vals["RecipientHits"] = append(vals["RecipientHits"], frac(tr.RecipientHits))
		vals["DonorMisses"] = append(vals["DonorMisses"], frac(tr.DonorMisses))
		vals["DonorHits"] = append(vals["DonorHits"], frac(tr.DonorHits))
	}
	// The AVG bar averages only the groups whose runs actually moved
	// ways between cores (groups without core-to-core transfers have no
	// events to classify).
	for _, c := range classes {
		var withEvents []float64
		for i := range groups {
			var sum float64
			for _, cls := range classes {
				sum += vals[cls][i]
			}
			if sum > 0 {
				withEvents = append(withEvents, vals[c][i])
			}
		}
		fig.Series = append(fig.Series, metrics.NamedSeries{
			Name: c, Values: append(vals[c], metrics.Mean(withEvents))})
	}
	fig.X = append(fig.X, "AVG")
	return fig, nil
}

// Fig15 is the average number of cycles needed to transfer a way, UCP
// versus Cooperative Partitioning.
func (r *Runner) Fig15() (metrics.Figure, error) {
	groups := workload.Groups2
	if err := r.Prefetch(groups, []sim.SchemeKind{sim.UCP, sim.CoopPart}); err != nil {
		return metrics.Figure{}, err
	}
	fig := metrics.Figure{
		ID:     "Fig15",
		Title:  "Cycles taken to transfer a way",
		YLabel: "cycles per way transfer",
		XLabel: "group",
	}
	var ucp, coop []float64
	for _, g := range groups {
		fig.X = append(fig.X, g.Name)
		ru, err := r.RunGroup(g, sim.UCP)
		if err != nil {
			return metrics.Figure{}, err
		}
		rc, err := r.RunGroup(g, sim.CoopPart)
		if err != nil {
			return metrics.Figure{}, err
		}
		ucp = append(ucp, ru.Transition.AvgTransferCycles())
		coop = append(coop, rc.Transition.AvgTransferCycles())
	}
	// Groups whose runs completed no transfer report 0 and are skipped
	// by the average.
	fig.Series = []metrics.NamedSeries{
		{Name: "UCP", Values: append(ucp, metrics.MeanNonZero(ucp))},
		{Name: "CoopPart", Values: append(coop, metrics.MeanNonZero(coop))},
	}
	fig.X = append(fig.X, "AVG")
	return fig, nil
}

// Fig16 is the LLC-to-memory flush bandwidth over time after a
// partitioning decision, averaged per repartition across the two-core
// groups.
func (r *Runner) Fig16() (metrics.Figure, error) {
	groups := workload.Groups2
	if err := r.Prefetch(groups, []sim.SchemeKind{sim.UCP, sim.CoopPart}); err != nil {
		return metrics.Figure{}, err
	}
	var ucpTL, coopTL []float64
	var ucpReps, coopReps uint64
	var bucket int64
	for _, g := range groups {
		ru, err := r.RunGroup(g, sim.UCP)
		if err != nil {
			return metrics.Figure{}, err
		}
		rc, err := r.RunGroup(g, sim.CoopPart)
		if err != nil {
			return metrics.Figure{}, err
		}
		bucket = rc.Transition.TimelineBucket
		if ucpTL == nil {
			ucpTL = make([]float64, len(ru.Transition.Timeline))
			coopTL = make([]float64, len(rc.Transition.Timeline))
		}
		for i, v := range ru.Transition.Timeline {
			ucpTL[i] += float64(v)
		}
		for i, v := range rc.Transition.Timeline {
			coopTL[i] += float64(v)
		}
		ucpReps += ru.SchemeStats.Repartitions
		coopReps += rc.SchemeStats.Repartitions
	}
	if ucpReps > 0 {
		for i := range ucpTL {
			ucpTL[i] /= float64(ucpReps)
		}
	}
	if coopReps > 0 {
		for i := range coopTL {
			coopTL[i] /= float64(coopReps)
		}
	}
	fig := metrics.Figure{
		ID:     "Fig16",
		Title:  "LLC to memory bandwidth usage for flushing data after a partitioning decision",
		YLabel: "lines flushed per repartition",
		XLabel: "cycles since decision",
	}
	for i := range ucpTL {
		fig.X = append(fig.X, fmt.Sprintf("%d", int64(i)*bucket))
	}
	fig.Series = []metrics.NamedSeries{
		{Name: "UCP", Values: ucpTL},
		{Name: "CoopPart", Values: coopTL},
	}
	return fig, nil
}

// Figure dispatches by number (5-16).
func (r *Runner) Figure(n int) (metrics.Figure, error) {
	switch n {
	case 5:
		return r.Fig5()
	case 6:
		return r.Fig6()
	case 7:
		return r.Fig7()
	case 8:
		return r.Fig8()
	case 9:
		return r.Fig9()
	case 10:
		return r.Fig10()
	case 11:
		return r.Fig11()
	case 12:
		return r.Fig12()
	case 13:
		return r.Fig13()
	case 14:
		return r.Fig14()
	case 15:
		return r.Fig15()
	case 16:
		return r.Fig16()
	default:
		return metrics.Figure{}, fmt.Errorf("experiments: no figure %d (5-16 are data figures)", n)
	}
}
