package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

func openStoreT(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir, store.Options{
		Logf:        func(format string, args ...any) { t.Logf("store: "+format, args...) },
		LockTimeout: time.Second,
		StaleAge:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStoreServesSecondProcess is the tentpole contract at runner
// level: a second runner over the same cache dir (a "second process")
// regenerates Figure 5 with ZERO simulator executions and identical
// output — memory → disk → simulate, with disk answering everything.
func TestStoreServesSecondProcess(t *testing.T) {
	dir := t.TempDir()
	cold := NewRunner(Config{Scale: sim.UnitScale(), Store: openStoreT(t, dir)})
	figCold, err := cold.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if cold.Simulations() == 0 {
		t.Fatal("cold runner executed no simulations")
	}

	warm := NewRunner(Config{Scale: sim.UnitScale(), Store: openStoreT(t, dir)})
	figWarm, err := warm.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.Simulations(); got != 0 {
		t.Fatalf("warm runner executed %d simulations, want 0 (all from disk)", got)
	}
	if !reflect.DeepEqual(figCold, figWarm) {
		t.Fatalf("disk-served Fig5 differs:\ncold: %+v\nwarm: %+v", figCold, figWarm)
	}

	// And the disk layer is bit-transparent: a storeless runner agrees.
	none := NewRunner(Config{Scale: sim.UnitScale()})
	figNone, err := none.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(figNone, figWarm) {
		t.Fatalf("store-served Fig5 differs from storeless run")
	}
}

// TestStoreRoundTripsResultsExactly pins bit-identity at the Results
// level: every field (floats included) survives the disk round trip.
func TestStoreRoundTripsResultsExactly(t *testing.T) {
	dir := t.TempDir()
	g := workload.Groups2[0]
	r1 := NewRunner(Config{Scale: sim.UnitScale(), Store: openStoreT(t, dir)})
	res1, err := r1.RunGroup(g, sim.DynCPE) // DynCPE: profiles ride along
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(Config{Scale: sim.UnitScale(), Store: openStoreT(t, dir)})
	res2, err := r2.RunGroup(g, sim.DynCPE)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Simulations() != 0 {
		t.Fatalf("second runner simulated %d times", r2.Simulations())
	}
	if res1 == res2 {
		t.Fatal("second runner returned the same pointer — not a disk read")
	}
	b1, _ := json.Marshal(res1)
	b2, _ := json.Marshal(res2)
	if string(b1) != string(b2) {
		t.Fatalf("results differ across the disk round trip:\n%s\n%s", b1, b2)
	}
	ws1, err := r1.WeightedSpeedup(res1)
	if err != nil {
		t.Fatal(err)
	}
	ws2, err := r2.WeightedSpeedup(res2)
	if err != nil {
		t.Fatal(err)
	}
	if ws1 != ws2 {
		t.Fatalf("weighted speedup differs: %v vs %v", ws1, ws2)
	}
}

// TestStoreKeysDistinguishSeedAndScale: different seeds and scales
// must never alias in the shared directory.
func TestStoreKeysDistinguishSeedAndScale(t *testing.T) {
	dir := t.TempDir()
	g := workload.Groups2[0]
	r1 := NewRunner(Config{Scale: sim.UnitScale(), Seed: 1, Store: openStoreT(t, dir)})
	if _, err := r1.RunGroup(g, sim.FairShare); err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(Config{Scale: sim.UnitScale(), Seed: 2, Store: openStoreT(t, dir)})
	if _, err := r2.RunGroup(g, sim.FairShare); err != nil {
		t.Fatal(err)
	}
	if r2.Simulations() != 1 {
		t.Fatalf("seed-2 run served from seed-1's cache entry (%d sims)", r2.Simulations())
	}

	// A scale differing in any field (not just name) gets its own keys.
	mutated := sim.UnitScale()
	mutated.MSHRs++
	r3 := NewRunner(Config{Scale: mutated, Seed: 1, Store: openStoreT(t, dir)})
	if _, err := r3.RunGroup(g, sim.FairShare); err != nil {
		t.Fatal(err)
	}
	if r3.Simulations() != 1 {
		t.Fatalf("mutated scale served from original scale's entry (%d sims)", r3.Simulations())
	}
}

// TestStoreCorruptEntryRecomputed: flipping bytes of a cached entry on
// disk must cost exactly one quarantine + one recomputation, with the
// recomputed result identical to the original.
func TestStoreCorruptEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	g := workload.Groups2[0]
	st1 := openStoreT(t, dir)
	r1 := NewRunner(Config{Scale: sim.UnitScale(), Store: st1})
	res1, err := r1.RunGroup(g, sim.CoopPart)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt every entry in the store.
	ents, err := os.ReadDir(filepath.Join(dir, "entries"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".entry") {
			continue
		}
		p := filepath.Join(dir, "entries", e.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no entries written by the cold run")
	}

	st2 := openStoreT(t, dir)
	r2 := NewRunner(Config{Scale: sim.UnitScale(), Store: st2})
	res2, err := r2.RunGroup(g, sim.CoopPart)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Simulations() != 1 {
		t.Fatalf("corrupt entry did not force recomputation (%d sims)", r2.Simulations())
	}
	b1, _ := json.Marshal(res1)
	b2, _ := json.Marshal(res2)
	if string(b1) != string(b2) {
		t.Fatal("recomputed result differs from original")
	}
	if stats := st2.Stats(); stats.CorruptQuarantined != 1 || stats.Degraded {
		t.Fatalf("stats after corruption: %v (want 1 quarantine, not degraded)", stats)
	}
	// The repaired entry serves the next process.
	r3 := NewRunner(Config{Scale: sim.UnitScale(), Store: openStoreT(t, dir)})
	if _, err := r3.RunGroup(g, sim.CoopPart); err != nil {
		t.Fatal(err)
	}
	if r3.Simulations() != 0 {
		t.Fatal("recomputed entry was not republished")
	}
}

// TestStoreFaultsNeverBreakARun is the graceful-degradation acceptance
// line: with a filesystem that fails every write, the runner's output
// is identical to a storeless run — the broken cache costs nothing but
// the recomputation.
func TestStoreFaultsNeverBreakARun(t *testing.T) {
	ffs := store.NewFaultFS(store.OSFS{})
	// Fail every data write from the start: op 1 onward.
	for i := 1; i < 400; i++ {
		ffs.FailOp(store.OpWrite, i, nil)
	}
	st, err := store.Open(t.TempDir(), store.Options{
		FS:          ffs,
		Logf:        func(format string, args ...any) { t.Logf("store: "+format, args...) },
		LockTimeout: time.Millisecond,
		StaleAge:    time.Millisecond,
		MaxFaults:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	broken := NewRunner(Config{Scale: sim.UnitScale(), Store: st})
	figBroken, err := broken.Fig5()
	if err != nil {
		t.Fatalf("runner failed because its cache was broken: %v", err)
	}
	clean := NewRunner(Config{Scale: sim.UnitScale()})
	figClean, err := clean.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(figBroken, figClean) {
		t.Fatal("broken-store output differs from storeless output")
	}
	if stats := st.Stats(); !stats.Degraded {
		t.Fatalf("store never degraded under persistent write faults: %v", stats)
	}
}

// TestValidateTiersWithStore: the tier harness accepts a shared store
// and a second sweep over it executes zero simulations with an
// identical report.
func TestValidateTiersWithStore(t *testing.T) {
	dir := t.TempDir()
	cfg := TierCheckConfig{
		Scale:     sim.UnitScale(),
		Seeds:     []uint64{1, 2},
		MaxGroups: 1,
		Store:     openStoreT(t, dir),
	}
	rep1, err := ValidateTiers(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = openStoreT(t, dir)
	rep2, err := ValidateTiers(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Simulations != 0 {
		t.Fatalf("warm tier sweep executed %d simulations", rep2.Simulations)
	}
	rep1.Simulations, rep2.Simulations = 0, 0
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatal("warm tier report differs from cold")
	}
}
