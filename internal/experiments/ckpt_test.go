package experiments

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// TestWarmupSharingExactlyOnce is the acceptance assertion for warm-up
// sharing: across a TestScale sweep (every scheme on one group, plus
// the solo and profiling runs weighted speedup and DynCPE pull in),
// each warm-up identity is computed exactly once. The per-scheme group
// runs cannot share (the scheme steers the warm-up trajectory), but a
// benchmark's alone and profile runs — identical but for profile
// capture — must warm once between them.
func TestWarmupSharingExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a TestScale sweep")
	}
	g, err := workload.FindGroup("G2-8")
	if err != nil {
		t.Fatal(err)
	}
	mgr := ckpt.New(ckpt.Options{Logf: func(format string, args ...any) { t.Logf("ckpt: "+format, args...) }})
	r := NewRunner(Config{Scale: sim.TestScale(), Seed: 1, Checkpoints: mgr})
	if err := r.PrefetchSpeedup([]workload.Group{g}, sim.AllSchemes); err != nil {
		t.Fatal(err)
	}

	schemes := uint64(len(sim.AllSchemes))
	benchmarks := uint64(len(g.Benchmarks))
	// 5 scheme runs + 2 alone + 2 profile simulations...
	if sims := r.Simulations(); sims != schemes+2*benchmarks {
		t.Fatalf("sweep ran %d simulations, want %d", sims, schemes+2*benchmarks)
	}
	// ...but only 5 + 2 warm-ups: each (benchmark, seed) pair warmed
	// exactly once, the profile runs resuming the alone warm-up.
	stats := mgr.Stats()
	if stats.WarmupsComputed != schemes+benchmarks {
		t.Fatalf("sweep computed %d warm-ups, want %d (%v)", stats.WarmupsComputed, schemes+benchmarks, stats)
	}
	if stats.WarmupsResumed != benchmarks {
		t.Fatalf("sweep resumed %d warm-ups, want %d (%v)", stats.WarmupsResumed, benchmarks, stats)
	}
}

// TestWarmupSharingAcrossProcesses: a second runner over the same
// checkpoint directory (a rerun after a crash, or another process of a
// distributed sweep) re-warms nothing and reproduces the first
// runner's results exactly.
func TestWarmupSharingAcrossProcesses(t *testing.T) {
	g, err := workload.FindGroup("G2-8")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := store.Options{
		Logf:        func(format string, args ...any) { t.Logf("store: "+format, args...) },
		LockTimeout: 50 * time.Millisecond,
		StaleAge:    10 * time.Millisecond,
	}
	logf := func(format string, args ...any) { t.Logf("ckpt: "+format, args...) }

	run := func() (*Runner, ckpt.Stats, *sim.Results) {
		st, err := store.Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		mgr := ckpt.New(ckpt.Options{Store: st, Every: 30_000, Logf: logf})
		r := NewRunner(Config{Scale: sim.UnitScale(), Seed: 1, Checkpoints: mgr})
		if err := r.PrefetchSpeedup([]workload.Group{g}, sim.AllSchemes); err != nil {
			t.Fatal(err)
		}
		res, err := r.RunGroup(g, sim.CoopPart)
		if err != nil {
			t.Fatal(err)
		}
		return r, mgr.Stats(), res
	}

	r1, stats1, res1 := run()
	if stats1.WarmupsComputed == 0 || stats1.CheckpointsWritten == 0 {
		t.Fatalf("first process wrote no checkpoints: %v", stats1)
	}
	r2, stats2, res2 := run()
	if stats2.WarmupsComputed != 0 {
		t.Fatalf("second process re-warmed %d times, want 0 (%v)", stats2.WarmupsComputed, stats2)
	}
	if stats2.WarmupsResumed+stats2.MidRunResumed == 0 {
		t.Fatalf("second process resumed nothing: %v", stats2)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatal("second process's results differ from the first's")
	}
	ws1, err := r1.WeightedSpeedup(res1)
	if err != nil {
		t.Fatal(err)
	}
	ws2, err := r2.WeightedSpeedup(res2)
	if err != nil {
		t.Fatal(err)
	}
	if ws1 != ws2 {
		t.Fatalf("weighted speedup drifted across processes: %v vs %v", ws1, ws2)
	}
}

// TestFigureBytesIdenticalWithCheckpointing: the figure pipeline's
// rendered output — the bytes a byte-comparison of cmd/figures would
// see — is identical between a default runner (memory-only warm-up
// sharing) and one running disk-backed mid-run checkpointing.
func TestFigureBytesIdenticalWithCheckpointing(t *testing.T) {
	render := func(mgr *ckpt.Manager) []byte {
		r := NewRunner(Config{Scale: sim.UnitScale(), Seed: 1, Checkpoints: mgr})
		fig, err := r.Figure(5)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := fig.WriteTable(&buf); err != nil {
			t.Fatal(err)
		}
		if err := fig.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	baseline := render(nil) // NewRunner substitutes the memory-only manager

	st, err := store.Open(t.TempDir(), store.Options{
		Logf: func(format string, args ...any) { t.Logf("store: "+format, args...) },
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr := ckpt.New(ckpt.Options{Store: st, Every: 30_000,
		Logf: func(format string, args ...any) { t.Logf("ckpt: "+format, args...) }})
	if got := render(mgr); !bytes.Equal(got, baseline) {
		t.Fatal("figure bytes differ under disk-backed checkpointing")
	}
	// And a rerun over the populated directory — the crash-resume path.
	mgr2 := ckpt.New(ckpt.Options{Store: st, Every: 30_000,
		Logf: func(format string, args ...any) { t.Logf("ckpt: "+format, args...) }})
	if got := render(mgr2); !bytes.Equal(got, baseline) {
		t.Fatal("figure bytes differ on checkpoint resume")
	}
	if stats := mgr2.Stats(); stats.MidRunResumed+stats.WarmupsResumed == 0 {
		t.Fatalf("rerun reused no checkpoints: %v", stats)
	}
}
