package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// scalingRunner builds a fresh runner at the unit-test scale.
func scalingRunner(workers int) *Runner {
	return NewRunner(Config{Scale: sim.UnitScale(), Seed: 1, Workers: workers})
}

// TestScalingSweepManyCoreDeterministic pins the acceptance guarantee:
// the sweep's 8- and 16-core points are byte-identical at any worker
// count (the TestScale run of the same property is CI's sweep smoke —
// cmd/figures -sweep=scaling compared across -workers settings).
func TestScalingSweepManyCoreDeterministic(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 4} {
		r := scalingRunner(workers)
		figs, err := r.ScalingSweep([]int{8, 16}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(figs) != 2 {
			t.Fatalf("got %d figures, want 2", len(figs))
		}
		var buf bytes.Buffer
		for _, f := range figs {
			if err := f.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("sweep output differs between 1 and %d workers:\n%s\n----\n%s",
				workers, want, buf.Bytes())
		}
	}
}

// TestScalingSweepShape pins the sweep's structure and normalisation:
// Fair Share is the baseline, so its series is exactly 1 at every core
// count, and every scheme appears at every point.
func TestScalingSweepShape(t *testing.T) {
	r := scalingRunner(0)
	figs, err := r.ScalingSweep([]int{2, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range figs {
		if err := f.Validate(); err != nil {
			t.Fatalf("%s: %v", f.ID, err)
		}
		if len(f.X) != 2 || f.X[0] != "2" || f.X[1] != "8" {
			t.Fatalf("%s: X = %v", f.ID, f.X)
		}
		if len(f.Series) != len(sim.AllSchemes) {
			t.Fatalf("%s: %d series, want %d", f.ID, len(f.Series), len(sim.AllSchemes))
		}
		fair := f.Get("FairShare")
		if fair == nil {
			t.Fatalf("%s: no FairShare series", f.ID)
		}
		for i, v := range fair {
			if v != 1 {
				t.Fatalf("%s: FairShare[%d] = %v, want exactly 1", f.ID, i, v)
			}
		}
		for _, s := range f.Series {
			for i, v := range s.Values {
				if v <= 0 {
					t.Fatalf("%s/%s[%d] = %v, want positive", f.ID, s.Name, i, v)
				}
			}
		}
	}
}

// TestScalingSweepSharesMemo verifies the sweep flows through the
// memoising runner: re-running it costs no additional simulations, and
// a figure over the same groups reuses the sweep's runs.
func TestScalingSweepSharesMemo(t *testing.T) {
	r := scalingRunner(0)
	if _, err := r.ScalingSweep([]int{8}, 1); err != nil {
		t.Fatal(err)
	}
	before := r.Simulations()
	figs, err := r.ScalingSweep([]int{8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Simulations(); got != before {
		t.Fatalf("re-running the sweep executed %d extra simulations", got-before)
	}
	if len(figs) != 2 {
		t.Fatalf("got %d figures", len(figs))
	}
}

// TestScalingSweepUnknownCores rejects core counts with no groups.
func TestScalingSweepUnknownCores(t *testing.T) {
	r := scalingRunner(0)
	if _, err := r.ScalingSweep([]int{3}, 0); err == nil {
		t.Fatal("ScalingSweep with 3 cores should fail")
	}
}

// TestScalingSweepDeterministicResultsEqual runs one 8-core point with
// different worker counts and compares the figure structs (not just
// their rendering) for full equality.
func TestScalingSweepDeterministicResultsEqual(t *testing.T) {
	a, err := scalingRunner(1).ScalingSweep([]int{8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scalingRunner(3).ScalingSweep([]int{8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sweep figures differ across worker counts:\n%+v\n----\n%+v", a, b)
	}
}
