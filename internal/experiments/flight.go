package experiments

import "sync"

// flight is a memoising singleflight map: concurrent callers of Do with
// the same key block on a single execution and share its result forever
// after. The memo is never evicted — the experiment space (groups x
// schemes x thresholds x variants) is small and finite, and keeping
// every result is exactly the Runner's job.
type flight[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*inflight[V]
}

type inflight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do returns the memoised value for key, executing fn exactly once per
// key across all goroutines. fn runs on the first caller's goroutine;
// later callers block until it finishes. Errors are memoised like
// values: simulation runs are deterministic, so retrying an errored key
// cannot produce a different outcome.
func (f *flight[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	f.mu.Lock()
	if f.m == nil {
		f.m = make(map[K]*inflight[V])
	}
	if c, ok := f.m[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &inflight[V]{done: make(chan struct{})}
	f.m[key] = c
	f.mu.Unlock()

	c.val, c.err = fn()
	close(c.done)
	return c.val, c.err
}
