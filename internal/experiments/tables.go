package experiments

import (
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Table1 renders the hardware-overhead table. Both the published
// numbers (which assume 2048 sets) and the numbers computed from the
// simulated geometry (4096 sets at full scale) are shown; see
// core.PaperTable1.
func (r *Runner) Table1(w io.Writer) error {
	full := sim.FullScale()
	fmt.Fprintln(w, "Table 1: hardware overheads of Cooperative Partitioning")
	fmt.Fprintf(w, "%-28s %18s %18s\n", "Hardware", "Two Core (bits)", "Four Core (bits)")
	two, twoGeom := core.PaperTable1(2, full.L2TwoCore.Ways, full.L2TwoCore.Sets())
	four, fourGeom := core.PaperTable1(4, full.L2FourCore.Ways, full.L2FourCore.Sets())
	rows := []struct {
		name      string
		two, four int
	}{
		{"Takeover Bit Vectors", two.TakeoverBits(), four.TakeoverBits()},
		{"RAP", two.RAPBits(), four.RAPBits()},
		{"WAP", two.WAPBits(), four.WAPBits()},
		{"Total", two.TotalBits(), four.TotalBits()},
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%-28s %18d %18d\n", row.name, row.two, row.four)
	}
	fmt.Fprintf(w, "\n(as published, 2048 sets; with the geometric 4096 sets the totals are %d and %d bits)\n",
		twoGeom.TotalBits(), fourGeom.TotalBits())
	return nil
}

// Table2 renders the system configuration at the runner's scale next to
// the paper's full-scale values.
func (r *Runner) Table2(w io.Writer) error {
	full := sim.FullScale()
	sc := r.cfg.Scale
	fmt.Fprintln(w, "Table 2: system configuration")
	rows := [][3]string{
		{"Parameter", "Paper (full scale)", fmt.Sprintf("This run (%s scale)", sc.Name)},
		{"Processor", "4-wide, out-of-order, 7 stage pipeline", "same"},
		{"ROB", "128 entry", "same"},
		{"LSQ", "48 entry", "same"},
		{"Branch Pred.", "Gshare, min 10 cycle penalty", "same"},
		{"BTB", "1024 entry, 4-way", "same"},
		{"L1 DCache", cacheDesc(full.L1D), cacheDesc(sc.L1D)},
		{"Shared L2 (2-core)", cacheDesc(full.L2TwoCore), cacheDesc(sc.L2TwoCore)},
		{"Shared L2 (4-core)", cacheDesc(full.L2FourCore), cacheDesc(sc.L2FourCore)},
		{"MSHR", fmt.Sprintf("%d entry", full.MSHRs), fmt.Sprintf("%d entry", sc.MSHRs)},
		{"Memory", memDesc(full), memDesc(sc)},
		{"Phase interval", fmt.Sprintf("%d cycles", full.PhaseCycles), fmt.Sprintf("%d cycles", sc.PhaseCycles)},
		{"Instructions/app", fmt.Sprintf("%d", full.InstrPerApp), fmt.Sprintf("%d", sc.InstrPerApp)},
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%-20s %-42s %s\n", row[0], row[1], row[2])
	}
	return nil
}

func cacheDesc(c cache.Config) string {
	return fmt.Sprintf("%dkB, %dB lines, %d-way, %d cycle lat",
		c.SizeBytes/1024, c.LineBytes, c.Ways, c.Latency)
}

func memDesc(s sim.Scale) string {
	return fmt.Sprintf("%d banks, %d cycle lat, %d outstanding",
		s.Mem.Banks, s.Mem.LatencyCycles, s.Mem.MaxOutstanding)
}

// Table3Row is one benchmark's measured classification.
type Table3Row struct {
	Benchmark    string
	PaperMPKI    float64
	PaperClass   workload.Class
	MeasuredMPKI float64
	Measured     workload.Class
}

// Table3 measures every benchmark's solo LLC MPKI on the two-core
// geometry and classifies it, mirroring the paper's Table 3. The
// nineteen solo runs are independent and fan out over the worker pool.
func (r *Runner) Table3() ([]Table3Row, error) {
	names := make([]string, 0, len(workload.All()))
	for _, b := range workload.All() {
		names = append(names, b.Name)
	}
	if err := r.PrefetchAlone(names, 2); err != nil {
		return nil, err
	}
	var rows []Table3Row
	for _, b := range workload.All() {
		res, err := r.AloneResults(b.Name, 2)
		if err != nil {
			return nil, err
		}
		mpki := res.MPKI[0]
		rows = append(rows, Table3Row{
			Benchmark:    b.Name,
			PaperMPKI:    b.PaperMPKI,
			PaperClass:   b.Class,
			MeasuredMPKI: mpki,
			Measured:     workload.ClassOf(mpki),
		})
	}
	return rows, nil
}

// WriteTable3 renders Table3 results.
func WriteTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: workload classification by LLC misses per kilo-instruction")
	fmt.Fprintf(w, "%-12s %10s %8s %12s %10s\n", "Benchmark", "PaperMPKI", "Class", "MeasuredMPKI", "Measured")
	for _, row := range rows {
		fmt.Fprintf(w, "%-12s %10.2f %8s %12.2f %10s\n",
			row.Benchmark, row.PaperMPKI, row.PaperClass, row.MeasuredMPKI, row.Measured)
	}
}

// Table4 renders the workload groupings.
func (r *Runner) Table4(w io.Writer) error {
	fmt.Fprintln(w, "Table 4: workload groupings")
	fmt.Fprintf(w, "%-8s %-40s\n", "Group", "Benchmarks")
	for _, g := range workload.Groups2 {
		fmt.Fprintf(w, "%-8s %v\n", g.Name, g.Benchmarks)
	}
	for _, g := range workload.Groups4 {
		fmt.Fprintf(w, "%-8s %v\n", g.Name, g.Benchmarks)
	}
	return nil
}
