package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// unitRunner shares one memoised runner across the package tests so
// each simulation executes once.
var unitRunner = NewRunner(Config{Scale: sim.UnitScale()})

func TestRunGroupMemoisation(t *testing.T) {
	g := workload.Groups2[0]
	a, err := unitRunner.RunGroup(g, sim.FairShare)
	if err != nil {
		t.Fatal(err)
	}
	b, err := unitRunner.RunGroup(g, sim.FairShare)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical runs were not memoised")
	}
}

func TestAloneIPCPositive(t *testing.T) {
	ipc, err := unitRunner.AloneIPC("namd", 2)
	if err != nil {
		t.Fatal(err)
	}
	if ipc <= 0 || ipc > 4 {
		t.Fatalf("alone IPC = %v", ipc)
	}
}

func TestWeightedSpeedupAgainstAlone(t *testing.T) {
	g := workload.Groups2[0]
	res, err := unitRunner.RunGroup(g, sim.UCP)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := unitRunner.WeightedSpeedup(res)
	if err != nil {
		t.Fatal(err)
	}
	// Two applications sharing a cache: each term is at most ~1, so the
	// sum lies in (0, ~2.2] (small timing noise can push a term just
	// past 1).
	if ws <= 0 || ws > 2.2 {
		t.Fatalf("weighted speedup = %v out of range", ws)
	}
}

func TestFigureDispatch(t *testing.T) {
	if _, err := unitRunner.Figure(4); err == nil {
		t.Fatal("figure 4 is a schematic; dispatch should reject it")
	}
	if _, err := unitRunner.Figure(17); err == nil {
		t.Fatal("figure 17 does not exist")
	}
}

func TestFig5Shape(t *testing.T) {
	fig, err := unitRunner.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if err := fig.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(fig.X) != 15 { // 14 groups + AVG
		t.Fatalf("x-axis has %d entries, want 15", len(fig.X))
	}
	if len(fig.Series) != 5 {
		t.Fatalf("series = %d, want 5 schemes", len(fig.Series))
	}
	// Fair Share is the normalisation baseline: exactly 1 everywhere.
	for i, v := range fig.Get("FairShare") {
		if math.Abs(v-1) > 1e-9 {
			t.Fatalf("FairShare[%d] = %v, want 1.0", i, v)
		}
	}
}

func TestFig7StaticBaselinesExactlyOne(t *testing.T) {
	fig, err := unitRunner.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 7: Unmanaged, UCP and Fair Share cannot save
	// static energy (no way-aligned data, nothing gated).
	for _, name := range []string{"Unmanaged", "UCP", "FairShare"} {
		for i, v := range fig.Get(name) {
			if math.Abs(v-1) > 0.02 {
				t.Fatalf("%s[%s] static = %v, want 1.0", name, fig.X[i], v)
			}
		}
	}
	// Cooperative Partitioning saves static energy on average.
	coop := fig.Get("CoopPart")
	if avg := coop[len(coop)-1]; avg >= 1 {
		t.Fatalf("CoopPart average static = %v, want < 1", avg)
	}
}

func TestFig6CoopSavesDynamicEnergy(t *testing.T) {
	fig, err := unitRunner.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	coop := fig.Get("CoopPart")
	unmanaged := fig.Get("Unmanaged")
	if coop[len(coop)-1] >= unmanaged[len(unmanaged)-1] {
		t.Fatalf("CoopPart dynamic %v not below Unmanaged %v",
			coop[len(coop)-1], unmanaged[len(unmanaged)-1])
	}
}

func TestFig11ThresholdMonotoneAtExtremes(t *testing.T) {
	fig, err := unitRunner.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	t0 := fig.Get("T=0.00")
	t20 := fig.Get("T=0.20")
	if t0 == nil || t20 == nil {
		t.Fatalf("threshold series missing: %v", fig.Series)
	}
	if t0[len(t0)-1] < t20[len(t20)-1] {
		t.Fatalf("T=0.2 average %v should not beat T=0 average %v",
			t20[len(t20)-1], t0[len(t0)-1])
	}
}

func TestFig14FractionsSumToOne(t *testing.T) {
	fig, err := unitRunner.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range fig.X {
		if x == "AVG" {
			continue
		}
		var sum float64
		for _, s := range fig.Series {
			sum += s.Values[i]
		}
		if sum != 0 && math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: event fractions sum to %v", x, sum)
		}
	}
}

func TestFig15BothSchemesMeasured(t *testing.T) {
	fig, err := unitRunner.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	if fig.Get("UCP") == nil || fig.Get("CoopPart") == nil {
		t.Fatal("Fig15 must carry both schemes")
	}
}

func TestFig16TimelineWellFormed(t *testing.T) {
	fig, err := unitRunner.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if err := fig.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(fig.X) == 0 {
		t.Fatal("empty flush timeline")
	}
}

func TestTablesRender(t *testing.T) {
	var sb strings.Builder
	if err := unitRunner.Table1(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "4128") || !strings.Contains(sb.String(), "8320") {
		t.Fatalf("Table 1 totals missing:\n%s", sb.String())
	}
	sb.Reset()
	if err := unitRunner.Table2(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ROB") {
		t.Fatal("Table 2 incomplete")
	}
	sb.Reset()
	if err := unitRunner.Table4(&sb); err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"G2-1", "G4-14"} {
		if !strings.Contains(sb.String(), g) {
			t.Fatalf("Table 4 missing %s", g)
		}
	}
}

func TestTable3AllBenchmarks(t *testing.T) {
	rows, err := unitRunner.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("Table 3 rows = %d, want 19", len(rows))
	}
	for _, row := range rows {
		if row.MeasuredMPKI < 0 {
			t.Fatalf("%s: negative MPKI", row.Benchmark)
		}
	}
	var sb strings.Builder
	WriteTable3(&sb, rows)
	if !strings.Contains(sb.String(), "lbm") {
		t.Fatal("rendered Table 3 missing lbm")
	}
}

func TestAblationVictimNegligibleCost(t *testing.T) {
	fig, err := unitRunner.AblationVictim()
	if err != nil {
		t.Fatal(err)
	}
	free := fig.Get("UCP(free)")
	aligned := fig.Get("CoopPart(aligned)")
	avgFree, avgAligned := free[len(free)-1], aligned[len(aligned)-1]
	// Section 2.5: way-aligned placement causes negligible loss.
	if avgAligned < avgFree*0.93 {
		t.Fatalf("way-aligned victim choice too costly: %v vs %v", avgAligned, avgFree)
	}
}

func TestAblationTakeoverRuns(t *testing.T) {
	fig, err := unitRunner.AblationTakeover()
	if err != nil {
		t.Fatal(err)
	}
	if err := fig.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAblationGatingSavesStatic(t *testing.T) {
	fig, err := unitRunner.AblationGating()
	if err != nil {
		t.Fatal(err)
	}
	ratio := fig.Get("Gated/Ungated")
	if avg := ratio[len(ratio)-1]; avg > 1.0001 {
		t.Fatalf("gating increased static power: %v", avg)
	}
}

func TestDefaultRunnerConfig(t *testing.T) {
	r := NewRunner(Config{})
	if r.Scale().Name != "test" || r.cfg.Threshold != DefaultThreshold || r.cfg.Seed != 1 {
		t.Fatalf("defaults wrong: %+v", r.cfg)
	}
}

func TestGroupsFor(t *testing.T) {
	if _, err := groupsFor(3); err == nil {
		t.Fatal("groupsFor(3) should fail")
	}
	g2, _ := groupsFor(2)
	g4, _ := groupsFor(4)
	if len(g2) != 14 || len(g4) != 14 {
		t.Fatal("wrong group tables")
	}
}

func TestExtDrowsySavesStaticWithoutPerfCollapse(t *testing.T) {
	fig, err := unitRunner.ExtDrowsy()
	if err != nil {
		t.Fatal(err)
	}
	static := fig.Get("StaticPower")
	perf := fig.Get("Performance")
	if avg := static[len(static)-1]; avg >= 1 {
		t.Fatalf("drowsy extension saved no static power: %v", avg)
	}
	if avg := perf[len(perf)-1]; avg < 0.95 {
		t.Fatalf("drowsy extension cost too much performance: %v", avg)
	}
}

func TestHeadroomRows(t *testing.T) {
	rows, err := unitRunner.Headroom()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("headroom rows = %d, want 14", len(rows))
	}
	for _, row := range rows {
		if row.SavedFraction < 0 || row.SavedFraction > LLCShareOfChip {
			t.Fatalf("%s: saved fraction %v out of range", row.Group, row.SavedFraction)
		}
		if row.FreqUplift < 0 || row.FreqUplift > 0.12 {
			t.Fatalf("%s: uplift %v implausible", row.Group, row.FreqUplift)
		}
	}
}

// TestTable3ClassificationAtTestScale asserts the full calibration of
// the synthetic benchmarks: at the default test scale every benchmark
// must land in its published MPKI class. Skipped with -short (19 solo
// simulations).
func TestTable3ClassificationAtTestScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale calibration check skipped in -short mode")
	}
	r := NewRunner(Config{Scale: sim.TestScale()})
	rows, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Measured != row.PaperClass {
			t.Errorf("%s: measured %.2f MPKI (%s), paper class %s",
				row.Benchmark, row.MeasuredMPKI, row.Measured, row.PaperClass)
		}
	}
}

func TestAblationRandomVictimSmallGap(t *testing.T) {
	fig, err := unitRunner.AblationRandomVictim()
	if err != nil {
		t.Fatal(err)
	}
	lru := fig.Get("LRU")
	random := fig.Get("Random")
	avgL, avgR := lru[len(lru)-1], random[len(random)-1]
	// Section 2.5: the gap between placements is small.
	if avgR < avgL*0.85 || avgR > avgL*1.15 {
		t.Fatalf("victim-policy gap too large: LRU %v vs Random %v", avgL, avgR)
	}
}
