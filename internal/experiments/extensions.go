package experiments

import (
	"math"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file implements the paper's forward-looking extensions:
//
//   - ExtDrowsy: Section 6 notes that a drowsy cache (Kedzierski et
//     al.) "can also be implemented in our cache to offer further
//     energy reductions" — measured here by running Cooperative
//     Partitioning with and without the drowsy extension.
//   - Headroom: the conclusion observes that the energy savings "create
//     additional headroom in the processor's thermal design power",
//     which could buy higher clock rates. Headroom quantifies that:
//     with dynamic power scaling as f*V^2 and voltage tracking
//     frequency, power goes as f^3, so an LLC power saving fraction s
//     of the chip budget permits a frequency uplift of
//     (1/(1-s))^(1/3) - 1.

// ExtDrowsy compares Cooperative Partitioning's static power with and
// without the drowsy extension, normalised to the plain scheme.
func (r *Runner) ExtDrowsy() (metrics.Figure, error) {
	err := r.runPairs(workload.Groups2, true,
		Request{Scheme: sim.CoopPart, Threshold: r.cfg.Threshold},
		Request{Scheme: sim.CoopPart, Threshold: r.cfg.Threshold, Variant: VariantDrowsy})
	if err != nil {
		return metrics.Figure{}, err
	}
	fig := metrics.Figure{
		ID:     "ExtDrowsy",
		Title:  "Cooperative Partitioning + drowsy ways: static power vs plain CP",
		YLabel: "static power normalised to plain CoopPart",
		XLabel: "group",
	}
	var ratios, wsRatios []float64
	for _, g := range workload.Groups2 {
		fig.X = append(fig.X, g.Name)
		plain, err := r.RunGroup(g, sim.CoopPart)
		if err != nil {
			return metrics.Figure{}, err
		}
		ext, err := r.RunGroupVariant(g, sim.CoopPart, r.cfg.Threshold, VariantDrowsy)
		if err != nil {
			return metrics.Figure{}, err
		}
		ratios = append(ratios, ext.StaticPower/plain.StaticPower)
		wsP, err := r.WeightedSpeedup(plain)
		if err != nil {
			return metrics.Figure{}, err
		}
		wsE, err := r.WeightedSpeedup(ext)
		if err != nil {
			return metrics.Figure{}, err
		}
		wsRatios = append(wsRatios, wsE/wsP)
	}
	fig.Series = []metrics.NamedSeries{
		{Name: "StaticPower", Values: ratios},
		{Name: "Performance", Values: wsRatios},
	}
	fig.AppendGeoMeanColumn("AVG")
	return fig, nil
}

// HeadroomRow is one workload's thermal-headroom estimate.
type HeadroomRow struct {
	Group string
	// SavedFraction is Cooperative Partitioning's total (dynamic +
	// static) LLC energy saving versus Fair Share, scaled by
	// LLCShareOfChip to a whole-chip fraction.
	SavedFraction float64
	// FreqUplift is the permissible clock increase at equal power,
	// assuming cubic power-frequency scaling.
	FreqUplift float64
}

// LLCShareOfChip is the assumed share of total chip power attributable
// to the LLC (the paper's motivation: the LLC is "responsible for a
// significant fraction of the total processor power budget").
const LLCShareOfChip = 0.20

// Headroom estimates, per two-core workload, how much clock-frequency
// headroom Cooperative Partitioning's energy savings create.
func (r *Runner) Headroom() ([]HeadroomRow, error) {
	if err := r.Prefetch(workload.Groups2, []sim.SchemeKind{sim.FairShare, sim.CoopPart}); err != nil {
		return nil, err
	}
	var rows []HeadroomRow
	for _, g := range workload.Groups2 {
		fair, err := r.RunGroup(g, sim.FairShare)
		if err != nil {
			return nil, err
		}
		coop, err := r.RunGroup(g, sim.CoopPart)
		if err != nil {
			return nil, err
		}
		fairTotal := fair.Dynamic + fair.Static
		coopTotal := coop.Dynamic + coop.Static
		if fairTotal <= 0 {
			continue
		}
		saved := (1 - coopTotal/fairTotal) * LLCShareOfChip
		if saved < 0 {
			saved = 0
		}
		uplift := math.Pow(1/(1-saved), 1.0/3.0) - 1
		rows = append(rows, HeadroomRow{Group: g.Name, SavedFraction: saved, FreqUplift: uplift})
	}
	return rows, nil
}
