package experiments

// The many-core scaling sweep: the paper evaluates Cooperative
// Partitioning only on 2- and 4-core CMPs (Table 2), but its central
// claim — way-aligned partitioning with gated-Vdd power-off stays
// cheap as sharers multiply — matters most where real many-core parts
// already operate. The sweep runs every scheme at cores ∈ {2,4,8,16}
// on the extrapolated Table 2 hierarchies (sim.Scale.L2For) and
// reports weighted speedup and total LLC energy, each normalised to
// Fair Share at the same core count, geometric-mean across the core
// count's workload groups. All runs flow through the memoising runner,
// so the sweep shares simulations with the figures and is bit-identical
// at any worker count.

import (
	"fmt"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ScalingCoreCounts is the default core-count axis of the sweep.
var ScalingCoreCounts = []int{2, 4, 8, 16}

// scalingGroupsFor returns up to per representative groups for a core
// count (0 = all of them).
func scalingGroupsFor(cores, per int) ([]workload.Group, error) {
	groups, err := groupsFor(cores)
	if err != nil {
		return nil, err
	}
	if per > 0 && per < len(groups) {
		groups = groups[:per]
	}
	return groups, nil
}

// ScalingSweep runs every scheme at each core count over up to
// groupsPer groups (0 = all) and returns two figures: "ScalingWS"
// (geomean weighted speedup) and "ScalingEnergy" (geomean total LLC
// energy), both normalised to the Fair Share run of the same group and
// core count.
func (r *Runner) ScalingSweep(counts []int, groupsPer int) ([]metrics.Figure, error) {
	if len(counts) == 0 {
		counts = ScalingCoreCounts
	}
	perCount := make([][]workload.Group, len(counts))
	var reqs []Request
	for ci, cores := range counts {
		groups, err := scalingGroupsFor(cores, groupsPer)
		if err != nil {
			return nil, err
		}
		perCount[ci] = groups
		reqs = append(reqs, r.crossRequests(groups, sim.AllSchemes)...)
	}
	// One fan-out for the whole sweep: every (group, scheme) run plus
	// Equation 1's solo runs and the DynCPE profiles.
	if err := r.RunAllSpeedup(reqs); err != nil {
		return nil, err
	}

	ws := metrics.Figure{
		ID:     "ScalingWS",
		Title:  "Weighted speedup scaling with core count",
		XLabel: "cores",
		YLabel: "weighted speedup normalised to Fair Share (geomean over groups)",
	}
	en := metrics.Figure{
		ID:     "ScalingEnergy",
		Title:  "Total LLC energy scaling with core count",
		XLabel: "cores",
		YLabel: "total energy normalised to Fair Share (geomean over groups)",
	}
	for _, cores := range counts {
		label := strconv.Itoa(cores)
		ws.X = append(ws.X, label)
		en.X = append(en.X, label)
	}

	for _, scheme := range sim.AllSchemes {
		wsVals := make([]float64, len(counts))
		enVals := make([]float64, len(counts))
		for ci := range counts {
			wsRatios := make([]float64, 0, len(perCount[ci]))
			enRatios := make([]float64, 0, len(perCount[ci]))
			for _, g := range perCount[ci] {
				fair, err := r.RunGroup(g, sim.FairShare)
				if err != nil {
					return nil, err
				}
				res, err := r.RunGroup(g, scheme)
				if err != nil {
					return nil, err
				}
				fairWS, err := r.WeightedSpeedup(fair)
				if err != nil {
					return nil, err
				}
				schemeWS, err := r.WeightedSpeedup(res)
				if err != nil {
					return nil, err
				}
				fairEn := fair.Dynamic + fair.Static
				if fairWS == 0 || fairEn == 0 {
					return nil, fmt.Errorf("scaling: zero Fair Share baseline for %s", g.Name)
				}
				wsRatios = append(wsRatios, schemeWS/fairWS)
				enRatios = append(enRatios, (res.Dynamic+res.Static)/fairEn)
			}
			wsVals[ci] = metrics.GeoMean(wsRatios)
			enVals[ci] = metrics.GeoMean(enRatios)
		}
		ws.Series = append(ws.Series, metrics.NamedSeries{Name: string(scheme), Values: wsVals})
		en.Series = append(en.Series, metrics.NamedSeries{Name: string(scheme), Values: enVals})
	}
	return []metrics.Figure{ws, en}, nil
}
