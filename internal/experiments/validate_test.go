package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

// validateTiersUnit runs the harness once at UnitScale on a small
// sweep, shared across the package's harness tests. UnitScale runs
// are 10x shorter than TestScale, so per-run noise is larger and the
// near-tie floor is raised to 0.05: scheme pairs closer than that
// (e.g. Unmanaged vs UCP, both ~1.0) are not resolvable at this scale
// and must not masquerade as a discriminating gap. The acceptance
// criterion proper runs at TestScale with the default floor
// (cmd/tiercheck in CI; EXPERIMENTS.md records the full sweep).
func validateTiersUnit(t *testing.T) *TierReport {
	t.Helper()
	tierOnce.Do(func() {
		tierReport, tierErr = ValidateTiers(TierCheckConfig{
			Scale:     sim.UnitScale(),
			Seeds:     []uint64{1, 2, 3, 4, 5},
			MaxGroups: 6,
			GapFloor:  0.05,
		})
	})
	if tierErr != nil {
		t.Fatal(tierErr)
	}
	return tierReport
}

var (
	tierOnce   sync.Once
	tierReport *TierReport
	tierErr    error
)

// TestValidateTiersUnitScale is the in-tree tier-equivalence smoke:
// the harness must pass at UnitScale — every figure's largest
// exact-vs-fastforward delta within the gap criterion — and the
// report must be structurally complete.
func TestValidateTiersUnitScale(t *testing.T) {
	rep := validateTiersUnit(t)
	if len(rep.Figures) != len(tierFigureIDs) {
		t.Fatalf("report has %d figures, want %d", len(rep.Figures), len(tierFigureIDs))
	}
	wantDeltas := len(sim.AllSchemes) * len(rep.Tiers)
	for _, fig := range rep.Figures {
		if len(fig.Deltas) != wantDeltas {
			t.Fatalf("%s has %d delta rows, want %d (schemes x tiers)", fig.ID, len(fig.Deltas), wantDeltas)
		}
		for _, d := range fig.Deltas {
			if d.Scheme == string(sim.FairShare) && d.Delta != 0 {
				t.Fatalf("%s: FairShare normalised delta = %v, want exactly 0", fig.ID, d.Delta)
			}
			if d.Exact <= 0 || d.Value <= 0 {
				t.Fatalf("%s/%s/%s: non-positive figure values %+v", fig.ID, d.Scheme, d.Tier, d)
			}
		}
		if !fig.Pass {
			t.Errorf("%s FAILS the tier contract: max delta %.4f vs min gap %.4f (ratio %.3f)",
				fig.ID, fig.MaxDelta, fig.MinGap, fig.Ratio)
		}
	}
	if !rep.Pass {
		t.Fatal("tier-equivalence harness failed at UnitScale")
	}
	if rep.Simulations == 0 {
		t.Fatal("report recorded zero simulations")
	}
}

// TestTierReportJSONRoundTrip pins the machine-readable contract CI
// consumes: WriteJSON emits valid JSON that decodes back to the same
// report, and the table writer mentions every figure and the verdict.
func TestTierReportJSONRoundTrip(t *testing.T) {
	rep := validateTiersUnit(t)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back TierReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*rep, back) {
		t.Fatalf("JSON round trip changed the report:\nout:  %+v\nback: %+v", *rep, back)
	}
	var tbl strings.Builder
	if err := rep.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	for _, id := range tierFigureIDs {
		if !strings.Contains(tbl.String(), id) {
			t.Fatalf("table output missing %s:\n%s", id, tbl.String())
		}
	}
	if !strings.Contains(tbl.String(), "overall: PASS") {
		t.Fatalf("table output missing the verdict:\n%s", tbl.String())
	}
}

// TestMinSchemeGap pins the near-tie exclusion rule.
func TestMinSchemeGap(t *testing.T) {
	cases := []struct {
		vals  []float64
		floor float64
		want  float64
	}{
		{[]float64{1.0, 1.1, 1.5}, 0.02, 0.1},
		{[]float64{1.0, 1.001, 1.5}, 0.02, 0.499},  // near-tie pair excluded
		{[]float64{1.0, 1.001, 1.002}, 0.02, 0},    // nothing resolves
		{[]float64{0.6, 1.0, 1.0, 1.0}, 0.02, 0.4}, // repeated ties
		{[]float64{1.0, 0.98}, 0.02, 0.02},         // gap exactly at floor counts
	}
	for _, c := range cases {
		if got := minSchemeGap(c.vals, c.floor); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("minSchemeGap(%v, %v) = %v, want %v", c.vals, c.floor, got, c.want)
		}
	}
}
