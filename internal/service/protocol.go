// Package service is the distributed experiment service (DESIGN.md
// §13): an HTTP front-end over experiments.Runner so sweeps can be
// sharded across machines and many clients can share one warm result
// cache. The Server (cmd/expd) accepts fully keyed run requests,
// deduplicates in-flight work through the runner's singleflight memo
// and the internal/store disk layer, and returns memoised sim.Results;
// the Client implements experiments.Remote so every binary opts in
// with -server=URL.
//
// Robustness is the contract, mirroring internal/store's: a dead,
// slow or corrupting server can only cost local recomputation, never
// an error, an unbounded stall or a byte of output difference. The
// client enforces it with per-request deadlines, bounded exponential
// backoff with jitter, idempotent retries (requests are pure lookups
// keyed by the same runKey identity the store uses), checksummed
// response envelopes, and a degradation ladder that falls back to
// local computation after consecutive transport failures. The proof
// layer is FaultTripper, the network analogue of store.FaultFS.
package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ProtocolVersion is the wire format. Client and server verify it on
// every exchange; a mismatch is a permanent (non-retried) failure that
// degrades the client to local computation.
const ProtocolVersion = 1

// Request kinds, matching the runner's three memo spaces.
const (
	KindRun     = "run"
	KindAlone   = "alone"
	KindProfile = "profile"
)

// RunRequest is the serialized form of one fully keyed experiment
// lookup. Scale is the complete sim.Scale struct, not a name, so a
// server never silently serves a differently-parameterised scale; Key
// is the canonical store key the client's runner computed, which the
// server recomputes from the other fields and verifies — config or
// version skew surfaces as an explicit mismatch, never a wrong result.
type RunRequest struct {
	Kind      string              `json:"kind"`
	Key       string              `json:"key"`
	Scale     sim.Scale           `json:"scale"`
	Seed      uint64              `json:"seed"`
	Fidelity  string              `json:"fidelity"`
	Group     workload.Group      `json:"group,omitempty"`     // KindRun
	Scheme    sim.SchemeKind      `json:"scheme,omitempty"`    // KindRun
	Threshold float64             `json:"threshold,omitempty"` // KindRun
	Variant   experiments.Variant `json:"variant,omitempty"`   // KindRun
	Benchmark string              `json:"benchmark,omitempty"` // KindAlone/KindProfile
	Cores     int                 `json:"cores,omitempty"`     // KindAlone/KindProfile
}

// envelope is the first line of a successful response body: a JSON
// header whose Len and SHA256 pin the result payload that follows it,
// so truncation and corruption anywhere on the wire are detected and
// retried instead of decoded.
type envelope struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	Key     string `json:"key"`
	Len     int    `json:"len"`
	SHA256  string `json:"sha256"`
}

// envelopeMagic self-describes response bodies.
const envelopeMagic = "coopserve"

// encodeResponse wraps a result payload in its checksummed envelope.
func encodeResponse(key string, value any) ([]byte, error) {
	payload, err := json.Marshal(value)
	if err != nil {
		return nil, fmt.Errorf("service: encoding result: %w", err)
	}
	sum := sha256.Sum256(payload)
	hb, err := json.Marshal(envelope{
		Magic:   envelopeMagic,
		Version: ProtocolVersion,
		Key:     key,
		Len:     len(payload),
		SHA256:  hex.EncodeToString(sum[:]),
	})
	if err != nil {
		return nil, fmt.Errorf("service: encoding envelope: %w", err)
	}
	out := make([]byte, 0, len(hb)+1+len(payload))
	out = append(out, hb...)
	out = append(out, '\n')
	out = append(out, payload...)
	return out, nil
}

// decodeResponse verifies a response body against the key it should
// answer and unmarshals the payload into value. Any failure — missing
// header, bad magic or version, wrong key, torn tail, checksum
// mismatch, undecodable payload — is reported as an error the client
// treats as a transient transport fault (retry, then fall back).
func decodeResponse(key string, body []byte, value any) error {
	nl := bytes.IndexByte(body, '\n')
	if nl < 0 {
		return fmt.Errorf("service: response has no envelope line")
	}
	var env envelope
	if err := json.Unmarshal(body[:nl], &env); err != nil {
		return fmt.Errorf("service: bad envelope: %w", err)
	}
	if env.Magic != envelopeMagic {
		return fmt.Errorf("service: bad envelope magic %q", env.Magic)
	}
	if env.Version != ProtocolVersion {
		return fmt.Errorf("service: protocol version %d, want %d", env.Version, ProtocolVersion)
	}
	if env.Key != key {
		return fmt.Errorf("service: response for key %q, want %q", env.Key, key)
	}
	payload := body[nl+1:]
	if len(payload) != env.Len {
		return fmt.Errorf("service: payload length %d, envelope says %d (truncated)", len(payload), env.Len)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return fmt.Errorf("service: payload checksum mismatch (corrupt)")
	}
	if err := json.Unmarshal(payload, value); err != nil {
		return fmt.Errorf("service: payload does not decode: %w", err)
	}
	return nil
}
