package service

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"sync"
	"time"
)

// Fault names one kind of injected network failure.
type Fault uint8

const (
	// FaultNone proceeds normally.
	FaultNone Fault = iota
	// FaultDrop fails the round trip with a transport error before the
	// request reaches the server (connection refused / reset).
	FaultDrop
	// FaultDelay stalls the round trip by the configured Delay before
	// proceeding; with a delay past the client's RequestTimeout the
	// request dies on its context deadline (a hung server).
	FaultDelay
	// Fault5xx replaces the response with a synthetic 500.
	Fault5xx
	// FaultTruncate cuts the real response body in half (a torn
	// transfer); the envelope's length check catches it.
	FaultTruncate
	// FaultCorrupt flips one bit of the real response payload; the
	// envelope's checksum catches it.
	FaultCorrupt
	faultCount
)

var faultNames = [...]string{"none", "drop", "delay", "5xx", "truncate", "corrupt"}

func (f Fault) String() string {
	if int(f) < len(faultNames) {
		return faultNames[f]
	}
	return "fault(?)"
}

// ErrDropped is the transport error FaultDrop injects.
var ErrDropped = errors.New("service: injected connection drop")

// FaultTripper is the network analogue of store.FaultFS: an
// http.RoundTripper wrapping a real transport with a deterministic
// per-call fault schedule — drop, delay, 5xx, truncated body, corrupt
// payload. The robustness tests drive every schedule through a real
// client and server and assert the run still ends in a correct remote
// result or a correct local fallback, never an error or a byte
// difference.
type FaultTripper struct {
	// Real is the wrapped transport; http.DefaultTransport if nil.
	Real http.RoundTripper
	// Delay is how long FaultDelay stalls.
	Delay time.Duration

	mu        sync.Mutex
	calls     int
	sched     map[int]Fault
	from      int   // 1-based call number FailFrom starts at; 0 = off
	fromFault Fault // fault every call >= from suffers
	fired     int
}

// FailCall schedules fault f on the nth (1-based) round trip.
func (t *FaultTripper) FailCall(n int, f Fault) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sched == nil {
		t.sched = make(map[int]Fault)
	}
	t.sched[n] = f
}

// FailFrom applies fault f to every round trip from the nth (1-based)
// on — the shape of a server that dies and stays dead.
func (t *FaultTripper) FailFrom(n int, f Fault) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.from, t.fromFault = n, f
}

// Calls returns how many round trips have been issued.
func (t *FaultTripper) Calls() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calls
}

// Fired returns how many scheduled faults have triggered.
func (t *FaultTripper) Fired() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fired
}

func (t *FaultTripper) next() Fault {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.calls++
	f, ok := t.sched[t.calls]
	if !ok && t.from > 0 && t.calls >= t.from {
		f = t.fromFault
	}
	if f != FaultNone {
		t.fired++
	}
	return f
}

func (t *FaultTripper) real() http.RoundTripper {
	if t.Real != nil {
		return t.Real
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (t *FaultTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	switch f := t.next(); f {
	case FaultDrop:
		return nil, ErrDropped
	case FaultDelay:
		select {
		case <-time.After(t.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.real().RoundTrip(req)
	case Fault5xx:
		return &http.Response{
			Status:     "500 Internal Server Error (injected)",
			StatusCode: http.StatusInternalServerError,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Body:    io.NopCloser(bytes.NewReader([]byte("injected 5xx"))),
			Header:  make(http.Header),
			Request: req,
		}, nil
	case FaultTruncate, FaultCorrupt:
		resp, err := t.real().RoundTrip(req)
		if err != nil {
			return resp, err
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if f == FaultTruncate {
			data = data[:len(data)/2]
		} else if len(data) > 0 {
			// Flip a bit in the payload tail, past the envelope line,
			// so the checksum (not the envelope parse) catches it.
			data[len(data)-1] ^= 1
		}
		resp.Body = io.NopCloser(bytes.NewReader(data))
		resp.ContentLength = int64(len(data))
		resp.Header.Del("Content-Length")
		return resp, nil
	default:
		return t.real().RoundTrip(req)
	}
}
