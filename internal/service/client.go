package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/workload"
)

// maxResponseBytes bounds a response body read (a Results payload is
// tens of KB; profiles with long timelines stay well under this).
const maxResponseBytes = 64 << 20

// sleepFn is swapped by tests to observe the backoff schedule without
// waiting it out.
var sleepFn = time.Sleep

// ClientOptions parameterise NewClient. The zero value is production
// defaults.
type ClientOptions struct {
	// Transport is the fault-injection seam (FaultTripper in tests);
	// http.DefaultTransport if nil.
	Transport http.RoundTripper
	// RequestTimeout is the per-attempt deadline. It bounds how long a
	// hung server can stall one lookup; the default is generous (5m)
	// because a cold server may be simulating the answer.
	RequestTimeout time.Duration
	// MaxAttempts bounds tries per request (first + retries); 3 if 0.
	MaxAttempts int
	// BackoffBase/BackoffMax bound the exponential retry backoff
	// (full jitter); 50ms doubling to 2s if zero.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxFailures is how many consecutive failed attempts disable the
	// remote layer for the rest of the process (the degradation
	// ladder's last rung, mirroring store.Options.MaxFaults); 6 if 0.
	MaxFailures int
	// Logf receives the client's once-per-condition warnings; stderr
	// if nil. The client never logs on the success path.
	Logf func(format string, args ...any)
}

// ClientStats are the client's observability counters.
type ClientStats struct {
	RemoteHits     uint64
	LocalFallbacks uint64
	Retries        uint64
	Degraded       bool
}

func (s ClientStats) String() string {
	return fmt.Sprintf("remote-hits=%d local-fallbacks=%d retries=%d degraded=%v",
		s.RemoteHits, s.LocalFallbacks, s.Retries, s.Degraded)
}

// Client is the experiments.Remote implementation backed by an expd
// server. All methods are safe for concurrent use and can never fail
// their caller: every transport fault is absorbed by retry (bounded
// exponential backoff with jitter — requests are idempotent pure
// lookups, keyed by the same runKey identity the disk store uses) and
// then by the degradation ladder (MaxFailures consecutive failed
// attempts ⇒ warn once, answer ok=false forever ⇒ the runner computes
// locally). A server that dies mid-sweep costs bounded retry time on
// at most a few requests, then zero.
type Client struct {
	base string
	hc   *http.Client
	opts ClientOptions

	consecutive atomic.Int64
	degraded    atomic.Bool
	hits        atomic.Uint64
	fallbacks   atomic.Uint64
	retries     atomic.Uint64

	warnMu sync.Mutex
	warned map[string]bool
}

// NewClient builds a client for the expd server at baseURL
// (e.g. "http://host:9190"). Unlike a dead server — a runtime fault
// the ladder absorbs — a malformed URL is a configuration error and
// fails fast.
func NewClient(baseURL string, opts ClientOptions) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("service: bad server URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("service: server URL %q must be http(s)", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("service: server URL %q has no host", baseURL)
	}
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = 5 * time.Minute
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 50 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 2 * time.Second
	}
	if opts.MaxFailures <= 0 {
		opts.MaxFailures = 6
	}
	if opts.Logf == nil {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	transport := opts.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	return &Client{
		base:   strings.TrimRight(u.String(), "/"),
		hc:     &http.Client{Transport: transport},
		opts:   opts,
		warned: make(map[string]bool),
	}, nil
}

// OpenCLI builds the client named by a binary's -server flag. An empty
// URL means "compute locally" and returns nil, which every consumer
// accepts (a nil *Client is never installed as an experiments.Remote).
// A malformed URL is returned as an error for the binary to fail fast
// on — it is user input, not a runtime fault.
func OpenCLI(serverURL, prog string) (*Client, error) {
	if serverURL == "" {
		return nil, nil
	}
	return NewClient(serverURL, ClientOptions{
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, prog+": "+format+"\n", args...)
		},
	})
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		RemoteHits:     c.hits.Load(),
		LocalFallbacks: c.fallbacks.Load(),
		Retries:        c.retries.Load(),
		Degraded:       c.degraded.Load(),
	}
}

// ReportStats prints the client's counters to stderr (stderr so stdout
// stays byte-identical with and without a server). Safe on a nil
// receiver so binaries can call it unconditionally at exit.
func (c *Client) ReportStats(prog string) {
	if c == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: service: %s\n", prog, c.Stats())
}

// Degraded reports whether the ladder has disabled the remote layer.
func (c *Client) Degraded() bool { return c != nil && c.degraded.Load() }

func (c *Client) warnOnce(class, format string, args ...any) {
	c.warnMu.Lock()
	seen := c.warned[class]
	c.warned[class] = true
	c.warnMu.Unlock()
	if !seen {
		c.opts.Logf(format, args...)
	}
}

// RemoteRun implements experiments.Remote for group runs.
func (c *Client) RemoteRun(key string, sc sim.Scale, seed uint64, g workload.Group,
	scheme sim.SchemeKind, threshold float64, v experiments.Variant, fid sim.Fidelity) (*sim.Results, bool) {
	var res sim.Results
	if !c.exchange(RunRequest{
		Kind: KindRun, Key: key, Scale: sc, Seed: seed, Fidelity: fid.String(),
		Group: g, Scheme: scheme, Threshold: threshold, Variant: v,
	}, &res) {
		return nil, false
	}
	return &res, true
}

// RemoteAlone implements experiments.Remote for solo runs.
func (c *Client) RemoteAlone(key string, sc sim.Scale, seed uint64,
	benchmark string, cores int, fid sim.Fidelity) (*sim.Results, bool) {
	var res sim.Results
	if !c.exchange(RunRequest{
		Kind: KindAlone, Key: key, Scale: sc, Seed: seed, Fidelity: fid.String(),
		Benchmark: benchmark, Cores: cores,
	}, &res) {
		return nil, false
	}
	return &res, true
}

// RemoteProfile implements experiments.Remote for DynCPE profiles.
func (c *Client) RemoteProfile(key string, sc sim.Scale, seed uint64,
	benchmark string, cores int, fid sim.Fidelity) (partition.CoreProfile, bool) {
	var p partition.CoreProfile
	if !c.exchange(RunRequest{
		Kind: KindProfile, Key: key, Scale: sc, Seed: seed, Fidelity: fid.String(),
		Benchmark: benchmark, Cores: cores,
	}, &p) {
		return partition.CoreProfile{}, false
	}
	return p, true
}

// exchange runs one request through the retry/degradation ladder and
// reports whether value now holds a verified remote result. false
// means "compute locally"; it is never an error.
func (c *Client) exchange(req RunRequest, value any) bool {
	if c == nil || c.degraded.Load() {
		return false
	}
	body, err := json.Marshal(req)
	if err != nil {
		// Unencodable request: a programming error, not a transport
		// fault. Warn once and compute locally.
		c.warnOnce("encode", "service: encoding request: %v — computing locally", err)
		c.fallbacks.Add(1)
		return false
	}
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			sleepFn(c.backoff(attempt))
		}
		err, permanent := c.attempt(req.Key, body, value)
		if err == nil {
			c.consecutive.Store(0)
			c.hits.Add(1)
			return true
		}
		if permanent {
			// 4xx: the server understood us and said no (version or
			// config skew). Retrying cannot help and neither can any
			// later request — degrade the whole client.
			if !c.degraded.Swap(true) {
				c.warnOnce("permanent", "service: server rejected request (%v) — computing locally from here on", err)
			}
			c.fallbacks.Add(1)
			return false
		}
		c.warnOnce("fault", "service: transport fault: %v — retrying, then computing locally", err)
		if n := c.consecutive.Add(1); n >= int64(c.opts.MaxFailures) {
			if !c.degraded.Swap(true) {
				c.warnOnce("degraded", "service: %d consecutive transport failures — server disabled, computing locally from here on", n)
			}
			c.fallbacks.Add(1)
			return false
		}
	}
	c.fallbacks.Add(1)
	return false
}

// attempt performs one HTTP exchange. It returns the failure (nil on
// success) and whether it is permanent (4xx — retry cannot help) as
// opposed to transient (transport error, 5xx, torn or corrupt body).
func (c *Client) attempt(key string, body []byte, value any) (err error, permanent bool) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.RequestTimeout)
	defer cancel()
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return err, true
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return err, false
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return err, false
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		// Verified envelope or bust: any torn/corrupt body surfaces
		// here and is retried like a dropped connection.
		return decodeResponse(key, data, value), false
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return fmt.Errorf("service: server says %s: %s",
			resp.Status, strings.TrimSpace(string(data))), true
	default:
		return fmt.Errorf("service: server says %s: %s",
			resp.Status, strings.TrimSpace(string(data))), false
	}
}

// backoff returns the sleep before retry n (1-based): exponential with
// full jitter, bounded by BackoffMax.
func (c *Client) backoff(n int) time.Duration {
	d := c.opts.BackoffBase << (n - 1)
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	return d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
}
