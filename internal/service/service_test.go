package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workload"
)

// quietf is a Logf that routes warnings to the test log.
func quietf(t *testing.T) func(string, ...any) {
	return func(format string, args ...any) { t.Logf("service: "+format, args...) }
}

// newTestServer starts an in-process expd over httptest and returns
// its base URL plus the Server for drain/progress assertions.
func newTestServer(t *testing.T) (string, *Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(ServerOptions{Logf: quietf(t)})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs.URL, srv, hs
}

// newTestClient builds a client with fast, deterministic retry timing.
func newTestClient(t *testing.T, base string, opts ClientOptions) *Client {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = quietf(t)
	}
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = 10 * time.Second
	}
	if opts.BackoffBase == 0 {
		opts.BackoffBase = time.Millisecond
	}
	if opts.BackoffMax == 0 {
		opts.BackoffMax = 2 * time.Millisecond
	}
	c, err := NewClient(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustGroup(t *testing.T, name string) workload.Group {
	t.Helper()
	g, err := workload.FindGroup(name)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// mustJSON compares by canonical JSON: the same representation the
// store and the wire use, so "byte-identical" means what it does in
// production.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestClientURLValidation(t *testing.T) {
	for _, bad := range []string{"not a url", "ftp://host", "http://"} {
		if _, err := NewClient(bad, ClientOptions{}); err == nil {
			t.Errorf("NewClient(%q): expected error", bad)
		}
	}
	if c, err := OpenCLI("", "test"); err != nil || c != nil {
		t.Errorf("OpenCLI(\"\") = (%v, %v), want (nil, nil)", c, err)
	}
	if _, err := OpenCLI(":bad:", "test"); err == nil {
		t.Error("OpenCLI with malformed URL: expected error")
	}
}

// TestRemoteMatchesLocal: a healthy server serves results that are
// JSON-byte-identical to a purely local computation, and the client's
// runner performs zero simulations itself.
func TestRemoteMatchesLocal(t *testing.T) {
	base, _, _ := newTestServer(t)
	cl := newTestClient(t, base, ClientOptions{})
	sc := sim.UnitScale()
	g := mustGroup(t, "G2-1")

	local := experiments.NewRunner(experiments.Config{Scale: sc})
	want, err := local.RunGroupFidelity(g, sim.CoopPart, experiments.DefaultThreshold,
		experiments.VariantNone, sim.FidelityExact)
	if err != nil {
		t.Fatal(err)
	}

	remote := experiments.NewRunner(experiments.Config{Scale: sc, Remote: cl})
	got, err := remote.RunGroupFidelity(g, sim.CoopPart, experiments.DefaultThreshold,
		experiments.VariantNone, sim.FidelityExact)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, got) != mustJSON(t, want) {
		t.Fatal("remote result differs from local computation")
	}
	if n := remote.Simulations(); n != 0 {
		t.Fatalf("client-side runner simulated %d times; the server should have", n)
	}
	st := cl.Stats()
	if st.RemoteHits == 0 || st.LocalFallbacks != 0 || st.Degraded {
		t.Fatalf("unexpected client stats: %v", st)
	}

	// Solo runs and profiles ride the same exchange.
	wantAlone, err := local.AloneResults(g.Benchmarks[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	gotAlone, err := remote.AloneResults(g.Benchmarks[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, gotAlone) != mustJSON(t, wantAlone) {
		t.Fatal("remote alone result differs from local computation")
	}
	if n := remote.Simulations(); n != 0 {
		t.Fatalf("client-side runner simulated %d times for alone run", n)
	}
}

// TestEveryFaultScheduleConverges is the proof obligation of the fault
// seam: for every injected fault kind, a sweep through a faulty
// transport still ends in results byte-identical to the serverless
// baseline — via retry when the fault is transient, via local
// fallback when the server is effectively gone. Never an error.
func TestEveryFaultScheduleConverges(t *testing.T) {
	restore := sleepFn
	sleepFn = func(time.Duration) {}
	defer func() { sleepFn = restore }()

	sc := sim.UnitScale()
	g := mustGroup(t, "G2-1")
	baseline := experiments.NewRunner(experiments.Config{Scale: sc})
	want, err := baseline.RunGroupFidelity(g, sim.UCP, experiments.DefaultThreshold,
		experiments.VariantNone, sim.FidelityExact)
	if err != nil {
		t.Fatal(err)
	}

	schedules := []struct {
		name   string
		config func(tr *FaultTripper)
	}{
		{"clean", func(tr *FaultTripper) {}},
		{"drop-first", func(tr *FaultTripper) { tr.FailCall(1, FaultDrop) }},
		{"5xx-first", func(tr *FaultTripper) { tr.FailCall(1, Fault5xx) }},
		{"truncate-first", func(tr *FaultTripper) { tr.FailCall(1, FaultTruncate) }},
		{"corrupt-first", func(tr *FaultTripper) { tr.FailCall(1, FaultCorrupt) }},
		{"delay-first", func(tr *FaultTripper) { tr.Delay = time.Second; tr.FailCall(1, FaultDelay) }},
		{"double-drop", func(tr *FaultTripper) { tr.FailCall(1, FaultDrop); tr.FailCall(2, FaultDrop) }},
		{"mixed", func(tr *FaultTripper) { tr.FailCall(1, Fault5xx); tr.FailCall(2, FaultCorrupt) }},
		{"dead-server", func(tr *FaultTripper) { tr.FailFrom(1, FaultDrop) }},
	}
	for _, sched := range schedules {
		t.Run(sched.name, func(t *testing.T) {
			base, _, _ := newTestServer(t)
			tr := &FaultTripper{}
			sched.config(tr)
			cl := newTestClient(t, base, ClientOptions{
				Transport:      tr,
				RequestTimeout: 100 * time.Millisecond, // undercuts the 1s delay fault
				MaxAttempts:    3,
				MaxFailures:    4,
			})
			remote := experiments.NewRunner(experiments.Config{Scale: sc, Remote: cl})
			got, err := remote.RunGroupFidelity(g, sim.UCP, experiments.DefaultThreshold,
				experiments.VariantNone, sim.FidelityExact)
			if err != nil {
				t.Fatalf("fault schedule surfaced an error: %v", err)
			}
			if mustJSON(t, got) != mustJSON(t, want) {
				t.Fatal("result under faults differs from baseline")
			}
			st := cl.Stats()
			if st.RemoteHits+st.LocalFallbacks == 0 {
				t.Fatalf("request accounted to neither remote nor fallback: %v", st)
			}
			if tr.Fired() == 0 && sched.name != "clean" {
				t.Fatal("fault schedule never fired")
			}
		})
	}
}

// TestDeadServerDegradesOnce: with every round trip failing, the
// client crosses MaxFailures, warns, disables itself, and stops
// touching the network — while the sweep completes locally with
// baseline-identical results.
func TestDeadServerDegradesOnce(t *testing.T) {
	restore := sleepFn
	sleepFn = func(time.Duration) {}
	defer func() { sleepFn = restore }()

	sc := sim.UnitScale()
	baseline := experiments.NewRunner(experiments.Config{Scale: sc})
	tr := &FaultTripper{}
	tr.FailFrom(1, FaultDrop)
	cl := newTestClient(t, "http://127.0.0.1:9", ClientOptions{
		Transport: tr, MaxAttempts: 2, MaxFailures: 3,
	})
	remote := experiments.NewRunner(experiments.Config{Scale: sc, Remote: cl})

	for _, name := range []string{"G2-1", "G2-2", "G2-3", "G2-4"} {
		g := mustGroup(t, name)
		want, err := baseline.RunGroup(g, sim.FairShare)
		if err != nil {
			t.Fatal(err)
		}
		got, err := remote.RunGroup(g, sim.FairShare)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if mustJSON(t, got) != mustJSON(t, want) {
			t.Fatalf("%s: degraded result differs from baseline", name)
		}
	}
	if !cl.Degraded() {
		t.Fatal("client never degraded against a dead server")
	}
	calls := tr.Calls()
	if calls == 0 {
		t.Fatal("no transport calls recorded")
	}
	// Further work must not touch the transport at all.
	g := mustGroup(t, "G2-5")
	if _, err := remote.RunGroup(g, sim.FairShare); err != nil {
		t.Fatal(err)
	}
	if tr.Calls() != calls {
		t.Fatalf("degraded client still issued transport calls (%d -> %d)", calls, tr.Calls())
	}
}

// TestKeyMismatchIsPermanent: a 409 (the two sides disagree what a key
// means) must not be retried — it degrades the client immediately.
func TestKeyMismatchIsPermanent(t *testing.T) {
	restore := sleepFn
	sleepFn = func(time.Duration) {}
	defer func() { sleepFn = restore }()

	base, _, _ := newTestServer(t)
	tr := &FaultTripper{}
	cl := newTestClient(t, base, ClientOptions{Transport: tr, MaxAttempts: 5})
	g := mustGroup(t, "G2-1")
	_, ok := cl.RemoteRun("run|bogus-key", sim.UnitScale(), 1, g,
		sim.CoopPart, experiments.DefaultThreshold, experiments.VariantNone, sim.FidelityExact)
	if ok {
		t.Fatal("key mismatch returned a result")
	}
	if !cl.Degraded() {
		t.Fatal("key mismatch did not degrade the client")
	}
	if tr.Calls() != 1 {
		t.Fatalf("permanent failure was retried: %d calls", tr.Calls())
	}
}

// TestServerRejectsGarbage: malformed bodies, bad fidelity, unknown
// kinds, wrong methods.
func TestServerRejectsGarbage(t *testing.T) {
	base, _, _ := newTestServer(t)
	post := func(body string) int {
		resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", code)
	}
	if code := post(`{"kind":"run","fidelity":"warp9"}`); code != http.StatusBadRequest {
		t.Fatalf("bad fidelity: %d", code)
	}
	if code := post(`{"kind":"teleport","fidelity":"exact"}`); code != http.StatusBadRequest {
		t.Fatalf("unknown kind: %d", code)
	}
	resp, err := http.Get(base + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run: %d", resp.StatusCode)
	}
}

// TestDrainSemantics: draining flips /readyz and /v1/run to 503 while
// /healthz stays 200 — and the client treats the 503 as one more
// transient on the road to local fallback, not an error.
func TestDrainSemantics(t *testing.T) {
	restore := sleepFn
	sleepFn = func(time.Duration) {}
	defer func() { sleepFn = restore }()

	base, srv, _ := newTestServer(t)
	get := func(path string) int {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz before drain: %d", code)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", code)
	}
	srv.BeginDrain()
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz during drain: %d", code)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d", code)
	}

	cl := newTestClient(t, base, ClientOptions{MaxAttempts: 2, MaxFailures: 2})
	sc := sim.UnitScale()
	remote := experiments.NewRunner(experiments.Config{Scale: sc, Remote: cl})
	local := experiments.NewRunner(experiments.Config{Scale: sc})
	g := mustGroup(t, "G2-1")
	want, err := local.RunGroup(g, sim.Unmanaged)
	if err != nil {
		t.Fatal(err)
	}
	got, err := remote.RunGroup(g, sim.Unmanaged)
	if err != nil {
		t.Fatalf("run against draining server errored: %v", err)
	}
	if mustJSON(t, got) != mustJSON(t, want) {
		t.Fatal("fallback result differs from baseline")
	}
	if cl.Stats().LocalFallbacks == 0 {
		t.Fatal("draining server did not register a local fallback")
	}
}

// TestProgressEndpoint: the snapshot counts requests and runs.
func TestProgressEndpoint(t *testing.T) {
	base, srv, _ := newTestServer(t)
	cl := newTestClient(t, base, ClientOptions{})
	g := mustGroup(t, "G2-1")
	remote := experiments.NewRunner(experiments.Config{Scale: sim.UnitScale(), Remote: cl})
	if _, err := remote.RunGroup(g, sim.Unmanaged); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(base + "/v1/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var p Progress
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Requests == 0 || p.RunsCompleted == 0 || p.SimulationsStarted == 0 || p.Runners == 0 {
		t.Fatalf("implausible progress: %+v", p)
	}
	if got := srv.Snapshot(); got.RunsCompleted != p.RunsCompleted {
		t.Fatalf("snapshot disagrees with endpoint: %+v vs %+v", got, p)
	}
}

// TestEnvelopeVerification pins the wire format's self-checks.
func TestEnvelopeVerification(t *testing.T) {
	payload := map[string]int{"x": 42}
	enc, err := encodeResponse("k1", payload)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]int
	if err := decodeResponse("k1", enc, &out); err != nil {
		t.Fatal(err)
	}
	if out["x"] != 42 {
		t.Fatalf("round trip lost the payload: %v", out)
	}
	if err := decodeResponse("other", enc, &out); err == nil {
		t.Fatal("key mismatch not detected")
	}
	if err := decodeResponse("k1", enc[:len(enc)-3], &out); err == nil {
		t.Fatal("truncation not detected")
	}
	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)-1] ^= 1
	if err := decodeResponse("k1", flipped, &out); err == nil {
		t.Fatal("corruption not detected")
	}
	if err := decodeResponse("k1", []byte("junk\n{}"), &out); err == nil {
		t.Fatal("garbage envelope not detected")
	}
}

// BenchmarkServiceRoundTrip measures one warm remote lookup end to end
// (HTTP + envelope + verification, result already memoised
// server-side) — the per-request overhead DESIGN.md §13 quotes.
func BenchmarkServiceRoundTrip(b *testing.B) {
	srv := NewServer(ServerOptions{Logf: func(string, ...any) {}})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	cl, err := NewClient(hs.URL, ClientOptions{Logf: func(string, ...any) {}})
	if err != nil {
		b.Fatal(err)
	}
	g, err := workload.FindGroup("G2-1")
	if err != nil {
		b.Fatal(err)
	}
	sc := sim.UnitScale()
	local := experiments.NewRunner(experiments.Config{Scale: sc})
	key := local.RunKey(g, sim.CoopPart, experiments.DefaultThreshold,
		experiments.VariantNone, sim.FidelityExact)
	if _, ok := cl.RemoteRun(key, sc, 1, g, sim.CoopPart,
		experiments.DefaultThreshold, experiments.VariantNone, sim.FidelityExact); !ok {
		b.Fatal("warmup request failed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := cl.RemoteRun(key, sc, 1, g, sim.CoopPart,
			experiments.DefaultThreshold, experiments.VariantNone, sim.FidelityExact); !ok {
			b.Fatal("warm request failed")
		}
	}
}
