package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/store"
)

// maxRequestBytes bounds a request body; a RunRequest is a few KB.
const maxRequestBytes = 1 << 20

// ServerOptions parameterise NewServer. The zero value is production
// defaults.
type ServerOptions struct {
	// Workers is each runner's simulation fan-out bound (DynCPE
	// profile gathering); GOMAXPROCS if zero. Cross-request
	// parallelism comes from concurrent HTTP requests, bounded by
	// MaxConcurrent.
	Workers int
	// MaxConcurrent bounds simultaneously executing run requests (the
	// rest queue); GOMAXPROCS if zero.
	MaxConcurrent int
	// Store is the shared persistent result cache (nil = per-process
	// memory only). Every runner the server builds publishes into it,
	// and its cross-process lockfiles are what serialise the server
	// against other processes on the same directory.
	Store *store.Store
	// Checkpoints is the shared checkpoint manager (nil gets each
	// runner a memory-only one). Warm-up keys carry the scale
	// fingerprint and seed, so one manager serves every runner the
	// server builds without aliasing runs.
	Checkpoints *ckpt.Manager
	// Logf receives request-level warnings; stderr if nil.
	Logf func(format string, args ...any)
}

// Server is the HTTP front-end over experiments.Runner. One Server
// hosts one runner per (scale fingerprint, seed) pair, created on
// first use, all sharing one Store — so any client, at any scale or
// seed, gets results deduplicated through the same memo and disk
// layers the binaries use locally. All methods are safe for
// concurrent use.
type Server struct {
	workers     int
	store       *store.Store
	checkpoints *ckpt.Manager
	logf        func(format string, args ...any)
	sem         chan struct{}

	mu      sync.Mutex
	runners map[string]*experiments.Runner

	draining  atomic.Bool
	requests  atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	inFlight  atomic.Int64
}

// NewServer builds a Server.
func NewServer(opts ServerOptions) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	return &Server{
		workers:     opts.Workers,
		store:       opts.Store,
		checkpoints: opts.Checkpoints,
		logf:        logf,
		sem:         make(chan struct{}, opts.MaxConcurrent),
		runners:     make(map[string]*experiments.Runner),
	}
}

// runner returns (building on first use) the memoising runner for one
// (scale, seed) identity. The map key is the scale *fingerprint*, so
// two scales differing in any field get distinct runners even when
// they share a name.
func (s *Server) runner(sc sim.Scale, seed uint64) *experiments.Runner {
	key := store.Fingerprint(sc) + "|" + strconv.FormatUint(seed, 10)
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runners[key]
	if !ok {
		r = experiments.NewRunner(experiments.Config{
			Scale: sc, Seed: seed, Workers: s.workers, Store: s.store,
			Checkpoints: s.checkpoints,
		})
		s.runners[key] = r
	}
	return r
}

// BeginDrain flips the server into shutdown mode: /readyz and /v1/run
// answer 503 from now on, while requests already executing complete
// and return their results (http.Server.Shutdown provides the wait).
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Progress is the server's observability snapshot: what /v1/progress
// serves, one line per tick when streaming.
type Progress struct {
	Requests           uint64       `json:"requests"`
	RunsCompleted      uint64       `json:"runs_completed"`
	RunsFailed         uint64       `json:"runs_failed"`
	InFlight           int64        `json:"in_flight"`
	SimulationsStarted uint64       `json:"simulations_started"`
	Runners            int          `json:"runners"`
	Draining           bool         `json:"draining"`
	Store              *store.Stats `json:"store,omitempty"`
}

// Snapshot collects the current progress counters.
func (s *Server) Snapshot() Progress {
	p := Progress{
		Requests:      s.requests.Load(),
		RunsCompleted: s.completed.Load(),
		RunsFailed:    s.failed.Load(),
		InFlight:      s.inFlight.Load(),
		Draining:      s.draining.Load(),
	}
	s.mu.Lock()
	p.Runners = len(s.runners)
	for _, r := range s.runners {
		p.SimulationsStarted += r.Simulations()
	}
	s.mu.Unlock()
	if s.store != nil {
		st := s.store.Stats()
		p.Store = &st
	}
	return p
}

// Handler returns the server's HTTP surface:
//
//	POST /v1/run      — execute/fetch one fully keyed run
//	GET  /v1/progress — progress snapshot; ?stream=1 for ndjson ticks
//	GET  /healthz     — liveness (200 while the process serves)
//	GET  /readyz      — readiness (503 once draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/progress", s.handleProgress)
	return mux
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.requests.Add(1)
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes))
	if err != nil {
		http.Error(w, "reading request: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req RunRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "decoding request: "+err.Error(), http.StatusBadRequest)
		return
	}
	fid, err := sim.ParseFidelity(req.Fidelity)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	runner := s.runner(req.Scale, req.Seed)

	// Recompute the canonical key from the request fields; the client
	// computed the same string from its own runner. A mismatch means
	// the two sides disagree about what this run *is* (version or
	// config skew) and must never be papered over with a result.
	var want string
	switch req.Kind {
	case KindRun:
		want = runner.RunKey(req.Group, req.Scheme, req.Threshold, req.Variant, fid)
	case KindAlone:
		want = runner.AloneKey(req.Benchmark, req.Cores, fid)
	case KindProfile:
		want = runner.ProfileKey(req.Benchmark, req.Cores, fid)
	default:
		http.Error(w, fmt.Sprintf("unknown kind %q", req.Kind), http.StatusBadRequest)
		return
	}
	if want != req.Key {
		http.Error(w, fmt.Sprintf("key mismatch: client %q, server %q", req.Key, want),
			http.StatusConflict)
		return
	}

	// Bound concurrent simulation work; queued requests still honour
	// cancellation and drain.
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		http.Error(w, "client gone", http.StatusServiceUnavailable)
		return
	}
	s.inFlight.Add(1)
	defer func() {
		s.inFlight.Add(-1)
		<-s.sem
	}()

	var value any
	ctx := r.Context()
	switch req.Kind {
	case KindRun:
		value, err = runner.RunRequest(ctx, experiments.Request{
			Group: req.Group, Scheme: req.Scheme, Threshold: req.Threshold,
			Variant: req.Variant, Fidelity: fid,
		})
	case KindAlone:
		value, err = runner.AloneRequest(ctx, req.Benchmark, req.Cores, fid)
	case KindProfile:
		value, err = runner.ProfileRequest(ctx, req.Benchmark, req.Cores, fid)
	}
	if err != nil {
		s.failed.Add(1)
		s.logf("service: %s %s: %v", req.Kind, req.Key, err)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp, err := encodeResponse(req.Key, value)
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-coopserve")
	w.Header().Set("Content-Length", strconv.Itoa(len(resp)))
	w.Write(resp)
	s.completed.Add(1)
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	enc := json.NewEncoder(w)
	if r.URL.Query().Get("stream") == "" {
		w.Header().Set("Content-Type", "application/json")
		enc.Encode(s.Snapshot())
		return
	}
	interval := 500 * time.Millisecond
	if ms, err := strconv.Atoi(r.URL.Query().Get("interval")); err == nil && ms > 0 {
		interval = time.Duration(ms) * time.Millisecond
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		if err := enc.Encode(s.Snapshot()); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}
