package cpu

import (
	"math"
	"testing"

	"repro/internal/trace"
)

// stallMem is a deterministic MemPort whose replies vary with the
// address/pc and call count: a mix of L1 hits and misses with varying
// latencies, so differential tests exercise stalls that leave the
// clock both on and off the retireCost grid (fractional MLP division).
type stallMem struct {
	calls   int
	fetches int
}

func (m *stallMem) Access(core int, addr uint64, isWrite bool, now int64) AccessReply {
	m.calls++
	if m.calls%3 == 0 {
		return AccessReply{Latency: 2, L1Hit: true}
	}
	return AccessReply{Latency: int64(17 + m.calls%7), L1Hit: false}
}

func (m *stallMem) Fetch(core int, pc uint64, now int64) AccessReply {
	m.fetches++
	if m.fetches%4 != 0 {
		return AccessReply{Latency: 2, L1Hit: true}
	}
	return AccessReply{Latency: int64(11 + m.fetches%5), L1Hit: false}
}

// eventTestConfig is a mix with real ALU runs, branches (taken jumps
// move the fetch line), loads/stores (fractional-MLP stalls knock the
// clock off the retireCost grid) and a code footprint that wraps.
func eventTestConfig(mlp float64, seed uint64) trace.Config {
	return trace.Config{
		MemFrac:     0.25,
		StoreFrac:   0.3,
		BranchFrac:  0.1,
		BranchNoise: 0.2,
		StreamFrac:  0.5,
		HugeFrac:    0.5,
		HugeLines:   5000,
		MLP:         mlp,
		CodeLines:   40,
		LineBytes:   64,
		Seed:        seed,
	}
}

// driveEquivalent steps ref per record and ev through StepEvent over a
// schedule of (bound, maxRetire) windows, comparing full core state
// after every window. The reference applies the identical windowing:
// per-record stepping re-checks bound and cap before every Step, which
// is exactly the contract StepEvent batches under.
func driveEquivalent(t *testing.T, ref, ev *Core, width int) {
	t.Helper()
	sched := rngSched{state: 0xfeed}
	var bound int64
	for w := 0; w < 4000; w++ {
		bound += int64(sched.intn(40))
		maxRetire := uint64(1 + sched.intn(50))
		var n uint64
		for n < maxRetire && ref.Now() <= bound {
			ref.Step()
			n++
		}
		got := ev.StepEvent(bound, maxRetire)
		if got != n {
			t.Fatalf("width %d window %d (bound %d, cap %d): StepEvent retired %d, Step %d",
				width, w, bound, maxRetire, got, n)
		}
		if math.Float64bits(ev.clock) != math.Float64bits(ref.clock) {
			t.Fatalf("width %d window %d: clock %v (%#x) != %v (%#x)",
				width, w, ev.clock, math.Float64bits(ev.clock), ref.clock, math.Float64bits(ref.clock))
		}
		if ev.retired != ref.retired || ev.fetchLine != ref.fetchLine {
			t.Fatalf("width %d window %d: retired/fetchLine diverged: %d/%#x != %d/%#x",
				width, w, ev.retired, ev.fetchLine, ref.retired, ref.fetchLine)
		}
		if ev.stats != ref.stats {
			t.Fatalf("width %d window %d: stats %+v != %+v", width, w, ev.stats, ref.stats)
		}
	}
	if ref.stats.Loads == 0 || ref.stats.Branches == 0 || ref.stats.FetchMisses == 0 {
		t.Fatalf("width %d: test mix did not exercise loads/branches/fetch misses: %+v",
			width, ref.stats)
	}
}

// rngSched is a tiny deterministic schedule source for the windows.
type rngSched struct{ state uint64 }

func (r *rngSched) intn(n int) int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int((r.state >> 33) % uint64(n))
}

// TestStepEventMatchesStep is the core-level differential oracle: for
// power-of-two and non-power-of-two widths, integer and fractional
// effective MLP, StepEvent under arbitrary (bound, cap) windows is
// bit-identical — clock bits included — to per-record stepping under
// the same windows.
func TestStepEventMatchesStep(t *testing.T) {
	for _, width := range []int{1, 2, 4, 8, 3, 6} {
		for _, mlp := range []float64{1, 1.5, 2, 3} {
			cfg := DefaultConfig()
			cfg.Width = width
			mk := func() *Core {
				return NewCore(0, cfg, trace.NewGenerator(eventTestConfig(mlp, 77)), &stallMem{})
			}
			driveEquivalent(t, mk(), mk(), width)
		}
	}
}

// TestStepEventNonPow2WidthFallsBack pins the constructor guard: a
// non-power-of-two width must not use batched run retirement (its
// retireCost is rounded, so batching would round differently than
// repeated addition), falling back to per-record stepping instead.
func TestStepEventNonPow2WidthFallsBack(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width = 3
	c := NewCore(0, cfg, trace.NewGenerator(eventTestConfig(2, 5)), &stallMem{})
	if c.EventCapable() {
		t.Fatal("width 3 core reports EventCapable")
	}
	c.StepEvent(1000, 500)
	// The fallback consumes through Step: no pending event state may
	// accumulate (per-record pulls bypass the event API entirely).
	if c.ev.ALURun != 0 || c.ev.HasRec {
		t.Fatalf("fallback left pending event state: %+v", c.ev)
	}
	for _, width := range []int{1, 2, 4, 16} {
		cfg.Width = width
		if !NewCore(0, cfg, trace.NewGenerator(eventTestConfig(2, 5)), &stallMem{}).EventCapable() {
			t.Fatalf("width %d core not EventCapable", width)
		}
	}
}

// TestStepEventMixedWithStep checks the two consumption styles can be
// interleaved on one core without reordering the stream: Step drains
// pending event-pulled instructions before touching the generator.
func TestStepEventMixedWithStep(t *testing.T) {
	mk := func() *Core {
		return NewCore(0, DefaultConfig(), trace.NewGenerator(eventTestConfig(1.5, 31)), &stallMem{})
	}
	ref, mixed := mk(), mk()
	sched := rngSched{state: 4}
	for ref.retired < 30000 {
		if sched.intn(2) == 0 {
			n := uint64(1 + sched.intn(20))
			mixed.StepEvent(math.MaxInt64, n)
			for i := uint64(0); i < n; i++ {
				ref.Step()
			}
		} else {
			mixed.Step()
			ref.Step()
		}
		if math.Float64bits(mixed.clock) != math.Float64bits(ref.clock) || mixed.retired != ref.retired {
			t.Fatalf("mixed consumption diverged at %d: clock %v != %v",
				ref.retired, mixed.clock, ref.clock)
		}
	}
}

// TestStepEventAllocationFree extends the hot-path allocation pinning
// to the event consumer.
func TestStepEventAllocationFree(t *testing.T) {
	c := NewCore(0, DefaultConfig(), trace.NewGenerator(eventTestConfig(2, 3)), &stallMem{})
	bound := int64(0)
	if n := testing.AllocsPerRun(1000, func() {
		bound += 25
		c.StepEvent(bound, 100)
	}); n != 0 {
		t.Fatalf("StepEvent allocates %v per call, want 0", n)
	}
}

func BenchmarkStepEvent(b *testing.B) {
	c := NewCore(0, DefaultConfig(), trace.NewGenerator(eventTestConfig(2, 3)), &stallMem{})
	b.ReportAllocs()
	b.ResetTimer()
	var done uint64
	for done < uint64(b.N) {
		done += c.StepEvent(math.MaxInt64, uint64(b.N)-done)
	}
}

func BenchmarkStep(b *testing.B) {
	c := NewCore(0, DefaultConfig(), trace.NewGenerator(eventTestConfig(2, 3)), &stallMem{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}
