// Package cpu models the out-of-order cores of Table 2: a 4-wide,
// 7-stage pipeline with a 128-entry ROB, 48-entry LSQ, gshare branch
// prediction with a 1024-entry 4-way BTB, and a minimum 10-cycle
// misprediction penalty. The model is cycle-batched: instructions are
// consumed from a synthetic trace and charged retirement slots, branch
// bubbles and memory stalls, with miss latencies overlapped up to the
// window's memory-level parallelism.
package cpu

// GshareConfig configures the direction predictor and BTB.
type GshareConfig struct {
	HistoryBits       int // global history register length
	TableBits         int // log2 of the PHT size
	BTBEntries        int
	BTBWays           int
	MispredictPenalty int // minimum bubble, cycles
}

// DefaultGshareConfig matches Table 2.
func DefaultGshareConfig() GshareConfig {
	return GshareConfig{
		HistoryBits:       12,
		TableBits:         12,
		BTBEntries:        1024,
		BTBWays:           4,
		MispredictPenalty: 10,
	}
}

// Gshare is a global-history XOR-indexed 2-bit-counter predictor with a
// set-associative BTB for target presence.
type Gshare struct {
	cfg     GshareConfig
	history uint64
	pht     []uint8 // 2-bit saturating counters
	btbTags []uint64
	btbLRU  []uint64
	btbSets int
	clock   uint64
	stats   BranchStats
}

// BranchStats counts predictor events.
type BranchStats struct {
	Branches    uint64
	Mispredicts uint64
	BTBMisses   uint64
}

// NewGshare builds the predictor; counters initialise weakly not-taken.
func NewGshare(cfg GshareConfig) *Gshare {
	if cfg.TableBits <= 0 || cfg.BTBEntries <= 0 || cfg.BTBWays <= 0 {
		panic("cpu: invalid gshare config")
	}
	sets := cfg.BTBEntries / cfg.BTBWays
	return &Gshare{
		cfg:     cfg,
		pht:     make([]uint8, 1<<uint(cfg.TableBits)),
		btbTags: make([]uint64, sets*cfg.BTBWays),
		btbLRU:  make([]uint64, sets*cfg.BTBWays),
		btbSets: sets,
	}
}

// Stats returns predictor counters.
func (g *Gshare) Stats() BranchStats { return g.stats }

// index computes the gshare PHT index for pc.
func (g *Gshare) index(pc uint64) int {
	mask := uint64(len(g.pht) - 1)
	return int(((pc >> 2) ^ g.history) & mask)
}

// Predict records one branch with its actual outcome and returns
// whether the prediction was correct. BTB misses on taken branches also
// count as mispredictions (no target available).
func (g *Gshare) Predict(pc uint64, taken bool) bool {
	g.stats.Branches++
	idx := g.index(pc)
	predTaken := g.pht[idx] >= 2

	// Update the 2-bit counter.
	if taken && g.pht[idx] < 3 {
		g.pht[idx]++
	} else if !taken && g.pht[idx] > 0 {
		g.pht[idx]--
	}
	// Update global history.
	g.history = g.history<<1 | b2u(taken)
	if g.cfg.HistoryBits < 64 {
		g.history &= (1 << uint(g.cfg.HistoryBits)) - 1
	}

	correct := predTaken == taken
	if taken {
		if !g.btbLookupInsert(pc) {
			g.stats.BTBMisses++
			correct = false
		}
	}
	if !correct {
		g.stats.Mispredicts++
	}
	return correct
}

// Penalty returns the misprediction bubble in cycles.
func (g *Gshare) Penalty() int { return g.cfg.MispredictPenalty }

// MispredictRate returns mispredictions per branch.
func (g *Gshare) MispredictRate() float64 {
	if g.stats.Branches == 0 {
		return 0
	}
	return float64(g.stats.Mispredicts) / float64(g.stats.Branches)
}

// btbLookupInsert probes the BTB for pc, inserting on miss, and reports
// whether it hit.
func (g *Gshare) btbLookupInsert(pc uint64) bool {
	set := int((pc >> 2) % uint64(g.btbSets))
	base := set * g.cfg.BTBWays
	g.clock++
	victim, victimLRU := base, ^uint64(0)
	for i := 0; i < g.cfg.BTBWays; i++ {
		if g.btbTags[base+i] == pc {
			g.btbLRU[base+i] = g.clock
			return true
		}
		if g.btbLRU[base+i] < victimLRU {
			victim, victimLRU = base+i, g.btbLRU[base+i]
		}
	}
	g.btbTags[victim] = pc
	g.btbLRU[victim] = g.clock
	return false
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
