package cpu

import (
	"fmt"

	"repro/internal/trace"
)

// Config describes one core's pipeline (Table 2 of the paper).
type Config struct {
	Width         int // issue/retire width
	ROB           int // reorder buffer entries
	LSQ           int // load/store queue entries
	PipelineDepth int
	Gshare        GshareConfig
}

// DefaultConfig returns the paper's 4-wide, 7-stage configuration.
func DefaultConfig() Config {
	return Config{
		Width:         4,
		ROB:           128,
		LSQ:           48,
		PipelineDepth: 7,
		Gshare:        DefaultGshareConfig(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width <= 0 || c.ROB <= 0 || c.LSQ <= 0 || c.PipelineDepth <= 0 {
		return fmt.Errorf("cpu: non-positive config %+v", c)
	}
	return nil
}

// AccessReply is the memory hierarchy's answer to one data access.
type AccessReply struct {
	Latency int64 // total cycles from issue to data return
	L1Hit   bool
}

// MemPort is the interface the core uses to reach the memory
// hierarchy: Access for data (private L1D backed by the shared LLC),
// Fetch for instructions (private L1I backed by the same LLC). The
// simulator package provides the implementation.
type MemPort interface {
	Access(core int, addr uint64, isWrite bool, now int64) AccessReply
	Fetch(core int, pc uint64, now int64) AccessReply
}

// Core is the cycle-batched timing model of one out-of-order core
// consuming a synthetic instruction stream.
//
// Timing rules:
//   - every instruction costs one retire slot (1/Width cycles);
//   - a mispredicted branch inserts the predictor's bubble;
//   - a load that hits in the L1 is considered fully hidden by the
//     out-of-order window;
//   - a load that misses the L1 stalls retirement for
//     latency / effectiveMLP cycles, where effectiveMLP is the
//     benchmark's intrinsic memory-level parallelism clamped by the
//     LSQ and ROB capacity — the window can only overlap misses it can
//     hold;
//   - stores retire through the store buffer: an L1-missing store
//     charges a quarter of a load's exposed stall.
type Core struct {
	// Hot per-Step scalars first, so they share the struct's leading
	// cache lines.
	clock      float64 // local cycle count (monotonic, never reset)
	retired    uint64
	fetchLine  uint64  // line of the last instruction fetch
	retireCost float64 // 1/Width cycles per retired instruction, precomputed
	effMLP     float64 // effectiveMLP(), constant per benchmark, precomputed

	// Event-consumption state (StepEvent): the one pending event,
	// consumed in place (ALURun counts down, ALUPC walks forward;
	// ALURun == 0 && !HasRec marks it drained — also the zero value),
	// plus the code-region bounds the PC walk wraps at (cached from
	// the generator at construction). Exactly one event is pulled at a
	// time, reusing this one struct: the same per-pull discipline —
	// and the same single hot cache line — as the per-record path's
	// reused Record (a multi-event prefetch buffer was measured
	// slower; it cycles its buffer's lines through the L1 alongside
	// the cache model's own traffic, the §2 story at event scale).
	ev        trace.Event
	evExact   bool // Width is a power of two: O(1) run retirement allowed
	codeBase  uint64
	codeLimit uint64

	stats Stats

	gshare *Gshare
	mem    MemPort
	gen    *trace.Generator
	id     int
	cfg    Config

	// Snapshots taken at the end of warm-up so that IPC and counters
	// reflect only the measured region while the clock stays monotonic
	// (the shared LLC and DRAM keep absolute timestamps).
	snapClock   float64
	snapRetired uint64
}

// Stats aggregates per-core execution counters.
type Stats struct {
	Retired     uint64
	Loads       uint64
	Stores      uint64
	Branches    uint64
	L1Misses    uint64
	FetchMisses uint64 // instruction fetches missing the L1I
	StallCycles float64
}

// NewCore builds a core with the given id, consuming gen and accessing
// memory through mem. It panics on invalid configuration.
func NewCore(id int, cfg Config, gen *trace.Generator, mem MemPort) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Core{
		id:         id,
		cfg:        cfg,
		gshare:     NewGshare(cfg.Gshare),
		gen:        gen,
		mem:        mem,
		retireCost: 1 / float64(cfg.Width),
		// Batched O(1) run retirement is only bit-identical to repeated
		// per-record retirement when retireCost is a negative power of
		// two (see StepEvent); other widths fall back to per-record
		// stepping inside StepEvent.
		evExact: cfg.Width&(cfg.Width-1) == 0,
	}
	c.effMLP = c.effectiveMLP()
	c.codeBase, c.codeLimit = gen.CodeBounds()
	return c
}

// EventCapable reports whether StepEvent uses batched run retirement
// for this core (true for power-of-two issue widths); other cores
// consume events through the bit-identical per-record fallback.
func (c *Core) EventCapable() bool { return c.evExact }

// ID returns the core's identifier.
func (c *Core) ID() int { return c.id }

// Now returns the core's local clock in whole cycles.
func (c *Core) Now() int64 { return int64(c.clock) }

// Retired returns instructions retired since the last ResetStats.
func (c *Core) Retired() uint64 { return c.retired - c.snapRetired }

// IPC returns retired instructions per cycle since the last ResetStats.
func (c *Core) IPC() float64 {
	cycles := c.clock - c.snapClock
	if cycles <= 0 {
		return 0
	}
	return float64(c.Retired()) / cycles
}

// MeasuredCycles returns cycles elapsed since the last ResetStats.
func (c *Core) MeasuredCycles() float64 { return c.clock - c.snapClock }

// Stats returns the core's counters.
func (c *Core) Stats() Stats { return c.stats }

// Predictor exposes the branch predictor (for reporting).
func (c *Core) Predictor() *Gshare { return c.gshare }

// effectiveMLP clamps the benchmark's intrinsic miss parallelism by the
// window resources: the LSQ bounds in-flight memory operations and the
// ROB bounds how far ahead the window can run to expose them.
func (c *Core) effectiveMLP() float64 {
	mlp := c.gen.MLP()
	if lim := float64(c.cfg.LSQ) / 8; mlp > lim {
		mlp = lim
	}
	if lim := float64(c.cfg.ROB) / 32; mlp > lim {
		mlp = lim
	}
	if mlp < 1 {
		mlp = 1
	}
	return mlp
}

// Step consumes and retires one instruction, advancing the local clock.
//
// Records are consumed one at a time, deliberately: a per-record pull
// keeps the generator's ALU-bound work interleaved with the memory-
// bound cache-model calls below, where the out-of-order hardware
// overlaps the two. Prefetching a chunk of records ahead of time was
// implemented and measured 4-10% slower end-to-end at every chunk size
// (see DESIGN.md §2) because the burst serialises against the
// simulator's stalls instead of hiding under them. The simulator's
// default stepping mode is the bit-identical event-compressed
// StepEvent (DESIGN.md §10), which keeps the same one-pull-per-step
// discipline at event granularity; Step remains the differential
// reference and the fallback for non-power-of-two widths.
func (c *Core) Step() {
	// Drain any event-pulled instructions first so Step and StepEvent
	// can be mixed freely on one core without reordering the stream.
	if c.ev.ALURun > 0 {
		c.stepOneALU(&c.ev)
		return
	}
	if c.ev.HasRec {
		c.ev.HasRec = false
		c.stepRecord(&c.ev.Rec)
		return
	}
	var r trace.Record
	c.gen.Next(&r)
	c.stepRecord(&r)
}

// stepRecord retires one materialized instruction: the body of Step,
// shared with the event path's terminating records.
func (c *Core) stepRecord(r *trace.Record) {
	c.retired++
	c.stats.Retired++
	c.clock += c.retireCost

	// Instruction fetch: one L1I access per new line (sequential
	// fetches within a line ride the same access). Fetch misses stall
	// the front end with no overlap.
	if line := r.PC >> 6; line != c.fetchLine {
		c.fetchLine = line
		reply := c.mem.Fetch(c.id, r.PC, int64(c.clock))
		if !reply.L1Hit {
			c.stats.FetchMisses++
			stall := float64(reply.Latency)
			c.clock += stall
			c.stats.StallCycles += stall
		}
	}

	switch r.Kind {
	case trace.KindBranch:
		c.stats.Branches++
		if !c.gshare.Predict(r.PC, r.Taken) {
			penalty := float64(c.gshare.Penalty())
			c.clock += penalty
			c.stats.StallCycles += penalty
		}
	case trace.KindLoad:
		c.stats.Loads++
		reply := c.mem.Access(c.id, r.Addr, false, int64(c.clock))
		if !reply.L1Hit {
			c.stats.L1Misses++
			stall := float64(reply.Latency) / c.effMLP
			c.clock += stall
			c.stats.StallCycles += stall
		}
	case trace.KindStore:
		c.stats.Stores++
		reply := c.mem.Access(c.id, r.Addr, true, int64(c.clock))
		if !reply.L1Hit {
			c.stats.L1Misses++
			stall := float64(reply.Latency) / (4 * c.effMLP)
			c.clock += stall
			c.stats.StallCycles += stall
		}
	}
}

// StepEvent advances the core by consuming the generator's
// run-length-encoded event stream, one event at a time through the
// in-place Core.ev (see its field comment for why exactly one),
// retiring instructions while the core's clock (in whole cycles, as
// Now reports it) stays at or below bound and at most maxRetire
// instructions in total. It returns the number retired — at least one
// when entered with Now() <= bound and maxRetire > 0, so a stepping
// loop that re-checks its bounds between calls always makes progress.
//
// The retired sequence is bit-identical to maxRetire (or fewer)
// per-record Step calls under the same bound: ALU runs touch no
// shared state except instruction fetches at I-line crossings, which
// StepEvent performs at the same PCs and the same clock values as
// per-record stepping, and the run's clock arithmetic is either exact
// integer math in units of retireCost (power-of-two widths with the
// clock an exact multiple of retireCost) or literally the same
// sequence of float additions (see advanceClock). Non-power-of-two
// widths take the per-record fallback below, guarded at construction
// (evExact).
func (c *Core) StepEvent(bound int64, maxRetire uint64) uint64 {
	// Clamp far-future bounds so (bound+1)*Width stays in int64; any
	// real clock is far below 2^52 cycles, so the clamp is invisible.
	if bound > 1<<52 {
		bound = 1 << 52
	}
	if !c.evExact {
		// retireCost is not exactly representable: batching the clock
		// advance would round differently than repeated addition, so
		// consume the stream one record at a time.
		var n uint64
		for n < maxRetire && c.Now() <= bound {
			c.Step()
			n++
		}
		return n
	}
	var n uint64
	for n < maxRetire && c.Now() <= bound {
		if c.ev.ALURun > 0 {
			n += c.retireALURun(&c.ev, bound, maxRetire-n)
			continue
		}
		if c.ev.HasRec {
			c.ev.HasRec = false
			c.stepRecord(&c.ev.Rec)
			n++
			continue
		}
		c.gen.NextEvent(&c.ev)
	}
	return n
}

// stepOneALU retires a single pending ALU instruction with the exact
// per-record sequence: retire slot, then the I-fetch line check (a
// fetch miss stalls the front end), then the sequential PC advance.
func (c *Core) stepOneALU(e *trace.Event) {
	c.retired++
	c.stats.Retired++
	c.clock += c.retireCost
	pc := e.ALUPC
	if line := pc >> 6; line != c.fetchLine {
		c.fetchLine = line
		reply := c.mem.Fetch(c.id, pc, int64(c.clock))
		if !reply.L1Hit {
			c.stats.FetchMisses++
			stall := float64(reply.Latency)
			c.clock += stall
			c.stats.StallCycles += stall
		}
	}
	pc += 4
	if pc >= c.codeLimit {
		pc = c.codeBase
	}
	e.ALUPC = pc
	e.ALURun--
}

// retireALURun drains e's ALU run: I-line crossings step one
// instruction at a time (their fetch can stall and move the clock past
// the bound), the sequential instructions between crossings retire as
// one arithmetic batch. Stops at the bound, the limit or the run's end.
func (c *Core) retireALURun(e *trace.Event, bound int64, limit uint64) uint64 {
	var done uint64
	for e.ALURun > 0 && done < limit && c.Now() <= bound {
		pc := e.ALUPC
		if pc>>6 != c.fetchLine {
			c.stepOneALU(e)
			done++
			continue
		}
		// Sequential instructions within the already-fetched I-line (or
		// up to the code region's wrap point): retirement slots only.
		lineEnd := (pc | 63) + 1
		if c.codeLimit < lineEnd {
			lineEnd = c.codeLimit
		}
		k := uint64(lineEnd-pc) >> 2
		if r := uint64(e.ALURun); r < k {
			k = r
		}
		if left := limit - done; left < k {
			k = left
		}
		// Slot 0 was pre-approved by the loop condition (the per-record
		// path checks the bound before each retire, not after); only the
		// remaining slots need bound checks or the grid jump.
		c.clock += c.retireCost
		j := uint64(1)
		if j < k {
			j += c.advanceClock(k-1, bound)
		}
		c.retired += j
		c.stats.Retired += j
		done += j
		e.ALURun -= int(j)
		pc += j << 2
		if pc >= c.codeLimit {
			pc = c.codeBase
		}
		e.ALUPC = pc
		if j < k {
			break // bound cut the segment short
		}
	}
	return done
}

// advanceClock advances the clock by up to k retirement slots, each
// allowed only while the pre-retirement clock satisfies Now() <= bound
// (the per-record stepping condition), and returns how many retired.
//
// When the clock is an exact multiple of retireCost = 1/Width (Width a
// power of two, so retireCost is a negative power of two), every
// repeated addition of retireCost is exact — both operands and the sum
// are multiples of 2^-log2(Width) well inside float64's 53-bit
// mantissa — so the whole advance collapses to integer arithmetic in
// units of retireCost, bit-identical to per-record stepping. A
// fractional memory stall (latency divided by a non-power-of-two
// effective MLP) leaves the clock off the retireCost grid; repeated
// addition then rounds at each step, so the fallback performs the
// per-record float additions literally.
func (c *Core) advanceClock(k uint64, bound int64) uint64 {
	w := float64(c.cfg.Width)
	t := c.clock * w // exact: w is a power of two
	if ti := int64(t); float64(ti) == t {
		// Pre-retirement clock of slot j is (ti+j)*retireCost, whose
		// whole-cycle value is (ti+j)/Width rounded toward zero; it is
		// allowed while (ti+j)/Width <= bound, i.e. j < (bound+1)*Width - ti.
		if allowed := (bound+1)*int64(c.cfg.Width) - ti; allowed < int64(k) {
			if allowed <= 0 {
				return 0
			}
			k = uint64(allowed)
		}
		c.clock += float64(k) * c.retireCost // exact: k*retireCost and the sum are on the grid
		return k
	}
	var done uint64
	for done < k && int64(c.clock) <= bound {
		c.clock += c.retireCost
		done++
	}
	return done
}

// ResetStats restarts IPC accounting and zeroes counters while keeping
// microarchitectural state (predictor, caches, clock) warm. Used at the
// end of the warm-up period.
func (c *Core) ResetStats() {
	c.snapRetired = c.retired
	c.snapClock = c.clock
	c.stats = Stats{}
}

// FastForward advances the local clock without retiring instructions
// (used to model initialisation skipping).
func (c *Core) FastForward(cycles float64) { c.clock += cycles }
