package cpu

import (
	"fmt"

	"repro/internal/trace"
)

// Config describes one core's pipeline (Table 2 of the paper).
type Config struct {
	Width         int // issue/retire width
	ROB           int // reorder buffer entries
	LSQ           int // load/store queue entries
	PipelineDepth int
	Gshare        GshareConfig
}

// DefaultConfig returns the paper's 4-wide, 7-stage configuration.
func DefaultConfig() Config {
	return Config{
		Width:         4,
		ROB:           128,
		LSQ:           48,
		PipelineDepth: 7,
		Gshare:        DefaultGshareConfig(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width <= 0 || c.ROB <= 0 || c.LSQ <= 0 || c.PipelineDepth <= 0 {
		return fmt.Errorf("cpu: non-positive config %+v", c)
	}
	return nil
}

// AccessReply is the memory hierarchy's answer to one data access.
type AccessReply struct {
	Latency int64 // total cycles from issue to data return
	L1Hit   bool
}

// MemPort is the interface the core uses to reach the memory
// hierarchy: Access for data (private L1D backed by the shared LLC),
// Fetch for instructions (private L1I backed by the same LLC). The
// simulator package provides the implementation.
type MemPort interface {
	Access(core int, addr uint64, isWrite bool, now int64) AccessReply
	Fetch(core int, pc uint64, now int64) AccessReply
}

// Core is the cycle-batched timing model of one out-of-order core
// consuming a synthetic instruction stream.
//
// Timing rules:
//   - every instruction costs one retire slot (1/Width cycles);
//   - a mispredicted branch inserts the predictor's bubble;
//   - a load that hits in the L1 is considered fully hidden by the
//     out-of-order window;
//   - a load that misses the L1 stalls retirement for
//     latency / effectiveMLP cycles, where effectiveMLP is the
//     benchmark's intrinsic memory-level parallelism clamped by the
//     LSQ and ROB capacity — the window can only overlap misses it can
//     hold;
//   - stores retire through the store buffer: an L1-missing store
//     charges a quarter of a load's exposed stall.
type Core struct {
	// Hot per-Step scalars first, so they share the struct's leading
	// cache lines.
	clock      float64 // local cycle count (monotonic, never reset)
	retired    uint64
	fetchLine  uint64  // line of the last instruction fetch
	retireCost float64 // 1/Width cycles per retired instruction, precomputed
	effMLP     float64 // effectiveMLP(), constant per benchmark, precomputed
	stats      Stats

	gshare *Gshare
	mem    MemPort
	gen    *trace.Generator
	id     int
	cfg    Config

	// Snapshots taken at the end of warm-up so that IPC and counters
	// reflect only the measured region while the clock stays monotonic
	// (the shared LLC and DRAM keep absolute timestamps).
	snapClock   float64
	snapRetired uint64
}

// Stats aggregates per-core execution counters.
type Stats struct {
	Retired     uint64
	Loads       uint64
	Stores      uint64
	Branches    uint64
	L1Misses    uint64
	FetchMisses uint64 // instruction fetches missing the L1I
	StallCycles float64
}

// NewCore builds a core with the given id, consuming gen and accessing
// memory through mem. It panics on invalid configuration.
func NewCore(id int, cfg Config, gen *trace.Generator, mem MemPort) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Core{
		id:         id,
		cfg:        cfg,
		gshare:     NewGshare(cfg.Gshare),
		gen:        gen,
		mem:        mem,
		retireCost: 1 / float64(cfg.Width),
	}
	c.effMLP = c.effectiveMLP()
	return c
}

// ID returns the core's identifier.
func (c *Core) ID() int { return c.id }

// Now returns the core's local clock in whole cycles.
func (c *Core) Now() int64 { return int64(c.clock) }

// Retired returns instructions retired since the last ResetStats.
func (c *Core) Retired() uint64 { return c.retired - c.snapRetired }

// IPC returns retired instructions per cycle since the last ResetStats.
func (c *Core) IPC() float64 {
	cycles := c.clock - c.snapClock
	if cycles <= 0 {
		return 0
	}
	return float64(c.Retired()) / cycles
}

// MeasuredCycles returns cycles elapsed since the last ResetStats.
func (c *Core) MeasuredCycles() float64 { return c.clock - c.snapClock }

// Stats returns the core's counters.
func (c *Core) Stats() Stats { return c.stats }

// Predictor exposes the branch predictor (for reporting).
func (c *Core) Predictor() *Gshare { return c.gshare }

// effectiveMLP clamps the benchmark's intrinsic miss parallelism by the
// window resources: the LSQ bounds in-flight memory operations and the
// ROB bounds how far ahead the window can run to expose them.
func (c *Core) effectiveMLP() float64 {
	mlp := c.gen.MLP()
	if lim := float64(c.cfg.LSQ) / 8; mlp > lim {
		mlp = lim
	}
	if lim := float64(c.cfg.ROB) / 32; mlp > lim {
		mlp = lim
	}
	if mlp < 1 {
		mlp = 1
	}
	return mlp
}

// Step consumes and retires one instruction, advancing the local clock.
//
// Records are consumed one at a time, deliberately: a per-record pull
// keeps the generator's ALU-bound work interleaved with the memory-
// bound cache-model calls below, where the out-of-order hardware
// overlaps the two. Prefetching a chunk of records ahead of time was
// implemented and measured 4-10% slower end-to-end at every chunk size
// (see DESIGN.md §2) because the burst serialises against the
// simulator's stalls instead of hiding under them.
func (c *Core) Step() {
	var r trace.Record
	c.gen.Next(&r)
	c.retired++
	c.stats.Retired++
	c.clock += c.retireCost

	// Instruction fetch: one L1I access per new line (sequential
	// fetches within a line ride the same access). Fetch misses stall
	// the front end with no overlap.
	if line := r.PC >> 6; line != c.fetchLine {
		c.fetchLine = line
		reply := c.mem.Fetch(c.id, r.PC, int64(c.clock))
		if !reply.L1Hit {
			c.stats.FetchMisses++
			stall := float64(reply.Latency)
			c.clock += stall
			c.stats.StallCycles += stall
		}
	}

	switch r.Kind {
	case trace.KindBranch:
		c.stats.Branches++
		if !c.gshare.Predict(r.PC, r.Taken) {
			penalty := float64(c.gshare.Penalty())
			c.clock += penalty
			c.stats.StallCycles += penalty
		}
	case trace.KindLoad:
		c.stats.Loads++
		reply := c.mem.Access(c.id, r.Addr, false, int64(c.clock))
		if !reply.L1Hit {
			c.stats.L1Misses++
			stall := float64(reply.Latency) / c.effMLP
			c.clock += stall
			c.stats.StallCycles += stall
		}
	case trace.KindStore:
		c.stats.Stores++
		reply := c.mem.Access(c.id, r.Addr, true, int64(c.clock))
		if !reply.L1Hit {
			c.stats.L1Misses++
			stall := float64(reply.Latency) / (4 * c.effMLP)
			c.clock += stall
			c.stats.StallCycles += stall
		}
	}
}

// ResetStats restarts IPC accounting and zeroes counters while keeping
// microarchitectural state (predictor, caches, clock) warm. Used at the
// end of the warm-up period.
func (c *Core) ResetStats() {
	c.snapRetired = c.retired
	c.snapClock = c.clock
	c.stats = Stats{}
}

// FastForward advances the local clock without retiring instructions
// (used to model initialisation skipping).
func (c *Core) FastForward(cycles float64) { c.clock += cycles }
