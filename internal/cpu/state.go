package cpu

import (
	"fmt"

	"repro/internal/trace"
)

// Snapshot/restore layer (DESIGN.md §14). A core's dynamic state is
// its clock, retirement counters, the one in-flight event being
// consumed in place, the warm-up snapshots, the predictor's tables and
// the trace generator's walk. Everything else (retireCost, effMLP,
// code bounds, config) is derived at construction from the same
// RunConfig a restored run rebuilds, so only dynamic state is
// serialized. The clock is a float64 and JSON round-trips float64
// exactly (Go marshals the shortest decimal that parses back to the
// same bits), so off-grid fractional-MLP clocks survive verbatim.

// GshareState is the dynamic state of a Gshare predictor.
type GshareState struct {
	History uint64
	PHT     []uint8
	BTBTags []uint64
	BTBLRU  []uint64
	Clock   uint64
	Stats   BranchStats
}

// State returns a deep copy of the predictor's dynamic state.
func (g *Gshare) State() *GshareState {
	return &GshareState{
		History: g.history,
		PHT:     append([]uint8(nil), g.pht...),
		BTBTags: append([]uint64(nil), g.btbTags...),
		BTBLRU:  append([]uint64(nil), g.btbLRU...),
		Clock:   g.clock,
		Stats:   g.stats,
	}
}

// Restore overwrites the predictor's dynamic state with st.
func (g *Gshare) Restore(st *GshareState) error {
	if len(st.PHT) != len(g.pht) || len(st.BTBTags) != len(g.btbTags) ||
		len(st.BTBLRU) != len(g.btbLRU) {
		return fmt.Errorf("gshare: snapshot geometry mismatch (pht %d/%d, btb %d/%d)",
			len(st.PHT), len(g.pht), len(st.BTBTags), len(g.btbTags))
	}
	g.history = st.History
	copy(g.pht, st.PHT)
	copy(g.btbTags, st.BTBTags)
	copy(g.btbLRU, st.BTBLRU)
	g.clock = st.Clock
	g.stats = st.Stats
	return nil
}

// State is the complete dynamic state of a Core, including its
// predictor and trace generator (the core owns the generator's
// consumption position, so the two checkpoint as one unit).
type State struct {
	Clock       float64
	Retired     uint64
	FetchLine   uint64
	Ev          trace.Event
	Stats       Stats
	SnapClock   float64
	SnapRetired uint64
	Gshare      *GshareState
	Gen         *trace.State
}

// State returns a deep copy of the core's dynamic state.
func (c *Core) State() *State {
	return &State{
		Clock:       c.clock,
		Retired:     c.retired,
		FetchLine:   c.fetchLine,
		Ev:          c.ev,
		Stats:       c.stats,
		SnapClock:   c.snapClock,
		SnapRetired: c.snapRetired,
		Gshare:      c.gshare.State(),
		Gen:         c.gen.State(),
	}
}

// Restore overwrites the core's dynamic state with st. The receiver
// must have been built with the same config, generator config and
// memory port wiring the snapshot was taken under.
func (c *Core) Restore(st *State) error {
	if st.Gshare == nil || st.Gen == nil {
		return fmt.Errorf("cpu: core %d snapshot missing predictor or generator state", c.id)
	}
	if err := c.gshare.Restore(st.Gshare); err != nil {
		return fmt.Errorf("cpu: core %d: %w", c.id, err)
	}
	if err := c.gen.Restore(st.Gen); err != nil {
		return fmt.Errorf("cpu: core %d: %w", c.id, err)
	}
	c.clock = st.Clock
	c.retired = st.Retired
	c.fetchLine = st.FetchLine
	c.ev = st.Ev
	c.stats = st.Stats
	c.snapClock = st.SnapClock
	c.snapRetired = st.SnapRetired
	return nil
}
