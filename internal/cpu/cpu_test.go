package cpu

import (
	"math"
	"testing"

	"repro/internal/trace"
)

// fixedMem is a MemPort with constant behaviour for testing.
type fixedMem struct {
	latency int64
	l1Hit   bool
	calls   int
}

func (m *fixedMem) Access(core int, addr uint64, isWrite bool, now int64) AccessReply {
	m.calls++
	return AccessReply{Latency: m.latency, L1Hit: m.l1Hit}
}

// Fetch always hits so data-side timing tests stay pure.
func (m *fixedMem) Fetch(core int, pc uint64, now int64) AccessReply {
	return AccessReply{Latency: 2, L1Hit: true}
}

func genConfig(memFrac, branchFrac float64) trace.Config {
	return trace.Config{
		MemFrac:     memFrac,
		StoreFrac:   0.3,
		BranchFrac:  branchFrac,
		BranchNoise: 0,
		StreamFrac:  1,
		LineBytes:   64,
		MLP:         2,
		Seed:        1,
	}
}

func TestGsharePredictsStablePattern(t *testing.T) {
	g := NewGshare(DefaultGshareConfig())
	// Always-taken branch becomes perfectly predicted after warm-up.
	pc := uint64(0x400100)
	for i := 0; i < 1000; i++ {
		g.Predict(pc, true)
	}
	before := g.Stats().Mispredicts
	for i := 0; i < 1000; i++ {
		g.Predict(pc, true)
	}
	if got := g.Stats().Mispredicts - before; got != 0 {
		t.Fatalf("%d mispredicts on a saturated always-taken branch", got)
	}
}

func TestGshareRandomPatternMispredicts(t *testing.T) {
	g := NewGshare(DefaultGshareConfig())
	state := uint64(12345)
	for i := 0; i < 20000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		g.Predict(0x400100, state>>63 == 1)
	}
	if rate := g.MispredictRate(); rate < 0.2 {
		t.Fatalf("mispredict rate on random outcomes = %v, want >= 0.2", rate)
	}
}

func TestGshareBTBMissCountsAsMispredict(t *testing.T) {
	g := NewGshare(DefaultGshareConfig())
	// First taken encounter of a PC misses the BTB.
	g.Predict(0x400100, true)
	if g.Stats().BTBMisses != 1 || g.Stats().Mispredicts != 1 {
		t.Fatalf("stats = %+v, want 1 BTB miss and 1 mispredict", g.Stats())
	}
}

func TestGshareMispredictRateEmpty(t *testing.T) {
	g := NewGshare(DefaultGshareConfig())
	if g.MispredictRate() != 0 {
		t.Fatal("empty predictor should report 0 rate")
	}
}

func TestCoreALUOnlyIPCEqualsWidth(t *testing.T) {
	gen := trace.NewGenerator(genConfig(0, 0))
	mem := &fixedMem{l1Hit: true}
	// All-ALU workload must hit exactly IPC = Width.
	core := NewCore(0, DefaultConfig(), gen, mem)
	for i := 0; i < 10000; i++ {
		core.Step()
	}
	if got := core.IPC(); math.Abs(got-4) > 0.01 {
		t.Fatalf("ALU-only IPC = %v, want 4", got)
	}
	if mem.calls != 0 {
		t.Fatal("ALU instructions accessed memory")
	}
}

func TestCoreMemoryStallsLowerIPC(t *testing.T) {
	genHit := trace.NewGenerator(genConfig(0.3, 0))
	hitCore := NewCore(0, DefaultConfig(), genHit, &fixedMem{l1Hit: true})
	genMiss := trace.NewGenerator(genConfig(0.3, 0))
	missCore := NewCore(0, DefaultConfig(), genMiss, &fixedMem{l1Hit: false, latency: 400})
	for i := 0; i < 20000; i++ {
		hitCore.Step()
		missCore.Step()
	}
	if missCore.IPC() >= hitCore.IPC()/4 {
		t.Fatalf("miss-bound IPC %v not much lower than hit-bound %v",
			missCore.IPC(), hitCore.IPC())
	}
}

func TestCoreL1HitFullyHidden(t *testing.T) {
	gen := trace.NewGenerator(genConfig(0.5, 0))
	core := NewCore(0, DefaultConfig(), gen, &fixedMem{l1Hit: true, latency: 2})
	for i := 0; i < 10000; i++ {
		core.Step()
	}
	if got := core.IPC(); math.Abs(got-4) > 0.01 {
		t.Fatalf("L1-hit IPC = %v, want 4 (hidden by the window)", got)
	}
}

func TestCoreBranchPenalty(t *testing.T) {
	cfg := genConfig(0, 0.5)
	cfg.BranchNoise = 1 // fully random outcomes: heavy mispredicts
	gen := trace.NewGenerator(cfg)
	core := NewCore(0, DefaultConfig(), gen, &fixedMem{l1Hit: true})
	for i := 0; i < 20000; i++ {
		core.Step()
	}
	if core.IPC() > 1.5 {
		t.Fatalf("random-branch IPC = %v, want well under width", core.IPC())
	}
	if core.Stats().Branches == 0 || core.Predictor().Stats().Mispredicts == 0 {
		t.Fatal("branch statistics not recorded")
	}
}

func TestCoreMLPReducesStall(t *testing.T) {
	mk := func(mlp float64) *Core {
		cfg := genConfig(0.4, 0)
		cfg.MLP = mlp
		return NewCore(0, DefaultConfig(), trace.NewGenerator(cfg),
			&fixedMem{l1Hit: false, latency: 400})
	}
	low, high := mk(1), mk(4)
	for i := 0; i < 20000; i++ {
		low.Step()
		high.Step()
	}
	if high.IPC() <= low.IPC() {
		t.Fatalf("MLP=4 IPC %v not above MLP=1 IPC %v", high.IPC(), low.IPC())
	}
}

func TestCoreResetStats(t *testing.T) {
	gen := trace.NewGenerator(genConfig(0.3, 0.1))
	core := NewCore(0, DefaultConfig(), gen, &fixedMem{l1Hit: false, latency: 100})
	for i := 0; i < 5000; i++ {
		core.Step()
	}
	clockBefore := core.Now()
	core.ResetStats()
	if core.Retired() != 0 || core.IPC() != 0 {
		t.Fatal("ResetStats did not restart accounting")
	}
	if core.Now() != clockBefore {
		t.Fatal("ResetStats must not rewind the clock")
	}
	for i := 0; i < 5000; i++ {
		core.Step()
	}
	if core.Retired() != 5000 {
		t.Fatalf("Retired = %d, want 5000", core.Retired())
	}
	if core.MeasuredCycles() <= 0 {
		t.Fatal("MeasuredCycles must be positive after stepping")
	}
}

func TestCoreStoresCheaperThanLoads(t *testing.T) {
	mkCore := func(storeFrac float64) *Core {
		cfg := genConfig(0.4, 0)
		cfg.StoreFrac = storeFrac
		return NewCore(0, DefaultConfig(), trace.NewGenerator(cfg),
			&fixedMem{l1Hit: false, latency: 400})
	}
	loads, stores := mkCore(0), mkCore(1)
	for i := 0; i < 20000; i++ {
		loads.Step()
		stores.Step()
	}
	if stores.IPC() <= loads.IPC() {
		t.Fatalf("store-heavy IPC %v should beat load-heavy IPC %v",
			stores.IPC(), loads.IPC())
	}
}

func TestConfigValidate(t *testing.T) {
	if DefaultConfig().Validate() != nil {
		t.Fatal("default config should validate")
	}
	bad := DefaultConfig()
	bad.Width = 0
	if bad.Validate() == nil {
		t.Fatal("zero width should fail")
	}
}

func TestNewCorePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCore with bad config did not panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.ROB = 0
	NewCore(0, cfg, trace.NewGenerator(genConfig(0, 0)), &fixedMem{})
}

func TestFastForward(t *testing.T) {
	gen := trace.NewGenerator(genConfig(0, 0))
	core := NewCore(0, DefaultConfig(), gen, &fixedMem{})
	core.FastForward(1000)
	if core.Now() != 1000 {
		t.Fatalf("Now = %d after FastForward(1000)", core.Now())
	}
}

// fetchMem misses the L1I every call but hits all data accesses.
type fetchMem struct{ fetches int }

func (m *fetchMem) Access(core int, addr uint64, isWrite bool, now int64) AccessReply {
	return AccessReply{Latency: 2, L1Hit: true}
}

func (m *fetchMem) Fetch(core int, pc uint64, now int64) AccessReply {
	m.fetches++
	return AccessReply{Latency: 17, L1Hit: false}
}

func TestCoreFetchMissesStallFrontEnd(t *testing.T) {
	cfg := genConfig(0, 0.3)
	cfg.BranchNoise = 0
	cfg.CodeLines = 64 // jumps land on new lines often
	gen := trace.NewGenerator(cfg)
	core := NewCore(0, DefaultConfig(), gen, &fetchMem{})
	for i := 0; i < 20000; i++ {
		core.Step()
	}
	if core.Stats().FetchMisses == 0 {
		t.Fatal("no fetch misses recorded")
	}
	// Fetch stalls must push IPC well below width.
	if core.IPC() > 3 {
		t.Fatalf("IPC = %v despite constant fetch misses", core.IPC())
	}
}

func TestCoreSequentialFetchCoalesces(t *testing.T) {
	// Straight-line code (no branches): one fetch per 16 instructions
	// (64B line / 4B instructions).
	cfg := genConfig(0, 0)
	cfg.CodeLines = 1024
	gen := trace.NewGenerator(cfg)
	m := &fetchMem{}
	core := NewCore(0, DefaultConfig(), gen, m)
	const n = 16000
	for i := 0; i < n; i++ {
		core.Step()
	}
	if m.fetches > n/16+2 || m.fetches < n/16-2 {
		t.Fatalf("fetches = %d, want ~%d (one per line)", m.fetches, n/16)
	}
}
