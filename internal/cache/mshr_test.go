package cache

import "testing"

func TestMSHRAllocateAndRetire(t *testing.T) {
	m := NewMSHRFile(4)
	start, coalesced := m.Allocate(100, 0, 400)
	if start != 0 || coalesced {
		t.Fatalf("Allocate = (%d,%v), want (0,false)", start, coalesced)
	}
	if occ := m.Occupancy(10); occ != 1 {
		t.Fatalf("Occupancy = %d, want 1", occ)
	}
	if occ := m.Occupancy(400); occ != 0 {
		t.Fatalf("Occupancy after completion = %d, want 0", occ)
	}
}

func TestMSHRCoalesce(t *testing.T) {
	m := NewMSHRFile(4)
	m.Allocate(7, 0, 400)
	start, coalesced := m.Allocate(7, 10, 350)
	if !coalesced || start != 10 {
		t.Fatalf("Allocate same line = (%d,%v), want coalesced at 10", start, coalesced)
	}
	if m.Occupancy(11) != 1 {
		t.Fatal("coalesced miss created a second entry")
	}
	if m.Stats().Coalesced != 1 {
		t.Fatalf("Coalesced = %d, want 1", m.Stats().Coalesced)
	}
}

func TestMSHRCoalesceKeepsLaterCompletion(t *testing.T) {
	m := NewMSHRFile(2)
	m.Allocate(7, 0, 400)
	m.Allocate(7, 10, 500) // later completion wins
	if m.Occupancy(450) != 1 {
		t.Fatal("entry retired before its extended completion time")
	}
	if m.Occupancy(500) != 0 {
		t.Fatal("entry survived past completion")
	}
}

func TestMSHRFullStall(t *testing.T) {
	m := NewMSHRFile(2)
	m.Allocate(1, 0, 100)
	m.Allocate(2, 0, 200)
	start, _ := m.Allocate(3, 10, 300)
	if start != 100 {
		t.Fatalf("stalled start = %d, want 100 (earliest retirement)", start)
	}
	if m.Stats().FullStalls != 1 {
		t.Fatalf("FullStalls = %d, want 1", m.Stats().FullStalls)
	}
}

func TestMSHRZeroCapacityClamped(t *testing.T) {
	m := NewMSHRFile(0)
	if m.Capacity() != 1 {
		t.Fatalf("Capacity = %d, want clamp to 1", m.Capacity())
	}
}

func TestMSHRReset(t *testing.T) {
	m := NewMSHRFile(4)
	m.Allocate(1, 0, 100)
	m.Reset()
	if m.Occupancy(0) != 0 || m.Stats().Allocations != 0 {
		t.Fatal("Reset did not clear state")
	}
}
