// Package cache implements the set-associative cache substrate used for
// the private L1 caches and the shared last-level cache (LLC) in the
// Cooperative Partitioning reproduction.
//
// The cache is a mechanics-only model: it stores tags, per-block dirty
// bits, per-block owner IDs (the two extra bits per tag entry described
// in Section 2.5 of the paper) and LRU recency state. Policy —
// which ways a core may consult, which block is victimised, when blocks
// are flushed — is supplied by the caller through way masks and victim
// selectors, so the same substrate serves the Unmanaged, Fair Share,
// Dynamic CPE, UCP and Cooperative Partitioning schemes.
//
// Internally the state is laid out struct-of-arrays, mirroring the
// paper's own split between the tag array and the 2-bit-per-tag
// partitioning metadata (Section 2.5): a dense tags slice, one
// valid/dirty bitmask word per set, and separate owner and recency
// slices. The per-access hot path (Probe, Victim) therefore touches
// only the tags plus one valid word — a validity test is a bit test,
// and the invalid-way scan in Victim is a single trailing-zeros
// instruction — instead of striding across ~40-byte Block structs.
// The Block type survives as the assembled per-way view returned to
// callers; see DESIGN.md §2 for the layout invariants.
//
// The state is grouped into Config.Banks address-interleaved banks
// (banked.go); Banks <= 1 keeps the single monolithic array layout and
// is bit-identical to the pre-banking substrate (DESIGN.md §9).
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/umon"
)

// Addr is a byte address in the simulated machine.
type Addr = uint64

// LineAddr is an address shifted right by the line-offset bits; it
// uniquely identifies a cache line.
type LineAddr = uint64

// NoOwner marks a block that is valid but not attributed to any core
// (only used transiently, e.g. after an ownership hand-off).
const NoOwner = -1

// Block is one cache line's metadata, assembled on demand from the
// struct-of-arrays state. Data contents are not simulated; only the
// state needed for timing, energy and coherence-free partitioning
// decisions is kept.
type Block struct {
	Tag   uint64
	Valid bool
	Dirty bool
	Owner int    // core that inserted the block (2 bits/tag in the paper)
	LRU   uint64 // recency stamp; larger = more recently used
}

// Config describes the geometry and latency of a cache.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Ways      int
	Latency   int // access latency in cycles

	// Banks splits the sets into this many address-interleaved banks
	// (banked.go). 0 or 1 keeps the monolithic layout; must be a power
	// of two no larger than the set count.
	Banks int
	// BankBusyCycles enables the bank-port contention model: each bank
	// serves one access per window of this many cycles, and AcquireBank
	// charges the queueing delay. 0 (the default) disables contention
	// modelling, preserving the pre-banking timing exactly.
	BankBusyCycles int

	// SampleStride opts the cache into SMARTS-style set sampling
	// (DESIGN.md §15): only every SampleStride-th set is backed by real
	// storage, selected by the same address-interleaved mask as UMON's
	// dynamic set sampling (umon.SetSampler — one audited mapping for
	// the ATDs and the LLC). 0 or 1 disables sampling; otherwise the
	// stride must be a power of two dividing the set count. Callers
	// must present only sampled sets (Sampled reports membership) and
	// every statistics increment is scaled by the stride, so the
	// counters estimate the full cache from its sampled 1/K subset.
	SampleStride int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int {
	return c.SizeBytes / (c.LineBytes * c.Ways)
}

// Validate checks that the configuration is internally consistent.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry %d/%d/%d",
			c.Name, c.SizeBytes, c.LineBytes, c.Ways)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %q: line size %d is not a power of two", c.Name, c.LineBytes)
	}
	s := c.Sets()
	if s <= 0 || s&(s-1) != 0 {
		return fmt.Errorf("cache %q: set count %d is not a positive power of two", c.Name, s)
	}
	if c.Ways > 64 {
		return fmt.Errorf("cache %q: %d ways exceed the 64-way mask limit", c.Name, c.Ways)
	}
	rows := s
	if k := c.SampleStride; k > 1 {
		if k&(k-1) != 0 {
			return fmt.Errorf("cache %q: sample stride %d is not a power of two", c.Name, k)
		}
		if k > s {
			return fmt.Errorf("cache %q: sample stride %d exceeds %d sets", c.Name, k, s)
		}
		rows = s / k
	}
	if b := c.Banks; b > 1 {
		if b&(b-1) != 0 {
			return fmt.Errorf("cache %q: %d banks is not a power of two", c.Name, b)
		}
		if b > rows {
			return fmt.Errorf("cache %q: %d banks exceed %d sampled sets", c.Name, b, rows)
		}
	}
	if c.BankBusyCycles < 0 {
		return fmt.Errorf("cache %q: negative bank busy cycles %d", c.Name, c.BankBusyCycles)
	}
	return nil
}

// Cache is a set-associative cache. It is not safe for concurrent use;
// the simulator drives it from a single goroutine.
//
// Layout invariants (struct-of-arrays, banked, optionally sampled):
//   - with set sampling, global set s maps to dense sample row
//     r = s >> log2(SampleStride) (only multiples of the stride are
//     presented); without sampling r = s. The rows are interleaved
//     across the banks: row r lives in bank r & (Banks-1) at local row
//     r >> log2(Banks);
//   - within a bank, tags, owners and lru are localSets*ways long,
//     row-major by local set; valid and dirty hold one bitmask word per
//     local set (bit w = way w; Ways <= 64 is enforced by
//     Config.Validate);
//   - dirty is always a subset of valid;
//   - an invalid way has tag 0, owner NoOwner and lru 0, exactly the
//     state a zero-value or invalidated Block had in the old
//     array-of-structs layout.
type Cache struct {
	cfg         Config
	banks       []bank
	numSets     int
	ways        int
	idxMask     uint64
	offBits     uint
	setBits     uint    // log2(numSets), hoisted out of TagOf/LineFrom
	bankMask    uint64  // Banks-1: sample row -> bank
	bankShift   uint    // log2(Banks): sample row -> local row
	allMask     uint64  // mask with every way enabled, precomputed
	clock       uint64  // global recency counter
	bankFree    []int64 // per bank: cycle its port frees (contention model)
	bankBusyCyc int64   // port occupancy per access; 0 = unmodelled
	stats       Stats

	// Set-sampling state (SampleStride > 1; zero values otherwise, so
	// the routing below degenerates to the unsampled layout exactly).
	sampler     umon.SetSampler
	sampleShift uint   // log2(SampleStride): global set -> sample row
	sampleStep  int    // SampleStride, the loop stride over global sets
	weight      uint64 // stats scale factor: true Sets/SampledSets ratio
}

// New constructs a cache from cfg. It panics on an invalid
// configuration: geometry is fixed at build time by the experiment
// definitions, so a bad config is a programming error, not input error.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.Sets()
	nb := cfg.bankCount()
	mask, shift := cfg.bankGeometry()
	sampler := umon.NewSetSampler(numSets, cfg.SampleStride)
	c := &Cache{
		cfg:         cfg,
		banks:       make([]bank, nb),
		numSets:     numSets,
		ways:        cfg.Ways,
		idxMask:     uint64(numSets - 1),
		offBits:     uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setBits:     uint(bits.TrailingZeros(uint(numSets))),
		bankMask:    mask,
		bankShift:   shift,
		bankBusyCyc: int64(cfg.BankBusyCycles),
		sampler:     sampler,
		sampleShift: uint(bits.TrailingZeros(uint(sampler.Stride()))),
		sampleStep:  sampler.Stride(),
		weight:      uint64(sampler.Stride()),
	}
	for i := range c.banks {
		c.banks[i] = newBank(sampler.Rows()/nb, cfg.Ways)
	}
	if c.bankBusyCyc > 0 {
		c.bankFree = make([]int64, nb)
	}
	if cfg.Ways == 64 {
		c.allMask = ^uint64(0)
	} else {
		c.allMask = (uint64(1) << uint(cfg.Ways)) - 1
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets of the full (nominal) geometry.
func (c *Cache) NumSets() int { return c.numSets }

// SampledSets returns how many sets are backed by real storage: the
// full set count without sampling, NumSets/SampleStride with it.
func (c *Cache) SampledSets() int { return c.sampler.Rows() }

// SampleStride returns the effective sampling stride (1 = unsampled).
func (c *Cache) SampleStride() int { return c.sampler.Stride() }

// SampleShift returns log2(SampleStride): a sampled global set s packs
// into dense row s >> SampleShift, which is how per-set caller state
// (takeover bit vectors, transition progress) is indexed.
func (c *Cache) SampleShift() uint { return c.sampleShift }

// Sampled reports whether a global set is backed by real storage.
// Callers must gate every per-set operation on it when sampling is on.
func (c *Cache) Sampled(set int) bool { return c.sampler.Sampled(set) }

// Sampler returns the cache's set-sampling map (the identity sampler
// when sampling is off), so monitors can adopt the same selection.
func (c *Cache) Sampler() umon.SetSampler { return c.sampler }

// SampleWeight returns the factor by which per-event statistics are
// scaled under sampling: the true Sets/SampledSets ratio (1 when off).
// Callers maintaining their own counters from per-access events must
// apply the same weight to stay commensurate with the cache's Stats.
func (c *Cache) SampleWeight() uint64 { return c.weight }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Latency returns the configured access latency in cycles.
func (c *Cache) Latency() int { return c.cfg.Latency }

// Stats returns a pointer to the cache's statistics counters.
func (c *Cache) Stats() *Stats { return &c.stats }

// Line converts a byte address to a line address.
func (c *Cache) Line(addr Addr) LineAddr { return addr >> c.offBits }

// Index returns the set index for a line address.
func (c *Cache) Index(line LineAddr) int { return int(line & c.idxMask) }

// TagOf returns the tag for a line address.
func (c *Cache) TagOf(line LineAddr) uint64 { return line >> c.setBits }

// LineFrom reconstructs a line address from a set index and tag.
func (c *Cache) LineFrom(set int, tag uint64) LineAddr {
	return tag<<c.setBits | uint64(set)
}

// Block assembles a copy of the block at (set, way) for inspection.
func (c *Cache) Block(set, way int) Block {
	bk, ls := c.at(set)
	i := ls*c.ways + way
	bit := uint64(1) << uint(way)
	return Block{
		Tag:   bk.tags[i],
		Valid: bk.valid[ls]&bit != 0,
		Dirty: bk.dirty[ls]&bit != 0,
		Owner: int(bk.owners[i]),
		LRU:   bk.lru[i],
	}
}

// ValidAt reports whether the block at (set, way) is valid. It is a
// single bit test; callers that need only one field should prefer the
// *At accessors over assembling a whole Block.
func (c *Cache) ValidAt(set, way int) bool {
	bk, ls := c.at(set)
	return bk.valid[ls]&(1<<uint(way)) != 0
}

// OwnerAt returns the owner of the block at (set, way).
func (c *Cache) OwnerAt(set, way int) int {
	bk, ls := c.at(set)
	return int(bk.owners[ls*c.ways+way])
}

// LRUAt returns the recency stamp of the block at (set, way).
func (c *Cache) LRUAt(set, way int) uint64 {
	bk, ls := c.at(set)
	return bk.lru[ls*c.ways+way]
}

// AllMask returns the way mask with every way enabled.
func (c *Cache) AllMask() uint64 { return c.allMask }

// Probe searches the ways selected by mask for the tag of line. It
// returns the hit way and true, or -1 and false. Probe does not update
// recency state; callers that want a full access should use Access.
//
// Only valid masked ways are visited (ascending, matching the old
// array-of-structs walk): the valid word prunes empty ways before any
// tag is read, so the scan is a dense tag compare. The dynamic-energy
// model still charges the popcount of mask — the hardware enables that
// many tag ways regardless of how many the simulator's pruned walk
// actually reads — which the schemes compute from mask, not from this
// walk.
func (c *Cache) Probe(set int, tag uint64, mask uint64) (int, bool) {
	row := set >> c.sampleShift
	bk := &c.banks[uint64(row)&c.bankMask]
	ls := row >> c.bankShift
	base := ls * c.ways
	tags := bk.tags[base : base+c.ways]
	for m := bk.valid[ls] & mask; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if tags[w] == tag {
			return w, true
		}
	}
	return -1, false
}

// Touch marks (set, way) as most recently used.
func (c *Cache) Touch(set, way int) {
	c.clock++
	bk, ls := c.at(set)
	bk.lru[ls*c.ways+way] = c.clock
}

// Victim returns the way to replace among the ways in mask: an invalid
// way if one exists, otherwise the least recently used way in the mask.
// It returns -1 if the mask is empty.
//
// The invalid-way scan is a single bit operation on the set's valid
// word; the LRU scan then only visits valid masked ways.
func (c *Cache) Victim(set int, mask uint64) int {
	row := set >> c.sampleShift
	bk := &c.banks[uint64(row)&c.bankMask]
	ls := row >> c.bankShift
	valid := bk.valid[ls]
	if inv := ^valid & mask; inv != 0 {
		// First invalid masked way, as in the old ascending walk.
		return bits.TrailingZeros64(inv)
	}
	best, bestLRU := -1, ^uint64(0)
	base := ls * c.ways
	lru := bk.lru[base : base+c.ways]
	for m := valid & mask; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if lru[w] < bestLRU {
			best, bestLRU = w, lru[w]
		}
	}
	return best
}

// VictimOwnedBy returns the LRU way in mask whose block is owned by
// owner, or -1 if owner has no block in the masked ways of the set.
// Invalid blocks are treated as owned by nobody.
func (c *Cache) VictimOwnedBy(set, owner int, mask uint64) int {
	bk, ls := c.at(set)
	best, bestLRU := -1, ^uint64(0)
	base := ls * c.ways
	for m := bk.valid[ls] & mask; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if int(bk.owners[base+w]) != owner {
			continue
		}
		if bk.lru[base+w] < bestLRU {
			best, bestLRU = w, bk.lru[base+w]
		}
	}
	return best
}

// CountOwned returns how many valid blocks in the masked ways of set are
// owned by owner.
func (c *Cache) CountOwned(set, owner int, mask uint64) int {
	bk, ls := c.at(set)
	n := 0
	base := ls * c.ways
	for m := bk.valid[ls] & mask; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if int(bk.owners[base+w]) == owner {
			n++
		}
	}
	return n
}

// Evicted describes a block displaced by Install or flush operations.
type Evicted struct {
	Line  LineAddr
	Dirty bool
	Owner int
	Valid bool // false if the victim way was empty
}

// InstallAt writes a new block into (set, way), returning the displaced
// block. The new block is marked most recently used.
func (c *Cache) InstallAt(set, way int, tag uint64, owner int, dirty bool) Evicted {
	bk, ls := c.at(set)
	i := ls*c.ways + way
	bit := uint64(1) << uint(way)
	ev := Evicted{
		Valid: bk.valid[ls]&bit != 0,
		Dirty: bk.dirty[ls]&bit != 0,
		Owner: int(bk.owners[i]),
	}
	if ev.Valid {
		ev.Line = c.LineFrom(set, bk.tags[i])
	}
	c.clock++
	bk.tags[i] = tag
	bk.owners[i] = int32(owner)
	bk.lru[i] = c.clock
	bk.valid[ls] |= bit
	if dirty {
		bk.dirty[ls] |= bit
	} else {
		bk.dirty[ls] &^= bit
	}
	if ev.Valid {
		c.stats.Evictions += c.weight
		if ev.Dirty {
			c.stats.DirtyEvictions += c.weight
		}
	}
	return ev
}

// MarkDirty sets the dirty bit of the block at (set, way).
func (c *Cache) MarkDirty(set, way int) {
	bk, ls := c.at(set)
	bk.dirty[ls] |= 1 << uint(way)
}

// SetOwner rewrites the owner of the block at (set, way) without
// touching recency or dirtiness. Used when ownership of a way's contents
// transfers between cores.
func (c *Cache) SetOwner(set, way, owner int) {
	bk, ls := c.at(set)
	bk.owners[ls*c.ways+way] = int32(owner)
}

// FlushBlock cleans the block at (set, way). It returns the line address
// and true if the block was valid and dirty (i.e. a writeback to memory
// is required). The block remains valid but clean.
func (c *Cache) FlushBlock(set, way int) (LineAddr, bool) {
	bk, ls := c.at(set)
	bit := uint64(1) << uint(way)
	if bk.valid[ls]&bk.dirty[ls]&bit == 0 {
		return 0, false
	}
	bk.dirty[ls] &^= bit
	c.stats.Flushes += c.weight
	return c.LineFrom(set, bk.tags[ls*c.ways+way]), true
}

// clearBlock resets (set, way) to the invalid state the zero-value
// array-of-structs layout had: tag 0, owner NoOwner, lru 0, valid and
// dirty bits cleared.
func (c *Cache) clearBlock(set, way int) {
	bk, ls := c.at(set)
	i := ls*c.ways + way
	bit := uint64(1) << uint(way)
	bk.tags[i] = 0
	bk.owners[i] = NoOwner
	bk.lru[i] = 0
	bk.valid[ls] &^= bit
	bk.dirty[ls] &^= bit
}

// InvalidateBlock invalidates the block at (set, way), returning the
// evicted metadata (callers write back dirty data themselves).
func (c *Cache) InvalidateBlock(set, way int) Evicted {
	bk, ls := c.at(set)
	i := ls*c.ways + way
	bit := uint64(1) << uint(way)
	ev := Evicted{
		Valid: bk.valid[ls]&bit != 0,
		Dirty: bk.dirty[ls]&bit != 0,
		Owner: int(bk.owners[i]),
	}
	if ev.Valid {
		ev.Line = c.LineFrom(set, bk.tags[i])
	}
	c.clearBlock(set, way)
	return ev
}

// InvalidateWay invalidates every block in the given way across all
// sets, invoking wb for each valid dirty block. This models the
// gated-Vdd power-off of a way (non-state-preserving, Section 6).
func (c *Cache) InvalidateWay(way int, wb func(LineAddr)) {
	bit := uint64(1) << uint(way)
	for s := 0; s < c.numSets; s += c.sampleStep {
		bk, ls := c.at(s)
		if bk.valid[ls]&bk.dirty[ls]&bit != 0 && wb != nil {
			wb(c.LineFrom(s, bk.tags[ls*c.ways+way]))
		}
		c.clearBlock(s, way)
	}
}

// ForEachValid calls fn for every valid block, with its set and way.
func (c *Cache) ForEachValid(fn func(set, way int, b Block)) {
	for s := 0; s < c.numSets; s += c.sampleStep {
		bk, ls := c.at(s)
		for m := bk.valid[ls]; m != 0; m &= m - 1 {
			w := bits.TrailingZeros64(m)
			fn(s, w, c.Block(s, w))
		}
	}
}

// OwnedWays returns, for the given set, the mask of ways whose valid
// block is owned by owner.
func (c *Cache) OwnedWays(set, owner int) uint64 {
	bk, ls := c.at(set)
	var mask uint64
	base := ls * c.ways
	for m := bk.valid[ls]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if int(bk.owners[base+w]) == owner {
			mask |= 1 << uint(w)
		}
	}
	return mask
}

// Access performs a simple full-mask read or write access with plain
// LRU replacement, as used by the private L1 caches: probe all ways,
// update recency on hit, replace the LRU block on miss. The returned
// Evicted describes the displaced block on a miss fill (Valid=false on
// hit). The bool reports hit/miss.
func (c *Cache) Access(line LineAddr, owner int, isWrite bool) (Evicted, bool) {
	set := c.Index(line)
	tag := c.TagOf(line)
	c.stats.Accesses += c.weight
	if way, hit := c.Probe(set, tag, c.allMask); hit {
		c.stats.Hits += c.weight
		c.Touch(set, way)
		if isWrite {
			c.MarkDirty(set, way)
		}
		return Evicted{}, true
	}
	c.stats.Misses += c.weight
	victim := c.Victim(set, c.allMask)
	ev := c.InstallAt(set, victim, tag, owner, isWrite)
	return ev, false
}

// Stats holds raw event counters for a cache.
type Stats struct {
	Accesses       uint64
	Hits           uint64
	Misses         uint64
	Evictions      uint64
	DirtyEvictions uint64
	Flushes        uint64
	BankConflicts  uint64 // accesses delayed behind a busy bank port
}

// HitRate returns hits/accesses, or 0 when no accesses occurred.
func (s *Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// MissRate returns misses/accesses, or 0 when no accesses occurred.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Reset zeroes all counters.
func (s *Stats) Reset() { *s = Stats{} }

// SetLRU overwrites the recency stamp of the block at (set, way).
// Schemes that manage the replacement stack directly (PIPP's insertion
// position and single-step promotion) use it; plain-LRU schemes never
// need to.
func (c *Cache) SetLRU(set, way int, lru uint64) {
	bk, ls := c.at(set)
	bk.lru[ls*c.ways+way] = lru
}
