// Package cache implements the set-associative cache substrate used for
// the private L1 caches and the shared last-level cache (LLC) in the
// Cooperative Partitioning reproduction.
//
// The cache is a mechanics-only model: it stores tags, per-block dirty
// bits, per-block owner IDs (the two extra bits per tag entry described
// in Section 2.5 of the paper) and LRU recency state. Policy —
// which ways a core may consult, which block is victimised, when blocks
// are flushed — is supplied by the caller through way masks and victim
// selectors, so the same substrate serves the Unmanaged, Fair Share,
// Dynamic CPE, UCP and Cooperative Partitioning schemes.
package cache

import (
	"fmt"
	"math/bits"
)

// Addr is a byte address in the simulated machine.
type Addr = uint64

// LineAddr is an address shifted right by the line-offset bits; it
// uniquely identifies a cache line.
type LineAddr = uint64

// NoOwner marks a block that is valid but not attributed to any core
// (only used transiently, e.g. after an ownership hand-off).
const NoOwner = -1

// Block is one cache line's metadata. Data contents are not simulated;
// only the state needed for timing, energy and coherence-free
// partitioning decisions is kept.
type Block struct {
	Tag   uint64
	Valid bool
	Dirty bool
	Owner int    // core that inserted the block (2 bits/tag in the paper)
	LRU   uint64 // recency stamp; larger = more recently used
}

// Config describes the geometry and latency of a cache.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Ways      int
	Latency   int // access latency in cycles
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int {
	return c.SizeBytes / (c.LineBytes * c.Ways)
}

// Validate checks that the configuration is internally consistent.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry %d/%d/%d",
			c.Name, c.SizeBytes, c.LineBytes, c.Ways)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %q: line size %d is not a power of two", c.Name, c.LineBytes)
	}
	s := c.Sets()
	if s <= 0 || s&(s-1) != 0 {
		return fmt.Errorf("cache %q: set count %d is not a positive power of two", c.Name, s)
	}
	if c.Ways > 64 {
		return fmt.Errorf("cache %q: %d ways exceed the 64-way mask limit", c.Name, c.Ways)
	}
	return nil
}

// Cache is a set-associative cache. It is not safe for concurrent use;
// the simulator drives it from a single goroutine.
type Cache struct {
	cfg     Config
	sets    []Block // numSets * ways, row-major
	numSets int
	ways    int
	idxMask uint64
	offBits uint
	allMask uint64 // mask with every way enabled, precomputed
	clock   uint64 // global recency counter
	stats   Stats
}

// New constructs a cache from cfg. It panics on an invalid
// configuration: geometry is fixed at build time by the experiment
// definitions, so a bad config is a programming error, not input error.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.Sets()
	c := &Cache{
		cfg:     cfg,
		sets:    make([]Block, numSets*cfg.Ways),
		numSets: numSets,
		ways:    cfg.Ways,
		idxMask: uint64(numSets - 1),
		offBits: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
	}
	if cfg.Ways == 64 {
		c.allMask = ^uint64(0)
	} else {
		c.allMask = (uint64(1) << uint(cfg.Ways)) - 1
	}
	for i := range c.sets {
		c.sets[i].Owner = NoOwner
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Latency returns the configured access latency in cycles.
func (c *Cache) Latency() int { return c.cfg.Latency }

// Stats returns a pointer to the cache's statistics counters.
func (c *Cache) Stats() *Stats { return &c.stats }

// Line converts a byte address to a line address.
func (c *Cache) Line(addr Addr) LineAddr { return addr >> c.offBits }

// Index returns the set index for a line address.
func (c *Cache) Index(line LineAddr) int { return int(line & c.idxMask) }

// TagOf returns the tag for a line address.
func (c *Cache) TagOf(line LineAddr) uint64 { return line >> uint(bits.TrailingZeros(uint(c.numSets))) }

// LineFrom reconstructs a line address from a set index and tag.
func (c *Cache) LineFrom(set int, tag uint64) LineAddr {
	return tag<<uint(bits.TrailingZeros(uint(c.numSets))) | uint64(set)
}

// blockAt returns the block at (set, way).
func (c *Cache) blockAt(set, way int) *Block {
	return &c.sets[set*c.ways+way]
}

// Block returns a copy of the block at (set, way) for inspection.
func (c *Cache) Block(set, way int) Block { return *c.blockAt(set, way) }

// AllMask returns the way mask with every way enabled.
func (c *Cache) AllMask() uint64 { return c.allMask }

// Probe searches the ways selected by mask for the tag of line. It
// returns the hit way and true, or -1 and false. Probe does not update
// recency state; callers that want a full access should use Access.
// The number of tags consulted equals the popcount of mask, which is
// what the dynamic-energy model charges.
func (c *Cache) Probe(set int, tag uint64, mask uint64) (int, bool) {
	base := set * c.ways
	if mask == c.allMask {
		// Full-mask fast path — every L1 access and every unpartitioned
		// LLC access takes it: scan the set's ways linearly instead of
		// iterating mask bits. Way order matches the masked walk
		// (ascending), so results are identical.
		ways := c.sets[base : base+c.ways]
		for w := range ways {
			b := &ways[w]
			if b.Valid && b.Tag == tag {
				return w, true
			}
		}
		return -1, false
	}
	for m := mask; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		b := &c.sets[base+w]
		if b.Valid && b.Tag == tag {
			return w, true
		}
	}
	return -1, false
}

// Touch marks (set, way) as most recently used.
func (c *Cache) Touch(set, way int) {
	c.clock++
	c.blockAt(set, way).LRU = c.clock
}

// Victim returns the way to replace among the ways in mask: an invalid
// way if one exists, otherwise the least recently used way in the mask.
// It returns -1 if the mask is empty.
func (c *Cache) Victim(set int, mask uint64) int {
	best, bestLRU := -1, ^uint64(0)
	base := set * c.ways
	if mask == c.allMask {
		// Full-mask fast path; see Probe. First invalid way wins, as in
		// the masked walk.
		ways := c.sets[base : base+c.ways]
		for w := range ways {
			b := &ways[w]
			if !b.Valid {
				return w
			}
			if b.LRU < bestLRU {
				best, bestLRU = w, b.LRU
			}
		}
		return best
	}
	for m := mask; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		b := &c.sets[base+w]
		if !b.Valid {
			return w
		}
		if b.LRU < bestLRU {
			best, bestLRU = w, b.LRU
		}
	}
	return best
}

// VictimOwnedBy returns the LRU way in mask whose block is owned by
// owner, or -1 if owner has no block in the masked ways of the set.
// Invalid blocks are treated as owned by nobody.
func (c *Cache) VictimOwnedBy(set, owner int, mask uint64) int {
	best, bestLRU := -1, ^uint64(0)
	base := set * c.ways
	for m := mask; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		b := &c.sets[base+w]
		if !b.Valid || b.Owner != owner {
			continue
		}
		if b.LRU < bestLRU {
			best, bestLRU = w, b.LRU
		}
	}
	return best
}

// CountOwned returns how many valid blocks in the masked ways of set are
// owned by owner.
func (c *Cache) CountOwned(set, owner int, mask uint64) int {
	n := 0
	base := set * c.ways
	for m := mask; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		b := &c.sets[base+w]
		if b.Valid && b.Owner == owner {
			n++
		}
	}
	return n
}

// Evicted describes a block displaced by Install or flush operations.
type Evicted struct {
	Line  LineAddr
	Dirty bool
	Owner int
	Valid bool // false if the victim way was empty
}

// InstallAt writes a new block into (set, way), returning the displaced
// block. The new block is marked most recently used.
func (c *Cache) InstallAt(set, way int, tag uint64, owner int, dirty bool) Evicted {
	b := c.blockAt(set, way)
	ev := Evicted{Valid: b.Valid, Dirty: b.Dirty, Owner: b.Owner}
	if b.Valid {
		ev.Line = c.LineFrom(set, b.Tag)
	}
	c.clock++
	*b = Block{Tag: tag, Valid: true, Dirty: dirty, Owner: owner, LRU: c.clock}
	if ev.Valid {
		c.stats.Evictions++
		if ev.Dirty {
			c.stats.DirtyEvictions++
		}
	}
	return ev
}

// MarkDirty sets the dirty bit of the block at (set, way).
func (c *Cache) MarkDirty(set, way int) { c.blockAt(set, way).Dirty = true }

// SetOwner rewrites the owner of the block at (set, way) without
// touching recency or dirtiness. Used when ownership of a way's contents
// transfers between cores.
func (c *Cache) SetOwner(set, way, owner int) { c.blockAt(set, way).Owner = owner }

// FlushBlock cleans the block at (set, way). It returns the line address
// and true if the block was valid and dirty (i.e. a writeback to memory
// is required). The block remains valid but clean.
func (c *Cache) FlushBlock(set, way int) (LineAddr, bool) {
	b := c.blockAt(set, way)
	if !b.Valid || !b.Dirty {
		return 0, false
	}
	b.Dirty = false
	c.stats.Flushes++
	return c.LineFrom(set, b.Tag), true
}

// InvalidateBlock invalidates the block at (set, way), returning the
// evicted metadata (callers write back dirty data themselves).
func (c *Cache) InvalidateBlock(set, way int) Evicted {
	b := c.blockAt(set, way)
	ev := Evicted{Valid: b.Valid, Dirty: b.Dirty, Owner: b.Owner}
	if b.Valid {
		ev.Line = c.LineFrom(set, b.Tag)
	}
	*b = Block{Owner: NoOwner}
	return ev
}

// InvalidateWay invalidates every block in the given way across all
// sets, invoking wb for each valid dirty block. This models the
// gated-Vdd power-off of a way (non-state-preserving, Section 6).
func (c *Cache) InvalidateWay(way int, wb func(LineAddr)) {
	for s := 0; s < c.numSets; s++ {
		b := c.blockAt(s, way)
		if b.Valid && b.Dirty && wb != nil {
			wb(c.LineFrom(s, b.Tag))
		}
		*b = Block{Owner: NoOwner}
	}
}

// ForEachValid calls fn for every valid block, with its set and way.
func (c *Cache) ForEachValid(fn func(set, way int, b Block)) {
	for s := 0; s < c.numSets; s++ {
		for w := 0; w < c.ways; w++ {
			b := c.blockAt(s, w)
			if b.Valid {
				fn(s, w, *b)
			}
		}
	}
}

// OwnedWays returns, for the given set, the mask of ways whose valid
// block is owned by owner.
func (c *Cache) OwnedWays(set, owner int) uint64 {
	var mask uint64
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		b := &c.sets[base+w]
		if b.Valid && b.Owner == owner {
			mask |= 1 << uint(w)
		}
	}
	return mask
}

// Access performs a simple full-mask read or write access with plain
// LRU replacement, as used by the private L1 caches: probe all ways,
// update recency on hit, replace the LRU block on miss. The returned
// Evicted describes the displaced block on a miss fill (Valid=false on
// hit). The bool reports hit/miss.
func (c *Cache) Access(line LineAddr, owner int, isWrite bool) (Evicted, bool) {
	set := c.Index(line)
	tag := c.TagOf(line)
	c.stats.Accesses++
	if way, hit := c.Probe(set, tag, c.AllMask()); hit {
		c.stats.Hits++
		c.Touch(set, way)
		if isWrite {
			c.MarkDirty(set, way)
		}
		return Evicted{}, true
	}
	c.stats.Misses++
	victim := c.Victim(set, c.AllMask())
	ev := c.InstallAt(set, victim, tag, owner, isWrite)
	return ev, false
}

// Stats holds raw event counters for a cache.
type Stats struct {
	Accesses       uint64
	Hits           uint64
	Misses         uint64
	Evictions      uint64
	DirtyEvictions uint64
	Flushes        uint64
}

// HitRate returns hits/accesses, or 0 when no accesses occurred.
func (s *Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// MissRate returns misses/accesses, or 0 when no accesses occurred.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Reset zeroes all counters.
func (s *Stats) Reset() { *s = Stats{} }

// SetLRU overwrites the recency stamp of the block at (set, way).
// Schemes that manage the replacement stack directly (PIPP's insertion
// position and single-step promotion) use it; plain-LRU schemes never
// need to.
func (c *Cache) SetLRU(set, way int, lru uint64) { c.blockAt(set, way).LRU = lru }
