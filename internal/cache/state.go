package cache

import "fmt"

// Snapshot/restore layer (DESIGN.md §14). State captures exactly the
// dynamic portion of a Cache — the per-bank SoA arrays, the global
// recency clock, the bank-port reservations and the counters — and
// none of the derived geometry, which Restore expects the receiver to
// already have (a restored cache is always built by New from the same
// Config, so masks, shifts and latencies are reconstructed rather than
// trusted from disk).

// BankState is one bank's SoA arrays, copied verbatim: dense
// tags/owners/lru rows plus one valid/dirty word per local set.
type BankState struct {
	Tags   []uint64
	Owners []int32
	LRU    []uint64
	Valid  []uint64
	Dirty  []uint64
}

// State is the complete dynamic state of a Cache. It serializes the
// banked layout as-is; a monolithic cache is the one-bank special case,
// so both layouts round-trip through the same struct.
type State struct {
	Banks    []BankState
	Clock    uint64
	BankFree []int64 // nil when bank contention is unmodelled
	Stats    Stats
}

// State returns a deep copy of the cache's dynamic state.
func (c *Cache) State() *State {
	st := &State{
		Banks: make([]BankState, len(c.banks)),
		Clock: c.clock,
		Stats: c.stats,
	}
	for i := range c.banks {
		bk := &c.banks[i]
		st.Banks[i] = BankState{
			Tags:   append([]uint64(nil), bk.tags...),
			Owners: append([]int32(nil), bk.owners...),
			LRU:    append([]uint64(nil), bk.lru...),
			Valid:  append([]uint64(nil), bk.valid...),
			Dirty:  append([]uint64(nil), bk.dirty...),
		}
	}
	if c.bankFree != nil {
		st.BankFree = append([]int64(nil), c.bankFree...)
	}
	return st
}

// Restore overwrites the cache's dynamic state with st. The receiver
// must have been built from the same Config the snapshot was taken
// under; geometry mismatches are rejected rather than truncated, since
// a partially applied snapshot would silently corrupt the run.
func (c *Cache) Restore(st *State) error {
	if len(st.Banks) != len(c.banks) {
		return fmt.Errorf("cache %q: snapshot has %d banks, cache has %d",
			c.cfg.Name, len(st.Banks), len(c.banks))
	}
	for i := range c.banks {
		bk := &c.banks[i]
		sb := &st.Banks[i]
		if len(sb.Tags) != len(bk.tags) || len(sb.Owners) != len(bk.owners) ||
			len(sb.LRU) != len(bk.lru) || len(sb.Valid) != len(bk.valid) ||
			len(sb.Dirty) != len(bk.dirty) {
			return fmt.Errorf("cache %q: snapshot bank %d geometry mismatch", c.cfg.Name, i)
		}
	}
	if st.BankFree != nil && len(st.BankFree) != len(c.banks) {
		return fmt.Errorf("cache %q: snapshot has %d bank-port reservations, cache has %d banks",
			c.cfg.Name, len(st.BankFree), len(c.banks))
	}
	for i := range c.banks {
		bk := &c.banks[i]
		sb := &st.Banks[i]
		copy(bk.tags, sb.Tags)
		copy(bk.owners, sb.Owners)
		copy(bk.lru, sb.LRU)
		copy(bk.valid, sb.Valid)
		copy(bk.dirty, sb.Dirty)
	}
	c.clock = st.Clock
	if c.bankFree != nil {
		if st.BankFree != nil {
			copy(c.bankFree, st.BankFree)
		} else {
			for i := range c.bankFree {
				c.bankFree[i] = 0
			}
		}
	}
	c.stats = st.Stats
	return nil
}

// MSHRState is the complete dynamic state of an MSHRFile. Entries are
// kept in slice order: retire and Allocate compact with swap-with-last,
// so the order is part of the machine state (it decides scan order and
// victim choice between tied completion times) and must survive a
// round-trip verbatim.
type MSHRState struct {
	Lines []LineAddr
	Done  []int64
	Stats MSHRStats
}

// State returns a deep copy of the file's dynamic state.
func (m *MSHRFile) State() *MSHRState {
	st := &MSHRState{
		Lines: make([]LineAddr, len(m.entries)),
		Done:  make([]int64, len(m.entries)),
		Stats: m.stats,
	}
	for i, e := range m.entries {
		st.Lines[i] = e.line
		st.Done[i] = e.done
	}
	return st
}

// Restore overwrites the file's entries and counters with st.
func (m *MSHRFile) Restore(st *MSHRState) error {
	if len(st.Lines) != len(st.Done) {
		return fmt.Errorf("mshr: snapshot has %d lines but %d completion times",
			len(st.Lines), len(st.Done))
	}
	if len(st.Lines) > m.capacity {
		return fmt.Errorf("mshr: snapshot has %d entries, file capacity is %d",
			len(st.Lines), m.capacity)
	}
	m.entries = m.entries[:0]
	for i := range st.Lines {
		m.entries = append(m.entries, mshrEntry{line: st.Lines[i], done: st.Done[i]})
	}
	m.stats = st.Stats
	return nil
}
