package cache

// Oracle equivalence test: the cache's hit/miss behaviour under plain
// LRU must match an independently-implemented reference model (a per-
// set LRU stack), access for access, over long random streams. This
// pins the substrate every scheme is built on.

import (
	"math/rand"
	"testing"
)

// oracleLRU is the reference: per-set slices kept in MRU..LRU order.
type oracleLRU struct {
	sets [][]uint64 // tags, MRU first
	ways int
}

func newOracle(sets, ways int) *oracleLRU {
	return &oracleLRU{sets: make([][]uint64, sets), ways: ways}
}

// access returns whether the tag hits in the set, updating recency.
func (o *oracleLRU) access(set int, tag uint64) bool {
	s := o.sets[set]
	for i, t := range s {
		if t == tag {
			copy(s[1:i+1], s[:i])
			s[0] = tag
			return true
		}
	}
	if len(s) == o.ways {
		s = s[:o.ways-1]
	}
	o.sets[set] = append([]uint64{tag}, s...)
	return false
}

func TestOracleEquivalenceLRU(t *testing.T) {
	for _, geom := range []struct{ sets, ways int }{
		{4, 2}, {16, 4}, {64, 8}, {8, 16},
	} {
		cfg := Config{
			Name:      "oracle",
			SizeBytes: geom.sets * geom.ways * 64,
			LineBytes: 64,
			Ways:      geom.ways,
			Latency:   1,
		}
		c := New(cfg)
		o := newOracle(geom.sets, geom.ways)
		rng := rand.New(rand.NewSource(int64(geom.sets*100 + geom.ways)))
		for i := 0; i < 50000; i++ {
			line := LineAddr(rng.Intn(geom.sets * geom.ways * 4))
			_, gotHit := c.Access(line, 0, rng.Intn(4) == 0)
			wantHit := o.access(c.Index(line), c.TagOf(line))
			if gotHit != wantHit {
				t.Fatalf("geom %dx%d, access %d (line %#x): cache hit=%v, oracle hit=%v",
					geom.sets, geom.ways, i, line, gotHit, wantHit)
			}
		}
	}
}

// The UMON ATD must agree with the same oracle on the stack property:
// HitsUpTo(ways) counts exactly the oracle's hits.
func TestOracleEquivalenceUMONTotalHits(t *testing.T) {
	const sets, ways = 16, 8
	o := newOracle(sets, ways)
	// Reuse the oracle as the ground truth for full-associativity-per-
	// set hit counts.
	hits := 0
	rng := rand.New(rand.NewSource(77))
	type access struct {
		set int
		tag uint64
	}
	var stream []access
	for i := 0; i < 30000; i++ {
		a := access{rng.Intn(sets), uint64(rng.Intn(256))}
		stream = append(stream, a)
		if o.access(a.set, a.tag) {
			hits++
		}
	}
	// Replay through the monitor.
	mon := newTestMonitor(sets, ways)
	for _, a := range stream {
		mon.Access(a.set, a.tag)
	}
	if got := mon.HitsUpTo(ways); got != uint64(hits) {
		t.Fatalf("UMON hits = %d, oracle = %d", got, hits)
	}
}

// newTestMonitor avoids an import cycle by duplicating the tiny umon
// interface needed here.
type testMonitor interface {
	Access(set int, tag uint64)
	HitsUpTo(w int) uint64
}

func newTestMonitor(sets, ways int) testMonitor {
	return &miniATD{tags: make([][]uint64, sets), ways: ways}
}

// miniATD is a second, independent LRU-stack implementation used to
// cross-check the oracle itself (three-way agreement with the cache).
type miniATD struct {
	tags [][]uint64
	ways int
	hits uint64
}

func (m *miniATD) Access(set int, tag uint64) {
	s := m.tags[set]
	for i, t := range s {
		if t == tag {
			m.hits++
			copy(s[1:i+1], s[:i])
			s[0] = tag
			return
		}
	}
	if len(s) == m.ways {
		s = s[:m.ways-1]
	}
	m.tags[set] = append([]uint64{tag}, s...)
}

func (m *miniATD) HitsUpTo(int) uint64 { return m.hits }
