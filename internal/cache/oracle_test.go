package cache

// Oracle equivalence test: the cache's hit/miss behaviour under plain
// LRU must match an independently-implemented reference model (a per-
// set LRU stack), access for access, over long random streams. This
// pins the substrate every scheme is built on.

import (
	"math/bits"
	"math/rand"
	"testing"
)

// oracleLRU is the reference: per-set slices kept in MRU..LRU order.
type oracleLRU struct {
	sets [][]uint64 // tags, MRU first
	ways int
}

func newOracle(sets, ways int) *oracleLRU {
	return &oracleLRU{sets: make([][]uint64, sets), ways: ways}
}

// access returns whether the tag hits in the set, updating recency.
func (o *oracleLRU) access(set int, tag uint64) bool {
	s := o.sets[set]
	for i, t := range s {
		if t == tag {
			copy(s[1:i+1], s[:i])
			s[0] = tag
			return true
		}
	}
	if len(s) == o.ways {
		s = s[:o.ways-1]
	}
	o.sets[set] = append([]uint64{tag}, s...)
	return false
}

func TestOracleEquivalenceLRU(t *testing.T) {
	for _, geom := range []struct{ sets, ways int }{
		{4, 2}, {16, 4}, {64, 8}, {8, 16},
	} {
		cfg := Config{
			Name:      "oracle",
			SizeBytes: geom.sets * geom.ways * 64,
			LineBytes: 64,
			Ways:      geom.ways,
			Latency:   1,
		}
		c := New(cfg)
		o := newOracle(geom.sets, geom.ways)
		rng := rand.New(rand.NewSource(int64(geom.sets*100 + geom.ways)))
		for i := 0; i < 50000; i++ {
			line := LineAddr(rng.Intn(geom.sets * geom.ways * 4))
			_, gotHit := c.Access(line, 0, rng.Intn(4) == 0)
			wantHit := o.access(c.Index(line), c.TagOf(line))
			if gotHit != wantHit {
				t.Fatalf("geom %dx%d, access %d (line %#x): cache hit=%v, oracle hit=%v",
					geom.sets, geom.ways, i, line, gotHit, wantHit)
			}
		}
	}
}

// The UMON ATD must agree with the same oracle on the stack property:
// HitsUpTo(ways) counts exactly the oracle's hits.
func TestOracleEquivalenceUMONTotalHits(t *testing.T) {
	const sets, ways = 16, 8
	o := newOracle(sets, ways)
	// Reuse the oracle as the ground truth for full-associativity-per-
	// set hit counts.
	hits := 0
	rng := rand.New(rand.NewSource(77))
	type access struct {
		set int
		tag uint64
	}
	var stream []access
	for i := 0; i < 30000; i++ {
		a := access{rng.Intn(sets), uint64(rng.Intn(256))}
		stream = append(stream, a)
		if o.access(a.set, a.tag) {
			hits++
		}
	}
	// Replay through the monitor.
	mon := newTestMonitor(sets, ways)
	for _, a := range stream {
		mon.Access(a.set, a.tag)
	}
	if got := mon.HitsUpTo(ways); got != uint64(hits) {
		t.Fatalf("UMON hits = %d, oracle = %d", got, hits)
	}
}

// newTestMonitor avoids an import cycle by duplicating the tiny umon
// interface needed here.
type testMonitor interface {
	Access(set int, tag uint64)
	HitsUpTo(w int) uint64
}

func newTestMonitor(sets, ways int) testMonitor {
	return &miniATD{tags: make([][]uint64, sets), ways: ways}
}

// miniATD is a second, independent LRU-stack implementation used to
// cross-check the oracle itself (three-way agreement with the cache).
type miniATD struct {
	tags [][]uint64
	ways int
	hits uint64
}

func (m *miniATD) Access(set int, tag uint64) {
	s := m.tags[set]
	for i, t := range s {
		if t == tag {
			m.hits++
			copy(s[1:i+1], s[:i])
			s[0] = tag
			return
		}
	}
	if len(s) == m.ways {
		s = s[:m.ways-1]
	}
	m.tags[set] = append([]uint64{tag}, s...)
}

func (m *miniATD) HitsUpTo(int) uint64 { return m.hits }

// ---- SoA vs AoS differential test ----
//
// aosCache retains the pre-refactor array-of-structs implementation as
// an executable reference model: a []Block walked linearly, exactly the
// layout the struct-of-arrays Cache replaced. Driving both with the
// same randomized operation stream (masked and full-mask probes,
// victims, installs, flushes, invalidations, owner/LRU rewrites) and
// demanding identical hit/victim/eviction streams pins the refactor's
// bit-for-bit equivalence.

type aosCache struct {
	blocks  []Block // numSets * ways, row-major
	numSets int
	ways    int
	clock   uint64
}

func newAOS(numSets, ways int) *aosCache {
	a := &aosCache{
		blocks:  make([]Block, numSets*ways),
		numSets: numSets,
		ways:    ways,
	}
	for i := range a.blocks {
		a.blocks[i].Owner = NoOwner
	}
	return a
}

func (a *aosCache) at(set, way int) *Block { return &a.blocks[set*a.ways+way] }

func (a *aosCache) probe(set int, tag, mask uint64) (int, bool) {
	for m := mask; m != 0; m &= m - 1 {
		w := trailingZeros(m)
		b := a.at(set, w)
		if b.Valid && b.Tag == tag {
			return w, true
		}
	}
	return -1, false
}

func (a *aosCache) victim(set int, mask uint64) int {
	best, bestLRU := -1, ^uint64(0)
	for m := mask; m != 0; m &= m - 1 {
		w := trailingZeros(m)
		b := a.at(set, w)
		if !b.Valid {
			return w
		}
		if b.LRU < bestLRU {
			best, bestLRU = w, b.LRU
		}
	}
	return best
}

func (a *aosCache) victimOwnedBy(set, owner int, mask uint64) int {
	best, bestLRU := -1, ^uint64(0)
	for m := mask; m != 0; m &= m - 1 {
		w := trailingZeros(m)
		b := a.at(set, w)
		if !b.Valid || b.Owner != owner {
			continue
		}
		if b.LRU < bestLRU {
			best, bestLRU = w, b.LRU
		}
	}
	return best
}

func (a *aosCache) countOwned(set, owner int, mask uint64) int {
	n := 0
	for m := mask; m != 0; m &= m - 1 {
		b := a.at(set, trailingZeros(m))
		if b.Valid && b.Owner == owner {
			n++
		}
	}
	return n
}

func (a *aosCache) ownedWays(set, owner int) uint64 {
	var mask uint64
	for w := 0; w < a.ways; w++ {
		b := a.at(set, w)
		if b.Valid && b.Owner == owner {
			mask |= 1 << uint(w)
		}
	}
	return mask
}

func (a *aosCache) installAt(set, way int, tag uint64, owner int, dirty bool) Evicted {
	b := a.at(set, way)
	ev := Evicted{Valid: b.Valid, Dirty: b.Dirty, Owner: b.Owner}
	if b.Valid {
		ev.Line = b.Tag<<uint(log2i(a.numSets)) | uint64(set)
	}
	a.clock++
	*b = Block{Tag: tag, Valid: true, Dirty: dirty, Owner: owner, LRU: a.clock}
	return ev
}

func (a *aosCache) flushBlock(set, way int) (uint64, bool) {
	b := a.at(set, way)
	if !b.Valid || !b.Dirty {
		return 0, false
	}
	b.Dirty = false
	return b.Tag<<uint(log2i(a.numSets)) | uint64(set), true
}

func (a *aosCache) invalidateBlock(set, way int) Evicted {
	b := a.at(set, way)
	ev := Evicted{Valid: b.Valid, Dirty: b.Dirty, Owner: b.Owner}
	if b.Valid {
		ev.Line = b.Tag<<uint(log2i(a.numSets)) | uint64(set)
	}
	*b = Block{Owner: NoOwner}
	return ev
}

func (a *aosCache) invalidateWay(way int) (wbs []uint64) {
	for s := 0; s < a.numSets; s++ {
		b := a.at(s, way)
		if b.Valid && b.Dirty {
			wbs = append(wbs, b.Tag<<uint(log2i(a.numSets))|uint64(s))
		}
		*b = Block{Owner: NoOwner}
	}
	return wbs
}

func trailingZeros(m uint64) int { return bits.TrailingZeros64(m) }

func log2i(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// TestDifferentialSoAvsAoS drives the SoA cache and the AoS reference
// with an identical randomized operation stream and requires identical
// observable behaviour at every step: hit ways, victim choices,
// eviction metadata, flush/invalidate outcomes and per-way state.
func TestDifferentialSoAvsAoS(t *testing.T) {
	for _, geom := range []struct{ sets, ways int }{
		{4, 2}, {16, 4}, {32, 8}, {8, 16},
	} {
		c := New(Config{
			Name:      "diff",
			SizeBytes: geom.sets * geom.ways * 64,
			LineBytes: 64,
			Ways:      geom.ways,
			Latency:   1,
		})
		a := newAOS(geom.sets, geom.ways)
		rng := rand.New(rand.NewSource(int64(geom.sets*1000 + geom.ways)))
		full := c.AllMask()
		randMask := func() uint64 {
			if rng.Intn(3) == 0 {
				return full // full-mask fast path
			}
			return rng.Uint64() & full
		}
		const ops = 60000
		for i := 0; i < ops; i++ {
			set := rng.Intn(geom.sets)
			way := rng.Intn(geom.ways)
			tag := uint64(rng.Intn(64))
			owner := rng.Intn(4)
			mask := randMask()
			fail := func(op string, got, want any) {
				t.Fatalf("geom %dx%d op %d (%s): SoA %v != AoS %v",
					geom.sets, geom.ways, i, op, got, want)
			}
			switch rng.Intn(10) {
			case 0, 1: // masked probe (+touch on hit, like a scheme access)
				gw, gh := c.Probe(set, tag, mask)
				ww, wh := a.probe(set, tag, mask)
				if gw != ww || gh != wh {
					fail("probe", []any{gw, gh}, []any{ww, wh})
				}
				if gh {
					c.Touch(set, gw)
					a.clock++
					a.at(set, gw).LRU = a.clock
				}
			case 2, 3: // victim + install (the miss-fill path)
				gv := c.Victim(set, mask)
				wv := a.victim(set, mask)
				if gv != wv {
					fail("victim", gv, wv)
				}
				if gv >= 0 {
					dirty := rng.Intn(3) == 0
					gev := c.InstallAt(set, gv, tag, owner, dirty)
					wev := a.installAt(set, gv, tag, owner, dirty)
					if gev != wev {
						fail("install-evicted", gev, wev)
					}
				}
			case 4: // mark dirty / rewrite owner on a specific way
				if rng.Intn(2) == 0 {
					if c.Block(set, way).Valid {
						c.MarkDirty(set, way)
						a.at(set, way).Dirty = true
					}
				} else {
					c.SetOwner(set, way, owner)
					a.at(set, way).Owner = owner
				}
			case 5: // flush
				gl, gwb := c.FlushBlock(set, way)
				wl, wwb := a.flushBlock(set, way)
				if gl != wl || gwb != wwb {
					fail("flush", []any{gl, gwb}, []any{wl, wwb})
				}
			case 6: // invalidate block
				gev := c.InvalidateBlock(set, way)
				wev := a.invalidateBlock(set, way)
				if gev != wev {
					fail("invalidate-evicted", gev, wev)
				}
			case 7: // owner scans
				if got, want := c.OwnedWays(set, owner), a.ownedWays(set, owner); got != want {
					fail("owned-ways", got, want)
				}
				if got, want := c.CountOwned(set, owner, mask), a.countOwned(set, owner, mask); got != want {
					fail("count-owned", got, want)
				}
				if got, want := c.VictimOwnedBy(set, owner, mask), a.victimOwnedBy(set, owner, mask); got != want {
					fail("victim-owned-by", got, want)
				}
			case 8: // SetLRU (PIPP's stack manipulation)
				lru := uint64(rng.Intn(1000))
				c.SetLRU(set, way, lru)
				a.at(set, way).LRU = lru
			case 9: // way power-off, rarely (it clears a lot of state)
				if rng.Intn(20) == 0 {
					var gwbs []uint64
					c.InvalidateWay(way, func(l LineAddr) { gwbs = append(gwbs, l) })
					wwbs := a.invalidateWay(way)
					if len(gwbs) != len(wwbs) {
						fail("invalidate-way-wbs", gwbs, wwbs)
					}
					for k := range gwbs {
						if gwbs[k] != wwbs[k] {
							fail("invalidate-way-wbs", gwbs, wwbs)
						}
					}
				}
			}
		}
		// Final sweep: every block's assembled view must match.
		for s := 0; s < geom.sets; s++ {
			for w := 0; w < geom.ways; w++ {
				got, want := c.Block(s, w), *a.at(s, w)
				if got.Valid != want.Valid || got.Dirty != want.Dirty ||
					got.Owner != want.Owner || got.LRU != want.LRU ||
					(got.Valid && got.Tag != want.Tag) {
					t.Fatalf("geom %dx%d final state (%d,%d): SoA %+v != AoS %+v",
						geom.sets, geom.ways, s, w, got, want)
				}
			}
		}
	}
}
