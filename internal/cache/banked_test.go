package cache

// Banked substrate tests: banking only regroups storage, so a cache
// with any bank count must behave bit-identically to the monolithic
// (Banks=1) cache — which the SoA-vs-AoS differential test in
// oracle_test.go in turn pins against the original array-of-structs
// layout. The contention model (AcquireBank) is the only banked
// behaviour that may differ, and only when BankBusyCycles > 0.

import (
	"math/rand"
	"testing"
)

// TestDifferentialBankedVsMonolithic drives a monolithic cache and
// banked caches (B = 2, 4, 8) with one identical randomized operation
// stream and requires identical observable behaviour at every step.
func TestDifferentialBankedVsMonolithic(t *testing.T) {
	for _, geom := range []struct{ sets, ways int }{
		{16, 4}, {32, 8}, {8, 16}, {64, 2},
	} {
		for _, banks := range []int{2, 4, 8} {
			if banks > geom.sets {
				continue
			}
			mkCfg := func(b int) Config {
				return Config{
					Name:      "banked-diff",
					SizeBytes: geom.sets * geom.ways * 64,
					LineBytes: 64,
					Ways:      geom.ways,
					Latency:   1,
					Banks:     b,
				}
			}
			mono := New(mkCfg(1))
			bkd := New(mkCfg(banks))
			if bkd.Banks() != banks {
				t.Fatalf("Banks() = %d, want %d", bkd.Banks(), banks)
			}
			rng := rand.New(rand.NewSource(int64(geom.sets*977 + geom.ways*31 + banks)))
			full := mono.AllMask()
			const ops = 40000
			for i := 0; i < ops; i++ {
				set := rng.Intn(geom.sets)
				way := rng.Intn(geom.ways)
				tag := uint64(rng.Intn(64))
				owner := rng.Intn(4)
				mask := rng.Uint64() & full
				if rng.Intn(3) == 0 {
					mask = full
				}
				fail := func(op string, got, want any) {
					t.Fatalf("geom %dx%d banks %d op %d (%s): banked %v != monolithic %v",
						geom.sets, geom.ways, banks, i, op, got, want)
				}
				switch rng.Intn(8) {
				case 0, 1:
					gw, gh := bkd.Probe(set, tag, mask)
					ww, wh := mono.Probe(set, tag, mask)
					if gw != ww || gh != wh {
						fail("probe", []any{gw, gh}, []any{ww, wh})
					}
					if gh {
						bkd.Touch(set, gw)
						mono.Touch(set, gw)
					}
				case 2, 3:
					gv := bkd.Victim(set, mask)
					wv := mono.Victim(set, mask)
					if gv != wv {
						fail("victim", gv, wv)
					}
					if gv >= 0 {
						dirty := rng.Intn(3) == 0
						gev := bkd.InstallAt(set, gv, tag, owner, dirty)
						wev := mono.InstallAt(set, gv, tag, owner, dirty)
						if gev != wev {
							fail("install-evicted", gev, wev)
						}
					}
				case 4:
					gl, gwb := bkd.FlushBlock(set, way)
					wl, wwb := mono.FlushBlock(set, way)
					if gl != wl || gwb != wwb {
						fail("flush", []any{gl, gwb}, []any{wl, wwb})
					}
				case 5:
					gev := bkd.InvalidateBlock(set, way)
					wev := mono.InvalidateBlock(set, way)
					if gev != wev {
						fail("invalidate-evicted", gev, wev)
					}
				case 6:
					if got, want := bkd.OwnedWays(set, owner), mono.OwnedWays(set, owner); got != want {
						fail("owned-ways", got, want)
					}
					if got, want := bkd.CountOwned(set, owner, mask), mono.CountOwned(set, owner, mask); got != want {
						fail("count-owned", got, want)
					}
					if got, want := bkd.VictimOwnedBy(set, owner, mask), mono.VictimOwnedBy(set, owner, mask); got != want {
						fail("victim-owned-by", got, want)
					}
				case 7:
					line := LineAddr(rng.Intn(geom.sets * geom.ways * 4))
					isWrite := rng.Intn(4) == 0
					gev, gh := bkd.Access(line, owner, isWrite)
					wev, wh := mono.Access(line, owner, isWrite)
					if gev != wev || gh != wh {
						fail("access", []any{gev, gh}, []any{wev, wh})
					}
				}
			}
			// Final sweep: every assembled block view must match, and the
			// event counters (which the energy model consumes) as well.
			for s := 0; s < geom.sets; s++ {
				for w := 0; w < geom.ways; w++ {
					if got, want := bkd.Block(s, w), mono.Block(s, w); got != want {
						t.Fatalf("geom %dx%d banks %d final state (%d,%d): banked %+v != monolithic %+v",
							geom.sets, geom.ways, banks, s, w, got, want)
					}
				}
			}
			if got, want := *bkd.Stats(), *mono.Stats(); got != want {
				t.Fatalf("geom %dx%d banks %d: stats diverged: banked %+v != monolithic %+v",
					geom.sets, geom.ways, banks, got, want)
			}
		}
	}
}

// TestAcquireBankContention pins the bank-port contention model:
// back-to-back accesses to one bank queue behind its port, accesses to
// different banks proceed in parallel, and BankBusyCycles == 0 keeps
// the pre-banking unlimited-throughput behaviour.
func TestAcquireBankContention(t *testing.T) {
	cfg := Config{
		Name: "contended", SizeBytes: 16 * 4 * 64, LineBytes: 64,
		Ways: 4, Latency: 10, Banks: 4, BankBusyCycles: 6,
	}
	c := New(cfg)
	// Sets 0 and 4 share bank 0 (address-interleaved low set bits);
	// set 1 lives in bank 1.
	if c.BankOf(0) != c.BankOf(4) || c.BankOf(0) == c.BankOf(1) {
		t.Fatalf("bank routing: BankOf(0)=%d BankOf(4)=%d BankOf(1)=%d",
			c.BankOf(0), c.BankOf(4), c.BankOf(1))
	}
	if d := c.AcquireBank(0, 100); d != 0 {
		t.Fatalf("first access delayed %d", d)
	}
	if d := c.AcquireBank(4, 100); d != 6 {
		t.Fatalf("same-bank access delayed %d, want 6", d)
	}
	if d := c.AcquireBank(1, 100); d != 0 {
		t.Fatalf("other-bank access delayed %d, want 0", d)
	}
	if d := c.AcquireBank(0, 200); d != 0 {
		t.Fatalf("idle-bank access delayed %d, want 0", d)
	}
	if got := c.Stats().BankConflicts; got != 1 {
		t.Fatalf("BankConflicts = %d, want 1", got)
	}

	// Zero busy cycles: contention is never modelled, whatever the
	// bank count — the pre-banking behaviour.
	cfg.BankBusyCycles = 0
	un := New(cfg)
	for i := 0; i < 10; i++ {
		if d := un.AcquireBank(0, 5); d != 0 {
			t.Fatalf("unmodelled bank delayed %d", d)
		}
	}
	if un.Stats().BankConflicts != 0 {
		t.Fatalf("unmodelled BankConflicts = %d", un.Stats().BankConflicts)
	}
}

// TestConfigValidateBanks pins the banked-geometry validation.
func TestConfigValidateBanks(t *testing.T) {
	base := Config{Name: "v", SizeBytes: 16 * 4 * 64, LineBytes: 64, Ways: 4, Latency: 1}
	for _, tc := range []struct {
		banks, busy int
		ok          bool
	}{
		{0, 0, true}, {1, 0, true}, {2, 0, true}, {16, 0, true},
		{3, 0, false},  // not a power of two
		{32, 0, false}, // more banks than sets
		{2, -1, false}, // negative busy window
		{4, 8, true},
	} {
		cfg := base
		cfg.Banks = tc.banks
		cfg.BankBusyCycles = tc.busy
		err := cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("Banks=%d BankBusyCycles=%d: err=%v, want ok=%v",
				tc.banks, tc.busy, err, tc.ok)
		}
	}
}
