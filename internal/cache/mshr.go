package cache

// MSHRFile models a file of miss-status holding registers. Outstanding
// misses to the same line coalesce into one entry; the file's capacity
// bounds the memory-level parallelism a core can expose, which the
// timing model uses to cap miss overlap.
//
// The simulator is cycle-batched rather than event-driven, so the MSHR
// file tracks entries by their completion time and retires them lazily
// whenever the current time is consulted.
type MSHRFile struct {
	capacity int
	entries  map[LineAddr]int64 // line -> completion time
	stats    MSHRStats
}

// MSHRStats counts MSHR file events.
type MSHRStats struct {
	Allocations uint64
	Coalesced   uint64
	FullStalls  uint64
}

// NewMSHRFile returns a file with the given number of entries.
func NewMSHRFile(capacity int) *MSHRFile {
	if capacity <= 0 {
		capacity = 1
	}
	return &MSHRFile{
		capacity: capacity,
		entries:  make(map[LineAddr]int64, capacity),
	}
}

// Capacity returns the number of registers in the file.
func (m *MSHRFile) Capacity() int { return m.capacity }

// Stats returns the file's counters.
func (m *MSHRFile) Stats() MSHRStats { return m.stats }

// retire drops entries whose completion time has passed.
func (m *MSHRFile) retire(now int64) {
	for line, done := range m.entries {
		if done <= now {
			delete(m.entries, line)
		}
	}
}

// Occupancy returns the number of live entries at time now.
func (m *MSHRFile) Occupancy(now int64) int {
	m.retire(now)
	return len(m.entries)
}

// Allocate records a miss to line that completes at done. It returns
// the time at which the request can actually be tracked (now, or later
// if the file is full and the requester must stall until the earliest
// entry retires) and whether the miss coalesced with an existing entry.
func (m *MSHRFile) Allocate(line LineAddr, now, done int64) (start int64, coalesced bool) {
	m.retire(now)
	if existing, ok := m.entries[line]; ok {
		m.stats.Coalesced++
		if existing > done {
			done = existing
		}
		m.entries[line] = done
		return now, true
	}
	start = now
	if len(m.entries) >= m.capacity {
		m.stats.FullStalls++
		earliest := int64(1<<62 - 1)
		var victim LineAddr
		for l, d := range m.entries {
			if d < earliest {
				earliest, victim = d, l
			}
		}
		delete(m.entries, victim)
		if earliest > start {
			start = earliest
		}
	}
	m.stats.Allocations++
	m.entries[line] = done
	return start, false
}

// Reset clears all entries and counters.
func (m *MSHRFile) Reset() {
	m.entries = make(map[LineAddr]int64, m.capacity)
	m.stats = MSHRStats{}
}
