package cache

// MSHRFile models a file of miss-status holding registers. Outstanding
// misses to the same line coalesce into one entry; the file's capacity
// bounds the memory-level parallelism a core can expose, which the
// timing model uses to cap miss overlap.
//
// The simulator is cycle-batched rather than event-driven, so the MSHR
// file tracks entries by their completion time and retires them lazily
// whenever the current time is consulted.
//
// Entries live in a small unordered slice rather than a map: the file
// holds at most a few dozen registers and is consulted on every L1
// miss, so the linear scans are cheaper than map hashing and — unlike
// Go map iteration — walk in a deterministic order, making the
// earliest-completion victim choice reproducible even between tied
// completion times.
type MSHRFile struct {
	capacity int
	entries  []mshrEntry // live entries, unordered
	stats    MSHRStats
}

// mshrEntry is one outstanding miss.
type mshrEntry struct {
	line LineAddr
	done int64 // completion time
}

// MSHRStats counts MSHR file events.
type MSHRStats struct {
	Allocations uint64
	Coalesced   uint64
	FullStalls  uint64
}

// NewMSHRFile returns a file with the given number of entries.
func NewMSHRFile(capacity int) *MSHRFile {
	if capacity <= 0 {
		capacity = 1
	}
	return &MSHRFile{
		capacity: capacity,
		entries:  make([]mshrEntry, 0, capacity+1),
	}
}

// Capacity returns the number of registers in the file.
func (m *MSHRFile) Capacity() int { return m.capacity }

// Stats returns the file's counters.
func (m *MSHRFile) Stats() MSHRStats { return m.stats }

// retire drops entries whose completion time has passed.
func (m *MSHRFile) retire(now int64) {
	for i := 0; i < len(m.entries); {
		if m.entries[i].done <= now {
			last := len(m.entries) - 1
			m.entries[i] = m.entries[last]
			m.entries = m.entries[:last]
		} else {
			i++
		}
	}
}

// Occupancy returns the number of live entries at time now.
func (m *MSHRFile) Occupancy(now int64) int {
	m.retire(now)
	return len(m.entries)
}

// Allocate records a miss to line that completes at done. It returns
// the time at which the request can actually be tracked (now, or later
// if the file is full and the requester must stall until the earliest
// entry retires) and whether the miss coalesced with an existing entry.
func (m *MSHRFile) Allocate(line LineAddr, now, done int64) (start int64, coalesced bool) {
	m.retire(now)
	for i := range m.entries {
		if m.entries[i].line == line {
			m.stats.Coalesced++
			if m.entries[i].done < done {
				m.entries[i].done = done
			}
			return now, true
		}
	}
	start = now
	if len(m.entries) >= m.capacity {
		m.stats.FullStalls++
		earliest, victim := int64(1<<62-1), 0
		for i := range m.entries {
			if m.entries[i].done < earliest {
				earliest, victim = m.entries[i].done, i
			}
		}
		last := len(m.entries) - 1
		m.entries[victim] = m.entries[last]
		m.entries = m.entries[:last]
		if earliest > start {
			start = earliest
		}
	}
	m.stats.Allocations++
	m.entries = append(m.entries, mshrEntry{line: line, done: done})
	return start, false
}

// Reset clears all entries and counters.
func (m *MSHRFile) Reset() {
	m.entries = m.entries[:0]
	m.stats = MSHRStats{}
}
