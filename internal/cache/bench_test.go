package cache

import "testing"

// Microbenchmarks of the LLC substrate's hot path: Probe and Victim run
// once per simulated memory access (twice with a dirty L1 victim), so
// their cost dominates simulator throughput together with the trace
// generators. All three entry points must stay allocation-free.

func benchCache() *Cache {
	c := New(Config{Name: "l2", SizeBytes: 64 << 10, LineBytes: 64, Ways: 8, Latency: 15})
	// Warm every set so Probe walks full sets and Victim takes the LRU
	// path rather than the first-invalid early-out.
	for line := uint64(0); line < uint64(c.NumSets()*c.Ways()); line++ {
		c.Access(line, 0, false)
	}
	return c
}

func BenchmarkProbeFullMask(b *testing.B) {
	c := benchCache()
	mask := c.AllMask()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := uint64(i)
		c.Probe(c.Index(line), c.TagOf(line), mask)
	}
}

func BenchmarkProbePartialMask(b *testing.B) {
	c := benchCache()
	mask := c.AllMask() >> 1 // 7 of 8 ways: the partitioned-scheme shape
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := uint64(i)
		c.Probe(c.Index(line), c.TagOf(line), mask)
	}
}

func BenchmarkVictimFullMask(b *testing.B) {
	c := benchCache()
	mask := c.AllMask()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Victim(i&(c.NumSets()-1), mask)
	}
}

func BenchmarkVictimPartialMask(b *testing.B) {
	c := benchCache()
	mask := c.AllMask() >> 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Victim(i&(c.NumSets()-1), mask)
	}
}

func BenchmarkL1Access(b *testing.B) {
	c := benchCache()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)&0xfff, 0, i&7 == 0)
	}
}

// TestHotPathAllocationFree pins the zero-allocation property the
// energy/timing loops rely on (a single allocation per access would
// dominate the simulator's profile).
func TestHotPathAllocationFree(t *testing.T) {
	c := benchCache()
	mask := c.AllMask()
	line := uint64(123)
	if n := testing.AllocsPerRun(1000, func() {
		c.Probe(c.Index(line), c.TagOf(line), mask)
		c.Victim(c.Index(line), mask)
		line++
	}); n != 0 {
		t.Fatalf("Probe+Victim allocate %v per access, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		c.Access(line&0xfff, 0, false)
		line++
	}); n != 0 {
		t.Fatalf("Access allocates %v per access, want 0", n)
	}
}

// TestProbeVictimFastPathMatchesMasked checks that the full-mask fast
// path and the bit-iteration path agree way-for-way: an equivalent
// partial mask covering all ways must select exactly the same hit way
// and victim as the precomputed full mask.
func TestProbeVictimFastPathMatchesMasked(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 8 << 10, LineBytes: 64, Ways: 8, Latency: 1})
	for line := uint64(0); line < 300; line += 3 {
		c.Access(line, int(line)%2, line%5 == 0)
	}
	full := c.AllMask()
	for set := 0; set < c.NumSets(); set++ {
		for tag := uint64(0); tag < 40; tag++ {
			wFast, okFast := c.Probe(set, tag, full)
			// Force the masked walk by passing the same bits via a copy
			// the fast-path comparison cannot intern differently: probe
			// way subsets and reassemble.
			lo, okLo := c.Probe(set, tag, full&0x0f)
			hi, okHi := c.Probe(set, tag, full&^uint64(0x0f))
			wSlow, okSlow := lo, okLo
			if !okLo && okHi {
				wSlow, okSlow = hi, okHi
			}
			if okFast != okSlow || (okFast && wFast != wSlow) {
				t.Fatalf("set %d tag %d: fast (%d,%v) != masked (%d,%v)",
					set, tag, wFast, okFast, wSlow, okSlow)
			}
		}
		vFast := c.Victim(set, full)
		vLo, vHi := c.Victim(set, full&0x0f), c.Victim(set, full&^uint64(0x0f))
		// Reassemble the masked answer: first-invalid wins, else min LRU.
		want := vFast
		switch {
		case vLo >= 0 && !c.Block(set, vLo).Valid:
			want = vLo
		case vHi >= 0 && !c.Block(set, vHi).Valid:
			want = vHi
		case vLo < 0:
			want = vHi
		case vHi < 0:
			want = vLo
		default:
			if c.Block(set, vLo).LRU <= c.Block(set, vHi).LRU {
				want = vLo
			} else {
				want = vHi
			}
		}
		if vFast != want {
			t.Fatalf("set %d: fast victim %d != masked victim %d", set, vFast, want)
		}
	}
}
