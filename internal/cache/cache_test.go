package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{Name: "test", SizeBytes: 8 * 1024, LineBytes: 64, Ways: 4, Latency: 2}
}

func TestConfigSets(t *testing.T) {
	cfg := testConfig()
	if got, want := cfg.Sets(), 32; got != want {
		t.Fatalf("Sets() = %d, want %d", got, want)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", testConfig(), true},
		{"zero size", Config{SizeBytes: 0, LineBytes: 64, Ways: 4}, false},
		{"non-pow2 line", Config{SizeBytes: 8192, LineBytes: 48, Ways: 4}, false},
		{"non-pow2 sets", Config{SizeBytes: 3 * 64 * 4, LineBytes: 64, Ways: 4}, false},
		{"too many ways", Config{SizeBytes: 1 << 20, LineBytes: 64, Ways: 128}, false},
		{"paper L2 two-core", Config{SizeBytes: 2 << 20, LineBytes: 64, Ways: 8, Latency: 15}, true},
		{"paper L2 four-core", Config{SizeBytes: 4 << 20, LineBytes: 64, Ways: 16, Latency: 20}, true},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() error = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestPaperGeometries(t *testing.T) {
	two := Config{SizeBytes: 2 << 20, LineBytes: 64, Ways: 8}
	four := Config{SizeBytes: 4 << 20, LineBytes: 64, Ways: 16}
	if got := two.Sets(); got != 4096 {
		t.Errorf("two-core L2 sets = %d, want 4096", got)
	}
	if got := four.Sets(); got != 4096 {
		t.Errorf("four-core L2 sets = %d, want 4096", got)
	}
}

func TestAddressSplitRoundTrip(t *testing.T) {
	c := New(testConfig())
	f := func(addr uint64) bool {
		line := c.Line(addr)
		set := c.Index(line)
		tag := c.TagOf(line)
		return c.LineFrom(set, tag) == line && set >= 0 && set < c.NumSets()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProbeMissOnEmpty(t *testing.T) {
	c := New(testConfig())
	if _, hit := c.Probe(0, 42, c.AllMask()); hit {
		t.Fatal("probe hit in empty cache")
	}
}

func TestInstallThenProbeHits(t *testing.T) {
	c := New(testConfig())
	line := LineAddr(0x1234)
	set, tag := c.Index(line), c.TagOf(line)
	ev := c.InstallAt(set, 2, tag, 1, false)
	if ev.Valid {
		t.Fatalf("install into empty way evicted %+v", ev)
	}
	way, hit := c.Probe(set, tag, c.AllMask())
	if !hit || way != 2 {
		t.Fatalf("Probe = (%d, %v), want (2, true)", way, hit)
	}
	if b := c.Block(set, 2); b.Owner != 1 || b.Dirty {
		t.Fatalf("block = %+v, want owner 1, clean", b)
	}
}

func TestProbeRespectsMask(t *testing.T) {
	c := New(testConfig())
	line := LineAddr(0x40)
	set, tag := c.Index(line), c.TagOf(line)
	c.InstallAt(set, 3, tag, 0, false)
	if _, hit := c.Probe(set, tag, 0b0111); hit {
		t.Fatal("probe hit outside mask")
	}
	if way, hit := c.Probe(set, tag, 0b1000); !hit || way != 3 {
		t.Fatalf("masked probe = (%d,%v), want (3,true)", way, hit)
	}
}

func TestVictimPrefersInvalid(t *testing.T) {
	c := New(testConfig())
	c.InstallAt(5, 0, 1, 0, false)
	c.InstallAt(5, 1, 2, 0, false)
	// Ways 2 and 3 are invalid; victim must be one of them.
	v := c.Victim(5, c.AllMask())
	if v != 2 && v != 3 {
		t.Fatalf("Victim = %d, want an invalid way (2 or 3)", v)
	}
}

func TestVictimIsLRU(t *testing.T) {
	c := New(testConfig())
	for w := 0; w < 4; w++ {
		c.InstallAt(7, w, uint64(w+1), 0, false)
	}
	// Touch ways 0, 2, 3 — way 1 becomes LRU.
	c.Touch(7, 0)
	c.Touch(7, 2)
	c.Touch(7, 3)
	if v := c.Victim(7, c.AllMask()); v != 1 {
		t.Fatalf("Victim = %d, want 1", v)
	}
	// Restrict the mask so way 1 is not eligible: LRU among {2,3} is 2.
	if v := c.Victim(7, 0b1100); v != 2 {
		t.Fatalf("masked Victim = %d, want 2", v)
	}
}

func TestVictimEmptyMask(t *testing.T) {
	c := New(testConfig())
	if v := c.Victim(0, 0); v != -1 {
		t.Fatalf("Victim(empty mask) = %d, want -1", v)
	}
}

func TestVictimOwnedBy(t *testing.T) {
	c := New(testConfig())
	c.InstallAt(3, 0, 1, 0, false)
	c.InstallAt(3, 1, 2, 1, false)
	c.InstallAt(3, 2, 3, 0, false)
	c.Touch(3, 0) // way 2 is now core 0's LRU block
	if v := c.VictimOwnedBy(3, 0, c.AllMask()); v != 2 {
		t.Fatalf("VictimOwnedBy(0) = %d, want 2", v)
	}
	if v := c.VictimOwnedBy(3, 1, c.AllMask()); v != 1 {
		t.Fatalf("VictimOwnedBy(1) = %d, want 1", v)
	}
	if v := c.VictimOwnedBy(3, 7, c.AllMask()); v != -1 {
		t.Fatalf("VictimOwnedBy(absent owner) = %d, want -1", v)
	}
}

func TestCountOwnedAndOwnedWays(t *testing.T) {
	c := New(testConfig())
	c.InstallAt(9, 0, 1, 0, false)
	c.InstallAt(9, 1, 2, 1, false)
	c.InstallAt(9, 3, 4, 0, false)
	if n := c.CountOwned(9, 0, c.AllMask()); n != 2 {
		t.Fatalf("CountOwned(0) = %d, want 2", n)
	}
	if n := c.CountOwned(9, 0, 0b0001); n != 1 {
		t.Fatalf("masked CountOwned(0) = %d, want 1", n)
	}
	if m := c.OwnedWays(9, 0); m != 0b1001 {
		t.Fatalf("OwnedWays(0) = %b, want 1001", m)
	}
}

func TestInstallEviction(t *testing.T) {
	c := New(testConfig())
	c.InstallAt(4, 0, 10, 1, true)
	ev := c.InstallAt(4, 0, 11, 0, false)
	if !ev.Valid || !ev.Dirty || ev.Owner != 1 {
		t.Fatalf("eviction = %+v, want valid dirty owner-1", ev)
	}
	if ev.Line != c.LineFrom(4, 10) {
		t.Fatalf("evicted line = %#x, want %#x", ev.Line, c.LineFrom(4, 10))
	}
	st := c.Stats()
	if st.Evictions != 1 || st.DirtyEvictions != 1 {
		t.Fatalf("stats = %+v, want 1 eviction, 1 dirty", st)
	}
}

func TestFlushBlock(t *testing.T) {
	c := New(testConfig())
	c.InstallAt(2, 1, 5, 0, true)
	line, wb := c.FlushBlock(2, 1)
	if !wb || line != c.LineFrom(2, 5) {
		t.Fatalf("FlushBlock = (%#x,%v), want dirty writeback", line, wb)
	}
	if b := c.Block(2, 1); !b.Valid || b.Dirty {
		t.Fatalf("after flush block = %+v, want valid clean", b)
	}
	if _, wb := c.FlushBlock(2, 1); wb {
		t.Fatal("second flush reported dirty data")
	}
	if _, wb := c.FlushBlock(2, 3); wb {
		t.Fatal("flush of invalid block reported dirty data")
	}
}

func TestInvalidateWay(t *testing.T) {
	c := New(testConfig())
	for s := 0; s < c.NumSets(); s++ {
		c.InstallAt(s, 2, uint64(s+1), 0, s%2 == 0)
	}
	var wbs []LineAddr
	c.InvalidateWay(2, func(l LineAddr) { wbs = append(wbs, l) })
	if len(wbs) != c.NumSets()/2 {
		t.Fatalf("writebacks = %d, want %d", len(wbs), c.NumSets()/2)
	}
	for s := 0; s < c.NumSets(); s++ {
		if c.Block(s, 2).Valid {
			t.Fatalf("set %d way 2 still valid after InvalidateWay", s)
		}
	}
}

func TestSetOwnerPreservesState(t *testing.T) {
	c := New(testConfig())
	c.InstallAt(1, 0, 9, 0, true)
	before := c.Block(1, 0)
	c.SetOwner(1, 0, 1)
	after := c.Block(1, 0)
	if after.Owner != 1 || after.Dirty != before.Dirty || after.LRU != before.LRU || after.Tag != before.Tag {
		t.Fatalf("SetOwner changed more than owner: %+v -> %+v", before, after)
	}
}

func TestAccessLRUBehaviour(t *testing.T) {
	c := New(testConfig())
	// Fill one set with 4 distinct lines that map to set 0.
	stride := uint64(c.NumSets())
	var lines []LineAddr
	for i := 0; i < 4; i++ {
		lines = append(lines, stride*uint64(i))
	}
	for _, l := range lines {
		if _, hit := c.Access(l, 0, false); hit {
			t.Fatalf("unexpected hit filling line %#x", l)
		}
	}
	for _, l := range lines {
		if _, hit := c.Access(l, 0, false); !hit {
			t.Fatalf("expected hit on resident line %#x", l)
		}
	}
	// A 5th line evicts the LRU (lines[0], since all were re-touched in order).
	if _, hit := c.Access(stride*4, 0, false); hit {
		t.Fatal("unexpected hit on new line")
	}
	if _, hit := c.Access(lines[0], 0, false); hit {
		t.Fatal("LRU line should have been evicted")
	}
}

func TestAccessWriteMarksDirty(t *testing.T) {
	c := New(testConfig())
	line := c.Line(0x100)
	c.Access(line, 0, true)
	set, tag := c.Index(line), c.TagOf(line)
	way, hit := c.Probe(set, tag, c.AllMask())
	if !hit {
		t.Fatal("line not resident after write")
	}
	if !c.Block(set, way).Dirty {
		t.Fatal("write did not mark block dirty")
	}
}

func TestStatsAccounting(t *testing.T) {
	c := New(testConfig())
	c.Access(0, 0, false)  // miss
	c.Access(0, 0, false)  // hit
	c.Access(64, 0, false) // miss (next line)
	st := c.Stats()
	if st.Accesses != 3 || st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 3/1/2", st)
	}
	if got := st.HitRate(); got != 1.0/3.0 {
		t.Fatalf("HitRate = %v", got)
	}
	if got := st.MissRate(); got != 2.0/3.0 {
		t.Fatalf("MissRate = %v", got)
	}
	st.Reset()
	if st.Accesses != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestStatsRatesEmpty(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 || s.MissRate() != 0 {
		t.Fatal("rates on empty stats should be 0")
	}
}

// Property: the number of valid blocks never exceeds sets*ways and
// every resident line probes back to the way it was installed in.
func TestPropertyInstallProbeConsistency(t *testing.T) {
	c := New(testConfig())
	rng := rand.New(rand.NewSource(1))
	resident := make(map[LineAddr]bool)
	for i := 0; i < 5000; i++ {
		line := LineAddr(rng.Intn(4096))
		ev, hit := c.Access(line, rng.Intn(2), rng.Intn(2) == 0)
		if hit != resident[line] {
			t.Fatalf("access %d: hit=%v, resident=%v for line %#x", i, hit, resident[line], line)
		}
		if !hit {
			resident[line] = true
			if ev.Valid {
				if !resident[ev.Line] {
					t.Fatalf("evicted non-resident line %#x", ev.Line)
				}
				delete(resident, ev.Line)
			}
		}
	}
	count := 0
	c.ForEachValid(func(_, _ int, _ Block) { count++ })
	if count != len(resident) {
		t.Fatalf("valid blocks = %d, tracked resident = %d", count, len(resident))
	}
}

// Property: Victim always returns a way inside the mask.
func TestPropertyVictimInMask(t *testing.T) {
	c := New(testConfig())
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		set := rng.Intn(c.NumSets())
		mask := uint64(rng.Intn(16)) // 4 ways
		v := c.Victim(set, mask)
		if mask == 0 {
			if v != -1 {
				t.Fatalf("victim %d from empty mask", v)
			}
			continue
		}
		if v < 0 || mask&(1<<uint(v)) == 0 {
			t.Fatalf("victim %d outside mask %b", v, mask)
		}
		c.InstallAt(set, v, uint64(i+1), 0, false)
	}
}

func TestAllMaskWidth(t *testing.T) {
	for _, ways := range []int{1, 2, 4, 8, 16} {
		cfg := Config{Name: "w", SizeBytes: 64 * 64 * ways, LineBytes: 64, Ways: ways}
		c := New(cfg)
		if got, want := c.AllMask(), (uint64(1)<<uint(ways))-1; got != want {
			t.Errorf("ways=%d: AllMask=%b want %b", ways, got, want)
		}
	}
}
