// Banked substrate. The cache's struct-of-arrays state is split into
// B power-of-two banks, each owning an address-interleaved slice of the
// sets: global set s lives in bank s & (B-1) at local row s >> log2(B),
// exactly as a physically banked LLC interleaves consecutive sets
// across banks. Each bank preserves the SoA layout (dense tags/owners/
// lru rows plus one valid/dirty word per local set) documented in
// DESIGN.md §2, so the per-access hot path is unchanged: one bank
// select, then the same dense-row walk.
//
// Bit-identity guarantee: banking only regroups storage — which set an
// address maps to, which way is victimised and every recency decision
// are computed from the same global state, so the *state machine* is
// identical for every B. With Banks <= 1 the single bank's arrays are
// laid out exactly like the pre-banking monolithic cache and the bank
// routing degenerates to identity (mask 0, shift 0). Timing differs
// from the monolithic cache only when BankBusyCycles > 0 enables the
// bank-port contention model below; the zero value keeps today's
// unlimited-throughput behaviour, which is what pins the B=1 (and, for
// state, any-B) bit-identity in banked_test.go and oracle_test.go.
package cache

import "math/bits"

// bank is one bank's slice of the struct-of-arrays state. Rows are
// local: a bank with S/B of the S sets holds S/B rows of `ways` tags.
type bank struct {
	tags   []uint64 // localSets * ways, row-major
	owners []int32  // localSets * ways
	lru    []uint64 // localSets * ways
	valid  []uint64 // localSets bitmask words
	dirty  []uint64 // localSets bitmask words
}

// newBank allocates a cleared bank of localSets rows.
func newBank(localSets, ways int) bank {
	b := bank{
		tags:   make([]uint64, localSets*ways),
		owners: make([]int32, localSets*ways),
		lru:    make([]uint64, localSets*ways),
		valid:  make([]uint64, localSets),
		dirty:  make([]uint64, localSets),
	}
	for i := range b.owners {
		b.owners[i] = NoOwner
	}
	return b
}

// at routes a global set index to its bank and the bank-local set row
// (via the dense sample row when set sampling is on; the sample shift
// is 0 otherwise and the routing is the pre-sampling identity).
func (c *Cache) at(set int) (*bank, int) {
	row := set >> c.sampleShift
	return &c.banks[uint64(row)&c.bankMask], row >> c.bankShift
}

// Banks returns the number of banks (1 for a monolithic cache).
func (c *Cache) Banks() int { return len(c.banks) }

// BankOf returns the bank serving a global set index.
func (c *Cache) BankOf(set int) int {
	return int((uint64(set) >> c.sampleShift) & c.bankMask)
}

// AcquireBank models bank-port contention for an access to set arriving
// at time now: each bank serves one access per BankBusyCycles window,
// so an access finding its bank busy waits until the port frees. It
// returns the queueing delay and reserves the port. With
// BankBusyCycles == 0 (the default, and the pre-banking behaviour)
// contention is not modelled and the delay is always zero.
func (c *Cache) AcquireBank(set int, now int64) int64 {
	if c.bankBusyCyc == 0 {
		return 0
	}
	i := (uint64(set) >> c.sampleShift) & c.bankMask
	delay := c.bankFree[i] - now
	if delay < 0 {
		delay = 0
	} else if delay > 0 {
		c.stats.BankConflicts += c.weight
	}
	c.bankFree[i] = now + delay + c.bankBusyCyc
	return delay
}

// bankCount resolves the configured bank count (0 means 1).
func (cfg Config) bankCount() int {
	if cfg.Banks <= 0 {
		return 1
	}
	return cfg.Banks
}

// bankGeometry returns (bankMask, bankShift) for the configured banks.
func (cfg Config) bankGeometry() (uint64, uint) {
	b := cfg.bankCount()
	return uint64(b - 1), uint(bits.TrailingZeros(uint(b)))
}
