package partition

// This file implements the quota-enforced victim selection shared by
// Fair Share and UCP. Both schemes keep logical per-core way quotas:
// data is not way-aligned, every access probes all tag ways, and the
// quota is enforced by the replacement policy (as in Qureshi & Patt):
// a core below its quota victimises the LRU block of an over-quota
// core, while a core at or above quota victimises its own LRU block.
// The probe/fill mechanics around it live in Controller.access; the
// schemes inject quotaVictim through their accessHooks.

// victimEvent reports which block a quota miss displaced, so UCP can
// track way-migration progress.
type victimEvent struct {
	set       int
	victimWay int
	owner     int // previous owner of the victim block (NoOwner if empty)
	dirty     bool
	valid     bool
}

// quotaVictim picks the replacement way in set for core under quotas.
// Under the shared-way fallback quotas sum to more than the ways; a
// core then effectively always sits at or above quota and competes in
// LRU order like everyone else.
func (b *Controller) quotaVictim(set, core int, quotas []int) int {
	l2 := b.l2
	mask := l2.AllMask()
	// Invalid ways first: no one loses data.
	if w := l2.Victim(set, mask); w >= 0 && !l2.ValidAt(set, w) {
		return w
	}
	owned := l2.CountOwned(set, core, mask)
	if owned < quotas[core] {
		// Take the LRU block among cores holding more than their quota.
		best, bestLRU := -1, ^uint64(0)
		for w := 0; w < l2.Ways(); w++ {
			if !l2.ValidAt(set, w) {
				continue
			}
			o := l2.OwnerAt(set, w)
			if o == core {
				continue
			}
			if o >= 0 && o < b.n && l2.CountOwned(set, o, mask) <= quotas[o] {
				continue
			}
			if lru := l2.LRUAt(set, w); lru < bestLRU {
				best, bestLRU = w, lru
			}
		}
		if best >= 0 {
			return best
		}
		// No over-quota victim: take any other core's LRU block.
		best, bestLRU = -1, ^uint64(0)
		for w := 0; w < l2.Ways(); w++ {
			if !l2.ValidAt(set, w) || l2.OwnerAt(set, w) == core {
				continue
			}
			if lru := l2.LRUAt(set, w); lru < bestLRU {
				best, bestLRU = w, lru
			}
		}
		if best >= 0 {
			return best
		}
	}
	// At/above quota (or the set holds only this core's data): own LRU,
	// falling back to global LRU.
	if w := b.l2.VictimOwnedBy(set, core, mask); w >= 0 {
		return w
	}
	return b.l2.Victim(set, mask)
}
