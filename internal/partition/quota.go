package partition

import (
	"repro/internal/cache"
	"repro/internal/umon"
)

// This file implements the quota-enforced access path shared by Fair
// Share and UCP. Both schemes keep logical per-core way quotas: data is
// not way-aligned, every access probes all tag ways, and the quota is
// enforced by the replacement policy (as in Qureshi & Patt): a core
// below its quota victimises the LRU block of an over-quota core, while
// a core at or above quota victimises its own LRU block.

// victimEvent reports which block a quota miss displaced, so UCP can
// track way-migration progress.
type victimEvent struct {
	set       int
	victimWay int
	owner     int // previous owner of the victim block (NoOwner if empty)
	dirty     bool
	valid     bool
}

// quotaVictim picks the replacement way in set for core under quotas.
func (b *Harness) quotaVictim(set, core int, quotas []int) int {
	l2 := b.l2
	mask := l2.AllMask()
	// Invalid ways first: no one loses data.
	if w := l2.Victim(set, mask); w >= 0 && !l2.ValidAt(set, w) {
		return w
	}
	owned := l2.CountOwned(set, core, mask)
	if owned < quotas[core] {
		// Take the LRU block among cores holding more than their quota.
		best, bestLRU := -1, ^uint64(0)
		for w := 0; w < l2.Ways(); w++ {
			if !l2.ValidAt(set, w) {
				continue
			}
			o := l2.OwnerAt(set, w)
			if o == core {
				continue
			}
			if o >= 0 && o < b.n && l2.CountOwned(set, o, mask) <= quotas[o] {
				continue
			}
			if lru := l2.LRUAt(set, w); lru < bestLRU {
				best, bestLRU = w, lru
			}
		}
		if best >= 0 {
			return best
		}
		// No over-quota victim: take any other core's LRU block.
		best, bestLRU = -1, ^uint64(0)
		for w := 0; w < l2.Ways(); w++ {
			if !l2.ValidAt(set, w) || l2.OwnerAt(set, w) == core {
				continue
			}
			if lru := l2.LRUAt(set, w); lru < bestLRU {
				best, bestLRU = w, lru
			}
		}
		if best >= 0 {
			return best
		}
	}
	// At/above quota (or the set holds only this core's data): own LRU,
	// falling back to global LRU.
	if w := b.l2.VictimOwnedBy(set, core, mask); w >= 0 {
		return w
	}
	return b.l2.Victim(set, mask)
}

// quotaAccess performs one access under way quotas. mons, when non-nil,
// receive the access for utility monitoring. onVictim, when non-nil, is
// called with the displaced block's details on a miss fill.
func (b *Harness) quotaAccess(core int, addr uint64, isWrite bool, now int64,
	quotas []int, mons []*umon.Monitor, onVictim func(victimEvent)) Result {

	line := b.l2.Line(addr)
	set := b.l2.Index(line)
	tag := b.l2.TagOf(line)
	res := Result{TagsConsulted: b.l2.Ways()}

	if mons != nil {
		mons[core].Access(set, line)
		res.UMONSampled = b.umonSampled(set)
	}

	if way, hit := b.l2.Probe(set, tag, b.l2.AllMask()); hit {
		b.l2.Touch(set, way)
		if isWrite {
			b.l2.MarkDirty(set, way)
		}
		res.Hit = true
		res.Latency = int64(b.l2.Latency())
	} else {
		victim := b.quotaVictim(set, core, quotas)
		prevOwn := cache.NoOwner
		if b.l2.ValidAt(set, victim) {
			prevOwn = b.l2.OwnerAt(set, victim)
		}
		ev := b.l2.InstallAt(set, victim, tag, core, isWrite)
		if ev.Valid && ev.Dirty {
			b.writeback(ev.Line, now)
			res.Writebacks++
		}
		if onVictim != nil {
			onVictim(victimEvent{
				set: set, victimWay: victim,
				owner: prevOwn, dirty: ev.Valid && ev.Dirty, valid: ev.Valid,
			})
		}
		res.Latency = int64(b.l2.Latency()) + b.fill(line, now+int64(b.l2.Latency()))
	}

	b.record(core, res.Hit, res.TagsConsulted)
	st := b.l2.Stats()
	st.Accesses++
	if res.Hit {
		st.Hits++
	} else {
		st.Misses++
	}
	return res
}
