package partition

import (
	"math/bits"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/umon"
)

// Controller is the policy-free LLC controller every scheme composes
// over: it owns the (banked) physical cache, the memory behind it,
// per-core statistics and transition tracking, and implements the
// shared mechanics the schemes previously each duplicated — the
// probe/fill access path (policy injected through accessHooks), the
// equal-share initial allocation, quota-enforced victim selection
// (quota.go), the synchronous flush-on-repartition, and the default
// powered-way accounting. Schemes in this package embed it; external
// schemes (Cooperative Partitioning in internal/core) use the exported
// accessors.
//
// Controller itself implements the fixed-partition halves of Scheme
// (Stats, Transitions, a Decide that only counts the decision point,
// and a PoweredWayEquiv that keeps every way on); adaptive or gating
// schemes shadow Decide/PoweredWayEquiv with their own logic.
type Controller struct {
	cfg    Config
	l2     *cache.Cache
	dram   *mem.DRAM
	n      int
	shared bool // cores exceed ways: shared-way fallback in effect
	stats  Stats
	trans  *TransitionStats

	// Set-sampling support (estimate.go; all neutral when the cache is
	// unsampled): weight scales per-event counters by the true
	// Sets/SampledSets ratio and est drives the estimated path for
	// non-sampled sets. umonSampling is the configured monitor stride,
	// independent of the cache's: the ATDs model the *address stream*,
	// which exists in full whether or not the LLC simulates a set, so
	// sampling the cache must not coarsen the miss curves the
	// allocation decisions run on.
	weight       uint64
	umonSampling int
	est          []estimator
}

// NewController validates cfg, applies defaults and builds the shared
// machinery. It panics on invalid configuration (experiment constants).
func NewController(cfg Config) Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	l2 := cache.New(cfg.Cache)
	return Controller{
		cfg:          cfg,
		l2:           l2,
		dram:         cfg.DRAM,
		n:            cfg.NumCores,
		shared:       cfg.NumCores > cfg.Cache.Ways,
		stats:        Stats{PerCore: make([]CoreStats, cfg.NumCores)},
		trans:        NewTransitionStats(cfg.TimelineBucket, cfg.TimelineBuckets),
		weight:       l2.SampleWeight(),
		umonSampling: cfg.UMONSampling,
		est:          make([]estimator, cfg.NumCores),
	}
}

// Cache exposes the underlying cache (tests and reporting).
func (b *Controller) Cache() *cache.Cache { return b.l2 }

// Stats implements Scheme.
func (b *Controller) Stats() *Stats { return &b.stats }

// Transitions implements Scheme.
func (b *Controller) Transitions() *TransitionStats { return b.trans }

// Decide implements Scheme for schemes with a fixed partition: it
// counts the decision point and ages the set-sampling estimators.
// Adaptive schemes shadow it (their estimator aging runs through
// DecayMonitors or, for profile-driven CPE, an explicit call) — every
// scheme ages the estimators exactly once per decision, so the
// estimator dynamics are identical across schemes and any windowing
// bias cancels in the FairShare-normalised figures.
func (b *Controller) Decide(now int64) {
	b.stats.Decisions++
	b.decayEstimators()
}

// PoweredWayEquiv implements Scheme for the schemes that cannot gate
// ways (Unmanaged, Fair Share, UCP, PIPP): everything stays powered.
// Gating schemes (Dynamic CPE, Cooperative Partitioning) shadow it.
func (b *Controller) PoweredWayEquiv() float64 { return float64(b.l2.Ways()) }

// record tallies one access outcome for a core, scaled by the sampling
// weight (1 when unsampled); the raw counts also feed the core's
// estimator, which needs the unscaled sampled hit rate.
func (b *Controller) record(core int, hit bool, tags int) {
	cs := &b.stats.PerCore[core]
	cs.Accesses += b.weight
	cs.TagsConsulted += uint64(tags) * b.weight
	e := &b.est[core]
	e.Accesses++
	if hit {
		cs.Hits += b.weight
		e.Hits++
	} else {
		cs.Misses += b.weight
	}
}

// fill fetches line from memory at time now, returning the read
// latency.
func (b *Controller) fill(line uint64, now int64) int64 {
	return b.dram.Read(line, now)
}

// writeback posts dirty lines to memory. Under set sampling each
// sampled writeback stands for weight writebacks — its own and those
// of the weight-1 neighbouring non-sampled sets it represents — so it
// posts that many, at the neighbouring sets' line addresses, keeping
// the DRAM write traffic (and the bank/bus pressure it exerts on
// reads) at the full rate rather than 1/K of it. Unsampled caches
// have weight 1 and post exactly the one line, unchanged.
func (b *Controller) writeback(line uint64, now int64) {
	for i := uint64(0); i < b.weight; i++ {
		b.dram.Write(line+i, now)
	}
	b.stats.WritebacksToMem += b.weight
}

// newMonitors builds one utility monitor per core.
func (b *Controller) newMonitors() []*umon.Monitor {
	mons := make([]*umon.Monitor, b.n)
	for i := range mons {
		mons[i] = umon.New(umon.Config{
			Sets:     b.l2.NumSets(),
			Ways:     b.l2.Ways(),
			Sampling: b.umonSampling,
		})
	}
	return mons
}

// umonSampled reports whether set falls in a monitored sample.
func (b *Controller) umonSampled(set int) bool {
	return set%b.umonSampling == 0
}

// accessHooks carries the policy of one scheme's access path. A scheme
// builds its hooks once at construction (closures over the scheme
// itself, so later quota changes are visible) and passes the same
// struct to every access — the path allocates nothing per access.
type accessHooks struct {
	// mask returns the ways core may probe and fill (nil: all ways).
	mask func(core int) uint64
	// mapSet folds the global set index into the scheme's region for
	// the core (nil: identity). Dynamic CPE's set partitioning uses it.
	mapSet func(core, set int) int
	// victim picks the fill way on a miss (nil: invalid-then-LRU over
	// the mask).
	victim func(set, core int, mask uint64) int
	// touch updates recency on a hit (nil: move to MRU). PIPP's
	// single-step promotion shadows it.
	touch func(set, way int)
	// afterInstall runs after a miss fill (nil: none). PIPP's insertion
	// positioning uses it.
	afterInstall func(set, way, core int)
	// onVictim observes the displaced block on a miss fill (nil: none).
	// UCP's transition tracker uses it.
	onVictim func(core int, ev victimEvent, now int64)
	// mons, when non-nil, receive every access for utility monitoring.
	mons []*umon.Monitor
}

// access is the shared LLC access path: probe the masked ways, touch or
// fill, account energy inputs, bank contention and statistics. Policy
// comes entirely from the hooks.
func (b *Controller) access(core int, addr uint64, isWrite bool, now int64, h *accessHooks) Result {
	l2 := b.l2
	line := l2.Line(addr)
	set := l2.Index(line)
	if h.mapSet != nil {
		set = h.mapSet(core, set)
	}
	tag := l2.TagOf(line)
	mask := l2.AllMask()
	if h.mask != nil {
		mask = h.mask(core)
	}
	// Utility monitoring sees every access, sampled set or not: the
	// ATDs model the address stream, which the estimated path below
	// does not diminish.
	umonSampled := false
	if h.mons != nil {
		h.mons[core].Access(set, line)
		umonSampled = b.umonSampled(set)
	}
	if !l2.Sampled(set) {
		// Non-sampled set of a set-sampled LLC: synthesize the outcome
		// (estimate.go). No cache or scaled-counter state is touched;
		// the energy layer still charges the access at weight 1.
		res := b.estimated(core, bits.OnesCount64(mask), false, line, now)
		res.UMONSampled = umonSampled
		return res
	}
	res := Result{TagsConsulted: bits.OnesCount64(mask), UMONSampled: umonSampled}

	if mask == 0 {
		// No ways at all (a region-less core): straight to memory.
		res.Latency = int64(l2.Latency()) + b.fill(line, now+int64(l2.Latency()))
		b.record(core, false, 0)
		return res
	}

	lat := int64(l2.Latency()) + l2.AcquireBank(set, now)
	if way, hit := l2.Probe(set, tag, mask); hit {
		if h.touch != nil {
			h.touch(set, way)
		} else {
			l2.Touch(set, way)
		}
		if isWrite {
			l2.MarkDirty(set, way)
		}
		res.Hit = true
		res.Latency = lat
	} else {
		var victim int
		if h.victim != nil {
			victim = h.victim(set, core, mask)
		} else {
			victim = l2.Victim(set, mask)
		}
		prevOwn := cache.NoOwner
		if h.onVictim != nil && l2.ValidAt(set, victim) {
			prevOwn = l2.OwnerAt(set, victim)
		}
		ev := l2.InstallAt(set, victim, tag, core, isWrite)
		if ev.Valid && ev.Dirty {
			b.writeback(ev.Line, now)
			res.Writebacks++
		}
		if h.afterInstall != nil {
			h.afterInstall(set, victim, core)
		}
		if h.onVictim != nil {
			h.onVictim(core, victimEvent{
				set: set, victimWay: victim,
				owner: prevOwn, dirty: ev.Valid && ev.Dirty, valid: ev.Valid,
			}, now)
		}
		res.Latency = lat + b.fill(line, now+lat)
	}

	b.record(core, res.Hit, res.TagsConsulted)
	st := l2.Stats()
	st.Accesses += b.weight
	if res.Hit {
		st.Hits += b.weight
	} else {
		st.Misses += b.weight
	}
	return res
}

// EqualShares returns the fair initial allocation: the ways split
// evenly with the remainder going to the lowest-numbered cores. Under
// the shared-way fallback (more cores than ways) every core's target
// is one way; the targets then necessarily alias, and the schemes
// enforce them through competition for the shared ways.
func (b *Controller) EqualShares() []int {
	q := make([]int, b.n)
	if b.shared {
		for i := range q {
			q[i] = 1
		}
		return q
	}
	share := b.l2.Ways() / b.n
	extra := b.l2.Ways() % b.n
	for i := range q {
		q[i] = share
		if i < extra {
			q[i]++
		}
	}
	return q
}

// FlushWays writes back and invalidates every valid block in the
// masked ways, counting each block in FlushedOnDecide. This is the
// synchronous flush-on-repartition: the posted writebacks occupy the
// memory banks and bus, delaying subsequent misses — the
// reconfiguration cost the paper's evaluation highlights.
func (b *Controller) FlushWays(mask uint64, now int64) {
	step := b.l2.SampleStride()
	for m := mask; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		for s := 0; s < b.l2.NumSets(); s += step {
			if !b.l2.ValidAt(s, w) {
				continue
			}
			ev := b.l2.InvalidateBlock(s, w)
			if ev.Dirty {
				b.writeback(ev.Line, now)
			}
			b.stats.FlushedOnDecide += b.weight
		}
	}
}

// MissCurves collects every monitor's miss curve (a decision's input).
func (b *Controller) MissCurves(mons []*umon.Monitor) []umon.Curve {
	curves := make([]umon.Curve, len(mons))
	for i, m := range mons {
		curves[i] = m.MissCurve()
	}
	return curves
}

// estDecayFloor is the minimum estimator sample below which decision
// decay leaves the counts alone. Halving an already-small sample
// degrades the hit-rate estimate toward quantized extremes (0, 1/2,
// 1) whose variance inflates estimated IPC — convexity: variance in
// the miss rate raises mean IPC — so very short runs (UnitScale)
// keep their cumulative estimate instead of a windowed one.
const estDecayFloor = 256

// decayEstimators ages the set-sampling estimators at a decision
// boundary: halving the counts makes the estimated hit rate track the
// *recent* sampled hit rate rather than the whole run's. A scheme
// that improves its allocation over time (UCP, Cooperative
// Partitioning) would otherwise see its estimated traffic priced at
// the stale early-run rate — a lag penalty static schemes never pay,
// which the tier-equivalence gate caught as a WS bias confined to the
// adaptive schemes. Every scheme must age at the same cadence (see
// Decide), or the windowing itself becomes a scheme-relative bias.
func (b *Controller) decayEstimators() {
	for i := range b.est {
		if e := &b.est[i]; e.Accesses >= estDecayFloor {
			e.Accesses >>= 1
			e.Hits >>= 1
		}
	}
}

// DecayMonitors ages every monitor after a decision, and the
// set-sampling estimators with them (the monitor-driven schemes
// shadow Decide, so this is their once-per-decision aging point).
func (b *Controller) DecayMonitors(mons []*umon.Monitor) {
	for _, m := range mons {
		m.Decay()
	}
	b.decayEstimators()
}

// Exported accessors for schemes implemented outside this package.

// Cfg returns the controller configuration (with defaults applied).
func (b *Controller) Cfg() Config { return b.cfg }

// NumCores returns the number of cores sharing the LLC.
func (b *Controller) NumCores() int { return b.n }

// SharedMode reports whether the shared-way fallback is in effect
// (more cores than LLC ways).
func (b *Controller) SharedMode() bool { return b.shared }

// SharedClusterWay returns the way a core is pinned to under the
// shared-way fallback: cores are laid ring-contiguously over the ways,
// so core i shares way i*W/n with its ring-adjacent cluster. Every
// scheme that operates in shared mode (Dynamic CPE, Cooperative
// Partitioning) uses this one mapping, so the cluster layout cannot
// silently diverge between them (DESIGN.md §9).
func (b *Controller) SharedClusterWay(core int) int {
	return core * b.l2.Ways() / b.n
}

// Record tallies one access outcome for a core.
func (b *Controller) Record(core int, hit bool, tags int) { b.record(core, hit, tags) }

// Fill fetches line from memory at now and returns the read latency.
func (b *Controller) Fill(line uint64, now int64) int64 { return b.fill(line, now) }

// Writeback posts one dirty line to memory.
func (b *Controller) Writeback(line uint64, now int64) { b.writeback(line, now) }

// NewMonitors builds one utility monitor per core.
func (b *Controller) NewMonitors() []*umon.Monitor { return b.newMonitors() }

// UMONSampled reports whether set falls in a monitored sample.
func (b *Controller) UMONSampled(set int) bool { return b.umonSampled(set) }
