package partition

import (
	"math/rand"
	"testing"

	"repro/internal/umon"
)

func TestUCPAbandonedTransition(t *testing.T) {
	u := NewUCP(testConfig(2))
	c := u.Cache()
	rng := rand.New(rand.NewSource(4))
	// Build asymmetric utility, decide, then flip the asymmetry and
	// decide again before the first migration converges.
	for i := 0; i < 4000; i++ {
		s := rng.Intn(16)
		u.Access(0, addr(c, 0, s, i%4), false, int64(i))
		u.Access(1, addr(c, 1, s, 0), false, int64(i))
	}
	u.Decide(5000)
	if !u.InTransition() {
		t.Skip("no transition started")
	}
	for i := 0; i < 4000; i++ {
		s := rng.Intn(16)
		u.Access(0, addr(c, 0, s, 0), false, int64(6000+i))
		u.Access(1, addr(c, 1, s, i%4), false, int64(6000+i))
	}
	u.Decide(20000)
	// Either the first converged in time or it was abandoned; both are
	// legal, but the tracker must not leak state.
	if u.Transitions().Abandoned == 0 && u.Transitions().Completed == 0 {
		t.Fatal("transition neither completed nor abandoned after reversal")
	}
}

func TestUCPDecisionWithNoTrafficKeepsQuotas(t *testing.T) {
	u := NewUCP(testConfig(2))
	before := u.Allocations()
	u.Decide(100)
	after := u.Allocations()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("quotas changed with no traffic: %v -> %v", before, after)
		}
	}
}

func TestQuotaVictimFallbacks(t *testing.T) {
	f := NewFairShare(testConfig(2))
	c := f.Cache()
	// Fill a set entirely with core 1's blocks, then make core 1 (at
	// quota 2 but holding 4) access: it must victimise its own LRU.
	for i := 0; i < 4; i++ {
		c.InstallAt(7, i, uint64(i+1)|2<<20, 1, false)
	}
	res := f.Access(1, addr(c, 1, 7, 9), false, 0)
	if res.Hit {
		t.Fatal("unexpected hit")
	}
	// Still exactly 4 blocks, all core 1's.
	if got := c.CountOwned(7, 1, c.AllMask()); got != 4 {
		t.Fatalf("core 1 owns %d blocks, want 4", got)
	}
	// Core 0 (under quota) now accesses: it must take one of core 1's
	// over-quota blocks.
	f.Access(0, addr(c, 0, 7, 1), false, 10)
	if got := c.CountOwned(7, 0, c.AllMask()); got != 1 {
		t.Fatalf("core 0 owns %d blocks, want 1", got)
	}
	if got := c.CountOwned(7, 1, c.AllMask()); got != 3 {
		t.Fatalf("core 1 owns %d blocks, want 3", got)
	}
}

func TestCPEEmptyProfileGetsMinimum(t *testing.T) {
	cfg := testConfig(2)
	cfg.Threshold = 0.05
	p := NewCPE(cfg, nil) // no profiles at all
	p.Decide(0)
	alloc := p.Allocations()
	for i, a := range alloc {
		if a < 1 {
			t.Fatalf("core %d allocation = %d below minimum", i, a)
		}
	}
}

func TestCPEProfileCycling(t *testing.T) {
	prof := CoreProfile{Phases: []ProfilePhase{
		{Curve: umon.Curve{100, 0, 0, 0, 0}, Accesses: 1000},
		{Curve: umon.Curve{100, 50, 0, 0, 0}, Accesses: 2000},
	}}
	if got := prof.phaseAt(0).Accesses; got != 1000 {
		t.Fatalf("phase 0 accesses = %d", got)
	}
	if got := prof.phaseAt(3).Accesses; got != 2000 {
		t.Fatalf("phase 3 (cycled) accesses = %d", got)
	}
	if (CoreProfile{}).phaseAt(5).Accesses != 0 {
		t.Fatal("empty profile must return zero phase")
	}
}

func TestCPERegionsDisjoint(t *testing.T) {
	cfg := testConfig(4)
	p := NewCPE(cfg, nil)
	var union uint64
	for i := 0; i < 4; i++ {
		m := p.wayMask[i]
		if union&m != 0 {
			t.Fatalf("core %d ways overlap another region", i)
		}
		union |= m
	}
}

func TestCPEWritebackHitMarksDirty(t *testing.T) {
	p := NewCPE(testConfig(2), nil)
	c := p.Cache()
	a := addr(c, 0, 3, 1)
	p.Access(0, a, false, 0) // fill clean
	p.Access(0, a, true, 10) // write hit
	line := c.Line(a)
	set := c.Index(line) & (p.coreSets(0) - 1)
	way, hit := c.Probe(set, c.TagOf(line), p.wayMask[0])
	if !hit || !c.Block(set, way).Dirty {
		t.Fatal("write hit did not mark the folded block dirty")
	}
}

func TestMaskRange(t *testing.T) {
	if got := maskRange(0, 3); got != 0b111 {
		t.Fatalf("maskRange(0,3) = %b", got)
	}
	if got := maskRange(2, 2); got != 0b1100 {
		t.Fatalf("maskRange(2,2) = %b", got)
	}
	if got := maskRange(5, 0); got != 0 {
		t.Fatalf("maskRange(5,0) = %b", got)
	}
}

func TestControllerAccessors(t *testing.T) {
	u := NewUnmanaged(testConfig(2))
	if u.NumCores() != 2 {
		t.Fatalf("NumCores = %d", u.NumCores())
	}
	if u.Cfg().MinAllocWays != 1 {
		t.Fatalf("defaulted MinAllocWays = %d", u.Cfg().MinAllocWays)
	}
	if u.Cfg().UMONSampling != 1 {
		t.Fatalf("defaulted UMONSampling = %d", u.Cfg().UMONSampling)
	}
	mons := u.NewMonitors()
	if len(mons) != 2 {
		t.Fatalf("monitors = %d", len(mons))
	}
	if !u.UMONSampled(0) {
		t.Fatal("sampling 1 must sample set 0")
	}
}

func TestStatsResetClearsEverything(t *testing.T) {
	u := NewUnmanaged(testConfig(2))
	c := u.Cache()
	u.Access(0, addr(c, 0, 0, 1), true, 0)
	u.Decide(10)
	st := u.Stats()
	st.Reset()
	if st.TotalAccesses() != 0 || st.Decisions != 0 || st.WritebacksToMem != 0 {
		t.Fatalf("Reset left counters: %+v", st)
	}
	tr := u.Transitions()
	tr.RecordFlush(5, 3)
	tr.Completed = 2
	tr.Reset()
	if tr.FlushedLines != 0 || tr.Completed != 0 {
		t.Fatalf("transition Reset incomplete: %+v", tr)
	}
	for _, v := range tr.Timeline {
		if v != 0 {
			t.Fatal("timeline not cleared")
		}
	}
}
