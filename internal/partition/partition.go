// Package partition implements the shared-LLC management schemes the
// paper compares against (Section 3.4):
//
//   - Unmanaged: no partitioning; cores compete freely (baseline).
//   - Fair Share: static equal way quotas per core.
//   - UCP: utility-based cache partitioning (Qureshi & Patt) with the
//     look-ahead algorithm, quotas enforced through replacement.
//   - Dynamic CPE: the profile-driven, set-and-way configurable
//     energy-oriented partitioning of Reddy & Petrov, extended to
//     dynamic reconfiguration as the paper describes, with immediate
//     flushing on every repartition.
//   - PIPP: promotion/insertion pseudo-partitioning (Xie & Loh), an
//     extension beyond the paper's evaluated schemes, cited in its
//     related work.
//
// The paper's own scheme, Cooperative Partitioning, lives in
// internal/core and implements the same Scheme interface.
package partition

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
)

// Result describes one LLC access for timing and energy accounting.
type Result struct {
	Hit           bool
	TagsConsulted int   // tag ways probed (dynamic energy)
	Latency       int64 // cycles until data available
	Writebacks    int   // dirty lines sent to memory by this access
	PermCheck     bool  // RAP/WAP registers consulted
	UMONSampled   bool  // a utility monitor recorded this access
	TakeoverOps   int   // takeover bit-vector operations performed
}

// Scheme is a shared last-level cache under some partitioning policy.
// Implementations are single-goroutine, like the rest of the simulator.
type Scheme interface {
	// Name identifies the scheme ("UCP", "CoopPart", ...).
	Name() string
	// Access performs one LLC access (addr is a byte address) by core
	// at time now and returns its timing/energy outcome.
	Access(core int, addr uint64, isWrite bool, now int64) Result
	// Decide runs the scheme's periodic partitioning decision.
	Decide(now int64)
	// PoweredWayEquiv returns how many way-equivalents are powered on
	// (fractional for set-partitioned schemes).
	PoweredWayEquiv() float64
	// Allocations returns the current way allocation per core (logical
	// quotas for quota-based schemes, owned ways for way-aligned ones).
	Allocations() []int
	// Stats exposes the scheme's counters.
	Stats() *Stats
	// Transitions exposes way-migration statistics (zero-valued for
	// schemes that do not migrate ways).
	Transitions() *TransitionStats
}

// CoreStats counts per-core LLC events.
type CoreStats struct {
	Accesses      uint64
	Hits          uint64
	Misses        uint64
	TagsConsulted uint64 // sum over accesses (avg ways consulted = this/Accesses)
}

// Stats aggregates scheme counters.
type Stats struct {
	PerCore         []CoreStats
	WritebacksToMem uint64
	Decisions       uint64
	Repartitions    uint64 // decisions that changed the allocation
	FlushedOnDecide uint64 // blocks flushed synchronously at decisions (CPE)
}

// TotalAccesses sums accesses across cores.
func (s *Stats) TotalAccesses() uint64 {
	var n uint64
	for _, c := range s.PerCore {
		n += c.Accesses
	}
	return n
}

// AvgWaysConsulted returns the mean number of tag ways probed per
// access across all cores.
func (s *Stats) AvgWaysConsulted() float64 {
	var tags, acc uint64
	for _, c := range s.PerCore {
		tags += c.TagsConsulted
		acc += c.Accesses
	}
	if acc == 0 {
		return 0
	}
	return float64(tags) / float64(acc)
}

// TransitionStats records way-migration behaviour for Figures 14-16.
type TransitionStats struct {
	// Fig. 15: way-transfer latency.
	Completed   uint64 // completed transitions
	WaysMoved   uint64 // ways transferred by completed transitions
	TotalCycles int64  // sum of per-way transfer durations
	Abandoned   uint64 // transitions superseded before completing

	// Fig. 14: events that set takeover bits (Cooperative Partitioning).
	DonorHits       uint64
	DonorMisses     uint64
	RecipientHits   uint64
	RecipientMisses uint64

	// Fig. 16: lines flushed to memory, bucketed by cycles since the
	// partitioning decision.
	FlushedLines   uint64
	Timeline       []uint64
	TimelineBucket int64
}

// NewTransitionStats creates transition stats with a flush timeline of
// buckets cycles-wide buckets.
func NewTransitionStats(bucket int64, buckets int) *TransitionStats {
	if bucket <= 0 {
		bucket = 1
	}
	if buckets <= 0 {
		buckets = 1
	}
	return &TransitionStats{Timeline: make([]uint64, buckets), TimelineBucket: bucket}
}

// RecordFlush logs n lines flushed dt cycles after the decision.
func (t *TransitionStats) RecordFlush(dt int64, n int) {
	t.FlushedLines += uint64(n)
	if len(t.Timeline) == 0 {
		return
	}
	idx := int(dt / t.TimelineBucket)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(t.Timeline) {
		idx = len(t.Timeline) - 1
	}
	t.Timeline[idx] += uint64(n)
}

// AvgTransferCycles returns the mean cycles to transfer one way.
func (t *TransitionStats) AvgTransferCycles() float64 {
	if t.WaysMoved == 0 {
		return 0
	}
	return float64(t.TotalCycles) / float64(t.WaysMoved)
}

// TakeoverEventTotal sums the Figure 14 event classes.
func (t *TransitionStats) TakeoverEventTotal() uint64 {
	return t.DonorHits + t.DonorMisses + t.RecipientHits + t.RecipientMisses
}

// Config carries everything a scheme needs to operate the shared LLC.
type Config struct {
	Cache    cache.Config
	NumCores int
	DRAM     *mem.DRAM
	// UMONSampling is the set-sampling ratio for schemes that monitor
	// utility (UCP, Cooperative Partitioning). 1 monitors every set.
	UMONSampling int
	// MinAllocWays is the per-core way guarantee used by the lookahead
	// algorithms (UCP uses 1).
	MinAllocWays int
	// Threshold is the paper's T parameter for Cooperative
	// Partitioning's Algorithm 1.
	Threshold float64
	// TimelineBucket/TimelineBuckets shape the Fig. 16 flush histogram.
	TimelineBucket  int64
	TimelineBuckets int

	// Ablation switches (DESIGN.md §7). RecipientMissOnly makes
	// Cooperative Partitioning set takeover bits only on recipient
	// misses (UCP-style convergence) instead of on every donor or
	// recipient access — isolating why cooperative takeover is faster.
	RecipientMissOnly bool
	// DisableGating keeps unallocated ways powered, isolating the
	// static-energy contribution of gated-Vdd way power-off.
	DisableGating bool
	// RandomVictim makes Cooperative Partitioning choose its fill
	// victim pseudo-randomly among the core's writable ways instead of
	// by LRU — the degenerate placement Section 2.5 compares the
	// way-aligned restriction against.
	RandomVictim bool

	// SharedWays permits configurations with more cores than LLC ways:
	// the schemes fall back to sharing ways between ring-adjacent cores
	// instead of giving each core a private allocation (DESIGN.md §9).
	// Without it, Cores > Ways is rejected loudly at validation so a
	// many-core misconfiguration cannot silently degrade.
	SharedWays bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Cache.Validate(); err != nil {
		return err
	}
	if c.NumCores <= 0 {
		return fmt.Errorf("partition: NumCores = %d", c.NumCores)
	}
	if c.NumCores > 64 {
		return fmt.Errorf("partition: %d cores exceed the 64-core mask limit", c.NumCores)
	}
	if c.NumCores > c.Cache.Ways && !c.SharedWays {
		return fmt.Errorf("partition: %d cores exceed %d ways (set SharedWays to enable the shared-way fallback)",
			c.NumCores, c.Cache.Ways)
	}
	if c.DRAM == nil {
		return fmt.Errorf("partition: DRAM is nil")
	}
	if c.Threshold < 0 || c.Threshold > 1 {
		return fmt.Errorf("partition: threshold %v outside [0,1]", c.Threshold)
	}
	return nil
}

// withDefaults fills unset optional fields.
func (c Config) withDefaults() Config {
	if c.UMONSampling <= 0 {
		c.UMONSampling = 1
	}
	if c.MinAllocWays <= 0 {
		c.MinAllocWays = 1
	}
	if c.TimelineBucket <= 0 {
		c.TimelineBucket = 10000
	}
	if c.TimelineBuckets <= 0 {
		c.TimelineBuckets = 64
	}
	return c
}

// Reset zeroes all counters (used at the end of a warm-up period).
func (s *Stats) Reset() {
	for i := range s.PerCore {
		s.PerCore[i] = CoreStats{}
	}
	s.WritebacksToMem = 0
	s.Decisions = 0
	s.Repartitions = 0
	s.FlushedOnDecide = 0
}

// Reset zeroes all transition counters and the flush timeline.
func (t *TransitionStats) Reset() {
	for i := range t.Timeline {
		t.Timeline[i] = 0
	}
	*t = TransitionStats{Timeline: t.Timeline, TimelineBucket: t.TimelineBucket}
}
