package partition

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/umon"
)

// testConfig builds a small two-core LLC config: 4 ways, 16 sets.
func testConfig(cores int) Config {
	ways := 4
	if cores == 4 {
		ways = 8
	}
	return Config{
		Cache:           cache.Config{Name: "l2", SizeBytes: 16 * ways * 64, LineBytes: 64, Ways: ways, Latency: 15},
		NumCores:        cores,
		DRAM:            mem.New(mem.DefaultConfig()),
		TimelineBucket:  100,
		TimelineBuckets: 16,
	}
}

// addr builds a byte address hitting the given set with a core-tagged
// tag, against scheme s's cache geometry.
func addr(c *cache.Cache, core, set, tag int) uint64 {
	return c.LineFrom(set, uint64(tag)|uint64(core+1)<<20) * 64
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(2).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testConfig(2)
	bad.NumCores = 0
	if bad.Validate() == nil {
		t.Fatal("zero cores should fail")
	}
	bad = testConfig(2)
	bad.NumCores = 16
	if bad.Validate() == nil {
		t.Fatal("more cores than ways should fail")
	}
	bad = testConfig(2)
	bad.DRAM = nil
	if bad.Validate() == nil {
		t.Fatal("nil DRAM should fail")
	}
	bad = testConfig(2)
	bad.Threshold = 1.5
	if bad.Validate() == nil {
		t.Fatal("threshold > 1 should fail")
	}
}

func TestUnmanagedBasics(t *testing.T) {
	u := NewUnmanaged(testConfig(2))
	if u.Name() != "Unmanaged" {
		t.Fatalf("Name = %q", u.Name())
	}
	a := addr(u.Cache(), 0, 3, 7)
	res := u.Access(0, a, false, 0)
	if res.Hit || res.TagsConsulted != 4 {
		t.Fatalf("first access: %+v", res)
	}
	res = u.Access(0, a, false, 10)
	if !res.Hit || res.Latency != 15 {
		t.Fatalf("second access: %+v", res)
	}
	if u.PoweredWayEquiv() != 4 {
		t.Fatalf("powered = %v", u.PoweredWayEquiv())
	}
	if got := u.Allocations(); got[0] != 4 || got[1] != 4 {
		t.Fatalf("allocations = %v", got)
	}
}

func TestUnmanagedInterference(t *testing.T) {
	u := NewUnmanaged(testConfig(2))
	c := u.Cache()
	// Core 0 fills set 0 completely; core 1 then evicts core 0's data.
	for i := 0; i < 4; i++ {
		u.Access(0, addr(c, 0, 0, i), false, int64(i))
	}
	for i := 0; i < 4; i++ {
		u.Access(1, addr(c, 1, 0, i), false, int64(10+i))
	}
	// Core 0's lines are gone.
	res := u.Access(0, addr(c, 0, 0, 0), false, 100)
	if res.Hit {
		t.Fatal("unmanaged cache should allow cross-core eviction")
	}
}

func TestFairShareIsolation(t *testing.T) {
	f := NewFairShare(testConfig(2))
	c := f.Cache()
	if got := f.Allocations(); got[0] != 2 || got[1] != 2 {
		t.Fatalf("fair share quotas = %v", got)
	}
	// Core 0 installs 2 lines (its quota) and keeps them hot; core 1
	// floods the set; core 0's hot lines must survive.
	for i := 0; i < 2; i++ {
		f.Access(0, addr(c, 0, 5, i), false, int64(i))
	}
	for round := 0; round < 10; round++ {
		for i := 0; i < 6; i++ {
			f.Access(1, addr(c, 1, 5, 10+i), false, int64(100+round*10+i))
		}
		// Keep core 0's lines recent.
		f.Access(0, addr(c, 0, 5, 0), false, int64(100+round*10+8))
		f.Access(0, addr(c, 0, 5, 1), false, int64(100+round*10+9))
	}
	if !f.Access(0, addr(c, 0, 5, 0), false, 999).Hit ||
		!f.Access(0, addr(c, 0, 5, 1), false, 999).Hit {
		t.Fatal("fair share failed to protect core 0's quota")
	}
}

func TestFairShareOddWays(t *testing.T) {
	cfg := testConfig(2)
	cfg.Cache.Ways = 5
	cfg.Cache.SizeBytes = 16 * 5 * 64
	f := NewFairShare(cfg)
	got := f.Allocations()
	if got[0]+got[1] != 5 || got[0] != 3 {
		t.Fatalf("odd-way split = %v, want [3 2]", got)
	}
}

func TestUCPMovesWaysTowardUtility(t *testing.T) {
	u := NewUCP(testConfig(2))
	c := u.Cache()
	rng := rand.New(rand.NewSource(1))
	// Core 0 uses 4 distinct lines per set; core 1 only 1.
	drive := func(base int64, n int) {
		for i := 0; i < n; i++ {
			s := rng.Intn(16)
			u.Access(0, addr(c, 0, s, i%4), false, base+int64(i))
			u.Access(1, addr(c, 1, s, 0), false, base+int64(i))
		}
	}
	drive(0, 5000)
	u.Decide(10000)
	alloc := u.Allocations()
	if alloc[0] <= alloc[1] {
		t.Fatalf("UCP did not favour the high-utility core: %v", alloc)
	}
	if alloc[0]+alloc[1] != 4 {
		t.Fatalf("UCP must allocate every way: %v", alloc)
	}
	if u.PoweredWayEquiv() != 4 {
		t.Fatal("UCP cannot power ways off")
	}
}

func TestUCPTransitionCompletes(t *testing.T) {
	u := NewUCP(testConfig(2))
	c := u.Cache()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		s := rng.Intn(16)
		u.Access(0, addr(c, 0, s, i%4), true, int64(i))
		u.Access(1, addr(c, 1, s, 0), true, int64(i))
	}
	u.Decide(10000)
	if !u.InTransition() {
		t.Skip("no quota change; utility pattern did not trigger a transition")
	}
	// Keep driving recipient misses until the transition converges.
	for i := 0; i < 20000 && u.InTransition(); i++ {
		s := rng.Intn(16)
		u.Access(0, addr(c, 0, s, rng.Intn(8)), true, int64(20000+i))
		u.Access(1, addr(c, 1, s, 0), true, int64(20000+i))
	}
	if u.InTransition() {
		t.Fatal("UCP transition never completed")
	}
	tr := u.Transitions()
	if tr.Completed == 0 || tr.WaysMoved == 0 || tr.AvgTransferCycles() <= 0 {
		t.Fatalf("transition stats = %+v", tr)
	}
}

func TestCPEFlushesOnRepartition(t *testing.T) {
	cfg := testConfig(2)
	cfg.Threshold = 0.05
	// Alternating-phase profile: core 0 wants everything in even
	// phases, nothing in odd phases.
	hungry := umon.Curve{1000, 600, 300, 100, 0}
	idle := umon.Curve{10, 10, 10, 10, 10}
	prof := []CoreProfile{
		{Phases: []ProfilePhase{{Curve: hungry, Accesses: 100000}, {Curve: idle, Accesses: 100}}},
		{Phases: []ProfilePhase{{Curve: idle, Accesses: 100}, {Curve: hungry, Accesses: 100000}}},
	}
	p := NewCPE(cfg, prof)
	c := p.Cache()
	// Dirty some data.
	for i := 0; i < 200; i++ {
		p.Access(0, addr(c, 0, i%16, i%3), true, int64(i))
		p.Access(1, addr(c, 1, i%16, i%3), true, int64(i))
	}
	p.Decide(1000)
	flushesAfterFirst := p.Stats().FlushedOnDecide
	// Refill between decisions so the second flush has victims.
	for i := 0; i < 200; i++ {
		p.Access(0, addr(c, 0, i%16, i%3), true, int64(1100+i))
		p.Access(1, addr(c, 1, i%16, i%3), true, int64(1100+i))
	}
	p.Decide(2000) // profile phase flips: repartition again
	if p.Stats().FlushedOnDecide <= flushesAfterFirst {
		t.Fatalf("second repartition flushed nothing: %d then %d",
			flushesAfterFirst, p.Stats().FlushedOnDecide)
	}
	if p.Stats().Repartitions < 2 {
		t.Fatalf("repartitions = %d, want >= 2", p.Stats().Repartitions)
	}
}

func TestCPEDynamicEnergyFewerTags(t *testing.T) {
	cfg := testConfig(2)
	p := NewCPE(cfg, nil)
	c := p.Cache()
	res := p.Access(0, addr(c, 0, 0, 1), false, 0)
	if res.TagsConsulted != 2 {
		t.Fatalf("CPE consults %d tags, want its 2 region ways", res.TagsConsulted)
	}
}

func TestCPESetFoldingStillHits(t *testing.T) {
	cfg := testConfig(2)
	cfg.Threshold = 0.05
	tiny := umon.Curve{100, 0, 0, 0, 0}
	prof := []CoreProfile{
		{Phases: []ProfilePhase{{Curve: tiny, Accesses: 4}}}, // < sets: quarter region
		{Phases: []ProfilePhase{{Curve: tiny, Accesses: 4}}},
	}
	p := NewCPE(cfg, prof)
	c := p.Cache()
	p.Decide(0)
	if p.PoweredWayEquiv() >= 4 {
		t.Fatalf("CPE should gate sets/ways: powered = %v", p.PoweredWayEquiv())
	}
	// Accesses to any set must still resolve (folded) and re-hit.
	a := addr(c, 0, 13, 2)
	p.Access(0, a, false, 10)
	if !p.Access(0, a, false, 20).Hit {
		t.Fatal("folded access did not hit on re-access")
	}
}

func TestStatsAvgWaysConsulted(t *testing.T) {
	u := NewUnmanaged(testConfig(2))
	c := u.Cache()
	u.Access(0, addr(c, 0, 0, 0), false, 0)
	u.Access(1, addr(c, 1, 0, 0), false, 0)
	if got := u.Stats().AvgWaysConsulted(); got != 4 {
		t.Fatalf("AvgWaysConsulted = %v, want 4", got)
	}
	if u.Stats().TotalAccesses() != 2 {
		t.Fatalf("TotalAccesses = %d", u.Stats().TotalAccesses())
	}
}

func TestTransitionStatsTimeline(t *testing.T) {
	tr := NewTransitionStats(100, 4)
	tr.RecordFlush(0, 2)
	tr.RecordFlush(150, 1)
	tr.RecordFlush(100000, 3) // clamps to last bucket
	tr.RecordFlush(-5, 1)     // clamps to first
	if tr.FlushedLines != 7 {
		t.Fatalf("FlushedLines = %d", tr.FlushedLines)
	}
	if tr.Timeline[0] != 3 || tr.Timeline[1] != 1 || tr.Timeline[3] != 3 {
		t.Fatalf("timeline = %v", tr.Timeline)
	}
}

func TestSchemesImplementInterface(t *testing.T) {
	cfg := testConfig(2)
	schemes := []Scheme{
		NewUnmanaged(cfg),
		NewFairShare(testConfig(2)),
		NewUCP(testConfig(2)),
		NewCPE(testConfig(2), nil),
	}
	for _, s := range schemes {
		if s.Name() == "" || s.Stats() == nil || s.Transitions() == nil {
			t.Errorf("%T: incomplete Scheme implementation", s)
		}
		s.Decide(0)
		if len(s.Allocations()) != 2 {
			t.Errorf("%s: allocations length wrong", s.Name())
		}
	}
}

func TestWritebacksReachDRAM(t *testing.T) {
	cfg := testConfig(2)
	u := NewUnmanaged(cfg)
	c := u.Cache()
	// Fill a set with dirty lines, then overflow it.
	for i := 0; i < 5; i++ {
		u.Access(0, addr(c, 0, 2, i), true, int64(i*10))
	}
	if u.Stats().WritebacksToMem == 0 {
		t.Fatal("dirty eviction did not write back to memory")
	}
	if cfg.DRAM.Stats().Writes == 0 {
		t.Fatal("DRAM saw no writes")
	}
}

func TestFourCoreQuotas(t *testing.T) {
	f := NewFairShare(testConfig(4))
	got := f.Allocations()
	for i, q := range got {
		if q != 2 {
			t.Fatalf("core %d quota = %d, want 2 (8 ways / 4 cores)", i, q)
		}
	}
}
