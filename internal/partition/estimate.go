package partition

// Set-sampled estimation (DESIGN.md §15). Under FidelitySetSampled the
// LLC backs only 1/K of its sets with real storage; accesses to the
// other sets still need a timing outcome, or the cores would run K
// times too fast. The controller synthesizes those outcomes from what
// the sampled subset observed: a per-core hit-rate estimator decides
// hit vs miss, and an estimated miss is priced by a real DRAM read —
// the cache arrays stay sampled, the memory system does not, so the
// DRAM queues carry the full-rate miss traffic and the latencies the
// sampled sets observe stay honest. Estimated accesses touch no
// cache, monitor or scaled counter state — the sampled subset alone
// estimates the full cache — but they are charged on the energy meter
// at weight 1 like every other access (sampled + estimated ≈ the true
// access count).

// estimator is one core's estimated-access synthesizer. Hit/miss
// decisions use error diffusion in Q16 fixed point: each estimated
// access accrues the core's observed sampled hit rate as credit, and a
// full unit of credit is spent as one estimated hit. The stream of
// decisions is deterministic (no RNG, no time dependence) and its hit
// fraction converges to the observed rate, so two runs of one config
// are byte-identical and the estimated traffic mirrors the sampled
// traffic's behaviour.
type estimator struct {
	Accesses uint64 // sampled accesses observed for this core
	Hits     uint64 // sampled hits observed for this core
	Credit   uint64 // Q16 error-diffusion accumulator
}

// estimated synthesizes the outcome of one access to a non-sampled
// set: hit/miss by error diffusion on core's observed sampled hit
// rate (no observations yet = miss), latency the L2 hit latency plus,
// on a miss, a real DRAM read for the line. The access bypasses the
// LLC bank ports and MSHRs (there is no sampled state to contend on)
// but not the memory system — estimated misses occupy DRAM banks, the
// bus and the outstanding-request queue exactly like sampled ones, so
// contention is modelled at the true miss rate rather than 1/K of it.
func (b *Controller) estimated(core, tags int, permCheck bool, line uint64, now int64) Result {
	e := &b.est[core]
	var rate uint64
	if e.Accesses > 0 {
		rate = (e.Hits << 16) / e.Accesses
	}
	e.Credit += rate
	res := Result{TagsConsulted: tags, PermCheck: permCheck, Latency: int64(b.l2.Latency())}
	if e.Credit >= 1<<16 {
		e.Credit -= 1 << 16
		res.Hit = true
	} else {
		res.Latency += b.dram.Read(line, now+int64(b.l2.Latency()))
	}
	return res
}

// EstimatedAccess exposes the estimated path to schemes outside this
// package (Cooperative Partitioning), which gate on Cache().Sampled
// before touching any of their per-set state.
func (b *Controller) EstimatedAccess(core, tags int, permCheck bool, line uint64, now int64) Result {
	return b.estimated(core, tags, permCheck, line, now)
}
