package partition

import "repro/internal/umon"

// PIPP is promotion/insertion pseudo-partitioning (Xie & Loh, ISCA
// 2009), implemented as an extension beyond the paper's evaluated
// schemes — Section 6 cites it as the other state-of-the-art way of
// enforcing partitions without hard quotas. Instead of restricting
// replacement, PIPP enforces each core's target allocation through the
// replacement *stack*:
//
//   - an incoming line of core i is inserted at stack position
//     quota[i] - 1 from the LRU end (a core with a large quota inserts
//     near MRU and its lines survive long; a core with quota 1 inserts
//     at LRU and its lines are evicted next unless re-used);
//   - on a hit, a line is promoted by a single position (with
//     probability 1 in this implementation) rather than jumping to
//     MRU.
//
// Like UCP, quotas come from the look-ahead allocation over utility
// monitors, every access probes all tag ways, and nothing can be
// power-gated — PIPP is a performance scheme; it is included to show
// the Cooperative Partitioning energy results against a second
// pseudo-partitioning baseline.
//
// On the Controller's access path PIPP's whole personality is two
// hooks: touch (single-step promotion instead of the MRU touch) and
// afterInstall (demotion to the insertion position). The fill victim is
// the default invalid-then-LRU choice, which equals the stack's LRU
// end.
type PIPP struct {
	Controller
	mons   []*umon.Monitor
	quotas []int
	hooks  accessHooks
}

// NewPIPP builds the scheme.
func NewPIPP(cfg Config) *PIPP {
	p := &PIPP{Controller: NewController(cfg)}
	p.mons = p.newMonitors()
	p.quotas = p.EqualShares()
	p.hooks = accessHooks{
		touch:        p.promote,
		afterInstall: func(set, way, core int) { p.insertAt(set, way, p.quotas[core]-1) },
		mons:         p.mons,
	}
	return p
}

// Name implements Scheme.
func (p *PIPP) Name() string { return "PIPP" }

// Monitors exposes the utility monitors.
func (p *PIPP) Monitors() []*umon.Monitor { return p.mons }

// stackOrder returns the set's ways ordered LRU-first (invalid ways
// first, as "below LRU").
func (p *PIPP) stackOrder(set int) []int {
	ways := p.l2.Ways()
	order := make([]int, 0, ways)
	// Insertion sort by (valid, LRU).
	for w := 0; w < ways; w++ {
		order = append(order, w)
	}
	less := func(a, b int) bool {
		va, vb := p.l2.ValidAt(set, a), p.l2.ValidAt(set, b)
		if va != vb {
			return !va
		}
		return p.l2.LRUAt(set, a) < p.l2.LRUAt(set, b)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && less(order[j], order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// Access implements Scheme.
func (p *PIPP) Access(core int, addr uint64, isWrite bool, now int64) Result {
	return p.access(core, addr, isWrite, now, &p.hooks)
}

// promote lifts way by one stack position: swap LRU stamps with the
// next-more-recent block (if any).
func (p *PIPP) promote(set, way int) {
	order := p.stackOrder(set)
	for i, w := range order {
		if w != way {
			continue
		}
		if i+1 < len(order) && p.l2.ValidAt(set, order[i+1]) {
			p.swapLRU(set, way, order[i+1])
		}
		return
	}
}

// insertAt positions way at `pos` from the LRU end (0 = LRU) by
// swapping it down from wherever InstallAt left it (MRU).
func (p *PIPP) insertAt(set, way, pos int) {
	if pos < 0 {
		pos = 0
	}
	for {
		order := p.stackOrder(set)
		cur := -1
		for i, w := range order {
			if w == way {
				cur = i
				break
			}
		}
		if cur <= pos {
			return
		}
		below := order[cur-1]
		if !p.l2.ValidAt(set, below) {
			return // already just above the invalid region
		}
		p.swapLRU(set, way, below)
	}
}

// swapLRU exchanges the recency stamps of two blocks in a set.
func (p *PIPP) swapLRU(set, a, b int) {
	la, lb := p.l2.LRUAt(set, a), p.l2.LRUAt(set, b)
	p.l2.SetLRU(set, a, lb)
	p.l2.SetLRU(set, b, la)
}

// Decide implements Scheme: recompute quotas by look-ahead.
func (p *PIPP) Decide(now int64) {
	p.stats.Decisions++
	next := umon.Lookahead(p.MissCurves(p.mons), p.l2.Ways(), p.cfg.MinAllocWays)
	p.DecayMonitors(p.mons)
	for i := range next {
		if next[i] != p.quotas[i] {
			p.stats.Repartitions++
			p.quotas = next
			return
		}
	}
}

// Allocations implements Scheme.
func (p *PIPP) Allocations() []int { return append([]int(nil), p.quotas...) }
