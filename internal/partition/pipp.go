package partition

import "repro/internal/umon"

// PIPP is promotion/insertion pseudo-partitioning (Xie & Loh, ISCA
// 2009), implemented as an extension beyond the paper's evaluated
// schemes — Section 6 cites it as the other state-of-the-art way of
// enforcing partitions without hard quotas. Instead of restricting
// replacement, PIPP enforces each core's target allocation through the
// replacement *stack*:
//
//   - an incoming line of core i is inserted at stack position
//     quota[i] - 1 from the LRU end (a core with a large quota inserts
//     near MRU and its lines survive long; a core with quota 1 inserts
//     at LRU and its lines are evicted next unless re-used);
//   - on a hit, a line is promoted by a single position (with
//     probability 1 in this implementation) rather than jumping to
//     MRU.
//
// Like UCP, quotas come from the look-ahead allocation over utility
// monitors, every access probes all tag ways, and nothing can be
// power-gated — PIPP is a performance scheme; it is included to show
// the Cooperative Partitioning energy results against a second
// pseudo-partitioning baseline.
type PIPP struct {
	Harness
	mons   []*umon.Monitor
	quotas []int
}

// NewPIPP builds the scheme.
func NewPIPP(cfg Config) *PIPP {
	p := &PIPP{Harness: NewHarness(cfg)}
	p.mons = p.NewMonitors()
	p.quotas = make([]int, p.n)
	share := p.l2.Ways() / p.n
	extra := p.l2.Ways() % p.n
	for i := range p.quotas {
		p.quotas[i] = share
		if i < extra {
			p.quotas[i]++
		}
	}
	return p
}

// Name implements Scheme.
func (p *PIPP) Name() string { return "PIPP" }

// Monitors exposes the utility monitors.
func (p *PIPP) Monitors() []*umon.Monitor { return p.mons }

// stackOrder returns the set's ways ordered LRU-first (invalid ways
// first, as "below LRU").
func (p *PIPP) stackOrder(set int) []int {
	ways := p.l2.Ways()
	order := make([]int, 0, ways)
	// Insertion sort by (valid, LRU).
	for w := 0; w < ways; w++ {
		order = append(order, w)
	}
	less := func(a, b int) bool {
		va, vb := p.l2.ValidAt(set, a), p.l2.ValidAt(set, b)
		if va != vb {
			return !va
		}
		return p.l2.LRUAt(set, a) < p.l2.LRUAt(set, b)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && less(order[j], order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// Access implements Scheme.
func (p *PIPP) Access(core int, addr uint64, isWrite bool, now int64) Result {
	line := p.l2.Line(addr)
	set := p.l2.Index(line)
	tag := p.l2.TagOf(line)
	res := Result{TagsConsulted: p.l2.Ways()}

	p.mons[core].Access(set, line)
	res.UMONSampled = p.umonSampled(set)

	if way, hit := p.l2.Probe(set, tag, p.l2.AllMask()); hit {
		p.promote(set, way)
		if isWrite {
			p.l2.MarkDirty(set, way)
		}
		res.Hit = true
		res.Latency = int64(p.l2.Latency())
	} else {
		order := p.stackOrder(set)
		victim := order[0] // LRU (or an invalid way)
		ev := p.l2.InstallAt(set, victim, tag, core, isWrite)
		if ev.Valid && ev.Dirty {
			p.writeback(ev.Line, now)
			res.Writebacks++
		}
		p.insertAt(set, victim, p.quotas[core]-1)
		res.Latency = int64(p.l2.Latency()) + p.fill(line, now+int64(p.l2.Latency()))
	}

	p.record(core, res.Hit, res.TagsConsulted)
	st := p.l2.Stats()
	st.Accesses++
	if res.Hit {
		st.Hits++
	} else {
		st.Misses++
	}
	return res
}

// promote lifts way by one stack position: swap LRU stamps with the
// next-more-recent block (if any).
func (p *PIPP) promote(set, way int) {
	order := p.stackOrder(set)
	for i, w := range order {
		if w != way {
			continue
		}
		if i+1 < len(order) && p.l2.ValidAt(set, order[i+1]) {
			p.swapLRU(set, way, order[i+1])
		}
		return
	}
}

// insertAt positions way at `pos` from the LRU end (0 = LRU) by
// swapping it down from wherever InstallAt left it (MRU).
func (p *PIPP) insertAt(set, way, pos int) {
	if pos < 0 {
		pos = 0
	}
	for {
		order := p.stackOrder(set)
		cur := -1
		for i, w := range order {
			if w == way {
				cur = i
				break
			}
		}
		if cur <= pos {
			return
		}
		below := order[cur-1]
		if !p.l2.ValidAt(set, below) {
			return // already just above the invalid region
		}
		p.swapLRU(set, way, below)
	}
}

// swapLRU exchanges the recency stamps of two blocks in a set.
func (p *PIPP) swapLRU(set, a, b int) {
	la, lb := p.l2.LRUAt(set, a), p.l2.LRUAt(set, b)
	p.l2.SetLRU(set, a, lb)
	p.l2.SetLRU(set, b, la)
}

// Decide implements Scheme: recompute quotas by look-ahead.
func (p *PIPP) Decide(now int64) {
	p.stats.Decisions++
	curves := make([]umon.Curve, p.n)
	for i, m := range p.mons {
		curves[i] = m.MissCurve()
	}
	next := umon.Lookahead(curves, p.l2.Ways(), p.cfg.MinAllocWays)
	for _, m := range p.mons {
		m.Decay()
	}
	for i := range next {
		if next[i] != p.quotas[i] {
			p.stats.Repartitions++
			p.quotas = next
			return
		}
	}
}

// PoweredWayEquiv implements Scheme: PIPP cannot gate ways.
func (p *PIPP) PoweredWayEquiv() float64 { return float64(p.l2.Ways()) }

// Allocations implements Scheme.
func (p *PIPP) Allocations() []int { return append([]int(nil), p.quotas...) }
