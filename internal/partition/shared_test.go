package partition

// Shared-way fallback tests for the comparison schemes: with more
// cores than LLC ways (allowed only via Config.SharedWays) every
// scheme must keep all cores serviceable — quota schemes through
// replacement competition, CPE through pinned one-way shared regions.

import (
	"math/bits"
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
)

func sharedCfg(cores, ways, sets int) Config {
	return Config{
		Cache:    cache.Config{Name: "l2", SizeBytes: sets * ways * 64, LineBytes: 64, Ways: ways, Latency: 10},
		NumCores: cores,
		DRAM:     mem.New(mem.DefaultConfig()),
	}
}

func TestValidateSharedWays(t *testing.T) {
	cfg := sharedCfg(8, 4, 16)
	if err := cfg.Validate(); err == nil {
		t.Fatal("8 cores on 4 ways without SharedWays must fail validation")
	}
	cfg.SharedWays = true
	if err := cfg.Validate(); err != nil {
		t.Fatalf("SharedWays config rejected: %v", err)
	}
	cfg.NumCores = 65
	if err := cfg.Validate(); err == nil {
		t.Fatal("65 cores must exceed the 64-core mask limit")
	}
}

func TestSharedFallbackQuotaSchemes(t *testing.T) {
	const cores, ways, sets = 8, 4, 16
	cfg := sharedCfg(cores, ways, sets)
	cfg.SharedWays = true
	for _, mk := range []func() Scheme{
		func() Scheme { return NewUnmanaged(cfg) },
		func() Scheme { return NewFairShare(cfg) },
		func() Scheme { return NewUCP(cfg) },
		func() Scheme { return NewPIPP(cfg) },
	} {
		s := mk()
		now := int64(0)
		for round := 0; round < 4; round++ {
			for core := 0; core < cores; core++ {
				for k := 0; k < 8; k++ {
					line := uint64(core+1)<<24 | uint64(k*sets+core)
					// Twice: re-use must be able to hit even under
					// full competition.
					s.Access(core, line*64, false, now)
					s.Access(core, line*64, false, now+5)
					now += 13
				}
			}
			s.Decide(now)
		}
		st := s.Stats()
		for core := 0; core < cores; core++ {
			if st.PerCore[core].Accesses == 0 {
				t.Fatalf("%s: core %d recorded no accesses", s.Name(), core)
			}
			if st.PerCore[core].Hits == 0 {
				t.Fatalf("%s: core %d never hit", s.Name(), core)
			}
		}
		if alloc := s.Allocations(); len(alloc) != cores {
			t.Fatalf("%s: allocations %v, want %d entries", s.Name(), alloc, cores)
		}
		if pw := s.PoweredWayEquiv(); pw != float64(ways) {
			t.Fatalf("%s: powered %v, want %d", s.Name(), pw, ways)
		}
	}
}

func TestSharedFallbackCPE(t *testing.T) {
	const cores, ways, sets = 8, 4, 16
	cfg := sharedCfg(cores, ways, sets)
	cfg.SharedWays = true
	c := NewCPE(cfg, nil)
	// Each core is pinned to its ring cluster's single way.
	for core := 0; core < cores; core++ {
		m := c.wayMask[core]
		if bits.OnesCount64(m) != 1 {
			t.Fatalf("core %d region mask %b, want a single shared way", core, m)
		}
		if w := bits.TrailingZeros64(m); w != core*ways/cores {
			t.Fatalf("core %d pinned to way %d, want %d", core, w, core*ways/cores)
		}
	}
	now := int64(0)
	for round := 0; round < 4; round++ {
		for core := 0; core < cores; core++ {
			line := uint64(core+1)<<24 | uint64(core)
			c.Access(core, line*64, false, now)
			res := c.Access(core, line*64, false, now+5)
			if !res.Hit {
				t.Fatalf("round %d: core %d immediate re-use missed", round, core)
			}
			now += 11
		}
		c.Decide(now)
	}
	if c.Stats().Repartitions != 0 {
		t.Fatalf("shared CPE repartitioned %d times, want 0 (pinned regions)", c.Stats().Repartitions)
	}
	if pw := c.PoweredWayEquiv(); pw != float64(ways) {
		t.Fatalf("powered %v, want %d (union of shared regions)", pw, ways)
	}
}
