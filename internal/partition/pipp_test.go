package partition

import (
	"math/rand"
	"testing"
)

func TestPIPPBasicHitMiss(t *testing.T) {
	p := NewPIPP(testConfig(2))
	c := p.Cache()
	a := addr(c, 0, 3, 1)
	res := p.Access(0, a, false, 0)
	if res.Hit || res.TagsConsulted != 4 {
		t.Fatalf("first access: %+v", res)
	}
	if !p.Access(0, a, false, 10).Hit {
		t.Fatal("re-access should hit")
	}
	if p.PoweredWayEquiv() != 4 {
		t.Fatal("PIPP cannot gate ways")
	}
}

func TestPIPPInsertionPositionEnforcesQuota(t *testing.T) {
	p := NewPIPP(testConfig(2))
	c := p.Cache()
	// Fill the set with core 0's lines (quota 2, inserted at position 1
	// from LRU). Then one core 1 line arrives. Core 0's next fills must
	// evict core-0 lines near the LRU end rather than pushing core 1
	// out from MRU.
	for i := 0; i < 4; i++ {
		p.Access(0, addr(c, 0, 5, i), false, int64(i))
	}
	p.Access(1, addr(c, 1, 5, 0), false, 10)
	// Keep core 1's line warm with a couple of promotions.
	p.Access(1, addr(c, 1, 5, 0), false, 11)
	p.Access(1, addr(c, 1, 5, 0), false, 12)
	// A burst of new core 0 lines: they insert low and churn each other.
	for i := 10; i < 16; i++ {
		p.Access(0, addr(c, 0, 5, i), false, int64(20+i))
	}
	if !p.Access(1, addr(c, 1, 5, 0), false, 100).Hit {
		t.Fatal("PIPP insertion failed to protect the promoted line")
	}
}

func TestPIPPPromotionIsOneStep(t *testing.T) {
	p := NewPIPP(testConfig(2))
	c := p.Cache()
	// Fill 4 ways; the LRU-most line, after ONE hit, must still be
	// evicted before lines promoted many times.
	for i := 0; i < 4; i++ {
		p.Access(0, addr(c, 0, 2, i), false, int64(i))
	}
	// Promote line 3 many times, line 0 once.
	for k := 0; k < 6; k++ {
		p.Access(0, addr(c, 0, 2, 3), false, int64(10+k))
	}
	p.Access(0, addr(c, 0, 2, 0), false, 20)
	// Two new fills (insert at pos 1) — evictions take the stack
	// bottom; line 3 must survive.
	p.Access(0, addr(c, 0, 2, 8), false, 30)
	p.Access(0, addr(c, 0, 2, 9), false, 31)
	if !p.Access(0, addr(c, 0, 2, 3), false, 40).Hit {
		t.Fatal("heavily promoted line was evicted")
	}
}

func TestPIPPDecideMovesQuotas(t *testing.T) {
	p := NewPIPP(testConfig(2))
	c := p.Cache()
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5000; i++ {
		s := rng.Intn(16)
		p.Access(0, addr(c, 0, s, i%4), false, int64(i))
		p.Access(1, addr(c, 1, s, 0), false, int64(i))
	}
	p.Decide(10000)
	alloc := p.Allocations()
	if alloc[0] <= alloc[1] {
		t.Fatalf("PIPP did not favour the high-utility core: %v", alloc)
	}
	if alloc[0]+alloc[1] != 4 {
		t.Fatalf("PIPP quotas must cover the cache: %v", alloc)
	}
}

func TestPIPPStackOrderConsistent(t *testing.T) {
	p := NewPIPP(testConfig(2))
	c := p.Cache()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		p.Access(rng.Intn(2), addr(c, rng.Intn(2), rng.Intn(16), rng.Intn(6)), rng.Intn(3) == 0, int64(i))
	}
	// The stack order must be a permutation of the ways with
	// non-decreasing LRU stamps over the valid suffix.
	for set := 0; set < 16; set++ {
		order := p.stackOrder(set)
		seen := map[int]bool{}
		var prev uint64
		inValid := false
		for _, w := range order {
			if seen[w] {
				t.Fatalf("set %d: way %d repeated in stack order", set, w)
			}
			seen[w] = true
			b := c.Block(set, w)
			if b.Valid {
				if inValid && b.LRU < prev {
					t.Fatalf("set %d: stack order not sorted by recency", set)
				}
				inValid = true
				prev = b.LRU
			} else if inValid {
				t.Fatalf("set %d: invalid way after valid ways in stack order", set)
			}
		}
		if len(seen) != 4 {
			t.Fatalf("set %d: order missing ways", set)
		}
	}
}

func TestPIPPImplementsScheme(t *testing.T) {
	var s Scheme = NewPIPP(testConfig(2))
	if s.Name() != "PIPP" {
		t.Fatalf("Name = %q", s.Name())
	}
	s.Decide(0)
	if len(s.Allocations()) != 2 {
		t.Fatal("allocations wrong")
	}
}
