package partition

// FairShare is the statically-partitioned comparison scheme: every core
// holds an equal share of the ways for the whole run, regardless of its
// memory behaviour. Data is not way-aligned, so all tag ways are
// consulted on every access and every way stays powered — Fair Share is
// the normalisation baseline for both energy figures.
type FairShare struct {
	Controller
	quotas []int
	hooks  accessHooks
}

// NewFairShare builds the static equal-share scheme.
func NewFairShare(cfg Config) *FairShare {
	f := &FairShare{Controller: NewController(cfg)}
	f.quotas = f.EqualShares()
	f.hooks = accessHooks{
		victim: func(set, core int, _ uint64) int { return f.quotaVictim(set, core, f.quotas) },
	}
	return f
}

// Name implements Scheme.
func (f *FairShare) Name() string { return "FairShare" }

// Access implements Scheme.
func (f *FairShare) Access(core int, addr uint64, isWrite bool, now int64) Result {
	return f.access(core, addr, isWrite, now, &f.hooks)
}

// Allocations implements Scheme.
func (f *FairShare) Allocations() []int { return append([]int(nil), f.quotas...) }
