package partition

// FairShare is the statically-partitioned comparison scheme: every core
// holds an equal share of the ways for the whole run, regardless of its
// memory behaviour. Data is not way-aligned, so all tag ways are
// consulted on every access and every way stays powered — Fair Share is
// the normalisation baseline for both energy figures.
type FairShare struct {
	Harness
	quotas []int
}

// NewFairShare builds the static equal-share scheme.
func NewFairShare(cfg Config) *FairShare {
	f := &FairShare{Harness: NewHarness(cfg)}
	f.quotas = make([]int, f.n)
	share := f.l2.Ways() / f.n
	extra := f.l2.Ways() % f.n
	for i := range f.quotas {
		f.quotas[i] = share
		if i < extra {
			f.quotas[i]++
		}
	}
	return f
}

// Name implements Scheme.
func (f *FairShare) Name() string { return "FairShare" }

// Access implements Scheme.
func (f *FairShare) Access(core int, addr uint64, isWrite bool, now int64) Result {
	return f.quotaAccess(core, addr, isWrite, now, f.quotas, nil, nil)
}

// Decide implements Scheme; the partition is fixed.
func (f *FairShare) Decide(now int64) { f.stats.Decisions++ }

// PoweredWayEquiv implements Scheme: everything stays on.
func (f *FairShare) PoweredWayEquiv() float64 { return float64(f.l2.Ways()) }

// Allocations implements Scheme.
func (f *FairShare) Allocations() []int { return append([]int(nil), f.quotas...) }
