package partition

// Unmanaged is the baseline: a conventional shared LLC with global LRU
// replacement. Cores evict each other's data freely, every access
// consults every tag way, and every way is always powered. It is the
// Controller's access path with no policy hooks at all.
type Unmanaged struct {
	Controller
	hooks accessHooks
}

// NewUnmanaged builds the baseline scheme.
func NewUnmanaged(cfg Config) *Unmanaged {
	return &Unmanaged{Controller: NewController(cfg)}
}

// Name implements Scheme.
func (u *Unmanaged) Name() string { return "Unmanaged" }

// Access implements Scheme.
func (u *Unmanaged) Access(core int, addr uint64, isWrite bool, now int64) Result {
	return u.access(core, addr, isWrite, now, &u.hooks)
}

// Allocations implements Scheme: no quotas; report full ways for every
// core (everyone may use everything).
func (u *Unmanaged) Allocations() []int {
	alloc := make([]int, u.n)
	for i := range alloc {
		alloc[i] = u.l2.Ways()
	}
	return alloc
}
