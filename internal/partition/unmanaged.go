package partition

// Unmanaged is the baseline: a conventional shared LLC with global LRU
// replacement. Cores evict each other's data freely, every access
// consults every tag way, and every way is always powered.
type Unmanaged struct {
	Harness
}

// NewUnmanaged builds the baseline scheme.
func NewUnmanaged(cfg Config) *Unmanaged {
	return &Unmanaged{Harness: NewHarness(cfg)}
}

// Name implements Scheme.
func (u *Unmanaged) Name() string { return "Unmanaged" }

// Access implements Scheme.
func (u *Unmanaged) Access(core int, addr uint64, isWrite bool, now int64) Result {
	line := u.l2.Line(addr)
	set := u.l2.Index(line)
	tag := u.l2.TagOf(line)
	mask := u.l2.AllMask()
	res := Result{TagsConsulted: u.l2.Ways()}

	if way, hit := u.l2.Probe(set, tag, mask); hit {
		u.l2.Touch(set, way)
		if isWrite {
			u.l2.MarkDirty(set, way)
		}
		res.Hit = true
		res.Latency = int64(u.l2.Latency())
	} else {
		victim := u.l2.Victim(set, mask)
		ev := u.l2.InstallAt(set, victim, tag, core, isWrite)
		if ev.Valid && ev.Dirty {
			u.writeback(ev.Line, now)
			res.Writebacks++
		}
		res.Latency = int64(u.l2.Latency()) + u.fill(line, now+int64(u.l2.Latency()))
	}
	u.record(core, res.Hit, res.TagsConsulted)
	u.l2.Stats().Accesses++
	if res.Hit {
		u.l2.Stats().Hits++
	} else {
		u.l2.Stats().Misses++
	}
	return res
}

// Decide implements Scheme; the unmanaged cache never repartitions.
func (u *Unmanaged) Decide(now int64) { u.stats.Decisions++ }

// PoweredWayEquiv implements Scheme: everything is always on.
func (u *Unmanaged) PoweredWayEquiv() float64 { return float64(u.l2.Ways()) }

// Allocations implements Scheme: no quotas; report full ways for every
// core (everyone may use everything).
func (u *Unmanaged) Allocations() []int {
	alloc := make([]int, u.n)
	for i := range alloc {
		alloc[i] = u.l2.Ways()
	}
	return alloc
}
