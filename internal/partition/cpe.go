package partition

import (
	"math/bits"

	"repro/internal/umon"
)

// CPE is the paper's energy-oriented comparison scheme (Section 3.4):
// Reddy & Petrov's cache partitioning for energy efficiency, extended —
// as the paper does — to a dynamic setting. Partitions are configurable
// in both sets and ways, computed offline from per-application profiles
// and applied at runtime phase boundaries. Every reconfiguration
// immediately flushes the blocks whose region changed, which is the
// flushing cost the paper's evaluation highlights: with frequent phase
// changes Dynamic CPE pays heavily, and the cost grows with core count.
//
// Each core is confined to a private region: a contiguous range of ways
// and a power-of-two fraction of the sets (addresses fold into the
// region, trading conflict misses for the ability to gate the unused
// sets). Accesses probe only the core's own ways, so CPE saves dynamic
// energy like Cooperative Partitioning does, and unassigned
// ways/set-fractions are power-gated for static savings.
//
// Under the shared-way fallback (more cores than ways) private regions
// are impossible; each core is pinned to the single way its ring
// cluster shares and the layout stays static.
type CPE struct {
	Controller
	profiles []CoreProfile
	hooks    accessHooks

	phase    int
	wayMask  []uint64 // per-core ways
	setShift []int    // per-core: core sets = numSets >> shift
}

// CoreProfile is one application's offline profile: its utility curve
// and access intensity for each phase interval, recorded from a solo
// profiling run (cycled if the run outlives the profile).
type CoreProfile struct {
	Phases []ProfilePhase
}

// ProfilePhase is the profile of one phase interval.
type ProfilePhase struct {
	Curve    umon.Curve
	Accesses uint64
}

// phaseAt returns the profile entry for phase i, cycling.
func (p CoreProfile) phaseAt(i int) ProfilePhase {
	if len(p.Phases) == 0 {
		return ProfilePhase{}
	}
	return p.Phases[i%len(p.Phases)]
}

// NewCPE builds Dynamic CPE from per-core profiles (profiles[i] belongs
// to core i; missing profiles are treated as empty and the core gets
// only its guaranteed minimum).
func NewCPE(cfg Config, profiles []CoreProfile) *CPE {
	c := &CPE{Controller: NewController(cfg)}
	c.profiles = make([]CoreProfile, c.n)
	copy(c.profiles, profiles)
	c.wayMask = make([]uint64, c.n)
	c.setShift = make([]int, c.n)
	if c.shared {
		// Shared-way fallback: core i is pinned to its ring cluster's
		// way.
		for i := 0; i < c.n; i++ {
			c.wayMask[i] = 1 << uint(c.SharedClusterWay(i))
		}
	} else {
		// Initial layout: equal contiguous shares, full sets.
		start := 0
		for i, share := range c.EqualShares() {
			c.wayMask[i] = maskRange(start, share)
			start += share
		}
	}
	c.hooks = accessHooks{
		mask:   func(core int) uint64 { return c.wayMask[core] },
		mapSet: func(core, set int) int { return set & (c.coreSets(core) - 1) },
	}
	return c
}

// maskRange returns a mask of count ways starting at start.
func maskRange(start, count int) uint64 {
	var m uint64
	for i := 0; i < count; i++ {
		m |= 1 << uint(start+i)
	}
	return m
}

// Name implements Scheme.
func (c *CPE) Name() string { return "DynCPE" }

// coreSets returns the number of sets in core i's region.
func (c *CPE) coreSets(i int) int { return c.l2.NumSets() >> uint(c.setShift[i]) }

// Access implements Scheme.
func (c *CPE) Access(core int, addr uint64, isWrite bool, now int64) Result {
	return c.access(core, addr, isWrite, now, &c.hooks)
}

// Decide implements Scheme: look the next phase up in the profiles,
// recompute the region layout and flush whatever moved. In shared mode
// the regions are pinned (ways are shared; reshuffling them would
// flush other cores' shared data on every phase), so only the phase
// counter advances.
func (c *CPE) Decide(now int64) {
	c.stats.Decisions++
	c.decayEstimators()
	defer func() { c.phase++ }()
	if c.shared {
		return
	}

	curves := make([]umon.Curve, c.n)
	accs := make([]uint64, c.n)
	for i := 0; i < c.n; i++ {
		ph := c.profiles[i].phaseAt(c.phase)
		curves[i] = ph.Curve
		accs[i] = ph.Accesses
		if curves[i] == nil {
			curves[i] = make(umon.Curve, c.l2.Ways()+1)
		}
	}
	alloc := umon.ThresholdLookahead(curves, c.l2.Ways(), c.cfg.MinAllocWays, c.cfg.Threshold)

	// Set-dimension heuristic: an application whose profiled traffic
	// cannot even touch every set once is confined to half the sets.
	// This is CPE's extra flexibility over way-only schemes; it is kept
	// conservative because folding an active application's sets doubles
	// its conflict pressure.
	newShift := make([]int, c.n)
	for i := 0; i < c.n; i++ {
		if accs[i] < uint64(c.l2.NumSets()) {
			newShift[i] = 1
		}
	}

	// Lay ways out contiguously in core order.
	newMask := make([]uint64, c.n)
	start := 0
	for i := 0; i < c.n; i++ {
		newMask[i] = maskRange(start, alloc[i])
		start += alloc[i]
	}

	changed := false
	var flushWays uint64
	for i := 0; i < c.n; i++ {
		if newMask[i] != c.wayMask[i] || newShift[i] != c.setShift[i] {
			changed = true
			// Both the old and new regions of a reconfigured core are
			// invalidated: the fold changes and ownership moves.
			flushWays |= c.wayMask[i] | newMask[i]
		}
	}
	if !changed {
		return
	}
	c.stats.Repartitions++
	c.FlushWays(flushWays, now)
	c.wayMask = newMask
	c.setShift = newShift
}

// PoweredWayEquiv implements Scheme: allocated ways scaled by each
// core's set fraction; everything else is gated. Shared ways are
// counted once — the union of the per-core regions is what is powered.
func (c *CPE) PoweredWayEquiv() float64 {
	if c.shared {
		var union uint64
		for i := 0; i < c.n; i++ {
			union |= c.wayMask[i]
		}
		return float64(bits.OnesCount64(union))
	}
	var eq float64
	for i := 0; i < c.n; i++ {
		eq += float64(bits.OnesCount64(c.wayMask[i])) / float64(int(1)<<uint(c.setShift[i]))
	}
	return eq
}

// Allocations implements Scheme.
func (c *CPE) Allocations() []int {
	alloc := make([]int, c.n)
	for i := range alloc {
		alloc[i] = bits.OnesCount64(c.wayMask[i])
	}
	return alloc
}
