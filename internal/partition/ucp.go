package partition

import "repro/internal/umon"

// UCP is utility-based cache partitioning (Qureshi & Patt, MICRO 2006),
// the state-of-the-art performance-oriented comparison scheme. Way
// quotas are recomputed each phase by the look-ahead algorithm from
// per-core utility monitors and enforced through replacement. Data is
// not way-aligned: every access probes all tag ways and no way can be
// powered off, so UCP provides no dynamic or static energy savings
// (Figures 6, 7, 9, 10).
//
// Way migration under UCP is implicit: after a decision, a recipient
// core's misses gradually evict the donor's blocks. The transition
// tracker below measures how long that takes (Figure 15: one block
// transferred in every set per migrating way) and how many dirty lines
// it flushes (Figure 16).
type UCP struct {
	Controller
	mons   []*umon.Monitor
	quotas []int
	hooks  accessHooks

	tr *ucpTransition
}

// ucpTransition tracks the convergence of one quota change. A set is
// converged once every donor's occupancy there has dropped to its new
// quota; the transition (the paper's "transfer one block from each
// set") completes when every set has converged.
type ucpTransition struct {
	start     int64
	donors    map[int]bool
	waysMoved int
	setDone   []bool
	remaining int // sets not yet converged
}

// NewUCP builds the UCP scheme with one utility monitor per core.
func NewUCP(cfg Config) *UCP {
	u := &UCP{Controller: NewController(cfg)}
	u.mons = u.newMonitors()
	// Until the first decision, behave like Fair Share.
	u.quotas = u.EqualShares()
	u.hooks = accessHooks{
		victim:   func(set, core int, _ uint64) int { return u.quotaVictim(set, core, u.quotas) },
		onVictim: u.onVictim,
		mons:     u.mons,
	}
	return u
}

// Name implements Scheme.
func (u *UCP) Name() string { return "UCP" }

// Monitors exposes the per-core utility monitors.
func (u *UCP) Monitors() []*umon.Monitor { return u.mons }

// Access implements Scheme.
func (u *UCP) Access(core int, addr uint64, isWrite bool, now int64) Result {
	return u.access(core, addr, isWrite, now, &u.hooks)
}

// onVictim advances the transition tracker on every miss fill: flushes
// of dirty donor blocks are logged for Figure 16, and the set is marked
// converged once no donor holds more than its quota there.
func (u *UCP) onVictim(core int, ev victimEvent, now int64) {
	tr := u.tr
	if tr == nil {
		return
	}
	if ev.valid && tr.donors[ev.owner] && ev.owner != core && ev.dirty {
		u.trans.RecordFlush(now-tr.start, int(u.weight))
	}
	// Convergence is tracked per simulated set: under sampling only the
	// sampled sets receive victim events, so the per-set progress state
	// is indexed by dense sample row.
	row := ev.set >> u.l2.SampleShift()
	if tr.setDone[row] {
		return
	}
	for d := range tr.donors {
		if u.l2.CountOwned(ev.set, d, u.l2.AllMask()) > u.quotas[d] {
			return
		}
	}
	tr.setDone[row] = true
	tr.remaining--
	if tr.remaining == 0 {
		u.trans.Completed++
		u.trans.WaysMoved += uint64(tr.waysMoved)
		u.trans.TotalCycles += (now - tr.start) * int64(tr.waysMoved)
		u.tr = nil
	}
}

// Decide implements Scheme: run the look-ahead allocation on the
// monitors' miss curves and start tracking the resulting migration.
func (u *UCP) Decide(now int64) {
	u.stats.Decisions++
	next := umon.Lookahead(u.MissCurves(u.mons), u.l2.Ways(), u.cfg.MinAllocWays)
	u.DecayMonitors(u.mons)

	changed := false
	moved := 0
	donors := make(map[int]bool)
	for i := range next {
		if next[i] != u.quotas[i] {
			changed = true
		}
		if next[i] < u.quotas[i] {
			donors[i] = true
			moved += u.quotas[i] - next[i]
		}
	}
	if !changed {
		return
	}
	u.stats.Repartitions++
	u.quotas = next
	if moved == 0 {
		return
	}
	if u.tr != nil {
		u.trans.Abandoned++
	}
	u.tr = &ucpTransition{
		start:     now,
		donors:    donors,
		waysMoved: moved,
		setDone:   make([]bool, u.l2.SampledSets()),
		remaining: u.l2.SampledSets(),
	}
}

// Allocations implements Scheme.
func (u *UCP) Allocations() []int { return append([]int(nil), u.quotas...) }

// InTransition reports whether a quota migration is still converging.
func (u *UCP) InTransition() bool { return u.tr != nil }
