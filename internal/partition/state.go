package partition

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/umon"
)

// Snapshot/restore layer (DESIGN.md §14). Every scheme serializes its
// complete dynamic state — the cache substrate, counters, monitors and
// whatever policy state it carries — as one JSON document behind the
// Stateful interface, so the checkpoint layer handles all schemes
// (including Cooperative Partitioning in internal/core) uniformly
// without this package knowing their concrete types.

// Stateful is implemented by schemes whose mid-run state can be
// checkpointed and restored. Restore must only be called on a scheme
// freshly built from the same Config (and profiles, for profile-driven
// schemes) the snapshot was taken under: derived state is rebuilt by
// the constructor and only dynamic state travels in the document.
type Stateful interface {
	// StateJSON returns the scheme's dynamic state as a
	// self-contained JSON document.
	StateJSON() ([]byte, error)
	// RestoreStateJSON overwrites the scheme's dynamic state from a
	// document produced by StateJSON on an identically built scheme.
	RestoreStateJSON(data []byte) error
}

// controllerState is the dynamic state every scheme shares through its
// embedded Controller: the physical cache and the two counter blocks.
// The DRAM behind the controller is owned by the simulator and
// checkpoints at system level, not here.
type controllerState struct {
	Cache *cache.State
	Stats Stats
	Trans TransitionStats
	// Est carries the set-sampled estimator (estimate.go). It is
	// populated on every tier (record always maintains it) but only
	// influences behaviour under sampling.
	Est []estimator
}

func (b *Controller) state() controllerState {
	st := controllerState{
		Cache: b.l2.State(),
		Stats: Stats{
			PerCore:         append([]CoreStats(nil), b.stats.PerCore...),
			WritebacksToMem: b.stats.WritebacksToMem,
			Decisions:       b.stats.Decisions,
			Repartitions:    b.stats.Repartitions,
			FlushedOnDecide: b.stats.FlushedOnDecide,
		},
		Trans: *b.trans,
		Est:   append([]estimator(nil), b.est...),
	}
	st.Trans.Timeline = append([]uint64(nil), b.trans.Timeline...)
	return st
}

func (b *Controller) restoreState(st *controllerState) error {
	if st.Cache == nil {
		return fmt.Errorf("partition: snapshot missing cache state")
	}
	if len(st.Stats.PerCore) != len(b.stats.PerCore) {
		return fmt.Errorf("partition: snapshot has %d per-core stat blocks, controller has %d",
			len(st.Stats.PerCore), len(b.stats.PerCore))
	}
	if len(st.Trans.Timeline) != len(b.trans.Timeline) {
		return fmt.Errorf("partition: snapshot has %d timeline buckets, controller has %d",
			len(st.Trans.Timeline), len(b.trans.Timeline))
	}
	if err := b.l2.Restore(st.Cache); err != nil {
		return err
	}
	copy(b.stats.PerCore, st.Stats.PerCore)
	b.stats.WritebacksToMem = st.Stats.WritebacksToMem
	b.stats.Decisions = st.Stats.Decisions
	b.stats.Repartitions = st.Stats.Repartitions
	b.stats.FlushedOnDecide = st.Stats.FlushedOnDecide
	if len(st.Est) != len(b.est) {
		return fmt.Errorf("partition: snapshot has %d estimator blocks, controller has %d",
			len(st.Est), len(b.est))
	}
	copy(b.est, st.Est)
	timeline := b.trans.Timeline
	copy(timeline, st.Trans.Timeline)
	*b.trans = st.Trans
	b.trans.Timeline = timeline
	return nil
}

// ControllerStateJSON returns the embedded controller's dynamic state
// as a JSON document, for schemes implemented outside this package
// (Cooperative Partitioning embeds it in its own state document).
func (b *Controller) ControllerStateJSON() ([]byte, error) {
	return json.Marshal(b.state())
}

// RestoreControllerStateJSON restores the embedded controller's
// dynamic state from a ControllerStateJSON document.
func (b *Controller) RestoreControllerStateJSON(data []byte) error {
	var st controllerState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	return b.restoreState(&st)
}

// monitorStates snapshots a per-core monitor slice.
func monitorStates(mons []*umon.Monitor) []*umon.State {
	sts := make([]*umon.State, len(mons))
	for i, m := range mons {
		sts[i] = m.State()
	}
	return sts
}

// restoreMonitors restores a per-core monitor slice.
func restoreMonitors(mons []*umon.Monitor, sts []*umon.State) error {
	if len(sts) != len(mons) {
		return fmt.Errorf("partition: snapshot has %d monitors, scheme has %d", len(sts), len(mons))
	}
	for i, m := range mons {
		if err := m.Restore(sts[i]); err != nil {
			return fmt.Errorf("monitor %d: %w", i, err)
		}
	}
	return nil
}

// unmanagedState / fairShareState — only the controller moves.

type unmanagedState struct {
	Controller controllerState
}

// StateJSON implements Stateful.
func (u *Unmanaged) StateJSON() ([]byte, error) {
	return json.Marshal(unmanagedState{Controller: u.state()})
}

// RestoreStateJSON implements Stateful.
func (u *Unmanaged) RestoreStateJSON(data []byte) error {
	var st unmanagedState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	return u.restoreState(&st.Controller)
}

type fairShareState struct {
	Controller controllerState
	Quotas     []int
}

// StateJSON implements Stateful.
func (f *FairShare) StateJSON() ([]byte, error) {
	return json.Marshal(fairShareState{Controller: f.state(), Quotas: f.quotas})
}

// RestoreStateJSON implements Stateful.
func (f *FairShare) RestoreStateJSON(data []byte) error {
	var st fairShareState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if len(st.Quotas) != len(f.quotas) {
		return fmt.Errorf("fairshare: snapshot has %d quotas, scheme has %d", len(st.Quotas), len(f.quotas))
	}
	if err := f.restoreState(&st.Controller); err != nil {
		return err
	}
	copy(f.quotas, st.Quotas)
	return nil
}

// ucpTransitionState serializes ucpTransition. The donors map iterates
// order-independently on the access path, but a map would serialize in
// random key order; donors round-trip as a sorted slice so the same
// machine state always produces the same bytes (checkpoint entries are
// content-addressed).
type ucpTransitionState struct {
	Start     int64
	Donors    []int
	WaysMoved int
	SetDone   []bool
	Remaining int
}

type ucpState struct {
	Controller controllerState
	Monitors   []*umon.State
	Quotas     []int
	Transition *ucpTransitionState
}

// StateJSON implements Stateful.
func (u *UCP) StateJSON() ([]byte, error) {
	st := ucpState{
		Controller: u.state(),
		Monitors:   monitorStates(u.mons),
		Quotas:     u.quotas,
	}
	if u.tr != nil {
		donors := make([]int, 0, len(u.tr.donors))
		for d := range u.tr.donors {
			donors = append(donors, d)
		}
		sort.Ints(donors)
		st.Transition = &ucpTransitionState{
			Start:     u.tr.start,
			Donors:    donors,
			WaysMoved: u.tr.waysMoved,
			SetDone:   u.tr.setDone,
			Remaining: u.tr.remaining,
		}
	}
	return json.Marshal(st)
}

// RestoreStateJSON implements Stateful.
func (u *UCP) RestoreStateJSON(data []byte) error {
	var st ucpState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if len(st.Quotas) != len(u.quotas) {
		return fmt.Errorf("ucp: snapshot has %d quotas, scheme has %d", len(st.Quotas), len(u.quotas))
	}
	if err := u.restoreState(&st.Controller); err != nil {
		return err
	}
	if err := restoreMonitors(u.mons, st.Monitors); err != nil {
		return err
	}
	copy(u.quotas, st.Quotas)
	u.tr = nil
	if t := st.Transition; t != nil {
		if len(t.SetDone) != u.l2.SampledSets() {
			return fmt.Errorf("ucp: snapshot transition covers %d sets, cache samples %d",
				len(t.SetDone), u.l2.SampledSets())
		}
		donors := make(map[int]bool, len(t.Donors))
		for _, d := range t.Donors {
			donors[d] = true
		}
		u.tr = &ucpTransition{
			start:     t.Start,
			donors:    donors,
			waysMoved: t.WaysMoved,
			setDone:   append([]bool(nil), t.SetDone...),
			remaining: t.Remaining,
		}
	}
	return nil
}

type pippState struct {
	Controller controllerState
	Monitors   []*umon.State
	Quotas     []int
}

// StateJSON implements Stateful.
func (p *PIPP) StateJSON() ([]byte, error) {
	return json.Marshal(pippState{
		Controller: p.state(),
		Monitors:   monitorStates(p.mons),
		Quotas:     p.quotas,
	})
}

// RestoreStateJSON implements Stateful.
func (p *PIPP) RestoreStateJSON(data []byte) error {
	var st pippState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if len(st.Quotas) != len(p.quotas) {
		return fmt.Errorf("pipp: snapshot has %d quotas, scheme has %d", len(st.Quotas), len(p.quotas))
	}
	if err := p.restoreState(&st.Controller); err != nil {
		return err
	}
	if err := restoreMonitors(p.mons, st.Monitors); err != nil {
		return err
	}
	copy(p.quotas, st.Quotas)
	return nil
}

type cpeState struct {
	Controller controllerState
	Phase      int
	WayMask    []uint64
	SetShift   []int
}

// StateJSON implements Stateful. The offline profiles are constructor
// inputs (part of the run identity, not run state) and do not travel.
func (c *CPE) StateJSON() ([]byte, error) {
	return json.Marshal(cpeState{
		Controller: c.state(),
		Phase:      c.phase,
		WayMask:    c.wayMask,
		SetShift:   c.setShift,
	})
}

// RestoreStateJSON implements Stateful.
func (c *CPE) RestoreStateJSON(data []byte) error {
	var st cpeState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if len(st.WayMask) != len(c.wayMask) || len(st.SetShift) != len(c.setShift) {
		return fmt.Errorf("cpe: snapshot has %d/%d region entries, scheme has %d cores",
			len(st.WayMask), len(st.SetShift), c.n)
	}
	if err := c.restoreState(&st.Controller); err != nil {
		return err
	}
	c.phase = st.Phase
	copy(c.wayMask, st.WayMask)
	copy(c.setShift, st.SetShift)
	return nil
}
