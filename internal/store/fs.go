// Package store is the crash-safe persistent result cache layered
// under the experiment Runner's in-memory memo (DESIGN.md §12): a
// content-addressed on-disk map from canonical run keys to JSON-encoded
// results, shared by every binary and every process pointed at one
// -cache-dir. Durability is the point — atomic publish via
// temp-file + fsync + rename, per-entry SHA-256 verification with
// quarantine of corrupt entries, cross-process write exclusion via
// lockfiles with stale-lock reclamation — and so is graceful
// degradation: no store fault ever fails a caller; the disk layer
// silently drops out (per key, then entirely) and the in-memory memo
// carries the run. Every syscall the store issues goes through the FS
// interface so the fault-injecting implementation (FaultFS) can prove
// the failure model at each boundary.
package store

import (
	"io"
	"io/fs"
	"os"
)

// FS is the filesystem surface the store touches. The production
// implementation is OSFS; tests substitute FaultFS to fail, truncate or
// corrupt any individual syscall deterministically.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// OpenFile opens like os.OpenFile. The store uses exactly three
	// modes: read-only, write-only|create|excl (tmp files, lockfiles).
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	Stat(path string) (fs.FileInfo, error)
	ReadDir(path string) ([]fs.DirEntry, error)
	// SyncDir fsyncs a directory so a completed rename survives power
	// loss. Crash *atomicity* (absent-or-valid) never depends on it —
	// rename is atomic — only durability of the publish does.
	SyncDir(path string) error
}

// File is the open-file surface of FS.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// OSFS is the production FS: the real operating system calls.
type OSFS struct{}

func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OSFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(path string) error             { return os.Remove(path) }
func (OSFS) Stat(path string) (fs.FileInfo, error) {
	return os.Stat(path)
}
func (OSFS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }

func (OSFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
