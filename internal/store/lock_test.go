package store

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestLockContentionGoroutines: two goroutines contend for one key's
// lock; the loser waits with bounded exponential backoff (asserted via
// the recorded sleep schedule) and wins after the holder releases.
func TestLockContentionGoroutines(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t)
	opts.LockTimeout = 2 * time.Second
	s := openTest(t, dir, opts)

	var mu sync.Mutex
	var sleeps []time.Duration
	orig := sleepFn
	sleepFn = func(d time.Duration) {
		mu.Lock()
		sleeps = append(sleeps, d)
		mu.Unlock()
		orig(d)
	}
	defer func() { sleepFn = orig }()

	release, err := s.acquireLock("contended")
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() {
		rel, err := s.acquireLock("contended")
		if err == nil {
			rel()
		}
		acquired <- err
	}()
	// Hold long enough for several backoff rounds.
	time.Sleep(40 * time.Millisecond)
	release()
	if err := <-acquired; err != nil {
		t.Fatalf("second goroutine never acquired: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(sleeps) < 2 {
		t.Fatalf("expected several backoff sleeps, saw %v", sleeps)
	}
	for i := 1; i < len(sleeps); i++ {
		if sleeps[i] < sleeps[i-1] {
			t.Fatalf("backoff not monotone: %v", sleeps)
		}
	}
	if sleeps[0] != time.Millisecond {
		t.Fatalf("backoff must start at 1ms, started at %v", sleeps[0])
	}
	for _, d := range sleeps {
		if d > 100*time.Millisecond {
			t.Fatalf("backoff exceeded its 100ms bound: %v", sleeps)
		}
	}
}

// TestLockTimeoutIsBounded: with a live in-process holder that never
// releases, acquireLock gives up within ~LockTimeout instead of
// spinning forever.
func TestLockTimeoutIsBounded(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t)
	opts.LockTimeout = 60 * time.Millisecond
	s := openTest(t, dir, opts)
	release, err := s.acquireLock("held")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	if _, err := s.acquireLock("held"); err != errLockTimeout {
		t.Fatalf("err = %v, want errLockTimeout", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("timeout took %v, bound is ~60ms + final backoff", took)
	}
}

// TestPIDReuseGuard: a lock naming a live PID but the wrong boot-time
// ticks is a recycled PID and is reclaimed; with the right ticks (and
// a different live process) it is held.
func TestPIDReuseGuard(t *testing.T) {
	if _, ok := bootTicksOf(os.Getpid()); !ok {
		t.Skip("/proc start-time introspection unavailable")
	}
	dir := t.TempDir()
	s := openTest(t, dir, testOptions(t))
	lockPath := filepath.Join(dir, "locks", "x.lock")

	// A live non-self process with recorded ticks: init (pid 1).
	ticks, ok := bootTicksOf(1)
	if ok && processAlive(1) {
		write := func(ticks uint64) {
			if err := os.WriteFile(lockPath,
				[]byte(fmt.Sprintf(`{"pid":1,"boot_ticks":%d}`, ticks)), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		write(ticks)
		if s.lockIsStale(lockPath) {
			t.Fatal("lock of a live process with matching start time reclaimed")
		}
		write(ticks + 12345)
		if !s.lockIsStale(lockPath) {
			t.Fatal("recycled-PID lock (start-time mismatch) not reclaimed")
		}
	}

	// Our own PID with our own start ticks: another goroutine of this
	// process holds it — never stale.
	ownTicks, ownOK := bootTicksOf(os.Getpid())
	if !ownOK {
		t.Fatal("bootTicksOf(self) failed after /proc probe succeeded")
	}
	writeOwn := func(ticks uint64) {
		if err := os.WriteFile(lockPath,
			[]byte(fmt.Sprintf(`{"pid":%d,"boot_ticks":%d}`, os.Getpid(), ticks)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeOwn(ownTicks)
	if s.lockIsStale(lockPath) {
		t.Fatal("own-process lock with matching start time considered stale")
	}

	// Our own PID with mismatched ticks: a lock this process took
	// always carries the current start time, so the mismatch proves
	// the file survived from a previous boot that reused our PID —
	// stale, reclaimable immediately.
	writeOwn(1)
	if !s.lockIsStale(lockPath) {
		t.Fatal("own-PID lock from a previous boot (start-time mismatch) not reclaimed")
	}

	// Our own PID with no recorded ticks (a lock written where /proc
	// was unavailable): no proof of a previous boot — treat as held.
	if err := os.WriteFile(lockPath,
		[]byte(fmt.Sprintf(`{"pid":%d,"boot_ticks":0}`, os.Getpid())), 0o644); err != nil {
		t.Fatal(err)
	}
	if s.lockIsStale(lockPath) {
		t.Fatal("own-process lock without start ticks considered stale")
	}
}

// helperEnv points TestHelperLockHolder at a store dir; unset, the
// helper is skipped in normal runs.
const helperEnv = "STORE_LOCK_HELPER_DIR"

// TestHelperLockHolder is the re-exec'd child of the cross-process
// tests: it takes the contended lock, announces it on stdout, holds it
// briefly, and releases.
func TestHelperLockHolder(t *testing.T) {
	dir := os.Getenv(helperEnv)
	if dir == "" {
		t.Skip("helper process entry point")
	}
	s, err := Open(dir, Options{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	release, err := s.acquireLock("contended")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println("LOCK_HELD")
	os.Stdout.Sync()
	time.Sleep(600 * time.Millisecond)
	release()
}

// TestLockCrossProcess is the two-process half of the contention
// satellite: a child process holds the lock; this process must NOT
// reclaim it (live owner) and must time out — then acquire cleanly
// once the child exits.
func TestLockCrossProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cmd := exec.Command(exe, "-test.run=^TestHelperLockHolder$", "-test.v")
	cmd.Env = append(os.Environ(), helperEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Wait()

	held := make(chan bool, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if sc.Text() == "LOCK_HELD" {
				held <- true
				return
			}
		}
		held <- false
	}()
	select {
	case ok := <-held:
		if !ok {
			t.Fatal("helper exited without taking the lock")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("helper never announced the lock")
	}

	opts := testOptions(t)
	opts.LockTimeout = 100 * time.Millisecond
	s := openTest(t, dir, opts)
	if _, err := s.acquireLock("contended"); err != errLockTimeout {
		t.Fatalf("acquire against a live foreign holder: err = %v, want timeout (never reclaim a live lock)", err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("helper failed: %v", err)
	}
	// Holder exited and released: acquisition must now succeed.
	release, err := s.acquireLock("contended")
	if err != nil {
		t.Fatalf("acquire after holder exit: %v", err)
	}
	release()
}

// TestTornLockAgeOutBoundary pins the reclaim rule for torn lockfiles
// (a writer crashed between create and write): they are stale strictly
// *after* staleAge, judged by mtime. Just-younger torn locks are held;
// just-older ones are reclaimed; and the rule applies whether the
// content is garbage bytes, empty, or well-formed JSON without a
// usable PID.
func TestTornLockAgeOutBoundary(t *testing.T) {
	const staleAge = time.Hour
	const margin = 2 * time.Second
	contents := map[string][]byte{
		"garbage":  []byte("not json at all"),
		"empty":    nil,
		"zero-pid": []byte(`{"pid":0,"boot_ticks":77}`),
		"neg-pid":  []byte(`{"pid":-4,"boot_ticks":77}`),
	}
	for name, content := range contents {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			opts := testOptions(t)
			opts.StaleAge = staleAge
			s := openTest(t, dir, opts)
			lockPath := filepath.Join(dir, "locks", "torn.lock")
			write := func(age time.Duration) {
				if err := os.WriteFile(lockPath, content, 0o644); err != nil {
					t.Fatal(err)
				}
				when := time.Now().Add(-age)
				if err := os.Chtimes(lockPath, when, when); err != nil {
					t.Fatal(err)
				}
			}
			// Younger than the boundary by a margin that dwarfs test
			// runtime: held.
			write(staleAge - margin)
			if s.lockIsStale(lockPath) {
				t.Fatal("torn lock younger than staleAge reclaimed")
			}
			// Older than the boundary: reclaimable.
			write(staleAge + margin)
			if !s.lockIsStale(lockPath) {
				t.Fatal("torn lock older than staleAge not reclaimed")
			}
		})
	}
}

// TestReleaseLocksDropsHeld: ReleaseLocks removes exactly the
// lockfiles this store still holds, tolerates already-released locks,
// and is nil-safe — the contract HandleSignals relies on.
func TestReleaseLocksDropsHeld(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions(t))
	rel1, err := s.acquireLock("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.acquireLock("b"); err != nil {
		t.Fatal(err)
	}
	rel1() // "a" released normally; only "b" is still held
	s.ReleaseLocks()
	entries, err := os.ReadDir(filepath.Join(dir, "locks"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("locks left after ReleaseLocks: %v", entries)
	}
	// Idempotent, and a released store still acquires.
	s.ReleaseLocks()
	rel, err := s.acquireLock("a")
	if err != nil {
		t.Fatal(err)
	}
	rel()
	(*Store)(nil).ReleaseLocks()
}

// signalEnv points TestHelperSignalHolder at a store dir; unset, the
// helper is skipped in normal runs.
const signalEnv = "STORE_SIGNAL_HELPER_DIR"

// TestHelperSignalHolder is the re-exec'd child of the interrupt
// test: it installs HandleSignals, takes two locks, announces, and
// waits to be killed.
func TestHelperSignalHolder(t *testing.T) {
	dir := os.Getenv(signalEnv)
	if dir == "" {
		t.Skip("helper process entry point")
	}
	s, err := Open(dir, Options{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	stop := HandleSignals("helper", s)
	defer stop()
	if _, err := s.acquireLock("one"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.acquireLock("two"); err != nil {
		t.Fatal(err)
	}
	fmt.Println("LOCKS_HELD")
	os.Stdout.Sync()
	time.Sleep(30 * time.Second) // parent SIGTERMs long before this
	t.Fatal("never signalled")
}

// TestInterruptReleasesLocks is the satellite's acceptance test: a
// process holding store locks that is interrupted (SIGTERM) must
// release them on the way out — a fresh process acquires the same
// locks immediately, with no staleness wait.
func TestInterruptReleasesLocks(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cmd := exec.Command(exe, "-test.run=^TestHelperSignalHolder$", "-test.v")
	cmd.Env = append(os.Environ(), signalEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	held := make(chan bool, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if sc.Text() == "LOCKS_HELD" {
				held <- true
				return
			}
		}
		held <- false
	}()
	select {
	case ok := <-held:
		if !ok {
			t.Fatal("helper exited without taking its locks")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("helper never announced its locks")
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 128+int(syscall.SIGTERM) {
		t.Fatalf("helper exit: err=%v stderr=%q, want exit status %d",
			err, stderr.String(), 128+int(syscall.SIGTERM))
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Fatalf("helper stderr %q missing interrupt notice", stderr.String())
	}

	// The whole point: no live locks left behind. A fresh store (with
	// an hour-long staleness window, so reclaim can't paper over a
	// leak) must acquire both locks instantly.
	entries, err := os.ReadDir(filepath.Join(dir, "locks"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("interrupted helper left lockfiles behind: %v", entries)
	}
	opts := testOptions(t)
	opts.StaleAge = time.Hour
	opts.LockTimeout = 50 * time.Millisecond
	s := openTest(t, dir, opts)
	for _, name := range []string{"one", "two"} {
		rel, err := s.acquireLock(name)
		if err != nil {
			t.Fatalf("acquire %q after interrupt: %v", name, err)
		}
		rel()
	}
}
