package store

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestLockContentionGoroutines: two goroutines contend for one key's
// lock; the loser waits with bounded exponential backoff (asserted via
// the recorded sleep schedule) and wins after the holder releases.
func TestLockContentionGoroutines(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t)
	opts.LockTimeout = 2 * time.Second
	s := openTest(t, dir, opts)

	var mu sync.Mutex
	var sleeps []time.Duration
	orig := sleepFn
	sleepFn = func(d time.Duration) {
		mu.Lock()
		sleeps = append(sleeps, d)
		mu.Unlock()
		orig(d)
	}
	defer func() { sleepFn = orig }()

	release, err := s.acquireLock("contended")
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() {
		rel, err := s.acquireLock("contended")
		if err == nil {
			rel()
		}
		acquired <- err
	}()
	// Hold long enough for several backoff rounds.
	time.Sleep(40 * time.Millisecond)
	release()
	if err := <-acquired; err != nil {
		t.Fatalf("second goroutine never acquired: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(sleeps) < 2 {
		t.Fatalf("expected several backoff sleeps, saw %v", sleeps)
	}
	for i := 1; i < len(sleeps); i++ {
		if sleeps[i] < sleeps[i-1] {
			t.Fatalf("backoff not monotone: %v", sleeps)
		}
	}
	if sleeps[0] != time.Millisecond {
		t.Fatalf("backoff must start at 1ms, started at %v", sleeps[0])
	}
	for _, d := range sleeps {
		if d > 100*time.Millisecond {
			t.Fatalf("backoff exceeded its 100ms bound: %v", sleeps)
		}
	}
}

// TestLockTimeoutIsBounded: with a live in-process holder that never
// releases, acquireLock gives up within ~LockTimeout instead of
// spinning forever.
func TestLockTimeoutIsBounded(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t)
	opts.LockTimeout = 60 * time.Millisecond
	s := openTest(t, dir, opts)
	release, err := s.acquireLock("held")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	if _, err := s.acquireLock("held"); err != errLockTimeout {
		t.Fatalf("err = %v, want errLockTimeout", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("timeout took %v, bound is ~60ms + final backoff", took)
	}
}

// TestPIDReuseGuard: a lock naming a live PID but the wrong boot-time
// ticks is a recycled PID and is reclaimed; with the right ticks (and
// a different live process) it is held.
func TestPIDReuseGuard(t *testing.T) {
	if _, ok := bootTicksOf(os.Getpid()); !ok {
		t.Skip("/proc start-time introspection unavailable")
	}
	dir := t.TempDir()
	s := openTest(t, dir, testOptions(t))
	lockPath := filepath.Join(dir, "locks", "x.lock")

	// A live non-self process with recorded ticks: init (pid 1).
	ticks, ok := bootTicksOf(1)
	if ok && processAlive(1) {
		write := func(ticks uint64) {
			if err := os.WriteFile(lockPath,
				[]byte(fmt.Sprintf(`{"pid":1,"boot_ticks":%d}`, ticks)), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		write(ticks)
		if s.lockIsStale(lockPath) {
			t.Fatal("lock of a live process with matching start time reclaimed")
		}
		write(ticks + 12345)
		if !s.lockIsStale(lockPath) {
			t.Fatal("recycled-PID lock (start-time mismatch) not reclaimed")
		}
	}

	// Our own PID is always "alive", whatever the ticks say — the
	// same-process path never consults them.
	if err := os.WriteFile(lockPath,
		[]byte(fmt.Sprintf(`{"pid":%d,"boot_ticks":1}`, os.Getpid())), 0o644); err != nil {
		t.Fatal(err)
	}
	if s.lockIsStale(lockPath) {
		t.Fatal("own-process lock considered stale")
	}
}

// helperEnv points TestHelperLockHolder at a store dir; unset, the
// helper is skipped in normal runs.
const helperEnv = "STORE_LOCK_HELPER_DIR"

// TestHelperLockHolder is the re-exec'd child of the cross-process
// tests: it takes the contended lock, announces it on stdout, holds it
// briefly, and releases.
func TestHelperLockHolder(t *testing.T) {
	dir := os.Getenv(helperEnv)
	if dir == "" {
		t.Skip("helper process entry point")
	}
	s, err := Open(dir, Options{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	release, err := s.acquireLock("contended")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println("LOCK_HELD")
	os.Stdout.Sync()
	time.Sleep(600 * time.Millisecond)
	release()
}

// TestLockCrossProcess is the two-process half of the contention
// satellite: a child process holds the lock; this process must NOT
// reclaim it (live owner) and must time out — then acquire cleanly
// once the child exits.
func TestLockCrossProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cmd := exec.Command(exe, "-test.run=^TestHelperLockHolder$", "-test.v")
	cmd.Env = append(os.Environ(), helperEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Wait()

	held := make(chan bool, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if sc.Text() == "LOCK_HELD" {
				held <- true
				return
			}
		}
		held <- false
	}()
	select {
	case ok := <-held:
		if !ok {
			t.Fatal("helper exited without taking the lock")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("helper never announced the lock")
	}

	opts := testOptions(t)
	opts.LockTimeout = 100 * time.Millisecond
	s := openTest(t, dir, opts)
	if _, err := s.acquireLock("contended"); err != errLockTimeout {
		t.Fatalf("acquire against a live foreign holder: err = %v, want timeout (never reclaim a live lock)", err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("helper failed: %v", err)
	}
	// Holder exited and released: acquisition must now succeed.
	release, err := s.acquireLock("contended")
	if err != nil {
		t.Fatalf("acquire after holder exit: %v", err)
	}
	release()
}
