package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// errLockTimeout is the bounded-backoff give-up: a live writer held the
// lock for the whole window. The caller degrades (skips the disk write
// for that key); it never blocks a run indefinitely.
var errLockTimeout = errors.New("store: lock acquisition timed out")

// sleepFn is swapped by tests to observe the backoff schedule.
var sleepFn = time.Sleep

// lockOwner is the lockfile's content. PID alone is not enough — PIDs
// recycle — so the owner also records its start time in kernel clock
// ticks since boot (/proc/<pid>/stat field 22). A lock is stale only
// when its PID is dead, or alive but with a different start time (the
// PID was reused since the lock was taken). A lock held by a live
// process is never reclaimed.
type lockOwner struct {
	PID       int    `json:"pid"`
	BootTicks uint64 `json:"boot_ticks"`
}

// acquireLock takes the named cross-process write lock with bounded
// exponential backoff (1ms doubling to 100ms, up to lockTimeout). It
// returns a release func, or errLockTimeout when a live owner held on.
// The lockfile is created O_EXCL and deliberately not fsynced: losing
// it in a power cut just means a reclaimable stale lock.
func (s *Store) acquireLock(name string) (func(), error) {
	path := filepath.Join(s.dir, "locks", name+".lock")
	deadline := time.Now().Add(s.lockTimeout)
	backoff := time.Millisecond
	const maxBackoff = 100 * time.Millisecond
	for {
		f, err := s.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			owner := lockOwner{PID: os.Getpid()}
			owner.BootTicks, _ = bootTicksOf(owner.PID)
			b, merr := json.Marshal(owner)
			var werr error
			if merr == nil {
				_, werr = f.Write(b)
			}
			cerr := f.Close()
			if merr != nil || werr != nil || cerr != nil {
				s.fs.Remove(path)
				return nil, fmt.Errorf("store: writing lockfile: %w", firstErr(merr, werr, cerr))
			}
			// Track live locks so an interrupt handler (HandleSignals)
			// can release everything this process still holds.
			s.held.Store(path, struct{}{})
			return func() {
				s.held.Delete(path)
				s.fs.Remove(path)
			}, nil
		}
		if !os.IsExist(err) {
			return nil, err
		}
		if s.lockIsStale(path) {
			// Reclaim and retry immediately; the O_EXCL create race
			// between reclaimers is settled by the next iteration.
			s.fs.Remove(path)
			continue
		}
		if time.Now().After(deadline) {
			return nil, errLockTimeout
		}
		sleepFn(backoff)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// ReleaseLocks removes every lockfile this process currently holds.
// It exists for interrupt paths (HandleSignals): a killed process
// would otherwise strand its locks until staleness reclaim. Safe on a
// nil store and safe to call concurrently with release funcs.
func (s *Store) ReleaseLocks() {
	if s == nil {
		return
	}
	s.held.Range(func(k, _ any) bool {
		s.held.Delete(k)
		s.fs.Remove(k.(string))
		return true
	})
}

// lockIsStale decides whether path's lock can be reclaimed. Unreadable
// or torn lockfiles (a writer crashed between create and write) are
// stale once older than staleAge; well-formed ones are stale only when
// their owner is provably gone.
func (s *Store) lockIsStale(path string) bool {
	f, err := s.fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		// Vanished: the holder released it; let the create retry.
		return os.IsNotExist(err)
	}
	data, rerr := readAll(f)
	f.Close()
	var owner lockOwner
	if rerr != nil || json.Unmarshal(data, &owner) != nil || owner.PID <= 0 {
		st, serr := s.fs.Stat(path)
		return serr == nil && time.Since(st.ModTime()) > s.staleAge
	}
	if owner.PID == os.Getpid() {
		// Our own PID. A lock this process took always carries our
		// current start ticks, so a mismatch proves the file was left
		// by a same-PID process from a previous boot — stale. Matching
		// (or unreadable) ticks mean another goroutine holds it, alive
		// by definition.
		if owner.BootTicks != 0 {
			if ticks, ok := bootTicksOf(owner.PID); ok && ticks != owner.BootTicks {
				return true
			}
		}
		return false
	}
	if processAlive(owner.PID) {
		if owner.BootTicks != 0 {
			if ticks, ok := bootTicksOf(owner.PID); ok && ticks != owner.BootTicks {
				return true // PID recycled since the lock was taken
			}
		}
		return false
	}
	return true
}

// processAlive reports whether pid exists. Permission errors count as
// alive: reclaiming is only safe on proof of death.
func processAlive(pid int) bool {
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	if err == nil {
		return true
	}
	if errors.Is(err, os.ErrProcessDone) || errors.Is(err, syscall.ESRCH) {
		return false
	}
	return true
}

// bootTicksOf reads a process's start time in clock ticks since boot
// from /proc (Linux); ok=false elsewhere, degrading staleness checks to
// liveness only.
func bootTicksOf(pid int) (uint64, bool) {
	data, err := os.ReadFile(fmt.Sprintf("/proc/%d/stat", pid))
	if err != nil {
		return 0, false
	}
	// comm (field 2) may contain spaces; fields resume after last ')'.
	i := bytes.LastIndexByte(data, ')')
	if i < 0 {
		return 0, false
	}
	fields := strings.Fields(string(data[i+1:]))
	// starttime is stat field 22; fields[0] here is field 3 (state).
	if len(fields) < 20 {
		return 0, false
	}
	v, err := strconv.ParseUint(fields[19], 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
