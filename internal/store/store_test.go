package store

import (
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// payload is a stand-in for sim.Results: a mix of the field shapes the
// store round-trips (floats must survive bit-exactly).
type payload struct {
	Name   string
	IPC    []float64
	Cycles int64
	Nested struct {
		Counts []uint64
	}
}

func samplePayload() payload {
	p := payload{
		Name:   "G2-8/CoopPart",
		IPC:    []float64{0.1234567890123456789, 1.0 / 3.0, 2.5e-17},
		Cycles: 123456789,
	}
	p.Nested.Counts = []uint64{1, 2, 1 << 62}
	return p
}

// testOptions silences logging and shortens every timeout so fault
// paths resolve in milliseconds.
func testOptions(t *testing.T) Options {
	return Options{
		Logf:        func(format string, args ...any) { t.Logf("store: "+format, args...) },
		LockTimeout: 50 * time.Millisecond,
		StaleAge:    10 * time.Millisecond,
	}
}

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions(t))
	want := samplePayload()

	var miss payload
	if s.Get("k1", &miss) {
		t.Fatal("Get on empty store hit")
	}
	s.Put("k1", want)

	var got payload
	if !s.Get("k1", &got) {
		t.Fatal("Get after Put missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}

	// A second process (fresh Store over the same dir) sees it too.
	s2 := openTest(t, dir, testOptions(t))
	got = payload{}
	if !s2.Get("k1", &got) {
		t.Fatal("Get from second store missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cross-store mismatch: %+v", got)
	}

	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.CorruptQuarantined != 0 || st.Degraded {
		t.Fatalf("stats = %v", st)
	}
}

// findEntry returns the path of the single entry file in the store.
func findEntry(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, "entries"))
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".entry") {
			paths = append(paths, filepath.Join(dir, "entries", e.Name()))
		}
	}
	if len(paths) != 1 {
		t.Fatalf("want exactly 1 entry, found %d", len(paths))
	}
	return paths[0]
}

// TestCorruptEntryQuarantinedExactlyOnce pins the observability
// contract: a corrupt entry is quarantined and counted exactly once,
// reads keep working, and a recompute-Put repairs the address.
func TestCorruptEntryQuarantinedExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions(t))
	want := samplePayload()
	s.Put("k1", want)

	// Flip one payload byte on disk.
	path := findEntry(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, testOptions(t))
	var got payload
	if s2.Get("k1", &got) {
		t.Fatal("corrupt entry served as a hit")
	}
	if st := s2.Stats(); st.CorruptQuarantined != 1 {
		t.Fatalf("after first Get: corrupt-quarantined = %d, want 1", st.CorruptQuarantined)
	}
	if s2.Get("k1", &got) {
		t.Fatal("second Get hit")
	}
	if st := s2.Stats(); st.CorruptQuarantined != 1 {
		t.Fatalf("after second Get: corrupt-quarantined = %d, want exactly 1", st.CorruptQuarantined)
	}

	// The corpse is in quarantine, not lost.
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 1 {
		t.Fatalf("quarantine holds %d files, want 1", len(q))
	}

	// Recompute-and-Put repairs the address.
	s2.Put("k1", want)
	got = payload{}
	if !s2.Get("k1", &got) || !reflect.DeepEqual(got, want) {
		t.Fatalf("repaired entry not served: hit=%v got=%+v", got.Name != "", got)
	}
	if st := s2.Stats(); st.Degraded {
		t.Fatal("corruption must not degrade the store")
	}
}

// TestVersionMismatchIsMissNotCorrupt: an entry from a different format
// version reads as a plain miss (no quarantine) and is overwritten by
// the next Put.
func TestVersionMismatchIsMissNotCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions(t))
	s.Put("k1", samplePayload())

	path := findEntry(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(data), `"version":1`, `"version":99`, 1)
	if mutated == string(data) {
		t.Fatal("test could not find version field to mutate")
	}
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, testOptions(t))
	var got payload
	if s2.Get("k1", &got) {
		t.Fatal("future-version entry served as a hit")
	}
	if st := s2.Stats(); st.CorruptQuarantined != 0 {
		t.Fatalf("version mismatch quarantined: %v", st)
	}
	s2.Put("k1", samplePayload())
	if !s2.Get("k1", &got) {
		t.Fatal("overwrite after version mismatch did not take")
	}
}

// TestWriteFaultDegradesGracefully: ENOSPC on the data write must not
// fail Put, must mark the key bad (no retry), and must leave no
// partial entry behind.
func TestWriteFaultDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS{})
	opts := testOptions(t)
	opts.FS = ffs
	s := openTest(t, dir, opts)

	// Write op 1 is the lockfile, 2-4 are header/newline/payload: land
	// the ENOSPC on the payload write.
	ffs.FailOp(OpWrite, 4, syscall.ENOSPC)
	s.Put("k1", samplePayload())
	st := s.Stats()
	if st.Writes != 0 || st.WriteSkips != 1 || st.Faults != 1 {
		t.Fatalf("stats after ENOSPC = %v", st)
	}
	var got payload
	if s.Get("k1", &got) {
		t.Fatal("partial entry visible after failed Put")
	}
	ents, err := os.ReadDir(filepath.Join(dir, "entries"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("entries dir holds %d files after failed Put, want 0", len(ents))
	}

	// The key is bad for this process: the disk is not retried.
	s.Put("k1", samplePayload())
	if st := s.Stats(); st.WriteSkips != 2 || st.Faults != 1 {
		t.Fatalf("bad key retried the disk: %v", st)
	}
}

// TestConsecutiveFaultsDisableStore walks the whole degradation
// ladder: maxFaults consecutive faults flip the store to degraded, and
// from then on Get/Put are memory-only no-ops that still never fail.
func TestConsecutiveFaultsDisableStore(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS{})
	opts := testOptions(t)
	opts.FS = ffs
	opts.MaxFaults = 3
	s := openTest(t, dir, opts)

	for i := 1; i <= 3; i++ {
		ffs.FailOp(OpWrite, i, syscall.EIO)
		s.Put(strings.Repeat("k", i), samplePayload())
	}
	st := s.Stats()
	if !st.Degraded {
		t.Fatalf("store not degraded after %d consecutive faults: %v", 3, st)
	}
	// Degraded store: everything still answers, nothing touches disk.
	before := ffs.WriteOps()
	s.Put("fresh", samplePayload())
	var got payload
	if s.Get("fresh", &got) {
		t.Fatal("degraded store claimed a hit")
	}
	if ffs.WriteOps() != before {
		t.Fatal("degraded store still issued write syscalls")
	}
}

// TestSuccessResetsFaultLadder: intermittent faults with successes in
// between never disable the store.
func TestSuccessResetsFaultLadder(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS{})
	opts := testOptions(t)
	opts.FS = ffs
	opts.MaxFaults = 2
	s := openTest(t, dir, opts)

	ffs.FailOp(OpWrite, 1, syscall.EIO)
	s.Put("bad1", samplePayload()) // fault 1
	s.Put("ok", samplePayload())   // success resets the ladder
	ffs.FailOp(OpWrite, ffs.OpCount(OpWrite)+1, syscall.EIO)
	s.Put("bad2", samplePayload()) // a fresh fault 1, not fault 2
	if st := s.Stats(); st.Degraded {
		t.Fatalf("store degraded despite interleaved successes: %v", st)
	}
}

// TestOpenFailureIsReported: an unusable root errors out of Open so
// binaries can log once and run storeless.
func TestOpenFailureIsReported(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(file, testOptions(t)); err == nil {
		t.Fatal("Open over a regular file succeeded")
	}
}

// TestSweepTmpReapsDeadProcessFiles: leftover temp files from dead
// pids are removed at Open; live ones are kept.
func TestSweepTmpReapsDeadProcessFiles(t *testing.T) {
	dir := t.TempDir()
	openTest(t, dir, testOptions(t)) // create layout
	tmp := filepath.Join(dir, "tmp")
	dead := filepath.Join(tmp, "abc.999999.1.tmp") // pid 999999: beyond default pid_max
	live := filepath.Join(tmp, "abc."+strconv.Itoa(os.Getpid())+".2.tmp")
	for _, p := range []string{dead, live} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	openTest(t, dir, testOptions(t))
	if _, err := os.Stat(dead); !os.IsNotExist(err) {
		t.Fatal("dead process's tmp file survived the sweep")
	}
	if _, err := os.Stat(live); err != nil {
		t.Fatal("live process's tmp file was reaped")
	}
}

// TestQuarantineCapReapsOldest: quarantine/ is a bounded forensic
// holding area, not a landfill — beyond MaxQuarantine the oldest
// .corrupt files (mtime, name tie-break) are reaped on Open and after
// each quarantine, counted in Stats.Reaped. A negative cap disables
// reaping entirely.
func TestQuarantineCapReapsOldest(t *testing.T) {
	seedQuarantine := func(t *testing.T, dir string, n int) {
		t.Helper()
		qdir := filepath.Join(dir, "quarantine")
		if err := os.MkdirAll(qdir, 0o755); err != nil {
			t.Fatal(err)
		}
		base := time.Now().Add(-time.Hour)
		for i := 0; i < n; i++ {
			name := filepath.Join(qdir, "entry"+strconv.Itoa(i)+".corrupt")
			if err := os.WriteFile(name, []byte("junk"), 0o644); err != nil {
				t.Fatal(err)
			}
			mod := base.Add(time.Duration(i) * time.Minute)
			if err := os.Chtimes(name, mod, mod); err != nil {
				t.Fatal(err)
			}
		}
	}

	t.Run("open-reaps-beyond-cap", func(t *testing.T) {
		dir := t.TempDir()
		seedQuarantine(t, dir, 6)
		opts := testOptions(t)
		opts.MaxQuarantine = 3
		s := openTest(t, dir, opts)
		if st := s.Stats(); st.Reaped != 3 {
			t.Fatalf("reaped %d, want 3: %v", st.Reaped, st)
		}
		left, err := os.ReadDir(filepath.Join(dir, "quarantine"))
		if err != nil || len(left) != 3 {
			t.Fatalf("quarantine holds %d files, want 3 (%v)", len(left), err)
		}
		// The survivors must be the newest three.
		for _, e := range left {
			if e.Name() != "entry3.corrupt" && e.Name() != "entry4.corrupt" && e.Name() != "entry5.corrupt" {
				t.Fatalf("oldest-first reaping violated: %s survived", e.Name())
			}
		}
	})

	t.Run("negative-cap-unlimited", func(t *testing.T) {
		dir := t.TempDir()
		seedQuarantine(t, dir, 6)
		opts := testOptions(t)
		opts.MaxQuarantine = -1
		s := openTest(t, dir, opts)
		if st := s.Stats(); st.Reaped != 0 {
			t.Fatalf("negative cap reaped %d files", st.Reaped)
		}
		left, _ := os.ReadDir(filepath.Join(dir, "quarantine"))
		if len(left) != 6 {
			t.Fatalf("quarantine holds %d files, want all 6", len(left))
		}
	})

	t.Run("quarantine-path-reaps", func(t *testing.T) {
		dir := t.TempDir()
		opts := testOptions(t)
		opts.MaxQuarantine = 1
		s := openTest(t, dir, opts)
		s.Put("k1", samplePayload())
		s.Put("k2", samplePayload())
		// Corrupt both entries on disk, then read them back: each Get
		// quarantines its entry, and the second quarantine trips the cap.
		ents, err := os.ReadDir(filepath.Join(dir, "entries"))
		if err != nil || len(ents) != 2 {
			t.Fatalf("want 2 entries, got %d (%v)", len(ents), err)
		}
		for _, e := range ents {
			p := filepath.Join(dir, "entries", e.Name())
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-2] ^= 1
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		var got payload
		if s.Get("k1", &got) || s.Get("k2", &got) {
			t.Fatal("corrupt entries served")
		}
		st := s.Stats()
		if st.CorruptQuarantined != 2 {
			t.Fatalf("quarantined %d, want 2: %v", st.CorruptQuarantined, st)
		}
		if st.Reaped != 1 {
			t.Fatalf("reaped %d, want 1: %v", st.Reaped, st)
		}
		left, _ := os.ReadDir(filepath.Join(dir, "quarantine"))
		if len(left) != 1 {
			t.Fatalf("quarantine holds %d files, want 1", len(left))
		}
	})
}
