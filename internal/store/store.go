package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FormatVersion is the on-disk entry format. Bumping it orphans old
// entries (they read as misses and are overwritten on the next Put).
const FormatVersion = 1

// magic self-describes entry files independent of their name.
const magic = "coopstore"

// header is the first line of an entry file: a self-describing JSON
// envelope whose Len and SHA256 pin the payload that follows it.
type header struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	Key     string `json:"key"`
	Len     int    `json:"len"`
	SHA256  string `json:"sha256"`
}

// Options parameterise Open. The zero value is production defaults.
type Options struct {
	// FS substitutes the filesystem (fault injection); OSFS if nil.
	FS FS
	// Logf receives the store's once-per-condition warnings; stderr if
	// nil. The store never logs on the success path.
	Logf func(format string, args ...any)
	// LockTimeout bounds how long a writer waits on a live lock before
	// degrading; 5s if zero.
	LockTimeout time.Duration
	// StaleAge is the age past which an unreadable/torn lockfile is
	// reclaimed; 30s if zero.
	StaleAge time.Duration
	// MaxFaults is how many consecutive store faults disable the disk
	// layer entirely; 4 if zero.
	MaxFaults int
	// MaxQuarantine caps how many files quarantine/ may hold: the
	// oldest beyond the cap are reaped (counted in Stats.Reaped) so a
	// recurring corruption source cannot grow the directory without
	// bound. 64 if zero; negative keeps everything.
	MaxQuarantine int
}

// Stats are the store's observability counters (satellite: corruption
// observability). Quarantine increments exactly once per corrupt entry
// — the entry is moved aside on detection, so it can never be counted
// again.
type Stats struct {
	Hits               uint64
	Misses             uint64
	Writes             uint64
	WriteSkips         uint64
	CorruptQuarantined uint64
	// Reaped counts quarantined files deleted by the MaxQuarantine cap
	// (this process only; other processes sharing the directory keep
	// their own count).
	Reaped   uint64
	Faults   uint64
	Degraded bool
}

func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d writes=%d write-skips=%d corrupt-quarantined=%d reaped=%d faults=%d degraded=%v",
		s.Hits, s.Misses, s.Writes, s.WriteSkips, s.CorruptQuarantined, s.Reaped, s.Faults, s.Degraded)
}

// Store is a content-addressed persistent result cache. All methods are
// safe for concurrent use by any number of goroutines and processes
// sharing one directory. Get and Put never fail the caller: every
// fault is absorbed by the degradation ladder (quarantine the entry →
// skip the key → disable the store) and surfaces only in Stats and a
// single log line per condition.
type Store struct {
	dir           string
	fs            FS
	logf          func(format string, args ...any)
	lockTimeout   time.Duration
	staleAge      time.Duration
	maxFaults     int
	maxQuarantine int

	seq         atomic.Uint64
	hits        atomic.Uint64
	misses      atomic.Uint64
	writes      atomic.Uint64
	writeSkips  atomic.Uint64
	corrupt     atomic.Uint64
	reaped      atomic.Uint64
	faults      atomic.Uint64
	consecutive atomic.Int64
	disabled    atomic.Bool

	badKeys sync.Map // keys whose disk layer is off for this process
	held    sync.Map // lockfile paths this process currently holds

	warnMu sync.Mutex
	warned map[string]bool
}

// Open creates (or reopens) the store rooted at dir. An error here
// means the directory is unusable; callers are expected to log it once
// and run storeless rather than abort.
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{
		dir:           dir,
		fs:            opts.FS,
		logf:          opts.Logf,
		lockTimeout:   opts.LockTimeout,
		staleAge:      opts.StaleAge,
		maxFaults:     opts.MaxFaults,
		maxQuarantine: opts.MaxQuarantine,
		warned:        make(map[string]bool),
	}
	if s.fs == nil {
		s.fs = OSFS{}
	}
	if s.logf == nil {
		s.logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if s.lockTimeout == 0 {
		s.lockTimeout = 5 * time.Second
	}
	if s.staleAge == 0 {
		s.staleAge = 30 * time.Second
	}
	if s.maxFaults == 0 {
		s.maxFaults = 4
	}
	if s.maxQuarantine == 0 {
		s.maxQuarantine = 64
	}
	for _, d := range []string{dir, s.sub("entries"), s.sub("tmp"), s.sub("quarantine"), s.sub("locks")} {
		if err := s.fs.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", d, err)
		}
	}
	s.sweepTmp()
	s.reapQuarantine()
	return s, nil
}

func (s *Store) sub(name string) string { return filepath.Join(s.dir, name) }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:               s.hits.Load(),
		Misses:             s.misses.Load(),
		Writes:             s.writes.Load(),
		WriteSkips:         s.writeSkips.Load(),
		CorruptQuarantined: s.corrupt.Load(),
		Reaped:             s.reaped.Load(),
		Faults:             s.faults.Load(),
		Degraded:           s.disabled.Load(),
	}
}

// Get looks key up and unmarshals the cached JSON into value,
// reporting whether it hit. It cannot fail: a missing entry is a miss;
// a corrupt entry is quarantined and a miss; an I/O fault counts
// against the degradation ladder and is a miss.
func (s *Store) Get(key string, value any) bool {
	if s.disabled.Load() {
		s.misses.Add(1)
		return false
	}
	hit, err := s.get(key, value)
	if err != nil {
		s.fault("read", err)
		s.misses.Add(1)
		return false
	}
	if hit {
		// Only a genuine read resets the fault ladder: a miss is an
		// ENOENT and proves nothing about disk health, and resetting on
		// it would let an alternating miss/write-fault pattern evade
		// MaxFaults forever.
		s.consecutive.Store(0)
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return hit
}

// Put publishes value under key atomically (temp file + fsync +
// rename). It cannot fail the caller: on any fault the key's disk
// layer is turned off for this process and the in-memory memo carries
// the result.
func (s *Store) Put(key string, value any) {
	if s.disabled.Load() {
		s.writeSkips.Add(1)
		return
	}
	if _, bad := s.badKeys.Load(key); bad {
		s.writeSkips.Add(1)
		return
	}
	if err := s.put(key, value); err != nil {
		s.badKeys.Store(key, struct{}{})
		s.fault("write", err)
		s.writeSkips.Add(1)
		return
	}
	s.consecutive.Store(0)
	s.writes.Add(1)
}

// fault is the degradation ladder's accounting: count, warn once per
// condition, and after maxFaults consecutive faults disable the disk
// layer for the rest of the process.
func (s *Store) fault(op string, err error) {
	s.faults.Add(1)
	s.warnOnce("fault:"+op, "store: %s fault: %v — result stays in-memory, run continues", op, err)
	if n := s.consecutive.Add(1); n >= int64(s.maxFaults) && !s.disabled.Swap(true) {
		s.warnOnce("degraded", "store: %d consecutive faults — disk layer disabled for this process", n)
	}
}

func (s *Store) warnOnce(class, format string, args ...any) {
	s.warnMu.Lock()
	seen := s.warned[class]
	s.warned[class] = true
	s.warnMu.Unlock()
	if !seen {
		s.logf(format, args...)
	}
}

// entryPath is the content address: SHA-256 of the canonical key.
func (s *Store) entryPath(key string) string {
	return filepath.Join(s.sub("entries"), hashName(key)+".entry")
}

func hashName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

func (s *Store) get(key string, value any) (bool, error) {
	path := s.entryPath(key)
	f, err := s.fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	data, rerr := readAll(f)
	cerr := f.Close()
	if rerr != nil {
		return false, rerr
	}
	if cerr != nil {
		return false, cerr
	}
	payload, why := parseEntry(key, data)
	switch why {
	case "":
	case reasonVersion, reasonAlias:
		// Well-formed but not ours: an old format version or a hash
		// collision. A plain miss — the next Put overwrites it.
		return false, nil
	default:
		s.quarantine(path, why)
		return false, nil
	}
	if err := json.Unmarshal(payload, value); err != nil {
		// The checksum passed, so this is a type mismatch between
		// writer and reader, not disk corruption — but the entry is
		// equally unusable and equally worth moving out of the way.
		s.quarantine(path, "payload does not decode: "+err.Error())
		return false, nil
	}
	return true, nil
}

const (
	reasonVersion = "format version mismatch"
	reasonAlias   = "key alias"
)

// parseEntry validates an entry file against the key it should hold.
// An empty reason means payload is intact and checksummed.
func parseEntry(key string, data []byte) (payload []byte, reason string) {
	nl := -1
	for i, b := range data {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, "no header line"
	}
	var h header
	if err := json.Unmarshal(data[:nl], &h); err != nil {
		return nil, "bad header: " + err.Error()
	}
	if h.Magic != magic {
		return nil, "bad magic"
	}
	if h.Version != FormatVersion {
		return nil, reasonVersion
	}
	if h.Key != key {
		return nil, reasonAlias
	}
	payload = data[nl+1:]
	if len(payload) != h.Len {
		return nil, fmt.Sprintf("payload length %d, header says %d (torn write)", len(payload), h.Len)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != h.SHA256 {
		return nil, "checksum mismatch"
	}
	return payload, ""
}

// quarantine moves a corrupt entry aside (recomputation then overwrites
// the address) and counts it exactly once — the file is gone from the
// entries directory the moment it is counted.
func (s *Store) quarantine(path, why string) {
	dst := filepath.Join(s.sub("quarantine"),
		fmt.Sprintf("%s.%d.%d.corrupt", filepath.Base(path), os.Getpid(), s.seq.Add(1)))
	if err := s.fs.Rename(path, dst); err != nil {
		if rmErr := s.fs.Remove(path); rmErr != nil && !os.IsNotExist(rmErr) {
			// Could not even unlink it: a real I/O fault, and the entry
			// will be re-detected next time. Not counted as quarantined.
			s.fault("quarantine", rmErr)
			return
		}
	}
	s.corrupt.Add(1)
	s.warnOnce("corrupt", "store: corrupt entry quarantined (%s) — recomputing", why)
	s.reapQuarantine()
}

// reapQuarantine bounds quarantine/ to maxQuarantine files by deleting
// the oldest beyond the cap (modification time, name as tie-break so
// concurrent reapers agree on the order). Quarantined entries exist
// for post-mortem inspection, not correctness — the content address is
// recomputed and overwritten the moment corruption is detected — so a
// recurring corruption source must not grow the directory without
// bound. Best effort: any error leaves the files for next time.
func (s *Store) reapQuarantine() {
	if s.maxQuarantine < 0 {
		return
	}
	ents, err := s.fs.ReadDir(s.sub("quarantine"))
	if err != nil {
		return
	}
	type qfile struct {
		name string
		mod  int64
	}
	var files []qfile
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".corrupt") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, qfile{name: e.Name(), mod: info.ModTime().UnixNano()})
	}
	if len(files) <= s.maxQuarantine {
		return
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].mod != files[j].mod {
			return files[i].mod < files[j].mod
		}
		return files[i].name < files[j].name
	})
	for _, f := range files[:len(files)-s.maxQuarantine] {
		if err := s.fs.Remove(filepath.Join(s.sub("quarantine"), f.name)); err == nil {
			s.reaped.Add(1)
		} else if os.IsNotExist(err) {
			// Another process reaped it first; it is gone either way,
			// but only the remover counts it.
			continue
		}
	}
}

// put runs the atomic publish sequence. Every call below is a crash
// boundary the consistency test enumerates; the invariant is that the
// final entry path holds either nothing or a fully checksummed entry,
// because the only call that makes the entry visible is the rename.
func (s *Store) put(key string, value any) error {
	payload, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("store: encoding value: %w", err)
	}
	sum := sha256.Sum256(payload)
	hb, err := json.Marshal(header{
		Magic:   magic,
		Version: FormatVersion,
		Key:     key,
		Len:     len(payload),
		SHA256:  hex.EncodeToString(sum[:]),
	})
	if err != nil {
		return fmt.Errorf("store: encoding header: %w", err)
	}

	name := hashName(key)
	release, err := s.acquireLock(name)
	if err != nil {
		return err
	}
	defer release()

	tmp := filepath.Join(s.sub("tmp"),
		fmt.Sprintf("%s.%d.%d.tmp", name, os.Getpid(), s.seq.Add(1)))
	f, err := s.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(hb)
	if werr == nil {
		_, werr = f.Write([]byte{'\n'})
	}
	if werr == nil {
		_, werr = f.Write(payload)
	}
	var serr error
	if werr == nil {
		serr = f.Sync()
	}
	cerr := f.Close()
	if err := firstErr(werr, serr, cerr); err != nil {
		s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.Rename(tmp, s.entryPath(key)); err != nil {
		s.fs.Remove(tmp)
		return err
	}
	return s.fs.SyncDir(s.sub("entries"))
}

// Verify walks the entries directory and checks every entry's header
// and checksum without quarantining — the crash-consistency invariant
// ("every entry is either absent or fully valid") made executable.
func (s *Store) Verify() (valid, corrupt int, err error) {
	ents, err := s.fs.ReadDir(s.sub("entries"))
	if err != nil {
		return 0, 0, err
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".entry") {
			continue
		}
		f, err := s.fs.OpenFile(filepath.Join(s.sub("entries"), e.Name()), os.O_RDONLY, 0)
		if err != nil {
			return valid, corrupt, err
		}
		data, rerr := readAll(f)
		f.Close()
		if rerr != nil {
			return valid, corrupt, rerr
		}
		if entryWellFormed(data) {
			valid++
		} else {
			corrupt++
		}
	}
	return valid, corrupt, nil
}

// entryWellFormed checks structure and checksum without knowing the
// key (Verify cannot know which key an entry should serve).
func entryWellFormed(data []byte) bool {
	nl := -1
	for i, b := range data {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return false
	}
	var h header
	if err := json.Unmarshal(data[:nl], &h); err != nil || h.Magic != magic {
		return false
	}
	payload := data[nl+1:]
	if len(payload) != h.Len {
		return false
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:]) == h.SHA256
}

// sweepTmp clears temp files abandoned by dead processes (their pid is
// embedded in the name). Live processes' in-flight files are left
// alone. Best effort: any error just leaves the file for next time.
func (s *Store) sweepTmp() {
	ents, err := s.fs.ReadDir(s.sub("tmp"))
	if err != nil {
		return
	}
	for _, e := range ents {
		parts := strings.Split(e.Name(), ".")
		// <hash>.<pid>.<seq>.tmp
		if len(parts) != 4 || parts[3] != "tmp" {
			continue
		}
		pid, err := strconv.Atoi(parts[1])
		if err != nil || pid == os.Getpid() || processAlive(pid) {
			continue
		}
		s.fs.Remove(filepath.Join(s.sub("tmp"), e.Name()))
	}
}

// Fingerprint returns a short stable fingerprint of v's JSON form —
// cache keys embed the full simulation Scale through it, so two
// configurations that differ in any field never alias even when they
// share a name.
func Fingerprint(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return "unencodable"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// readAll reads f fully via its Read method, so injected read faults
// and byte flips are exercised.
func readAll(f File) ([]byte, error) { return io.ReadAll(f) }
