package store

import (
	"errors"
	"io/fs"
	"os"
	"sync"
)

// Op names one kind of FS call for targeted fault injection.
type Op uint8

const (
	OpMkdirAll Op = iota
	OpOpenFile
	OpRead
	OpWrite
	OpSync
	OpClose
	OpRename
	OpRemove
	OpStat
	OpReadDir
	OpSyncDir
	opCount
)

var opNames = [...]string{
	"mkdirall", "openfile", "read", "write", "sync", "close",
	"rename", "remove", "stat", "readdir", "syncdir",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op(?)"
}

// ErrInjected is the default error a scheduled fault returns.
var ErrInjected = errors.New("store: injected fault")

// ErrCrashed is returned by every call after a scheduled crash point:
// the process is "dead", nothing it attempts reaches the disk.
var ErrCrashed = errors.New("store: simulated crash")

// FaultFS wraps a real FS with a deterministic fault schedule: fail the
// Nth call of one kind with a chosen error, crash (truncating the
// in-flight write and failing everything after) at the Nth write-path
// call, or flip a byte of everything read back. It is the proof layer
// of the store's failure model — the crash-consistency and fuzz tests
// drive the whole write path through it at every syscall boundary.
type FaultFS struct {
	real FS

	mu        sync.Mutex
	countByOp [opCount]int
	perOp     map[Op][]opFault

	// crash schedule over write-path calls (OpenFile for write, Write,
	// Sync, Close of a written file, Rename, Remove, MkdirAll, SyncDir).
	writeOps  int
	crashAt   int // 1-based write-path call to crash on; 0 = never
	crashTorn int // bytes the crashing Write still lands on disk
	crashed   bool
	fired     bool

	flipOffset int // byte offset whose low bit flips on every read
	flipRead   bool
}

type opFault struct {
	n   int
	err error
}

// NewFaultFS wraps real (OSFS over a throwaway directory in tests).
func NewFaultFS(real FS) *FaultFS {
	if real == nil {
		real = OSFS{}
	}
	return &FaultFS{real: real, perOp: make(map[Op][]opFault)}
}

// FailOp schedules the nth (1-based) call of kind op to fail with err
// (ErrInjected if nil). Targeted faults do not crash the process: the
// call fails, later calls proceed — the shape of ENOSPC, EIO or EPERM.
func (f *FaultFS) FailOp(op Op, n int, err error) {
	if err == nil {
		err = ErrInjected
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.perOp[op] = append(f.perOp[op], opFault{n: n, err: err})
}

// CrashAtWriteOp schedules a crash at the nth (1-based) write-path
// call. If that call is a Write, torn bytes of it still reach the disk
// (a torn write); every call after the crash fails with ErrCrashed.
func (f *FaultFS) CrashAtWriteOp(n, torn int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt, f.crashTorn = n, torn
}

// FlipReadByte corrupts reads: the low bit of the byte at offset (of
// each file's content) flips on its way back to the caller.
func (f *FaultFS) FlipReadByte(offset int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flipRead, f.flipOffset = true, offset
}

// Fired reports whether any scheduled crash or targeted fault has
// triggered yet.
func (f *FaultFS) Fired() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// WriteOps returns how many write-path calls have been issued — run a
// clean sequence first to learn how many crash points to enumerate.
func (f *FaultFS) WriteOps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writeOps
}

// OpCount returns how many calls of kind op have been issued, so tests
// can schedule "the next write" as FailOp(op, OpCount(op)+1, err).
func (f *FaultFS) OpCount(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.countByOp[op]
}

// before accounts one call; it returns the error the call must fail
// with (nil = proceed) and, for a crashing Write, how many bytes to
// land before dying (-1 = not a crashing write).
func (f *FaultFS) before(op Op, writePath bool) (error, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed, -1
	}
	f.countByOp[op]++
	n := f.countByOp[op]
	for _, fl := range f.perOp[op] {
		if fl.n == n {
			f.fired = true
			return fl.err, -1
		}
	}
	if writePath {
		f.writeOps++
		if f.crashAt != 0 && f.writeOps == f.crashAt {
			f.crashed, f.fired = true, true
			if op == OpWrite {
				return ErrCrashed, f.crashTorn
			}
			return ErrCrashed, -1
		}
	}
	return nil, -1
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if err, _ := f.before(OpMkdirAll, true); err != nil {
		return err
	}
	return f.real.MkdirAll(path, perm)
}

func (f *FaultFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	forWrite := flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE) != 0
	if err, _ := f.before(OpOpenFile, forWrite); err != nil {
		return nil, err
	}
	file, err := f.real.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, forWrite: forWrite}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err, _ := f.before(OpRename, true); err != nil {
		return err
	}
	return f.real.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	if err, _ := f.before(OpRemove, true); err != nil {
		return err
	}
	return f.real.Remove(path)
}

func (f *FaultFS) Stat(path string) (fs.FileInfo, error) {
	if err, _ := f.before(OpStat, false); err != nil {
		return nil, err
	}
	return f.real.Stat(path)
}

func (f *FaultFS) ReadDir(path string) ([]fs.DirEntry, error) {
	if err, _ := f.before(OpReadDir, false); err != nil {
		return nil, err
	}
	return f.real.ReadDir(path)
}

func (f *FaultFS) SyncDir(path string) error {
	if err, _ := f.before(OpSyncDir, true); err != nil {
		return err
	}
	return f.real.SyncDir(path)
}

// faultFile threads per-call faults through an open file. pos tracks
// the read offset so FlipReadByte lands on the right byte.
type faultFile struct {
	fs       *FaultFS
	f        File
	forWrite bool
	pos      int
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if err, _ := ff.fs.before(OpRead, false); err != nil {
		return 0, err
	}
	n, err := ff.f.Read(p)
	ff.fs.mu.Lock()
	if ff.fs.flipRead && n > 0 {
		off := ff.fs.flipOffset - ff.pos
		if off >= 0 && off < n {
			p[off] ^= 1
			ff.fs.fired = true
		}
	}
	ff.fs.mu.Unlock()
	ff.pos += n
	return n, err
}

func (ff *faultFile) Write(p []byte) (int, error) {
	err, torn := ff.fs.before(OpWrite, ff.forWrite)
	if err != nil {
		if torn >= 0 {
			// Torn write: part of the buffer reaches the disk before
			// the crash.
			if torn > len(p) {
				torn = len(p)
			}
			ff.f.Write(p[:torn])
		}
		return 0, err
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	if err, _ := ff.fs.before(OpSync, ff.forWrite); err != nil {
		return err
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error {
	if err, _ := ff.fs.before(OpClose, ff.forWrite); err != nil {
		// A failed close still drops the descriptor — never leak it.
		ff.f.Close()
		return err
	}
	return ff.f.Close()
}
