package store

import (
	"reflect"
	"testing"
	"time"
)

// FuzzFaultSchedule drives Open/Put/Get/Put under an arbitrary
// byte-decoded fault schedule — targeted per-op failures, a crash
// point with torn writes, and read-byte corruption — and asserts the
// store's two absolutes: a Get that claims a hit returns exactly the
// stored value, and after reopening on a healthy filesystem every
// entry on disk is absent or fully valid. CI runs it as a short -fuzz
// smoke; the corpus also executes as a normal test.
func FuzzFaultSchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0})
	f.Add([]byte{3, 2, 1, 10, 1, 2})           // fail a write; crash mid-sequence
	f.Add([]byte{2, 1, 2, 2, 2, 2, 6, 1, 0})   // flip read bytes; fail a rename
	f.Add([]byte{1, 1, 1, 4, 1, 0, 8, 3, 0})   // crash on openfile; fail sync
	f.Add([]byte{10, 1, 0, 10, 2, 0, 9, 1, 0}) // syncdir + readdir faults
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		ffs := NewFaultFS(OSFS{})
		for i := 0; i+2 < len(data); i += 3 {
			op := Op(data[i] % uint8(opCount))
			n := int(data[i+1]%16) + 1
			switch data[i+2] % 3 {
			case 0:
				ffs.FailOp(op, n, nil)
			case 1:
				ffs.CrashAtWriteOp(n, int(data[i+2]/3))
			case 2:
				ffs.FlipReadByte(int(data[i+1]))
			}
		}
		opts := Options{
			FS:          ffs,
			Logf:        func(string, ...any) {},
			LockTimeout: time.Millisecond,
			StaleAge:    time.Millisecond,
			MaxFaults:   2,
		}
		want := samplePayloadFuzz()
		s, err := Open(dir, opts)
		if err == nil {
			s.Put("k1", want)
			var got fuzzPayload
			if s.Get("k1", &got) && !reflect.DeepEqual(got, want) {
				t.Fatalf("faulty-store hit returned wrong value: %+v", got)
			}
			s.Put("k2", want) // second key exercises post-fault behaviour
		}

		// A healthy process inherits the directory: invariant holds.
		clean, err := Open(dir, Options{Logf: func(string, ...any) {}})
		if err != nil {
			t.Fatalf("clean reopen failed: %v", err)
		}
		_, corrupt, err := clean.Verify()
		if err != nil {
			t.Fatalf("Verify: %v", err)
		}
		if corrupt != 0 {
			t.Fatalf("%d corrupt entries survived a clean reopen (absent-or-valid violated)", corrupt)
		}
		var got fuzzPayload
		if clean.Get("k1", &got) && !reflect.DeepEqual(got, want) {
			t.Fatalf("clean hit returned wrong value: %+v", got)
		}
	})
}

type fuzzPayload struct {
	Name string
	Vals []float64
	N    uint64
}

func samplePayloadFuzz() fuzzPayload {
	return fuzzPayload{Name: "fuzz", Vals: []float64{1.0 / 7.0, 3.14159e-9}, N: 1 << 63}
}
