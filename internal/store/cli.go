package store

import (
	"fmt"
	"os"
)

// OpenCLI opens the store named by a binary's -cache-dir flag. An
// empty dir means "no persistent cache" and returns nil, which every
// consumer accepts (experiments.Config.Store et al. treat nil as
// in-memory only). An open failure is reported to stderr once and
// likewise degrades to nil: a broken cache directory must never fail
// a run that could complete without one.
func OpenCLI(dir, prog string) *Store {
	if dir == "" {
		return nil
	}
	s, err := Open(dir, Options{Logf: func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, prog+": "+format+"\n", args...)
	}})
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: store: %v — continuing without persistent cache\n", prog, err)
		return nil
	}
	return s
}

// ReportStats prints the run's cache counters to stderr (stderr so
// stdout stays byte-identical with and without a cache). Safe on a
// nil receiver so binaries can call it unconditionally at exit.
func (s *Store) ReportStats(prog string) {
	if s == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: store: %s\n", prog, s.Stats())
}
