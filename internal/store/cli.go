package store

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// OpenCLI opens the store named by a binary's -cache-dir flag. An
// empty dir means "no persistent cache" and returns nil, which every
// consumer accepts (experiments.Config.Store et al. treat nil as
// in-memory only). An open failure is reported to stderr once and
// likewise degrades to nil: a broken cache directory must never fail
// a run that could complete without one.
func OpenCLI(dir, prog string) *Store {
	if dir == "" {
		return nil
	}
	s, err := Open(dir, Options{Logf: func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, prog+": "+format+"\n", args...)
	}})
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: store: %v — continuing without persistent cache\n", prog, err)
		return nil
	}
	return s
}

// ReportStats prints the run's cache counters to stderr (stderr so
// stdout stays byte-identical with and without a cache). Safe on a
// nil receiver so binaries can call it unconditionally at exit.
func (s *Store) ReportStats(prog string) {
	if s == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: store: %s\n", prog, s.Stats())
}

// HandleSignals installs a SIGINT/SIGTERM handler that releases every
// lockfile the given stores still hold and flushes their stats before
// exiting with the conventional 128+signal status. Without it an
// interrupt mid-publish leaves lockfiles other processes must wait
// staleAge to reclaim. Binaries with several stores (result cache plus
// checkpoint store) pass them all — one handler, one exit. The
// returned stop func uninstalls the handler (deferred by binaries so a
// normal exit path wins). Safe with nil stores.
func HandleSignals(prog string, stores ...*Store) (stop func()) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			for _, s := range stores {
				s.ReleaseLocks()
				s.ReportStats(prog)
			}
			fmt.Fprintf(os.Stderr, "%s: interrupted (%v)\n", prog, sig)
			code := 128 + int(syscall.SIGTERM)
			if sig == os.Interrupt {
				code = 128 + int(syscall.SIGINT)
			}
			os.Exit(code)
		case <-done:
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
