package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// TestCrashConsistencyEverySyscallBoundary is the failure-model proof
// the acceptance criteria name: the write path is killed at every
// write-path syscall boundary in turn (including torn variants of each
// Write, where part of the buffer lands before the crash), the store
// is reopened over a clean filesystem, and the invariant checked —
// every entry is either absent or fully valid, and entries published
// before the crash are still served bit-exactly.
func TestCrashConsistencyEverySyscallBoundary(t *testing.T) {
	keyA, keyB := "pre-existing", "in-flight"
	wantA, wantB := samplePayload(), samplePayload()
	wantB.Name = "in-flight-value"

	crashed := 0
	for _, torn := range []int{0, 7} {
		for n := 1; ; n++ {
			dir := t.TempDir()

			// Seed keyA with a clean store: the crash must never be
			// able to damage an already-published entry.
			seed := openTest(t, dir, testOptions(t))
			seed.Put(keyA, wantA)
			if got := seed.Stats(); got.Writes != 1 {
				t.Fatalf("seed write failed: %v", got)
			}

			ffs := NewFaultFS(OSFS{})
			ffs.CrashAtWriteOp(n, torn)
			opts := testOptions(t)
			opts.FS = ffs
			// Open itself is part of the enumerated path (MkdirAll x5).
			s, err := Open(dir, opts)
			if err == nil {
				s.Put(keyB, wantB)
			}
			if !ffs.Fired() {
				// n walked past the last syscall of a complete
				// Open+Put: the schedule is exhausted.
				if n <= 6 {
					t.Fatalf("crash schedule exhausted implausibly early (n=%d)", n)
				}
				break
			}
			crashed++

			// Reopen over the real filesystem, as the next process
			// would, and check the invariant.
			re := openTest(t, dir, testOptions(t))
			valid, corrupt, err := re.Verify()
			if err != nil {
				t.Fatalf("crash at write-op %d (torn=%d): Verify: %v", n, torn, err)
			}
			if corrupt != 0 {
				t.Fatalf("crash at write-op %d (torn=%d): %d corrupt entries visible (absent-or-valid violated)",
					n, torn, corrupt)
			}
			if valid < 1 || valid > 2 {
				t.Fatalf("crash at write-op %d (torn=%d): %d entries, want 1 or 2", n, torn, valid)
			}
			var gotA payload
			if !re.Get(keyA, &gotA) || !reflect.DeepEqual(gotA, wantA) {
				t.Fatalf("crash at write-op %d (torn=%d): pre-existing entry lost or wrong", n, torn)
			}
			var gotB payload
			if re.Get(keyB, &gotB) && !reflect.DeepEqual(gotB, wantB) {
				t.Fatalf("crash at write-op %d (torn=%d): in-flight entry visible but wrong", n, torn)
			}
			if st := re.Stats(); st.CorruptQuarantined != 0 {
				t.Fatalf("crash at write-op %d (torn=%d): clean reopen quarantined %d entries",
					n, torn, st.CorruptQuarantined)
			}
		}
	}
	if crashed == 0 {
		t.Fatal("no crash point ever fired — the schedule is not wired up")
	}
	t.Logf("enumerated %d crash points", crashed)
}

// TestCrashLeavesReclaimableLock: a writer that dies after taking the
// lock must not wedge the key forever. Another process (simulated by
// rewriting the lock owner to a dead pid, since our own pid stays
// alive in-test) reclaims it and publishes.
func TestCrashLeavesReclaimableLock(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS{})
	opts := testOptions(t)
	opts.FS = ffs
	s := openTest(t, dir, opts)
	// Crash right after the lockfile is fully written: write path of
	// Put is lock-OpenFile(#1 after Open's 5 mkdirs)... simpler: crash
	// at the first tmp-file write op = lock open, lock write, lock
	// close, then tmp open = write ops 6,7,8,9 after Open's 5. Crash
	// on op 9 (tmp OpenFile): lock exists and is complete.
	ffs.CrashAtWriteOp(9, 0)
	s.Put("k", samplePayload())
	if !ffs.Fired() {
		t.Fatal("crash did not fire where expected; adjust the schedule")
	}
	locks, err := os.ReadDir(filepath.Join(dir, "locks"))
	if err != nil || len(locks) != 1 {
		t.Fatalf("want the crashed writer's lockfile on disk, got %d (%v)", len(locks), err)
	}

	// The lock names our (live) pid, so a fresh store in this test
	// process correctly refuses to reclaim it and degrades instead —
	// the conservative half of the contract.
	s2 := openTest(t, dir, testOptions(t))
	s2.Put("k", samplePayload())
	if st := s2.Stats(); st.Writes != 0 || st.Faults == 0 {
		t.Fatalf("live-pid lock was stolen: %v", st)
	}

	// Rewrite the owner to a dead pid — what the lock would contain
	// had the process really died — and the next writer reclaims it.
	lockPath := filepath.Join(dir, "locks", locks[0].Name())
	if err := os.WriteFile(lockPath, []byte(`{"pid":999999,"boot_ticks":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := openTest(t, dir, testOptions(t))
	s3.Put("k", samplePayload())
	if st := s3.Stats(); st.Writes != 1 {
		t.Fatalf("dead-pid lock not reclaimed: %v", st)
	}
	var got payload
	if !s3.Get("k", &got) {
		t.Fatal("entry not served after reclaim")
	}
}

// TestTornLockfileReclaimedByAge: a lockfile with unparsable content
// (writer died mid-write) is reclaimed once older than StaleAge.
func TestTornLockfileReclaimedByAge(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions(t))
	name := hashName("k")
	lockPath := filepath.Join(dir, "locks", name+".lock")
	if err := os.WriteFile(lockPath, []byte(`{"pi`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Fresh torn lock: not yet stale, writer must wait then time out.
	start := time.Now()
	s.Put("k", samplePayload())
	st := s.Stats()
	if st.Writes != 1 {
		// StaleAge in testOptions is 10ms and LockTimeout 50ms: the
		// torn lock ages out inside the backoff loop, so the Put must
		// eventually succeed by reclaiming it.
		t.Fatalf("torn lock never reclaimed: %v (after %v)", st, time.Since(start))
	}
}
