package store

import (
	"fmt"
	"testing"
	"time"
)

// benchResults approximates a two-core sim.Results payload size.
type benchResults struct {
	Scheme     string
	Benchmarks []string
	IPC        []float64
	MPKI       []float64
	Cycles     int64
	Counters   []uint64
}

func benchValue() benchResults {
	v := benchResults{
		Scheme:     "CoopPart",
		Benchmarks: []string{"mcf", "namd"},
		IPC:        []float64{0.8231237, 1.2349871},
		MPKI:       []float64{12.31, 0.42},
		Cycles:     98765432,
	}
	for i := 0; i < 64; i++ {
		v.Counters = append(v.Counters, uint64(i)*977)
	}
	return v
}

func benchStore(b *testing.B) *Store {
	b.Helper()
	s, err := Open(b.TempDir(), Options{Logf: func(string, ...any) {}})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkStoreGetHit is the hit-path overhead a warm cache pays per
// memoised run — the cost that must stay negligible against the
// simulation it replaces (BENCH_5).
func BenchmarkStoreGetHit(b *testing.B) {
	s := benchStore(b)
	s.Put("key", benchValue())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out benchResults
		if !s.Get("key", &out) {
			b.Fatal("miss")
		}
	}
}

// BenchmarkStoreGetMiss is the cold-lookup overhead added to every
// first-time simulation.
func BenchmarkStoreGetMiss(b *testing.B) {
	s := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out benchResults
		if s.Get("absent", &out) {
			b.Fatal("hit")
		}
	}
}

// BenchmarkStorePut is the publish cost (lock + write + fsync +
// rename + dir fsync) paid once per simulated run.
func BenchmarkStorePut(b *testing.B) {
	s, err := Open(b.TempDir(), Options{Logf: func(string, ...any) {}, LockTimeout: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	v := benchValue()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(fmt.Sprintf("key-%d", i), v)
	}
	if st := s.Stats(); st.Writes != uint64(b.N) {
		b.Fatalf("writes = %d, want %d (%v)", st.Writes, b.N, st)
	}
}
