package core

// Drowsy extension (Section 6 of the paper): Kedzierski et al.'s
// power-aware partitioning keeps idle lines in a state-preserving
// low-voltage "drowsy" mode, and the paper notes the technique is
// complementary — "the drowsy scheme can also be implemented in our
// cache to offer further energy reductions". This file implements that
// extension at way granularity on top of Cooperative Partitioning:
//
//   - a way whose data array has not been touched for DrowsyWindow
//     cycles drops to drowsy voltage (leakage scaled by DrowsyFactor,
//     contents preserved — unlike the gated-Vdd power-off of
//     unallocated ways, which loses state);
//   - the next data access to a drowsy way pays DrowsyWakePenalty
//     cycles to restore full voltage;
//   - tag arrays stay awake, so lookups are unaffected (the standard
//     drowsy-cache design point).
//
// The extension is off by default (DrowsyWindow == 0) and changes
// neither allocations nor takeover behaviour — only the static-power
// accounting and a small wake latency.

// DrowsyConfig parameterises the extension.
type DrowsyConfig struct {
	// Window is the idle time, in cycles, after which a way's data
	// array goes drowsy. Zero disables the extension.
	Window int64
	// Factor is a drowsy way's leakage relative to full voltage
	// (typically ~0.25 at 45nm).
	Factor float64
	// WakePenalty is the extra access latency to wake a drowsy way.
	WakePenalty int64
}

// DefaultDrowsyConfig returns literature-typical constants: a 4k-cycle
// window, 25% residual leakage, one-cycle wake.
func DefaultDrowsyConfig() DrowsyConfig {
	return DrowsyConfig{Window: 4000, Factor: 0.25, WakePenalty: 1}
}

// EnableDrowsy switches the extension on. Call before running; the
// configuration is fixed for the scheme's lifetime.
func (c *CoopPart) EnableDrowsy(cfg DrowsyConfig) {
	if cfg.Window <= 0 || cfg.Factor < 0 || cfg.Factor > 1 {
		panic("core: invalid drowsy configuration")
	}
	c.drowsy = cfg
	c.lastTouch = make([]int64, c.Cache().Ways())
}

// DrowsyEnabled reports whether the extension is active.
func (c *CoopPart) DrowsyEnabled() bool { return c.drowsy.Window > 0 }

// wakeWay records a data-array touch on way at time now and returns
// the wake penalty if the way was drowsy.
func (c *CoopPart) wakeWay(way int, now int64) int64 {
	if !c.DrowsyEnabled() || way < 0 {
		return 0
	}
	var penalty int64
	if now-c.lastTouch[way] > c.drowsy.Window {
		penalty = c.drowsy.WakePenalty
	}
	c.lastTouch[way] = now
	return penalty
}

// IsDrowsy reports whether way's data array is drowsy at time now.
func (c *CoopPart) IsDrowsy(way int, now int64) bool {
	if !c.DrowsyEnabled() || c.perms.IsOff(way) {
		return false
	}
	return now-c.lastTouch[way] > c.drowsy.Window
}

// drowsyPoweredEquiv returns powered way-equivalents with drowsy ways
// weighted by the drowsy leakage factor.
func (c *CoopPart) drowsyPoweredEquiv(now int64) float64 {
	var eq float64
	for w := 0; w < c.perms.Ways(); w++ {
		switch {
		case c.perms.IsOff(w):
			// gated: counted by the meter's gated-leak residual
		case c.IsDrowsy(w, now):
			eq += c.drowsy.Factor
		default:
			eq++
		}
	}
	return eq
}
