package core

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/partition"
)

// testScheme builds a small two-core CoopPart: 4 ways, 16 sets.
func testScheme(threshold float64) *CoopPart {
	return New(partition.Config{
		Cache:           cache.Config{Name: "l2", SizeBytes: 16 * 4 * 64, LineBytes: 64, Ways: 4, Latency: 15},
		NumCores:        2,
		DRAM:            mem.New(mem.DefaultConfig()),
		Threshold:       threshold,
		TimelineBucket:  100,
		TimelineBuckets: 16,
	})
}

// addrFor builds a byte address for core that maps to the given set
// with a distinguishing tag.
func addrFor(c *CoopPart, core, set, tag int) uint64 {
	l2 := c.Cache()
	line := c.Cache().LineFrom(set, uint64(tag)|uint64(core+1)<<20)
	_ = l2
	return line * 64
}

func TestInitialFairPartition(t *testing.T) {
	c := testScheme(0.05)
	if got := c.Allocations(); got[0] != 2 || got[1] != 2 {
		t.Fatalf("initial allocation = %v, want [2 2]", got)
	}
	if err := c.Perms().Invariants(); err != nil {
		t.Fatal(err)
	}
	if c.PoweredWayEquiv() != 4 {
		t.Fatalf("powered = %v, want 4", c.PoweredWayEquiv())
	}
	// Each core owns a disjoint pair of ways.
	if c.Perms().ReadMask(0)&c.Perms().ReadMask(1) != 0 {
		t.Fatal("cores share ways at init")
	}
}

func TestAccessConsultsOnlyOwnedWays(t *testing.T) {
	c := testScheme(0.05)
	res := c.Access(0, addrFor(c, 0, 3, 1), false, 0)
	if res.TagsConsulted != 2 {
		t.Fatalf("TagsConsulted = %d, want 2 (owned ways only)", res.TagsConsulted)
	}
	if !res.PermCheck {
		t.Fatal("permission registers not consulted")
	}
	if res.Hit {
		t.Fatal("first access cannot hit")
	}
}

func TestDataStaysWayAligned(t *testing.T) {
	c := testScheme(0.05)
	l2 := c.Cache()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		core := rng.Intn(2)
		c.Access(core, addrFor(c, core, rng.Intn(16), rng.Intn(8)), rng.Intn(2) == 0, int64(i))
	}
	// Every valid block must sit in a way its owner can write.
	l2.ForEachValid(func(set, way int, b cache.Block) {
		if b.Owner < 0 {
			t.Fatalf("unowned block at set %d way %d", set, way)
		}
		if !c.Perms().CanWrite(way, b.Owner) {
			t.Errorf("core %d block in way %d without write permission", b.Owner, way)
		}
	})
	if err := c.Perms().Invariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHitAfterInstall(t *testing.T) {
	c := testScheme(0.05)
	addr := addrFor(c, 0, 5, 3)
	c.Access(0, addr, false, 0)
	res := c.Access(0, addr, false, 10)
	if !res.Hit {
		t.Fatal("second access should hit")
	}
	if res.Latency != 15 {
		t.Fatalf("hit latency = %d, want 15", res.Latency)
	}
}

// forceTransfer reprograms the registers as Algorithm 2 would to move
// way from donor to recipient and starts the takeover.
func forceTransfer(c *CoopPart, way, donor, recipient int, now int64) {
	c.perms.SetRead(way, recipient, true)
	c.perms.SetWrite(way, recipient, true)
	c.perms.SetWrite(way, donor, false)
	c.startDonation(donor, transfer{way: way, recipient: recipient}, now)
}

// TestTakeoverWalkthrough follows the Figure 3/4 example: core 1
// donates way 2 to core 0; accesses by either core flush dirty data
// set-by-set, and when every set has been touched, core 0 owns the way
// and core 1's read permission is withdrawn.
func TestTakeoverWalkthrough(t *testing.T) {
	c := testScheme(0.05)
	l2 := c.Cache()
	// Fill way 2 (owned by core 1 initially) with dirty data.
	for set := 0; set < l2.NumSets(); set++ {
		l2.InstallAt(set, 2, uint64(0x700+set), 1, true)
	}
	forceTransfer(c, 2, 1, 0, 100)
	if err := c.Perms().Invariants(); err != nil {
		t.Fatal(err)
	}
	if c.Perms().Writer(2) != 0 {
		t.Fatalf("recipient should hold write permission, writer = %d", c.Perms().Writer(2))
	}
	if !c.Perms().CanRead(2, 1) {
		t.Fatal("donor must keep read permission during transition")
	}
	if !c.InTransition() {
		t.Fatal("transition not active")
	}

	// Touch every set, alternating donor and recipient accesses.
	wbBefore := c.Stats().WritebacksToMem
	for set := 0; set < l2.NumSets(); set++ {
		core := set % 2
		c.Access(core, addrFor(c, core, set, 9), false, int64(200+set))
	}
	if c.InTransition() {
		t.Fatal("transition should have completed after all sets were touched")
	}
	if c.Perms().CanRead(2, 1) {
		t.Fatal("donor read permission not withdrawn at completion")
	}
	if c.OwnerOf(2) != 0 {
		t.Fatalf("way 2 owner = %d, want 0", c.OwnerOf(2))
	}
	// All 16 dirty lines were flushed back to memory.
	if got := c.Stats().WritebacksToMem - wbBefore; got < 16 {
		t.Fatalf("writebacks during takeover = %d, want >= 16", got)
	}
	tr := c.Transitions()
	if tr.Completed != 1 || tr.WaysMoved != 1 {
		t.Fatalf("transition stats = %+v", tr)
	}
	if tr.TakeoverEventTotal() != uint64(l2.NumSets()) {
		t.Fatalf("takeover events = %d, want one per set (%d)", tr.TakeoverEventTotal(), l2.NumSets())
	}
	if tr.DonorHits+tr.DonorMisses == 0 || tr.RecipientHits+tr.RecipientMisses == 0 {
		t.Fatal("both donor and recipient events expected")
	}
	if tr.FlushedLines != 16 {
		t.Fatalf("flushed lines = %d, want 16", tr.FlushedLines)
	}
	if tr.AvgTransferCycles() <= 0 {
		t.Fatal("transfer cycles not recorded")
	}
}

func TestTakeoverTransferredBlocksNotReflushed(t *testing.T) {
	c := testScheme(0.05)
	l2 := c.Cache()
	l2.InstallAt(7, 2, 0x700, 1, true)
	forceTransfer(c, 2, 1, 0, 0)
	// First access to set 7 flushes the dirty line and hands it over.
	c.Access(0, addrFor(c, 0, 7, 1), false, 10)
	if got := c.Transitions().FlushedLines; got != 1 {
		t.Fatalf("flushed = %d, want 1", got)
	}
	// The transferred block now belongs to core 0 (Fig. 4 step 5): a
	// later donor access to the same set must not flush again.
	c.Access(1, addrFor(c, 1, 7, 2), false, 20)
	if got := c.Transitions().FlushedLines; got != 1 {
		t.Fatalf("re-flushed transferred block: flushed = %d", got)
	}
}

func TestWayTurnOffViaTakeover(t *testing.T) {
	c := testScheme(0.05)
	l2 := c.Cache()
	// Dirty data in way 1 (core 0's way).
	for set := 0; set < l2.NumSets(); set++ {
		l2.InstallAt(set, 1, uint64(0x500+set), 0, true)
	}
	// Core 0 gives way 1 up with no recipient (power-off).
	c.perms.SetWrite(1, 0, false)
	c.startDonation(0, transfer{way: 1, recipient: -1}, 0)

	for set := 0; set < l2.NumSets(); set++ {
		c.Access(0, addrFor(c, 0, set, 3), false, int64(10+set))
	}
	if c.InTransition() {
		t.Fatal("turn-off transition should have completed")
	}
	if !c.Perms().IsOff(1) {
		t.Fatal("way 1 should be powered off")
	}
	if c.OwnerOf(1) != -1 {
		t.Fatalf("way 1 owner = %d, want -1", c.OwnerOf(1))
	}
	if c.PoweredWayEquiv() != 3 {
		t.Fatalf("powered = %v, want 3", c.PoweredWayEquiv())
	}
	// The way's contents are gone (gated-Vdd is not state-preserving).
	for set := 0; set < l2.NumSets(); set++ {
		if l2.Block(set, 1).Valid {
			t.Fatalf("set %d way 1 still valid after power-off", set)
		}
	}
}

func TestStoreToReadOnlyWayMovesLine(t *testing.T) {
	c := testScheme(0.05)
	l2 := c.Cache()
	// A dirty line of core 1's in way 2, which core 1 is donating.
	l2.InstallAt(4, 2, 0x900, 1, true)
	forceTransfer(c, 2, 1, 0, 0)
	addr := l2.LineFrom(4, 0x900) * 64
	// Core 1 stores to it: hit in a read-only way -> the line must move
	// into one of core 1's writable ways (way 3).
	res := c.Access(1, addr, true, 10)
	if !res.Hit {
		t.Fatal("store should hit the read-only way")
	}
	if way, hit := l2.Probe(4, l2.TagOf(l2.Line(addr)), c.Perms().WriteMask(1)); !hit {
		t.Fatal("line did not move into a writable way")
	} else if !c.Perms().CanWrite(way, 1) {
		t.Fatalf("line moved to way %d which core 1 cannot write", way)
	}
}

func TestDecideWithThresholdTurnsWaysOff(t *testing.T) {
	c := testScheme(0.2)
	l2 := c.Cache()
	// Both cores have tiny working sets: one hot line per set reused
	// heavily (all hits at stack distance 1), so extra ways carry no
	// utility and a high threshold strands them.
	for i := 0; i < 4000; i++ {
		set := i % l2.NumSets()
		c.Access(0, addrFor(c, 0, set, 0), false, int64(i))
		c.Access(1, addrFor(c, 1, set, 0), false, int64(i))
	}
	c.Decide(5000)
	// Allocation shrinks toward the 1-way guarantee.
	alloc := c.Allocations()
	if alloc[0]+alloc[1] >= 4 {
		t.Fatalf("threshold decision kept all ways allocated: %v", alloc)
	}
	// Drive the turn-off takeovers to completion.
	for i := 0; i < 4000; i++ {
		set := i % l2.NumSets()
		c.Access(0, addrFor(c, 0, set, 0), false, int64(6000+i))
		c.Access(1, addrFor(c, 1, set, 0), false, int64(6000+i))
	}
	if c.PoweredWayEquiv() >= 4 {
		t.Fatalf("no ways were powered off (powered = %v)", c.PoweredWayEquiv())
	}
	if err := c.Perms().Invariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDecideReallocatesTowardUtility(t *testing.T) {
	c := testScheme(0)
	l2 := c.Cache()
	rng := rand.New(rand.NewSource(3))
	// Core 0 cycles through 4 lines per set (needs all 4 ways); core 1
	// hammers a single line per set (needs 1 way).
	drive := func(base int64, n int) {
		for i := 0; i < n; i++ {
			set := rng.Intn(l2.NumSets())
			c.Access(0, addrFor(c, 0, set, i%4), false, base+int64(i))
			c.Access(1, addrFor(c, 1, set, 0), false, base+int64(i))
		}
	}
	drive(0, 6000)
	c.Decide(10000)
	drive(20000, 6000)
	c.Decide(40000)
	alloc := c.Allocations()
	if alloc[0] <= alloc[1] {
		t.Fatalf("high-utility core not favoured: %v", alloc)
	}
	if alloc[1] < 1 {
		t.Fatalf("minimum allocation violated: %v", alloc)
	}
}

func TestDecideNoChangeNoRepartition(t *testing.T) {
	c := testScheme(0)
	c.Decide(100)
	reps := c.Stats().Repartitions
	c.Decide(200)
	if c.Stats().Repartitions != reps {
		t.Fatal("repartition recorded with unchanged utility")
	}
}

// Property: invariants hold and data stays way-aligned through random
// interleavings of accesses and decisions.
func TestPropertyInvariantsUnderRandomDriving(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c := testScheme(0.05)
		l2 := c.Cache()
		rng := rand.New(rand.NewSource(seed))
		now := int64(0)
		for i := 0; i < 8000; i++ {
			now += int64(rng.Intn(5))
			core := rng.Intn(2)
			c.Access(core, addrFor(c, core, rng.Intn(16), rng.Intn(6)), rng.Intn(3) == 0, now)
			if i%1000 == 999 {
				c.Decide(now)
				if err := c.Perms().Invariants(); err != nil {
					t.Fatalf("seed %d after decide: %v", seed, err)
				}
			}
		}
		if err := c.Perms().Invariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		l2.ForEachValid(func(set, way int, b cache.Block) {
			if b.Owner >= 0 && !c.Perms().CanRead(way, b.Owner) {
				// A block may transiently belong to a core that cannot
				// read the way only if the way was handed over; owner
				// must then match the way's owner.
				if c.OwnerOf(way) != b.Owner {
					t.Errorf("seed %d: stranded block owner %d in way %d (way owner %d)",
						seed, b.Owner, way, c.OwnerOf(way))
				}
			}
		})
		// Ways summed over cores plus powered-off ways equals total.
		powered := int(c.PoweredWayEquiv())
		off := 0
		for w := 0; w < 4; w++ {
			if c.Perms().IsOff(w) {
				off++
			}
		}
		if powered+off != 4 {
			t.Errorf("seed %d: powered %d + off %d != 4", seed, powered, off)
		}
	}
}

func TestSchemeInterfaceCompliance(t *testing.T) {
	var s partition.Scheme = testScheme(0.05)
	if s.Name() != "CoopPart" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.Transitions() == nil || s.Stats() == nil {
		t.Fatal("stats accessors returned nil")
	}
}
