package core

// BitVec is a takeover bit vector: one bit per cache set (Section 2.3).
// Each core owns one; it is reset when the core becomes a donor and a
// set's bit is set the first time the donor or a recipient accesses
// that set during the transition.
type BitVec struct {
	words []uint64
	n     int
	count int
}

// NewBitVec returns a cleared vector of n bits.
func NewBitVec(n int) *BitVec {
	if n <= 0 {
		panic("core: BitVec size must be positive")
	}
	return &BitVec{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (v *BitVec) Len() int { return v.n }

// Get reports whether bit i is set.
func (v *BitVec) Get(i int) bool { return v.words[i>>6]&(1<<uint(i&63)) != 0 }

// Set sets bit i, reporting whether it was newly set.
func (v *BitVec) Set(i int) bool {
	w, b := i>>6, uint64(1)<<uint(i&63)
	if v.words[w]&b != 0 {
		return false
	}
	v.words[w] |= b
	v.count++
	return true
}

// Count returns how many bits are set.
func (v *BitVec) Count() int { return v.count }

// Full reports whether every bit is set — the transition-complete
// condition of Section 2.4.
func (v *BitVec) Full() bool { return v.count == v.n }

// Reset clears all bits (start of a transition period).
func (v *BitVec) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
	v.count = 0
}

// transfer is one way migration in flight: the way and the core that
// will own it afterwards (-1 when the way is being turned off).
type transfer struct {
	way       int
	recipient int
}

// donorState tracks one donor core's active transition period: the ways
// it is giving up, its takeover bit vector, and when the period began
// (for the Figure 15/16 statistics).
type donorState struct {
	active    bool
	bits      *BitVec
	start     int64
	transfers []transfer
}

// involves reports whether core participates in this transition, as the
// donor itself or as a recipient of one of its ways.
func (d *donorState) involves(donor, core int) bool {
	if !d.active {
		return false
	}
	if core == donor {
		return true
	}
	for _, t := range d.transfers {
		if t.recipient == core {
			return true
		}
	}
	return false
}

// hasRecipient reports whether any transfer in this transition hands
// its way to another core (rather than powering it off).
func (d *donorState) hasRecipient() bool {
	for _, t := range d.transfers {
		if t.recipient >= 0 {
			return true
		}
	}
	return false
}
