package core

import (
	"encoding/json"
	"fmt"
	"math/bits"

	"repro/internal/umon"
)

// Snapshot/restore layer for Cooperative Partitioning (DESIGN.md §14).
// CoopPart implements partition.Stateful like the comparison schemes:
// the whole dynamic state — controller, monitors, RAP/WAP registers,
// way ownership, in-flight donor transitions and the Algorithm 2 RNG —
// round-trips through one JSON document. Derived state is recomputed:
// the per-core read/write masks are rebuilt from the restored
// registers (then cross-checked by Invariants) and the takeover bit
// counts are repopcounted from the words.

// permState serializes the RAP/WAP register file: only the registers
// travel; the cached per-core masks are derived.
type permState struct {
	RAP []uint64
	WAP []uint64
}

// restorePerms overwrites p's registers from st and rebuilds the
// cached masks.
func (p *PermRegs) restore(st *permState) error {
	if len(st.RAP) != p.ways || len(st.WAP) != p.ways {
		return fmt.Errorf("core: snapshot has %d/%d permission registers, file has %d ways",
			len(st.RAP), len(st.WAP), p.ways)
	}
	copy(p.rap, st.RAP)
	copy(p.wap, st.WAP)
	for c := 0; c < p.cores; c++ {
		var rm, wm uint64
		cbit := uint64(1) << uint(c)
		for w := 0; w < p.ways; w++ {
			if p.rap[w]&cbit != 0 {
				rm |= 1 << uint(w)
			}
			if p.wap[w]&cbit != 0 {
				wm |= 1 << uint(w)
			}
		}
		p.readMask[c] = rm
		p.writeMask[c] = wm
	}
	return p.Invariants()
}

// transferState is one in-flight way migration.
type transferState struct {
	Way       int
	Recipient int
}

// donorStateState is one donor core's transition period. The bit
// vector's set count is derived from the words on restore.
type donorStateState struct {
	Active    bool
	Start     int64
	Bits      []uint64
	Transfers []transferState
}

type coopState struct {
	Controller json.RawMessage // the embedded partition.Controller's document
	Monitors   []*umon.State
	Perms      permState
	Owner      []int
	Donors     []donorStateState
	Alloc      []int
	RNG        uint64
	LastTouch  []int64 // nil when the drowsy extension is off
	LastNow    int64
}

// StateJSON implements partition.Stateful.
func (c *CoopPart) StateJSON() ([]byte, error) {
	ctl, err := c.ControllerStateJSON()
	if err != nil {
		return nil, err
	}
	mons := make([]*umon.State, len(c.mons))
	for i, m := range c.mons {
		mons[i] = m.State()
	}
	st := coopState{
		Controller: ctl,
		Monitors:   mons,
		Perms:      permState{RAP: c.perms.rap, WAP: c.perms.wap},
		Owner:      c.owner,
		Alloc:      c.alloc,
		RNG:        c.rng,
		LastTouch:  c.lastTouch,
		LastNow:    c.lastNow,
	}
	st.Donors = make([]donorStateState, len(c.donors))
	for i := range c.donors {
		ds := &c.donors[i]
		d := donorStateState{
			Active: ds.active,
			Start:  ds.start,
			Bits:   append([]uint64(nil), ds.bits.words...),
		}
		for _, t := range ds.transfers {
			d.Transfers = append(d.Transfers, transferState{Way: t.way, Recipient: t.recipient})
		}
		st.Donors[i] = d
	}
	return json.Marshal(st)
}

// RestoreStateJSON implements partition.Stateful.
func (c *CoopPart) RestoreStateJSON(data []byte) error {
	var st coopState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if len(st.Owner) != len(c.owner) || len(st.Alloc) != len(c.alloc) ||
		len(st.Donors) != len(c.donors) {
		return fmt.Errorf("core: snapshot geometry mismatch (%d/%d owners, %d/%d allocs, %d/%d donors)",
			len(st.Owner), len(c.owner), len(st.Alloc), len(c.alloc), len(st.Donors), len(c.donors))
	}
	if c.DrowsyEnabled() != (st.LastTouch != nil) {
		return fmt.Errorf("core: snapshot drowsy state does not match scheme configuration")
	}
	if st.LastTouch != nil && len(st.LastTouch) != len(c.lastTouch) {
		return fmt.Errorf("core: snapshot has %d drowsy touch stamps, scheme has %d",
			len(st.LastTouch), len(c.lastTouch))
	}
	if len(st.Monitors) != len(c.mons) {
		return fmt.Errorf("core: snapshot has %d monitors, scheme has %d", len(st.Monitors), len(c.mons))
	}
	if err := c.RestoreControllerStateJSON(st.Controller); err != nil {
		return err
	}
	for i, m := range c.mons {
		if err := m.Restore(st.Monitors[i]); err != nil {
			return fmt.Errorf("core: monitor %d: %w", i, err)
		}
	}
	if err := c.perms.restore(&st.Perms); err != nil {
		return err
	}
	copy(c.owner, st.Owner)
	copy(c.alloc, st.Alloc)
	c.rng = st.RNG
	if st.LastTouch != nil {
		copy(c.lastTouch, st.LastTouch)
	}
	c.lastNow = st.LastNow
	for i := range c.donors {
		ds := &c.donors[i]
		d := &st.Donors[i]
		if len(d.Bits) != len(ds.bits.words) {
			return fmt.Errorf("core: donor %d snapshot bit vector has %d words, scheme has %d",
				i, len(d.Bits), len(ds.bits.words))
		}
		ds.active = d.Active
		ds.start = d.Start
		copy(ds.bits.words, d.Bits)
		count := 0
		for _, w := range ds.bits.words {
			count += bits.OnesCount64(w)
		}
		ds.bits.count = count
		ds.transfers = ds.transfers[:0]
		for _, t := range d.Transfers {
			ds.transfers = append(ds.transfers, transfer{way: t.Way, recipient: t.Recipient})
		}
	}
	return nil
}
