package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/partition"
	"repro/internal/umon"
)

// sampledScheme builds a two-core CoopPart on a set-sampled LLC:
// 8 ways, 64 sets, every stride-th set modelled.
func sampledScheme(stride, umonSampling int) *CoopPart {
	return New(partition.Config{
		Cache: cache.Config{Name: "l2", SizeBytes: 64 * 8 * 64, LineBytes: 64,
			Ways: 8, Latency: 15, SampleStride: stride},
		NumCores:        2,
		DRAM:            mem.New(mem.DefaultConfig()),
		UMONSampling:    umonSampling,
		Threshold:       0.05,
		TimelineBucket:  100,
		TimelineBuckets: 16,
	})
}

// TestLLCSamplerMatchesUMON pins the shared-helper invariant of the
// set-sampled tier: the LLC's sampled-set selection is exactly the
// selection umon.NewSetSampler makes for the same geometry — one
// audited mapping for the address-interleaved mask, the dense row and
// the true scale ratio, used by both the ATD and the cache substrate.
func TestLLCSamplerMatchesUMON(t *testing.T) {
	const sets, stride = 64, 8
	c := sampledScheme(stride, 1)
	l2 := c.Cache()
	ref := umon.NewSetSampler(sets, stride)

	if l2.SampledSets() != ref.Rows() || l2.SampleStride() != ref.Stride() {
		t.Fatalf("geometry: cache %d sets stride %d, sampler %d rows stride %d",
			l2.SampledSets(), l2.SampleStride(), ref.Rows(), ref.Stride())
	}
	for set := 0; set < sets; set++ {
		if l2.Sampled(set) != ref.Sampled(set) {
			t.Fatalf("set %d: cache sampled=%v, UMON sampler sampled=%v",
				set, l2.Sampled(set), ref.Sampled(set))
		}
		if ref.Sampled(set) {
			if row := set >> l2.SampleShift(); row != ref.Row(set) {
				t.Fatalf("set %d: cache row %d, sampler row %d", set, row, ref.Row(set))
			}
		}
	}
}

// TestMonitorsSeeFullAddressStream pins the UMON/LLC sampling
// independence under LLC set sampling: the monitors keep their
// configured ratio regardless of the LLC stride — the ATDs model the
// address stream, which exists in full whether or not the LLC
// simulates a set, so sampling the cache must not coarsen the miss
// curves the allocation decisions run on — and an access to a
// non-modelled (estimated) set still reaches the monitor.
func TestMonitorsSeeFullAddressStream(t *testing.T) {
	const sets, stride = 64, 8
	c := sampledScheme(stride, 2)
	if got := c.Monitors()[0].Config().Sampling; got != 2 {
		t.Fatalf("monitor sampling = %d, want the configured 2 (not the LLC stride %d)", got, stride)
	}

	// Set 2 is UMON-sampled (ratio 2) but not LLC-modelled (stride 8):
	// accessing it must feed the monitor and report UMONSampled.
	l2 := c.Cache()
	if l2.Sampled(2) || !c.UMONSampled(2) {
		t.Fatalf("set 2: LLC-sampled=%v UMON-sampled=%v, want false/true", l2.Sampled(2), c.UMONSampled(2))
	}
	addr := uint64(0)
	for a := uint64(0); a < uint64(sets)*64; a += 64 {
		if l2.Index(l2.Line(a)) == 2 {
			addr = a
			break
		}
	}
	before := c.Monitors()[0].Accesses()
	res := c.Access(0, addr, false, 0)
	if !res.UMONSampled {
		t.Fatal("estimated access to a UMON-sampled set did not report UMONSampled")
	}
	if after := c.Monitors()[0].Accesses(); after <= before {
		t.Fatalf("monitor accesses %d -> %d, want the estimated access observed", before, after)
	}
}
