// Package core implements Cooperative Partitioning, the paper's
// contribution (Section 2): way-aligned LLC partitioning driven by a
// thresholded look-ahead allocation (Algorithm 1), enforced by per-way
// read/write access-permission registers (RAP/WAP, Algorithm 2), with
// way migration through cooperative takeover (Sections 2.3-2.4) and
// gated-Vdd power-off of unallocated ways.
package core

import (
	"fmt"
	"math/bits"
)

// PermRegs is the file of per-way RAP and WAP registers. Each register
// holds one bit per core: RAP grants read access to a way, WAP write
// access. The three operating modes of Section 2.2 per (way, core):
//
//	RAP=1 WAP=1: full access (the way's owner, or the recipient during
//	             a transition)
//	RAP=1 WAP=0: read-only (a donor during a transition, or a donor
//	             draining a way that is being turned off)
//	RAP=0 WAP=0: no access
//
// The file also maintains the per-core read/write way masks that the
// access path consults, so a lookup is one AND rather than a scan.
type PermRegs struct {
	ways, cores int
	shared      bool     // shared-way fallback: clusters co-own ways
	rap         []uint64 // per way: core bitmask with read permission
	wap         []uint64 // per way: core bitmask with write permission
	readMask    []uint64 // per core: ways readable
	writeMask   []uint64 // per core: ways writable
}

// NewPermRegs builds an all-clear register file.
func NewPermRegs(ways, cores int) *PermRegs {
	if ways <= 0 || ways > 64 || cores <= 0 || cores > 64 {
		panic(fmt.Sprintf("core: invalid PermRegs geometry %d ways / %d cores", ways, cores))
	}
	return &PermRegs{
		ways:      ways,
		cores:     cores,
		rap:       make([]uint64, ways),
		wap:       make([]uint64, ways),
		readMask:  make([]uint64, cores),
		writeMask: make([]uint64, cores),
	}
}

// AllowSharedWays switches the file into shared-way mode (DESIGN.md
// §9): with more cores than ways, a way is co-owned by a ring-adjacent
// cluster of cores, so several cores may hold write permission on the
// same way and Invariants no longer bounds the reader/writer counts.
// The structural guarantees that remain — write implies read, cached
// masks consistent with the registers — still hold.
func (p *PermRegs) AllowSharedWays() { p.shared = true }

// Shared reports whether shared-way mode is enabled.
func (p *PermRegs) Shared() bool { return p.shared }

// Ways returns the number of ways covered.
func (p *PermRegs) Ways() int { return p.ways }

// Cores returns the number of cores covered.
func (p *PermRegs) Cores() int { return p.cores }

// CanRead reports whether core may read way.
func (p *PermRegs) CanRead(way, core int) bool { return p.rap[way]&(1<<uint(core)) != 0 }

// CanWrite reports whether core may write way.
func (p *PermRegs) CanWrite(way, core int) bool { return p.wap[way]&(1<<uint(core)) != 0 }

// SetRead sets or clears core's RAP bit for way.
func (p *PermRegs) SetRead(way, core int, v bool) {
	bit := uint64(1) << uint(core)
	wbit := uint64(1) << uint(way)
	if v {
		p.rap[way] |= bit
		p.readMask[core] |= wbit
	} else {
		p.rap[way] &^= bit
		p.readMask[core] &^= wbit
	}
}

// SetWrite sets or clears core's WAP bit for way.
func (p *PermRegs) SetWrite(way, core int, v bool) {
	bit := uint64(1) << uint(core)
	wbit := uint64(1) << uint(way)
	if v {
		p.wap[way] |= bit
		p.writeMask[core] |= wbit
	} else {
		p.wap[way] &^= bit
		p.writeMask[core] &^= wbit
	}
}

// ReadMask returns the ways core may read (its tag-lookup mask: the
// dynamic-energy win is that only these tags are consulted).
func (p *PermRegs) ReadMask(core int) uint64 { return p.readMask[core] }

// WriteMask returns the ways core may write (its replacement mask).
func (p *PermRegs) WriteMask(core int) uint64 { return p.writeMask[core] }

// RAP returns the raw RAP register of a way (reporting/tests).
func (p *PermRegs) RAP(way int) uint64 { return p.rap[way] }

// WAP returns the raw WAP register of a way (reporting/tests).
func (p *PermRegs) WAP(way int) uint64 { return p.wap[way] }

// Writer returns the core with write permission on way, or -1. Outside
// shared-way mode at most one core ever holds write permission (checked
// by Invariants); in shared-way mode the lowest-numbered sharer is
// returned as the cluster representative.
func (p *PermRegs) Writer(way int) int {
	if p.wap[way] == 0 {
		return -1
	}
	return bits.TrailingZeros64(p.wap[way])
}

// Readers returns the number of cores with read permission on way.
func (p *PermRegs) Readers(way int) int { return bits.OnesCount64(p.rap[way]) }

// IsOff reports whether way has no permissions at all — the condition
// for power-gating it (Section 2.2).
func (p *PermRegs) IsOff(way int) bool { return p.rap[way] == 0 && p.wap[way] == 0 }

// PoweredWays counts ways that are not gated.
func (p *PermRegs) PoweredWays() int {
	n := 0
	for w := 0; w < p.ways; w++ {
		if !p.IsOff(w) {
			n++
		}
	}
	return n
}

// Invariants checks the structural properties Section 2.2 guarantees:
//
//  1. write permission implies read permission;
//  2. at most one core holds write permission on a way;
//  3. at most two cores hold read permission on a way, and when two do
//     (a transition), exactly one of them is the writer (the recipient).
//
// In shared-way mode (AllowSharedWays) properties 2 and 3 are replaced
// by the cluster invariant: every way with any reader has at least one
// writer, and readers and writers coincide (clusters hold full access;
// there are no transitions to leave a way read-only).
//
// It returns the first violation found, or nil.
func (p *PermRegs) Invariants() error {
	for w := 0; w < p.ways; w++ {
		if p.wap[w]&^p.rap[w] != 0 {
			return fmt.Errorf("way %d: WAP %b grants write without read (RAP %b)", w, p.wap[w], p.rap[w])
		}
		if p.shared {
			if p.rap[w] != p.wap[w] {
				return fmt.Errorf("way %d: shared cluster with partial access (RAP %b, WAP %b)",
					w, p.rap[w], p.wap[w])
			}
			continue
		}
		if bits.OnesCount64(p.wap[w]) > 1 {
			return fmt.Errorf("way %d: multiple writers (WAP %b)", w, p.wap[w])
		}
		readers := bits.OnesCount64(p.rap[w])
		if readers > 2 {
			return fmt.Errorf("way %d: %d readers (RAP %b)", w, readers, p.rap[w])
		}
		if readers == 2 && bits.OnesCount64(p.wap[w]) != 1 {
			return fmt.Errorf("way %d: transition without a writer (RAP %b, WAP %b)", w, p.rap[w], p.wap[w])
		}
	}
	// Cross-check the cached per-core masks against the registers.
	for c := 0; c < p.cores; c++ {
		var rm, wm uint64
		for w := 0; w < p.ways; w++ {
			if p.CanRead(w, c) {
				rm |= 1 << uint(w)
			}
			if p.CanWrite(w, c) {
				wm |= 1 << uint(w)
			}
		}
		if rm != p.readMask[c] || wm != p.writeMask[c] {
			return fmt.Errorf("core %d: cached masks out of sync (read %b/%b, write %b/%b)",
				c, rm, p.readMask[c], wm, p.writeMask[c])
		}
	}
	return nil
}
