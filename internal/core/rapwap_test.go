package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPermRegsBasicModes(t *testing.T) {
	p := NewPermRegs(8, 2)
	// Full access.
	p.SetRead(0, 0, true)
	p.SetWrite(0, 0, true)
	if !p.CanRead(0, 0) || !p.CanWrite(0, 0) {
		t.Fatal("full access not granted")
	}
	// Read-only.
	p.SetRead(1, 1, true)
	if !p.CanRead(1, 1) || p.CanWrite(1, 1) {
		t.Fatal("read-only mode broken")
	}
	// No access.
	if p.CanRead(2, 0) || p.CanWrite(2, 0) {
		t.Fatal("permissions granted without being set")
	}
}

func TestPermRegsMasks(t *testing.T) {
	p := NewPermRegs(8, 2)
	p.SetRead(0, 0, true)
	p.SetRead(3, 0, true)
	p.SetWrite(3, 0, true)
	if got := p.ReadMask(0); got != 0b1001 {
		t.Fatalf("ReadMask = %b, want 1001", got)
	}
	if got := p.WriteMask(0); got != 0b1000 {
		t.Fatalf("WriteMask = %b, want 1000", got)
	}
	p.SetRead(0, 0, false)
	if got := p.ReadMask(0); got != 0b1000 {
		t.Fatalf("ReadMask after clear = %b, want 1000", got)
	}
}

func TestPermRegsWriterAndReaders(t *testing.T) {
	p := NewPermRegs(4, 4)
	if p.Writer(0) != -1 {
		t.Fatal("empty way should have no writer")
	}
	p.SetRead(0, 2, true)
	p.SetWrite(0, 2, true)
	if p.Writer(0) != 2 {
		t.Fatalf("Writer = %d, want 2", p.Writer(0))
	}
	p.SetRead(0, 1, true)
	if p.Readers(0) != 2 {
		t.Fatalf("Readers = %d, want 2", p.Readers(0))
	}
}

func TestPermRegsIsOffAndPowered(t *testing.T) {
	p := NewPermRegs(4, 2)
	if p.PoweredWays() != 0 {
		t.Fatal("all-clear file should have zero powered ways")
	}
	p.SetRead(1, 0, true)
	if p.IsOff(1) || p.PoweredWays() != 1 {
		t.Fatal("way with a reader must be powered")
	}
}

func TestPermRegsInvariantsDetectViolations(t *testing.T) {
	// Write without read.
	p := NewPermRegs(4, 2)
	p.SetWrite(0, 0, true)
	if p.Invariants() == nil {
		t.Fatal("write-without-read not detected")
	}
	// Two writers.
	p = NewPermRegs(4, 2)
	for c := 0; c < 2; c++ {
		p.SetRead(0, c, true)
		p.SetWrite(0, c, true)
	}
	if p.Invariants() == nil {
		t.Fatal("double writer not detected")
	}
	// Two readers without writer.
	p = NewPermRegs(4, 3)
	p.SetRead(0, 0, true)
	p.SetRead(0, 1, true)
	if p.Invariants() == nil {
		t.Fatal("transition without writer not detected")
	}
	// A legal transition state passes.
	p = NewPermRegs(4, 2)
	p.SetRead(0, 0, true) // donor, read-only
	p.SetRead(0, 1, true)
	p.SetWrite(0, 1, true) // recipient, full
	if err := p.Invariants(); err != nil {
		t.Fatalf("legal transition flagged: %v", err)
	}
}

func TestPermRegsPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on 0 ways")
		}
	}()
	NewPermRegs(0, 2)
}

// Property: masks remain consistent with registers under random ops
// that respect the legal state machine.
func TestPropertyPermRegsMaskConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewPermRegs(8, 4)
		for i := 0; i < 200; i++ {
			w, c := rng.Intn(8), rng.Intn(4)
			switch rng.Intn(4) {
			case 0:
				p.SetRead(w, c, true)
			case 1:
				p.SetRead(w, c, false)
				p.SetWrite(w, c, false)
			case 2:
				p.SetRead(w, c, true)
				p.SetWrite(w, c, true)
			case 3:
				p.SetWrite(w, c, false)
			}
		}
		// Only check mask/register consistency (the random walk may
		// violate the transition-shape invariants deliberately).
		for c := 0; c < 4; c++ {
			var rm, wm uint64
			for w := 0; w < 8; w++ {
				if p.CanRead(w, c) {
					rm |= 1 << uint(w)
				}
				if p.CanWrite(w, c) {
					wm |= 1 << uint(w)
				}
			}
			if rm != p.ReadMask(c) || wm != p.WriteMask(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBitVec(t *testing.T) {
	v := NewBitVec(100)
	if v.Len() != 100 || v.Count() != 0 || v.Full() {
		t.Fatal("fresh vector state wrong")
	}
	if !v.Set(5) {
		t.Fatal("first Set(5) should report newly set")
	}
	if v.Set(5) {
		t.Fatal("second Set(5) should report already set")
	}
	if !v.Get(5) || v.Get(6) {
		t.Fatal("Get disagrees with Set")
	}
	for i := 0; i < 100; i++ {
		v.Set(i)
	}
	if !v.Full() || v.Count() != 100 {
		t.Fatalf("vector should be full: count=%d", v.Count())
	}
	v.Reset()
	if v.Count() != 0 || v.Get(5) {
		t.Fatal("Reset did not clear")
	}
}

func TestBitVecWordBoundary(t *testing.T) {
	v := NewBitVec(64)
	v.Set(63)
	if !v.Get(63) {
		t.Fatal("bit 63 lost")
	}
	v2 := NewBitVec(65)
	v2.Set(64)
	if !v2.Get(64) || v2.Get(0) {
		t.Fatal("bit 64 handling wrong")
	}
}

func TestOverheadTable1(t *testing.T) {
	pub2, comp2 := PaperTable1(2, 8, 4096)
	// Published two-core numbers: 4096 + 16 + 16 = 4128 bits.
	if pub2.TakeoverBits() != 4096 || pub2.RAPBits() != 16 || pub2.WAPBits() != 16 {
		t.Fatalf("two-core published rows = %d/%d/%d", pub2.TakeoverBits(), pub2.RAPBits(), pub2.WAPBits())
	}
	if pub2.TotalBits() != 4128 {
		t.Fatalf("two-core total = %d, want 4128", pub2.TotalBits())
	}
	if comp2.TakeoverBits() != 8192 {
		t.Fatalf("two-core computed takeover bits = %d, want 8192 (4096 sets * 2)", comp2.TakeoverBits())
	}

	pub4, _ := PaperTable1(4, 16, 4096)
	// Published four-core numbers: 8192 + 64 + 64 = 8320 bits.
	if pub4.TotalBits() != 8320 {
		t.Fatalf("four-core total = %d, want 8320", pub4.TotalBits())
	}
	if pub4.String() == "" {
		t.Fatal("String() empty")
	}
}
