package core
