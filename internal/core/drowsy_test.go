package core

import "testing"

func TestDrowsyDisabledByDefault(t *testing.T) {
	c := testScheme(0.05)
	if c.DrowsyEnabled() {
		t.Fatal("drowsy must be off by default")
	}
	if c.IsDrowsy(0, 1_000_000) {
		t.Fatal("IsDrowsy must be false when disabled")
	}
	if c.PoweredWayEquiv() != 4 {
		t.Fatal("default powered ways wrong")
	}
}

func TestDrowsyWaysGoDrowsyWhenIdle(t *testing.T) {
	c := testScheme(0.05)
	c.EnableDrowsy(DrowsyConfig{Window: 100, Factor: 0.25, WakePenalty: 1})
	// Touch core 0's ways at t=0.
	c.Access(0, addrFor(c, 0, 0, 1), false, 0)
	if c.IsDrowsy(0, 50) && c.IsDrowsy(1, 50) {
		t.Fatal("recently-idle ways already drowsy")
	}
	if !c.IsDrowsy(0, 500) {
		t.Fatal("way 0 should be drowsy after the window")
	}
}

func TestDrowsyWakePenalty(t *testing.T) {
	c := testScheme(0.05)
	c.EnableDrowsy(DrowsyConfig{Window: 100, Factor: 0.25, WakePenalty: 3})
	addr := addrFor(c, 0, 5, 2)
	c.Access(0, addr, false, 0) // fill (wakes the victim way)
	// Re-access long after the window: hit, but pays the wake penalty.
	res := c.Access(0, addr, false, 10_000)
	if !res.Hit {
		t.Fatal("expected hit")
	}
	if res.Latency != 15+3 {
		t.Fatalf("latency = %d, want hit latency 15 + wake 3", res.Latency)
	}
	// Immediate re-access: awake, no penalty.
	res = c.Access(0, addr, false, 10_010)
	if res.Latency != 15 {
		t.Fatalf("awake hit latency = %d, want 15", res.Latency)
	}
}

func TestDrowsyReducesPoweredEquiv(t *testing.T) {
	c := testScheme(0.05)
	c.EnableDrowsy(DrowsyConfig{Window: 100, Factor: 0.25, WakePenalty: 1})
	c.Access(0, addrFor(c, 0, 0, 1), false, 0)
	c.Access(1, addrFor(c, 1, 0, 1), false, 0)
	full := c.PoweredWayEquiv()
	// Advance time via another access far in the future: the three
	// untouched ways have gone drowsy.
	c.Access(0, addrFor(c, 0, 1, 1), false, 50_000)
	reduced := c.PoweredWayEquiv()
	if reduced >= full {
		t.Fatalf("powered equiv did not drop: %v -> %v", full, reduced)
	}
	// Lower bound: 1 awake way + 3 drowsy at 0.25 = 1.75.
	if reduced < 1.74 || reduced > 4 {
		t.Fatalf("powered equiv = %v out of range", reduced)
	}
}

func TestDrowsyPreservesContents(t *testing.T) {
	c := testScheme(0.05)
	c.EnableDrowsy(DefaultDrowsyConfig())
	addr := addrFor(c, 0, 7, 3)
	c.Access(0, addr, true, 0)
	// Long idle: drowsy, but unlike gated-Vdd the data survives.
	res := c.Access(0, addr, false, 1_000_000)
	if !res.Hit {
		t.Fatal("drowsy way lost its contents")
	}
}

func TestDrowsyOffWaysNotDrowsy(t *testing.T) {
	c := testScheme(0.05)
	c.EnableDrowsy(DefaultDrowsyConfig())
	l2 := c.Cache()
	c.perms.SetWrite(1, 0, false)
	c.startDonation(0, transfer{way: 1, recipient: -1}, 0)
	for set := 0; set < l2.NumSets(); set++ {
		c.Access(0, addrFor(c, 0, set, 2), false, int64(10+set))
	}
	if !c.Perms().IsOff(1) {
		t.Fatal("way 1 should be off")
	}
	if c.IsDrowsy(1, 1_000_000) {
		t.Fatal("a gated way is off, not drowsy")
	}
	// Powered equiv excludes the gated way entirely.
	if eq := c.PoweredWayEquiv(); eq > 3 {
		t.Fatalf("powered equiv = %v, want <= 3 with one way gated", eq)
	}
}

func TestEnableDrowsyValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid drowsy config must panic")
		}
	}()
	testScheme(0.05).EnableDrowsy(DrowsyConfig{Window: -1})
}
