package core

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/partition"
)

// fourCoreScheme builds a 4-core, 8-way, 16-set CoopPart.
func fourCoreScheme(threshold float64) *CoopPart {
	return New(partition.Config{
		Cache:           cache.Config{Name: "l2", SizeBytes: 16 * 8 * 64, LineBytes: 64, Ways: 8, Latency: 20},
		NumCores:        4,
		DRAM:            mem.New(mem.DefaultConfig()),
		Threshold:       threshold,
		TimelineBucket:  100,
		TimelineBuckets: 16,
	})
}

func TestFourCoreInitialPartition(t *testing.T) {
	c := fourCoreScheme(0.05)
	alloc := c.Allocations()
	for i, a := range alloc {
		if a != 2 {
			t.Fatalf("core %d initial allocation = %d, want 2", i, a)
		}
	}
	if err := c.Perms().Invariants(); err != nil {
		t.Fatal(err)
	}
	// All masks disjoint.
	var union uint64
	for i := 0; i < 4; i++ {
		m := c.Perms().ReadMask(i)
		if union&m != 0 {
			t.Fatalf("core %d mask overlaps", i)
		}
		union |= m
	}
	if union != 0xff {
		t.Fatalf("union of masks = %b, want all 8 ways", union)
	}
}

func TestSimultaneousDonors(t *testing.T) {
	c := fourCoreScheme(0.05)
	l2 := c.Cache()
	// Core 0 donates way 0 to core 2; core 1 donates way 2 to core 3.
	c.BeginTransfer(0, 0, 2, 10)
	c.BeginTransfer(2, 1, 3, 10)
	if err := c.Perms().Invariants(); err != nil {
		t.Fatal(err)
	}
	// Drive everyone over all sets; both transitions must complete.
	for set := 0; set < l2.NumSets(); set++ {
		for coreID := 0; coreID < 4; coreID++ {
			c.Access(coreID, addrFor(c, coreID, set, 5), false, int64(100+set))
		}
	}
	if c.InTransition() {
		t.Fatal("transitions did not complete")
	}
	if c.OwnerOf(0) != 2 || c.OwnerOf(2) != 3 {
		t.Fatalf("owners = %d,%d want 2,3", c.OwnerOf(0), c.OwnerOf(2))
	}
	if got := c.Transitions().Completed; got != 2 {
		t.Fatalf("completed transitions = %d, want 2", got)
	}
}

func TestMultiWayDonationSharesBitVector(t *testing.T) {
	c := fourCoreScheme(0.05)
	l2 := c.Cache()
	// Core 0 donates both its ways (0 and 1) to two different cores in
	// one transition period: one bit vector covers both (Section 2.3).
	c.BeginTransfer(0, 0, 2, 0)
	c.BeginTransfer(1, 0, 3, 0)
	for set := 0; set < l2.NumSets(); set++ {
		c.Access(0, addrFor(c, 0, set, 1), false, int64(10+set))
	}
	if c.InTransition() {
		t.Fatal("joint transition incomplete")
	}
	tr := c.Transitions()
	if tr.Completed != 1 || tr.WaysMoved != 2 {
		t.Fatalf("stats = completed %d, ways %d; want 1 transition moving 2 ways",
			tr.Completed, tr.WaysMoved)
	}
}

func TestBeginTransferPanicsOnForeignWay(t *testing.T) {
	c := fourCoreScheme(0.05)
	defer func() {
		if recover() == nil {
			t.Fatal("BeginTransfer on a way the donor does not own must panic")
		}
	}()
	c.BeginTransfer(0, 1, 2, 0) // way 0 belongs to core 0, not core 1
}

func TestTurnOnWayIsImmediate(t *testing.T) {
	c := testScheme(0.2)
	l2 := c.Cache()
	// Turn way 1 off first.
	c.perms.SetWrite(1, 0, false)
	c.startDonation(0, transfer{way: 1, recipient: -1}, 0)
	for set := 0; set < l2.NumSets(); set++ {
		c.Access(0, addrFor(c, 0, set, 2), false, int64(10+set))
	}
	if !c.Perms().IsOff(1) {
		t.Fatal("way 1 not off")
	}
	// Now a decision that grants core 1 extra utility would turn it on;
	// emulate the turn-on leg of Algorithm 2 directly.
	w := c.pickOffWay()
	if w != 1 {
		t.Fatalf("pickOffWay = %d, want 1", w)
	}
	c.perms.SetRead(w, 1, true)
	c.perms.SetWrite(w, 1, true)
	c.owner[w] = 1
	if c.PoweredWayEquiv() != 4 {
		t.Fatalf("powered = %v after turn-on, want 4", c.PoweredWayEquiv())
	}
	if err := c.Perms().Invariants(); err != nil {
		t.Fatal(err)
	}
	// The re-powered way is empty (gated-Vdd lost its contents).
	for set := 0; set < l2.NumSets(); set++ {
		if l2.Block(set, w).Valid {
			t.Fatal("turned-on way still holds stale data")
		}
	}
}

func TestRecipientMissOnlyAblationSlower(t *testing.T) {
	run := func(missOnly bool) int64 {
		cfg := partition.Config{
			Cache:             cache.Config{Name: "l2", SizeBytes: 16 * 4 * 64, LineBytes: 64, Ways: 4, Latency: 15},
			NumCores:          2,
			DRAM:              mem.New(mem.DefaultConfig()),
			Threshold:         0.05,
			RecipientMissOnly: missOnly,
		}
		c := New(cfg)
		l2 := c.Cache()
		// Preload both cores' ways so a good share of accesses hit: in
		// the ablated mode only recipient *misses* advance the takeover,
		// so hits must exist for the modes to differ.
		for set := 0; set < l2.NumSets(); set++ {
			for _, p := range []struct{ way, coreID, tag int }{
				{0, 0, 0}, {1, 0, 1}, {3, 1, 0},
			} {
				line := l2.Line(addrFor(c, p.coreID, set, p.tag))
				l2.InstallAt(set, p.way, l2.TagOf(line), p.coreID, false)
			}
		}
		c.BeginTransfer(2, 1, 0, 0) // way 2: donor core 1, recipient core 0
		rng := rand.New(rand.NewSource(5))
		now := int64(0)
		for c.InTransition() && now < 1_000_000 {
			now += 3
			coreID := rng.Intn(2)
			c.Access(coreID, addrFor(c, coreID, rng.Intn(16), rng.Intn(4)), false, now)
		}
		return now
	}
	full := run(false)
	missOnly := run(true)
	if missOnly <= full {
		t.Fatalf("recipient-miss-only takeover (%d cycles) should be slower than full (%d)",
			missOnly, full)
	}
}

func TestDisableGatingKeepsWaysPowered(t *testing.T) {
	cfg := partition.Config{
		Cache:         cache.Config{Name: "l2", SizeBytes: 16 * 4 * 64, LineBytes: 64, Ways: 4, Latency: 15},
		NumCores:      2,
		DRAM:          mem.New(mem.DefaultConfig()),
		Threshold:     0.2,
		DisableGating: true,
	}
	c := New(cfg)
	l2 := c.Cache()
	// Force a turn-off transition to completion.
	c.perms.SetWrite(1, 0, false)
	c.startDonation(0, transfer{way: 1, recipient: -1}, 0)
	for set := 0; set < l2.NumSets(); set++ {
		c.Access(0, addrFor(c, 0, set, 2), false, int64(10+set))
	}
	if !c.Perms().IsOff(1) {
		t.Fatal("way should still be logically unallocated")
	}
	if c.PoweredWayEquiv() != 4 {
		t.Fatalf("powered = %v with gating disabled, want all 4", c.PoweredWayEquiv())
	}
}

func TestStoreMissInstallsIntoOwnWays(t *testing.T) {
	c := testScheme(0.05)
	l2 := c.Cache()
	res := c.Access(1, addrFor(c, 1, 9, 4), true, 0)
	if res.Hit {
		t.Fatal("first store cannot hit")
	}
	line := l2.Line(addrFor(c, 1, 9, 4))
	way, hit := l2.Probe(9, l2.TagOf(line), c.Perms().WriteMask(1))
	if !hit {
		t.Fatal("store fill not found in core 1's ways")
	}
	if !l2.Block(9, way).Dirty {
		t.Fatal("store fill must be dirty")
	}
}

func TestTakeoverOpsReportedDuringTransition(t *testing.T) {
	c := testScheme(0.05)
	c.BeginTransfer(2, 1, 0, 0)
	res := c.Access(0, addrFor(c, 0, 3, 1), false, 10)
	if res.TakeoverOps == 0 {
		t.Fatal("recipient access during transition must report takeover ops")
	}
	res = c.Access(1, addrFor(c, 1, 3, 1), false, 20)
	if res.TakeoverOps == 0 {
		t.Fatal("donor access during transition must report takeover ops")
	}
	// A core not involved pays nothing.
	c2 := fourCoreScheme(0.05)
	c2.BeginTransfer(0, 0, 1, 0)
	if res := c2.Access(3, addrFor(c2, 3, 0, 1), false, 10); res.TakeoverOps != 0 {
		t.Fatal("uninvolved core charged takeover ops")
	}
}

func TestDirtyDataNeverLostAcrossPowerOff(t *testing.T) {
	c := testScheme(0.05)
	l2 := c.Cache()
	dram := c.Cfg().DRAM
	// Dirty lines in the way being turned off.
	for set := 0; set < l2.NumSets(); set++ {
		l2.InstallAt(set, 1, uint64(0x600+set), 0, true)
	}
	writesBefore := dram.Stats().Writes
	c.perms.SetWrite(1, 0, false)
	c.startDonation(0, transfer{way: 1, recipient: -1}, 0)
	for set := 0; set < l2.NumSets(); set++ {
		c.Access(0, addrFor(c, 0, set, 3), false, int64(10+set))
	}
	if !c.Perms().IsOff(1) {
		t.Fatal("way not powered off")
	}
	// Every dirty line must have reached memory exactly once, possibly
	// plus victim writebacks from the concurrent accesses.
	if got := dram.Stats().Writes - writesBefore; got < uint64(l2.NumSets()) {
		t.Fatalf("memory writes = %d, want >= %d (one per dirty line)", got, l2.NumSets())
	}
}

func TestAllocationsNeverExceedWays(t *testing.T) {
	c := fourCoreScheme(0)
	rng := rand.New(rand.NewSource(11))
	now := int64(0)
	for i := 0; i < 20000; i++ {
		now += int64(rng.Intn(4))
		coreID := rng.Intn(4)
		c.Access(coreID, addrFor(c, coreID, rng.Intn(16), rng.Intn(6)), rng.Intn(4) == 0, now)
		if i%2500 == 2499 {
			c.Decide(now)
			total := 0
			for _, a := range c.Allocations() {
				total += a
			}
			if total > 8 {
				t.Fatalf("allocations %v exceed 8 ways", c.Allocations())
			}
		}
	}
}
