package core

import (
	"math/bits"

	"repro/internal/partition"
	"repro/internal/umon"
)

// CoopPart is Cooperative Partitioning: the paper's runtime LLC
// partitioning scheme that keeps UCP-level performance while saving
// dynamic energy (a core probes only the tag ways it owns) and static
// energy (ways owned by nobody are power-gated).
//
// Data is way-aligned: a way belongs to exactly one core at a time, so
// a core's data can never be anywhere outside its RAP mask. Partitions
// come from the thresholded look-ahead of Algorithm 1; migrations are
// carried out by cooperative takeover (Algorithm 2 + Section 2.3):
// donor and recipient both flush the donor's dirty lines set-by-set as
// a side effect of their ordinary accesses, each access marking the
// set's bit in the donor's takeover bit vector, and when the vector
// fills, the donor's read permission is withdrawn and the transfer is
// complete.
type CoopPart struct {
	partition.Controller
	mons   []*umon.Monitor
	perms  *PermRegs
	owner  []int // per way: owning core, -1 = powered off
	donors []donorState
	alloc  []int // target allocation per core (Cur in Algorithm 2)
	rng    uint64

	// Drowsy extension state (drowsy.go); inactive when Window == 0.
	drowsy    DrowsyConfig
	lastTouch []int64 // per way: last data-array access
	lastNow   int64   // most recent access time (for power reporting)
}

// New builds the scheme. The threshold T and the per-core way guarantee
// come from cfg (Threshold, MinAllocWays). With more cores than ways
// (permitted only under cfg.SharedWays) the scheme starts in the
// shared-way fallback: the cores are laid around the takeover ring and
// each ring-contiguous cluster fully co-owns one way; the partition is
// then pinned (way migration needs a settled sole owner) but every core
// keeps LLC access and the permission machinery stays live.
func New(cfg partition.Config) *CoopPart {
	c := &CoopPart{Controller: partition.NewController(cfg)}
	l2 := c.Cache()
	n := c.NumCores()
	c.mons = c.NewMonitors()
	c.perms = NewPermRegs(l2.Ways(), n)
	c.owner = make([]int, l2.Ways())
	c.alloc = make([]int, n)
	c.donors = make([]donorState, n)
	// Takeover bit vectors cover the modelled sets: under set sampling
	// only sampled sets receive accesses and victim events, so a
	// NumSets-sized vector would never fill and transitions would never
	// complete.
	for i := range c.donors {
		c.donors[i].bits = NewBitVec(l2.SampledSets())
	}
	c.rng = 0x9e3779b97f4a7c15

	if c.SharedMode() {
		c.perms.AllowSharedWays()
		for way := range c.owner {
			c.owner[way] = -1
		}
		for i := 0; i < n; i++ {
			way := c.SharedClusterWay(i)
			c.alloc[i] = 1
			if c.owner[way] < 0 {
				c.owner[way] = i // cluster representative
			}
			c.perms.SetRead(way, i, true)
			c.perms.SetWrite(way, i, true)
		}
		return c
	}

	// Initial partition: contiguous fair shares, fully owned.
	way := 0
	for i, share := range c.EqualShares() {
		c.alloc[i] = share
		for k := 0; k < share; k++ {
			c.owner[way] = i
			c.perms.SetRead(way, i, true)
			c.perms.SetWrite(way, i, true)
			way++
		}
	}
	for ; way < l2.Ways(); way++ {
		c.owner[way] = -1
	}
	return c
}

// Name implements partition.Scheme.
func (c *CoopPart) Name() string { return "CoopPart" }

// Perms exposes the RAP/WAP register file (tests, examples, reporting).
func (c *CoopPart) Perms() *PermRegs { return c.perms }

// Monitors exposes the per-core utility monitors.
func (c *CoopPart) Monitors() []*umon.Monitor { return c.mons }

// OwnerOf returns the core owning way (-1 if the way is off).
func (c *CoopPart) OwnerOf(way int) int { return c.owner[way] }

// InTransition reports whether any donor transition is active.
func (c *CoopPart) InTransition() bool {
	for i := range c.donors {
		if c.donors[i].active {
			return true
		}
	}
	return false
}

// nextRand is a SplitMix64 step for the "random way" picks of
// Algorithm 2 (deterministic across runs).
func (c *CoopPart) nextRand() uint64 {
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Access implements partition.Scheme. addr is a byte address.
func (c *CoopPart) Access(core int, addr uint64, isWrite bool, now int64) partition.Result {
	l2 := c.Cache()
	line := l2.Line(addr)
	set := l2.Index(line)
	tag := l2.TagOf(line)
	readMask := c.perms.ReadMask(core)

	// Utility monitoring sees every access, modelled set or not: the
	// ATDs model the address stream, which set sampling does not
	// diminish.
	c.mons[core].Access(set, line)

	// Set sampling: accesses to non-modelled sets are synthesized from
	// the sampled subset's behaviour (partition/estimate.go) and touch
	// none of the permission/takeover machinery. The permission check
	// still happens architecturally, so the estimate charges it.
	if !l2.Sampled(set) {
		res := c.EstimatedAccess(core, bits.OnesCount64(readMask), true, line, now)
		res.UMONSampled = c.UMONSampled(set)
		return res
	}
	w := l2.SampleWeight()

	res := partition.Result{
		TagsConsulted: bits.OnesCount64(readMask),
		PermCheck:     true,
	}
	res.UMONSampled = c.UMONSampled(set)

	way, hit := l2.Probe(set, tag, readMask)
	res.Hit = hit

	// Cooperative takeover: every access by a donor or recipient to a
	// set flushes the donor's dirty data in the transferring ways and
	// sets the donor's takeover bit for the set (Section 2.3).
	for d := range c.donors {
		ds := &c.donors[d]
		if !ds.involves(d, core) {
			continue
		}
		res.TakeoverOps++ // bit-vector consult
		// Ablation: only recipient misses advance the takeover. Pure
		// turn-off periods keep donor-driven progress (they have no
		// recipient to miss, so they would never complete).
		if c.Cfg().RecipientMissOnly && ds.hasRecipient() && (core == d || hit) {
			continue
		}
		if !ds.bits.Set(set >> l2.SampleShift()) {
			continue // bit already set: nothing to flush (Fig. 4, step 5)
		}
		tr := c.Transitions()
		for _, t := range ds.transfers {
			if !l2.ValidAt(set, t.way) || l2.OwnerAt(set, t.way) != d {
				continue
			}
			// FlushBlock is a no-op (false) on clean blocks, so no
			// separate dirty check is needed.
			if flushed, wb := l2.FlushBlock(set, t.way); wb {
				c.Writeback(flushed, now)
				res.Writebacks++
				tr.RecordFlush(now-ds.start, int(w))
			}
			if t.recipient >= 0 {
				l2.SetOwner(set, t.way, t.recipient)
			}
		}
		// Figure 14 classifies the events that set takeover bits when
		// transferring ways *between cores*; pure turn-off periods have
		// no recipient and are excluded.
		if ds.hasRecipient() {
			if core == d {
				if hit {
					tr.DonorHits += w
				} else {
					tr.DonorMisses += w
				}
			} else {
				if hit {
					tr.RecipientHits += w
				} else {
					tr.RecipientMisses += w
				}
			}
		}
		if ds.bits.Full() {
			c.completeDonor(d, now)
		}
	}

	c.lastNow = now
	lat := int64(l2.Latency()) + l2.AcquireBank(set, now)
	if hit {
		l2.Touch(set, way)
		res.Latency = lat + c.wakeWay(way, now)
		if isWrite {
			if c.perms.CanWrite(way, core) {
				l2.MarkDirty(set, way)
			} else {
				// A store hit in a way the core may read but no longer
				// write (it is donating the way): the line moves into
				// one of the core's writable ways, preserving the
				// single-copy invariant.
				l2.InvalidateBlock(set, way)
				if victim := l2.Victim(set, c.perms.WriteMask(core)); victim >= 0 {
					ev := l2.InstallAt(set, victim, tag, core, true)
					if ev.Valid && ev.Dirty {
						c.Writeback(ev.Line, now)
						res.Writebacks++
					}
				}
			}
		}
	} else {
		victim := c.pickVictim(set, c.perms.WriteMask(core))
		var wake int64
		if victim >= 0 {
			ev := l2.InstallAt(set, victim, tag, core, isWrite)
			if ev.Valid && ev.Dirty {
				c.Writeback(ev.Line, now)
				res.Writebacks++
			}
			wake = c.wakeWay(victim, now)
		}
		res.Latency = lat + wake + c.Fill(line, now+lat)
	}

	c.Record(core, hit, res.TagsConsulted)
	st := l2.Stats()
	st.Accesses += w
	if hit {
		st.Hits += w
	} else {
		st.Misses += w
	}
	return res
}

// completeDonor finishes donor d's transition period: read permission
// is withdrawn from every transferring way, ways with no new owner are
// power-gated, and the Figure 15 statistics are recorded.
func (c *CoopPart) completeDonor(d int, now int64) {
	ds := &c.donors[d]
	l2 := c.Cache()
	for _, t := range ds.transfers {
		c.perms.SetRead(t.way, d, false)
		if t.recipient < 0 {
			// Power the way off (gated-Vdd is not state-preserving).
			// Every set was flushed during the takeover, so remaining
			// dirtiness is impossible; write back defensively anyway.
			way := t.way
			l2.InvalidateWay(way, func(line uint64) { c.Writeback(line, now) })
			c.owner[way] = -1
		} else {
			c.owner[t.way] = t.recipient
		}
	}
	tr := c.Transitions()
	tr.Completed++
	tr.WaysMoved += uint64(len(ds.transfers))
	tr.TotalCycles += (now - ds.start) * int64(len(ds.transfers))
	ds.active = false
	ds.transfers = nil
}

// settledWays returns the ways core fully owns right now (writer with
// no co-reader: not already part of a transition).
func (c *CoopPart) settledWays(core int) []int {
	var ws []int
	for w := 0; w < c.perms.Ways(); w++ {
		if c.perms.Writer(w) == core && c.perms.Readers(w) == 1 {
			ws = append(ws, w)
		}
	}
	return ws
}

// startDonation registers one way migration with donor d's state,
// resetting its bit vector as Section 2.3 prescribes (even when a prior
// transition of the same donor is still in flight — that one simply
// takes longer).
func (c *CoopPart) startDonation(d int, t transfer, now int64) {
	ds := &c.donors[d]
	if !ds.active {
		ds.active = true
		ds.start = now
	}
	ds.bits.Reset()
	ds.transfers = append(ds.transfers, t)
}

// Decide implements partition.Scheme: Algorithm 1 picks the new
// allocation from the utility monitors, then Algorithm 2 programs the
// RAP/WAP registers to start the cooperative takeovers. In the
// shared-way fallback the ring is saturated — every way is co-owned by
// its cluster, so there is no settled sole owner to migrate from and
// nothing to gate — and the partition stays pinned; only the monitors
// age.
func (c *CoopPart) Decide(now int64) {
	st := c.Stats()
	st.Decisions++
	if c.SharedMode() {
		c.DecayMonitors(c.mons)
		return
	}
	l2 := c.Cache()
	n := c.NumCores()

	next := umon.ThresholdLookahead(c.MissCurves(c.mons), l2.Ways(), c.Cfg().MinAllocWays, c.Cfg().Threshold)
	c.DecayMonitors(c.mons)

	// Pre in Algorithm 2: the allocation the registers are already
	// converging to (writers of each way, including in-flight
	// recipients).
	pre := make([]int, n)
	for w := 0; w < l2.Ways(); w++ {
		if wr := c.perms.Writer(w); wr >= 0 {
			pre[wr]++
		}
	}

	receive := make([]int, n)
	donate := make([]int, n)
	changed := false
	for i := 0; i < n; i++ {
		switch {
		case next[i] > pre[i]:
			receive[i] = next[i] - pre[i]
			changed = true
		case next[i] < pre[i]:
			donate[i] = pre[i] - next[i]
			changed = true
		}
	}
	if !changed {
		c.alloc = next
		return
	}
	st.Repartitions++

	// Donor -> recipient pairing, picking random settled ways: one walk
	// around the takeover ring, matching recipients (ring order from
	// core 0) with donors (likewise). Donor budgets only shrink, so the
	// donor cursor never needs to revisit a core it has passed — a
	// single O(n) ring pass that reproduces the old pairwise nested
	// scan exactly (same transfer sequence, same RNG draws) while
	// scaling to many-core CMPs.
	j := 0
	for i := 0; i < n && j < n; i++ {
		for receive[i] > 0 && j < n {
			if donate[j] == 0 {
				j++
				continue
			}
			w := c.pickWay(c.settledWays(j))
			if w < 0 {
				donate[j] = 0
				j++
				continue
			}
			c.perms.SetRead(w, i, true)
			c.perms.SetWrite(w, i, true)
			c.perms.SetWrite(w, j, false)
			c.startDonation(j, transfer{way: w, recipient: i}, now)
			receive[i]--
			donate[j]--
		}
	}

	// Leftover donations turn ways off; leftover receipts turn ways on.
	for i := 0; i < n; i++ {
		for donate[i] > 0 {
			w := c.pickWay(c.settledWays(i))
			if w < 0 {
				break
			}
			c.perms.SetWrite(w, i, false)
			c.startDonation(i, transfer{way: w, recipient: -1}, now)
			donate[i]--
		}
		for receive[i] > 0 {
			w := c.pickOffWay()
			if w < 0 {
				break
			}
			// Powering on is immediate: the way's contents were
			// invalidated when it was gated.
			c.perms.SetRead(w, i, true)
			c.perms.SetWrite(w, i, true)
			c.owner[w] = i
			receive[i]--
		}
	}
	c.alloc = next
}

// pickVictim chooses the fill victim among the masked ways: LRU by
// default, or pseudo-random under the RandomVictim ablation (invalid
// ways are preferred either way).
func (c *CoopPart) pickVictim(set int, mask uint64) int {
	if !c.Cfg().RandomVictim {
		return c.Cache().Victim(set, mask)
	}
	l2 := c.Cache()
	var candidates []int
	for m := mask; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if !l2.ValidAt(set, w) {
			return w
		}
		candidates = append(candidates, w)
	}
	return c.pickWay(candidates)
}

// pickWay selects one way pseudo-randomly from candidates (-1 if none).
func (c *CoopPart) pickWay(candidates []int) int {
	if len(candidates) == 0 {
		return -1
	}
	return candidates[c.nextRand()%uint64(len(candidates))]
}

// pickOffWay returns a powered-off way, or -1.
func (c *CoopPart) pickOffWay() int {
	var off []int
	for w := 0; w < c.perms.Ways(); w++ {
		if c.perms.IsOff(w) {
			off = append(off, w)
		}
	}
	return c.pickWay(off)
}

// PoweredWayEquiv implements partition.Scheme: ways with any permission
// bit set are powered; the rest are gated (unless gating is disabled by
// the ablation switch, in which case everything stays powered).
func (c *CoopPart) PoweredWayEquiv() float64 {
	if c.Cfg().DisableGating {
		return float64(c.Cache().Ways())
	}
	if c.DrowsyEnabled() {
		return c.drowsyPoweredEquiv(c.lastNow)
	}
	return float64(c.perms.PoweredWays())
}

// Allocations implements partition.Scheme: the target way allocation.
func (c *CoopPart) Allocations() []int { return append([]int(nil), c.alloc...) }

// BeginTransfer programs the permission registers for a single way
// migration exactly as Algorithm 2 does — the recipient gains full
// access, the donor loses write access (pass recipient -1 to turn the
// way off) — and starts the donor's takeover period at time now. It is
// the building block Decide uses, exported for examples and for
// library users who drive partitioning decisions themselves. It panics
// if donor does not fully own the way.
func (c *CoopPart) BeginTransfer(way, donor, recipient int, now int64) {
	if c.perms.Writer(way) != donor || c.perms.Readers(way) != 1 {
		panic("core: BeginTransfer on a way the donor does not fully own")
	}
	if recipient >= 0 {
		c.perms.SetRead(way, recipient, true)
		c.perms.SetWrite(way, recipient, true)
	}
	c.perms.SetWrite(way, donor, false)
	c.startDonation(donor, transfer{way: way, recipient: recipient}, now)
}

// TakeoverBitsSet reports how many takeover bits are currently set in
// core's bit vector (all sets covered == transition complete).
func (c *CoopPart) TakeoverBitsSet(core int) int { return c.donors[core].bits.Count() }
