package core

import "fmt"

// Overhead is the hardware cost of Cooperative Partitioning (Table 1):
// one takeover bit vector per core (one bit per set), plus per-way RAP
// and WAP registers with one bit per core.
type Overhead struct {
	Sets  int
	Ways  int
	Cores int
}

// TakeoverBits returns the takeover bit-vector cost: sets * cores.
func (o Overhead) TakeoverBits() int { return o.Sets * o.Cores }

// RAPBits returns the read-access-permission register cost.
func (o Overhead) RAPBits() int { return o.Ways * o.Cores }

// WAPBits returns the write-access-permission register cost.
func (o Overhead) WAPBits() int { return o.Ways * o.Cores }

// TotalBits sums all storage.
func (o Overhead) TotalBits() int { return o.TakeoverBits() + o.RAPBits() + o.WAPBits() }

// String formats the overhead as a Table 1 row block.
func (o Overhead) String() string {
	return fmt.Sprintf(
		"Takeover Bit Vectors %d * %d = %d bits; RAP %d * %d = %d bits; WAP %d * %d = %d bits; Total %d bits",
		o.Sets, o.Cores, o.TakeoverBits(),
		o.Ways, o.Cores, o.RAPBits(),
		o.Ways, o.Cores, o.WAPBits(),
		o.TotalBits())
}

// PaperTable1 reproduces the published Table 1 rows. The paper counts
// 2048 sets for both caches (2048*2 and 2048*4 takeover bits); note
// that a 2MB/8-way/64B cache actually has 4096 sets — the published
// table appears to assume one takeover bit per pair of sets (or a
// 2048-set L2). Both variants are returned so the discrepancy is
// visible: the first entry uses the paper's 2048 sets, the second the
// geometric set count.
func PaperTable1(cores, ways, geometricSets int) (published, computed Overhead) {
	published = Overhead{Sets: 2048, Ways: ways, Cores: cores}
	computed = Overhead{Sets: geometricSets, Ways: ways, Cores: cores}
	return published, computed
}
