package core

// Many-core tests: the N-core takeover ring (cores well beyond the
// paper's 2/4) and the shared-way fallback for cores > ways.

import (
	"math/bits"
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/partition"
)

// nCoreScheme builds a CoopPart with the given core and way counts.
func nCoreScheme(t *testing.T, cores, ways, sets int, sharedOK bool) *CoopPart {
	t.Helper()
	return New(partition.Config{
		Cache:           cache.Config{Name: "l2", SizeBytes: sets * ways * 64, LineBytes: 64, Ways: ways, Latency: 15},
		NumCores:        cores,
		DRAM:            mem.New(mem.DefaultConfig()),
		Threshold:       0.05,
		TimelineBucket:  100,
		TimelineBuckets: 16,
		SharedWays:      sharedOK,
	})
}

func TestMoreCoresThanWaysRejectedLoudly(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("8 cores on 4 ways without SharedWays must panic")
		}
	}()
	nCoreScheme(t, 8, 4, 16, false)
}

func TestSharedWayFallbackGeometry(t *testing.T) {
	const cores, ways = 8, 4
	c := nCoreScheme(t, cores, ways, 16, true)
	if !c.SharedMode() {
		t.Fatal("8 cores on 4 ways should be in shared mode")
	}
	if !c.Perms().Shared() {
		t.Fatal("permission registers not in shared-way mode")
	}
	if err := c.Perms().Invariants(); err != nil {
		t.Fatal(err)
	}
	// Every core holds full access to exactly one way; every way is
	// co-owned by a contiguous ring cluster of cores; nothing is gated.
	for i := 0; i < cores; i++ {
		rm := c.Perms().ReadMask(i)
		if bits.OnesCount64(rm) != 1 || rm != c.Perms().WriteMask(i) {
			t.Fatalf("core %d: read mask %b write mask %b, want one shared way",
				i, rm, c.Perms().WriteMask(i))
		}
	}
	for w := 0; w < ways; w++ {
		if c.Perms().Readers(w) != cores/ways {
			t.Fatalf("way %d shared by %d cores, want %d", w, c.Perms().Readers(w), cores/ways)
		}
	}
	if c.PoweredWayEquiv() != float64(ways) {
		t.Fatalf("powered = %v, want %d (saturated ring gates nothing)", c.PoweredWayEquiv(), ways)
	}
	if alloc := c.Allocations(); len(alloc) != cores {
		t.Fatalf("allocations = %v", alloc)
	} else {
		for i, a := range alloc {
			if a != 1 {
				t.Fatalf("core %d allocation = %d, want 1 (shared target)", i, a)
			}
		}
	}
}

func TestSharedWayFallbackStablePartition(t *testing.T) {
	const cores, ways, sets = 8, 4, 16
	c := nCoreScheme(t, cores, ways, sets, true)
	// Drive every core through misses and hits, with decisions between:
	// the partition must stay pinned (no repartitions, no transitions)
	// while every core keeps making progress through its shared way.
	now := int64(0)
	for round := 0; round < 6; round++ {
		for core := 0; core < cores; core++ {
			for s := 0; s < sets; s++ {
				// Twice back to back: cluster-mates share the single
				// way, so only immediate re-use can hit.
				for rep := 0; rep < 2; rep++ {
					res := c.Access(core, addrFor(c, core, s, round%2), round%3 == 0, now)
					if res.TagsConsulted != 1 {
						t.Fatalf("core %d consulted %d tags, want 1", core, res.TagsConsulted)
					}
					now += 10
				}
			}
		}
		c.Decide(now)
		if err := c.Perms().Invariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if reps := c.Stats().Repartitions; reps != 0 {
		t.Fatalf("shared mode repartitioned %d times, want 0", reps)
	}
	if c.InTransition() {
		t.Fatal("shared mode started a takeover transition")
	}
	for core := 0; core < cores; core++ {
		if c.Stats().PerCore[core].Hits == 0 {
			t.Fatalf("core %d never hit its shared way", core)
		}
	}
}

func TestNCoreRingDecideInvariants(t *testing.T) {
	// 8 cores on 32 ways: the full takeover machinery at a core count
	// beyond the paper's. Skewed access intensity forces the lookahead
	// to move ways around the ring; every decision must preserve the
	// permission invariants and never strand a core without a way.
	const cores, ways, sets = 8, 32, 32
	c := nCoreScheme(t, cores, ways, sets, false)
	now := int64(0)
	for round := 0; round < 12; round++ {
		for core := 0; core < cores; core++ {
			// Cores 0..3 hammer many distinct tags (high utility);
			// 4..7 idle on one line each.
			n := 2
			if core < 4 {
				n = 3 + 4*core
			}
			for k := 0; k < n; k++ {
				c.Access(core, addrFor(c, core, (k*7+round)%sets, k), k%4 == 0, now)
				now += 7
			}
		}
		c.Decide(now)
		if err := c.Perms().Invariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		total := 0
		for core := 0; core < cores; core++ {
			if c.Perms().WriteMask(core) == 0 {
				t.Fatalf("round %d: core %d stranded with no writable way", round, core)
			}
			total += bits.OnesCount64(c.Perms().WriteMask(core))
		}
		if total > ways {
			t.Fatalf("round %d: %d writable ways exceed %d", round, total, ways)
		}
	}
	if c.Stats().Repartitions == 0 {
		t.Fatal("skewed 8-core load never repartitioned")
	}
}
