// Package workload defines the 19 synthetic benchmarks standing in for
// the C/C++ SPEC CPU2006 applications of Table 3 and the multiprogrammed
// groupings of Table 4.
//
// Each benchmark's mixture parameters are calibrated so that its
// last-level-cache MPKI (misses per kilo-instruction, measured solo with
// the full LLC) lands in the paper's class — High (MPKI > 5), Medium
// (1 < MPKI < 5) or Low (MPKI < 1) — and so that its utility curve
// matches the paper's narrative: gcc converges to ~7 ways,
// lbm/libquantum are streaming and way-insensitive, sjeng/mcf have
// footprints far beyond the LLC, astar/bzip2/gcc/povray oscillate
// between phases with different cache requirements, and the Low group
// barely touches the LLC.
//
// Footprints are specified in units of LLC *ways* and materialised
// against a concrete cache geometry through Params: a working set of K
// ways spans K * (lines per way) lines whatever the simulation scale,
// so the benchmark's utility-curve knee lands on the same way count on
// the paper's full-size hierarchy and on the scaled-down hierarchy the
// test suite uses. Phase oscillation periods are specified in full-
// scale instructions (against the paper's 1B-instruction runs) and
// scaled by Params.InstrScale.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Class is the paper's MPKI classification (Table 3).
type Class string

// The three MPKI classes.
const (
	High   Class = "High"   // MPKI > 5
	Medium Class = "Medium" // 1 < MPKI < 5
	Low    Class = "Low"    // MPKI < 1
)

// wsSpec is a working set with its footprint in LLC ways.
type wsSpec struct {
	Ways   float64
	Weight float64
}

// spec is the scale-independent description of one benchmark.
type spec struct {
	MemFrac     float64
	StoreFrac   float64
	BranchFrac  float64
	BranchNoise float64
	StreamFrac  float64
	HugeFrac    float64
	HugeWays    float64
	WorkingSets []wsSpec
	// PhaseInsts is the footprint-oscillation period in full-scale
	// instructions (0 = stable requirements).
	PhaseInsts float64
	PhaseDepth float64
	MLP        float64
	// CodeWays is the instruction footprint in LLC ways (0 = tiny).
	// Large-code benchmarks (gcc, perlbench, gobmk, xalan) stress the
	// L1I and put instruction lines into the shared LLC.
	CodeWays float64
}

// Benchmark describes one synthetic SPEC-like application.
type Benchmark struct {
	Name      string
	Class     Class
	PaperMPKI float64 // the MPKI reported in Table 3
	spec      spec
}

// Params materialises a benchmark against a concrete simulation scale.
type Params struct {
	CoreID    int
	LineBytes int // LLC line size
	WayLines  int // lines per LLC way (= LLC sets)
	// InstrScale is the run length relative to the paper's 1B
	// instructions (kept for reporting and sanity checks).
	InstrScale float64
	// PhaseScale is the partitioning interval relative to the paper's
	// 5M cycles. Footprint-oscillation periods scale with it so that an
	// oscillation spans the same number of partitioning intervals at
	// every simulation scale. Defaults to InstrScale when zero.
	PhaseScale float64
	Seed       uint64
	// Fidelity selects the generator's RNG-walk tier (zero value =
	// trace.FidelityExact, the bit-identical default).
	Fidelity trace.Fidelity
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.LineBytes <= 0 || p.WayLines <= 0 {
		return fmt.Errorf("workload: invalid params %+v", p)
	}
	if p.InstrScale <= 0 {
		return fmt.Errorf("workload: InstrScale must be positive, got %v", p.InstrScale)
	}
	return nil
}

// table lists every benchmark. Mixture fractions follow the calibration
// sketch in the package comment; see DESIGN.md §5 for the substitution
// rationale.
var table = []Benchmark{
	// ---- High MPKI (> 5) ----
	{
		Name: "gobmk", Class: High, PaperMPKI: 9,
		spec: spec{
			MemFrac: 0.30, StoreFrac: 0.25, BranchFrac: 0.20, BranchNoise: 0.12,
			StreamFrac:  0.022,
			WorkingSets: []wsSpec{{Ways: 6, Weight: 1}},
			MLP:         1.5,
			CodeWays:    0.4,
		},
	},
	{
		Name: "lbm", Class: High, PaperMPKI: 20.1,
		spec: spec{
			MemFrac: 0.45, StoreFrac: 0.40, BranchFrac: 0.03, BranchNoise: 0.02,
			StreamFrac:  0.045,
			WorkingSets: []wsSpec{{Ways: 1, Weight: 1}},
			MLP:         4,
		},
	},
	{
		Name: "sjeng", Class: High, PaperMPKI: 9.5,
		spec: spec{
			MemFrac: 0.30, StoreFrac: 0.25, BranchFrac: 0.20, BranchNoise: 0.10,
			HugeFrac: 0.033, HugeWays: 300,
			WorkingSets: []wsSpec{{Ways: 0.5, Weight: 1}},
			MLP:         1.2,
		},
	},
	{
		Name: "soplex", Class: High, PaperMPKI: 18,
		spec: spec{
			MemFrac: 0.35, StoreFrac: 0.25, BranchFrac: 0.12, BranchNoise: 0.06,
			StreamFrac: 0.028, HugeFrac: 0.02, HugeWays: 200,
			WorkingSets: []wsSpec{{Ways: 4, Weight: 1}},
			MLP:         2,
		},
	},

	// ---- Medium MPKI (1..5) ----
	{
		Name: "astar", Class: Medium, PaperMPKI: 4.8,
		spec: spec{
			MemFrac: 0.35, StoreFrac: 0.25, BranchFrac: 0.15, BranchNoise: 0.08,
			StreamFrac:  0.005,
			WorkingSets: []wsSpec{{Ways: 7, Weight: 1}},
			PhaseInsts:  20e6, PhaseDepth: 0.15,
			MLP: 1.2,
		},
	},
	{
		Name: "bzip2", Class: Medium, PaperMPKI: 3.2,
		spec: spec{
			MemFrac: 0.30, StoreFrac: 0.35, BranchFrac: 0.15, BranchNoise: 0.07,
			StreamFrac:  0.010,
			WorkingSets: []wsSpec{{Ways: 5, Weight: 1}},
			PhaseInsts:  30e6, PhaseDepth: 0.2,
			MLP: 1.5,
		},
	},
	{
		Name: "calculix", Class: Medium, PaperMPKI: 1.1,
		spec: spec{
			MemFrac: 0.28, StoreFrac: 0.30, BranchFrac: 0.08, BranchNoise: 0.03,
			StreamFrac:  0.004,
			WorkingSets: []wsSpec{{Ways: 2, Weight: 1}},
			MLP:         2,
		},
	},
	{
		Name: "gcc", Class: Medium, PaperMPKI: 4.92,
		spec: spec{
			MemFrac: 0.33, StoreFrac: 0.30, BranchFrac: 0.18, BranchNoise: 0.06,
			StreamFrac:  0.005,
			WorkingSets: []wsSpec{{Ways: 7, Weight: 1}},
			PhaseInsts:  25e6, PhaseDepth: 0.12,
			MLP:      1.5,
			CodeWays: 0.5,
		},
	},
	{
		Name: "libquantum", Class: Medium, PaperMPKI: 3.4,
		spec: spec{
			MemFrac: 0.28, StoreFrac: 0.25, BranchFrac: 0.10, BranchNoise: 0.01,
			StreamFrac:  0.012,
			WorkingSets: []wsSpec{{Ways: 1, Weight: 1}},
			MLP:         4,
		},
	},
	{
		Name: "mcf", Class: Medium, PaperMPKI: 4.8,
		spec: spec{
			MemFrac: 0.35, StoreFrac: 0.20, BranchFrac: 0.12, BranchNoise: 0.07,
			HugeFrac: 0.010, HugeWays: 300,
			WorkingSets: []wsSpec{{Ways: 4, Weight: 1}},
			MLP:         1.2,
		},
	},

	// ---- Low MPKI (< 1) ----
	{
		Name: "dealII", Class: Low, PaperMPKI: 0.8,
		spec: spec{
			MemFrac: 0.30, StoreFrac: 0.30, BranchFrac: 0.12, BranchNoise: 0.04,
			StreamFrac:  0.0027,
			WorkingSets: []wsSpec{{Ways: 3, Weight: 1}},
			MLP:         2,
		},
	},
	{
		Name: "gromacs", Class: Low, PaperMPKI: 0.32,
		spec: spec{
			MemFrac: 0.30, StoreFrac: 0.30, BranchFrac: 0.08, BranchNoise: 0.03,
			StreamFrac:  0.001,
			WorkingSets: []wsSpec{{Ways: 2, Weight: 1}},
			MLP:         2,
		},
	},
	{
		Name: "h264ref", Class: Low, PaperMPKI: 0.89,
		spec: spec{
			MemFrac: 0.32, StoreFrac: 0.30, BranchFrac: 0.12, BranchNoise: 0.05,
			StreamFrac:  0.0028,
			WorkingSets: []wsSpec{{Ways: 2, Weight: 1}},
			MLP:         2,
			CodeWays:    0.2,
		},
	},
	{
		Name: "milc", Class: Low, PaperMPKI: 0.96,
		spec: spec{
			MemFrac: 0.30, StoreFrac: 0.30, BranchFrac: 0.06, BranchNoise: 0.02,
			StreamFrac:  0.0032,
			WorkingSets: []wsSpec{{Ways: 1, Weight: 1}},
			MLP:         3,
		},
	},
	{
		Name: "namd", Class: Low, PaperMPKI: 0.25,
		spec: spec{
			MemFrac: 0.30, StoreFrac: 0.25, BranchFrac: 0.06, BranchNoise: 0.02,
			StreamFrac:  0.0008,
			WorkingSets: []wsSpec{{Ways: 1, Weight: 1}},
			MLP:         2,
		},
	},
	{
		Name: "omnetpp", Class: Low, PaperMPKI: 0.26,
		spec: spec{
			MemFrac: 0.30, StoreFrac: 0.30, BranchFrac: 0.15, BranchNoise: 0.08,
			StreamFrac:  0.0009,
			WorkingSets: []wsSpec{{Ways: 3, Weight: 1}},
			MLP:         1.5,
		},
	},
	{
		Name: "perlbench", Class: Low, PaperMPKI: 0.98,
		spec: spec{
			MemFrac: 0.32, StoreFrac: 0.35, BranchFrac: 0.18, BranchNoise: 0.05,
			StreamFrac:  0.0018,
			WorkingSets: []wsSpec{{Ways: 6, Weight: 1}},
			PhaseInsts:  28e6, PhaseDepth: 0.2,
			MLP:      1.5,
			CodeWays: 0.5,
		},
	},
	{
		Name: "povray", Class: Low, PaperMPKI: 0.1,
		spec: spec{
			MemFrac: 0.28, StoreFrac: 0.25, BranchFrac: 0.14, BranchNoise: 0.05,
			StreamFrac:  0.0004,
			WorkingSets: []wsSpec{{Ways: 5, Weight: 1}},
			PhaseInsts:  25e6, PhaseDepth: 0.1,
			MLP: 1.5,
		},
	},
	{
		Name: "xalan", Class: Low, PaperMPKI: 0.6,
		spec: spec{
			MemFrac: 0.31, StoreFrac: 0.30, BranchFrac: 0.15, BranchNoise: 0.05,
			StreamFrac:  0.002,
			WorkingSets: []wsSpec{{Ways: 2, Weight: 1}},
			MLP:         1.8,
			CodeWays:    0.4,
		},
	},
}

// byName indexes the table.
var byName = func() map[string]*Benchmark {
	m := make(map[string]*Benchmark, len(table))
	for i := range table {
		m[table[i].Name] = &table[i]
	}
	return m
}()

// Names returns all benchmark names, sorted.
func Names() []string {
	names := make([]string, 0, len(table))
	for _, b := range table {
		names = append(names, b.Name)
	}
	sort.Strings(names)
	return names
}

// All returns every benchmark in table order.
func All() []Benchmark { return append([]Benchmark(nil), table...) }

// Get returns the benchmark description for name.
func Get(name string) (Benchmark, error) {
	b, ok := byName[name]
	if !ok {
		return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return *b, nil
}

// MustGet is Get for compiled-in names; it panics on unknown names.
func MustGet(name string) Benchmark {
	b, err := Get(name)
	if err != nil {
		panic(err)
	}
	return b
}

// TraceConfig materialises the benchmark's generator configuration for
// a core at a simulation scale. Each core gets a disjoint address space
// (multiprogrammed workloads share the physical cache sets but never
// the data) and a distinct seed so co-runners are decorrelated.
func (b Benchmark) TraceConfig(p Params) trace.Config {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	s := b.spec
	cfg := trace.Config{
		MemFrac:     s.MemFrac,
		StoreFrac:   s.StoreFrac,
		BranchFrac:  s.BranchFrac,
		BranchNoise: s.BranchNoise,
		StreamFrac:  s.StreamFrac,
		HugeFrac:    s.HugeFrac,
		PhaseDepth:  s.PhaseDepth,
		MLP:         s.MLP,
		LineBytes:   p.LineBytes,
		AddrBase:    uint64(p.CoreID+1) << 44,
		Seed:        p.Seed ^ uint64(p.CoreID)<<32 ^ hashName(b.Name),
		Fidelity:    p.Fidelity,
	}
	if s.HugeFrac > 0 {
		cfg.HugeLines = linesFor(s.HugeWays, p.WayLines)
	}
	// L1-resident locality: real applications serve most of their
	// memory accesses from stack/hot locals that live comfortably in
	// the private L1 (SPEC L1D hit rates are typically >90%). Without
	// this component every working-set access would reach the LLC and
	// LLC allocation decisions would dominate IPC far more than in the
	// paper's system. The region is half the (scale-proportional) L1:
	// wayLines/16 lines, carrying ~90% of the working-set accesses.
	var wsWeight float64
	for _, ws := range s.WorkingSets {
		wsWeight += ws.Weight
	}
	if wsWeight > 0 {
		l1Lines := p.WayLines / 16
		if l1Lines < 4 {
			l1Lines = 4
		}
		cfg.WorkingSets = append(cfg.WorkingSets, trace.WS{
			Lines:  l1Lines,
			Weight: 9 * wsWeight,
		})
	}
	for _, ws := range s.WorkingSets {
		// Real applications have skewed reuse: most accesses fall on a
		// hot core that survives even a small allocation, with a colder
		// tail that benefits from extra ways. A flat uniform footprint
		// would make under-allocation catastrophic (a K-way set losing
		// (K-w)/K of *all* its accesses), so working sets of two or
		// more ways are split into a hot fifth (60% of accesses) and
		// the full footprint (40%), giving convex utility curves with
		// the knee still at K ways.
		if ws.Ways >= 2 {
			// Hot fifth, random (captured by a small allocation), plus
			// a cold tail swept cyclically: under LRU the tail hits
			// only once the whole footprint fits, giving the sharp
			// knee-then-flat utility curve of real applications. The
			// tail carries ~25% of the set's LLC-visible traffic, so a
			// denied knee costs roughly that miss-ratio delta — the
			// band the paper's threshold sweep (Figures 11-13)
			// discriminates in.
			hot := ws.Ways / 5
			if hot < 0.5 {
				hot = 0.5
			}
			// The tail is sized slightly under the nominal footprint so
			// that tail + hot + the application's own streaming
			// insertions still fit within K ways of a set: without the
			// margin the sweep sits on a knife edge at exactly K and
			// its own pollution pushes the effective requirement to
			// K+1, which the monitors then report as a smeared knee.
			cfg.WorkingSets = append(cfg.WorkingSets,
				trace.WS{Lines: linesFor(hot, p.WayLines), Weight: 0.75 * ws.Weight, Sweep: true},
				trace.WS{Lines: linesFor((ws.Ways-hot)*0.8, p.WayLines), Weight: 0.25 * ws.Weight, Sweep: true},
			)
		} else {
			cfg.WorkingSets = append(cfg.WorkingSets, trace.WS{
				Lines:  linesFor(ws.Ways, p.WayLines),
				Weight: ws.Weight,
				Sweep:  true,
			})
		}
	}
	cfg.CodeLines = 1
	if s.CodeWays > 0 {
		cfg.CodeLines = linesFor(s.CodeWays, p.WayLines)
	}
	if s.PhaseInsts > 0 {
		// Convert the full-scale instruction period to memory accesses
		// at this run's scale, preserving the oscillation-to-
		// partitioning-interval ratio.
		ps := p.PhaseScale
		if ps == 0 {
			ps = p.InstrScale
		}
		period := s.PhaseInsts * s.MemFrac * ps
		if period < 1000 {
			period = 1000
		}
		cfg.PhasePeriod = int(period)
	}
	return cfg
}

// linesFor converts a footprint in ways to lines, at least 1.
func linesFor(ways float64, wayLines int) int {
	n := int(ways * float64(wayLines))
	if n < 1 {
		n = 1
	}
	return n
}

// NewGenerator builds the benchmark's trace generator.
func (b Benchmark) NewGenerator(p Params) *trace.Generator {
	return trace.NewGenerator(b.TraceConfig(p))
}

// hashName gives a stable per-benchmark seed component (FNV-1a).
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ClassOf returns the paper's class for a measured MPKI.
func ClassOf(mpki float64) Class {
	switch {
	case mpki > 5:
		return High
	case mpki > 1:
		return Medium
	default:
		return Low
	}
}
