package workload

import "fmt"

// Group is one multiprogrammed workload from Table 4.
type Group struct {
	Name       string
	Benchmarks []string
}

// Groups2 are the fourteen two-application workloads of Table 4. Every
// group contains at least one highly memory-intensive program
// (MPKI > 5), as the paper's selection procedure requires.
var Groups2 = []Group{
	{"G2-1", []string{"soplex", "namd"}},
	{"G2-2", []string{"soplex", "milc"}},
	{"G2-3", []string{"gobmk", "h264ref"}},
	{"G2-4", []string{"lbm", "povray"}},
	{"G2-5", []string{"gobmk", "perlbench"}},
	{"G2-6", []string{"lbm", "bzip2"}},
	{"G2-7", []string{"lbm", "astar"}},
	{"G2-8", []string{"lbm", "soplex"}},
	{"G2-9", []string{"soplex", "dealII"}},
	{"G2-10", []string{"sjeng", "calculix"}},
	{"G2-11", []string{"sjeng", "xalan"}},
	{"G2-12", []string{"soplex", "gcc"}},
	{"G2-13", []string{"sjeng", "povray"}},
	{"G2-14", []string{"gobmk", "omnetpp"}},
}

// Groups4 are the fourteen four-application workloads of Table 4, each
// with at least one High and one Medium MPKI program.
var Groups4 = []Group{
	{"G4-1", []string{"gobmk", "gcc", "perlbench", "xalan"}},
	{"G4-2", []string{"sjeng", "lbm", "calculix", "omnetpp"}},
	{"G4-3", []string{"dealII", "sjeng", "soplex", "namd"}},
	{"G4-4", []string{"soplex", "sjeng", "h264ref", "astar"}},
	{"G4-5", []string{"lbm", "libquantum", "gromacs", "mcf"}},
	{"G4-6", []string{"gobmk", "libquantum", "namd", "perlbench"}},
	{"G4-7", []string{"lbm", "sjeng", "povray", "omnetpp"}},
	{"G4-8", []string{"lbm", "soplex", "h264ref", "dealII"}},
	{"G4-9", []string{"lbm", "xalan", "milc", "soplex"}},
	{"G4-10", []string{"sjeng", "povray", "milc", "gobmk"}},
	{"G4-11", []string{"gobmk", "libquantum", "h264ref", "gromacs"}},
	{"G4-12", []string{"soplex", "astar", "omnetpp", "milc"}},
	{"G4-13", []string{"soplex", "gcc", "libquantum", "xalan"}},
	{"G4-14", []string{"soplex", "bzip2", "astar", "milc"}},
}

// Groups8 are eight-application workloads for the many-core scaling
// sweep, built from the Table 3 benchmarks by the paper's selection
// procedure (every group carries at least one High and one Medium MPKI
// program, with Low programs filling the remainder).
var Groups8 = []Group{
	{"G8-1", []string{"soplex", "lbm", "gcc", "astar", "dealII", "namd", "povray", "xalan"}},
	{"G8-2", []string{"gobmk", "sjeng", "mcf", "libquantum", "bzip2", "h264ref", "omnetpp", "gromacs"}},
	{"G8-3", []string{"lbm", "soplex", "sjeng", "calculix", "perlbench", "milc", "dealII", "astar"}},
	{"G8-4", []string{"gobmk", "lbm", "gcc", "mcf", "xalan", "namd", "h264ref", "povray"}},
	{"G8-5", []string{"soplex", "sjeng", "libquantum", "bzip2", "astar", "omnetpp", "perlbench", "gromacs"}},
	{"G8-6", []string{"gobmk", "soplex", "lbm", "gcc", "calculix", "milc", "dealII", "xalan"}},
}

// Groups16 are sixteen-application workloads for the scaling sweep,
// each drawing 16 of the 19 Table 3 benchmarks across all three MPKI
// classes.
var Groups16 = []Group{
	{"G16-1", []string{
		"gobmk", "lbm", "sjeng", "soplex", "astar", "bzip2", "calculix", "gcc",
		"libquantum", "mcf", "dealII", "gromacs", "h264ref", "milc", "namd", "xalan"}},
	{"G16-2", []string{
		"gobmk", "lbm", "sjeng", "soplex", "astar", "bzip2", "calculix", "gcc",
		"libquantum", "mcf", "h264ref", "milc", "omnetpp", "perlbench", "povray", "xalan"}},
	{"G16-3", []string{
		"lbm", "soplex", "gobmk", "sjeng", "mcf", "gcc", "astar", "libquantum",
		"milc", "xalan", "povray", "perlbench", "omnetpp", "h264ref", "dealII", "calculix"}},
	{"G16-4", []string{
		"gobmk", "soplex", "lbm", "sjeng", "bzip2", "calculix", "gcc", "mcf",
		"libquantum", "astar", "namd", "gromacs", "dealII", "omnetpp", "perlbench", "milc"}},
}

// FindGroup looks a group up by name in all the group tables.
func FindGroup(name string) (Group, error) {
	for _, table := range [][]Group{Groups2, Groups4, Groups8, Groups16} {
		for _, g := range table {
			if g.Name == name {
				return g, nil
			}
		}
	}
	return Group{}, fmt.Errorf("workload: unknown group %q", name)
}

// Tile returns the group widened to n cores by cycling its benchmark
// list: instance k of a benchmark runs as its own core with a distinct
// seed and address space (Params.CoreID feeds both). The name records
// the widening so memo keys and reports stay distinct from the
// original group. Tile returns the group unchanged when n does not
// exceed its size.
func (g Group) Tile(n int) Group {
	if n <= len(g.Benchmarks) {
		return g
	}
	t := Group{
		Name:       fmt.Sprintf("%s@%d", g.Name, n),
		Benchmarks: make([]string, n),
	}
	for i := 0; i < n; i++ {
		t.Benchmarks[i] = g.Benchmarks[i%len(g.Benchmarks)]
	}
	return t
}

// Validate checks a group's benchmarks all exist.
func (g Group) Validate() error {
	if len(g.Benchmarks) == 0 {
		return fmt.Errorf("workload: group %q is empty", g.Name)
	}
	for _, n := range g.Benchmarks {
		if _, err := Get(n); err != nil {
			return fmt.Errorf("workload: group %q: %w", g.Name, err)
		}
	}
	return nil
}
