package workload

import "fmt"

// Group is one multiprogrammed workload from Table 4.
type Group struct {
	Name       string
	Benchmarks []string
}

// Groups2 are the fourteen two-application workloads of Table 4. Every
// group contains at least one highly memory-intensive program
// (MPKI > 5), as the paper's selection procedure requires.
var Groups2 = []Group{
	{"G2-1", []string{"soplex", "namd"}},
	{"G2-2", []string{"soplex", "milc"}},
	{"G2-3", []string{"gobmk", "h264ref"}},
	{"G2-4", []string{"lbm", "povray"}},
	{"G2-5", []string{"gobmk", "perlbench"}},
	{"G2-6", []string{"lbm", "bzip2"}},
	{"G2-7", []string{"lbm", "astar"}},
	{"G2-8", []string{"lbm", "soplex"}},
	{"G2-9", []string{"soplex", "dealII"}},
	{"G2-10", []string{"sjeng", "calculix"}},
	{"G2-11", []string{"sjeng", "xalan"}},
	{"G2-12", []string{"soplex", "gcc"}},
	{"G2-13", []string{"sjeng", "povray"}},
	{"G2-14", []string{"gobmk", "omnetpp"}},
}

// Groups4 are the fourteen four-application workloads of Table 4, each
// with at least one High and one Medium MPKI program.
var Groups4 = []Group{
	{"G4-1", []string{"gobmk", "gcc", "perlbench", "xalan"}},
	{"G4-2", []string{"sjeng", "lbm", "calculix", "omnetpp"}},
	{"G4-3", []string{"dealII", "sjeng", "soplex", "namd"}},
	{"G4-4", []string{"soplex", "sjeng", "h264ref", "astar"}},
	{"G4-5", []string{"lbm", "libquantum", "gromacs", "mcf"}},
	{"G4-6", []string{"gobmk", "libquantum", "namd", "perlbench"}},
	{"G4-7", []string{"lbm", "sjeng", "povray", "omnetpp"}},
	{"G4-8", []string{"lbm", "soplex", "h264ref", "dealII"}},
	{"G4-9", []string{"lbm", "xalan", "milc", "soplex"}},
	{"G4-10", []string{"sjeng", "povray", "milc", "gobmk"}},
	{"G4-11", []string{"gobmk", "libquantum", "h264ref", "gromacs"}},
	{"G4-12", []string{"soplex", "astar", "omnetpp", "milc"}},
	{"G4-13", []string{"soplex", "gcc", "libquantum", "xalan"}},
	{"G4-14", []string{"soplex", "bzip2", "astar", "milc"}},
}

// FindGroup looks a group up by name in both tables.
func FindGroup(name string) (Group, error) {
	for _, g := range Groups2 {
		if g.Name == name {
			return g, nil
		}
	}
	for _, g := range Groups4 {
		if g.Name == name {
			return g, nil
		}
	}
	return Group{}, fmt.Errorf("workload: unknown group %q", name)
}

// Validate checks a group's benchmarks all exist.
func (g Group) Validate() error {
	if len(g.Benchmarks) == 0 {
		return fmt.Errorf("workload: group %q is empty", g.Name)
	}
	for _, n := range g.Benchmarks {
		if _, err := Get(n); err != nil {
			return fmt.Errorf("workload: group %q: %w", g.Name, err)
		}
	}
	return nil
}
