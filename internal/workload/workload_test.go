package workload

import (
	"testing"

	"repro/internal/trace"
)

// testParams is a small materialisation scale used throughout the tests.
func testParams(core int) Params {
	return Params{CoreID: core, LineBytes: 64, WayLines: 128, InstrScale: 0.002, Seed: 1}
}

func TestAllBenchmarkConfigsValidate(t *testing.T) {
	for _, name := range Names() {
		b := MustGet(name)
		cfg := b.TraceConfig(testParams(0))
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestNineteenBenchmarks(t *testing.T) {
	if got := len(Names()); got != 19 {
		t.Fatalf("benchmark count = %d, want 19 (Table 3)", got)
	}
	if got := len(All()); got != 19 {
		t.Fatalf("All() length = %d, want 19", got)
	}
}

func TestClassCountsMatchTable3(t *testing.T) {
	counts := map[Class]int{}
	for _, name := range Names() {
		counts[MustGet(name).Class]++
	}
	// Table 3: 4 High, 6 Medium, 9 Low.
	if counts[High] != 4 || counts[Medium] != 6 || counts[Low] != 9 {
		t.Fatalf("class counts = %v, want High:4 Medium:6 Low:9", counts)
	}
}

func TestPaperMPKIMatchesClassBoundary(t *testing.T) {
	for _, name := range Names() {
		b := MustGet(name)
		if got := ClassOf(b.PaperMPKI); got != b.Class {
			t.Errorf("%s: PaperMPKI %v classifies as %s, table says %s",
				name, b.PaperMPKI, got, b.Class)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nosuch"); err == nil {
		t.Fatal("Get(unknown) should error")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet(unknown) did not panic")
		}
	}()
	MustGet("nosuch")
}

func TestTraceConfigDisjointAddressSpaces(t *testing.T) {
	b := MustGet("soplex")
	c0 := b.TraceConfig(testParams(0))
	c1 := b.TraceConfig(testParams(1))
	if c0.AddrBase == c1.AddrBase {
		t.Fatal("two cores share an address base")
	}
	if c0.Seed == c1.Seed {
		t.Fatal("two cores share a seed")
	}
}

func TestFootprintsScaleWithWayLines(t *testing.T) {
	b := MustGet("gcc") // 7-way working set, split into hot fifth + full
	small := b.TraceConfig(Params{LineBytes: 64, WayLines: 128, InstrScale: 1, Seed: 1})
	big := b.TraceConfig(Params{LineBytes: 64, WayLines: 4096, InstrScale: 1, Seed: 1})
	// Three regions: L1-resident locality, hot fifth, cold tail.
	if len(small.WorkingSets) != 3 {
		t.Fatalf("working sets = %d, want L1+hot+tail", len(small.WorkingSets))
	}
	// Tail is deliberately sized at 80% of the nominal remainder (see
	// TraceConfig): hot + tail land within ~K ways with margin.
	lo, hi := 7*128*8/10, 7*128
	if got := small.WorkingSets[1].Lines + small.WorkingSets[2].Lines; got < lo || got > hi {
		t.Fatalf("scaled footprint = %d lines, want in [%d,%d]", got, lo, hi)
	}
	lo, hi = 7*4096*8/10, 7*4096
	if got := big.WorkingSets[1].Lines + big.WorkingSets[2].Lines; got < lo || got > hi {
		t.Fatalf("full footprint = %d lines, want in [%d,%d]", got, lo, hi)
	}
	// Hot core is a fifth of the footprint with the larger weight.
	if got := small.WorkingSets[1].Lines; got != 7*128/5 {
		t.Fatalf("hot footprint = %d lines, want %d", got, 7*128/5)
	}
	if small.WorkingSets[1].Weight <= small.WorkingSets[2].Weight {
		t.Fatal("hot region should carry the larger access weight")
	}
	// The L1-resident region fits in half the (scaled) L1D.
	if got := small.WorkingSets[0].Lines; got != 128/16 {
		t.Fatalf("L1 region = %d lines, want %d", got, 128/16)
	}
}

func TestPhasePeriodScales(t *testing.T) {
	b := MustGet("astar")
	slow := b.TraceConfig(Params{LineBytes: 64, WayLines: 128, InstrScale: 1, Seed: 1})
	fast := b.TraceConfig(Params{LineBytes: 64, WayLines: 128, InstrScale: 0.01, Seed: 1})
	if fast.PhasePeriod >= slow.PhasePeriod {
		t.Fatalf("phase period did not scale down: %d vs %d", fast.PhasePeriod, slow.PhasePeriod)
	}
	if fast.PhasePeriod < 1000 {
		t.Fatalf("phase period %d below clamp", fast.PhasePeriod)
	}
	stable := MustGet("lbm").TraceConfig(testParams(0))
	if stable.PhasePeriod != 0 {
		t.Fatal("lbm should have stable requirements")
	}
}

func TestTraceConfigPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TraceConfig with bad params did not panic")
		}
	}()
	MustGet("gcc").TraceConfig(Params{})
}

func TestNewGeneratorRuns(t *testing.T) {
	g := MustGet("gcc").NewGenerator(testParams(0))
	var r trace.Record
	mem := 0
	for i := 0; i < 10000; i++ {
		g.Next(&r)
		if r.Kind == trace.KindLoad || r.Kind == trace.KindStore {
			mem++
		}
	}
	if mem == 0 {
		t.Fatal("gcc generator produced no memory accesses")
	}
}

func TestGroupsCardinality(t *testing.T) {
	if len(Groups2) != 14 || len(Groups4) != 14 {
		t.Fatalf("group counts = %d/%d, want 14/14 (Table 4)", len(Groups2), len(Groups4))
	}
	for _, g := range Groups2 {
		if len(g.Benchmarks) != 2 {
			t.Errorf("%s has %d benchmarks, want 2", g.Name, len(g.Benchmarks))
		}
	}
	for _, g := range Groups4 {
		if len(g.Benchmarks) != 4 {
			t.Errorf("%s has %d benchmarks, want 4", g.Name, len(g.Benchmarks))
		}
	}
	for _, g := range Groups8 {
		if len(g.Benchmarks) != 8 {
			t.Errorf("%s has %d benchmarks, want 8", g.Name, len(g.Benchmarks))
		}
	}
	for _, g := range Groups16 {
		if len(g.Benchmarks) != 16 {
			t.Errorf("%s has %d benchmarks, want 16", g.Name, len(g.Benchmarks))
		}
	}
}

func allGroups() []Group {
	var all []Group
	for _, table := range [][]Group{Groups2, Groups4, Groups8, Groups16} {
		all = append(all, table...)
	}
	return all
}

func TestGroupsValidate(t *testing.T) {
	for _, g := range allGroups() {
		if err := g.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestGroupsDistinctBenchmarks(t *testing.T) {
	// No group lists the same benchmark twice (tiled groups do, but
	// only through Tile, which renames them).
	for _, g := range allGroups() {
		seen := map[string]bool{}
		for _, b := range g.Benchmarks {
			if seen[b] {
				t.Errorf("%s lists %s twice", g.Name, b)
			}
			seen[b] = true
		}
	}
}

func TestGroupTile(t *testing.T) {
	g := Groups2[0]
	tiled := g.Tile(8)
	if tiled.Name != g.Name+"@8" || len(tiled.Benchmarks) != 8 {
		t.Fatalf("Tile(8) = %+v", tiled)
	}
	for i, b := range tiled.Benchmarks {
		if b != g.Benchmarks[i%2] {
			t.Fatalf("tiled benchmark %d = %s, want %s", i, b, g.Benchmarks[i%2])
		}
	}
	if err := tiled.Validate(); err != nil {
		t.Fatal(err)
	}
	// Not widening returns the group untouched.
	if same := g.Tile(2); same.Name != g.Name || len(same.Benchmarks) != 2 {
		t.Fatalf("Tile(2) = %+v", same)
	}
}

func TestGroupsSelectionConstraints(t *testing.T) {
	// Paper: every two-app group has >= 1 High benchmark; every four-app
	// group has >= 1 High and a second memory-intensive program.
	for _, g := range Groups2 {
		if countClass(t, g, High) < 1 {
			t.Errorf("%s has no High-MPKI benchmark", g.Name)
		}
	}
	for _, g := range Groups4 {
		if countClass(t, g, High) < 1 {
			t.Errorf("%s has no High-MPKI benchmark", g.Name)
		}
		if countClass(t, g, Medium)+countClass(t, g, High) < 2 {
			t.Errorf("%s lacks a second memory-intensive benchmark", g.Name)
		}
	}
	// The many-core groups follow the same procedure.
	for _, g := range append(append([]Group{}, Groups8...), Groups16...) {
		if countClass(t, g, High) < 1 {
			t.Errorf("%s has no High-MPKI benchmark", g.Name)
		}
		if countClass(t, g, Medium)+countClass(t, g, High) < 2 {
			t.Errorf("%s lacks a second memory-intensive benchmark", g.Name)
		}
	}
}

func countClass(t *testing.T, g Group, c Class) int {
	t.Helper()
	n := 0
	for _, name := range g.Benchmarks {
		if MustGet(name).Class == c {
			n++
		}
	}
	return n
}

func TestFindGroup(t *testing.T) {
	g, err := FindGroup("G2-8")
	if err != nil || g.Benchmarks[0] != "lbm" || g.Benchmarks[1] != "soplex" {
		t.Fatalf("FindGroup(G2-8) = %+v, %v", g, err)
	}
	g, err = FindGroup("G4-13")
	if err != nil || len(g.Benchmarks) != 4 {
		t.Fatalf("FindGroup(G4-13) = %+v, %v", g, err)
	}
	if _, err := FindGroup("G9-99"); err == nil {
		t.Fatal("FindGroup(unknown) should error")
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		mpki float64
		want Class
	}{{20, High}, {5.1, High}, {5, Medium}, {1.5, Medium}, {1, Low}, {0.1, Low}}
	for _, tc := range cases {
		if got := ClassOf(tc.mpki); got != tc.want {
			t.Errorf("ClassOf(%v) = %s, want %s", tc.mpki, got, tc.want)
		}
	}
}

func TestGroupValidateEmpty(t *testing.T) {
	if (Group{Name: "empty"}).Validate() == nil {
		t.Fatal("empty group should fail validation")
	}
}

func TestCodeFootprints(t *testing.T) {
	gcc := MustGet("gcc").TraceConfig(testParams(0))
	if gcc.CodeLines != 128/2 {
		t.Fatalf("gcc code lines = %d, want 0.5 ways = 64", gcc.CodeLines)
	}
	lbm := MustGet("lbm").TraceConfig(testParams(0))
	if lbm.CodeLines != 1 {
		t.Fatalf("lbm code lines = %d, want tiny default", lbm.CodeLines)
	}
}
