package umon

// This file implements the partitioning algorithms that consume the
// monitors' utility curves:
//
//   - Lookahead: UCP's look-ahead way allocation (Qureshi & Patt,
//     MICRO 2006), which repeatedly awards the application with the
//     highest marginal utility the minimum number of ways needed to
//     reach that utility, until every way is assigned.
//   - ThresholdLookahead: the paper's Algorithm 1 — the same loop
//     gated by a threshold T. A winner is awarded extra ways only while
//     it significantly benefits from them; once the winner's relative
//     miss reduction falls below T the loop stops and the remaining
//     ways stay unassigned, to be power-gated for static energy.
//
// Note on fidelity: the pseudocode printed in the paper gates the award
// on |prev_max_mu - max_mu| < prev_max_mu * T_hold, which cannot be
// executed literally (with T = 0 the condition is never true, yet
// Section 5.1 states T = 0 allocates "in the same manner as UCP", and
// with prev_max_mu initialised to 0 the first award is impossible).
// We therefore implement the semantics the paper describes in prose:
// "the threshold controls the decrease in miss-ratio for each
// application, preventing each core from being awarded additional ways
// unless it can significantly benefit from them", with the stated
// endpoints T=0 == UCP and T=1 == no ways ever allocated. Concretely, a
// winner's award of j extra ways is accepted only if it reduces the
// winner's miss ratio by at least T (curve[0], the misses at zero ways,
// equals the application's total accesses):
//
//	(miss[alloc] - miss[alloc+j]) / accesses >= T
//
// Both algorithms operate on miss curves rather than on the monitors
// directly, so they can be unit-tested and reused by the CPE profiler.

// Curve is a miss curve: Curve[w] is the number of misses the
// application would suffer with w ways allocated; len(Curve) == ways+1.
type Curve []uint64

// maxMU computes UCP's get_max_mu: the maximum marginal utility the
// application can achieve by growing from alloc ways by at most balance
// extra ways, together with the minimum number of ways required to
// reach that utility (blocks_req in the paper's pseudocode).
func maxMU(curve Curve, alloc, balance int) (mu float64, blocksReq int) {
	for j := 1; j <= balance; j++ {
		if alloc+j >= len(curve) {
			break
		}
		missA := curve[alloc]
		missB := curve[alloc+j]
		var gain float64
		if missA > missB {
			gain = float64(missA-missB) / float64(j)
		}
		if gain > mu {
			mu = gain
			blocksReq = j
		}
	}
	return mu, blocksReq
}

// Lookahead runs UCP's look-ahead algorithm: distribute total ways
// among the applications, each guaranteed minAlloc ways (UCP uses 1 so
// every core can make progress). The returned counts always sum to
// total: UCP never leaves capacity unused.
func Lookahead(curves []Curve, total, minAlloc int) []int {
	return ThresholdLookahead(curves, total, minAlloc, 0)
}

// ThresholdLookahead is Algorithm 1 of the paper (see the fidelity note
// above). threshold is the paper's T parameter in [0, 1]. With
// threshold == 0 it is exactly UCP's look-ahead and all ways are
// allocated. With threshold > 0, allocation stops as soon as the best
// winner's relative miss reduction falls below the threshold, leaving
// the remaining ways unallocated (the caller turns them off).
//
// Each application is guaranteed minAlloc ways, allocated up front, so
// no core is starved of the LLC entirely.
func ThresholdLookahead(curves []Curve, total, minAlloc int, threshold float64) []int {
	n := len(curves)
	alloc := make([]int, n)
	if n == 0 {
		return alloc
	}
	balance := total
	for i := range alloc {
		if minAlloc > 0 {
			alloc[i] = minAlloc
			balance -= minAlloc
		}
	}
	if balance < 0 {
		if n > total {
			// More cores than ways: the shared-way fallback. Every core
			// is awarded a one-way target — the targets then necessarily
			// alias ways shared between ring-adjacent cores, so they
			// intentionally sum to n rather than to total. The old
			// behaviour (first `total` cores get a way, the rest
			// nothing) silently starved the tail cores of the LLC.
			for i := range alloc {
				alloc[i] = 1
			}
			return alloc
		}
		// The cores fit but minAlloc over-subscribes the cache: fall
		// back to the plain equal split, keeping the sum-to-total
		// guarantee for non-shared configurations.
		for i := range alloc {
			alloc[i] = 0
		}
		for i := 0; i < total; i++ {
			alloc[i%n]++
		}
		return alloc
	}

	// An application leaves the auction once its best award fails the
	// threshold gate: utility curves are non-increasing, so a failed
	// award never passes later in the same decision. Other applications
	// keep competing for the remaining ways.
	eligible := make([]bool, n)
	for i := range eligible {
		eligible[i] = true
	}
	for balance > 0 {
		winner, winnerMU, winnerReq := -1, 0.0, 0
		for i, curve := range curves {
			if !eligible[i] {
				continue
			}
			mu, req := maxMU(curve, alloc[i], balance)
			if req == 0 || mu <= 0 {
				continue
			}
			if winner == -1 || mu > winnerMU {
				winner, winnerMU, winnerReq = i, mu, req
			}
		}
		if winner == -1 {
			// Nobody (eligible) benefits from additional ways at all.
			if threshold > 0 {
				break // leave the remainder off
			}
			// Pure UCP distributes the remainder round-robin so the
			// whole cache stays in use.
			for i := 0; balance > 0; i = (i + 1) % n {
				alloc[i]++
				balance--
			}
			break
		}
		if threshold > 0 {
			missA := curves[winner][alloc[winner]]
			missB := curves[winner][alloc[winner]+winnerReq]
			accesses := curves[winner][0]
			if accesses == 0 || float64(missA-missB) < threshold*float64(accesses) {
				eligible[winner] = false
				continue
			}
		}
		alloc[winner] += winnerReq
		balance -= winnerReq
	}
	return alloc
}

// Sum returns the total ways assigned by an allocation vector.
func Sum(alloc []int) int {
	s := 0
	for _, a := range alloc {
		s += a
	}
	return s
}
