package umon

import "fmt"

// State is the dynamic portion of a Monitor: the ATD tags and validity
// words plus the stack-distance counters (DESIGN.md §14). Geometry and
// the sampling fast-path masks are rebuilt by New and never serialized.
type State struct {
	Tags     []uint64
	Valid    []uint64
	Hits     []uint64
	Misses   uint64
	Accesses uint64
}

// State returns a deep copy of the monitor's dynamic state.
func (m *Monitor) State() *State {
	return &State{
		Tags:     append([]uint64(nil), m.tags...),
		Valid:    append([]uint64(nil), m.valid...),
		Hits:     append([]uint64(nil), m.hits...),
		Misses:   m.misses,
		Accesses: m.accesses,
	}
}

// Restore overwrites the monitor's dynamic state with st. The receiver
// must shadow the same geometry the snapshot was taken under.
func (m *Monitor) Restore(st *State) error {
	if len(st.Tags) != len(m.tags) || len(st.Valid) != len(m.valid) ||
		len(st.Hits) != len(m.hits) {
		return fmt.Errorf("umon: snapshot geometry mismatch (%d/%d/%d tags/rows/counters, monitor has %d/%d/%d)",
			len(st.Tags), len(st.Valid), len(st.Hits), len(m.tags), len(m.valid), len(m.hits))
	}
	copy(m.tags, st.Tags)
	copy(m.valid, st.Valid)
	copy(m.hits, st.Hits)
	m.misses = st.Misses
	m.accesses = st.Accesses
	return nil
}
