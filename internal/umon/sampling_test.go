package umon

import (
	"math/rand"
	"testing"
)

// TestNewRejectsNonPowerOfTwoSampling is the regression test for the
// non-power-of-two aliasing bug: the old modulo fallback accepted
// Sampling=3 with 8 sets and mapped the sampled sets {0,3,6} onto rows
// {0,1,2%2=0} of a truncated 8/3=2-row ATD, silently aliasing sets 0
// and 6. Construction must now reject the configuration loudly.
func TestNewRejectsNonPowerOfTwoSampling(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with Sampling=3 did not panic")
		}
	}()
	New(Config{Sets: 8, Ways: 2, Sampling: 3})
}

// TestClampedSamplingScalesByTrueRatio is the regression test for the
// clamped scale-factor bug: with Sets=4 and Sampling=8 the ATD clamps
// to one row (only set 0 sampled), so the true traffic scale is
// Sets/SampledSets = 4 — the old code scaled by the nominal 8,
// overestimating every count by 2x.
func TestClampedSamplingScalesByTrueRatio(t *testing.T) {
	m := New(Config{Sets: 4, Ways: 2, Sampling: 8})
	if m.SampledSets() != 1 {
		t.Fatalf("SampledSets = %d, want 1", m.SampledSets())
	}
	m.Access(1, 7) // not sampled
	m.Access(0, 7) // sampled miss
	m.Access(0, 7) // sampled hit at MRU
	if got := m.Accesses(); got != 8 {
		t.Fatalf("Accesses = %d, want 2 raw x true ratio 4 = 8", got)
	}
	if got := m.HitsUpTo(1); got != 4 {
		t.Fatalf("HitsUpTo(1) = %d, want 1 raw hit x true ratio 4 = 4", got)
	}
	if got := m.Misses(2); got != 4 {
		t.Fatalf("Misses(2) = %d, want 1 raw miss x true ratio 4 = 4", got)
	}
}

func TestSetSamplerGeometry(t *testing.T) {
	s := NewSetSampler(128, 8)
	if s.Stride() != 8 || s.Rows() != 16 {
		t.Fatalf("stride/rows = %d/%d, want 8/16", s.Stride(), s.Rows())
	}
	row := 0
	for set := 0; set < 128; set++ {
		if s.Sampled(set) != (set%8 == 0) {
			t.Fatalf("Sampled(%d) = %v, want %v", set, s.Sampled(set), set%8 == 0)
		}
		if s.Sampled(set) {
			if got := s.Row(set); got != row {
				t.Fatalf("Row(%d) = %d, want dense %d", set, got, row)
			}
			row++
		}
	}
	if row != s.Rows() {
		t.Fatalf("visited %d sampled sets, want Rows()=%d", row, s.Rows())
	}

	one := NewSetSampler(32, 1)
	if one.Stride() != 1 || one.Rows() != 32 || !one.Sampled(17) || one.Row(17) != 17 {
		t.Fatal("stride-1 sampler must be the identity over all sets")
	}

	clamped := NewSetSampler(4, 16)
	if clamped.Stride() != 4 || clamped.Rows() != 1 || !clamped.Sampled(0) || clamped.Sampled(2) {
		t.Fatalf("clamped sampler: stride/rows = %d/%d, want 4/1 with only set 0 sampled",
			clamped.Stride(), clamped.Rows())
	}
}

func TestSetSamplerRejectsNonDividingStride(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSetSampler(12, 8) did not panic")
		}
	}()
	NewSetSampler(12, 8)
}

// oldRefMonitor is the pre-extraction monitor algorithm (power-of-two
// mask filter, row = (set/Sampling) % sampled, plain-slice LRU stack),
// kept as the oracle for the differential test below: routing the
// monitor through the shared SetSampler must not change behavior on
// any configuration the old code handled correctly.
type oldRefMonitor struct {
	sets, ways, sampling int
	sampled              int
	tags                 [][]uint64
	valid                [][]bool
	hits                 []uint64
	accesses             uint64
}

func newOldRef(sets, ways, sampling int) *oldRefMonitor {
	sampled := sets / sampling
	if sampled == 0 {
		sampled = 1
	}
	r := &oldRefMonitor{sets: sets, ways: ways, sampling: sampling, sampled: sampled,
		hits: make([]uint64, ways)}
	for i := 0; i < sampled; i++ {
		r.tags = append(r.tags, make([]uint64, ways))
		r.valid = append(r.valid, make([]bool, ways))
	}
	return r
}

func (r *oldRefMonitor) access(set int, tag uint64) {
	if set&(r.sampling-1) != 0 {
		return
	}
	row := (set / r.sampling) % r.sampled
	r.accesses++
	pos := -1
	for i := 0; i < r.ways; i++ {
		if r.valid[row][i] && r.tags[row][i] == tag {
			pos = i
			break
		}
	}
	if pos >= 0 {
		r.hits[pos]++
	} else {
		pos = r.ways - 1
	}
	copy(r.tags[row][1:pos+1], r.tags[row][:pos])
	copy(r.valid[row][1:pos+1], r.valid[row][:pos])
	r.tags[row][0] = tag
	r.valid[row][0] = true
}

// TestMonitorBitIdenticalAfterExtraction drives the production monitor
// and the pre-extraction reference over identical random access streams
// at several power-of-two geometries and requires identical counters —
// the differential guarantee that extracting SetSampler changed no
// observable behavior.
func TestMonitorBitIdenticalAfterExtraction(t *testing.T) {
	configs := []Config{
		{Sets: 64, Ways: 8, Sampling: 1},
		{Sets: 64, Ways: 8, Sampling: 4},
		{Sets: 128, Ways: 16, Sampling: 32},
		{Sets: 4, Ways: 2, Sampling: 4},
	}
	for _, cfg := range configs {
		m := New(cfg)
		ref := newOldRef(cfg.Sets, cfg.Ways, cfg.Sampling)
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 50000; i++ {
			set := rng.Intn(cfg.Sets)
			tag := uint64(rng.Intn(cfg.Ways * 5))
			m.Access(set, tag)
			ref.access(set, tag)
		}
		if m.accesses != ref.accesses {
			t.Fatalf("%+v: raw accesses %d, reference %d", cfg, m.accesses, ref.accesses)
		}
		for d := 0; d < cfg.Ways; d++ {
			if m.hits[d] != ref.hits[d] {
				t.Fatalf("%+v: hits[%d] = %d, reference %d", cfg, d, m.hits[d], ref.hits[d])
			}
		}
	}
}
