// Package umon implements the utility monitors (UMON) of Qureshi &
// Patt's utility-based cache partitioning, which the paper reuses for
// its usage-monitoring phase (Section 2.1).
//
// Each core gets an auxiliary tag directory (ATD) with the same
// associativity as the shared LLC but private to that core, maintained
// in true LRU order. A hit at LRU stack position d means the access
// would have hit had the core owned at least d ways, so per-position
// hit counters directly yield the core's utility curve (hits as a
// function of allocated ways) via the stack property of LRU (Mattson et
// al.). Dynamic set sampling reduces the hardware cost; the sampling
// ratio is configurable and the counters are scaled accordingly.
package umon

import (
	"fmt"
	"math/bits"
)

// Config describes one utility monitor.
type Config struct {
	Sets int // sets in the monitored cache
	Ways int // associativity of the monitored cache
	// Sampling monitors every Sampling-th set (1 = all sets). It must
	// be a power of two — New panics otherwise (see SetSampler). A
	// value larger than Sets clamps to one sampled row, and scaled
	// counters use the true Sets/SampledSets ratio of the clamp.
	Sampling int
}

// Monitor is the per-core ATD with stack-distance hit counters.
//
// Like the cache substrate, the ATD is struct-of-arrays: a dense tags
// slice plus one validity bitmask word per sampled row (bit i = stack
// position i; Ways <= 64, matching the cache's way-mask limit). The
// per-LLC-access stack search then scans only tags gated by one valid
// word, and the shift-down of the LRU stack moves validity with two
// bit operations instead of a per-entry bool walk.
type Monitor struct {
	cfg      Config
	tags     []uint64 // sampledSets * ways, ordered most→least recent
	valid    []uint64 // one word per sampled row
	sampled  int
	hits     []uint64 // hits[d] = hits at stack position d (0-based)
	misses   uint64
	accesses uint64

	// sampler holds the shared set-sampling map: the sampled-set filter
	// on every LLC access is a single AND, and the row index a shift.
	sampler SetSampler
	rowMask uint64
}

// New creates a monitor for a cache with the given geometry. It panics
// on invalid configuration (monitor geometry is fixed by the cache it
// shadows, so failure is a programming error).
func New(cfg Config) *Monitor {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("umon: invalid geometry %d sets / %d ways", cfg.Sets, cfg.Ways))
	}
	if cfg.Ways > 64 {
		panic(fmt.Sprintf("umon: %d ways exceed the 64-way mask limit", cfg.Ways))
	}
	if cfg.Sampling <= 0 {
		cfg.Sampling = 1
	}
	sampler := NewSetSampler(cfg.Sets, cfg.Sampling)
	sampled := sampler.Rows()
	m := &Monitor{
		cfg:     cfg,
		tags:    make([]uint64, sampled*cfg.Ways),
		valid:   make([]uint64, sampled),
		sampled: sampled,
		hits:    make([]uint64, cfg.Ways),
		sampler: sampler,
	}
	if cfg.Ways == 64 {
		m.rowMask = ^uint64(0)
	} else {
		m.rowMask = (uint64(1) << uint(cfg.Ways)) - 1
	}
	return m
}

// Config returns the monitor configuration.
func (m *Monitor) Config() Config { return m.cfg }

// SampledSets returns how many sets the ATD actually tracks.
func (m *Monitor) SampledSets() int { return m.sampled }

// Access records one LLC access by this monitor's core. set is the
// index in the real cache; tag is the line's tag. Accesses to
// non-sampled sets are ignored.
func (m *Monitor) Access(set int, tag uint64) {
	if !m.sampler.Sampled(set) {
		return
	}
	row := m.sampler.Row(set)
	base := row * m.cfg.Ways
	ways := m.cfg.Ways
	m.accesses++

	// Search the LRU stack for the tag: only valid positions are
	// visited, gated by the row's validity word.
	vw := m.valid[row]
	tags := m.tags[base : base+ways]
	pos := -1
	for w := vw; w != 0; w &= w - 1 {
		i := bits.TrailingZeros64(w)
		if tags[i] == tag {
			pos = i
			break
		}
	}
	if pos >= 0 {
		m.hits[pos]++
		// Move to MRU: positions 1..pos take over 0..pos-1; validity
		// below the hit shifts with them (position 0 becomes valid).
		copy(tags[1:pos+1], tags[:pos])
		low := uint64(1)<<uint(pos+1) - 1
		m.valid[row] = (vw &^ low) | ((vw<<1 | 1) & low)
	} else {
		m.misses++
		// Shift everything down, dropping the LRU entry.
		copy(tags[1:], tags[:ways-1])
		m.valid[row] = (vw<<1 | 1) & m.rowMask
	}
	tags[0] = tag
}

// Sampler returns the monitor's set-sampling map, so a cache shadowed
// by this monitor can adopt the identical sampled-set selection.
func (m *Monitor) Sampler() SetSampler { return m.sampler }

// Accesses returns the number of monitored accesses since the last
// decay to zero, scaled by the true Sets/SampledSets ratio to estimate
// the full cache's traffic. The true ratio is the clamped stride: when
// Sampling exceeds Sets only one row is tracked and the nominal ratio
// would overestimate traffic by Sampling/Sets.
func (m *Monitor) Accesses() uint64 { return m.accesses * uint64(m.sampler.Stride()) }

// HitsUpTo returns the estimated number of hits the core would see with
// w ways allocated: the sum of stack-position counters 0..w-1, scaled
// by the true Sets/SampledSets ratio (see Accesses).
func (m *Monitor) HitsUpTo(w int) uint64 {
	if w > m.cfg.Ways {
		w = m.cfg.Ways
	}
	var sum uint64
	for i := 0; i < w; i++ {
		sum += m.hits[i]
	}
	return sum * uint64(m.sampler.Stride())
}

// Misses returns the estimated number of misses the core would incur
// with w ways allocated: accesses - hits(w). With w = 0 every access
// misses.
func (m *Monitor) Misses(w int) uint64 {
	return m.Accesses() - m.HitsUpTo(w)
}

// MissCurve returns the full miss curve: element w is Misses(w), for
// w in [0, ways].
func (m *Monitor) MissCurve() []uint64 {
	curve := make([]uint64, m.cfg.Ways+1)
	for w := 0; w <= m.cfg.Ways; w++ {
		curve[w] = m.Misses(w)
	}
	return curve
}

// Decay halves all counters. UCP applies this after each partitioning
// decision so that utility information ages exponentially rather than
// being dominated by stale phases.
func (m *Monitor) Decay() {
	for i := range m.hits {
		m.hits[i] /= 2
	}
	m.misses /= 2
	m.accesses /= 2
}

// Reset zeroes counters and invalidates the ATD.
func (m *Monitor) Reset() {
	for i := range m.valid {
		m.valid[i] = 0
	}
	for i := range m.hits {
		m.hits[i] = 0
	}
	m.misses = 0
	m.accesses = 0
}

// HardwareBits estimates the monitor's storage cost in bits: tag
// entries (assume 40-bit tags plus valid) and 32-bit hit counters, as
// in the UCP paper's overhead analysis.
func (m *Monitor) HardwareBits() int {
	const tagBits, counterBits = 40 + 1, 32
	return m.sampled*m.cfg.Ways*tagBits + m.cfg.Ways*counterBits
}
