// Package umon implements the utility monitors (UMON) of Qureshi &
// Patt's utility-based cache partitioning, which the paper reuses for
// its usage-monitoring phase (Section 2.1).
//
// Each core gets an auxiliary tag directory (ATD) with the same
// associativity as the shared LLC but private to that core, maintained
// in true LRU order. A hit at LRU stack position d means the access
// would have hit had the core owned at least d ways, so per-position
// hit counters directly yield the core's utility curve (hits as a
// function of allocated ways) via the stack property of LRU (Mattson et
// al.). Dynamic set sampling reduces the hardware cost; the sampling
// ratio is configurable and the counters are scaled accordingly.
package umon

import "fmt"

// Config describes one utility monitor.
type Config struct {
	Sets     int // sets in the monitored cache
	Ways     int // associativity of the monitored cache
	Sampling int // monitor every Sampling-th set (1 = all sets)
}

// Monitor is the per-core ATD with stack-distance hit counters.
type Monitor struct {
	cfg      Config
	tags     []uint64 // sampledSets * ways, ordered most→least recent
	valid    []bool
	sampled  int
	hits     []uint64 // hits[d] = hits at stack position d (0-based)
	misses   uint64
	accesses uint64
}

// New creates a monitor for a cache with the given geometry. It panics
// on invalid configuration (monitor geometry is fixed by the cache it
// shadows, so failure is a programming error).
func New(cfg Config) *Monitor {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("umon: invalid geometry %d sets / %d ways", cfg.Sets, cfg.Ways))
	}
	if cfg.Sampling <= 0 {
		cfg.Sampling = 1
	}
	sampled := cfg.Sets / cfg.Sampling
	if sampled == 0 {
		sampled = 1
	}
	return &Monitor{
		cfg:     cfg,
		tags:    make([]uint64, sampled*cfg.Ways),
		valid:   make([]bool, sampled*cfg.Ways),
		sampled: sampled,
		hits:    make([]uint64, cfg.Ways),
	}
}

// Config returns the monitor configuration.
func (m *Monitor) Config() Config { return m.cfg }

// SampledSets returns how many sets the ATD actually tracks.
func (m *Monitor) SampledSets() int { return m.sampled }

// Access records one LLC access by this monitor's core. set is the
// index in the real cache; tag is the line's tag. Accesses to
// non-sampled sets are ignored.
func (m *Monitor) Access(set int, tag uint64) {
	if set%m.cfg.Sampling != 0 {
		return
	}
	row := (set / m.cfg.Sampling) % m.sampled
	base := row * m.cfg.Ways
	ways := m.cfg.Ways
	m.accesses++

	// Search the LRU stack for the tag.
	pos := -1
	for i := 0; i < ways; i++ {
		if m.valid[base+i] && m.tags[base+i] == tag {
			pos = i
			break
		}
	}
	if pos >= 0 {
		m.hits[pos]++
		// Move to MRU position.
		for i := pos; i > 0; i-- {
			m.tags[base+i] = m.tags[base+i-1]
			m.valid[base+i] = m.valid[base+i-1]
		}
	} else {
		m.misses++
		// Shift everything down, dropping the LRU entry.
		for i := ways - 1; i > 0; i-- {
			m.tags[base+i] = m.tags[base+i-1]
			m.valid[base+i] = m.valid[base+i-1]
		}
	}
	m.tags[base] = tag
	m.valid[base] = true
}

// Accesses returns the number of monitored accesses since the last
// decay to zero (scaled by the sampling ratio to estimate the full
// cache's traffic).
func (m *Monitor) Accesses() uint64 { return m.accesses * uint64(m.cfg.Sampling) }

// HitsUpTo returns the estimated number of hits the core would see with
// w ways allocated: the sum of stack-position counters 0..w-1, scaled
// by the sampling ratio.
func (m *Monitor) HitsUpTo(w int) uint64 {
	if w > m.cfg.Ways {
		w = m.cfg.Ways
	}
	var sum uint64
	for i := 0; i < w; i++ {
		sum += m.hits[i]
	}
	return sum * uint64(m.cfg.Sampling)
}

// Misses returns the estimated number of misses the core would incur
// with w ways allocated: accesses - hits(w). With w = 0 every access
// misses.
func (m *Monitor) Misses(w int) uint64 {
	return m.Accesses() - m.HitsUpTo(w)
}

// MissCurve returns the full miss curve: element w is Misses(w), for
// w in [0, ways].
func (m *Monitor) MissCurve() []uint64 {
	curve := make([]uint64, m.cfg.Ways+1)
	for w := 0; w <= m.cfg.Ways; w++ {
		curve[w] = m.Misses(w)
	}
	return curve
}

// Decay halves all counters. UCP applies this after each partitioning
// decision so that utility information ages exponentially rather than
// being dominated by stale phases.
func (m *Monitor) Decay() {
	for i := range m.hits {
		m.hits[i] /= 2
	}
	m.misses /= 2
	m.accesses /= 2
}

// Reset zeroes counters and invalidates the ATD.
func (m *Monitor) Reset() {
	for i := range m.valid {
		m.valid[i] = false
	}
	for i := range m.hits {
		m.hits[i] = 0
	}
	m.misses = 0
	m.accesses = 0
}

// HardwareBits estimates the monitor's storage cost in bits: tag
// entries (assume 40-bit tags plus valid) and 32-bit hit counters, as
// in the UCP paper's overhead analysis.
func (m *Monitor) HardwareBits() int {
	const tagBits, counterBits = 40 + 1, 32
	return m.sampled*m.cfg.Ways*tagBits + m.cfg.Ways*counterBits
}
