package umon

import "testing"

// BenchmarkUMONAccess measures the ATD stack search + shift that every
// monitored LLC access pays — the other per-access walk next to the
// cache substrate's Probe/Victim (internal/cache/bench_test.go).

func benchMonitor(sampling int) *Monitor {
	m := New(Config{Sets: 128, Ways: 16, Sampling: sampling})
	// Warm every sampled row so searches walk full stacks.
	for i := 0; i < 128*16*4; i++ {
		m.Access(i%128, uint64(i%(16*3)))
	}
	return m
}

func BenchmarkUMONAccess(b *testing.B) {
	m := benchMonitor(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Access(i&127, uint64(i%48))
	}
}

// BenchmarkUMONAccessSampled exercises the power-of-two sampling filter
// fast path: 31 of 32 accesses are rejected by a single AND.
func BenchmarkUMONAccessSampled(b *testing.B) {
	m := benchMonitor(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Access(i&127, uint64(i%48))
	}
}

// TestUMONAccessAllocationFree pins the zero-allocation property of the
// per-access monitor path (it runs once per LLC access on monitored
// schemes).
func TestUMONAccessAllocationFree(t *testing.T) {
	m := benchMonitor(1)
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		m.Access(i&127, uint64(i%48))
		i++
	}); n != 0 {
		t.Fatalf("Access allocates %v per access, want 0", n)
	}
}

// TestSamplingMaskMatchesModulo drives a pow-2-sampled monitor against
// a reference monitor whose sampling filter is applied externally via
// the modulo definition (identical geometry, accesses pre-filtered so
// the reference sees only modulo-sampled sets at their dense row
// positions) and requires identical counters — the sampler's mask form
// must be exactly the set%Sampling==0 subset.
func TestSamplingMaskMatchesModulo(t *testing.T) {
	const sets, ways, sampling = 64, 8, 4
	fast := New(Config{Sets: sets, Ways: ways, Sampling: sampling})
	ref := New(Config{Sets: sets / sampling, Ways: ways, Sampling: 1})
	for i := 0; i < 20000; i++ {
		set := (i * 7) % sets
		tag := uint64((i * 13) % 96)
		fast.Access(set, tag)
		if set%sampling == 0 {
			ref.Access(set/sampling, tag)
		}
	}
	if fast.Accesses() != ref.Accesses()*sampling {
		t.Fatalf("accesses: mask %d, modulo %d", fast.Accesses(), ref.Accesses()*sampling)
	}
	for w := 0; w <= ways; w++ {
		if fast.HitsUpTo(w) != ref.HitsUpTo(w)*sampling {
			t.Fatalf("HitsUpTo(%d): mask %d, modulo %d", w, fast.HitsUpTo(w), ref.HitsUpTo(w)*sampling)
		}
	}
}
