package umon

import "testing"

// BenchmarkUMONAccess measures the ATD stack search + shift that every
// monitored LLC access pays — the other per-access walk next to the
// cache substrate's Probe/Victim (internal/cache/bench_test.go).

func benchMonitor(sampling int) *Monitor {
	m := New(Config{Sets: 128, Ways: 16, Sampling: sampling})
	// Warm every sampled row so searches walk full stacks.
	for i := 0; i < 128*16*4; i++ {
		m.Access(i%128, uint64(i%(16*3)))
	}
	return m
}

func BenchmarkUMONAccess(b *testing.B) {
	m := benchMonitor(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Access(i&127, uint64(i%48))
	}
}

// BenchmarkUMONAccessSampled exercises the power-of-two sampling filter
// fast path: 31 of 32 accesses are rejected by a single AND.
func BenchmarkUMONAccessSampled(b *testing.B) {
	m := benchMonitor(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Access(i&127, uint64(i%48))
	}
}

// TestUMONAccessAllocationFree pins the zero-allocation property of the
// per-access monitor path (it runs once per LLC access on monitored
// schemes).
func TestUMONAccessAllocationFree(t *testing.T) {
	m := benchMonitor(1)
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		m.Access(i&127, uint64(i%48))
		i++
	}); n != 0 {
		t.Fatalf("Access allocates %v per access, want 0", n)
	}
}

// TestSamplingMaskMatchesModulo drives a pow-2-sampled monitor and a
// reference monitor whose fast path is defeated (identical geometry,
// accesses pre-filtered by the modulo) and requires identical counters.
func TestSamplingMaskMatchesModulo(t *testing.T) {
	const sets, ways, sampling = 64, 8, 4
	fast := New(Config{Sets: sets, Ways: ways, Sampling: sampling})
	ref := New(Config{Sets: sets, Ways: ways, Sampling: sampling})
	ref.sampleMask = 0 // force the modulo path
	for i := 0; i < 20000; i++ {
		set := (i * 7) % sets
		tag := uint64((i * 13) % 96)
		fast.Access(set, tag)
		ref.Access(set, tag)
	}
	if fast.Accesses() != ref.Accesses() {
		t.Fatalf("accesses: mask %d, modulo %d", fast.Accesses(), ref.Accesses())
	}
	for w := 0; w <= ways; w++ {
		if fast.HitsUpTo(w) != ref.HitsUpTo(w) {
			t.Fatalf("HitsUpTo(%d): mask %d, modulo %d", w, fast.HitsUpTo(w), ref.HitsUpTo(w))
		}
	}
}
