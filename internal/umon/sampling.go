package umon

import (
	"fmt"
	"math/bits"
)

// SetSampler is the address-interleaved set-sampling map shared by the
// UMON ATDs and the set-sampled LLC fidelity tier: sample every
// stride-th set (those whose index is a multiple of the stride), and
// pack the sampled sets densely into rows by dropping the stride bits.
// Keeping the mapping in one audited place is what lets the LLC tier
// and the monitors agree on which sets are simulated, so a monitor
// shadowing a sampled LLC never sees a set the LLC skipped.
//
// The stride must be a power of two (the sampled-set test is then one
// AND; a non-power-of-two stride has no mask form and the old modulo
// fallback silently aliased distinct sampled sets onto one row when it
// did not divide the set count — rejected loudly here instead). A
// stride larger than the set count degenerates to a single sampled row
// (set 0), and Ratio reports the true Sets/rows scale factor — which is
// the clamped stride, not the nominal one.
type SetSampler struct {
	stride int
	mask   int
	shift  uint
	rows   int
}

// NewSetSampler builds the sampling map for a cache with the given
// number of sets. It panics on an unsatisfiable configuration (the
// geometry is fixed by the cache being shadowed, so failure is a
// programming error): a non-power-of-two stride above 1, or a stride
// that does not divide the set count.
func NewSetSampler(sets, stride int) SetSampler {
	if sets <= 0 {
		panic(fmt.Sprintf("umon: sampler needs a positive set count, got %d", sets))
	}
	if stride <= 1 {
		return SetSampler{stride: 1, rows: sets}
	}
	if stride&(stride-1) != 0 {
		panic(fmt.Sprintf("umon: sampling stride %d is not a power of two", stride))
	}
	if stride > sets {
		// Degenerate clamp: only set 0 is sampled. Requires a
		// power-of-two set count so the mask form stays exact.
		if sets&(sets-1) != 0 {
			panic(fmt.Sprintf("umon: stride %d exceeds non-power-of-two set count %d", stride, sets))
		}
		stride = sets
	}
	if sets%stride != 0 {
		panic(fmt.Sprintf("umon: sampling stride %d does not divide %d sets", stride, sets))
	}
	return SetSampler{
		stride: stride,
		mask:   stride - 1,
		shift:  uint(bits.TrailingZeros(uint(stride))),
		rows:   sets / stride,
	}
}

// Stride returns the effective (clamped) stride — exactly the true
// Sets/Rows ratio, the factor counters measured on the sampled subset
// must be scaled by to estimate the full cache.
func (s SetSampler) Stride() int { return s.stride }

// Rows returns how many sets are sampled.
func (s SetSampler) Rows() int { return s.rows }

// Sampled reports whether the given cache set is in the sampled subset.
func (s SetSampler) Sampled(set int) bool { return set&s.mask == 0 }

// Row maps a sampled cache set to its dense row index in [0, Rows).
// The caller must only pass sets for which Sampled is true.
func (s SetSampler) Row(set int) int { return set >> s.shift }
