package umon

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// flatCurve builds a curve with constant misses (no benefit from ways).
func flatCurve(ways int, misses uint64) Curve {
	c := make(Curve, ways+1)
	for i := range c {
		c[i] = misses
	}
	return c
}

// linearCurve builds a curve where each way removes step misses until
// saturation at floor.
func linearCurve(ways int, start, step, floor uint64) Curve {
	c := make(Curve, ways+1)
	cur := start
	for i := range c {
		c[i] = cur
		if cur > floor+step {
			cur -= step
		} else {
			cur = floor
		}
	}
	return c
}

// kneeCurve gives big gains up to knee ways, nothing after.
func kneeCurve(ways, knee int, start uint64) Curve {
	c := make(Curve, ways+1)
	for i := range c {
		if i >= knee {
			c[i] = 0
		} else {
			c[i] = start - start*uint64(i)/uint64(knee)
		}
	}
	return c
}

func TestLookaheadAllocatesAllWays(t *testing.T) {
	curves := []Curve{linearCurve(8, 1000, 100, 0), linearCurve(8, 500, 10, 0)}
	alloc := Lookahead(curves, 8, 1)
	if Sum(alloc) != 8 {
		t.Fatalf("UCP allocated %d ways, want 8 (alloc=%v)", Sum(alloc), alloc)
	}
	for i, a := range alloc {
		if a < 1 {
			t.Fatalf("core %d got %d ways, want >= minAlloc 1", i, a)
		}
	}
}

func TestLookaheadFavorsHighUtility(t *testing.T) {
	// Core 0 gains 1000 misses/way; core 1 gains 10/way.
	curves := []Curve{
		linearCurve(8, 8000, 1000, 0),
		linearCurve(8, 80, 10, 0),
	}
	alloc := Lookahead(curves, 8, 1)
	if alloc[0] <= alloc[1] {
		t.Fatalf("high-utility core got %d ways vs %d", alloc[0], alloc[1])
	}
}

func TestLookaheadKneeDetection(t *testing.T) {
	// Core 0 saturates at 3 ways; core 1 keeps benefiting.
	curves := []Curve{
		kneeCurve(8, 3, 9000),
		linearCurve(8, 8000, 900, 0),
	}
	alloc := Lookahead(curves, 8, 1)
	if alloc[0] > 4 {
		t.Fatalf("saturated core got %d ways, want <= 4 (alloc=%v)", alloc[0], alloc)
	}
	if Sum(alloc) != 8 {
		t.Fatalf("total = %d, want 8", Sum(alloc))
	}
}

func TestLookaheadNoUtility(t *testing.T) {
	// Nobody benefits: UCP still assigns every way (round-robin).
	curves := []Curve{flatCurve(8, 100), flatCurve(8, 100)}
	alloc := Lookahead(curves, 8, 1)
	if Sum(alloc) != 8 {
		t.Fatalf("UCP with flat curves allocated %d ways, want 8", Sum(alloc))
	}
}

func TestThresholdZeroMatchesUCP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		curves := make([]Curve, 2)
		for i := range curves {
			c := make(Curve, 9)
			v := uint64(rng.Intn(10000) + 100)
			for w := range c {
				c[w] = v
				v -= uint64(rng.Intn(int(v/8) + 1))
			}
			curves[i] = c
		}
		ucp := Lookahead(curves, 8, 1)
		thr := ThresholdLookahead(curves, 8, 1, 0)
		if !reflect.DeepEqual(ucp, thr) {
			t.Fatalf("trial %d: T=0 alloc %v != UCP alloc %v", trial, thr, ucp)
		}
	}
}

func TestThresholdLeavesWaysOff(t *testing.T) {
	// Both cores saturate quickly: with a threshold, ways stay off.
	curves := []Curve{kneeCurve(8, 2, 10000), kneeCurve(8, 2, 10000)}
	alloc := ThresholdLookahead(curves, 8, 1, 0.05)
	if Sum(alloc) >= 8 {
		t.Fatalf("threshold run allocated all ways: %v", alloc)
	}
	if Sum(alloc) < 2 {
		t.Fatalf("minAlloc violated: %v", alloc)
	}
}

func TestThresholdOneAllocatesOnlyMinimum(t *testing.T) {
	curves := []Curve{linearCurve(8, 1000, 50, 0), linearCurve(8, 900, 40, 0)}
	alloc := ThresholdLookahead(curves, 8, 1, 1.0)
	// T=1 requires a 100% miss reduction per award, which a linear curve
	// never provides: only the guaranteed minimum is handed out.
	if Sum(alloc) != 2 {
		t.Fatalf("T=1 allocated %v, want only minAlloc", alloc)
	}
}

func TestThresholdMonotoneInT(t *testing.T) {
	curves := []Curve{linearCurve(8, 10000, 600, 100), kneeCurve(8, 4, 8000)}
	prev := 9
	for _, T := range []float64{0, 0.01, 0.05, 0.10, 0.20, 0.5} {
		alloc := ThresholdLookahead(curves, 8, 1, T)
		if Sum(alloc) > prev {
			t.Fatalf("allocation grew as T rose: T=%v alloc=%v prev=%d", T, alloc, prev)
		}
		prev = Sum(alloc)
	}
}

func TestLookaheadMoreCoresThanWays(t *testing.T) {
	// Shared-way fallback: with more cores than ways every core must
	// still receive a (shared) one-way target — no core is starved of
	// the LLC. The targets alias shared ways, so they sum to n.
	curves := make([]Curve, 6)
	for i := range curves {
		curves[i] = linearCurve(4, 100, 10, 0)
	}
	alloc := ThresholdLookahead(curves, 4, 1, 0)
	for i, a := range alloc {
		if a != 1 {
			t.Fatalf("core %d got %d ways, want 1 (shared target): %v", i, a, alloc)
		}
	}
	if Sum(alloc) != 6 {
		t.Fatalf("shared targets sum to %d, want 6: %v", Sum(alloc), alloc)
	}
}

func TestLookaheadOversubscribedMinAllocStillSumsToTotal(t *testing.T) {
	// minAlloc over-subscribes the cache but the cores still fit in the
	// ways (NOT the shared-way fallback): the equal split keeps the
	// sum-to-total guarantee — 4 cores on 8 ways with minAlloc 3 get
	// [2 2 2 2], never shared one-way targets.
	curves := make([]Curve, 4)
	for i := range curves {
		curves[i] = linearCurve(8, 100, 10, 0)
	}
	alloc := Lookahead(curves, 8, 3)
	if Sum(alloc) != 8 {
		t.Fatalf("allocated %d ways, want 8: %v", Sum(alloc), alloc)
	}
	for i, a := range alloc {
		if a != 2 {
			t.Fatalf("core %d got %d ways, want 2: %v", i, a, alloc)
		}
	}
}

func TestLookaheadEmptyInputs(t *testing.T) {
	if got := Lookahead(nil, 8, 1); len(got) != 0 {
		t.Fatalf("Lookahead(nil) = %v", got)
	}
}

// Property: allocations never exceed the total, never go negative, and
// with threshold 0 exactly exhaust the cache.
func TestPropertyLookaheadBounds(t *testing.T) {
	f := func(seed int64, tByte uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		ways := 8
		curves := make([]Curve, n)
		for i := range curves {
			c := make(Curve, ways+1)
			v := uint64(rng.Intn(100000))
			for w := range c {
				c[w] = v
				if v > 0 {
					v -= uint64(rng.Intn(int(v)/4 + 1))
				}
			}
			curves[i] = c
		}
		T := float64(tByte%25) / 100
		alloc := ThresholdLookahead(curves, ways, 1, T)
		sum := 0
		for _, a := range alloc {
			if a < 0 {
				return false
			}
			sum += a
		}
		if sum > ways {
			return false
		}
		if T == 0 && sum != ways {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the utility monitor's curve plugged into the lookahead gives
// each core at least minAlloc and never allocates beyond the cache.
func TestPropertyMonitorToLookahead(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mons := []*Monitor{
			New(Config{Sets: 16, Ways: 8, Sampling: 1}),
			New(Config{Sets: 16, Ways: 8, Sampling: 1}),
		}
		for i := 0; i < 3000; i++ {
			m := mons[rng.Intn(2)]
			m.Access(rng.Intn(16), uint64(rng.Intn(40)))
		}
		curves := []Curve{mons[0].MissCurve(), mons[1].MissCurve()}
		alloc := Lookahead(curves, 8, 1)
		return Sum(alloc) == 8 && alloc[0] >= 1 && alloc[1] >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
