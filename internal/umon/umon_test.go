package umon

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMonitorStackProperty(t *testing.T) {
	m := New(Config{Sets: 16, Ways: 4, Sampling: 1})
	// Access lines A B C D A: A is at stack distance 4 on its re-access.
	for _, tag := range []uint64{1, 2, 3, 4} {
		m.Access(0, tag)
	}
	m.Access(0, 1)
	// With 4 ways allocated the re-access hits; with fewer it misses.
	if got := m.HitsUpTo(4); got != 1 {
		t.Fatalf("HitsUpTo(4) = %d, want 1", got)
	}
	if got := m.HitsUpTo(3); got != 0 {
		t.Fatalf("HitsUpTo(3) = %d, want 0", got)
	}
}

func TestMonitorMRUHit(t *testing.T) {
	m := New(Config{Sets: 16, Ways: 4, Sampling: 1})
	m.Access(3, 9)
	m.Access(3, 9)
	if got := m.HitsUpTo(1); got != 1 {
		t.Fatalf("HitsUpTo(1) = %d, want 1 (MRU re-access)", got)
	}
}

func TestMonitorMissesCurveMonotone(t *testing.T) {
	m := New(Config{Sets: 8, Ways: 8, Sampling: 1})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		m.Access(rng.Intn(8), uint64(rng.Intn(64)))
	}
	curve := m.MissCurve()
	if len(curve) != 9 {
		t.Fatalf("curve length = %d, want 9", len(curve))
	}
	for w := 1; w < len(curve); w++ {
		if curve[w] > curve[w-1] {
			t.Fatalf("miss curve not non-increasing at w=%d: %v", w, curve)
		}
	}
	if curve[0] != m.Accesses() {
		t.Fatalf("curve[0] = %d, want all accesses %d", curve[0], m.Accesses())
	}
}

func TestMonitorSampling(t *testing.T) {
	m := New(Config{Sets: 64, Ways: 4, Sampling: 32})
	if m.SampledSets() != 2 {
		t.Fatalf("SampledSets = %d, want 2", m.SampledSets())
	}
	m.Access(1, 5) // not sampled: set 1 % 32 != 0
	if m.Accesses() != 0 {
		t.Fatal("non-sampled set was recorded")
	}
	m.Access(32, 5) // sampled
	if m.Accesses() != 32 {
		t.Fatalf("Accesses = %d, want scaled 32", m.Accesses())
	}
}

func TestMonitorDecay(t *testing.T) {
	m := New(Config{Sets: 4, Ways: 2, Sampling: 1})
	for i := 0; i < 10; i++ {
		m.Access(0, 7)
	}
	hitsBefore := m.HitsUpTo(2)
	m.Decay()
	if got := m.HitsUpTo(2); got != hitsBefore/2 {
		t.Fatalf("after decay hits = %d, want %d", got, hitsBefore/2)
	}
}

func TestMonitorReset(t *testing.T) {
	m := New(Config{Sets: 4, Ways: 2, Sampling: 1})
	m.Access(0, 1)
	m.Access(0, 1)
	m.Reset()
	if m.Accesses() != 0 || m.HitsUpTo(2) != 0 || m.Misses(0) != 0 {
		t.Fatal("Reset left counters non-zero")
	}
	// After reset the previously-hot tag must miss again.
	m.Access(0, 1)
	if m.HitsUpTo(2) != 0 {
		t.Fatal("ATD not invalidated by Reset")
	}
}

func TestMonitorHardwareBits(t *testing.T) {
	m := New(Config{Sets: 4096, Ways: 8, Sampling: 32})
	if m.HardwareBits() <= 0 {
		t.Fatal("HardwareBits must be positive")
	}
	full := New(Config{Sets: 4096, Ways: 8, Sampling: 1})
	if m.HardwareBits() >= full.HardwareBits() {
		t.Fatal("sampling must reduce hardware cost")
	}
}

// Property: for any access stream, Misses is non-increasing in ways and
// HitsUpTo is non-decreasing; hits(w) + misses(w) == accesses.
func TestPropertyMonitorCurves(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		m := New(Config{Sets: 8, Ways: 6, Sampling: 1})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(n)*10; i++ {
			m.Access(rng.Intn(8), uint64(rng.Intn(32)))
		}
		for w := 0; w <= 6; w++ {
			if m.HitsUpTo(w)+m.Misses(w) != m.Accesses() {
				return false
			}
			if w > 0 && (m.HitsUpTo(w) < m.HitsUpTo(w-1) || m.Misses(w) > m.Misses(w-1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero ways did not panic")
		}
	}()
	New(Config{Sets: 4, Ways: 0})
}
