package sim

import (
	"math/rand"
	"testing"
)

// scanMin is the reference linear scan the heap replaced: strict
// less-than, so the lowest index wins ties.
func scanMin(clocks []int64) int {
	min := 0
	for i := 1; i < len(clocks); i++ {
		if clocks[i] < clocks[min] {
			min = i
		}
	}
	return min
}

// TestClockHeapMatchesLinearScan drives the heap exactly as the
// simulator does — read Min, advance that item's clock, FixMin — and
// checks every selection against the linear scan, including the
// tie-heavy start where all clocks are equal.
func TestClockHeapMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		clocks := make([]int64, n)
		h := newClockHeap(make([]int64, n)) // heap keeps its own copy
		for step := 0; step < 2000; step++ {
			got, want := h.Min(), scanMin(clocks)
			if got != want {
				t.Fatalf("n=%d step %d: heap min %d, scan min %d", n, step, got, want)
			}
			// Advance by 0..3 cycles: zero advances keep ties alive and
			// exercise the index tie-break.
			clocks[got] += rng.Int63n(4)
			h.FixMin(clocks[got])
		}
	}
}

func TestEncodeThresholdRoundTrip(t *testing.T) {
	cases := []struct {
		in     float64
		scheme SchemeKind
		want   float64
	}{
		{0, CoopPart, 0},       // explicit zero survives the round trip
		{0, DynCPE, 0},         //
		{0.20, CoopPart, 0.20}, // non-zero passes through
		{DefaultThreshold, CoopPart, DefaultThreshold},
	}
	for _, c := range cases {
		if got := effectiveThreshold(EncodeThreshold(c.in), c.scheme); got != c.want {
			t.Errorf("effective(encode(%v), %s) = %v, want %v", c.in, c.scheme, got, c.want)
		}
	}
	// An unset RunConfig.Threshold selects the paper's default for the
	// thresholded schemes only.
	if got := effectiveThreshold(0, CoopPart); got != DefaultThreshold {
		t.Errorf("unset threshold for CoopPart = %v, want %v", got, DefaultThreshold)
	}
	if got := effectiveThreshold(0, Unmanaged); got != 0 {
		t.Errorf("unset threshold for Unmanaged = %v, want 0", got)
	}
}
