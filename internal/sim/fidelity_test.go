package sim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/workload"
)

// TestFidelityDefaultIsExact pins the opt-in posture at the sim layer:
// a zero-valued Fidelity runs the exact tier and its results are
// byte-identical to an explicitly-exact run, so no caller can drift
// onto the statistical tier by omission.
func TestFidelityDefaultIsExact(t *testing.T) {
	g := workload.Groups2[0]
	cfg := RunConfig{Scale: UnitScale(), Scheme: CoopPart, Group: g, Seed: 1}
	def, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fidelity = FidelityExact
	explicit, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if def.Fidelity != FidelityExact {
		t.Fatalf("default run records fidelity %v, want exact", def.Fidelity)
	}
	if !reflect.DeepEqual(def, explicit) {
		t.Fatal("zero-valued Fidelity differs from explicit FidelityExact")
	}
}

// TestFastForwardRun checks the FastForward tier end to end on one
// group: the run is deterministic (two runs byte-identical), labelled
// with its tier, genuinely a different RNG walk than exact (cycle
// counts differ), yet statistically close — per-core IPC within 20% of
// the exact run. The tight per-figure bounds live in
// experiments.ValidateTiers; this is the sim-layer smoke.
func TestFastForwardRun(t *testing.T) {
	g := workload.Groups2[0]
	cfg := RunConfig{Scale: UnitScale(), Scheme: CoopPart, Group: g, Seed: 1,
		Fidelity: FidelityFastForward}
	ff, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ff, again) {
		t.Fatal("FastForward run is not deterministic")
	}
	if ff.Fidelity != FidelityFastForward {
		t.Fatalf("run records fidelity %v, want fastforward", ff.Fidelity)
	}

	cfg.Fidelity = FidelityExact
	exact, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ff.Cycles == exact.Cycles {
		t.Fatal("FastForward run has the exact tier's cycle count; the walk did not change")
	}
	for i := range ff.IPC {
		if rel := math.Abs(ff.IPC[i]-exact.IPC[i]) / exact.IPC[i]; rel > 0.20 {
			t.Fatalf("core %d IPC: fastforward %v vs exact %v (%.1f%% apart)",
				i, ff.IPC[i], exact.IPC[i], 100*rel)
		}
	}
}

// TestSetSampledRun checks the set-sampled tier end to end: every
// non-profiled scheme completes under the default stride, the run is
// deterministic and labelled, the scaled LLC access counters land near
// the exact tier's magnitudes (the point of weighting by K), and IPC
// stays statistically close. The tight per-figure bounds live in
// experiments.ValidateTiers; this is the sim-layer smoke.
func TestSetSampledRun(t *testing.T) {
	g := workload.Groups2[0]
	for _, scheme := range []SchemeKind{Unmanaged, FairShare, UCP, CoopPart, PIPP} {
		cfg := RunConfig{Scale: UnitScale(), Scheme: scheme, Group: g, Seed: 1,
			Fidelity: FidelitySetSampled}
		ss, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		again, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if !reflect.DeepEqual(ss, again) {
			t.Fatalf("%s: set-sampled run is not deterministic", scheme)
		}
		if ss.Fidelity != FidelitySetSampled {
			t.Fatalf("%s: run records fidelity %v, want set-sampled", scheme, ss.Fidelity)
		}

		cfg.Fidelity = FidelityFastForward
		ff, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		// The weight-scaled counters must reconstruct full-cache
		// magnitudes: with 1/8 of the sets modelled, an unscaled count
		// would sit 8x low. 35% tolerance leaves room for genuine
		// sampling noise at UnitScale's short runs.
		ssAcc, ffAcc := ss.SchemeStats.TotalAccesses(), ff.SchemeStats.TotalAccesses()
		if rel := math.Abs(float64(ssAcc)-float64(ffAcc)) / float64(ffAcc); rel > 0.35 {
			t.Fatalf("%s: scaled LLC accesses %d vs fastforward %d (%.1f%% apart)",
				scheme, ssAcc, ffAcc, 100*rel)
		}
		// 35% at UnitScale's very short runs: the estimator prices
		// misses with real DRAM reads (partition/estimate.go), so the
		// remaining error is genuine sampling noise on the hit-rate
		// estimate, which these short runs amplify. Scheme deltas —
		// what ValidateTiers bounds tightly — stay much closer.
		for i := range ss.IPC {
			if rel := math.Abs(ss.IPC[i]-ff.IPC[i]) / ff.IPC[i]; rel > 0.35 {
				t.Fatalf("%s core %d IPC: set-sampled %v vs fastforward %v (%.1f%% apart)",
					scheme, i, ss.IPC[i], ff.IPC[i], 100*rel)
			}
		}
	}
}

// TestSampleStrideGuards pins the loud-failure paths of the stride
// plumbing: a stride outside the set-sampled tier, a stride too large
// for the CPE set fold, and a non-power-of-two stride all fail at
// NewSystem rather than silently desampling.
func TestSampleStrideGuards(t *testing.T) {
	g := workload.Groups2[0]
	base := RunConfig{Scale: UnitScale(), Scheme: CoopPart, Group: g, Seed: 1}

	cfg := base
	cfg.Scale.SampleStride = 8
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted SampleStride under the exact tier")
	}

	cfg = base
	cfg.Fidelity = FidelitySetSampled
	cfg.Scale.SampleStride = cfg.Scale.L2TwoCore.SizeBytes // far beyond Sets/2
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted a stride beyond half the set count")
	}

	cfg = base
	cfg.Fidelity = FidelitySetSampled
	cfg.Scale.SampleStride = 3
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted a non-power-of-two stride")
	}
}

// TestFidelityRejectsUnknown pins loud failure for an out-of-range
// tier value.
func TestFidelityRejectsUnknown(t *testing.T) {
	g := workload.Groups2[0]
	_, err := Run(RunConfig{Scale: UnitScale(), Scheme: CoopPart, Group: g, Seed: 1,
		Fidelity: Fidelity(9)})
	if err == nil {
		t.Fatal("Run accepted an unknown fidelity")
	}
}
