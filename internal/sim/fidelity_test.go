package sim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/workload"
)

// TestFidelityDefaultIsExact pins the opt-in posture at the sim layer:
// a zero-valued Fidelity runs the exact tier and its results are
// byte-identical to an explicitly-exact run, so no caller can drift
// onto the statistical tier by omission.
func TestFidelityDefaultIsExact(t *testing.T) {
	g := workload.Groups2[0]
	cfg := RunConfig{Scale: UnitScale(), Scheme: CoopPart, Group: g, Seed: 1}
	def, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fidelity = FidelityExact
	explicit, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if def.Fidelity != FidelityExact {
		t.Fatalf("default run records fidelity %v, want exact", def.Fidelity)
	}
	if !reflect.DeepEqual(def, explicit) {
		t.Fatal("zero-valued Fidelity differs from explicit FidelityExact")
	}
}

// TestFastForwardRun checks the FastForward tier end to end on one
// group: the run is deterministic (two runs byte-identical), labelled
// with its tier, genuinely a different RNG walk than exact (cycle
// counts differ), yet statistically close — per-core IPC within 20% of
// the exact run. The tight per-figure bounds live in
// experiments.ValidateTiers; this is the sim-layer smoke.
func TestFastForwardRun(t *testing.T) {
	g := workload.Groups2[0]
	cfg := RunConfig{Scale: UnitScale(), Scheme: CoopPart, Group: g, Seed: 1,
		Fidelity: FidelityFastForward}
	ff, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ff, again) {
		t.Fatal("FastForward run is not deterministic")
	}
	if ff.Fidelity != FidelityFastForward {
		t.Fatalf("run records fidelity %v, want fastforward", ff.Fidelity)
	}

	cfg.Fidelity = FidelityExact
	exact, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ff.Cycles == exact.Cycles {
		t.Fatal("FastForward run has the exact tier's cycle count; the walk did not change")
	}
	for i := range ff.IPC {
		if rel := math.Abs(ff.IPC[i]-exact.IPC[i]) / exact.IPC[i]; rel > 0.20 {
			t.Fatalf("core %d IPC: fastforward %v vs exact %v (%.1f%% apart)",
				i, ff.IPC[i], exact.IPC[i], 100*rel)
		}
	}
}

// TestFidelityRejectsUnknown pins loud failure for an out-of-range
// tier value.
func TestFidelityRejectsUnknown(t *testing.T) {
	g := workload.Groups2[0]
	_, err := Run(RunConfig{Scale: UnitScale(), Scheme: CoopPart, Group: g, Seed: 1,
		Fidelity: Fidelity(9)})
	if err == nil {
		t.Fatal("Run accepted an unknown fidelity")
	}
}
