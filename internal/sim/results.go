package sim

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/partition"
	"repro/internal/workload"
)

// Results captures everything one run produces.
type Results struct {
	Scheme string
	Group  string
	// Fidelity is the RNG-walk tier the run executed at. Consumers
	// comparing or normalising results must only mix runs of one tier
	// (experiments keys its memo on it, and WeightedSpeedup picks
	// matching-tier solo runs through it).
	Fidelity   Fidelity
	Benchmarks []string

	// IPC[i] is core i's instructions per cycle over its measured
	// region; MPKI[i] its L2 misses per kilo-instruction.
	IPC  []float64
	MPKI []float64

	// Cycles is the wall-clock length of the measured region (cycles of
	// the slowest core).
	Cycles int64

	// Dynamic and Static are the LLC energies in the meter's units,
	// integrated over the whole run (all applications keep executing
	// until the last reaches its instruction budget, as in the paper).
	Dynamic float64
	Static  float64
	// StaticPower is Static divided by the run's cycles: the
	// time-averaged leakage power. The paper's Figures 7/10/13 report
	// static energy with Unmanaged, UCP and Fair Share pinned at
	// exactly 1.0, which is this quantity (run lengths differ between
	// schemes, powered-way fractions are what the figure compares).
	StaticPower float64

	AvgWaysConsulted float64
	L1MissRate       []float64
	Allocations      []int

	SchemeStats partition.Stats
	Transition  partition.TransitionStats
	DRAM        mem.Stats

	// Profile holds core 0's per-phase utility curves when
	// CaptureProfile was set.
	Profile partition.CoreProfile
}

// WeightedSpeedup computes Equation 1 against per-benchmark alone IPCs:
// sum over cores of IPC_shared / IPC_alone.
func (r *Results) WeightedSpeedup(alone map[string]float64) (float64, error) {
	var ws float64
	for i, name := range r.Benchmarks {
		a, ok := alone[name]
		if !ok || a <= 0 {
			return 0, fmt.Errorf("sim: missing alone IPC for %q", name)
		}
		ws += r.IPC[i] / a
	}
	return ws, nil
}

// cloneStats deep-copies scheme statistics.
func cloneStats(s *partition.Stats) partition.Stats {
	out := *s
	out.PerCore = append([]partition.CoreStats(nil), s.PerCore...)
	return out
}

// cloneTransitions deep-copies transition statistics.
func cloneTransitions(t *partition.TransitionStats) partition.TransitionStats {
	out := *t
	out.Timeline = append([]uint64(nil), t.Timeline...)
	return out
}

// SoloGroup wraps one benchmark as a single-application "group" for
// alone-IPC and profiling runs.
func SoloGroup(benchmark string) workload.Group {
	return workload.Group{Name: "solo-" + benchmark, Benchmarks: []string{benchmark}}
}

// RunAlone measures a benchmark's alone IPC: the application running by
// itself with the whole LLC (Unmanaged, no contention), as Equation 1's
// denominator requires. The LLC geometry must match the shared runs it
// will be compared with, so the core count of the target group is part
// of the key.
func RunAlone(benchmark string, sc Scale, coresInGroup int, seed uint64) (*Results, error) {
	return RunAloneFidelity(benchmark, sc, coresInGroup, seed, FidelityExact)
}

// AloneConfig builds the RunConfig of a benchmark's alone run: a scale
// whose two-core L2 is the target group geometry, one core on it. The
// checkpoint layer routes solo runs through this builder so the config
// (and thus the warm-up checkpoint identity) is canonical.
func AloneConfig(benchmark string, sc Scale, coresInGroup int, seed uint64, fid Fidelity) (RunConfig, error) {
	l2, err := sc.L2For(coresInGroup)
	if err != nil {
		return RunConfig{}, err
	}
	solo := sc
	solo.L2TwoCore = l2
	return RunConfig{
		Scale:    solo,
		Scheme:   Unmanaged,
		Group:    SoloGroup(benchmark),
		Seed:     seed,
		Fidelity: fid,
	}, nil
}

// ProfileConfig is AloneConfig with profile capture on — the two
// configs differ in nothing else, which is what lets one warm-up
// checkpoint serve both runs (capture only observes; its monitor is
// reset at the warm-up boundary).
func ProfileConfig(benchmark string, sc Scale, coresInGroup int, seed uint64, fid Fidelity) (RunConfig, error) {
	cfg, err := AloneConfig(benchmark, sc, coresInGroup, seed, fid)
	if err != nil {
		return RunConfig{}, err
	}
	cfg.CaptureProfile = true
	return cfg, nil
}

// RunAloneFidelity is RunAlone at an explicit RNG-walk tier: Equation
// 1's denominators must come from the same tier as the shared runs
// they normalise, so FastForward evaluations solo-run at FastForward.
func RunAloneFidelity(benchmark string, sc Scale, coresInGroup int, seed uint64, fid Fidelity) (*Results, error) {
	cfg, err := AloneConfig(benchmark, sc, coresInGroup, seed, fid)
	if err != nil {
		return nil, err
	}
	return Run(cfg)
}

// ProfileBenchmark runs a benchmark solo and captures its per-phase
// utility curves for Dynamic CPE (the paper's offline profiling step).
func ProfileBenchmark(benchmark string, sc Scale, coresInGroup int, seed uint64) (partition.CoreProfile, error) {
	return ProfileBenchmarkFidelity(benchmark, sc, coresInGroup, seed, FidelityExact)
}

// ProfileBenchmarkFidelity is ProfileBenchmark at an explicit RNG-walk
// tier (Dynamic CPE's profiles feed allocation decisions, so a
// FastForward evaluation profiles at FastForward).
func ProfileBenchmarkFidelity(benchmark string, sc Scale, coresInGroup int, seed uint64, fid Fidelity) (partition.CoreProfile, error) {
	cfg, err := ProfileConfig(benchmark, sc, coresInGroup, seed, fid)
	if err != nil {
		return partition.CoreProfile{}, err
	}
	res, err := Run(cfg)
	if err != nil {
		return partition.CoreProfile{}, err
	}
	return res.Profile, nil
}
