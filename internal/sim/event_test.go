package sim

// Full-system differential tests for the event-compressed stepping
// path (DESIGN.md §10): System.stepRecords toggles the per-record
// reference loop, and every Results field — IPC float bits included —
// must match the event-consuming loop exactly.

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

// runStepping builds and runs cfg with the chosen stepping path.
func runStepping(t *testing.T, cfg RunConfig, perRecord bool) *Results {
	t.Helper()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.stepRecords = perRecord
	return s.Run()
}

// diffStepping fails the test if the two paths diverge anywhere.
func diffStepping(t *testing.T, cfg RunConfig, what string) {
	t.Helper()
	ref := runStepping(t, cfg, true)
	got := runStepping(t, cfg, false)
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("%s: event stepping diverged from per-record stepping\nrecord: %+v\nevent:  %+v",
			what, ref, got)
	}
}

// TestEventSteppingBitIdenticalSolo runs every one of the 19
// benchmarks solo (the Equation-1 workhorse) under both stepping
// paths. Single-core systems take the longest batches — a whole phase
// window per StepEvent call — so they stress the decision-boundary and
// retirement-target caps hardest.
func TestEventSteppingBitIdenticalSolo(t *testing.T) {
	for _, name := range workload.Names() {
		diffStepping(t, RunConfig{
			Scale:  UnitScale(),
			Scheme: Unmanaged,
			Group:  SoloGroup(name),
			Seed:   3,
		}, "solo "+name)
	}
}

// TestEventSteppingBitIdenticalGroups covers the multiprogrammed
// interleavings: 2-16 cores, banked and unbanked LLCs, the takeover
// scheme (whose phase decisions move ways between cores) and a quota
// scheme. The picker bound cap is what keeps inter-core access
// ordering identical; these configurations exercise both the linear
// and the heap picker.
func TestEventSteppingBitIdenticalGroups(t *testing.T) {
	g8 := workload.Groups8[0]
	g16 := workload.Groups16[0]
	for _, tc := range []struct {
		what   string
		cfg    RunConfig
		groups string
	}{
		{what: "2-core CoopPart", cfg: RunConfig{Scheme: CoopPart}, groups: "G2-8"},
		{what: "2-core banked UCP", cfg: RunConfig{Scheme: UCP, Banks: 4}, groups: "G2-2"},
		{what: "4-core FairShare", cfg: RunConfig{Scheme: FairShare}, groups: "G4-9"},
		{what: "4-core banked CoopPart", cfg: RunConfig{Scheme: CoopPart, Banks: 2}, groups: "G4-1"},
		{what: "8-core CoopPart", cfg: RunConfig{Scheme: CoopPart, Group: g8}},
		{what: "16-core banked Unmanaged", cfg: RunConfig{Scheme: Unmanaged, Group: g16, Banks: 4}},
	} {
		cfg := tc.cfg
		if tc.groups != "" {
			g, err := workload.FindGroup(tc.groups)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Group = g
		}
		cfg.Scale = UnitScale()
		cfg.Seed = 3
		diffStepping(t, cfg, tc.what)
	}
}

// TestEventSteppingWarmupAndProfile covers the remaining stepping
// window (runUntil's warm-up target cap) interacting with profile
// capture, which hangs extra state off the access path.
func TestEventSteppingWarmupAndProfile(t *testing.T) {
	cfg := RunConfig{
		Scale:          UnitScale(),
		Scheme:         Unmanaged,
		Group:          SoloGroup("soplex"),
		Seed:           5,
		CaptureProfile: true,
	}
	diffStepping(t, cfg, "profile capture")
}
