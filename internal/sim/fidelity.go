package sim

import "repro/internal/trace"

// Fidelity re-exports the trace tier selector so run configuration,
// experiment memo keys and command flags all speak one type. The zero
// value is FidelityExact: the bit-identical walk stays the default at
// every layer, and FidelityFastForward is a separately-labelled opt-in
// tier — the same posture as TestScale vs FullScale (DESIGN.md §11).
type Fidelity = trace.Fidelity

const (
	// FidelityExact is the bit-identical per-draw RNG walk (default).
	FidelityExact = trace.FidelityExact
	// FidelityFastForward is the O(1) geometric fast-forward tier:
	// statistically equivalent, never byte-comparable, validated by
	// experiments.ValidateTiers.
	FidelityFastForward = trace.FidelityFastForward
	// FidelitySetSampled adds SMARTS-style LLC set sampling on top of
	// the fast-forward walk: the shared cache models 1/K of its sets
	// and scales the counters back up (DESIGN.md §15). Statistically
	// validated like FastForward, never byte-comparable.
	FidelitySetSampled = trace.FidelitySetSampled
)

// ParseFidelity parses a -fidelity flag value
// ("exact"/"fastforward"/"set-sampled").
func ParseFidelity(s string) (Fidelity, error) { return trace.ParseFidelity(s) }
