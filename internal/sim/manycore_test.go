package sim

// Many-core and banked-LLC system tests: the 8/16-core assemblies the
// scaling sweep runs, the Cores tiling knob, and the Banks=1
// bit-identity guarantee (DESIGN.md §9).

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

func TestEightCoreRunEndToEnd(t *testing.T) {
	g, err := workload.FindGroup("G8-1")
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []SchemeKind{FairShare, UCP, CoopPart} {
		res, err := Run(RunConfig{Scale: UnitScale(), Scheme: scheme, Group: g, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if len(res.IPC) != 8 {
			t.Fatalf("%s: %d IPC entries, want 8", scheme, len(res.IPC))
		}
		for i, ipc := range res.IPC {
			if ipc <= 0 || ipc > 4 {
				t.Fatalf("%s: core %d IPC %v out of range", scheme, i, ipc)
			}
		}
		if res.SchemeStats.Decisions == 0 {
			t.Fatalf("%s: no phase decisions fired", scheme)
		}
	}
}

func TestCoresTilingRun(t *testing.T) {
	// A two-benchmark group widened to 8 cores: four instances each,
	// every instance on its own seed/address space.
	g, _ := workload.FindGroup("G2-8")
	res, err := Run(RunConfig{Scale: UnitScale(), Scheme: Unmanaged, Group: g, Cores: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Group != "G2-8@8" || len(res.Benchmarks) != 8 || len(res.IPC) != 8 {
		t.Fatalf("tiled run results: group %q, %d benchmarks, %d IPCs",
			res.Group, len(res.Benchmarks), len(res.IPC))
	}
	// Same benchmark, different core: distinct seeds mean the
	// instances must not be cycle-clones of each other.
	if res.IPC[0] == res.IPC[2] && res.MPKI[0] == res.MPKI[2] {
		t.Fatalf("tiled instances look identical: IPC %v MPKI %v", res.IPC, res.MPKI)
	}
	// Shrinking a group is a loud error.
	if _, err := Run(RunConfig{Scale: UnitScale(), Scheme: Unmanaged, Group: g, Cores: 1, Seed: 3}); err == nil {
		t.Fatal("Cores below the group size must fail")
	}
}

// TestBanksOneBitIdentical pins the acceptance guarantee: Banks = 1
// (and the zero default) produce byte-identical Results to the
// unbanked simulator for the paper's 2- and 4-core configurations.
func TestBanksOneBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		group  string
		scheme SchemeKind
	}{
		{"G2-2", CoopPart},
		{"G4-9", UCP},
	} {
		g, _ := workload.FindGroup(tc.group)
		base := RunConfig{Scale: UnitScale(), Scheme: tc.scheme, Group: g, Seed: 3}
		def, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		one := base
		one.Banks = 1
		got, err := Run(one)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(def, got) {
			t.Fatalf("%s/%s: Banks=1 diverged from the unbanked run", tc.group, tc.scheme)
		}
	}
}

func TestBankedRunDiffersAndCounts(t *testing.T) {
	// With Banks > 1 the contention model is live: the run completes,
	// stays deterministic, and bank conflicts surface in the timing
	// (longer or equal critical path than the contention-free LLC).
	g, _ := workload.FindGroup("G2-8") // lbm + soplex: heavy LLC traffic
	base := RunConfig{Scale: UnitScale(), Scheme: FairShare, Group: g, Seed: 3}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	banked := base
	banked.Banks = 4
	b1, err := Run(banked)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Run(banked)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1, b2) {
		t.Fatal("banked run is not deterministic")
	}
	if b1.Cycles < plain.Cycles {
		t.Fatalf("banked critical path %d cycles below contention-free %d",
			b1.Cycles, plain.Cycles)
	}
	if reflect.DeepEqual(plain, b1) {
		t.Fatal("Banks=4 run identical to contention-free run; the port model never fired")
	}
}
