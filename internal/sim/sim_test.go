package sim

import (
	"testing"

	"repro/internal/workload"
)

func unitRun(t *testing.T, scheme SchemeKind, group string) *Results {
	t.Helper()
	g, err := workload.FindGroup(group)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{Scale: UnitScale(), Scheme: scheme, Group: g, Seed: 1}
	if scheme == DynCPE {
		for _, b := range g.Benchmarks {
			p, err := ProfileBenchmark(b, UnitScale(), len(g.Benchmarks), 1)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Profiles = append(cfg.Profiles, p)
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestScalesValidate(t *testing.T) {
	for _, s := range []Scale{FullScale(), TestScale(), UnitScale()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestScaleGeometryMatchesPaperRatios(t *testing.T) {
	full := FullScale()
	if full.L2TwoCore.Sets() != 4096 || full.L2FourCore.Sets() != 4096 {
		t.Fatal("full-scale L2s must have 4096 sets")
	}
	test := TestScale()
	if test.L2TwoCore.Sets() != 128 || test.L2FourCore.Sets() != 128 {
		t.Fatal("test-scale L2s must have 128 sets")
	}
	// Associativities are preserved across scales.
	if test.L2TwoCore.Ways != 8 || test.L2FourCore.Ways != 16 {
		t.Fatal("test-scale associativities wrong")
	}
	// The scaled L1D still holds an L1-resident locality region
	// (wayLines/16 lines) with ample headroom (see the Scale doc
	// comment for why the L1 shrinks less than the LLC).
	l1Lines := test.L1D.SizeBytes / test.L1D.LineBytes
	if l1Lines < 4*test.L2TwoCore.Sets()/16 {
		t.Fatalf("test-scale L1D (%d lines) too small for locality regions", l1Lines)
	}
}

func TestL2ForCoreCounts(t *testing.T) {
	s := TestScale()
	two, err := s.L2For(2)
	if err != nil || two.Ways != 8 {
		t.Fatalf("L2For(2) = %+v, %v", two, err)
	}
	four, err := s.L2For(4)
	if err != nil || four.Ways != 16 {
		t.Fatalf("L2For(4) = %+v, %v", four, err)
	}
	// Beyond Table 2 the per-core scaling extrapolates: capacity and
	// ways double per core-count doubling (sets constant), latency +5,
	// ways saturating at the 64-way mask limit.
	eight, err := s.L2For(8)
	if err != nil || eight.Ways != 32 || eight.SizeBytes != 2*four.SizeBytes ||
		eight.Latency != four.Latency+5 || eight.Sets() != four.Sets() {
		t.Fatalf("L2For(8) = %+v, %v", eight, err)
	}
	sixteen, err := s.L2For(16)
	if err != nil || sixteen.Ways != 64 || sixteen.Sets() != four.Sets() {
		t.Fatalf("L2For(16) = %+v, %v", sixteen, err)
	}
	thirtyTwo, err := s.L2For(32)
	if err != nil || thirtyTwo.Ways != 64 || thirtyTwo.Sets() != 2*four.Sets() {
		t.Fatalf("L2For(32) = %+v, %v (ways saturate, sets scale)", thirtyTwo, err)
	}
	for _, bad := range []int{-1, 0, 6, 12, 128} {
		if _, err := s.L2For(bad); err == nil {
			t.Fatalf("L2For(%d) should fail", bad)
		}
	}
}

func TestRunProducesSaneResults(t *testing.T) {
	res := unitRun(t, FairShare, "G2-8") // lbm + soplex: heavy traffic
	if len(res.IPC) != 2 {
		t.Fatalf("IPC entries = %d", len(res.IPC))
	}
	for i, ipc := range res.IPC {
		if ipc <= 0 || ipc > 4 {
			t.Fatalf("core %d IPC = %v out of range", i, ipc)
		}
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles recorded")
	}
	if res.Dynamic <= 0 || res.Static <= 0 {
		t.Fatalf("energy not accumulated: dyn=%v stat=%v", res.Dynamic, res.Static)
	}
	if res.SchemeStats.TotalAccesses() == 0 {
		t.Fatal("no LLC accesses recorded")
	}
	if res.SchemeStats.Decisions == 0 {
		t.Fatal("no phase decisions fired")
	}
	if res.MPKI[0] <= 0 {
		t.Fatal("lbm MPKI must be positive")
	}
}

func TestAllSchemesRun(t *testing.T) {
	for _, scheme := range AllSchemes {
		res := unitRun(t, scheme, "G2-1")
		if res.Scheme != string(scheme) {
			t.Fatalf("scheme label = %q", res.Scheme)
		}
		if res.SchemeStats.TotalAccesses() == 0 {
			t.Fatalf("%s: no LLC traffic", scheme)
		}
	}
}

func TestFourCoreRun(t *testing.T) {
	res := unitRun(t, CoopPart, "G4-3")
	if len(res.IPC) != 4 {
		t.Fatalf("four-core run produced %d IPCs", len(res.IPC))
	}
	if res.AvgWaysConsulted >= 16 {
		t.Fatalf("CoopPart consulted %v ways on average, want < 16", res.AvgWaysConsulted)
	}
}

func TestDeterminism(t *testing.T) {
	a := unitRun(t, UCP, "G2-2")
	b := unitRun(t, UCP, "G2-2")
	if a.Cycles != b.Cycles || a.Dynamic != b.Dynamic || a.IPC[0] != b.IPC[0] {
		t.Fatalf("runs diverged: %v/%v vs %v/%v", a.Cycles, a.Dynamic, b.Cycles, b.Dynamic)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	g, _ := workload.FindGroup("G2-2")
	r1, err := Run(RunConfig{Scale: UnitScale(), Scheme: FairShare, Group: g, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(RunConfig{Scale: UnitScale(), Scheme: FairShare, Group: g, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles == r2.Cycles && r1.Dynamic == r2.Dynamic {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestCoopPartSavesDynamicEnergy(t *testing.T) {
	fair := unitRun(t, FairShare, "G2-2")
	coop := unitRun(t, CoopPart, "G2-2")
	if coop.AvgWaysConsulted >= fair.AvgWaysConsulted {
		t.Fatalf("CoopPart avg ways %v not below FairShare %v",
			coop.AvgWaysConsulted, fair.AvgWaysConsulted)
	}
}

func TestUnmanagedConsultsAllWays(t *testing.T) {
	res := unitRun(t, Unmanaged, "G2-1")
	if res.AvgWaysConsulted != 8 {
		t.Fatalf("Unmanaged avg ways = %v, want 8", res.AvgWaysConsulted)
	}
}

func TestRunAlone(t *testing.T) {
	res, err := RunAlone("namd", UnitScale(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IPC) != 1 || res.IPC[0] <= 0 {
		t.Fatalf("alone run IPC = %v", res.IPC)
	}
}

func TestWeightedSpeedup(t *testing.T) {
	res := &Results{Benchmarks: []string{"a", "b"}, IPC: []float64{1.0, 2.0}}
	ws, err := res.WeightedSpeedup(map[string]float64{"a": 2.0, "b": 2.0})
	if err != nil || ws != 1.5 {
		t.Fatalf("WS = %v, %v; want 1.5", ws, err)
	}
	if _, err := res.WeightedSpeedup(map[string]float64{"a": 2.0}); err == nil {
		t.Fatal("missing alone IPC should error")
	}
}

func TestProfileBenchmark(t *testing.T) {
	p, err := ProfileBenchmark("soplex", UnitScale(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Phases) == 0 {
		t.Fatal("profile captured no phases")
	}
	ph := p.Phases[0]
	if len(ph.Curve) != 9 {
		t.Fatalf("curve length = %d, want ways+1 = 9", len(ph.Curve))
	}
	if ph.Accesses == 0 {
		t.Fatal("profile phase has no accesses")
	}
}

func TestUnknownSchemeRejected(t *testing.T) {
	g, _ := workload.FindGroup("G2-1")
	if _, err := Run(RunConfig{Scale: UnitScale(), Scheme: "bogus", Group: g}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestBadGroupRejected(t *testing.T) {
	if _, err := Run(RunConfig{Scale: UnitScale(), Scheme: UCP,
		Group: workload.Group{Name: "empty"}}); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestPIPPExtensionRuns(t *testing.T) {
	res := unitRun(t, PIPP, "G2-1")
	if res.Scheme != "PIPP" {
		t.Fatalf("scheme = %q", res.Scheme)
	}
	if res.AvgWaysConsulted != 8 {
		t.Fatalf("PIPP probes all ways; got %v", res.AvgWaysConsulted)
	}
	for _, ipc := range res.IPC {
		if ipc <= 0 {
			t.Fatal("PIPP run produced non-positive IPC")
		}
	}
}
