package sim

// Narrative tests: behaviours the paper describes in prose, checked
// end to end at unit scale.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// "Applications such as astar, bzip2, gcc, perlbench and povray benefit
// significantly from a large amount of cache space" (§4.1): their solo
// utility must grow with LLC allocation. Compare solo IPC with the full
// LLC against a run under FairShare paired with a heavy co-runner.
func TestNarrativeCacheHungryAppsLoseUnderFairShare(t *testing.T) {
	g, _ := workload.FindGroup("G2-5") // gobmk + perlbench
	shared, err := Run(RunConfig{Scale: UnitScale(), Scheme: FairShare, Group: g, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	alone, err := RunAlone("perlbench", UnitScale(), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if shared.IPC[1] >= alone.IPC[0] {
		t.Fatalf("perlbench shared IPC %v should trail alone IPC %v",
			shared.IPC[1], alone.IPC[0])
	}
}

// "lbm is streaming": its allocation under Cooperative Partitioning
// must stay small — extra ways carry no utility for it.
func TestNarrativeStreamingAppGetsFewWays(t *testing.T) {
	g, _ := workload.FindGroup("G2-8") // lbm + soplex
	res, err := Run(RunConfig{Scale: UnitScale(), Scheme: CoopPart, Group: g, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocations[0] > 3 {
		t.Fatalf("lbm holds %d ways; streaming apps should stay narrow (alloc %v)",
			res.Allocations[0], res.Allocations)
	}
}

// "During transitional periods, dynamic energy consumption is higher
// than normal because multiple cores access the ways that are being
// transferred" (§2.3): with a transition forced, the recipient's tag
// mask includes the incoming way.
func TestNarrativeTransitionRaisesTagProbes(t *testing.T) {
	g, _ := workload.FindGroup("G2-2")
	res, err := Run(RunConfig{Scale: UnitScale(), Scheme: CoopPart, Group: g, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Indirect check: average ways consulted must exceed the final
	// allocation-weighted average would suggest if transitions never
	// overlapped (tag probes include in-flight ways), and takeover ops
	// were actually charged.
	if res.Transition.Completed > 0 && res.AvgWaysConsulted <= 0 {
		t.Fatal("no tag probes recorded despite transitions")
	}
}

// The paper's Table 1 overhead in bits must match the live structures:
// one takeover bit per set per core plus RAP/WAP bits per way per core.
func TestNarrativeOverheadMatchesLiveStructures(t *testing.T) {
	g, _ := workload.FindGroup("G2-1")
	sys, err := NewSystem(RunConfig{Scale: UnitScale(), Scheme: CoopPart, Group: g, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := UnitScale().L2For(2)
	if err != nil {
		t.Fatal(err)
	}
	// takeover: sets*cores; RAP/WAP: ways*cores each.
	want := core.Overhead{Sets: l2.Sets(), Ways: l2.Ways, Cores: 2}
	cp := sys.Scheme().(*core.CoopPart)
	gotBits := cp.Cache().NumSets()*2 + cp.Perms().Ways()*2*2
	if gotBits != want.TotalBits() {
		t.Fatalf("live overhead %d bits, want %d", gotBits, want.TotalBits())
	}
}

// Four-core scalability (§4.2): Dynamic CPE's flushing grows with core
// count; its four-core weighted speedup deficit versus UCP must exceed
// its two-core deficit.
func TestNarrativeCPEScalesPoorly(t *testing.T) {
	deficit := func(group string) float64 {
		g, _ := workload.FindGroup(group)
		cfgU := RunConfig{Scale: UnitScale(), Scheme: UCP, Group: g, Seed: 5}
		ucp, err := Run(cfgU)
		if err != nil {
			t.Fatal(err)
		}
		cfgC := RunConfig{Scale: UnitScale(), Scheme: DynCPE, Group: g, Seed: 5}
		for _, b := range g.Benchmarks {
			p, err := ProfileBenchmark(b, UnitScale(), len(g.Benchmarks), 5)
			if err != nil {
				t.Fatal(err)
			}
			cfgC.Profiles = append(cfgC.Profiles, p)
		}
		cpe, err := Run(cfgC)
		if err != nil {
			t.Fatal(err)
		}
		var u, c float64
		for i := range ucp.IPC {
			u += ucp.IPC[i]
			c += cpe.IPC[i]
		}
		return c / u
	}
	two := deficit("G2-13")  // povray oscillates: frequent repartitions
	four := deficit("G4-12") // four oscillating/heavy apps
	if four >= two+0.1 {
		t.Fatalf("CPE four-core relative throughput %v not clearly below two-core %v", four, two)
	}
}
