package sim

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

// snapshotCfg builds the round-trip oracle config: CoopPart on a
// two-core group at unit scale, at either fidelity tier.
func snapshotCfg(t testing.TB, fid Fidelity, seed uint64) RunConfig {
	t.Helper()
	g, err := workload.FindGroup("G2-8")
	if err != nil {
		t.Fatal(err)
	}
	return RunConfig{
		Scale: UnitScale(), Scheme: CoopPart, Group: g,
		Threshold: 0.05, Seed: seed, Fidelity: fid,
	}
}

// roundTripEveryBoundary runs cfg once with a snapshot captured (and
// serialized) at each every-instruction boundary, then restores every
// snapshot into a freshly built system and runs it to completion. The
// property under test: serialize → restore at any boundary continues
// bit-identically — every continuation's Results must deeply equal the
// uninterrupted run's. It returns how many boundaries were exercised.
func roundTripEveryBoundary(t testing.TB, cfg RunConfig, every uint64) int {
	t.Helper()
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Warmup()

	// The warm-up boundary is a checkpoint too (the one warm-up sharing
	// restores from), so it round-trips first.
	type captured struct {
		boundary uint64
		data     []byte
	}
	warmSnap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	warmData, err := MarshalSnapshot(warmSnap)
	if err != nil {
		t.Fatal(err)
	}
	snaps := []captured{{0, warmData}}

	res := sys.RunMeasured(every, func(boundary uint64) {
		snap, err := sys.Snapshot()
		if err != nil {
			t.Fatalf("snapshot at boundary %d: %v", boundary, err)
		}
		data, err := MarshalSnapshot(snap)
		if err != nil {
			t.Fatalf("marshal at boundary %d: %v", boundary, err)
		}
		snaps = append(snaps, captured{boundary, data})
	})
	if !reflect.DeepEqual(res, want) {
		t.Fatal("instrumented run differs from plain Run — snapshotting perturbed the simulation")
	}

	for _, c := range snaps {
		snap, err := UnmarshalSnapshot(c.data)
		if err != nil {
			t.Fatalf("unmarshal at boundary %d: %v", c.boundary, err)
		}
		fresh, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.RestoreSnapshot(snap); err != nil {
			t.Fatalf("restore at boundary %d: %v", c.boundary, err)
		}
		got := fresh.RunMeasured(0, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("continuation from boundary %d diverges from the uninterrupted run", c.boundary)
		}
	}
	return len(snaps)
}

// TestSnapshotRoundTripAtEveryRecordBoundary exercises both fidelity
// tiers at an aligned cadence and an off-grid prime one. The prime
// cadence is the hard case: boundaries land mid-phase at arbitrary
// points of the generators' RNG walks, FastForward's jump state and
// the fractional-MLP clocks, none of which may lose precision through
// the JSON round-trip.
func TestSnapshotRoundTripAtEveryRecordBoundary(t *testing.T) {
	for _, fid := range []Fidelity{FidelityExact, FidelityFastForward} {
		for _, every := range []uint64{30_000, 7_919} {
			cfg := snapshotCfg(t, fid, 1)
			n := roundTripEveryBoundary(t, cfg, every)
			if n < 2 {
				t.Fatalf("%s/every=%d: only %d boundaries exercised", fid, every, n)
			}
			t.Logf("%s/every=%d: %d boundaries round-tripped", fid, every, n)
		}
	}
}

// TestSnapshotRoundTripCaptureProfile covers the profiling state the
// warm-up path strips: a CaptureProfile run's mid-run snapshots carry
// the profile monitor and phase log, and continuations must reproduce
// Results.Profile exactly.
func TestSnapshotRoundTripCaptureProfile(t *testing.T) {
	g, err := workload.FindGroup("G2-8")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ProfileConfig(g.Benchmarks[0], UnitScale(), len(g.Benchmarks), 1, FidelityExact)
	if err != nil {
		t.Fatal(err)
	}
	roundTripEveryBoundary(t, cfg, 30_000)
}

// TestSnapshotRejectsMismatchedSystem: a snapshot must only restore
// into a system of the identical configuration; scheme and geometry
// mismatches fail loudly instead of continuing from inconsistent
// state.
func TestSnapshotRejectsMismatchedSystem(t *testing.T) {
	cfg := snapshotCfg(t, FidelityExact, 1)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Warmup()
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.Scheme = UCP
	wrongScheme, err := NewSystem(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrongScheme.RestoreSnapshot(snap); err == nil {
		t.Fatal("snapshot restored into a different scheme")
	}

	four := cfg
	four.Cores = 4
	wrongCores, err := NewSystem(four)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrongCores.RestoreSnapshot(snap); err == nil {
		t.Fatal("two-core snapshot restored into a four-core system")
	}
}

// FuzzSnapshotRoundTrip drives the round-trip property over fuzzed
// (cadence, seed, tier) triples. The seed corpus covers both tiers and
// off-grid cadences; `go test` runs the corpus as a smoke, `go test
// -fuzz=FuzzSnapshotRoundTrip` explores further.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint64(7_919), uint64(1), false)
	f.Add(uint64(7_919), uint64(2), true)
	f.Add(uint64(41_333), uint64(3), true)
	f.Fuzz(func(t *testing.T, every, seed uint64, fastForward bool) {
		scale := UnitScale()
		// Clamp the cadence into (0, InstrPerApp) without collapsing the
		// fuzzed variety; tiny cadences would mean thousands of
		// continuations per exec.
		every = every%scale.InstrPerApp + 1
		if every < 5_000 {
			every += 5_000
		}
		fid := FidelityExact
		if fastForward {
			fid = FidelityFastForward
		}
		roundTripEveryBoundary(t, snapshotCfg(t, fid, seed), every)
	})
}
