// Package sim assembles the full CMP system of Table 2 — out-of-order
// cores with private L1 data caches, a shared partitioned L2, utility
// monitors, and DRAM — and runs multiprogrammed workloads on it under
// any of the five partitioning schemes.
//
// Two simulation scales are provided. FullScale reproduces Table 2
// verbatim (2MB/4MB LLC, 5M-cycle phases, 1B instructions per
// application); it is faithful but takes hours per figure. TestScale
// shrinks every structure by the same factor — 32x fewer LLC sets, the
// same associativities, phase intervals and footprints scaled alike —
// so that the relative behaviour (utility curves in way units, phase
// counts per run, takeover durations in phases) is preserved while a
// full figure regenerates in seconds. DESIGN.md §5 records this
// substitution.
package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
)

// Scale fixes every size parameter of the simulated system.
type Scale struct {
	Name string

	// L1D and L1I are the per-core private first-level caches.
	L1D cache.Config
	L1I cache.Config
	// L2SizeTwoCore/L2SizeFourCore with the associativities of Table 2
	// fix the shared cache; latency comes from the table as well.
	L2TwoCore  cache.Config
	L2FourCore cache.Config

	Mem mem.Config

	// PhaseCycles is the monitoring/partitioning interval.
	PhaseCycles int64
	// InstrPerApp is the measured instruction budget per application.
	InstrPerApp uint64
	// WarmupInstr is the per-application cache/predictor warm-up budget.
	WarmupInstr uint64
	// UMONSampling is the utility-monitor set-sampling ratio.
	UMONSampling int
	// MSHRs bounds each core's outstanding L2 misses.
	MSHRs int
	// SampleStride is the LLC set-sampling ratio K of the set-sampled
	// fidelity tier (DESIGN.md §15): the shared cache models every K-th
	// set and scales its counters back up. 0 means DefaultSampleStride
	// when the run's fidelity is FidelitySetSampled; setting it under
	// any other fidelity is a NewSystem error (the zero value keeps
	// every existing scale bit-identical). Must be a power of two no
	// larger than half the LLC set count.
	SampleStride int
}

// FullScale is the paper's Table 2 configuration.
func FullScale() Scale {
	return Scale{
		Name: "full",
		L1D:  cache.Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Ways: 4, Latency: 2},
		L1I:  cache.Config{Name: "L1I", SizeBytes: 32 << 10, LineBytes: 64, Ways: 4, Latency: 2},
		L2TwoCore: cache.Config{
			Name: "L2", SizeBytes: 2 << 20, LineBytes: 64, Ways: 8, Latency: 15},
		L2FourCore: cache.Config{
			Name: "L2", SizeBytes: 4 << 20, LineBytes: 64, Ways: 16, Latency: 20},
		Mem:          mem.DefaultConfig(),
		PhaseCycles:  5_000_000,
		InstrPerApp:  1_000_000_000,
		WarmupInstr:  10_000_000,
		UMONSampling: 32,
		MSHRs:        128,
	}
}

// TestScale is FullScale with the LLC capacity divided by 32 (sets)
// while keeping associativities, latencies and the phase-to-transfer-
// time ratios: 64KB/8-way and 128KB/16-way LLCs (128 sets each, like
// the full hierarchy's 4096) and proportionally shorter phases and
// instruction budgets. The L1D shrinks less (4KB, 1/8 of full scale):
// it must still hold each application's L1-resident locality region
// comfortably, or traffic that the paper's 32KB L1 would absorb floods
// the scaled LLC and distorts the utility-curve shapes that the
// partitioning algorithms discriminate on.
func TestScale() Scale {
	return Scale{
		Name: "test",
		L1D:  cache.Config{Name: "L1D", SizeBytes: 4 << 10, LineBytes: 64, Ways: 4, Latency: 2},
		L1I:  cache.Config{Name: "L1I", SizeBytes: 4 << 10, LineBytes: 64, Ways: 4, Latency: 2},
		L2TwoCore: cache.Config{
			Name: "L2", SizeBytes: 64 << 10, LineBytes: 64, Ways: 8, Latency: 15},
		L2FourCore: cache.Config{
			Name: "L2", SizeBytes: 128 << 10, LineBytes: 64, Ways: 16, Latency: 20},
		Mem:          mem.DefaultConfig(),
		PhaseCycles:  100_000,
		InstrPerApp:  1_200_000,
		WarmupInstr:  100_000,
		UMONSampling: 1,
		MSHRs:        16,
	}
}

// UnitScale is a miniature configuration for unit tests: very short
// runs on the TestScale hierarchy.
func UnitScale() Scale {
	s := TestScale()
	s.Name = "unit"
	s.PhaseCycles = 20_000
	s.InstrPerApp = 120_000
	s.WarmupInstr = 10_000
	return s
}

// L2For returns the shared-cache configuration for a core count. The
// paper's Table 2 fixes the 2- and 4-core points (1MB and 4 ways per
// core); larger CMPs extrapolate the same per-core scaling: capacity
// and associativity double with the core count (the set count stays
// constant, like Table 2's 4096 sets at both sizes) and the access
// latency grows by 5 cycles per doubling (larger arrays, longer
// wires). Associativity saturates at the 64-way mask limit — reached
// at 16 cores — beyond which capacity keeps scaling through sets.
// Core counts beyond 4 must be powers of two, up to 64 (the
// permission-register mask limit).
func (s Scale) L2For(cores int) (cache.Config, error) {
	switch {
	case cores <= 0:
		return cache.Config{}, fmt.Errorf("sim: no L2 configuration for %d cores", cores)
	case cores <= 2:
		return s.L2TwoCore, nil
	case cores <= 4:
		return s.L2FourCore, nil
	}
	if cores > 64 {
		return cache.Config{}, fmt.Errorf("sim: %d cores exceed the 64-core limit", cores)
	}
	if cores&(cores-1) != 0 {
		return cache.Config{}, fmt.Errorf("sim: core count %d beyond 4 must be a power of two", cores)
	}
	cfg := s.L2FourCore
	for n := 4; n < cores; n *= 2 {
		cfg.SizeBytes *= 2
		if cfg.Ways*2 <= 64 {
			cfg.Ways *= 2
		}
		cfg.Latency += 5
	}
	return cfg, nil
}

// InstrScale is the run length relative to the paper's 1B instructions.
func (s Scale) InstrScale() float64 {
	return float64(s.InstrPerApp) / 1e9
}

// PhaseScale is the partitioning interval relative to the paper's 5M
// cycles; workload phase-oscillation periods scale with it.
func (s Scale) PhaseScale() float64 {
	return float64(s.PhaseCycles) / 5e6
}

// Validate reports scale errors.
func (s Scale) Validate() error {
	if err := s.L1D.Validate(); err != nil {
		return err
	}
	if err := s.L1I.Validate(); err != nil {
		return err
	}
	if err := s.L2TwoCore.Validate(); err != nil {
		return err
	}
	if err := s.L2FourCore.Validate(); err != nil {
		return err
	}
	if err := s.Mem.Validate(); err != nil {
		return err
	}
	if s.PhaseCycles <= 0 || s.InstrPerApp == 0 {
		return fmt.Errorf("sim: non-positive run parameters in scale %q", s.Name)
	}
	return nil
}
