package sim

// Integration tests: full-system runs checked against cross-module
// conservation and consistency invariants that no single package can
// see on its own.

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/workload"
)

// buildAndRun assembles a system, runs it, and returns both for
// inspection.
func buildAndRun(t *testing.T, scheme SchemeKind, group string) (*System, *Results) {
	t.Helper()
	g, err := workload.FindGroup(group)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(RunConfig{Scale: UnitScale(), Scheme: scheme, Group: g, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return sys, sys.Run()
}

func TestIntegrationAccessConservation(t *testing.T) {
	sys, res := buildAndRun(t, FairShare, "G2-8")
	// Every L2 access originates from an L1 miss or an L1 dirty
	// eviction; the totals must agree (warm-up resets both).
	var l1Misses, l1DirtyEv uint64
	for _, l1 := range sys.l1 {
		l1Misses += l1.Stats().Misses
		l1DirtyEv += l1.Stats().DirtyEvictions
	}
	l2Accesses := res.SchemeStats.TotalAccesses()
	// The L1 dirty-eviction counter is cumulative (not reset per
	// region), so allow the writeback share to be bounded rather than
	// exact: L2 accesses lie between misses and misses + evictions.
	if l2Accesses < l1Misses || l2Accesses > l1Misses+l1DirtyEv+l1Misses/10 {
		t.Fatalf("L2 accesses %d inconsistent with L1 misses %d + dirty evictions %d",
			l2Accesses, l1Misses, l1DirtyEv)
	}
}

func TestIntegrationStaticEnergyMatchesMeter(t *testing.T) {
	_, res := buildAndRun(t, FairShare, "G2-1")
	// FairShare never gates: static energy must equal full leakage over
	// the measured region.
	p := energy.DefaultParams()
	want := float64(res.Cycles) * p.LeakPerWayCyc * 8
	if math.Abs(res.Static-want)/want > 0.01 {
		t.Fatalf("static = %v, want %v (full leakage)", res.Static, want)
	}
}

func TestIntegrationCoopStaysWayAligned(t *testing.T) {
	sys, _ := buildAndRun(t, CoopPart, "G2-2")
	cp, ok := sys.Scheme().(*core.CoopPart)
	if !ok {
		t.Fatal("scheme is not CoopPart")
	}
	if err := cp.Perms().Invariants(); err != nil {
		t.Fatal(err)
	}
	// Every resident block sits in a way whose owner matches (or, mid-
	// transition, a way its owner may still read).
	cp.Cache().ForEachValid(func(set, way int, b cache.Block) {
		if b.Owner < 0 {
			t.Fatalf("unowned block at set %d way %d", set, way)
		}
		if !cp.Perms().CanRead(way, b.Owner) && cp.OwnerOf(way) != b.Owner {
			t.Errorf("block of core %d stranded in way %d (owner %d)",
				b.Owner, way, cp.OwnerOf(way))
		}
	})
}

func TestIntegrationWeightedSpeedupTermsBounded(t *testing.T) {
	g, _ := workload.FindGroup("G2-9")
	res, err := Run(RunConfig{Scale: UnitScale(), Scheme: UCP, Group: g, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range res.Benchmarks {
		alone, err := RunAlone(b, UnitScale(), 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		ratio := res.IPC[i] / alone.IPC[0]
		// Sharing cannot beat running alone by more than timing noise
		// (short unit-scale runs leave sweep/LRU interleaving noise, so
		// the bound is generous).
		if ratio > 1.25 {
			t.Errorf("%s: shared/alone IPC = %v > 1.25", b, ratio)
		}
		if ratio <= 0 {
			t.Errorf("%s: non-positive IPC ratio", b)
		}
	}
}

func TestIntegrationDRAMTrafficConsistent(t *testing.T) {
	_, res := buildAndRun(t, Unmanaged, "G2-8")
	// Every L2 miss reads memory once; reads cannot be fewer than
	// misses (MSHR coalescing happens at the core, not here).
	var l2Misses uint64
	for _, c := range res.SchemeStats.PerCore {
		l2Misses += c.Misses
	}
	if res.DRAM.Reads < l2Misses {
		t.Fatalf("DRAM reads %d < L2 misses %d", res.DRAM.Reads, l2Misses)
	}
	// Writes to memory equal the scheme's writeback count.
	if res.DRAM.Writes != res.SchemeStats.WritebacksToMem {
		t.Fatalf("DRAM writes %d != writebacks %d",
			res.DRAM.Writes, res.SchemeStats.WritebacksToMem)
	}
}

func TestIntegrationEnergyOrdering(t *testing.T) {
	// For the same group, CP's per-access dynamic energy must undercut
	// FairShare's (fewer tags probed), whatever the run lengths.
	_, fair := buildAndRun(t, FairShare, "G2-2")
	_, coop := buildAndRun(t, CoopPart, "G2-2")
	fairPer := fair.Dynamic / float64(fair.SchemeStats.TotalAccesses())
	coopPer := coop.Dynamic / float64(coop.SchemeStats.TotalAccesses())
	if coopPer >= fairPer {
		t.Fatalf("CP per-access energy %v not below FairShare %v", coopPer, fairPer)
	}
}

func TestIntegrationMPKIStableAcrossSchemes(t *testing.T) {
	// lbm is streaming: its MPKI is compulsory-miss-bound and should
	// not vary wildly across schemes.
	var mpkis []float64
	for _, scheme := range []SchemeKind{Unmanaged, FairShare, UCP, CoopPart} {
		_, res := buildAndRun(t, scheme, "G2-8")
		mpkis = append(mpkis, res.MPKI[0]) // core 0 = lbm
	}
	for _, m := range mpkis[1:] {
		if m < mpkis[0]/2 || m > mpkis[0]*2 {
			t.Fatalf("lbm MPKI varies too much across schemes: %v", mpkis)
		}
	}
}

func TestIntegrationDrowsyRunEndToEnd(t *testing.T) {
	g, _ := workload.FindGroup("G2-2")
	d := core.DefaultDrowsyConfig()
	res, err := Run(RunConfig{
		Scale: UnitScale(), Scheme: CoopPart, Group: g, Seed: 3, Drowsy: &d,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(RunConfig{Scale: UnitScale(), Scheme: CoopPart, Group: g, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.StaticPower > plain.StaticPower {
		t.Fatalf("drowsy static power %v above plain %v", res.StaticPower, plain.StaticPower)
	}
}

func TestIntegrationProfileDrivenCPEMatchesPhases(t *testing.T) {
	g, _ := workload.FindGroup("G2-1")
	var cfg RunConfig
	cfg.Scale = UnitScale()
	cfg.Scheme = DynCPE
	cfg.Group = g
	cfg.Seed = 3
	for _, b := range g.Benchmarks {
		p, err := ProfileBenchmark(b, UnitScale(), 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Phases) == 0 {
			t.Fatalf("%s: empty profile", b)
		}
		cfg.Profiles = append(cfg.Profiles, p)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SchemeStats.Decisions == 0 {
		t.Fatal("CPE made no decisions")
	}
}
