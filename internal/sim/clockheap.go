package sim

import (
	"math"

	"repro/internal/cpu"
)

// clockHeap is an indexed binary min-heap over the local clocks of a
// fixed set of cores, ordered by (clock, core index). The secondary
// index order makes Min agree exactly with a linear scan using strict
// less-than — the tie-break the serial simulator always had — so
// replacing the O(n) scan with the heap cannot change simulation
// results.
//
// Clocks are cached as plain int64 keys: the stepping loop reads each
// core's clock once per step (on FixMin) instead of n times per
// linear scan, and heap comparisons are integer compares. The loop
// only ever advances the clock of the minimum core, so Min followed by
// FixMin (a single sift-down of the root) is the whole interface.
type clockHeap struct {
	now []int64 // cached clock per item index
	idx []int   // heap of item indices
}

// newClockHeap heapifies the given initial clocks; clocks is retained.
func newClockHeap(clocks []int64) *clockHeap {
	h := &clockHeap{now: clocks, idx: make([]int, len(clocks))}
	for i := range h.idx {
		h.idx[i] = i
	}
	for i := len(h.idx)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return h
}

// less orders heap slots a, b by (clock, item index).
func (h *clockHeap) less(a, b int) bool {
	ia, ib := h.idx[a], h.idx[b]
	na, nb := h.now[ia], h.now[ib]
	if na != nb {
		return na < nb
	}
	return ia < ib
}

func (h *clockHeap) siftDown(i int) {
	n := len(h.idx)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h.idx[i], h.idx[m] = h.idx[m], h.idx[i]
		i = m
	}
}

// Min returns the item index with the smallest (clock, index).
func (h *clockHeap) Min() int { return h.idx[0] }

// FixMin records the minimum item's advanced clock and restores heap
// order.
func (h *clockHeap) FixMin(now int64) {
	h.now[h.idx[0]] = now
	h.siftDown(0)
}

// secondBound returns the largest clock value the minimum item minIdx
// can reach while still being selected by Min: the runner-up's clock,
// minus one when the runner-up has the smaller index and so wins the
// tie. The runner-up is the smaller of the root's children (each heap
// subtree's minimum is at its root). math.MaxInt64 when there is no
// other item.
func (h *clockHeap) secondBound(minIdx int) int64 {
	best := int64(math.MaxInt64)
	bestIdx := int(^uint(0) >> 1)
	for s := 1; s <= 2 && s < len(h.idx); s++ {
		i := h.idx[s]
		if n := h.now[i]; n < best || (n == best && i < bestIdx) {
			best, bestIdx = n, i
		}
	}
	if bestIdx < minIdx {
		best--
	}
	return best
}

// corePicker selects the next core to step. One- and two-core systems
// keep the linear scan (a single compare — cheaper than any heap
// bookkeeping), larger CMPs use the O(log n) heap; both orders are
// identical by construction, the split is purely a constant-factor
// choice.
type corePicker struct {
	cores []*cpu.Core
	heap  *clockHeap // nil selects the linear scan
}

// newPicker builds the picker for the system's core count.
func (s *System) newPicker() corePicker {
	p := corePicker{cores: s.cores}
	if len(s.cores) >= 4 {
		clocks := make([]int64, len(s.cores))
		for i, c := range s.cores {
			clocks[i] = c.Now()
		}
		p.heap = newClockHeap(clocks)
	}
	return p
}

// Min returns the index of the core with the smallest (clock, index).
func (p *corePicker) Min() int {
	if p.heap != nil {
		return p.heap.Min()
	}
	min := 0
	for i := 1; i < len(p.cores); i++ {
		if p.cores[i].Now() < p.cores[min].Now() {
			min = i
		}
	}
	return min
}

// FixMin records that the minimum core's clock advanced to now.
func (p *corePicker) FixMin(now int64) {
	if p.heap != nil {
		p.heap.FixMin(now)
	}
}

// Bound returns the inclusive clock bound under which core min (the
// current Min) keeps being selected: per-record stepping would step it
// repeatedly while its Now() stays at or below this value, so a
// batched step may retire up to that point without reordering any
// inter-core interleaving. math.MaxInt64 for a single-core system.
func (p *corePicker) Bound(min int) int64 {
	if p.heap != nil {
		return p.heap.secondBound(min)
	}
	best := int64(math.MaxInt64)
	bestIdx := int(^uint(0) >> 1)
	for i := range p.cores {
		if i == min {
			continue
		}
		if n := p.cores[i].Now(); n < best || (n == best && i < bestIdx) {
			best, bestIdx = n, i
		}
	}
	if bestIdx < min {
		best--
	}
	return best
}
