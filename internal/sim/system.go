package sim

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/mem"
	"repro/internal/partition"
	"repro/internal/umon"
	"repro/internal/workload"
)

// SchemeKind names one of the five compared LLC schemes.
type SchemeKind string

// The five schemes of Section 3.4.
const (
	Unmanaged SchemeKind = "Unmanaged"
	FairShare SchemeKind = "FairShare"
	DynCPE    SchemeKind = "DynCPE"
	UCP       SchemeKind = "UCP"
	CoopPart  SchemeKind = "CoopPart"
	// PIPP is an extension beyond the paper's five compared schemes:
	// promotion/insertion pseudo-partitioning (Xie & Loh, cited in the
	// paper's related work).
	PIPP SchemeKind = "PIPP"
)

// AllSchemes lists the paper's five schemes in its plotting order
// (PIPP, being an extension, is not part of the reproduced figures).
var AllSchemes = []SchemeKind{Unmanaged, FairShare, DynCPE, UCP, CoopPart}

// bankBusyCycles is the bank-port occupancy charged per LLC access
// when RunConfig.Banks enables the contention model: a pipelined SRAM
// bank accepts a new access every few cycles, well under its full
// access latency.
const bankBusyCycles = 4

// DefaultSampleStride is the LLC set-sampling ratio K applied when a
// set-sampled run does not set Scale.SampleStride. K=8 keeps 1/8 of
// the sets modelled — the validated sweet spot of DESIGN.md §15.
const DefaultSampleStride = 8

// RunConfig describes one simulation run.
type RunConfig struct {
	Scale  Scale
	Scheme SchemeKind
	Group  workload.Group
	// Cores overrides the CMP's core count (0 = one core per group
	// benchmark). When Cores exceeds the group size the benchmark list
	// is tiled cyclically, each instance running as its own core with a
	// distinct seed and address space; a non-zero Cores below the group
	// size is an error.
	Cores int
	// Banks splits the shared LLC into address-interleaved banks with a
	// bank-port contention model (cache.AcquireBank). 0 or 1 keeps the
	// monolithic, contention-free LLC — bit-identical to the unbanked
	// simulator.
	Banks int
	// SharedWays opts into the shared-way fallback when the core count
	// exceeds the LLC ways (partition.Config.SharedWays); without it
	// such configurations fail loudly.
	SharedWays bool
	// Fidelity selects the trace generators' RNG-walk tier. The zero
	// value (FidelityExact) is the bit-identical walk and the only
	// default at every layer; FidelityFastForward is the opt-in
	// statistical tier (DESIGN.md §11) whose results must never be
	// compared byte-for-byte against exact runs.
	Fidelity Fidelity
	// Threshold is Cooperative Partitioning's T (Algorithm 1), also
	// used by Dynamic CPE's profile-driven allocation. The paper's
	// default is 0.05.
	Threshold float64
	Seed      uint64
	// Profiles drives Dynamic CPE (one per core, from ProfileBenchmark).
	Profiles []partition.CoreProfile
	// CaptureProfile records core 0's per-phase utility curves into
	// Results.Profile (used to generate CPE profiles from solo runs).
	CaptureProfile bool
	// EnergyParams overrides the default energy constants when non-nil.
	EnergyParams *energy.Params
	// RecipientMissOnly and DisableGating are the ablation switches of
	// DESIGN.md §7, forwarded to the scheme.
	RecipientMissOnly bool
	DisableGating     bool
	RandomVictim      bool
	// Drowsy enables the drowsy-cache extension on Cooperative
	// Partitioning runs (Section 6 of the paper: complementary
	// state-preserving low-leakage mode for idle allocated ways).
	Drowsy *core.DrowsyConfig
}

// System is one assembled CMP: cores, private L1Ds, the shared scheme-
// managed L2, MSHRs, DRAM and the energy meter.
type System struct {
	cfg    RunConfig
	cores  []*cpu.Core
	l1     []*cache.Cache
	l1i    []*cache.Cache
	mshr   []*cache.MSHRFile
	scheme partition.Scheme
	dram   *mem.DRAM
	meter  *energy.Meter

	nextDecision int64
	lineBytes    int
	lineShift    uint  // log2(lineBytes), hoisted out of the access path
	measureFrom  int64 // clock at the end of warm-up (energy reset point)
	// wbWeight is the set-sampling scale factor K applied to writeback
	// energy: each sampled writeback stands for K writebacks of the
	// full cache. 1 outside the set-sampled tier. (The DRAM side needs
	// no factor — the controller posts K writes per sampled writeback.)
	wbWeight int
	// stepRecords forces the per-record Step path instead of the
	// event-compressed StepEvent path (DESIGN.md §10). The two are
	// bit-identical — this switch exists for the differential tests
	// that prove it.
	stepRecords bool

	// prog is the measured-loop bookkeeping, lifted into a field so a
	// mid-run Snapshot carries it and a restored system resumes the
	// loop exactly where it stopped (DESIGN.md §14).
	prog *Progress

	profMon    *umon.Monitor
	profPhases []partition.ProfilePhase
	profAccs   uint64
}

// NewSystem assembles a system for cfg.
func NewSystem(cfg RunConfig) (*System, error) {
	if err := cfg.Scale.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Group.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Fidelity.Validate(); err != nil {
		return nil, err
	}
	n := len(cfg.Group.Benchmarks)
	if cfg.Cores > 0 {
		if cfg.Cores < n {
			return nil, fmt.Errorf("sim: Cores = %d below the %d benchmarks of group %q",
				cfg.Cores, n, cfg.Group.Name)
		}
		cfg.Group = cfg.Group.Tile(cfg.Cores)
		n = cfg.Cores
	}
	l2cfg, err := cfg.Scale.L2For(n)
	if err != nil {
		return nil, err
	}
	if cfg.Banks > 1 {
		l2cfg.Banks = cfg.Banks
		l2cfg.BankBusyCycles = bankBusyCycles
	}
	wbWeight := 1
	if cfg.Fidelity == FidelitySetSampled {
		stride := cfg.Scale.SampleStride
		if stride == 0 {
			stride = DefaultSampleStride
		}
		// Dynamic CPE folds set indices with set & (coreSets-1) where
		// coreSets can shrink to Sets/2; the fold preserves sampledness
		// (the low log2(K) bits) only when K divides the folded set
		// count, so larger strides would silently desample CPE runs.
		if stride > l2cfg.Sets()/2 {
			return nil, fmt.Errorf("sim: sample stride %d exceeds half the %d LLC sets",
				stride, l2cfg.Sets())
		}
		l2cfg.SampleStride = stride
		wbWeight = stride
		// The cache substrate panics on bad configs (experiment-fixed in
		// every other path); the stride comes from user flags, so turn
		// its validation into a returned error here.
		if err := l2cfg.Validate(); err != nil {
			return nil, err
		}
	} else if cfg.Scale.SampleStride != 0 {
		return nil, fmt.Errorf("sim: Scale.SampleStride = %d requires the set-sampled fidelity (run has %s)",
			cfg.Scale.SampleStride, cfg.Fidelity)
	}
	cfg.Threshold = effectiveThreshold(cfg.Threshold, cfg.Scheme)

	dram := mem.New(cfg.Scale.Mem)
	pcfg := partition.Config{
		Cache:             l2cfg,
		NumCores:          n,
		DRAM:              dram,
		UMONSampling:      cfg.Scale.UMONSampling,
		MinAllocWays:      1,
		Threshold:         cfg.Threshold,
		TimelineBucket:    cfg.Scale.PhaseCycles / 25,
		TimelineBuckets:   64,
		RecipientMissOnly: cfg.RecipientMissOnly,
		DisableGating:     cfg.DisableGating,
		RandomVictim:      cfg.RandomVictim,
		SharedWays:        cfg.SharedWays,
	}

	var scheme partition.Scheme
	switch cfg.Scheme {
	case Unmanaged:
		scheme = partition.NewUnmanaged(pcfg)
	case FairShare:
		scheme = partition.NewFairShare(pcfg)
	case UCP:
		scheme = partition.NewUCP(pcfg)
	case PIPP:
		scheme = partition.NewPIPP(pcfg)
	case DynCPE:
		scheme = partition.NewCPE(pcfg, cfg.Profiles)
	case CoopPart:
		cp := core.New(pcfg)
		if cfg.Drowsy != nil {
			cp.EnableDrowsy(*cfg.Drowsy)
		}
		scheme = cp
	default:
		return nil, fmt.Errorf("sim: unknown scheme %q", cfg.Scheme)
	}

	params := energy.DefaultParams()
	if cfg.EnergyParams != nil {
		params = *cfg.EnergyParams
	}

	s := &System{
		cfg:          cfg,
		scheme:       scheme,
		dram:         dram,
		meter:        energy.NewMeter(params, l2cfg.Ways),
		nextDecision: cfg.Scale.PhaseCycles,
		lineBytes:    l2cfg.LineBytes,
		lineShift:    uint(bits.TrailingZeros(uint(l2cfg.LineBytes))),
		wbWeight:     wbWeight,
	}
	wayLines := l2cfg.Sets()
	for i, name := range cfg.Group.Benchmarks {
		b := workload.MustGet(name)
		gen := b.NewGenerator(workload.Params{
			CoreID:     i,
			LineBytes:  l2cfg.LineBytes,
			WayLines:   wayLines,
			InstrScale: cfg.Scale.InstrScale(),
			PhaseScale: cfg.Scale.PhaseScale(),
			Seed:       cfg.Seed,
			Fidelity:   cfg.Fidelity,
		})
		s.l1 = append(s.l1, cache.New(cfg.Scale.L1D))
		s.l1i = append(s.l1i, cache.New(cfg.Scale.L1I))
		s.mshr = append(s.mshr, cache.NewMSHRFile(cfg.Scale.MSHRs))
		s.cores = append(s.cores, cpu.NewCore(i, cpu.DefaultConfig(), gen, s))
	}
	if cfg.CaptureProfile {
		s.profMon = umon.New(umon.Config{Sets: l2cfg.Sets(), Ways: l2cfg.Ways, Sampling: 1})
	}
	return s, nil
}

// Scheme exposes the LLC scheme (reporting/tests).
func (s *System) Scheme() partition.Scheme { return s.scheme }

// Meter exposes the energy meter.
func (s *System) Meter() *energy.Meter { return s.meter }

// Access implements cpu.MemPort: the L1D in front of the shared L2.
func (s *System) Access(coreID int, addr uint64, isWrite bool, now int64) cpu.AccessReply {
	l1 := s.l1[coreID]
	line := l1.Line(addr)
	ev, hit := l1.Access(line, coreID, isWrite)
	if hit {
		return cpu.AccessReply{Latency: int64(l1.Latency()), L1Hit: true}
	}

	// Dirty L1 victim: write it back into the L2 (write-allocate; the
	// latency is hidden by the write buffer, only energy and cache
	// state matter).
	if ev.Valid && ev.Dirty {
		wbAddr := ev.Line << s.lineShift
		wbRes := s.scheme.Access(coreID, wbAddr, true, now)
		s.chargeAccess(wbRes, true, now)
	}

	// Fill from the L2 (and memory beyond it).
	res := s.scheme.Access(coreID, addr, false, now)
	s.chargeAccess(res, false, now)
	if s.profMon != nil && coreID == 0 {
		l2line := addr >> s.lineShift
		s.profMon.Access(int(l2line)%s.profMon.Config().Sets, l2line)
		s.profAccs++
	}

	latency := int64(l1.Latency()) + res.Latency
	if !res.Hit {
		// The MSHR file bounds outstanding misses: a full file delays
		// the new miss until the earliest completion.
		start, _ := s.mshr[coreID].Allocate(line, now, now+latency)
		latency += start - now
	}
	return cpu.AccessReply{Latency: latency, L1Hit: false}
}

// Fetch implements cpu.MemPort: the private L1I in front of the shared
// L2. Instruction lines are never dirty, so misses are pure fills.
func (s *System) Fetch(coreID int, pc uint64, now int64) cpu.AccessReply {
	l1i := s.l1i[coreID]
	line := l1i.Line(pc)
	if _, hit := l1i.Access(line, coreID, false); hit {
		return cpu.AccessReply{Latency: int64(l1i.Latency()), L1Hit: true}
	}
	res := s.scheme.Access(coreID, pc, false, now)
	s.chargeAccess(res, false, now)
	return cpu.AccessReply{Latency: int64(l1i.Latency()) + res.Latency, L1Hit: false}
}

// chargeAccess books one L2 access on the energy meter.
func (s *System) chargeAccess(res partition.Result, isWrite bool, now int64) {
	s.meter.OnAccess(energy.AccessEvent{
		TagsConsulted: res.TagsConsulted,
		DataRead:      res.Hit && !isWrite,
		DataWrite:     !res.Hit || isWrite,
		PermCheck:     res.PermCheck,
		UMONSampled:   res.UMONSampled,
		TakeoverOps:   res.TakeoverOps,
	})
	// Each sampled writeback stands for wbWeight writebacks of the full
	// cache (1 outside the set-sampled tier). decide()'s flush loop
	// needs no such factor: FlushedOnDecide is already weight-scaled by
	// the partition layer.
	for i := 0; i < res.Writebacks*s.wbWeight; i++ {
		s.meter.OnWriteback()
	}
	if pw := s.scheme.PoweredWayEquiv(); pw != s.meter.PoweredEquiv() {
		s.meter.SetPoweredEquiv(now, pw)
	}
}

// decide runs one phase boundary.
func (s *System) decide(now int64) {
	reps := s.scheme.Stats().Repartitions
	flushed := s.scheme.Stats().FlushedOnDecide
	s.scheme.Decide(now)
	if s.scheme.Stats().Repartitions != reps {
		s.meter.OnRepartition()
	}
	// Synchronous reconfiguration flushes (Dynamic CPE) read every
	// relocated block out of the data array.
	for i := flushed; i < s.scheme.Stats().FlushedOnDecide; i++ {
		s.meter.OnWriteback()
	}
	if s.profMon != nil {
		s.profPhases = append(s.profPhases, partition.ProfilePhase{
			Curve:    s.profMon.MissCurve(),
			Accesses: s.profMon.Accesses(),
		})
		s.profMon.Reset()
	}
	s.meter.Advance(now)
}

// stepBound returns the inclusive clock bound for one batched step of
// core ci: the picker's second-minimum (the interleaving per-record
// stepping would enforce) capped by the next phase boundary (the
// decision must fire before the core's clock reaches it).
func (s *System) stepBound(h corePicker, ci int) int64 {
	bound := h.Bound(ci)
	if d := s.nextDecision - 1; d < bound {
		bound = d
	}
	return bound
}

// stepCap returns the batched-retirement cap for a core that has not
// yet crossed target: per-record stepping re-checks the retirement
// target after every instruction, so a batch must stop exactly at the
// crossing for IPC/MPKI to be recorded at the same instant.
func stepCap(c *cpu.Core, target uint64) uint64 {
	if r := c.Retired(); r < target {
		return target - r
	}
	return ^uint64(0)
}

// runUntil steps cores in clock order until every core has retired
// target instructions (since the last stats reset), firing phase
// decisions on the way.
func (s *System) runUntil(target uint64) {
	remaining := 0
	for _, c := range s.cores {
		if c.Retired() < target {
			remaining++
		}
	}
	h := s.newPicker()
	for remaining > 0 {
		ci := h.Min()
		c := s.cores[ci]
		now := c.Now()
		for now >= s.nextDecision {
			s.decide(s.nextDecision)
			s.nextDecision += s.cfg.Scale.PhaseCycles
		}
		before := c.Retired()
		if s.stepRecords {
			c.Step()
		} else {
			c.StepEvent(s.stepBound(h, ci), stepCap(c, target))
		}
		h.FixMin(c.Now())
		if before < target && c.Retired() >= target {
			remaining--
		}
	}
}

// Progress is the measured-loop bookkeeping: which cores have crossed
// the retirement target, how many, and the IPC/MPKI recorded at each
// crossing. It travels inside mid-run snapshots so a restored run
// records exactly the results the uninterrupted run would have.
type Progress struct {
	Recorded []bool
	Done     int
	IPC      []float64
	MPKI     []float64
}

func (p *Progress) clone() *Progress {
	return &Progress{
		Recorded: append([]bool(nil), p.Recorded...),
		Done:     p.Done,
		IPC:      append([]float64(nil), p.IPC...),
		MPKI:     append([]float64(nil), p.MPKI...),
	}
}

// Warmup executes the warm-up region (if any) and resets statistics at
// its boundary. Run == Warmup followed by RunMeasured; the split lets
// the checkpoint layer snapshot the warm-up boundary and resume many
// runs from it.
func (s *System) Warmup() {
	if s.cfg.Scale.WarmupInstr > 0 {
		s.runUntil(s.cfg.Scale.WarmupInstr)
		s.resetStats()
	}
}

// Run executes warm-up plus the measured region and gathers results.
func (s *System) Run() *Results {
	s.Warmup()
	return s.RunMeasured(0, nil)
}

// nextCkptBoundary returns the next mid-run checkpoint boundary — the
// smallest multiple of every (in measured-region instructions, below
// target) that some core has not yet reached — and how many cores are
// still short of it; (0, 0) when no boundary remains. Boundaries are a
// pure function of the simulation state, never serialized: a restored
// run re-derives them, so snapshot bytes are independent of the
// -checkpoint-every setting that produced them.
func (s *System) nextCkptBoundary(every, target uint64) (uint64, int) {
	min := ^uint64(0)
	for _, c := range s.cores {
		if r := c.Retired(); r < min {
			min = r
		}
	}
	b := (min/every + 1) * every
	if b >= target {
		return 0, 0
	}
	short := 0
	for _, c := range s.cores {
		if c.Retired() < b {
			short++
		}
	}
	return b, short
}

// RunMeasured executes the measured region and gathers results. When
// every > 0 and onCkpt is non-nil, onCkpt fires each time all cores
// have retired another `every` measured instructions (the moment the
// last core crosses the boundary) — the hook the checkpoint layer uses
// to snapshot mid-run state. The callback must not mutate the system;
// with a nil hook the loop is bit-identical to an unhooked run.
func (s *System) RunMeasured(every uint64, onCkpt func(boundary uint64)) *Results {
	n := len(s.cores)
	res := &Results{
		Scheme:     string(s.cfg.Scheme),
		Group:      s.cfg.Group.Name,
		Fidelity:   s.cfg.Fidelity,
		Benchmarks: append([]string(nil), s.cfg.Group.Benchmarks...),
	}

	target := s.cfg.Scale.InstrPerApp
	if s.prog == nil {
		s.prog = &Progress{
			Recorded: make([]bool, n),
			IPC:      make([]float64, n),
			MPKI:     make([]float64, n),
		}
	}
	p := s.prog

	var nextCkpt uint64
	ckptShort := 0
	if every > 0 && onCkpt != nil {
		nextCkpt, ckptShort = s.nextCkptBoundary(every, target)
	}

	h := s.newPicker()
	for p.Done < n {
		ci := h.Min()
		c := s.cores[ci]
		now := c.Now()
		for now >= s.nextDecision {
			s.decide(s.nextDecision)
			s.nextDecision += s.cfg.Scale.PhaseCycles
		}
		var before uint64
		if nextCkpt > 0 {
			before = c.Retired()
		}
		if s.stepRecords {
			c.Step()
		} else {
			limit := ^uint64(0)
			if !p.Recorded[ci] {
				limit = stepCap(c, target)
			}
			c.StepEvent(s.stepBound(h, ci), limit)
		}
		h.FixMin(c.Now())
		if !p.Recorded[ci] && c.Retired() >= target {
			p.Recorded[ci] = true
			p.Done++
			p.IPC[ci] = c.IPC()
			misses := s.scheme.Stats().PerCore[ci].Misses
			p.MPKI[ci] = float64(misses) / (float64(c.Retired()) / 1000)
		}
		// The hook fires after this iteration's bookkeeping so the
		// snapshot captures a state the loop can re-enter verbatim.
		if nextCkpt > 0 && before < nextCkpt && c.Retired() >= nextCkpt {
			ckptShort--
			if ckptShort == 0 {
				onCkpt(nextCkpt)
				nextCkpt, ckptShort = s.nextCkptBoundary(every, target)
			}
		}
	}
	res.IPC = append([]float64(nil), p.IPC...)
	res.MPKI = append([]float64(nil), p.MPKI...)

	var maxNow int64
	for _, c := range s.cores {
		if c.Now() > maxNow {
			maxNow = c.Now()
		}
	}
	s.meter.Advance(maxNow)

	res.Cycles = maxNow - s.measureFrom
	res.Dynamic = s.meter.Dynamic()
	res.Static = s.meter.Static()
	if res.Cycles > 0 {
		res.StaticPower = res.Static / float64(res.Cycles)
	}
	res.AvgWaysConsulted = s.scheme.Stats().AvgWaysConsulted()
	res.Allocations = s.scheme.Allocations()
	res.SchemeStats = cloneStats(s.scheme.Stats())
	res.Transition = cloneTransitions(s.scheme.Transitions())
	// No set-sampling scaling here: the controller keeps DRAM traffic at
	// full-cache magnitudes itself — estimated misses issue real reads
	// and each sampled writeback posts wbWeight writes — so the DRAM
	// counters are full-rate on every tier.
	res.DRAM = s.dram.Stats()
	if s.cfg.CaptureProfile {
		res.Profile = partition.CoreProfile{Phases: s.profPhases}
	}
	for _, c := range s.cores {
		res.L1MissRate = append(res.L1MissRate, 1-hitRateOf(c, s))
	}
	return res
}

// hitRateOf returns the L1 hit rate of a core.
func hitRateOf(c *cpu.Core, s *System) float64 {
	return s.l1[c.ID()].Stats().HitRate()
}

// resetStats clears all counters at the warm-up boundary while keeping
// microarchitectural state warm.
func (s *System) resetStats() {
	var now int64
	for _, c := range s.cores {
		c.ResetStats()
		if c.Now() > now {
			now = c.Now()
		}
	}
	for _, l1 := range s.l1 {
		l1.Stats().Reset()
	}
	for _, l1i := range s.l1i {
		l1i.Stats().Reset()
	}
	s.scheme.Stats().Reset()
	s.scheme.Transitions().Reset()
	s.meter.ResetAt(now)
	s.measureFrom = now
	s.dram.ResetStats()
	s.profPhases = nil
	if s.profMon != nil {
		s.profMon.Reset()
	}
}

// Run is the package-level convenience: build a system and run it.
func Run(cfg RunConfig) (*Results, error) {
	s, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}
