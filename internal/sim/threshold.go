package sim

// DefaultThreshold is the paper's operating point for Cooperative
// Partitioning's T parameter (Section 5.1), shared by Dynamic CPE's
// profile-driven allocator.
const DefaultThreshold = 0.05

// explicitZeroThreshold is the RunConfig.Threshold sentinel for "the
// caller asked for T exactly 0". RunConfig follows the Go convention
// that the zero value selects the default, so a literal 0 cannot mean
// "no threshold"; EncodeThreshold and effectiveThreshold are the only
// two places that know about the sentinel.
const explicitZeroThreshold = -1

// EncodeThreshold maps a user-facing threshold (>= 0, where 0 really
// means zero, as in the T sweep of Figures 11-13) to its
// RunConfig.Threshold encoding.
func EncodeThreshold(t float64) float64 {
	if t == 0 {
		return explicitZeroThreshold
	}
	return t
}

// effectiveThreshold resolves an encoded RunConfig.Threshold for a
// scheme: an unset (zero) value selects the paper's default for the
// schemes that use a threshold, and the explicit-zero sentinel decodes
// back to 0.
func effectiveThreshold(t float64, scheme SchemeKind) float64 {
	if t == 0 && (scheme == CoopPart || scheme == DynCPE) {
		return DefaultThreshold
	}
	if t < 0 {
		return 0
	}
	return t
}
