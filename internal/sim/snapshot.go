package sim

import (
	"encoding/json"
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/mem"
	"repro/internal/partition"
	"repro/internal/umon"
)

// Snapshot is the complete dynamic state of a System at an instruction
// boundary (DESIGN.md §14): every core with its predictor and trace
// generator, the private L1D/L1I caches and MSHR files, the scheme
// (which carries the shared LLC, monitors and all policy state), the
// DRAM timing state, the energy meter, and the phased-run bookkeeping.
// Everything derived from RunConfig — geometry, latencies, masks,
// profiles, the FastForward CDF tables — is rebuilt by NewSystem, so a
// snapshot restored into a freshly built System of the same RunConfig
// continues the run bit-identically (pinned by the ckpt round-trip
// fuzz and the checkpointed-vs-uncheckpointed oracle tests). Taking a
// snapshot is a pure read: it never perturbs the run.
type Snapshot struct {
	// Scheme is the scheme's Name(), cross-checked on restore so a
	// mis-keyed checkpoint fails loudly instead of restoring one
	// scheme's cache state into another's policy.
	Scheme string

	Cores       []*cpu.State
	L1D         []*cache.State
	L1I         []*cache.State
	MSHR        []*cache.MSHRState
	SchemeState json.RawMessage
	DRAM        *mem.State
	Meter       *energy.State

	NextDecision int64
	MeasureFrom  int64

	// Progress is the measured-loop bookkeeping; nil for a snapshot
	// taken at the warm-up boundary.
	Progress *Progress `json:",omitempty"`

	// ProfMon/ProfPhases capture profiling state (CaptureProfile runs
	// only). A warm-up snapshot strips them (StripProfile): at the
	// warm-up boundary the monitor has just been Reset, so a restored
	// profile run's freshly built monitor is already in the identical
	// state — which is what lets one warm-up checkpoint serve both the
	// alone and the profile run of a benchmark.
	ProfMon    *umon.State              `json:",omitempty"`
	ProfPhases []partition.ProfilePhase `json:",omitempty"`
}

// StripProfile drops the profiling capture state, making the snapshot
// shareable between CaptureProfile and non-capture runs at the warm-up
// boundary (see the field comment for why this is exact there).
func (sn *Snapshot) StripProfile() {
	sn.ProfMon = nil
	sn.ProfPhases = nil
}

// Snapshot returns a deep copy of the system's complete dynamic state.
// It fails only when the scheme does not support checkpointing (all
// six schemes do; the error guards future ones).
func (s *System) Snapshot() (*Snapshot, error) {
	st, ok := s.scheme.(partition.Stateful)
	if !ok {
		return nil, fmt.Errorf("sim: scheme %s does not support checkpointing", s.scheme.Name())
	}
	schemeDoc, err := st.StateJSON()
	if err != nil {
		return nil, fmt.Errorf("sim: scheme %s state: %w", s.scheme.Name(), err)
	}
	snap := &Snapshot{
		Scheme:       s.scheme.Name(),
		SchemeState:  schemeDoc,
		DRAM:         s.dram.State(),
		Meter:        s.meter.State(),
		NextDecision: s.nextDecision,
		MeasureFrom:  s.measureFrom,
	}
	for i := range s.cores {
		snap.Cores = append(snap.Cores, s.cores[i].State())
		snap.L1D = append(snap.L1D, s.l1[i].State())
		snap.L1I = append(snap.L1I, s.l1i[i].State())
		snap.MSHR = append(snap.MSHR, s.mshr[i].State())
	}
	if s.prog != nil {
		snap.Progress = s.prog.clone()
	}
	if s.profMon != nil {
		snap.ProfMon = s.profMon.State()
		snap.ProfPhases = append([]partition.ProfilePhase(nil), s.profPhases...)
	}
	return snap, nil
}

// RestoreSnapshot overwrites the system's dynamic state with snap. The
// receiver must be freshly built by NewSystem from the same RunConfig
// the snapshot was taken under; mismatches (scheme, core count, any
// component geometry) are rejected with the system left unusable
// rather than half-restored — callers rebuild on error.
func (s *System) RestoreSnapshot(snap *Snapshot) error {
	if snap.Scheme != s.scheme.Name() {
		return fmt.Errorf("sim: snapshot is for scheme %s, system runs %s", snap.Scheme, s.scheme.Name())
	}
	n := len(s.cores)
	if len(snap.Cores) != n || len(snap.L1D) != n || len(snap.L1I) != n || len(snap.MSHR) != n {
		return fmt.Errorf("sim: snapshot has %d/%d/%d/%d cores/L1D/L1I/MSHR states, system has %d cores",
			len(snap.Cores), len(snap.L1D), len(snap.L1I), len(snap.MSHR), n)
	}
	if snap.DRAM == nil || snap.Meter == nil {
		return fmt.Errorf("sim: snapshot missing DRAM or meter state")
	}
	if snap.ProfMon != nil && s.profMon == nil {
		return fmt.Errorf("sim: snapshot carries profiling state but CaptureProfile is off")
	}
	st, ok := s.scheme.(partition.Stateful)
	if !ok {
		return fmt.Errorf("sim: scheme %s does not support checkpointing", s.scheme.Name())
	}
	if err := st.RestoreStateJSON(snap.SchemeState); err != nil {
		return fmt.Errorf("sim: scheme %s: %w", s.scheme.Name(), err)
	}
	for i := 0; i < n; i++ {
		if err := s.cores[i].Restore(snap.Cores[i]); err != nil {
			return err
		}
		if err := s.l1[i].Restore(snap.L1D[i]); err != nil {
			return err
		}
		if err := s.l1i[i].Restore(snap.L1I[i]); err != nil {
			return err
		}
		if err := s.mshr[i].Restore(snap.MSHR[i]); err != nil {
			return err
		}
	}
	if err := s.dram.Restore(snap.DRAM); err != nil {
		return err
	}
	s.meter.Restore(snap.Meter)
	s.nextDecision = snap.NextDecision
	s.measureFrom = snap.MeasureFrom
	s.prog = nil
	if snap.Progress != nil {
		if len(snap.Progress.Recorded) != n {
			return fmt.Errorf("sim: snapshot progress covers %d cores, system has %d",
				len(snap.Progress.Recorded), n)
		}
		s.prog = snap.Progress.clone()
	}
	// A nil ProfMon leaves a capture run's freshly built (zeroed)
	// monitor in place — exactly its state at the warm-up boundary.
	if snap.ProfMon != nil {
		if err := s.profMon.Restore(snap.ProfMon); err != nil {
			return err
		}
		s.profPhases = append([]partition.ProfilePhase(nil), snap.ProfPhases...)
	}
	return nil
}

// MarshalSnapshot serializes a snapshot to the checkpoint payload
// format: one JSON document. JSON round-trips every float64 exactly
// (shortest-decimal encoding), so off-grid clocks survive verbatim;
// determinism of the bytes (no maps anywhere in the snapshot tree)
// is what makes checkpoint entries content-addressable.
func MarshalSnapshot(snap *Snapshot) ([]byte, error) { return json.Marshal(snap) }

// UnmarshalSnapshot parses a checkpoint payload.
func UnmarshalSnapshot(data []byte) (*Snapshot, error) {
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
