// Package metrics provides the statistics and formatting helpers the
// evaluation uses: geometric means (the paper's average), weighted
// speedup normalisation, and plain-text/CSV rendering of figure series.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// GeoMean returns the geometric mean of xs, the paper's average for
// normalised metrics. Non-positive values are rejected by returning 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Normalise divides each value by the matching baseline value.
func Normalise(values, baseline []float64) ([]float64, error) {
	if len(values) != len(baseline) {
		return nil, fmt.Errorf("metrics: length mismatch %d vs %d", len(values), len(baseline))
	}
	out := make([]float64, len(values))
	for i := range values {
		if baseline[i] == 0 {
			return nil, fmt.Errorf("metrics: zero baseline at %d", i)
		}
		out[i] = values[i] / baseline[i]
	}
	return out, nil
}

// NamedSeries is one labelled data series of a figure.
type NamedSeries struct {
	Name   string
	Values []float64
}

// Figure is a reproduced figure: X categories (workload groups, time
// buckets or threshold values) against one or more series.
type Figure struct {
	ID     string // "Fig5"
	Title  string
	YLabel string
	XLabel string
	X      []string
	Series []NamedSeries
}

// Validate checks internal consistency.
func (f Figure) Validate() error {
	for _, s := range f.Series {
		if len(s.Values) != len(f.X) {
			return fmt.Errorf("metrics: %s series %q has %d values for %d x-labels",
				f.ID, s.Name, len(s.Values), len(f.X))
		}
	}
	return nil
}

// Get returns the named series, or nil.
func (f Figure) Get(name string) []float64 {
	for _, s := range f.Series {
		if s.Name == name {
			return s.Values
		}
	}
	return nil
}

// WriteTable renders the figure as an aligned plain-text table.
func (f Figure) WriteTable(w io.Writer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: %s\n", f.ID, f.Title)
	if f.YLabel != "" {
		fmt.Fprintf(w, "y: %s\n", f.YLabel)
	}
	width := 10
	for _, x := range f.X {
		if len(x) > width {
			width = len(x)
		}
	}
	fmt.Fprintf(w, "%-*s", width+2, f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%14s", s.Name)
	}
	fmt.Fprintln(w)
	for i, x := range f.X {
		fmt.Fprintf(w, "%-*s", width+2, x)
		for _, s := range f.Series {
			fmt.Fprintf(w, "%14.3f", s.Values[i])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteCSV renders the figure as CSV (header: x,series...).
func (f Figure) WriteCSV(w io.Writer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	cols := []string{csvEscape(f.XLabel)}
	for _, s := range f.Series {
		cols = append(cols, csvEscape(s.Name))
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	for i, x := range f.X {
		row := []string{csvEscape(x)}
		for _, s := range f.Series {
			row = append(row, fmt.Sprintf("%g", s.Values[i]))
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// AppendGeoMeanColumn extends every series with its geometric mean and
// the x-axis with label (the paper's AVG bar).
func (f *Figure) AppendGeoMeanColumn(label string) {
	f.X = append(f.X, label)
	for i := range f.Series {
		f.Series[i].Values = append(f.Series[i].Values, GeoMean(f.Series[i].Values))
	}
}

// MeanNonZero returns the arithmetic mean of the non-zero values of xs
// (zero meaning "no data for this group", e.g. a workload with no way
// transfers). Returns 0 when every value is zero.
func MeanNonZero(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x != 0 {
			sum += x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
