package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean(1,4) = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean(2,2,2) = %v", got)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, 0}) != 0 || GeoMean([]float64{-1}) != 0 {
		t.Fatal("degenerate inputs should return 0")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
}

func TestNormalise(t *testing.T) {
	got, err := Normalise([]float64{2, 6}, []float64{4, 3})
	if err != nil || got[0] != 0.5 || got[1] != 2 {
		t.Fatalf("Normalise = %v, %v", got, err)
	}
	if _, err := Normalise([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Normalise([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero baseline accepted")
	}
}

// Property: geomean of positive values lies between min and max.
func TestPropertyGeoMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r) + 1
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := GeoMean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func testFigure() Figure {
	return Figure{
		ID: "FigX", Title: "test", XLabel: "group", YLabel: "speedup",
		X: []string{"G1", "G2"},
		Series: []NamedSeries{
			{Name: "UCP", Values: []float64{1.1, 1.2}},
			{Name: "CoopPart", Values: []float64{1.0, 1.3}},
		},
	}
}

func TestFigureValidate(t *testing.T) {
	f := testFigure()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	f.Series[0].Values = f.Series[0].Values[:1]
	if f.Validate() == nil {
		t.Fatal("ragged series accepted")
	}
}

func TestFigureGet(t *testing.T) {
	f := testFigure()
	if v := f.Get("UCP"); v == nil || v[0] != 1.1 {
		t.Fatalf("Get(UCP) = %v", v)
	}
	if f.Get("nosuch") != nil {
		t.Fatal("Get(unknown) should be nil")
	}
}

func TestFigureWriteTable(t *testing.T) {
	var sb strings.Builder
	if err := testFigure().WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"FigX", "UCP", "CoopPart", "G1", "1.100"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFigureWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := testFigure().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3", len(lines))
	}
	if lines[0] != "group,UCP,CoopPart" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "G1,1.1,1" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestCSVEscape(t *testing.T) {
	if got := csvEscape(`a,b`); got != `"a,b"` {
		t.Fatalf("escape = %q", got)
	}
	if got := csvEscape(`say "hi"`); got != `"say ""hi"""` {
		t.Fatalf("escape = %q", got)
	}
	if got := csvEscape("plain"); got != "plain" {
		t.Fatalf("escape = %q", got)
	}
}

func TestAppendGeoMeanColumn(t *testing.T) {
	f := testFigure()
	f.AppendGeoMeanColumn("AVG")
	if f.X[len(f.X)-1] != "AVG" {
		t.Fatal("AVG label missing")
	}
	got := f.Series[0].Values
	want := GeoMean([]float64{1.1, 1.2})
	if math.Abs(got[len(got)-1]-want) > 1e-12 {
		t.Fatalf("AVG value = %v, want %v", got[len(got)-1], want)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMeanNonZero(t *testing.T) {
	if got := MeanNonZero([]float64{0, 2, 0, 4}); got != 3 {
		t.Fatalf("MeanNonZero = %v, want 3", got)
	}
	if got := MeanNonZero([]float64{0, 0}); got != 0 {
		t.Fatalf("MeanNonZero(all zero) = %v, want 0", got)
	}
	if got := MeanNonZero(nil); got != 0 {
		t.Fatalf("MeanNonZero(nil) = %v, want 0", got)
	}
}
