package mem

// High-pressure DRAM tests: the outstanding-request window under a
// 16-core miss storm, the regime the many-core scaling sweep drives
// the memory system into.

import "testing"

func TestSixteenCorePressureBoundsInflight(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	const cores = 16
	// Every core fires a miss burst in the same cycle window, far more
	// than MaxOutstanding can hold: the window must bound the in-flight
	// set and convert the excess into queue stalls, never dropping or
	// duplicating requests.
	var issued int
	for round := 0; round < 40; round++ {
		now := int64(round * 10)
		for core := 0; core < cores; core++ {
			line := uint64(core)<<20 | uint64(round)
			lat := d.Read(line, now)
			issued++
			if lat < int64(cfg.LatencyCycles) {
				t.Fatalf("round %d core %d: latency %d below uncontended %d",
					round, core, lat, cfg.LatencyCycles)
			}
			if len(d.inflight) > cfg.MaxOutstanding {
				t.Fatalf("in-flight window grew to %d (limit %d)",
					len(d.inflight), cfg.MaxOutstanding)
			}
		}
	}
	st := d.Stats()
	if st.Reads != uint64(issued) {
		t.Fatalf("reads = %d, want %d", st.Reads, issued)
	}
	if st.QueueStalls == 0 {
		t.Fatal("640 overlapping reads never stalled on the outstanding window")
	}
	if st.BankConflicts == 0 {
		t.Fatal("16-core storm produced no bank conflicts")
	}
	if d.AvgReadLatency() <= float64(cfg.LatencyCycles) {
		t.Fatalf("average latency %v not above uncontended %d under pressure",
			d.AvgReadLatency(), cfg.LatencyCycles)
	}
}

func TestPressureLatencyGrowsWithOffered(t *testing.T) {
	// Offered load beyond the bank/bus service rate: the mean latency
	// of a saturating burst must exceed that of a sparse stream on an
	// identical configuration.
	sparse, burst := New(DefaultConfig()), New(DefaultConfig())
	for i := 0; i < 200; i++ {
		sparse.Read(uint64(i), int64(i)*1000) // one at a time, banks idle
		burst.Read(uint64(i), 0)              // all at cycle 0
	}
	if burst.AvgReadLatency() <= sparse.AvgReadLatency() {
		t.Fatalf("burst latency %v not above sparse %v",
			burst.AvgReadLatency(), sparse.AvgReadLatency())
	}
}

func TestPressureMixedWritebacksStillBounded(t *testing.T) {
	// Posted writebacks compete for banks/bus and the outstanding
	// window alongside reads (a dirty-eviction storm at 16 cores).
	cfg := DefaultConfig()
	d := New(cfg)
	for round := 0; round < 30; round++ {
		now := int64(round * 5)
		for core := 0; core < 16; core++ {
			line := uint64(core)<<20 | uint64(round)
			if core%2 == 0 {
				d.Write(line, now)
			} else {
				d.Read(line, now)
			}
			if len(d.inflight) > cfg.MaxOutstanding {
				t.Fatalf("in-flight window grew to %d (limit %d)",
					len(d.inflight), cfg.MaxOutstanding)
			}
		}
	}
	st := d.Stats()
	if st.Writes != 30*8 || st.Reads != 30*8 {
		t.Fatalf("writes/reads = %d/%d, want 240/240", st.Writes, st.Reads)
	}
	// Time heals the window: after a long quiet gap a read sees no
	// queue stall.
	stallsBefore := d.Stats().QueueStalls
	if lat := d.Read(1, 1<<30); lat != int64(cfg.LatencyCycles) {
		t.Fatalf("post-drain read latency %d, want uncontended %d", lat, cfg.LatencyCycles)
	}
	if d.Stats().QueueStalls != stallsBefore {
		t.Fatal("post-drain read queue-stalled")
	}
}
