package mem

import (
	"testing"
	"testing/quick"
)

func TestUncontendedReadLatency(t *testing.T) {
	d := New(DefaultConfig())
	if lat := d.Read(0, 0); lat != 400 {
		t.Fatalf("uncontended read latency = %d, want 400", lat)
	}
}

func TestBankConflictSerialises(t *testing.T) {
	d := New(DefaultConfig())
	d.Read(0, 0)        // bank 0 busy until 40
	lat := d.Read(8, 0) // line 8 -> bank 0 again
	if lat <= 400 {
		t.Fatalf("conflicting read latency = %d, want > 400", lat)
	}
	if d.Stats().BankConflicts != 1 {
		t.Fatalf("BankConflicts = %d, want 1", d.Stats().BankConflicts)
	}
}

func TestDifferentBanksOverlap(t *testing.T) {
	d := New(DefaultConfig())
	d.Read(0, 0) // bank 0
	lat := d.Read(1, 0)
	// Bank 1 is free; only the bus (8 cycles) serialises.
	if lat != 408 {
		t.Fatalf("second-bank read latency = %d, want 408", lat)
	}
}

func TestOutstandingLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxOutstanding = 2
	cfg.BankBusyCycles = 0
	cfg.BusCycles = 0
	d := New(cfg)
	d.Read(0, 0)
	d.Read(1, 0)
	lat := d.Read(2, 0) // queue full: waits for an earlier completion
	if lat != 800 {
		t.Fatalf("queued read latency = %d, want 800", lat)
	}
	if d.Stats().QueueStalls != 1 {
		t.Fatalf("QueueStalls = %d, want 1", d.Stats().QueueStalls)
	}
}

func TestWritesArePosted(t *testing.T) {
	d := New(DefaultConfig())
	d.Write(0, 0)
	if d.Stats().Writes != 1 {
		t.Fatal("write not recorded")
	}
	// A read to another bank at the same time only pays bus occupancy.
	if lat := d.Read(1, 0); lat != 408 {
		t.Fatalf("read after posted write latency = %d, want 408", lat)
	}
}

func TestRequestsDrainOverTime(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxOutstanding = 1
	d := New(cfg)
	d.Read(0, 0)
	// Long after completion, a new request sees no queueing.
	if lat := d.Read(1, 10000); lat != 400 {
		t.Fatalf("later read latency = %d, want 400", lat)
	}
	if d.Stats().QueueStalls != 0 {
		t.Fatal("unexpected queue stall after drain")
	}
}

func TestAvgReadLatency(t *testing.T) {
	d := New(DefaultConfig())
	if d.AvgReadLatency() != 0 {
		t.Fatal("empty DRAM should report 0 average latency")
	}
	d.Read(0, 0)
	d.Read(1, 10000)
	if got := d.AvgReadLatency(); got != 400 {
		t.Fatalf("AvgReadLatency = %v, want 400", got)
	}
}

func TestReset(t *testing.T) {
	d := New(DefaultConfig())
	d.Read(0, 0)
	d.Write(1, 0)
	d.Reset()
	if d.Stats().Reads != 0 || d.Stats().Writes != 0 {
		t.Fatal("Reset left counters")
	}
	if lat := d.Read(0, 0); lat != 400 {
		t.Fatalf("post-reset latency = %d, want 400", lat)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Banks: 0, LatencyCycles: 1, MaxOutstanding: 1},
		{Banks: 3, LatencyCycles: 1, MaxOutstanding: 1},
		{Banks: 8, LatencyCycles: 0, MaxOutstanding: 1},
		{Banks: 8, LatencyCycles: 400, MaxOutstanding: 0},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %d should fail validation: %+v", i, cfg)
		}
	}
	if DefaultConfig().Validate() != nil {
		t.Error("default config should validate")
	}
}

// Property: latency is always at least the uncontended latency and
// monotone time never runs backwards.
func TestPropertyLatencyBounds(t *testing.T) {
	f := func(lines []uint64) bool {
		d := New(DefaultConfig())
		now := int64(0)
		for _, l := range lines {
			lat := d.Read(l, now)
			if lat < 400 {
				return false
			}
			now += 13
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
