package mem

import "fmt"

// State is the dynamic portion of a DRAM: bank/bus availability, the
// outstanding-request completion times and the counters (DESIGN.md
// §14). The inflight slice is order-significant — reserve compacts it
// preserving relative order and evicts by scan position on ties — so
// it round-trips verbatim, not sorted.
type State struct {
	BankFree []int64
	BusFree  int64
	Inflight []int64
	Stats    Stats
}

// State returns a deep copy of the DRAM's dynamic state.
func (d *DRAM) State() *State {
	return &State{
		BankFree: append([]int64(nil), d.bankFree...),
		BusFree:  d.busFree,
		Inflight: append([]int64(nil), d.inflight...),
		Stats:    d.stats,
	}
}

// Restore overwrites the DRAM's dynamic state with st. The receiver
// must have been built from the same Config.
func (d *DRAM) Restore(st *State) error {
	if len(st.BankFree) != len(d.bankFree) {
		return fmt.Errorf("mem: snapshot has %d banks, DRAM has %d", len(st.BankFree), len(d.bankFree))
	}
	if len(st.Inflight) > d.cfg.MaxOutstanding {
		return fmt.Errorf("mem: snapshot has %d outstanding requests, limit is %d",
			len(st.Inflight), d.cfg.MaxOutstanding)
	}
	copy(d.bankFree, st.BankFree)
	d.busFree = st.BusFree
	d.inflight = append(d.inflight[:0], st.Inflight...)
	d.stats = st.Stats
	return nil
}
