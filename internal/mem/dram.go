// Package mem models the main-memory system behind the shared LLC:
// a fixed-latency DRAM with multiple banks, per-bank conflict
// serialisation, a shared bus queue, and a bound on outstanding
// requests — the configuration of Table 2 in the paper (8 banks,
// 400-cycle latency, 64 outstanding requests).
package mem

import "fmt"

// Config describes the DRAM system.
type Config struct {
	Banks          int // independent banks
	LatencyCycles  int // uncontended access latency
	BankBusyCycles int // cycles a bank stays busy per request
	BusCycles      int // data-bus occupancy per transfer
	MaxOutstanding int // in-flight request limit (MSHR-style)
}

// DefaultConfig returns the paper's Table 2 memory system.
func DefaultConfig() Config {
	return Config{
		Banks:          8,
		LatencyCycles:  400,
		BankBusyCycles: 40, // row cycle time: bank unavailable after a request
		BusCycles:      8,  // 64B line over the data bus
		MaxOutstanding: 64,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Banks <= 0 || c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("mem: banks %d must be a positive power of two", c.Banks)
	}
	if c.LatencyCycles <= 0 {
		return fmt.Errorf("mem: latency %d must be positive", c.LatencyCycles)
	}
	if c.MaxOutstanding <= 0 {
		return fmt.Errorf("mem: max outstanding %d must be positive", c.MaxOutstanding)
	}
	return nil
}

// Stats counts DRAM activity.
type Stats struct {
	Reads         uint64
	Writes        uint64
	BankConflicts uint64
	BusStalls     uint64
	QueueStalls   uint64
	TotalLatency  uint64 // sum of observed request latencies (reads only)
}

// DRAM is the memory system model. Like the caches it is driven from a
// single goroutine; request timing is resolved immediately from the
// bank/bus availability bookkeeping rather than with an event queue.
type DRAM struct {
	cfg      Config
	bankFree []int64 // cycle at which each bank becomes available
	busFree  int64   // cycle at which the data bus becomes available
	inflight []int64 // completion times of outstanding requests (ring)
	stats    Stats
}

// New builds a DRAM model. It panics on invalid configuration, which is
// fixed by the experiment definitions.
func New(cfg Config) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &DRAM{
		cfg:      cfg,
		bankFree: make([]int64, cfg.Banks),
		inflight: make([]int64, 0, cfg.MaxOutstanding),
	}
}

// Config returns the DRAM configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns the accumulated counters.
func (d *DRAM) Stats() Stats { return d.stats }

// bank maps a line address to its bank (low-order line bits interleave
// lines across banks).
func (d *DRAM) bank(line uint64) int { return int(line) & (d.cfg.Banks - 1) }

// reserve finds the earliest issue time for a request arriving at now,
// honouring the outstanding-request limit, bank availability and bus
// occupancy, and updates the bookkeeping.
func (d *DRAM) reserve(line uint64, now int64) (issue int64) {
	issue = now

	// Outstanding-request limit: if full, wait for the earliest
	// completion.
	live := d.inflight[:0]
	for _, done := range d.inflight {
		if done > now {
			live = append(live, done)
		}
	}
	d.inflight = live
	if len(d.inflight) >= d.cfg.MaxOutstanding {
		earliest := d.inflight[0]
		idx := 0
		for i, done := range d.inflight {
			if done < earliest {
				earliest, idx = done, i
			}
		}
		d.inflight = append(d.inflight[:idx], d.inflight[idx+1:]...)
		if earliest > issue {
			issue = earliest
			d.stats.QueueStalls++
		}
	}

	b := d.bank(line)
	if d.bankFree[b] > issue {
		issue = d.bankFree[b]
		d.stats.BankConflicts++
	}
	if d.busFree > issue {
		issue = d.busFree
		d.stats.BusStalls++
	}
	d.bankFree[b] = issue + int64(d.cfg.BankBusyCycles)
	d.busFree = issue + int64(d.cfg.BusCycles)
	return issue
}

// Read issues a read for line at time now and returns its latency in
// cycles (including any queueing and conflict delays).
func (d *DRAM) Read(line uint64, now int64) int64 {
	issue := d.reserve(line, now)
	done := issue + int64(d.cfg.LatencyCycles)
	d.inflight = append(d.inflight, done)
	d.stats.Reads++
	lat := done - now
	d.stats.TotalLatency += uint64(lat)
	return lat
}

// Write issues a writeback for line at time now. Writebacks are
// posted: they occupy a bank and the bus but the issuing core does not
// wait for them, so no latency is returned.
func (d *DRAM) Write(line uint64, now int64) {
	issue := d.reserve(line, now)
	d.inflight = append(d.inflight, issue+int64(d.cfg.LatencyCycles))
	d.stats.Writes++
}

// AvgReadLatency returns the mean observed read latency.
func (d *DRAM) AvgReadLatency() float64 {
	if d.stats.Reads == 0 {
		return 0
	}
	return float64(d.stats.TotalLatency) / float64(d.stats.Reads)
}

// Reset clears all timing state and counters.
func (d *DRAM) Reset() {
	for i := range d.bankFree {
		d.bankFree[i] = 0
	}
	d.busFree = 0
	d.inflight = d.inflight[:0]
	d.stats = Stats{}
}

// ResetStats clears counters while preserving bank/bus timing state
// (used at the end of a warm-up period).
func (d *DRAM) ResetStats() { d.stats = Stats{} }
