package ckpt

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// testCfg is the oracle workload: CoopPart on a two-core group at unit
// scale exercises the richest snapshot surface (UMONs, the transition
// engine, way gating) while staying millisecond-fast.
func testCfg(t *testing.T, fid sim.Fidelity) sim.RunConfig {
	t.Helper()
	g, err := workload.FindGroup("G2-8")
	if err != nil {
		t.Fatal(err)
	}
	return sim.RunConfig{
		Scale: sim.UnitScale(), Scheme: sim.CoopPart, Group: g,
		Threshold: 0.05, Seed: 1, Fidelity: fid,
	}
}

// testEvery puts three mid-run boundaries (30k/60k/90k) inside unit
// scale's 120k-instruction measured region.
const testEvery = 30_000

func storeOptions(t *testing.T) store.Options {
	return store.Options{
		Logf:        func(format string, args ...any) { t.Logf("store: "+format, args...) },
		LockTimeout: 50 * time.Millisecond,
		StaleAge:    10 * time.Millisecond,
	}
}

func openStore(t *testing.T, dir string, opts store.Options) *store.Store {
	t.Helper()
	s, err := store.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func managerOptions(t *testing.T, st *store.Store, every uint64) Options {
	return Options{
		Store: st, Every: every,
		Logf: func(format string, args ...any) { t.Logf("ckpt: "+format, args...) },
	}
}

// TestRunBitIdenticalAcrossLayers is the core oracle: the identical
// RunConfig through every checkpointing configuration — nil manager,
// memory-only, disk-backed, disk-backed with mid-run checkpoints, and
// a fresh-process resume over the populated directory — must produce
// results deeply equal to plain sim.Run, at both fidelity tiers.
func TestRunBitIdenticalAcrossLayers(t *testing.T) {
	for _, fid := range []sim.Fidelity{sim.FidelityExact, sim.FidelityFastForward} {
		t.Run(string(fid), func(t *testing.T) {
			cfg := testCfg(t, fid)
			want, err := sim.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}

			var nilMgr *Manager
			res, err := nilMgr.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, want) {
				t.Fatal("nil-manager run differs from sim.Run")
			}

			mem := New(Options{Logf: func(string, ...any) {}})
			res, err = mem.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, want) {
				t.Fatal("memory-only checkpointed run differs from sim.Run")
			}

			dir := t.TempDir()
			st := openStore(t, dir, storeOptions(t))
			m := New(managerOptions(t, st, testEvery))
			res, err = m.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, want) {
				t.Fatal("disk-checkpointed run differs from sim.Run")
			}
			stats := m.Stats()
			if stats.WarmupsComputed != 1 || stats.CheckpointsWritten < 2 {
				t.Fatalf("first run stats off: %v", stats)
			}

			// A "new process" (fresh store and manager over the same
			// directory) must resume from the newest mid-run checkpoint
			// and still land on identical results.
			st2 := openStore(t, dir, storeOptions(t))
			m2 := New(managerOptions(t, st2, testEvery))
			res, err = m2.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, want) {
				t.Fatal("resumed run differs from sim.Run")
			}
			stats = m2.Stats()
			if stats.MidRunResumed != 1 {
				t.Fatalf("rerun did not resume from a mid-run checkpoint: %v", stats)
			}
			if stats.WarmupsComputed != 0 {
				t.Fatalf("rerun re-warmed despite a mid-run checkpoint: %v", stats)
			}
		})
	}
}

// TestWarmupSharedBetweenAloneAndProfile pins the exactly-once
// contract: a benchmark's alone run and its CaptureProfile run differ
// only in profile capture, so one manager warms the pair once and both
// results still match their uncheckpointed oracles.
func TestWarmupSharedBetweenAloneAndProfile(t *testing.T) {
	g, err := workload.FindGroup("G2-8")
	if err != nil {
		t.Fatal(err)
	}
	b := g.Benchmarks[0]
	alone, err := sim.AloneConfig(b, sim.UnitScale(), len(g.Benchmarks), 1, sim.FidelityExact)
	if err != nil {
		t.Fatal(err)
	}
	profile, err := sim.ProfileConfig(b, sim.UnitScale(), len(g.Benchmarks), 1, sim.FidelityExact)
	if err != nil {
		t.Fatal(err)
	}
	wantAlone, err := sim.Run(alone)
	if err != nil {
		t.Fatal(err)
	}
	wantProfile, err := sim.Run(profile)
	if err != nil {
		t.Fatal(err)
	}

	m := New(Options{Logf: func(format string, args ...any) { t.Logf("ckpt: "+format, args...) }})
	gotAlone, err := m.Run(alone)
	if err != nil {
		t.Fatal(err)
	}
	gotProfile, err := m.Run(profile)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotAlone, wantAlone) {
		t.Fatal("checkpointed alone run differs from sim.Run")
	}
	if !reflect.DeepEqual(gotProfile, wantProfile) {
		t.Fatal("checkpointed profile run differs from sim.Run")
	}
	stats := m.Stats()
	if stats.WarmupsComputed != 1 {
		t.Fatalf("alone+profile pair warmed %d times, want exactly 1 (%v)", stats.WarmupsComputed, stats)
	}
	if stats.WarmupsResumed != 1 {
		t.Fatalf("profile run did not resume the alone warm-up: %v", stats)
	}
}

// TestCorruptCheckpointQuarantinedAndRecomputed: with every read
// corrupted in flight, the store must quarantine each poisoned
// checkpoint and the manager must recompute — results identical, no
// corrupt state ever trusted.
func TestCorruptCheckpointQuarantinedAndRecomputed(t *testing.T) {
	cfg := testCfg(t, sim.FidelityExact)
	want, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	st := openStore(t, dir, storeOptions(t))
	if _, err := New(managerOptions(t, st, testEvery)).Run(cfg); err != nil {
		t.Fatal(err)
	}

	// Second process: its reads flip a payload byte on the way back.
	ffs := store.NewFaultFS(store.OSFS{})
	ffs.FlipReadByte(700)
	opts := storeOptions(t)
	opts.FS = ffs
	st2 := openStore(t, dir, opts)
	m2 := New(managerOptions(t, st2, testEvery))
	res, err := m2.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatal("run over corrupted checkpoints differs from sim.Run")
	}
	if stats := m2.Stats(); stats.MidRunResumed != 0 || stats.WarmupsResumed != 0 {
		t.Fatalf("corrupt checkpoints were trusted: %v", stats)
	}
	if stats := st2.Stats(); stats.CorruptQuarantined == 0 {
		t.Fatalf("no corrupt entry quarantined: %v", stats)
	}
}

// TestCrashConsistencyEveryWriteBoundary is the checkpoint half of the
// store's failure-model proof: a checkpointed run is crashed at every
// write-path syscall boundary in turn (torn and untorn Write
// variants), the directory is reopened clean, and the invariants hold
// — the crashing run itself still returns correct results (the store
// degrades, the simulation never depends on it), every entry on disk
// is absent or fully valid, and a rerun over the survivors produces
// identical results.
func TestCrashConsistencyEveryWriteBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("enumerates O(100) crash points, a simulation each")
	}
	cfg := testCfg(t, sim.FidelityExact)
	want, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	crashed := 0
	for _, torn := range []int{0, 7} {
		for n := 1; ; n++ {
			dir := t.TempDir()
			ffs := store.NewFaultFS(store.OSFS{})
			ffs.CrashAtWriteOp(n, torn)
			opts := storeOptions(t)
			opts.FS = ffs
			// Open is part of the enumerated write path (its MkdirAll
			// calls); a crash inside it surfaces as an Open error, which
			// CLI callers degrade to a memory-only store — do the same.
			st, err := store.Open(dir, opts)
			if err != nil && !ffs.Fired() {
				t.Fatalf("crash at write-op %d (torn=%d): Open failed without a crash: %v", n, torn, err)
			}
			if err == nil {
				m := New(managerOptions(t, st, testEvery))
				res, err := m.Run(cfg)
				if err != nil {
					t.Fatalf("crash at write-op %d (torn=%d): checkpointed run failed: %v", n, torn, err)
				}
				if !reflect.DeepEqual(res, want) {
					t.Fatalf("crash at write-op %d (torn=%d): crashing run's results differ", n, torn)
				}
			}
			if !ffs.Fired() {
				// n walked past the last syscall of a complete run: the
				// schedule is exhausted.
				if n <= 6 {
					t.Fatalf("crash schedule exhausted implausibly early (n=%d)", n)
				}
				break
			}
			crashed++

			// Reopen over the real filesystem, as a rerun would.
			re := openStore(t, dir, storeOptions(t))
			valid, corrupt, err := re.Verify()
			if err != nil {
				t.Fatalf("crash at write-op %d (torn=%d): Verify: %v", n, torn, err)
			}
			if corrupt != 0 {
				t.Fatalf("crash at write-op %d (torn=%d): %d corrupt entries visible (absent-or-valid violated)",
					n, torn, corrupt)
			}
			_ = valid // any prefix of the checkpoint sequence is legal

			m2 := New(managerOptions(t, re, testEvery))
			res, err := m2.Run(cfg)
			if err != nil {
				t.Fatalf("crash at write-op %d (torn=%d): rerun failed: %v", n, torn, err)
			}
			if !reflect.DeepEqual(res, want) {
				t.Fatalf("crash at write-op %d (torn=%d): resumed results differ", n, torn)
			}
		}
	}
	if crashed == 0 {
		t.Fatal("no crash point ever fired — the schedule is not wired up")
	}
	t.Logf("enumerated %d crash points", crashed)
}

// TestEveryWithoutStoreIgnored: mid-run cadence without a store is
// normalised away (a checkpoint that dies with the process protects
// nothing), and the run still matches the oracle.
func TestEveryWithoutStoreIgnored(t *testing.T) {
	cfg := testCfg(t, sim.FidelityExact)
	want, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Options{Every: testEvery, Logf: func(string, ...any) {}})
	if m.every != 0 {
		t.Fatalf("Every without Store kept cadence %d", m.every)
	}
	res, err := m.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatal("storeless manager run differs from sim.Run")
	}
}
