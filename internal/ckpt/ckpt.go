// Package ckpt is the crash-safe checkpoint layer over the simulator
// (DESIGN.md §14): versioned, checksummed serialization of complete
// mid-run simulator state, stored content-addressed in a store.Store
// so checkpoints inherit the result cache's entry format, atomic
// publish protocol, cross-process lockfiles and quarantine behaviour.
//
// A Manager wraps sim.Run with two capabilities:
//
//   - Warm-up sharing: the warm-up prefix of each run is computed once
//     per identity and every later run of that identity — in this
//     process via a singleflight memo, in any process via the store —
//     resumes from the checkpoint instead of re-warming. The warm-up
//     identity deliberately excludes CaptureProfile, so a benchmark's
//     alone run and its Dynamic CPE profiling run (which differ in
//     nothing else) warm exactly once between them.
//
//   - Mid-run checkpoints: with a store and Every > 0, the measured
//     region checkpoints each time all cores retire another Every
//     instructions, and a rerun of a killed process resumes from the
//     newest valid checkpoint. Corrupt checkpoints are quarantined by
//     the store on read and recomputed, never trusted.
//
// Checkpointing is strictly an accelerator: every fault (store down,
// corrupt entry, geometry mismatch) degrades to plain recomputation,
// and results are bit-identical with and without the layer.
package ckpt

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
	"repro/internal/store"
)

// FormatVersion versions the checkpoint key space. Bumping it orphans
// every existing checkpoint (their keys no longer match), which is the
// correct response to any change in snapshot semantics: an old
// checkpoint silently reinterpreted is a wrong answer, an orphaned one
// only costs recomputation.
//
// v2: the controller snapshot grew the set-sampling estimator state
// (partition.controllerState.Est).
const FormatVersion = 2

// Options parameterise New. The zero value is a memory-only manager:
// warm-up sharing within the process, no mid-run checkpoints.
type Options struct {
	// Store persists checkpoints across processes (nil = in-memory
	// warm-up sharing only). Point it at a dedicated directory
	// (-checkpoint-dir), not the result cache.
	Store *store.Store
	// Every is the mid-run checkpoint cadence in measured-region
	// instructions per core; 0 disables mid-run checkpoints. Requires
	// Store — a mid-run checkpoint that dies with the process is
	// pointless, so Every without Store is ignored.
	Every uint64
	// Logf receives the layer's once-per-condition warnings plus the
	// one success-path line — "resumed-from-checkpoint", emitted when a
	// rerun restores a mid-run checkpoint; stderr if nil.
	Logf func(format string, args ...any)
}

// Stats are the manager's observability counters.
type Stats struct {
	// WarmupsComputed counts warm-up prefixes actually simulated.
	WarmupsComputed uint64
	// WarmupsResumed counts runs that restored a warm-up checkpoint
	// (from the in-process memo or the store) instead of re-warming.
	WarmupsResumed uint64
	// MidRunResumed counts runs that restored a mid-run checkpoint,
	// skipping both warm-up and the measured prefix.
	MidRunResumed uint64
	// CheckpointsWritten counts snapshots handed to the store
	// (warm-up and mid-run; the store dedupes re-publishes).
	CheckpointsWritten uint64
}

func (s Stats) String() string {
	return fmt.Sprintf("warmups-computed=%d warmups-resumed=%d midrun-resumed=%d checkpoints-written=%d",
		s.WarmupsComputed, s.WarmupsResumed, s.MidRunResumed, s.CheckpointsWritten)
}

// Manager orchestrates checkpointed runs. All methods are safe for
// concurrent use; a nil Manager runs everything uncheckpointed.
type Manager struct {
	st    *store.Store
	every uint64
	logf  func(format string, args ...any)

	warm flightGroup

	computed atomic.Uint64
	resumed  atomic.Uint64
	mid      atomic.Uint64
	written  atomic.Uint64
}

// New builds a Manager.
func New(opts Options) *Manager {
	m := &Manager{st: opts.Store, every: opts.Every, logf: opts.Logf}
	if m.st == nil {
		m.every = 0
	}
	if m.logf == nil {
		m.logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	return m
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	if m == nil {
		return Stats{}
	}
	return Stats{
		WarmupsComputed:    m.computed.Load(),
		WarmupsResumed:     m.resumed.Load(),
		MidRunResumed:      m.mid.Load(),
		CheckpointsWritten: m.written.Load(),
	}
}

// ReportStats prints the run's checkpoint counters to stderr (stderr
// so stdout stays byte-identical with and without checkpointing).
// Safe on a nil receiver.
func (m *Manager) ReportStats(prog string) {
	if m == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: ckpt: %s\n", prog, m.Stats())
}

// runID is the content address of one run: human-readable fields for
// debugging plus fingerprints that pin every field of the RunConfig.
type runID struct {
	scale, group, scheme string
	seed                 uint64
	fidelity             sim.Fidelity
	// fp fingerprints the full config; mid-run checkpoint keys use it.
	fp string
	// warmFP fingerprints the config with CaptureProfile normalised
	// off; warm-up keys use it, collapsing the alone/profile pair.
	warmFP string
}

func identity(cfg sim.RunConfig) runID {
	warm := cfg
	warm.CaptureProfile = false
	return runID{
		scale:    cfg.Scale.Name,
		group:    cfg.Group.Name,
		scheme:   string(cfg.Scheme),
		seed:     cfg.Seed,
		fidelity: cfg.Fidelity,
		fp:       store.Fingerprint(cfg),
		warmFP:   store.Fingerprint(warm),
	}
}

func (id runID) warmKey() string {
	return fmt.Sprintf("ckpt|v%d|warm|scale=%s|group=%s|scheme=%s|seed=%d|fidelity=%s|id=%s",
		FormatVersion, id.scale, id.group, id.scheme, id.seed, id.fidelity, id.warmFP)
}

func (id runID) midKey(boundary uint64) string {
	return fmt.Sprintf("ckpt|v%d|mid|scale=%s|group=%s|scheme=%s|seed=%d|fidelity=%s|id=%s|instr=%d",
		FormatVersion, id.scale, id.group, id.scheme, id.seed, id.fidelity, id.fp, boundary)
}

// Run executes cfg with checkpointing: resume from the newest valid
// mid-run checkpoint if one exists, else resume from (or compute and
// publish) the warm-up checkpoint, then run the measured region,
// checkpointing every Every instructions. Results are bit-identical to
// sim.Run(cfg).
func (m *Manager) Run(cfg sim.RunConfig) (*sim.Results, error) {
	if m == nil {
		return sim.Run(cfg)
	}
	sys, err := sim.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	id := identity(cfg)

	if snap, ok := m.latestMid(id, cfg); ok {
		if err := sys.RestoreSnapshot(snap); err == nil {
			m.mid.Add(1)
			// The one success-path log: an operator rerunning a killed
			// sweep needs to see the rerun did not start from scratch.
			m.logf("ckpt: resumed-from-checkpoint %s/%s seed=%d %s (skipping warm-up and measured prefix)",
				id.group, id.scheme, id.seed, id.fidelity)
			return m.measured(sys, id), nil
		}
		// A checkpoint that parses and checksums but does not fit the
		// system means key-space or version skew. Never trust it: warn
		// once and recompute from the warm-up boundary (or scratch).
		m.logf("ckpt: mid-run checkpoint rejected (%v) — recomputing", err)
		sys, err = sim.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
	}
	m.warmed(sys, cfg, id)
	return m.measured(sys, id), nil
}

// warmed brings sys to the warm-up boundary: restored from a shared
// checkpoint when one exists (in-process memo first, then the store),
// computed and published otherwise. Checkpoint faults degrade to a
// locally computed warm-up — this function cannot fail the run.
func (m *Manager) warmed(sys *sim.System, cfg sim.RunConfig, id runID) {
	if cfg.Scale.WarmupInstr == 0 {
		return
	}
	key := id.warmKey()
	// warmedHere distinguishes the singleflight leader (whose sys has
	// already executed the warm-up inside the closure) from followers
	// (whose sys is still cold and must restore the shared snapshot).
	warmedHere := false
	snap, err := m.warm.Do(key, func() (*sim.Snapshot, error) {
		if m.st != nil {
			var cached sim.Snapshot
			if m.st.Get(key, &cached) {
				return &cached, nil
			}
		}
		sys.Warmup()
		warmedHere = true
		sn, err := sys.Snapshot()
		if err != nil {
			return nil, err
		}
		sn.StripProfile()
		if m.st != nil {
			m.st.Put(key, sn)
			m.written.Add(1)
		}
		return sn, nil
	})
	if warmedHere {
		m.computed.Add(1)
		return
	}
	if err == nil && snap != nil {
		if rerr := sys.RestoreSnapshot(snap); rerr == nil {
			m.resumed.Add(1)
			return
		} else {
			m.logf("ckpt: warm-up checkpoint rejected (%v) — re-warming", rerr)
		}
	} else if err != nil {
		m.logf("ckpt: warm-up checkpointing failed (%v) — re-warming", err)
	}
	sys.Warmup()
	m.computed.Add(1)
}

// measured runs the measured region, publishing a checkpoint at each
// Every-instruction boundary when configured.
func (m *Manager) measured(sys *sim.System, id runID) *sim.Results {
	if m.every == 0 {
		return sys.RunMeasured(0, nil)
	}
	return sys.RunMeasured(m.every, func(boundary uint64) {
		snap, err := sys.Snapshot()
		if err != nil {
			m.logf("ckpt: snapshot at %d failed (%v) — boundary skipped", boundary, err)
			return
		}
		m.st.Put(id.midKey(boundary), snap)
		m.written.Add(1)
	})
}

// latestMid returns the newest valid mid-run checkpoint for id.
// Boundaries are probed ascending from Every — checkpoints are written
// in boundary order, so the valid set is a prefix and the probe stops
// at the first miss. A corrupt entry reads as a miss (the store
// quarantines it), so a hole ends the prefix and the run resumes from
// the last checkpoint before it — strictly valid state, never a guess.
func (m *Manager) latestMid(id runID, cfg sim.RunConfig) (*sim.Snapshot, bool) {
	if m.every == 0 {
		return nil, false
	}
	var best *sim.Snapshot
	for b := m.every; b < cfg.Scale.InstrPerApp; b += m.every {
		snap := new(sim.Snapshot)
		if !m.st.Get(id.midKey(b), snap) {
			break
		}
		best = snap
	}
	return best, best != nil
}

// flightGroup is a memoising singleflight over warm-up snapshots:
// concurrent runs of one identity block on a single warm-up and share
// it. The memo doubles as the in-process warm-up cache — the identity
// space (benchmarks x schemes x variants at one scale and seed) is
// small and finite, like the experiment runner's memo.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	snap *sim.Snapshot
	err  error
}

func (g *flightGroup) Do(key string, fn func() (*sim.Snapshot, error)) (*sim.Snapshot, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.snap, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.snap, c.err = fn()
	close(c.done)
	return c.snap, c.err
}
