#!/usr/bin/env bash
# Record one benchmark trajectory point for perf PRs.
#
# Runs the whole benchmark suite and writes the `go test -json` stream
# to BENCH_<n>.json at the repo root, picking the first unused n. The
# benchstat-compatible text lines are the Output fields of the stream;
# to compare two points:
#
#   jq -r 'select(.Action=="output") | .Output' BENCH_0.json > old.txt
#   jq -r 'select(.Action=="output") | .Output' BENCH_1.json > new.txt
#   benchstat old.txt new.txt
#
# Environment knobs:
#   BENCH_PATTERN  -bench regex            (default: .)
#   BENCH_TIME     -benchtime              (default: 1x)
#   BENCH_COUNT    -count                  (default: 1; use >=5 for benchstat significance)
set -euo pipefail
cd "$(dirname "$0")/.."

n=0
while [ -e "BENCH_${n}.json" ]; do
	n=$((n + 1))
done
out="BENCH_${n}.json"

go test -json -run='^$' \
	-bench="${BENCH_PATTERN:-.}" \
	-benchtime="${BENCH_TIME:-1x}" \
	-count="${BENCH_COUNT:-1}" \
	./... >"$out"

echo "wrote $out"
