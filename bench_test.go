package repro

// The benchmark harness: every table and figure of the paper's
// evaluation has a BenchmarkTableN / BenchmarkFigN entry that
// regenerates it end to end (workload generation, simulation of all
// schemes involved, normalisation), so
//
//	go test -bench=Fig5 -benchtime=1x
//
// reproduces Figure 5 from nothing. Benchmarks run at UnitScale so a
// full -bench=. pass stays tractable; set REPRO_BENCH_SCALE=test for
// the larger scale cmd/report publishes (or use cmd/figures, which
// shares simulations across figures and fans them out with -workers).
//
// Microbenchmarks of the simulator's hot paths (LLC access under each
// scheme, the look-ahead allocator, trace generation) follow the
// figure benches.

import (
	"io"
	"os"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/umon"
	"repro/internal/workload"
)

// benchScale picks the simulation scale for figure benches.
func benchScale() sim.Scale {
	if os.Getenv("REPRO_BENCH_SCALE") == "test" {
		return sim.TestScale()
	}
	return sim.UnitScale()
}

// newRunner builds a fresh (unmemoised) runner so every iteration pays
// the full regeneration cost.
func newRunner() *experiments.Runner {
	return experiments.NewRunner(experiments.Config{Scale: benchScale()})
}

// benchFigure regenerates one figure per iteration.
func benchFigure(b *testing.B, n int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		fig, err := newRunner().Figure(n)
		if err != nil {
			b.Fatal(err)
		}
		if err := fig.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Tables 1-4 ----

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := newRunner().Table1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := newRunner().Table2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newRunner().Table3()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 19 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := newRunner().Table4(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figures 5-16 ----

func BenchmarkFig5(b *testing.B)  { benchFigure(b, 5) }
func BenchmarkFig6(b *testing.B)  { benchFigure(b, 6) }
func BenchmarkFig7(b *testing.B)  { benchFigure(b, 7) }
func BenchmarkFig8(b *testing.B)  { benchFigure(b, 8) }
func BenchmarkFig9(b *testing.B)  { benchFigure(b, 9) }
func BenchmarkFig10(b *testing.B) { benchFigure(b, 10) }
func BenchmarkFig11(b *testing.B) { benchFigure(b, 11) }
func BenchmarkFig12(b *testing.B) { benchFigure(b, 12) }
func BenchmarkFig13(b *testing.B) { benchFigure(b, 13) }
func BenchmarkFig14(b *testing.B) { benchFigure(b, 14) }
func BenchmarkFig15(b *testing.B) { benchFigure(b, 15) }
func BenchmarkFig16(b *testing.B) { benchFigure(b, 16) }

// ---- Ablations (DESIGN.md §7) ----

func BenchmarkAblationVictim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newRunner().AblationVictim(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTakeover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newRunner().AblationTakeover(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGating(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newRunner().AblationGating(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Hot-path microbenchmarks ----

// benchSchemeAccess measures the per-access cost of one LLC scheme.
func benchSchemeAccess(b *testing.B, mk func(partition.Config) partition.Scheme) {
	b.Helper()
	cfg := partition.Config{
		Cache:    cache.Config{Name: "l2", SizeBytes: 64 << 10, LineBytes: 64, Ways: 8, Latency: 15},
		NumCores: 2,
		DRAM:     mem.New(mem.DefaultConfig()),
	}
	s := mk(cfg)
	gen := workload.MustGet("soplex").NewGenerator(workload.Params{
		LineBytes: 64, WayLines: 128, InstrScale: 0.001, Seed: 1,
	})
	var r trace.Record
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next(&r)
		if r.Kind == trace.KindLoad || r.Kind == trace.KindStore {
			s.Access(i&1, r.Addr, r.Kind == trace.KindStore, int64(i))
		}
	}
}

func BenchmarkAccessUnmanaged(b *testing.B) {
	benchSchemeAccess(b, func(c partition.Config) partition.Scheme { return partition.NewUnmanaged(c) })
}

func BenchmarkAccessFairShare(b *testing.B) {
	benchSchemeAccess(b, func(c partition.Config) partition.Scheme { return partition.NewFairShare(c) })
}

func BenchmarkAccessUCP(b *testing.B) {
	benchSchemeAccess(b, func(c partition.Config) partition.Scheme { return partition.NewUCP(c) })
}

func BenchmarkAccessCoopPart(b *testing.B) {
	benchSchemeAccess(b, func(c partition.Config) partition.Scheme { return core.New(c) })
}

func BenchmarkTraceGenerator(b *testing.B) {
	gen := workload.MustGet("gcc").NewGenerator(workload.Params{
		LineBytes: 64, WayLines: 128, InstrScale: 0.001, Seed: 1,
	})
	var r trace.Record
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next(&r)
	}
}

// BenchmarkEventStream is BenchmarkTraceGenerator through the
// run-length-encoded event API (DESIGN.md §10): same gcc stream, one
// NextEvent per ALU-run-plus-record instead of one Next per record.
// ns/op is per instruction, so the two benches compare directly.
func BenchmarkEventStream(b *testing.B) {
	gen := workload.MustGet("gcc").NewGenerator(workload.Params{
		LineBytes: 64, WayLines: 128, InstrScale: 0.001, Seed: 1,
	})
	var ev trace.Event
	b.ResetTimer()
	for done := 0; done < b.N; {
		gen.NextEvent(&ev)
		done += ev.ALURun
		if ev.HasRec {
			done++
		}
	}
}

func BenchmarkLookahead(b *testing.B) {
	curves := make([]umon.Curve, 4)
	for i := range curves {
		c := make(umon.Curve, 17)
		v := uint64(100000)
		for w := range c {
			c[w] = v
			v = v * 7 / 8
		}
		curves[i] = c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		umon.ThresholdLookahead(curves, 16, 1, 0.05)
	}
}

func BenchmarkUMONAccess(b *testing.B) {
	m := umon.New(umon.Config{Sets: 128, Ways: 8, Sampling: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Access(i&127, uint64(i%4096))
	}
}

func BenchmarkFullRunCoopPart(b *testing.B) {
	g, err := workload.FindGroup("G2-8")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.RunConfig{
			Scale: sim.UnitScale(), Scheme: sim.CoopPart, Group: g, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullRunCoopPartFastForward is BenchmarkFullRunCoopPart at
// the FastForward RNG-walk tier (DESIGN.md §11): the same end-to-end
// simulation with ALU-run draws skipped by the O(1) geometric sampler.
// The pair quantifies the wall-clock win bit-identity forbids.
func BenchmarkFullRunCoopPartFastForward(b *testing.B) {
	g, err := workload.FindGroup("G2-8")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.RunConfig{
			Scale: sim.UnitScale(), Scheme: sim.CoopPart, Group: g, Seed: 1,
			Fidelity: sim.FidelityFastForward,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullRunCoopPartSetSampled is BenchmarkFullRunCoopPart at
// the set-sampled LLC tier (DESIGN.md §15): the same end-to-end
// simulation with 1 in 8 LLC sets modelled and the rest served by the
// hit-rate estimator. Together with the FastForward pair above it
// quantifies the tier ladder's wall-clock trajectory; the headline
// speedup EXPERIMENTS.md records comes from this pair.
func BenchmarkFullRunCoopPartSetSampled(b *testing.B) {
	g, err := workload.FindGroup("G2-8")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.RunConfig{
			Scale: sim.UnitScale(), Scheme: sim.CoopPart, Group: g, Seed: 1,
			Fidelity: sim.FidelitySetSampled,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventStreamFastForward is BenchmarkEventStream at the
// FastForward tier: per-instruction generator cost with ALU runs
// sampled in O(1) instead of drawn per instruction.
func BenchmarkEventStreamFastForward(b *testing.B) {
	bench := workload.MustGet("gcc")
	cfg := bench.TraceConfig(workload.Params{
		LineBytes: 64, WayLines: 128, InstrScale: 0.001, Seed: 1,
		Fidelity: trace.FidelityFastForward,
	})
	gen := trace.NewGenerator(cfg)
	var ev trace.Event
	b.ResetTimer()
	for done := 0; done < b.N; {
		gen.NextEvent(&ev)
		done += ev.ALURun
		if ev.HasRec {
			done++
		}
	}
}

func BenchmarkAblationRandomVictim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newRunner().AblationRandomVictim(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtDrowsy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newRunner().ExtDrowsy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeadroom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := newRunner().Headroom()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no headroom rows")
		}
	}
}

// BenchmarkScalingSweep regenerates the many-core scaling sweep
// (DESIGN.md §9) end to end: one group per core count at 2/4/8/16
// cores, every scheme, weighted speedup and energy.
func BenchmarkScalingSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := newRunner().ScalingSweep(nil, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(figs) != 2 {
			b.Fatal("scaling sweep returned no figures")
		}
	}
}
